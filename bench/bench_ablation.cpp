// Ablations of the design choices called out in DESIGN.md:
//   A1. DeduceOrder negative-unit handling — paper mode (Fig. 5 lines 6-7
//       add the reversed order) vs strict mode (negative units only reduce
//       the formula).
//   A2. MaxClique exact branch-and-bound vs greedy heuristic in Suggest.
//   A3. GetSug conflict repair: exact MaxSAT vs WalkSAT local search.
//   A4. SAT solver features (VSIDS / phase saving / restarts) on Φ(Se).

#include "bench_util.h"

namespace {

using namespace ccr;
using namespace ccr::bench;

void AblateDeduceMode(const Dataset& ds) {
  PrintHeader("A1 — DeduceOrder negative-unit handling");
  for (bool paper_mode : {true, false}) {
    double ms = 0;
    int64_t pairs = 0;
    int resolved = 0;
    Timer t;
    for (size_t i = 0; i < ds.entities.size(); ++i) {
      const Specification se = ds.MakeSpec(static_cast<int>(i));
      auto inst = Instantiation::Build(se);
      CCR_CHECK(inst.ok());
      const sat::Cnf phi = BuildCnf(*inst);
      DeduceOptions opts;
      opts.paper_negative_units = paper_mode;
      const DeducedOrders od = DeduceOrder(*inst, phi, opts);
      pairs += od.CountPairs();
      for (int v : ExtractTrueValueIndices(inst->varmap, od)) {
        resolved += v >= 0 ? 1 : 0;
      }
    }
    ms = t.ElapsedMs();
    std::printf("  %-12s: %8.1f ms, %lld deduced pairs, %d true values\n",
                paper_mode ? "paper-mode" : "strict-mode", ms,
                static_cast<long long>(pairs), resolved);
  }
}

void AblateClique(const Dataset& ds) {
  PrintHeader("A2 — MaxClique exact vs greedy in Suggest");
  for (bool exact : {true, false}) {
    double ms = 0;
    size_t suggested_attrs = 0;
    size_t derivable = 0;
    Timer t;
    for (size_t i = 0; i < ds.entities.size(); ++i) {
      const Specification se = ds.MakeSpec(static_cast<int>(i));
      auto inst = Instantiation::Build(se);
      CCR_CHECK(inst.ok());
      const sat::Cnf phi = BuildCnf(*inst);
      const DeducedOrders od = DeduceOrder(*inst, phi);
      const auto known = ExtractTrueValueIndices(inst->varmap, od);
      const auto candidates = CandidateValues(inst->varmap, od);
      SuggestOptions opts;
      opts.exact_clique = exact;
      const Suggestion sug = Suggest(*inst, phi, candidates, known, opts);
      suggested_attrs += sug.attrs.size();
      derivable += sug.derivable_attrs.size();
    }
    ms = t.ElapsedMs();
    std::printf("  %-12s: %8.1f ms, %zu attrs to ask, %zu derivable\n",
                exact ? "exact-bnb" : "greedy", ms, suggested_attrs,
                derivable);
  }
}

void AblateMaxSat(const Dataset& ds) {
  PrintHeader("A3 — MaxSAT exact vs WalkSAT on Φ(Se) instances");
  double exact_ms = 0, walk_ms = 0;
  int exact_sat = 0, walk_sat = 0, n = 0;
  SessionScratch scratch;  // pools the WalkSAT buffers across entities
  for (size_t i = 0; i < ds.entities.size() && n < 12; ++i, ++n) {
    const Specification se = ds.MakeSpec(static_cast<int>(i));
    auto inst = Instantiation::Build(se);
    CCR_CHECK(inst.ok());
    const sat::Cnf phi = BuildCnf(*inst);
    Timer t;
    sat::Solver solver;
    solver.AddCnf(phi);
    exact_sat += solver.Solve() == sat::SolveResult::kSat ? 1 : 0;
    exact_ms += t.ElapsedMs();
    t.Restart();
    maxsat::WalkSatOptions wopts;
    wopts.max_flips = 200000;
    const auto wr =
        maxsat::RunWalkSat(phi, wopts, scratch.AcquireWalkSatScratch());
    CCR_CHECK(wr.ok());
    walk_sat += wr->satisfied ? 1 : 0;
    walk_ms += t.ElapsedMs();
  }
  std::printf("  CDCL   : %8.1f ms, %d/%d satisfiable\n", exact_ms,
              exact_sat, n);
  std::printf("  WalkSAT: %8.1f ms, %d/%d satisfied (incomplete search)\n",
              walk_ms, walk_sat, n);
}

void AblateSolverFeatures(const Dataset& ds) {
  PrintHeader("A4 — SAT feature ablation on Φ(Se)");
  struct Config {
    const char* name;
    sat::SolverOptions opts;
  };
  std::vector<Config> configs;
  configs.push_back({"full", {}});
  {
    sat::SolverOptions o;
    o.use_vsids = false;
    configs.push_back({"no-vsids", o});
  }
  {
    sat::SolverOptions o;
    o.use_phase_saving = false;
    configs.push_back({"no-phase", o});
  }
  {
    sat::SolverOptions o;
    o.use_restarts = false;
    configs.push_back({"no-restart", o});
  }
  for (const Config& cfg : configs) {
    double ms = 0;
    int64_t conflicts = 0;
    for (size_t i = 0; i < ds.entities.size(); ++i) {
      const Specification se = ds.MakeSpec(static_cast<int>(i));
      auto inst = Instantiation::Build(se);
      CCR_CHECK(inst.ok());
      const sat::Cnf phi = BuildCnf(*inst);
      Timer t;
      const ValidityResult r = IsValidCnf(phi, cfg.opts);
      ms += t.ElapsedMs();
      conflicts += r.solver_conflicts;
      CCR_CHECK(r.valid);
    }
    std::printf("  %-12s: %8.1f ms, %lld conflicts\n", cfg.name, ms,
                static_cast<long long>(conflicts));
  }
  std::printf("  (valid Φ(Se) instances are propagation-dominated — the "
              "features pay off on\n   adversarial inputs; contrast:)\n");
  // Pigeonhole contrast: PHP(8,7) is hard without conflict-driven search.
  const int holes = 7;
  sat::Cnf php;
  auto var = [&](int p, int h) { return p * holes + h; };
  for (int p = 0; p <= holes; ++p) {
    std::vector<sat::Lit> clause;
    for (int h = 0; h < holes; ++h) {
      clause.push_back(sat::Lit::Pos(var(p, h)));
    }
    php.AddClause(std::span<const sat::Lit>(clause.data(), clause.size()));
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 <= holes; ++p1) {
      for (int p2 = p1 + 1; p2 <= holes; ++p2) {
        php.AddBinary(sat::Lit::Neg(var(p1, h)), sat::Lit::Neg(var(p2, h)));
      }
    }
  }
  for (const Config& cfg : configs) {
    Timer t;
    const ValidityResult r = IsValidCnf(php, cfg.opts);
    std::printf("  %-12s: %8.1f ms, %lld conflicts on PHP(8,7)\n",
                cfg.name, t.ElapsedMs(),
                static_cast<long long>(r.solver_conflicts));
    CCR_CHECK(!r.valid);
  }
}

}  // namespace

int main() {
  const int scale = BenchScale();
  NbaOptions nopts;
  nopts.num_entities = 30 * scale;
  const Dataset nba = GenerateNba(nopts);
  PersonOptions popts;
  popts.num_entities = 20 * scale;
  popts.min_tuples = 10;
  popts.max_tuples = 60;
  popts.p_status_gap = 0.4;
  const Dataset person = GeneratePerson(popts);

  AblateDeduceMode(person);
  AblateClique(person);
  AblateMaxSat(nba);
  AblateSolverFeatures(nba);
  return 0;
}
