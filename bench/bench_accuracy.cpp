// Fig. 8(f)-(h), (j)-(l), (n)-(p): F-measure of conflict resolution while
// varying the available constraints, with one curve per interaction round
// and the Pick baseline on the combined plots.
//
//   (f)/(j)/(n): vary |Σ|+|Γ| together   (plus Pick)
//   (g)/(k)/(o): vary |Σ|, Γ = ∅
//   (h)/(l)/(p): vary |Γ|, Σ = ∅
//
// Reproduced shape: more constraints → higher F; Σ+Γ > Σ-only ≫ Γ-only;
// our method ≫ Pick (the paper reports a 201% average improvement).

#include "bench_util.h"

namespace {

using namespace ccr;
using namespace ccr::bench;

constexpr double kFractions[] = {0.2, 0.4, 0.6, 0.8, 1.0};

enum class Mode { kBoth, kSigmaOnly, kGammaOnly };

const char* ModeName(Mode m) {
  switch (m) {
    case Mode::kBoth: return "vary |Sigma|+|Gamma|";
    case Mode::kSigmaOnly: return "vary |Sigma| (Gamma=0)";
    case Mode::kGammaOnly: return "vary |Gamma| (Sigma=0)";
  }
  return "?";
}

void RunFigure(const Dataset& ds, Mode mode, int max_rounds,
               int answers_per_round, double answer_prob) {
  std::printf("  %s\n", ModeName(mode));
  std::printf("  %-10s", "fraction");
  for (int k = 0; k <= max_rounds; ++k) {
    std::printf("  %d-inter.", k);
  }
  std::printf("\n");
  for (double f : kFractions) {
    // Average over constraint subsets (which 20% of Σ you get matters);
    // the full-fraction point needs a single run.
    const int n_seeds = f >= 1.0 ? 1 : 3;
    std::vector<AccuracyCounts> pooled(max_rounds + 1);
    for (int seed = 1; seed <= n_seeds; ++seed) {
      ExperimentOptions opts;
      opts.max_rounds = max_rounds;
      opts.answers_per_round = answers_per_round;
      opts.oracle_answer_prob = answer_prob;
      opts.subset_seed = static_cast<uint64_t>(seed);
      switch (mode) {
        case Mode::kBoth:
          opts.sigma_fraction = f;
          opts.gamma_fraction = f;
          break;
        case Mode::kSigmaOnly:
          opts.sigma_fraction = f;
          opts.gamma_fraction = 0.0;
          break;
        case Mode::kGammaOnly:
          opts.sigma_fraction = 0.0;
          opts.gamma_fraction = f;
          break;
      }
      const ExperimentResult r = RunExperiment(ds, opts);
      for (int k = 0; k <= max_rounds; ++k) {
        pooled[k].Add(r.accuracy_by_round[k]);
      }
    }
    std::printf("  %-10.1f", f);
    for (const AccuracyCounts& c : pooled) std::printf("  %8.3f", c.F1());
    std::printf("\n");
  }
}

void RunDataset(const char* name, const Dataset& ds, int max_rounds,
                int answers_per_round, double answer_prob) {
  std::printf("\n%s (%zu entities)\n", name, ds.entities.size());
  RunFigure(ds, Mode::kBoth, max_rounds, answers_per_round, answer_prob);
  std::printf("  Pick baseline F-measure: %.3f\n", RunPick(ds).F1());
  RunFigure(ds, Mode::kSigmaOnly, max_rounds, answers_per_round,
            answer_prob);
  RunFigure(ds, Mode::kGammaOnly, max_rounds, answers_per_round,
            answer_prob);
}

}  // namespace

int main() {
  PrintHeader("Fig. 8(f)-(p) — F-measure vs available constraints");
  const int scale = BenchScale();
  {
    NbaOptions opts;
    opts.num_entities = 50 * scale;
    RunDataset("NBA (Fig. 8(f)-(h))", GenerateNba(opts), 2, 2, 0.7);
  }
  {
    CareerOptions opts;
    opts.num_entities = 65 * scale;
    RunDataset("CAREER (Fig. 8(j)-(l))", GenerateCareer(opts), 2, 1, 0.8);
  }
  {
    PersonOptions opts;
    opts.num_entities = 50 * scale;
    opts.min_tuples = 8;
    opts.max_tuples = 60;
    RunDataset("Person (Fig. 8(n)-(p))", GeneratePerson(opts), 3, 1, 0.6);
  }
  return 0;
}
