// Fig. 8(b): elapsed time of true-value deduction — DeduceOrder vs
// NaiveDeduce — per entity-size bucket.
//
// As in the paper, NaiveDeduce is run on NBA only (on Person it exceeds
// any reasonable budget: the paper reports >20 minutes and omits the
// line); the bench also verifies that DeduceOrder derives the same true
// values as NaiveDeduce on every NBA entity it times (§VI Exp-2).

#include "bench_util.h"

namespace {

using namespace ccr;
using namespace ccr::bench;

struct Timed {
  double fast_ms = 0;
  double naive_ms = 0;
  int entities = 0;
  int agreements = 0;
};

Timed RunBucket(const Dataset& ds, const std::vector<int>& idx,
                bool run_naive) {
  Timed out;
  for (int i : idx) {
    const Specification se = ds.MakeSpec(i);
    // Fig. 5's Algorithm DeduceOrder *includes* Instantiation and
    // ConvertToCNF (its line 1), so the conversion is timed here too —
    // for both contenders.
    Timer t;
    auto inst = Instantiation::Build(se);
    CCR_CHECK(inst.ok());
    const sat::Cnf phi = BuildCnf(*inst);
    const double encode_ms = t.ElapsedMs();

    t.Restart();
    const DeducedOrders fast = DeduceOrder(*inst, phi);
    out.fast_ms += encode_ms + t.ElapsedMs();
    ++out.entities;

    if (run_naive) {
      t.Restart();
      const DeducedOrders naive = NaiveDeduce(*inst, phi);
      out.naive_ms += encode_ms + t.ElapsedMs();
      const auto tv_fast = ExtractTrueValueIndices(inst->varmap, fast);
      const auto tv_naive = ExtractTrueValueIndices(inst->varmap, naive);
      out.agreements += (tv_fast == tv_naive) ? 1 : 0;
    }
  }
  return out;
}

}  // namespace

int main() {
  PrintHeader("Fig. 8(b) — true-value deduction time");
  const int scale = BenchScale();

  {
    const Dataset ds = NbaBucketed(4 * scale);
    std::printf("NBA: DeduceOrder vs NaiveDeduce (ms/entity)\n");
    std::printf("%-14s %10s %14s %14s %10s\n", "bucket", "entities",
                "DeduceOrder", "NaiveDeduce", "agree");
    for (const Bucket& b : NbaBuckets()) {
      const auto idx = EntitiesInBucket(ds, b);
      if (idx.empty()) continue;
      const Timed t = RunBucket(ds, idx, /*run_naive=*/true);
      std::printf("%-14s %10d %14.2f %14.2f %9d/%d\n", b.Label().c_str(),
                  t.entities, t.fast_ms / t.entities,
                  t.naive_ms / t.entities, t.agreements, t.entities);
    }
  }

  {
    const Dataset ds = PersonBucketed(2 * scale);
    std::printf("\nPerson: DeduceOrder (ms/entity); NaiveDeduce omitted as "
                "in the paper (>20 min per large entity)\n");
    std::printf("%-14s %10s %14s\n", "bucket", "entities", "DeduceOrder");
    for (const Bucket& b : PersonBuckets()) {
      const auto idx = EntitiesInBucket(ds, b);
      if (idx.empty()) continue;
      const Timed t = RunBucket(ds, idx, /*run_naive=*/false);
      std::printf("%-14s %10d %14.2f\n", b.Label().c_str(), t.entities,
                  t.fast_ms / t.entities);
    }
  }
  return 0;
}
