// Fig. 8(e)/(i)/(m): fraction of true attribute values identified after
// k rounds of user interaction (k = 0 is fully automatic), for NBA,
// CAREER and Person.
//
// Reproduced shape: a substantial share resolves automatically (paper:
// 35% NBA, 78% CAREER, 22% Person) and at most 2–3 rounds are needed.

#include "bench_util.h"

namespace {

using namespace ccr;
using namespace ccr::bench;

void RunSeries(const char* name, const Dataset& ds, int max_rounds,
               int answers_per_round, double answer_prob) {
  ExperimentOptions opts;
  opts.max_rounds = max_rounds;
  opts.answers_per_round = answers_per_round;
  opts.oracle_answer_prob = answer_prob;
  const ExperimentResult r = RunExperiment(ds, opts);
  std::printf("%-10s (%d entities): ", name, r.entities);
  for (size_t k = 0; k < r.pct_true_by_round.size(); ++k) {
    std::printf("%zu-interaction %.3f  ", k, r.pct_true_by_round[k]);
  }
  std::printf("(max rounds used: %d)\n", r.max_rounds_used);
}

}  // namespace

int main() {
  PrintHeader("Fig. 8(e)/(i)/(m) — % of true values vs #interactions");
  const int scale = BenchScale();

  // Users answer a couple of attributes per round and occasionally skip
  // one (§III: they need not answer everything), which produces the
  // gradual multi-round curves of the paper.
  {
    NbaOptions opts;
    opts.num_entities = 80 * scale;
    RunSeries("NBA", GenerateNba(opts), 2, 2, 0.7);
  }
  {
    CareerOptions opts;
    opts.num_entities = 65 * scale;
    RunSeries("CAREER", GenerateCareer(opts), 2, 1, 0.8);
  }
  {
    PersonOptions opts;
    opts.num_entities = 60 * scale;
    opts.min_tuples = 8;
    opts.max_tuples = 60;
    RunSeries("Person", GeneratePerson(opts), 3, 1, 0.6);
  }
  return 0;
}
