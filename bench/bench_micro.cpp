// Substrate micro-benchmarks (google-benchmark): SAT solving, grounding,
// CNF construction, unit-propagation deduction, and max-clique.

#include <benchmark/benchmark.h>

#include "src/ccr.h"

namespace {

using namespace ccr;

// Random 3-SAT near the easy side of the phase transition.
sat::Cnf Random3Sat(int n_vars, double clause_ratio, uint64_t seed) {
  Rng rng(seed);
  sat::Cnf cnf;
  cnf.EnsureVars(n_vars);
  const int n_clauses = static_cast<int>(n_vars * clause_ratio);
  for (int c = 0; c < n_clauses; ++c) {
    sat::Lit lits[3];
    for (auto& l : lits) {
      l = sat::Lit(static_cast<sat::Var>(rng.Below(n_vars)),
                   rng.Chance(0.5));
    }
    cnf.AddTernary(lits[0], lits[1], lits[2]);
  }
  return cnf;
}

void BM_SatRandom3Sat(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const sat::Cnf cnf = Random3Sat(n, 3.5, 42);
  for (auto _ : state) {
    sat::Solver solver;
    solver.AddCnf(cnf);
    benchmark::DoNotOptimize(solver.Solve());
  }
  state.SetItemsProcessed(state.iterations() * cnf.num_clauses());
}
BENCHMARK(BM_SatRandom3Sat)->Arg(50)->Arg(100)->Arg(200);

void BM_SatPigeonhole(benchmark::State& state) {
  const int holes = static_cast<int>(state.range(0));
  const int pigeons = holes + 1;
  sat::Cnf cnf;
  auto var = [&](int p, int h) { return p * holes + h; };
  for (int p = 0; p < pigeons; ++p) {
    std::vector<sat::Lit> clause;
    for (int h = 0; h < holes; ++h) {
      clause.push_back(sat::Lit::Pos(var(p, h)));
    }
    cnf.AddClause(std::span<const sat::Lit>(clause.data(), clause.size()));
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        cnf.AddBinary(sat::Lit::Neg(var(p1, h)), sat::Lit::Neg(var(p2, h)));
      }
    }
  }
  for (auto _ : state) {
    sat::Solver solver;
    solver.AddCnf(cnf);
    benchmark::DoNotOptimize(solver.Solve());
  }
}
BENCHMARK(BM_SatPigeonhole)->Arg(5)->Arg(6)->Arg(7);

Dataset PersonForBench(int tuples) {
  PersonOptions opts;
  opts.num_entities = 1;
  opts.min_tuples = tuples;
  opts.max_tuples = tuples;
  return GeneratePerson(opts);
}

void BM_Instantiation(benchmark::State& state) {
  const Dataset ds = PersonForBench(static_cast<int>(state.range(0)));
  const Specification se = ds.MakeSpec(0);
  for (auto _ : state) {
    auto inst = Instantiation::Build(se);
    benchmark::DoNotOptimize(inst.ok());
  }
  state.SetItemsProcessed(state.iterations() * se.instance().size());
}
BENCHMARK(BM_Instantiation)->Arg(50)->Arg(500)->Arg(5000);

void BM_BuildCnf(benchmark::State& state) {
  const Dataset ds = PersonForBench(static_cast<int>(state.range(0)));
  const Specification se = ds.MakeSpec(0);
  auto inst = Instantiation::Build(se);
  for (auto _ : state) {
    const sat::Cnf phi = BuildCnf(*inst);
    benchmark::DoNotOptimize(phi.num_clauses());
  }
}
BENCHMARK(BM_BuildCnf)->Arg(50)->Arg(500)->Arg(5000);

void BM_DeduceOrder(benchmark::State& state) {
  const Dataset ds = PersonForBench(static_cast<int>(state.range(0)));
  const Specification se = ds.MakeSpec(0);
  auto inst = Instantiation::Build(se);
  const sat::Cnf phi = BuildCnf(*inst);
  for (auto _ : state) {
    const DeducedOrders od = DeduceOrder(*inst, phi);
    benchmark::DoNotOptimize(od.CountPairs());
  }
  state.SetItemsProcessed(state.iterations() * phi.num_clauses());
}
BENCHMARK(BM_DeduceOrder)->Arg(50)->Arg(500)->Arg(5000);

void BM_IsValidPerson(benchmark::State& state) {
  const Dataset ds = PersonForBench(static_cast<int>(state.range(0)));
  const Specification se = ds.MakeSpec(0);
  auto inst = Instantiation::Build(se);
  const sat::Cnf phi = BuildCnf(*inst);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsValidCnf(phi).valid);
  }
}
BENCHMARK(BM_IsValidPerson)->Arg(50)->Arg(500)->Arg(5000);

void BM_MaxClique(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(7);
  graph::Graph g(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (rng.Chance(0.5)) g.AddEdge(u, v);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::MaxClique(g).size());
  }
}
BENCHMARK(BM_MaxClique)->Arg(20)->Arg(40)->Arg(60);

void BM_PartialOrderClosure(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    PartialOrder po(n);
    for (int i = 0; i + 1 < n; ++i) {
      benchmark::DoNotOptimize(po.Add(i, i + 1).ok());
    }
  }
  state.SetItemsProcessed(state.iterations() * (n - 1));
}
BENCHMARK(BM_PartialOrderClosure)->Arg(32)->Arg(128)->Arg(512);

}  // namespace
