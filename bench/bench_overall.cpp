// Fig. 8(c)/(d): overall conflict-resolution time per entity-size bucket,
// broken down into the three framework phases — validity checking, true
// value deducing, suggestion generating — for NBA (8(c)) and Person
// (8(d)). The paper's stacked bars become three columns; the reproduced
// shape: validity dominates, deduction is cheapest.

#include "bench_util.h"

namespace {

using namespace ccr;
using namespace ccr::bench;

void RunSeries(const char* name, const Dataset& ds,
               const std::vector<Bucket>& buckets) {
  std::printf("%s (ms/entity, all interaction rounds pooled)\n", name);
  std::printf("%-14s %10s %10s %10s %10s %8s\n", "bucket", "entities",
              "validity", "deduce", "suggest", "rounds");
  for (const Bucket& b : buckets) {
    const std::vector<int> idx = EntitiesInBucket(ds, b);
    if (idx.empty()) continue;
    ExperimentOptions opts;
    opts.max_rounds = 3;
    const ExperimentResult r = RunExperiment(ds, opts, idx);
    std::printf("%-14s %10d %10.2f %10.2f %10.2f %8d\n", b.Label().c_str(),
                r.entities, r.validity_ms / r.entities,
                r.deduce_ms / r.entities, r.suggest_ms / r.entities,
                r.max_rounds_used);
  }
}

}  // namespace

int main() {
  PrintHeader("Fig. 8(c)/(d) — overall time breakdown");
  const int scale = BenchScale();
  RunSeries("NBA (Fig. 8(c))", NbaBucketed(4 * scale), NbaBuckets());
  std::printf("\n");
  RunSeries("Person (Fig. 8(d))", PersonBucketed(2 * scale),
            PersonBuckets());
  return 0;
}
