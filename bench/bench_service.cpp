// bench_service: load generator for the resolution service (ccr_serve).
//
// Drives a mixed OPEN / ROUND / ANSWER / EVICT / SNAPSHOT / CLOSE workload
// from several client threads and reports sessions/sec plus p50/p99 ROUND
// latency. Every ROUND and SNAPSHOT reply is compared byte-for-byte
// against a local never-evicted session driven through the identical op
// sequence — with the resident cap set below the session count and an
// explicit EVICT every other round, every session is evicted and
// rehydrated mid-conversation, so `identical_after_rehydrate` is the
// serving-layer equivalence gate (scripts/bench_smoke.sh fails on false).
//
// Modes:
//   bench_service                      in-process server on a loopback port
//   bench_service --connect tcp:PORT   drive an external ccr_serve
//   bench_service --shutdown           send SHUTDOWN when done (external
//                                      daemons; implied clean_shutdown gate)
//   bench_service --merge-into FILE    also splice the section into an
//                                      existing BENCH_throughput.json as
//                                      its "service" key
//
// Knobs (flags override env, env overrides defaults):
//   --sessions N / CCR_BENCH_SERVICE_SESSIONS  (default 24)
//   --clients N  / CCR_BENCH_SERVICE_CLIENTS   (default 4)
//   --tuples N   / CCR_BENCH_SERVICE_TUPLES    (default 60)
//   --rounds N   / CCR_BENCH_SERVICE_ROUNDS    (default 3)

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/ccr.h"
#include "src/common/timer.h"

namespace ccr {
namespace service {
namespace {

int EnvOr(const char* name, int fallback) {
  const char* env = std::getenv(name);
  if (env != nullptr) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return fallback;
}

struct BenchConfig {
  int sessions = EnvOr("CCR_BENCH_SERVICE_SESSIONS", 24);
  int clients = EnvOr("CCR_BENCH_SERVICE_CLIENTS", 4);
  int tuples = EnvOr("CCR_BENCH_SERVICE_TUPLES", 60);
  int rounds = EnvOr("CCR_BENCH_SERVICE_ROUNDS", 3);
  std::string connect;     // empty = in-process server
  std::string merge_into;  // empty = stdout only
  bool send_shutdown = false;
};

// Per-thread workload tally, merged after the join.
struct ClientTally {
  std::vector<double> round_ms;
  int sessions_done = 0;
  int rounds_done = 0;
  int answers_done = 0;
  int errors = 0;
  bool identical = true;
};

// Drives one session end to end: OPEN from a fresh snapshot, then rounds
// of ROUND (+ ANSWER from ground truth while the engine asks), an
// explicit EVICT every other round so the next request must rehydrate
// from frozen bytes, a final SNAPSHOT equivalence check, and CLOSE.
// The local mirror session executes the same ops and provides the
// expected reply bytes.
void DriveSession(ServiceClient* client, const Dataset& ds, int entity,
                  const std::string& id, const BenchConfig& cfg,
                  ClientTally* tally) {
  SessionSnapshot mirror;
  mirror.spec = ds.MakeSpec(entity);
  const std::vector<Value>& truth = ds.entities[entity].truth;

  auto opts = MakeResolveOptions(mirror.engine, nullptr);
  if (!opts.ok()) {
    ++tally->errors;
    return;
  }
  auto local = ResolutionSession::Create(mirror.spec, opts.value());
  if (!local.ok()) {
    ++tally->errors;
    return;
  }

  auto opened = client->Call(RequestType::kOpen, id,
                             SnapshotToJson(mirror, /*indent=*/0));
  if (!opened.ok() || opened.value().status != ErrorCode::kOk) {
    ++tally->errors;
    return;
  }

  Timer timer;
  for (int round = 0; round < cfg.rounds; ++round) {
    timer.Restart();
    auto reply = client->Call(RequestType::kRound, id, "");
    const double ms = timer.ElapsedMs();
    if (!reply.ok() || reply.value().status != ErrorCode::kOk) {
      ++tally->errors;
      return;
    }
    tally->round_ms.push_back(ms);
    ++tally->rounds_done;
    const RoundOutcome expected = RunSessionRound(&local.value());
    mirror.ops.push_back(SessionOp{SessionOp::Kind::kRound, {}});
    if (reply.value().body != RoundOutcomeToJson(expected)) {
      tally->identical = false;
    }
    if (!expected.valid || expected.complete || !expected.has_suggestion) {
      break;
    }

    // Answer up to two suggested attributes from ground truth, exactly as
    // an interactive user would.
    std::vector<UserOracle::Answer> answers;
    for (const int attr : expected.suggested_attrs) {
      if (!truth[attr].is_null()) answers.push_back({attr, truth[attr]});
      if (answers.size() == 2) break;
    }
    if (answers.empty()) break;
    json::Writer w(0);
    w.BeginObject();
    w.Key("answers");
    w.BeginArray();
    bool first = true;
    for (const auto& ans : answers) {
      w.ArraySep(first);
      first = false;
      w.BeginArray();
      w.Value(ans.attr);
      w.ArraySep(false);
      WriteValue(ans.value, &w);
      w.EndArray();
    }
    w.EndArray();
    w.EndObject();
    auto extended = client->Call(RequestType::kAnswer, id, std::move(w).Take());
    if (!extended.ok() || extended.value().status != ErrorCode::kOk) {
      ++tally->errors;
      return;
    }
    ++tally->answers_done;
    auto delta = MakeAnswerDelta(local.value().spec(), answers);
    if (!delta.ok() || !local.value().ExtendWith(delta.value()).ok()) {
      ++tally->errors;
      return;
    }
    mirror.ops.push_back(
        SessionOp{SessionOp::Kind::kExtend, std::move(delta).value()});

    if (round % 2 == 0) {
      // Force the session cold so the next ROUND replays from frozen
      // bytes — the equivalence this bench exists to gate.
      auto evicted = client->Call(RequestType::kEvict, id, "");
      if (!evicted.ok() || evicted.value().status != ErrorCode::kOk) {
        ++tally->errors;
        return;
      }
    }
  }

  // The server's snapshot of this conversation must be byte-identical to
  // the locally maintained op log.
  auto snapshot = client->Call(RequestType::kSnapshot, id, "");
  if (!snapshot.ok() || snapshot.value().status != ErrorCode::kOk) {
    ++tally->errors;
    return;
  }
  if (snapshot.value().body != SnapshotToJson(mirror, /*indent=*/0)) {
    tally->identical = false;
  }
  auto closed = client->Call(RequestType::kClose, id, "");
  if (!closed.ok() || closed.value().status != ErrorCode::kOk) {
    ++tally->errors;
    return;
  }
  ++tally->sessions_done;
}

double Percentile(std::vector<double>* sorted_ms, double p) {
  if (sorted_ms->empty()) return 0.0;
  std::sort(sorted_ms->begin(), sorted_ms->end());
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(sorted_ms->size() - 1) + 0.5);
  return (*sorted_ms)[std::min(idx, sorted_ms->size() - 1)];
}

// Pulls the counters bench cares about out of a STATS reply.
struct StatsView {
  int64_t rehydrations = 0;
  int64_t evictions = 0;
  int64_t rejected_overload = 0;
  bool ok = false;
};

StatsView ParseStats(const std::string& text) {
  StatsView out;
  json::Reader rd(text, "stats reply");
  int64_t ignored = 0;
  const Status st = rd.ParseObject([&](const std::string& f) -> Status {
    int64_t v = 0;
    CCR_RETURN_NOT_OK(rd.ParseInt64(&v));
    if (f == "rehydrations") {
      out.rehydrations = v;
    } else if (f == "evictions_lru" || f == "evictions_explicit") {
      out.evictions += v;
    } else if (f == "rejected_overload") {
      out.rejected_overload = v;
    } else {
      ignored = v;
    }
    return Status::OK();
  });
  (void)ignored;
  out.ok = st.ok();
  return out;
}

int Main(int argc, char** argv) {
  BenchConfig cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s wants a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--connect") {
      cfg.connect = next_value("--connect");
    } else if (arg == "--merge-into") {
      cfg.merge_into = next_value("--merge-into");
    } else if (arg == "--shutdown") {
      cfg.send_shutdown = true;
    } else if (arg == "--sessions") {
      cfg.sessions = std::atoi(next_value("--sessions"));
    } else if (arg == "--clients") {
      cfg.clients = std::atoi(next_value("--clients"));
    } else if (arg == "--tuples") {
      cfg.tuples = std::atoi(next_value("--tuples"));
    } else if (arg == "--rounds") {
      cfg.rounds = std::atoi(next_value("--rounds"));
    } else {
      std::fprintf(stderr,
                   "unknown flag %s\n"
                   "usage: bench_service [--connect ADDR] [--shutdown]\n"
                   "  [--merge-into FILE] [--sessions N] [--clients N]\n"
                   "  [--tuples N] [--rounds N]\n",
                   arg.c_str());
      return 2;
    }
  }
  if (cfg.sessions < 1 || cfg.clients < 1 || cfg.tuples < 1 ||
      cfg.rounds < 1) {
    std::fprintf(stderr, "all sizes must be positive\n");
    return 2;
  }

  PersonOptions popts;
  popts.num_entities = std::min(cfg.sessions, 12);
  popts.min_tuples = cfg.tuples;
  popts.max_tuples = cfg.tuples + cfg.tuples / 5;
  popts.seed = 1337;
  const Dataset ds = GeneratePerson(popts);

  // In-process mode: a real server over a real loopback socket (the wire
  // path is part of what's measured), resident cap well below the session
  // count so LRU eviction happens alongside the explicit evicts.
  SessionManager* manager = nullptr;
  Server* server = nullptr;
  ServiceOptions service_opts;
  service_opts.max_resident = std::max(1, cfg.sessions / 4);
  service_opts.workers = std::max(2, cfg.clients / 2);
  std::string address = cfg.connect;
  if (address.empty()) {
    manager = new SessionManager(service_opts);
    server = new Server(manager, ServerOptions{});
    const Status st = server->Start();
    if (!st.ok()) {
      std::fprintf(stderr, "bench_service: %s\n", st.ToString().c_str());
      return 1;
    }
    address = "tcp:" + std::to_string(server->port());
  }

  std::vector<ClientTally> tallies(static_cast<size_t>(cfg.clients));
  std::vector<std::thread> threads;
  Timer wall;
  for (int c = 0; c < cfg.clients; ++c) {
    threads.emplace_back([&, c] {
      ClientTally& tally = tallies[static_cast<size_t>(c)];
      auto client = ServiceClient::Dial(address);
      if (!client.ok()) {
        ++tally.errors;
        return;
      }
      for (int s = c; s < cfg.sessions; s += cfg.clients) {
        DriveSession(&client.value(), ds,
                     s % static_cast<int>(ds.entities.size()),
                     "bench-" + std::to_string(s), cfg, &tally);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall_sec = wall.ElapsedMs() / 1000.0;

  ClientTally total;
  for (const ClientTally& t : tallies) {
    total.round_ms.insert(total.round_ms.end(), t.round_ms.begin(),
                          t.round_ms.end());
    total.sessions_done += t.sessions_done;
    total.rounds_done += t.rounds_done;
    total.answers_done += t.answers_done;
    total.errors += t.errors;
    total.identical = total.identical && t.identical;
  }
  const double p50 = Percentile(&total.round_ms, 0.50);
  const double p99 = Percentile(&total.round_ms, 0.99);
  const double sessions_per_sec =
      wall_sec > 0 ? total.sessions_done / wall_sec : 0.0;

  // Final counters + shutdown, via the wire like everything else.
  StatsView stats;
  bool clean_shutdown = false;
  {
    auto client = ServiceClient::Dial(address);
    if (client.ok()) {
      auto reply = client.value().Call(RequestType::kStats, "", "");
      if (reply.ok() && reply.value().status == ErrorCode::kOk) {
        stats = ParseStats(reply.value().body);
      }
      if (cfg.send_shutdown) {
        auto bye = client.value().Call(RequestType::kShutdown, "", "");
        clean_shutdown = bye.ok() &&
                         bye.value().body == "{\"stopping\": true}";
      }
    }
  }
  if (server != nullptr) {
    // In-process: orderly teardown counts as the clean shutdown (it joins
    // every acceptor/connection/worker thread or hangs the bench).
    server->Shutdown();
    manager->Shutdown();
    delete server;
    delete manager;
    clean_shutdown = true;
  } else if (!cfg.send_shutdown) {
    // External daemon we were asked to leave running: shutdown not part
    // of this run's contract.
    clean_shutdown = true;
  }

  char section[1024];
  std::snprintf(
      section, sizeof(section),
      "{\n"
      "    \"sessions\": %d,\n"
      "    \"clients\": %d,\n"
      "    \"tuples\": %d,\n"
      "    \"sessions_done\": %d,\n"
      "    \"rounds_done\": %d,\n"
      "    \"answers_done\": %d,\n"
      "    \"errors\": %d,\n"
      "    \"wall_seconds\": %.3f,\n"
      "    \"sessions_per_sec\": %.3f,\n"
      "    \"round_p50_ms\": %.3f,\n"
      "    \"round_p99_ms\": %.3f,\n"
      "    \"rehydrations\": %lld,\n"
      "    \"evictions\": %lld,\n"
      "    \"rejected_overload\": %lld,\n"
      "    \"identical_after_rehydrate\": %s,\n"
      "    \"clean_shutdown\": %s\n"
      "  }",
      cfg.sessions, cfg.clients, cfg.tuples, total.sessions_done,
      total.rounds_done, total.answers_done, total.errors, wall_sec,
      sessions_per_sec, p50, p99,
      static_cast<long long>(stats.rehydrations),
      static_cast<long long>(stats.evictions),
      static_cast<long long>(stats.rejected_overload),
      total.identical ? "true" : "false",
      clean_shutdown ? "true" : "false");

  std::printf("{\n  \"service\": %s\n}\n", section);

  if (!cfg.merge_into.empty()) {
    std::ifstream in(cfg.merge_into);
    if (!in) {
      std::fprintf(stderr, "bench_service: cannot read %s\n",
                   cfg.merge_into.c_str());
      return 1;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    std::string doc = buf.str();
    // Splice before the document's closing brace. The file is
    // bench_throughput's own output, so the last '}' closes the top-level
    // object.
    const size_t close = doc.rfind('}');
    if (close == std::string::npos) {
      std::fprintf(stderr, "bench_service: %s is not a JSON object\n",
                   cfg.merge_into.c_str());
      return 1;
    }
    std::string merged = doc.substr(0, close);
    while (!merged.empty() &&
           (merged.back() == '\n' || merged.back() == ' ')) {
      merged.pop_back();
    }
    merged += ",\n  \"service\": ";
    merged += section;
    merged += "\n}\n";
    std::ofstream out(cfg.merge_into, std::ios::trunc);
    out << merged;
    if (!out) {
      std::fprintf(stderr, "bench_service: cannot write %s\n",
                   cfg.merge_into.c_str());
      return 1;
    }
  }
  return total.errors == 0 ? 0 : 1;
}

}  // namespace
}  // namespace service
}  // namespace ccr

int main(int argc, char** argv) {
  return ccr::service::Main(argc, argv);
}
