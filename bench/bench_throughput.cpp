// bench_throughput: batch resolution throughput (entities/sec) and the
// ResolutionSession's incremental-extension advantage over the legacy
// re-encode-every-round path.
//
// Unlike the Fig. 8 reproduction benches, this one emits machine-readable
// JSON on stdout (scripts/bench.sh redirects it into
// BENCH_throughput.json) so the repo's perf trajectory can be tracked
// across PRs. Two sections:
//   * "incremental": Person entities with >= 1k tuples driven through
//     >= 3 one-answer oracle rounds, session vs. legacy engine; compares
//     the summed encode+validity time of rounds >= 1 (the rounds where
//     the session appends instead of rebuilding) and checks the two
//     engines resolve identically.
//   * "suggest_incremental": same corpus and runs, but comparing the
//     summed Suggest-phase time of rounds >= 1 — the session runs GetSug
//     as assumption-based incremental MaxSAT on its persistent solver
//     (no Φ(Se) copy, no fresh solver), the legacy engine re-loads Φ(Se)
//     into a throwaway solver every round. Also reports the session's
//     total rebuild count, which selector-guarded CFDs pin at zero.
//   * "solver_ablation": modern CDCL heuristics (implicit binary watches,
//     LBD-tiered learnt DB, EMA restarts, deep conflict-clause
//     minimization, between-round inprocessing) vs. the legacy
//     MiniSat-2003 configuration, both on the session engine, measured as
//     end-to-end Resolve wall time over the same >= 1k-tuple Person
//     entities driven through the NaiveDeduce pipeline (the Fig. 8(b)
//     baseline: deduction = thousands of Lemma-6 assumption solves on the
//     persistent solver — the most solver-bound configuration the
//     framework has, so the solver upgrade is what the ratio measures).
//     Checks both configurations resolve identically: the pipeline
//     consumes only SAT verdicts, so heuristics cannot change results.
//   * "thread_scaling": both parallel tiers measured as real speedup
//     curves at {1, 2, N} threads (N = CCR_BENCH_THREADS, default
//     hardware_concurrency), each point the minimum of 3 reps. The
//     "entity_pool" tier scales RunExperiment's batched work-stealing
//     driver (entities across worker threads); the "portfolio" tier keeps
//     the driver single-threaded and races diversified CDCL workers with
//     clause sharing inside every solve. Each tier checks the pooled
//     accuracy vectors are identical across all thread counts — threads
//     may change wall time, never results. The section always runs and
//     always reports measured numbers; on a 1-core machine the curves
//     simply document the overhead (scripts/bench_smoke.sh only gates the
//     speedup floor when the machine has >= 2 cores).
//   * "allocation_pooling": the cross-entity SessionScratch effect — the
//     same single-threaded batch with reuse_allocations off (every entity
//     allocates its solver arena / watch lists / CNF pool from cold) vs.
//     on (entity N+1 recycles entity N's warm buffers), plus a check that
//     pooling leaves the results bit-identical.
//   * "memory_lifecycle": one long-lived session on a >= 1k-tuple Person
//     entity driven through CCR_BENCH_SOAK_ROUNDS (default 64) ExtendWith
//     rounds of appended tuples plus validity/deduction solves, with the
//     arena GC on vs off. Reports the solver arena's peak and live words
//     and the words reclaimed by collections, checks the two runs deduce
//     identically, and re-checks num_rebuilds == 0.
//     scripts/bench_smoke.sh gates identical_results and a reclaim floor
//     (CCR_BENCH_GC_RECLAIM_FLOOR).
//   * "sls_warm_start": the same session engine with the stochastic
//     local-search warm starts on (default) vs off, over the >= 1k-tuple
//     Person corpus on the NaiveDeduce pipeline. Reports the MaxSAT
//     probe hit-rate (probes whose SLS upper bound was the true
//     optimum), the summed rounds >= 1 Suggest and Deduce speedups, and
//     checks the two configurations resolve identically — SLS only ever
//     changes time-to-verdict. scripts/bench_smoke.sh gates
//     identical_results, session_rebuilds == 0, a Suggest speedup floor
//     (CCR_BENCH_SLS_FLOOR), and a Deduce non-regression floor
//     (CCR_BENCH_SLS_DEDUCE_FLOOR) — SLS phase publishing once made the
//     entailment solves measurably slower, so the Deduce ratio may not
//     silently sink again.
//   * "deduce_backbone": the backbone Deduce engine (model sweeping,
//     propagation-only screening, chunked UNSAT certification — see
//     src/core/deduce.h) on vs off, over the same NaiveDeduce pipeline.
//     Reports the summed rounds >= 1 Deduce-phase time for both, the
//     Deduce-phase solver-call counters (queries, model prunes,
//     propagation proofs, chunk solves), the solver-call reduction
//     ratio, and checks the two configurations resolve identically —
//     the entailed pair set is semantically determined, so the query
//     strategy may never change it. scripts/bench_smoke.sh gates
//     identical_results, session_rebuilds == 0, resolve_errors == 0, a
//     speedup floor (CCR_BENCH_DEDUCE_FLOOR, default 1.5) and a >= 3x
//     calls_reduction.
//
// CCR_BENCH_SCALE multiplies entity counts as in the other benches;
// CCR_BENCH_TUPLES overrides the per-entity tuple floor (default 1000 —
// CI's bench-smoke job shrinks it so the gate finishes in seconds).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "bench_util.h"
#include "src/common/timer.h"
#include "src/core/session.h"

namespace ccr {
namespace {

int BenchThreads() {
  const char* env = std::getenv("CCR_BENCH_THREADS");
  if (env != nullptr) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  // Derive the N-thread point from the machine instead of hardcoding 8:
  // a 2-core runner then measures a genuine 2-thread speedup rather than
  // oversubscription overhead. hardware_concurrency() may report 0 when
  // unknown; fall back to 2 (the 1-core case skips the section anyway).
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 1 ? static_cast<int>(hc) : 2;
}

int BenchTuples() {
  const char* env = std::getenv("CCR_BENCH_TUPLES");
  if (env != nullptr) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 1000;
}

int BenchSoakRounds() {
  const char* env = std::getenv("CCR_BENCH_SOAK_ROUNDS");
  if (env != nullptr) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  // The arena's dead fraction after R answer rounds on an n-tuple entity
  // grows like R/n (per-round churn is O(n) words against an O(n^2)-word
  // clause database), so a fixed round count would never cross the
  // gc_frac trigger at full corpus size. Scale rounds with the corpus:
  // n/3 rounds put the soak comfortably past the default 25% trigger at
  // every scale the bench runs.
  return std::max(64, BenchTuples() / 3);
}

Dataset BigPersonCorpus(int num_entities) {
  PersonOptions opts;
  opts.num_entities = num_entities;
  opts.min_tuples = BenchTuples();
  opts.max_tuples = opts.min_tuples + opts.min_tuples / 5;
  opts.seed = 90210;
  // Histories rich in gap steps and mid-stage moves: several attributes
  // whose currency information genuinely is not in Σ, so a one-answer
  // oracle needs several rounds (the Fig. 8(m) regime, scaled up).
  opts.p_status_gap = 0.55;
  opts.p_move_only = 0.70;
  return GeneratePerson(opts);
}

bool SameResolution(const ResolveResult& a, const ResolveResult& b) {
  if (a.valid != b.valid || a.complete != b.complete ||
      a.rounds_used != b.rounds_used || a.resolved != b.resolved) {
    return false;
  }
  for (size_t i = 0; i < a.true_values.size(); ++i) {
    if (!(a.true_values[i] == b.true_values[i])) return false;
  }
  return true;
}

// One long-lived session soak for the memory_lifecycle section: append a
// copied tuple every round (guarded grounding keeps every delta
// append-only), re-solve validity each round and deduction periodically,
// and watch the solver arena.
struct MemorySoak {
  bool ok = false;
  size_t peak_words = 0;
  size_t live_words = 0;
  int64_t gc_runs = 0;
  int64_t reclaimed_words = 0;
  int64_t rebuilds = 0;
  std::vector<bool> valid_by_round;
  std::vector<std::tuple<int, int, int>> deduced;  // (attr, u, v) closure
};

MemorySoak RunMemorySoak(const Specification& spec,
                         const std::vector<Value>& truth, bool lifecycle_on,
                         int rounds) {
  MemorySoak out;
  ResolveOptions opts;
  opts.naive_deduce = true;  // Lemma-6 churn on the persistent solver
  opts.solver.use_arena_gc = lifecycle_on;
  opts.solver.use_bve = lifecycle_on;
  // A long-lived memory-bound service runs the collector eagerly; the
  // answer-round dead fraction plateaus near ~20% of the arena at large
  // corpus sizes, so the production default (0.25) would let this soak
  // coast without ever compacting. 0.10 makes the collector fire at
  // every scale the bench runs — which is the point: trigger, compact,
  // and prove the results unchanged.
  opts.solver.gc_frac = 0.10;
  auto session = ResolutionSession::Create(spec, opts);
  if (!session.ok()) return out;
  const int n_attrs = spec.schema().size();
  auto record_deduced = [&](const DeducedOrders& d) {
    out.deduced.clear();
    for (size_t a = 0; a < d.per_attr.size(); ++a) {
      const PartialOrder& po = d.per_attr[a];
      for (int u = 0; u < po.num_elements(); ++u) {
        for (int v = 0; v < po.num_elements(); ++v) {
          if (po.Less(u, v)) {
            out.deduced.emplace_back(static_cast<int>(a), u, v);
          }
        }
      }
    }
  };
  int to_index = spec.instance().size();
  for (int r = 0; r < rounds; ++r) {
    // The resolver's user-answer shape (§III Remark (1)): a tuple t_o
    // carrying the ground-truth value of one attribute, ordered above
    // every existing tuple on that attribute. Truth answers are always
    // consistent, so round after round of them keeps the session valid
    // while unit cascades satisfy old clauses and retire guards — the
    // churn a long-lived resolution session actually produces.
    int a = r % n_attrs;
    for (int probe = 0; probe < n_attrs && truth[a].is_null(); ++probe) {
      a = (a + 1) % n_attrs;
    }
    if (truth[a].is_null()) return out;
    PartialTemporalOrder ot;
    Tuple to(std::vector<Value>(n_attrs, Value::Null()));
    to[a] = truth[a];
    ot.new_tuples.push_back(std::move(to));
    for (int t = 0; t < to_index; ++t) ot.orders.emplace_back(a, t, to_index);
    if (!session->ExtendWith(ot).ok()) return out;
    ++to_index;
    out.valid_by_round.push_back(session->CheckValidity().valid);
    if (r % 4 == 3 || r == rounds - 1) record_deduced(session->Deduce());
  }
  const sat::Solver& solver = session->solver();
  out.peak_words = solver.arena_peak_words();
  out.live_words = solver.arena_live_words();
  out.gc_runs = solver.stats().gc_runs;
  out.reclaimed_words = solver.stats().gc_reclaimed_words;
  out.rebuilds = session->rebuilds();
  out.ok = true;
  return out;
}

bool SameAccuracy(const ExperimentResult& a, const ExperimentResult& b) {
  if (a.accuracy_by_round.size() != b.accuracy_by_round.size()) return false;
  for (size_t k = 0; k < a.accuracy_by_round.size(); ++k) {
    if (a.accuracy_by_round[k].deduced != b.accuracy_by_round[k].deduced ||
        a.accuracy_by_round[k].correct != b.accuracy_by_round[k].correct ||
        a.accuracy_by_round[k].conflicts !=
            b.accuracy_by_round[k].conflicts) {
      return false;
    }
  }
  return a.pct_true_by_round == b.pct_true_by_round;
}

}  // namespace
}  // namespace ccr

int main() {
  using namespace ccr;
  const int scale = bench::BenchScale();

  // --- incremental round extension vs. full per-round rebuild ------------
  const Dataset inc_ds = BigPersonCorpus(4 * scale);
  ResolveOptions session_opts;
  session_opts.use_session = true;
  ResolveOptions legacy_opts;
  legacy_opts.use_session = false;

  double session_ms = 0;     // rounds >= 1, encode + validity
  double legacy_ms = 0;
  double session_suggest_ms = 0;  // rounds >= 1, Suggest phase
  double legacy_suggest_ms = 0;
  int64_t session_rebuilds = 0;
  int64_t session_assumption_solves = 0;
  int max_oracle_rounds = 0;
  int min_tuples = 1 << 30;
  int resolve_errors = 0;  // entities skipped (not an equivalence verdict)
  bool identical = true;
  for (size_t e = 0; e < inc_ds.entities.size(); ++e) {
    min_tuples = std::min(min_tuples, inc_ds.entities[e].instance.size());
    // One answer per round forces several interaction rounds.
    TruthOracle o1(inc_ds.entities[e].truth, /*answers_per_round=*/1);
    TruthOracle o2(inc_ds.entities[e].truth, /*answers_per_round=*/1);
    session_opts.max_rounds = 6;
    legacy_opts.max_rounds = 6;
    auto rs = Resolve(inc_ds.MakeSpec(static_cast<int>(e)), &o1,
                      session_opts);
    auto rl = Resolve(inc_ds.MakeSpec(static_cast<int>(e)), &o2,
                      legacy_opts);
    if (!rs.ok() || !rl.ok()) {
      ++resolve_errors;
      continue;
    }
    identical = identical && SameResolution(*rs, *rl);
    max_oracle_rounds = std::max(max_oracle_rounds, rs->rounds_used);
    for (const RoundTrace& t : rs->trace) {
      if (t.round >= 1) {
        session_ms += t.encode_ms + t.validity_ms;
        session_suggest_ms += t.suggest_ms;
      }
      session_rebuilds += t.num_rebuilds;
      session_assumption_solves += t.num_assumption_solves;
    }
    for (const RoundTrace& t : rl->trace) {
      if (t.round >= 1) {
        legacy_ms += t.encode_ms + t.validity_ms;
        legacy_suggest_ms += t.suggest_ms;
      }
    }
  }
  const double inc_speedup = session_ms > 0 ? legacy_ms / session_ms : 0.0;
  const double suggest_speedup =
      session_suggest_ms > 0 ? legacy_suggest_ms / session_suggest_ms : 0.0;

  // --- solver ablation: modern vs legacy CDCL heuristics -----------------
  ResolveOptions modern_sat;
  modern_sat.naive_deduce = true;  // Lemma-6 solver-bound deduction
  modern_sat.max_rounds = 3;
  ResolveOptions legacy_sat = modern_sat;
  legacy_sat.solver = sat::SolverOptions::LegacyHeuristics();

  double modern_sat_ms = 0;
  double legacy_sat_ms = 0;
  int64_t ablation_binary_props = 0;
  int ablation_errors = 0;
  bool ablation_identical = true;
  Timer timer;
  for (size_t e = 0; e < inc_ds.entities.size(); ++e) {
    TruthOracle om(inc_ds.entities[e].truth, /*answers_per_round=*/1);
    TruthOracle ol(inc_ds.entities[e].truth, /*answers_per_round=*/1);
    timer.Restart();
    auto rm = Resolve(inc_ds.MakeSpec(static_cast<int>(e)), &om, modern_sat);
    modern_sat_ms += timer.ElapsedMs();
    timer.Restart();
    auto rl = Resolve(inc_ds.MakeSpec(static_cast<int>(e)), &ol, legacy_sat);
    legacy_sat_ms += timer.ElapsedMs();
    if (!rm.ok() || !rl.ok()) {
      ++ablation_errors;
      continue;
    }
    ablation_identical = ablation_identical && SameResolution(*rm, *rl);
    for (const RoundTrace& t : rm->trace) {
      ablation_binary_props += t.validity_solver.binary_propagations +
                               t.deduce_solver.binary_propagations +
                               t.suggest_solver.binary_propagations +
                               t.encode_solver.binary_propagations;
    }
  }
  const double ablation_speedup =
      modern_sat_ms > 0 ? legacy_sat_ms / modern_sat_ms : 0.0;

  // --- thread scaling: entity-pool and portfolio tiers -------------------
  const int n_threads = BenchThreads();
  const Dataset batch_ds = BigPersonCorpus(2 * n_threads * scale);
  const int n_entities = static_cast<int>(batch_ds.entities.size());
  // Each curve point is the minimum of kScalingReps timed runs: the
  // per-point wall time sits inside scheduler jitter for one sample, and
  // the min is the run least perturbed by the OS. The equivalence check
  // uses the first rep's result; the runs are deterministic, so later
  // reps would only repeat it.
  constexpr int kScalingReps = 3;
  auto time_experiment = [&](const ExperimentOptions& o,
                             ExperimentResult* first) {
    double best = 0;
    for (int rep = 0; rep < kScalingReps; ++rep) {
      timer.Restart();
      ExperimentResult r = RunExperiment(batch_ds, o);
      const double sec = timer.ElapsedMs() / 1000.0;
      if (rep == 0) {
        *first = std::move(r);
        best = sec;
      } else {
        best = std::min(best, sec);
      }
    }
    return best;
  };

  // Tier 1 — entity pool: the batched work-stealing driver spreads whole
  // entities across worker threads.
  ExperimentOptions eopts;
  eopts.max_rounds = 3;
  eopts.answers_per_round = 1;
  ExperimentResult pool_r1, pool_r2, pool_rn;
  eopts.num_threads = 1;
  const double pool_t1 = time_experiment(eopts, &pool_r1);
  eopts.num_threads = 2;
  const double pool_t2 = time_experiment(eopts, &pool_r2);
  double pool_tn = pool_t2;
  if (n_threads > 2) {
    eopts.num_threads = n_threads;
    pool_tn = time_experiment(eopts, &pool_rn);
  } else {
    pool_rn = pool_r2;
  }
  const bool pool_identical =
      SameAccuracy(pool_r1, pool_r2) && SameAccuracy(pool_r1, pool_rn);

  // Tier 2 — portfolio: driver stays single-threaded; every solve races
  // N diversified CDCL workers with learnt-clause sharing. Defer gate
  // zero so the pipeline's small solves actually race (the production
  // default would let them finish inside the sequential warm-up).
  ExperimentOptions popts_scaling;
  popts_scaling.max_rounds = 3;
  popts_scaling.answers_per_round = 1;
  popts_scaling.num_threads = 1;
  popts_scaling.resolve.solver.portfolio_defer_conflicts = 0;
  ExperimentResult port_r1, port_r2, port_rn;
  popts_scaling.resolve.solver.portfolio_threads = 0;
  const double port_t1 = time_experiment(popts_scaling, &port_r1);
  popts_scaling.resolve.solver.portfolio_threads = 2;
  const double port_t2 = time_experiment(popts_scaling, &port_r2);
  double port_tn = port_t2;
  if (n_threads > 2) {
    popts_scaling.resolve.solver.portfolio_threads = n_threads;
    port_tn = time_experiment(popts_scaling, &port_rn);
  } else {
    port_rn = port_r2;
  }
  const bool port_identical =
      SameAccuracy(port_r1, port_r2) && SameAccuracy(port_r1, port_rn);

  // --- cross-entity allocation pooling (SessionScratch) ------------------
  ExperimentOptions popts;
  popts.max_rounds = 3;
  popts.answers_per_round = 1;
  popts.num_threads = 1;

  popts.reuse_allocations = false;
  timer.Restart();
  const ExperimentResult r_cold = RunExperiment(inc_ds, popts);
  const double cold_sec = timer.ElapsedMs() / 1000.0;

  popts.reuse_allocations = true;
  timer.Restart();
  const ExperimentResult r_pooled = RunExperiment(inc_ds, popts);
  const double pooled_sec = timer.ElapsedMs() / 1000.0;

  // --- solver memory lifecycle (arena GC on vs off) ----------------------
  const int soak_rounds = BenchSoakRounds();
  const Dataset soak_ds = BigPersonCorpus(1);
  const Specification soak_spec = soak_ds.MakeSpec(0);
  const MemorySoak soak_gc = RunMemorySoak(
      soak_spec, soak_ds.entities[0].truth, /*lifecycle_on=*/true,
      soak_rounds);
  const MemorySoak soak_nogc = RunMemorySoak(
      soak_spec, soak_ds.entities[0].truth, /*lifecycle_on=*/false,
      soak_rounds);
  const bool soak_identical = soak_gc.ok && soak_nogc.ok &&
                              soak_gc.valid_by_round ==
                                  soak_nogc.valid_by_round &&
                              soak_gc.deduced == soak_nogc.deduced;

  // --- SLS warm starts: local search on vs off ---------------------------
  // NaiveDeduce pipeline (the most solver-bound configuration): the SLS
  // phases + witness-ring seeding is what the deduce/suggest assumption
  // solves start from, and the MaxSAT probe is what collapses GetSug's
  // bound search.
  ResolveOptions sls_on;
  sls_on.use_session = true;
  sls_on.naive_deduce = true;
  sls_on.max_rounds = 6;
  ResolveOptions sls_off = sls_on;
  sls_off.solver.use_sls_seeding = false;
  sls_off.solver.use_sls_probing = false;

  double sls_suggest_ms = 0, nosls_suggest_ms = 0;
  double sls_deduce_ms = 0, nosls_deduce_ms = 0;
  int64_t sls_probes = 0, sls_probe_wins = 0;
  int64_t sls_flips = 0, sls_seeded_models = 0;
  int64_t sls_rebuilds = 0;
  int sls_errors = 0;
  bool sls_identical = true;
  // The aggregate suggest time here is a few milliseconds, well inside
  // scheduler jitter for a single sample — so each configuration is timed
  // kSlsReps times and the minimum kept (the run least perturbed by the
  // OS). Counters and the equivalence check come from the first rep; the
  // runs are deterministic, so later reps would only repeat them.
  constexpr int kSlsReps = 3;
  for (int rep = 0; rep < kSlsReps; ++rep) {
    double rep_sls_suggest = 0, rep_nosls_suggest = 0;
    double rep_sls_deduce = 0, rep_nosls_deduce = 0;
    for (size_t e = 0; e < inc_ds.entities.size(); ++e) {
      TruthOracle os(inc_ds.entities[e].truth, /*answers_per_round=*/1);
      TruthOracle on(inc_ds.entities[e].truth, /*answers_per_round=*/1);
      auto rs = Resolve(inc_ds.MakeSpec(static_cast<int>(e)), &os, sls_on);
      auto rn = Resolve(inc_ds.MakeSpec(static_cast<int>(e)), &on, sls_off);
      if (!rs.ok() || !rn.ok()) {
        if (rep == 0) ++sls_errors;
        continue;
      }
      if (rep == 0) {
        sls_identical = sls_identical && SameResolution(*rs, *rn);
      }
      for (const RoundTrace& t : rs->trace) {
        if (t.round >= 1) {
          rep_sls_suggest += t.suggest_ms;
          rep_sls_deduce += t.deduce_ms;
        }
        if (rep == 0) {
          sls_rebuilds += t.num_rebuilds;
          for (const sat::SolverStats* s :
               {&t.encode_solver, &t.validity_solver, &t.deduce_solver,
                &t.suggest_solver}) {
            sls_probes += s->sls_probes;
            sls_probe_wins += s->sls_probe_wins;
            sls_flips += s->sls_flips;
            sls_seeded_models += s->sls_seeded_models;
          }
        }
      }
      for (const RoundTrace& t : rn->trace) {
        if (t.round >= 1) {
          rep_nosls_suggest += t.suggest_ms;
          rep_nosls_deduce += t.deduce_ms;
        }
      }
    }
    if (rep == 0 || rep_sls_suggest < sls_suggest_ms) {
      sls_suggest_ms = rep_sls_suggest;
    }
    if (rep == 0 || rep_nosls_suggest < nosls_suggest_ms) {
      nosls_suggest_ms = rep_nosls_suggest;
    }
    if (rep == 0 || rep_sls_deduce < sls_deduce_ms) {
      sls_deduce_ms = rep_sls_deduce;
    }
    if (rep == 0 || rep_nosls_deduce < nosls_deduce_ms) {
      nosls_deduce_ms = rep_nosls_deduce;
    }
  }
  const double sls_suggest_speedup =
      sls_suggest_ms > 0 ? nosls_suggest_ms / sls_suggest_ms : 0.0;
  const double sls_deduce_speedup =
      sls_deduce_ms > 0 ? nosls_deduce_ms / sls_deduce_ms : 0.0;
  const double sls_hit_rate =
      sls_probes > 0
          ? static_cast<double>(sls_probe_wins) /
                static_cast<double>(sls_probes)
          : 0.0;

  // --- backbone Deduce: chunked entailment vs per-pair Lemma-6 -----------
  // Same solver-bound NaiveDeduce pipeline as the SLS section; the two
  // configurations differ ONLY in use_backbone_deduce. The counters say
  // where the solver calls went: model sweeps and propagation proofs
  // resolve pairs with no solve at all, and each chunk solve certifies up
  // to kBackboneChunkSize entailments at once.
  ResolveOptions bb_on;
  bb_on.use_session = true;
  bb_on.naive_deduce = true;
  bb_on.max_rounds = 6;
  ResolveOptions bb_off = bb_on;
  bb_off.solver.use_backbone_deduce = false;

  double bb_deduce_ms = 0, perpair_deduce_ms = 0;
  int64_t bb_queries = 0, perpair_queries = 0;
  int64_t bb_model_prunes = 0, bb_prop_proofs = 0, bb_chunk_solves = 0;
  int64_t bb_rebuilds = 0;
  int bb_errors = 0;
  bool bb_identical = true;
  constexpr int kBbReps = 3;
  for (int rep = 0; rep < kBbReps; ++rep) {
    double rep_bb_deduce = 0, rep_perpair_deduce = 0;
    for (size_t e = 0; e < inc_ds.entities.size(); ++e) {
      TruthOracle ob(inc_ds.entities[e].truth, /*answers_per_round=*/1);
      TruthOracle op(inc_ds.entities[e].truth, /*answers_per_round=*/1);
      auto rb = Resolve(inc_ds.MakeSpec(static_cast<int>(e)), &ob, bb_on);
      auto rp = Resolve(inc_ds.MakeSpec(static_cast<int>(e)), &op, bb_off);
      if (!rb.ok() || !rp.ok()) {
        if (rep == 0) ++bb_errors;
        continue;
      }
      if (rep == 0) {
        bb_identical = bb_identical && SameResolution(*rb, *rp);
      }
      for (const RoundTrace& t : rb->trace) {
        if (t.round >= 1) rep_bb_deduce += t.deduce_ms;
        if (rep == 0) {
          bb_rebuilds += t.num_rebuilds;
          bb_queries += t.deduce_solver.deduce_queries;
          bb_model_prunes += t.deduce_solver.deduce_model_prunes;
          bb_prop_proofs += t.deduce_solver.deduce_propagation_proofs;
          bb_chunk_solves += t.deduce_solver.deduce_chunk_solves;
        }
      }
      for (const RoundTrace& t : rp->trace) {
        if (t.round >= 1) rep_perpair_deduce += t.deduce_ms;
        if (rep == 0) {
          bb_rebuilds += t.num_rebuilds;
          perpair_queries += t.deduce_solver.deduce_queries;
        }
      }
    }
    if (rep == 0 || rep_bb_deduce < bb_deduce_ms) {
      bb_deduce_ms = rep_bb_deduce;
    }
    if (rep == 0 || rep_perpair_deduce < perpair_deduce_ms) {
      perpair_deduce_ms = rep_perpair_deduce;
    }
  }
  const double bb_speedup =
      bb_deduce_ms > 0 ? perpair_deduce_ms / bb_deduce_ms : 0.0;
  const double bb_calls_reduction =
      bb_queries > 0 ? static_cast<double>(perpair_queries) /
                           static_cast<double>(bb_queries)
                     : 0.0;

  std::printf("{\n");
  std::printf("  \"bench\": \"throughput\",\n");
  std::printf("  \"scale\": %d,\n", scale);
  std::printf("  \"hardware_concurrency\": %u,\n",
              std::thread::hardware_concurrency());
  std::printf("  \"incremental\": {\n");
  std::printf("    \"entities\": %d,\n",
              static_cast<int>(inc_ds.entities.size()));
  std::printf("    \"min_tuples_per_entity\": %d,\n", min_tuples);
  std::printf("    \"oracle_rounds\": %d,\n", max_oracle_rounds);
  std::printf("    \"session_round1plus_encode_validity_ms\": %.3f,\n",
              session_ms);
  std::printf("    \"legacy_round1plus_encode_validity_ms\": %.3f,\n",
              legacy_ms);
  std::printf("    \"speedup\": %.3f,\n", inc_speedup);
  std::printf("    \"resolve_errors\": %d,\n", resolve_errors);
  std::printf("    \"identical_results\": %s\n", identical ? "true" : "false");
  std::printf("  },\n");
  std::printf("  \"suggest_incremental\": {\n");
  std::printf("    \"entities\": %d,\n",
              static_cast<int>(inc_ds.entities.size()));
  std::printf("    \"min_tuples_per_entity\": %d,\n", min_tuples);
  std::printf("    \"session_round1plus_suggest_ms\": %.3f,\n",
              session_suggest_ms);
  std::printf("    \"legacy_round1plus_suggest_ms\": %.3f,\n",
              legacy_suggest_ms);
  std::printf("    \"speedup\": %.3f,\n", suggest_speedup);
  std::printf("    \"session_rebuilds\": %lld,\n",
              static_cast<long long>(session_rebuilds));
  std::printf("    \"session_assumption_solves\": %lld,\n",
              static_cast<long long>(session_assumption_solves));
  std::printf("    \"identical_results\": %s\n", identical ? "true" : "false");
  std::printf("  },\n");
  std::printf("  \"solver_ablation\": {\n");
  std::printf("    \"entities\": %d,\n",
              static_cast<int>(inc_ds.entities.size()));
  std::printf("    \"min_tuples_per_entity\": %d,\n", min_tuples);
  std::printf("    \"pipeline\": \"naive_deduce\",\n");
  std::printf("    \"modern_resolve_ms\": %.3f,\n", modern_sat_ms);
  std::printf("    \"legacy_heuristics_resolve_ms\": %.3f,\n", legacy_sat_ms);
  std::printf("    \"speedup\": %.3f,\n", ablation_speedup);
  std::printf("    \"binary_propagations\": %lld,\n",
              static_cast<long long>(ablation_binary_props));
  std::printf("    \"resolve_errors\": %d,\n", ablation_errors);
  std::printf("    \"identical_results\": %s\n",
              ablation_identical ? "true" : "false");
  std::printf("  },\n");
  std::printf("  \"thread_scaling\": {\n");
  std::printf("    \"entities\": %d,\n", n_entities);
  std::printf("    \"threads_max\": %d,\n", n_threads);
  std::printf("    \"reps\": %d,\n", kScalingReps);
  std::printf("    \"entity_pool\": {\n");
  std::printf("      \"t1_seconds\": %.3f,\n", pool_t1);
  std::printf("      \"t2_seconds\": %.3f,\n", pool_t2);
  std::printf("      \"tN_seconds\": %.3f,\n", pool_tn);
  std::printf("      \"t1_entities_per_sec\": %.3f,\n",
              pool_t1 > 0 ? n_entities / pool_t1 : 0.0);
  std::printf("      \"tN_entities_per_sec\": %.3f,\n",
              pool_tn > 0 ? n_entities / pool_tn : 0.0);
  std::printf("      \"speedup_2\": %.3f,\n",
              pool_t2 > 0 ? pool_t1 / pool_t2 : 0.0);
  std::printf("      \"speedup_N\": %.3f,\n",
              pool_tn > 0 ? pool_t1 / pool_tn : 0.0);
  std::printf("      \"identical_results\": %s\n",
              pool_identical ? "true" : "false");
  std::printf("    },\n");
  std::printf("    \"portfolio\": {\n");
  std::printf("      \"t1_seconds\": %.3f,\n", port_t1);
  std::printf("      \"t2_seconds\": %.3f,\n", port_t2);
  std::printf("      \"tN_seconds\": %.3f,\n", port_tn);
  std::printf("      \"speedup_2\": %.3f,\n",
              port_t2 > 0 ? port_t1 / port_t2 : 0.0);
  std::printf("      \"speedup_N\": %.3f,\n",
              port_tn > 0 ? port_t1 / port_tn : 0.0);
  std::printf("      \"identical_results\": %s\n",
              port_identical ? "true" : "false");
  std::printf("    },\n");
  std::printf("    \"deterministic\": %s\n",
              pool_identical && port_identical ? "true" : "false");
  std::printf("  },\n");
  std::printf("  \"allocation_pooling\": {\n");
  std::printf("    \"entities\": %d,\n",
              static_cast<int>(inc_ds.entities.size()));
  std::printf("    \"cold_seconds\": %.3f,\n", cold_sec);
  std::printf("    \"pooled_seconds\": %.3f,\n", pooled_sec);
  std::printf("    \"speedup\": %.3f,\n",
              pooled_sec > 0 ? cold_sec / pooled_sec : 0.0);
  std::printf("    \"deterministic\": %s\n",
              SameAccuracy(r_cold, r_pooled) ? "true" : "false");
  std::printf("  },\n");
  std::printf("  \"memory_lifecycle\": {\n");
  std::printf("    \"tuples\": %d,\n", soak_spec.instance().size());
  std::printf("    \"rounds\": %d,\n", soak_rounds);
  std::printf("    \"gc_on\": {\"peak_arena_words\": %zu, "
              "\"live_arena_words\": %zu, \"gc_runs\": %lld, "
              "\"reclaimed_words\": %lld},\n",
              soak_gc.peak_words, soak_gc.live_words,
              static_cast<long long>(soak_gc.gc_runs),
              static_cast<long long>(soak_gc.reclaimed_words));
  std::printf("    \"gc_off\": {\"peak_arena_words\": %zu, "
              "\"live_arena_words\": %zu, \"gc_runs\": %lld, "
              "\"reclaimed_words\": %lld},\n",
              soak_nogc.peak_words, soak_nogc.live_words,
              static_cast<long long>(soak_nogc.gc_runs),
              static_cast<long long>(soak_nogc.reclaimed_words));
  std::printf("    \"peak_ratio_off_over_on\": %.3f,\n",
              soak_gc.peak_words > 0
                  ? static_cast<double>(soak_nogc.peak_words) /
                        static_cast<double>(soak_gc.peak_words)
                  : 0.0);
  std::printf("    \"session_rebuilds\": %lld,\n",
              static_cast<long long>(soak_gc.rebuilds + soak_nogc.rebuilds));
  std::printf("    \"identical_results\": %s\n",
              soak_identical ? "true" : "false");
  std::printf("  },\n");
  std::printf("  \"sls_warm_start\": {\n");
  std::printf("    \"entities\": %d,\n",
              static_cast<int>(inc_ds.entities.size()));
  std::printf("    \"min_tuples_per_entity\": %d,\n", min_tuples);
  std::printf("    \"pipeline\": \"naive_deduce\",\n");
  std::printf("    \"sls_round1plus_suggest_ms\": %.3f,\n", sls_suggest_ms);
  std::printf("    \"nosls_round1plus_suggest_ms\": %.3f,\n",
              nosls_suggest_ms);
  std::printf("    \"suggest_speedup\": %.3f,\n", sls_suggest_speedup);
  std::printf("    \"sls_round1plus_deduce_ms\": %.3f,\n", sls_deduce_ms);
  std::printf("    \"nosls_round1plus_deduce_ms\": %.3f,\n",
              nosls_deduce_ms);
  std::printf("    \"deduce_speedup\": %.3f,\n", sls_deduce_speedup);
  std::printf("    \"sls_probes\": %lld,\n",
              static_cast<long long>(sls_probes));
  std::printf("    \"sls_probe_wins\": %lld,\n",
              static_cast<long long>(sls_probe_wins));
  std::printf("    \"probe_hit_rate\": %.3f,\n", sls_hit_rate);
  std::printf("    \"sls_flips\": %lld,\n",
              static_cast<long long>(sls_flips));
  std::printf("    \"sls_seeded_models\": %lld,\n",
              static_cast<long long>(sls_seeded_models));
  std::printf("    \"resolve_errors\": %d,\n", sls_errors);
  std::printf("    \"session_rebuilds\": %lld,\n",
              static_cast<long long>(sls_rebuilds));
  std::printf("    \"identical_results\": %s\n",
              sls_identical ? "true" : "false");
  std::printf("  },\n");
  std::printf("  \"deduce_backbone\": {\n");
  std::printf("    \"entities\": %d,\n",
              static_cast<int>(inc_ds.entities.size()));
  std::printf("    \"min_tuples_per_entity\": %d,\n", min_tuples);
  std::printf("    \"pipeline\": \"naive_deduce\",\n");
  std::printf("    \"backbone_round1plus_deduce_ms\": %.3f,\n", bb_deduce_ms);
  std::printf("    \"perpair_round1plus_deduce_ms\": %.3f,\n",
              perpair_deduce_ms);
  std::printf("    \"speedup\": %.3f,\n", bb_speedup);
  std::printf("    \"backbone_deduce_queries\": %lld,\n",
              static_cast<long long>(bb_queries));
  std::printf("    \"perpair_deduce_queries\": %lld,\n",
              static_cast<long long>(perpair_queries));
  std::printf("    \"calls_reduction\": %.3f,\n", bb_calls_reduction);
  std::printf("    \"model_prunes\": %lld,\n",
              static_cast<long long>(bb_model_prunes));
  std::printf("    \"propagation_proofs\": %lld,\n",
              static_cast<long long>(bb_prop_proofs));
  std::printf("    \"chunk_solves\": %lld,\n",
              static_cast<long long>(bb_chunk_solves));
  std::printf("    \"resolve_errors\": %d,\n", bb_errors);
  std::printf("    \"session_rebuilds\": %lld,\n",
              static_cast<long long>(bb_rebuilds));
  std::printf("    \"identical_results\": %s\n",
              bb_identical ? "true" : "false");
  std::printf("  }\n");
  std::printf("}\n");
  return 0;
}
