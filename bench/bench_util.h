// Shared utilities for the Fig. 8 reproduction benches.
//
// Each bench binary prints the same series the corresponding figure plots.
// Scale is controlled by CCR_BENCH_SCALE (default 1): entity counts are
// multiplied by it, so `CCR_BENCH_SCALE=8 ./bench_validity` approaches the
// paper's corpus sizes while the default finishes in seconds.

#ifndef CCR_BENCH_BENCH_UTIL_H_
#define CCR_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/ccr.h"

namespace ccr::bench {

inline int BenchScale() {
  const char* env = std::getenv("CCR_BENCH_SCALE");
  if (env == nullptr) return 1;
  const int v = std::atoi(env);
  return v > 0 ? v : 1;
}

/// One size bucket of entity instances (by tuple count), as on the x-axes
/// of Fig. 8(a)-(d).
struct Bucket {
  int lo;
  int hi;
  std::string Label() const {
    return "[" + std::to_string(lo) + "," + std::to_string(hi) + "]";
  }
};

/// The paper's NBA buckets: [1,27], [28,54], [55,81], [82,108], [109,135].
inline std::vector<Bucket> NbaBuckets() {
  return {{1, 27}, {28, 54}, {55, 81}, {82, 108}, {109, 135}};
}

/// The paper's Person buckets: [1,2000] ... [8001,10000].
inline std::vector<Bucket> PersonBuckets() {
  return {{1, 2000}, {2001, 4000}, {4001, 6000}, {6001, 8000},
          {8001, 10000}};
}

/// NBA-like corpus with entity sizes spanning the buckets. `per_bucket`
/// entities land in each bucket (uniform size within it).
inline Dataset NbaBucketed(int per_bucket) {
  Dataset all;
  bool first = true;
  for (const Bucket& b : NbaBuckets()) {
    NbaOptions opts;
    opts.num_entities = per_bucket;
    opts.min_tuples = std::max(2, b.lo);
    opts.max_tuples = b.hi;
    opts.mean_tuples = 0.5 * (b.lo + b.hi);
    opts.seed = 7000 + b.lo;
    Dataset ds = GenerateNba(opts);
    if (first) {
      all = std::move(ds);
      first = false;
    } else {
      for (auto& e : ds.entities) all.entities.push_back(std::move(e));
    }
  }
  return all;
}

/// Person corpus with entity sizes spanning the paper's buckets.
inline Dataset PersonBucketed(int per_bucket) {
  Dataset all;
  bool first = true;
  for (const Bucket& b : PersonBuckets()) {
    PersonOptions opts;
    opts.num_entities = per_bucket;
    opts.min_tuples = std::max(4, b.lo);
    opts.max_tuples = b.hi;
    opts.seed = 40000 + b.lo;
    Dataset ds = GeneratePerson(opts);
    if (first) {
      all = std::move(ds);
      first = false;
    } else {
      for (auto& e : ds.entities) all.entities.push_back(std::move(e));
    }
  }
  return all;
}

/// Entity indices of `ds` whose instance size falls in `b`.
inline std::vector<int> EntitiesInBucket(const Dataset& ds,
                                         const Bucket& b) {
  std::vector<int> out;
  for (size_t i = 0; i < ds.entities.size(); ++i) {
    const int n = ds.entities[i].instance.size();
    if (n >= b.lo && n <= b.hi) out.push_back(static_cast<int>(i));
  }
  return out;
}

inline void PrintHeader(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

}  // namespace ccr::bench

#endif  // CCR_BENCH_BENCH_UTIL_H_
