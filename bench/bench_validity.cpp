// Fig. 8(a): elapsed time of validity checking (IsValid) per entity-size
// bucket, for NBA (|Σ|=54, |Γ|=58) and Person (|Σ|=983, |Γ|=1000).
//
// Prints average milliseconds per entity per bucket — the same two series
// the paper plots (absolute numbers differ from the 2013 testbed; the
// growth with entity size is the reproduced shape).

#include "bench_util.h"

namespace {

using namespace ccr;
using namespace ccr::bench;

void RunSeries(const char* name, const Dataset& ds,
               const std::vector<Bucket>& buckets) {
  std::printf("%s: |Sigma|=%zu |Gamma|=%zu\n", name, ds.sigma.size(),
              ds.gamma.size());
  std::printf("%-14s %10s %10s %12s %12s\n", "bucket", "entities",
              "ms/entity", "cnf-vars", "cnf-clauses");
  for (const Bucket& b : buckets) {
    const std::vector<int> idx = EntitiesInBucket(ds, b);
    if (idx.empty()) continue;
    double total_ms = 0;
    int64_t vars = 0, clauses = 0;
    int valid = 0;
    for (int i : idx) {
      const Specification se = ds.MakeSpec(i);
      Timer t;
      auto r = IsValid(se);
      total_ms += t.ElapsedMs();
      CCR_CHECK(r.ok());
      valid += r->valid ? 1 : 0;
      vars += r->num_vars;
      clauses += r->num_clauses;
    }
    std::printf("%-14s %10zu %10.2f %12lld %12lld\n", b.Label().c_str(),
                idx.size(), total_ms / idx.size(),
                static_cast<long long>(vars / static_cast<int64_t>(idx.size())),
                static_cast<long long>(clauses /
                                       static_cast<int64_t>(idx.size())));
    CCR_CHECK(valid == static_cast<int>(idx.size()));
  }
}

}  // namespace

int main() {
  PrintHeader("Fig. 8(a) — validity checking time vs entity size");
  const int scale = BenchScale();
  RunSeries("NBA", NbaBucketed(6 * scale), NbaBuckets());
  std::printf("\n");
  RunSeries("Person", PersonBucketed(2 * scale), PersonBuckets());
  return 0;
}
