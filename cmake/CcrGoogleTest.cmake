# Makes GTest::gtest_main available, trying progressively heavier sources:
#
#   1. an installed GoogleTest (find_package) — instant, fully offline;
#   2. the distro source tree under /usr/src/googletest (Debian/Ubuntu
#      libgtest-dev ships sources only) — offline build from source;
#   3. FetchContent from GitHub — only reached on hosts with neither
#      package, and the only step that needs the network.

find_package(GTest QUIET)
if(GTest_FOUND)
  message(STATUS "ccr: using system GoogleTest")
elseif(EXISTS /usr/src/googletest/CMakeLists.txt)
  message(STATUS "ccr: building GoogleTest from /usr/src/googletest")
  set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
  add_subdirectory(/usr/src/googletest ${CMAKE_BINARY_DIR}/_deps/googletest
                   EXCLUDE_FROM_ALL)
  if(NOT TARGET GTest::gtest_main)
    add_library(GTest::gtest ALIAS gtest)
    add_library(GTest::gtest_main ALIAS gtest_main)
  endif()
else()
  message(STATUS "ccr: fetching GoogleTest via FetchContent")
  include(FetchContent)
  FetchContent_Declare(googletest
    URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.tar.gz
    DOWNLOAD_EXTRACT_TIMESTAMP TRUE)
  set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
  FetchContent_MakeAvailable(googletest)
endif()
