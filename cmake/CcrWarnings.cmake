# Defines the ccr_warnings INTERFACE target that every ccr target links
# against. CCR_WERROR=ON upgrades warnings to errors (the CI gate).

add_library(ccr_warnings INTERFACE)

if(CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
  target_compile_options(ccr_warnings INTERFACE -Wall -Wextra)
  # The solver stores clause activities as float bits inside a uint32_t
  # arena via std::bit_cast; make the strict-aliasing contract explicit at
  # every optimization level (optimized builds already assume it) and warn
  # on code that would break it.
  target_compile_options(ccr_warnings INTERFACE
    -fstrict-aliasing -Wstrict-aliasing)
  if(CMAKE_CXX_COMPILER_ID STREQUAL "GNU")
    # GCC 12 false-positives on std::variant<T, Status> moves
    # (PR 105562 and friends); the check is too noisy to gate on.
    target_compile_options(ccr_warnings INTERFACE -Wno-maybe-uninitialized)
  endif()
  if(CCR_WERROR)
    target_compile_options(ccr_warnings INTERFACE -Werror)
  endif()
endif()
