# Defines the ccr_warnings INTERFACE target that every ccr target links
# against. CCR_WERROR=ON upgrades warnings to errors (the CI gate).

add_library(ccr_warnings INTERFACE)

if(CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
  target_compile_options(ccr_warnings INTERFACE -Wall -Wextra)
  if(CMAKE_CXX_COMPILER_ID STREQUAL "GNU")
    # GCC 12 false-positives on std::variant<T, Status> moves
    # (PR 105562 and friends); the check is too noisy to gate on.
    target_compile_options(ccr_warnings INTERFACE -Wno-maybe-uninitialized)
  endif()
  if(CCR_WERROR)
    target_compile_options(ccr_warnings INTERFACE -Werror)
  endif()
endif()
