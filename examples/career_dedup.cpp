// CAREER publication cleanup: find each author's current affiliation and
// address from their publication records (the paper's CAREER scenario).
//
// Shows how citation-derived currency constraints order affiliations and
// how the affiliation → (city, country) CFD repairs misspelled cities.

#include <cstdio>

#include "src/ccr.h"

int main() {
  using namespace ccr;

  CareerOptions options;
  options.p_city_noise = 0.15;  // visible CFD repairs
  const Dataset ds = GenerateCareer(options);
  std::printf("CAREER-like corpus: %zu authors, |Sigma|=%zu (citation "
              "pairs), |Gamma|=%zu (affiliation patterns)\n",
              ds.entities.size(), ds.sigma.size(), ds.gamma.size());

  int automatic = 0, interactive = 0, unresolved = 0;
  for (size_t i = 0; i < ds.entities.size(); ++i) {
    auto no_user = Resolve(ds.MakeSpec(static_cast<int>(i)), nullptr);
    CCR_CHECK(no_user.ok());
    if (no_user->complete) {
      ++automatic;
      continue;
    }
    TruthOracle oracle(ds.entities[i].truth);
    auto with_user = Resolve(ds.MakeSpec(static_cast<int>(i)), &oracle);
    CCR_CHECK(with_user.ok());
    (with_user->complete ? interactive : unresolved) += 1;
  }
  std::printf("resolution: %d automatic, %d with interaction, %d "
              "unresolved of %zu authors\n",
              automatic, interactive, unresolved, ds.entities.size());

  // Walk one author in detail.
  const int idx = 0;
  const EntityCase& ec = ds.entities[idx];
  auto r = Resolve(ds.MakeSpec(idx), nullptr);
  CCR_CHECK(r.ok());
  std::printf("\n%s: %d publications\n", ec.instance.entity_id().c_str(),
              ec.instance.size());
  for (int a = 0; a < ds.schema.size(); ++a) {
    std::printf("  %-12s = %-20s (truth: %s)\n",
                ds.schema.name(a).c_str(),
                r->resolved[a] ? r->true_values[a].ToString().c_str() : "?",
                ec.truth[a].ToString().c_str());
  }
  return 0;
}
