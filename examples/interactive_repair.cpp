// Interactive repair session: drives the Fig. 4 framework loop step by
// step, printing the suggestion of every round and the values the
// (simulated) user validates — a console rendition of the paper's
// framework UI.

#include <cstdio>

#include "src/ccr.h"

namespace {

using namespace ccr;

// Oracle that narrates its answers.
class NarratingOracle : public UserOracle {
 public:
  NarratingOracle(std::vector<Value> truth, const Schema& schema)
      : truth_(std::move(truth)), schema_(schema) {}

  std::vector<Answer> Provide(const Specification&, const Suggestion& sug,
                              const VarMap& vm) override {
    std::printf("  framework asks: %s\n",
                sug.ToString(vm, schema_).c_str());
    std::vector<Answer> out;
    for (int attr : sug.attrs) {
      if (out.size() >= 2) break;  // the user answers two per round
      if (truth_[attr].is_null()) continue;
      std::printf("  user validates: %s = %s\n",
                  schema_.name(attr).c_str(),
                  truth_[attr].ToString().c_str());
      out.push_back({attr, truth_[attr]});
    }
    if (out.empty()) std::printf("  user settles.\n");
    return out;
  }

 private:
  std::vector<Value> truth_;
  Schema schema_;
};

}  // namespace

int main() {
  using namespace ccr;

  // A Person entity with deliberately broken chains needs several rounds.
  PersonOptions options;
  options.num_entities = 30;
  options.min_tuples = 10;
  options.max_tuples = 30;
  options.p_status_gap = 0.6;
  options.p_ghost = 0.5;
  const Dataset ds = GeneratePerson(options);

  // Pick the entity that resolves the least automatically.
  int chosen = 0, worst = 1 << 30;
  for (size_t i = 0; i < ds.entities.size(); ++i) {
    auto r = Resolve(ds.MakeSpec(static_cast<int>(i)), nullptr);
    CCR_CHECK(r.ok());
    int resolved = 0;
    for (bool b : r->resolved) resolved += b ? 1 : 0;
    if (resolved < worst) {
      worst = resolved;
      chosen = static_cast<int>(i);
    }
  }

  const EntityCase& ec = ds.entities[chosen];
  std::printf("repairing %s (%d tuples, %d conflicted attributes)\n",
              ec.instance.entity_id().c_str(), ec.instance.size(),
              ec.instance.CountConflictAttributes());

  NarratingOracle oracle(ec.truth, ds.schema);
  ResolveOptions ropts;
  ropts.max_rounds = 5;
  auto r = Resolve(ds.MakeSpec(chosen), &oracle, ropts);
  CCR_CHECK(r.ok());

  std::printf("\nfinal state after %d round(s), complete=%s:\n",
              r->rounds_used, r->complete ? "yes" : "no");
  for (int a = 0; a < ds.schema.size(); ++a) {
    const bool ok = r->resolved[a] && r->true_values[a] == ec.truth[a];
    std::printf("  %-8s = %-16s %s\n", ds.schema.name(a).c_str(),
                r->resolved[a] ? r->true_values[a].ToString().c_str() : "?",
                ok ? "[correct]" : (r->resolved[a] ? "[WRONG]" : ""));
  }
  for (const RoundTrace& t : r->trace) {
    std::printf("round %d: %d attrs resolved (validity %.1fms, deduce "
                "%.1fms, suggest %.1fms)\n",
                t.round, t.resolved_attrs, t.validity_ms, t.deduce_ms,
                t.suggest_ms);
  }
  return 0;
}
