// NBA roster cleanup: resolve current team/arena/stats for synthetic
// players (the paper's NBA scenario, §VI).
//
// Generates an NBA-like corpus, resolves a handful of players with a
// ground-truth oracle, and reports accuracy against the paper's Pick
// baseline — a miniature of the Fig. 8(f) experiment.

#include <cstdio>

#include "src/ccr.h"

int main() {
  using namespace ccr;

  NbaOptions options;
  options.num_entities = 40;
  const Dataset ds = GenerateNba(options);
  std::printf("NBA-like corpus: %zu players, |Sigma|=%zu, |Gamma|=%zu\n",
              ds.entities.size(), ds.sigma.size(), ds.gamma.size());

  // Resolve the first few players and print their current rows.
  for (int i = 0; i < 3; ++i) {
    const EntityCase& ec = ds.entities[i];
    TruthOracle oracle(ec.truth);
    auto r = Resolve(ds.MakeSpec(i), &oracle);
    CCR_CHECK(r.ok());
    std::printf("\n%s: %d tuples, %d conflicted attributes, rounds=%d\n",
                ec.instance.entity_id().c_str(), ec.instance.size(),
                ec.instance.CountConflictAttributes(), r->rounds_used);
    for (const char* attr :
         {"team", "tname", "arena", "city", "allpoints"}) {
      const int a = ds.schema.IndexOf(attr);
      std::printf("  %-10s = %-16s (truth: %s)%s\n", attr,
                  r->resolved[a] ? r->true_values[a].ToString().c_str()
                                 : "?",
                  ec.truth[a].ToString().c_str(),
                  r->user_provided[a] ? "  [user]" : "");
    }
  }

  // Dataset-level accuracy: unified method vs Pick.
  ExperimentOptions eopts;
  eopts.max_rounds = 2;
  const ExperimentResult ours = RunExperiment(ds, eopts);
  const AccuracyCounts pick = RunPick(ds);
  std::printf("\naccuracy (F-measure): 0-round %.3f | 2-round %.3f | "
              "Pick %.3f\n",
              ours.accuracy_by_round[0].F1(),
              ours.accuracy_by_round[2].F1(), pick.F1());
  return 0;
}
