// Quickstart: the paper's running example (Figs. 1-3).
//
// Builds the entity instances E1 (Edith Shain) and E2 (George Mendonça),
// the currency constraints ϕ1–ϕ8 and constant CFDs ψ1/ψ2 of Fig. 3, then:
//   1. resolves Edith fully automatically (Example 2);
//   2. shows George's partial resolution (Example 3), the suggestion the
//      framework computes (Example 12), and the one-round interactive
//      resolution (Examples 6/9).

#include <cstdio>

#include "src/ccr.h"

namespace {

using namespace ccr;

Schema PaperSchema() {
  return Schema::Make({"name", "status", "job", "kids", "city", "AC", "zip",
                       "county"})
      .value();
}

Specification MakeSpec(EntityInstance instance) {
  const Schema schema = PaperSchema();
  Specification se;
  se.temporal = TemporalInstance(std::move(instance));
  // Fig. 3, stated in the textual constraint DSL.
  for (const char* text : {
           "t1[status] = 'working' & t2[status] = 'retired' -> status",
           "t1[status] = 'retired' & t2[status] = 'deceased' -> status",
           "t1[job] = 'sailor' & t2[job] = 'veteran' -> job",
           "t1[kids] < t2[kids] -> kids",
           "prec(status) -> job",
           "prec(status) -> AC",
           "prec(status) -> zip",
           "prec(city) & prec(zip) -> county",
       }) {
    se.sigma.push_back(ParseCurrencyConstraint(schema, text).value());
  }
  for (const char* text :
       {"AC = 213 -> city = 'LA'", "AC = 212 -> city = 'NY'"}) {
    se.gamma.push_back(ParseCfd(schema, text).value());
  }
  return se;
}

EntityInstance MakeEdith() {
  EntityInstance e(PaperSchema(), "Edith Shain");
  CCR_CHECK(e.Add(Tuple({Value::Str("Edith Shain"), Value::Str("working"),
                         Value::Str("nurse"), Value::Int(0),
                         Value::Str("NY"), Value::Int(212),
                         Value::Str("10036"), Value::Str("Manhattan")}))
                .ok());
  CCR_CHECK(e.Add(Tuple({Value::Str("Edith Shain"), Value::Str("retired"),
                         Value::Str("n/a"), Value::Int(3),
                         Value::Str("SFC"), Value::Int(415),
                         Value::Str("94924"), Value::Str("Dogtown")}))
                .ok());
  CCR_CHECK(e.Add(Tuple({Value::Str("Edith Shain"), Value::Str("deceased"),
                         Value::Str("n/a"), Value::Null(), Value::Str("LA"),
                         Value::Int(213), Value::Str("90058"),
                         Value::Str("Vermont")}))
                .ok());
  return e;
}

EntityInstance MakeGeorge() {
  EntityInstance e(PaperSchema(), "George Mendonca");
  CCR_CHECK(e.Add(Tuple({Value::Str("George Mendonca"),
                         Value::Str("working"), Value::Str("sailor"),
                         Value::Int(0), Value::Str("Newport"),
                         Value::Int(401), Value::Str("02840"),
                         Value::Str("Rhode Island")}))
                .ok());
  CCR_CHECK(e.Add(Tuple({Value::Str("George Mendonca"),
                         Value::Str("retired"), Value::Str("veteran"),
                         Value::Int(2), Value::Str("NY"), Value::Int(212),
                         Value::Str("12404"), Value::Str("Accord")}))
                .ok());
  CCR_CHECK(e.Add(Tuple({Value::Str("George Mendonca"),
                         Value::Str("unemployed"), Value::Str("n/a"),
                         Value::Int(2), Value::Str("Chicago"),
                         Value::Int(312), Value::Str("60653"),
                         Value::Str("Bronzeville")}))
                .ok());
  return e;
}

void PrintResolution(const char* title, const ResolveResult& r,
                     const Schema& schema) {
  std::printf("%s\n", title);
  std::printf("  valid=%s complete=%s rounds=%d\n",
              r.valid ? "yes" : "no", r.complete ? "yes" : "no",
              r.rounds_used);
  for (int a = 0; a < schema.size(); ++a) {
    std::printf("  %-8s = %-14s%s\n", schema.name(a).c_str(),
                r.resolved[a] ? r.true_values[a].ToString().c_str() : "?",
                r.user_provided[a] ? "  (user)" : "");
  }
}

}  // namespace

int main() {
  const Schema schema = PaperSchema();

  // --- Edith: fully automatic (Example 2) -------------------------------
  auto edith = Resolve(MakeSpec(MakeEdith()), nullptr);
  CCR_CHECK(edith.ok());
  PrintResolution("Edith Shain (automatic resolution, Example 2):", *edith,
                  schema);

  // --- George: partial, then suggestion, then interactive (Ex. 3/12/9) --
  const Specification se = MakeSpec(MakeGeorge());
  auto partial = Resolve(se, nullptr);
  CCR_CHECK(partial.ok());
  PrintResolution("\nGeorge Mendonca (automatic only, Example 3):",
                  *partial, schema);

  // Show the suggestion the framework would make (Example 12).
  auto inst = Instantiation::Build(se);
  CCR_CHECK(inst.ok());
  const sat::Cnf phi = BuildCnf(*inst);
  const DeducedOrders od = DeduceOrder(*inst, phi);
  const auto known = ExtractTrueValueIndices(inst->varmap, od);
  const auto candidates = CandidateValues(inst->varmap, od);
  const Suggestion sug = Suggest(*inst, phi, candidates, known);
  std::printf("\nSuggestion (Example 12): %s\n",
              sug.ToString(inst->varmap, schema).c_str());

  // Interactive run: the oracle validates status = retired.
  std::vector<Value> truth(schema.size(), Value::Null());
  truth[schema.IndexOf("status")] = Value::Str("retired");
  TruthOracle oracle(truth);
  auto full = Resolve(se, &oracle);
  CCR_CHECK(full.ok());
  PrintResolution(
      "\nGeorge Mendonca (after validating status, Examples 6/9):", *full,
      schema);
  return 0;
}
