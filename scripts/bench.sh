#!/usr/bin/env bash
# Builds the bench/ group (and nothing else it doesn't need) in Release
# mode, then prints how to run each binary. Perf PRs use these by hand;
# CI only builds them so they cannot rot.
#
# bench_throughput additionally runs and its JSON lands in
# BENCH_throughput.json at the repo root — the machine-readable perf
# trajectory tracked across PRs — plus a run-stamped copy in
# bench/history/BENCH_throughput.<git-sha>.json so successive runs don't
# clobber each other. Skip both with CCR_BENCH_SKIP_RUN=1.
#
# Usage: scripts/bench.sh [build-dir]

set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-bench}"

CMAKE_ARGS=(-B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release -DCCR_BUILD_TESTS=OFF)
if [[ -z "${CMAKE_GENERATOR:-}" ]] && command -v ninja >/dev/null 2>&1; then
  CMAKE_ARGS+=(-G Ninja)
fi
if [[ "${CCR_CCACHE:-}" == "ON" ]] && command -v ccache >/dev/null 2>&1; then
  CMAKE_ARGS+=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

cmake "${CMAKE_ARGS[@]}"
cmake --build "$BUILD_DIR" -j --target bench

echo
echo "Bench binaries built under $BUILD_DIR/bench:"
ls "$BUILD_DIR"/bench/bench_* 2>/dev/null | grep -v CMakeFiles || true

if [[ -z "${CCR_BENCH_SKIP_RUN:-}" ]]; then
  echo
  echo "Running bench_throughput -> BENCH_throughput.json"
  "$BUILD_DIR"/bench/bench_throughput | tee BENCH_throughput.json
  # The service load generator (in-process server over a loopback socket)
  # splices its section in as the "service" key; bench_smoke.sh gates the
  # rehydration-equivalence and clean-shutdown bits.
  echo "Running bench_service -> BENCH_throughput.json (service section)"
  "$BUILD_DIR"/bench/bench_service --merge-into BENCH_throughput.json
  # Run-stamped history copy, keyed by the commit the run measured (the
  # working-tree sha, not a timestamp — reruns at one commit overwrite,
  # which is what a perf trajectory wants).
  SHA="$(git rev-parse --short HEAD 2>/dev/null || echo nogit)"
  mkdir -p bench/history
  cp BENCH_throughput.json "bench/history/BENCH_throughput.${SHA}.json"
  echo "History copy: bench/history/BENCH_throughput.${SHA}.json"
fi
