#!/usr/bin/env bash
# CI bench-smoke: run bench_throughput at a tiny size and gate on its JSON.
#
# Shrinks the corpus (CCR_BENCH_TUPLES) so the run finishes in seconds,
# then fails if
#   * either engine-equivalence or determinism check reported false, or
#   * the session/legacy incremental speedup fell below a generous floor
#     (CCR_BENCH_SPEEDUP_FLOOR, default 1.5 — the full-size run measures
#     ~20x, so tripping the floor means the incremental path regressed
#     catastrophically, not that the runner was noisy), or
#   * the incremental-MaxSAT Suggest path reported non-identical results,
#     performed any session rebuild (selector-guarded CFDs pin this at 0),
#     or fell below its own speedup floor (CCR_BENCH_SUGGEST_FLOOR,
#     default 1.3 — the full-size run measures >= 2x), or
#   * the solver ablation (modern CDCL heuristics vs the legacy
#     MiniSat-2003 configuration, on the solver-bound NaiveDeduce
#     pipeline) reported non-identical resolutions or fell below its
#     floor (CCR_BENCH_SOLVER_FLOOR, default 1.2 — the full-size run
#     measures >= 5x), or
#   * the memory_lifecycle soak (one long-lived session fed answer
#     rounds, arena GC on vs off) reported non-identical results,
#     performed a session rebuild, or reclaimed fewer arena words than
#     CCR_BENCH_GC_RECLAIM_FLOOR (default 1000 — the smoke-scale run
#     deterministically reclaims >= 140k words, so tripping the floor
#     means compaction stopped firing, not that the runner was noisy), or
#   * the sls_warm_start section (local-search warm starts on vs off)
#     reported non-identical resolutions, performed a session rebuild,
#     fell below its Suggest speedup floor (CCR_BENCH_SLS_FLOOR,
#     default 1.1 — SLS may only ever change time-to-verdict), or let
#     SLS slow the Deduce phase below CCR_BENCH_SLS_DEDUCE_FLOOR
#     (default 0.95 — the regression where soft-biased phase publishing
#     poisoned the entailment solves may not come back), or
#   * the deduce_backbone section (backbone Deduce engine on vs off, on
#     the solver-bound NaiveDeduce pipeline) reported non-identical
#     resolutions, a resolve error, a session rebuild, a rounds>=1
#     Deduce speedup below CCR_BENCH_DEDUCE_FLOOR (default 1.5), or a
#     Deduce-phase solver-call reduction below 3x (counter-verified:
#     model sweeping + chunked certification must actually be retiring
#     per-pair Lemma-6 solves, not just winning a timer race), or
#   * the service section (bench_service driving a real server over a
#     loopback socket with forced eviction) reported a ROUND or SNAPSHOT
#     reply that differed from the never-evicted local session
#     (identical_after_rehydrate), a dirty shutdown, any client error,
#     zero rehydrations (the workload forces them — zero means eviction
#     stopped round-tripping through snapshot bytes), or a sessions/sec
#     rate below CCR_BENCH_SERVICE_FLOOR (default 1 — a catastrophic-
#     regression tripwire, not a perf target).
#
# thread_scaling always runs and must always report identical results at
# every thread count (entity-pool and portfolio tiers both). The speedup
# floor (CCR_BENCH_SCALING_FLOOR, default 1.3 at the 2-thread point of
# the entity-pool curve) is only gated on multi-core runners: a 1-core
# container measures scheduling overhead, not scaling, so only the
# determinism contract is enforced there.
#
# The JSON lands in BENCH_throughput.json (CI uploads it as an artifact —
# the repo's perf trajectory across PRs).
#
# Usage: scripts/bench_smoke.sh [build-dir]

set -euo pipefail

cd "$(dirname "$0")/.."

export CCR_BENCH_SCALE="${CCR_BENCH_SCALE:-1}"
export CCR_BENCH_TUPLES="${CCR_BENCH_TUPLES:-250}"
export CCR_BENCH_THREADS="${CCR_BENCH_THREADS:-2}"
FLOOR="${CCR_BENCH_SPEEDUP_FLOOR:-1.5}"
SUGGEST_FLOOR="${CCR_BENCH_SUGGEST_FLOOR:-1.3}"
SOLVER_FLOOR="${CCR_BENCH_SOLVER_FLOOR:-1.2}"
GC_RECLAIM_FLOOR="${CCR_BENCH_GC_RECLAIM_FLOOR:-1000}"
SLS_FLOOR="${CCR_BENCH_SLS_FLOOR:-1.1}"
SLS_DEDUCE_FLOOR="${CCR_BENCH_SLS_DEDUCE_FLOOR:-0.95}"
DEDUCE_FLOOR="${CCR_BENCH_DEDUCE_FLOOR:-1.5}"
SERVICE_FLOOR="${CCR_BENCH_SERVICE_FLOOR:-1}"
SCALING_FLOOR="${CCR_BENCH_SCALING_FLOOR:-1.3}"
# The scaling floor needs real cores: gate it only when the runner has
# >= 2 (nproc reflects the container's cpuset, unlike the bench's own
# hardware_concurrency which may see the host).
if [ "$(nproc)" -ge 2 ]; then
  GATE_SCALING=true
else
  GATE_SCALING=false
fi

scripts/bench.sh "${1:-build-bench}"

echo
echo "Gating BENCH_throughput.json (incremental floor: ${FLOOR}x," \
     "suggest floor: ${SUGGEST_FLOOR}x, solver floor: ${SOLVER_FLOOR}x," \
     "GC reclaim floor: ${GC_RECLAIM_FLOOR} words," \
     "SLS suggest floor: ${SLS_FLOOR}x," \
     "SLS deduce floor: ${SLS_DEDUCE_FLOOR}x," \
     "backbone deduce floor: ${DEDUCE_FLOOR}x," \
     "service floor: ${SERVICE_FLOOR} sessions/s," \
     "scaling floor: ${SCALING_FLOOR}x at 2 threads [gated: ${GATE_SCALING}])"
jq -e --argjson floor "$FLOOR" --argjson sfloor "$SUGGEST_FLOOR" \
      --argjson solfloor "$SOLVER_FLOOR" \
      --argjson gcfloor "$GC_RECLAIM_FLOOR" \
      --argjson slsfloor "$SLS_FLOOR" \
      --argjson slsdedfloor "$SLS_DEDUCE_FLOOR" \
      --argjson dedfloor "$DEDUCE_FLOOR" \
      --argjson svcfloor "$SERVICE_FLOOR" \
      --argjson scalefloor "$SCALING_FLOOR" \
      --argjson gatescaling "$GATE_SCALING" '
  (.incremental.identical_results == true)
  and (.incremental.resolve_errors == 0)
  and (.suggest_incremental.identical_results == true)
  and (.suggest_incremental.session_rebuilds == 0)
  and (.solver_ablation.identical_results == true)
  and (.solver_ablation.resolve_errors == 0)
  and (.solver_ablation.speedup >= $solfloor)
  and (.thread_scaling.deterministic == true)
  and (.thread_scaling.entity_pool.identical_results == true)
  and (.thread_scaling.portfolio.identical_results == true)
  and ((($gatescaling | not))
       or (.thread_scaling.entity_pool.speedup_2 >= $scalefloor))
  and (.allocation_pooling.deterministic == true)
  and (.memory_lifecycle.identical_results == true)
  and (.memory_lifecycle.session_rebuilds == 0)
  and (.memory_lifecycle.gc_on.reclaimed_words >= $gcfloor)
  and (.sls_warm_start.identical_results == true)
  and (.sls_warm_start.resolve_errors == 0)
  and (.sls_warm_start.session_rebuilds == 0)
  and (.sls_warm_start.suggest_speedup >= $slsfloor)
  and (.sls_warm_start.deduce_speedup >= $slsdedfloor)
  and (.deduce_backbone.identical_results == true)
  and (.deduce_backbone.resolve_errors == 0)
  and (.deduce_backbone.session_rebuilds == 0)
  and (.deduce_backbone.speedup >= $dedfloor)
  and (.deduce_backbone.calls_reduction >= 3)
  and (.service.identical_after_rehydrate == true)
  and (.service.clean_shutdown == true)
  and (.service.errors == 0)
  and (.service.rehydrations >= 1)
  and (.service.sessions_per_sec >= $svcfloor)
  and (.incremental.speedup >= $floor)
  and (.suggest_incremental.speedup >= $sfloor)
' BENCH_throughput.json >/dev/null || {
  echo "FAIL: bench smoke gate tripped; BENCH_throughput.json:" >&2
  cat BENCH_throughput.json >&2
  exit 1
}
echo "OK: incremental speedup $(jq .incremental.speedup BENCH_throughput.json)x," \
     "suggest speedup $(jq .suggest_incremental.speedup BENCH_throughput.json)x," \
     "solver ablation speedup $(jq .solver_ablation.speedup BENCH_throughput.json)x," \
     "pooling speedup $(jq .allocation_pooling.speedup BENCH_throughput.json)x," \
     "GC reclaimed $(jq .memory_lifecycle.gc_on.reclaimed_words BENCH_throughput.json) arena words," \
     "SLS suggest speedup $(jq .sls_warm_start.suggest_speedup BENCH_throughput.json)x" \
     "(probe hit-rate $(jq .sls_warm_start.probe_hit_rate BENCH_throughput.json)," \
     "deduce $(jq .sls_warm_start.deduce_speedup BENCH_throughput.json)x)," \
     "backbone deduce speedup $(jq .deduce_backbone.speedup BENCH_throughput.json)x" \
     "(calls reduction $(jq .deduce_backbone.calls_reduction BENCH_throughput.json)x)," \
     "service $(jq .service.sessions_per_sec BENCH_throughput.json) sessions/s" \
     "(p50 $(jq .service.round_p50_ms BENCH_throughput.json) ms," \
     "p99 $(jq .service.round_p99_ms BENCH_throughput.json) ms," \
     "$(jq .service.rehydrations BENCH_throughput.json) rehydrations)," \
     "entity-pool 2-thread speedup $(jq .thread_scaling.entity_pool.speedup_2 BENCH_throughput.json)x," \
     "portfolio 2-thread speedup $(jq .thread_scaling.portfolio.speedup_2 BENCH_throughput.json)x," \
     "all equivalence checks true"
