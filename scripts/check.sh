#!/usr/bin/env bash
# Tier-1 verify: configure + build + test, exactly as ROADMAP.md specifies.
#
#   cmake -B build -S . && cmake --build build -j && \
#     cd build && ctest --output-on-failure -j
#
# Usage: scripts/check.sh [build-dir]
# Environment:
#   CCR_WERROR=ON      gate the build on warnings (CI sets this)
#   CCR_BUILD_TYPE=... override the CMake build type (e.g. Release; the
#                      CI release job runs the whole suite with -O2/NDEBUG
#                      so the perf-path code is tested as benchmarked)
#   CCR_SANITIZE=ON    build everything with ASan+UBSan and run the whole
#                      suite under the sanitizers (the CI sanitize job);
#                      CCR_SANITIZE=thread builds with ThreadSanitizer
#                      instead (the CI tsan job — races in the portfolio
#                      ring / batched driver)
#   CCR_CCACHE=ON      route compilation through ccache (CI caches it)
#   CMAKE_GENERATOR    honored as usual (Ninja is used when available)

set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

CMAKE_ARGS=(-B "$BUILD_DIR" -S .)
if [[ -n "${CCR_WERROR:-}" ]]; then
  CMAKE_ARGS+=(-DCCR_WERROR="$CCR_WERROR")
fi
if [[ -n "${CCR_BUILD_TYPE:-}" ]]; then
  CMAKE_ARGS+=(-DCMAKE_BUILD_TYPE="$CCR_BUILD_TYPE")
fi
if [[ -n "${CCR_SANITIZE:-}" ]]; then
  CMAKE_ARGS+=(-DCCR_SANITIZE="$CCR_SANITIZE")
fi
if [[ "${CCR_CCACHE:-}" == "ON" ]] && command -v ccache >/dev/null 2>&1; then
  CMAKE_ARGS+=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi
if [[ -z "${CMAKE_GENERATOR:-}" ]] && command -v ninja >/dev/null 2>&1; then
  CMAKE_ARGS+=(-G Ninja)
fi

cmake "${CMAKE_ARGS[@]}"
cmake --build "$BUILD_DIR" -j
cd "$BUILD_DIR"
ctest --output-on-failure -j "$(nproc 2>/dev/null || echo 4)"
