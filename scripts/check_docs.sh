#!/usr/bin/env bash
# Docs link checker: every relative link target in the repo's markdown
# must exist. Catches the rot mode docs actually suffer — a file moves or
# a section is renamed and README keeps pointing at the old path.
#
# Checks [text](target) links in all tracked *.md files, skipping
# absolute URLs (http/https/mailto) and pure #anchors. A target with a
# #fragment is checked for file existence only.
#
# Usage: scripts/check_docs.sh

set -euo pipefail

cd "$(dirname "$0")/.."

fail=0
while IFS= read -r md; do
  dir="$(dirname "$md")"
  # Pull out every inline link target. Grep emits `(target)` captures one
  # per line; strip the parens, then filter.
  while IFS= read -r target; do
    [[ -z "$target" ]] && continue
    case "$target" in
      http://*|https://*|mailto:*) continue ;;  # external
      \#*) continue ;;                          # same-file anchor
    esac
    path="${target%%#*}"
    [[ -z "$path" ]] && continue
    if [[ ! -e "$dir/$path" && ! -e "$path" ]]; then
      echo "BROKEN: $md -> $target" >&2
      fail=1
    fi
  done < <(grep -o '\[[^]]*\]([^)]*)' "$md" 2>/dev/null \
             | sed 's/^\[[^]]*\](//; s/)$//' \
             | sed 's/ ".*"$//')
done < <(git ls-files '*.md')

if [[ "$fail" != 0 ]]; then
  echo "FAIL: broken relative links in markdown (see above)" >&2
  exit 1
fi
echo "OK: all relative markdown links resolve"
