#!/usr/bin/env bash
# CI service-smoke: start a real ccr_serve daemon, drive it with
# bench_service over the wire, and require a clean end-to-end pass:
#   * the daemon prints its READY line and serves the socket,
#   * the load generator completes with zero errors, byte-identical
#     replies after forced eviction/rehydration, and >= 1 rehydration,
#   * the SHUTDOWN frame stops the daemon, which prints its STATS line
#     and exits 0 (clean teardown of every thread).
#
# Reuses an existing build dir when given one; otherwise configures a
# Release build without tests (same as scripts/bench.sh).
#
# Usage: scripts/service_smoke.sh [build-dir]

set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-bench}"

if [[ ! -x "$BUILD_DIR/tools/ccr_serve" || ! -x "$BUILD_DIR/bench/bench_service" ]]; then
  CMAKE_ARGS=(-B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release -DCCR_BUILD_TESTS=OFF)
  if [[ -z "${CMAKE_GENERATOR:-}" ]] && command -v ninja >/dev/null 2>&1; then
    CMAKE_ARGS+=(-G Ninja)
  fi
  if [[ "${CCR_CCACHE:-}" == "ON" ]] && command -v ccache >/dev/null 2>&1; then
    CMAKE_ARGS+=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
  fi
  cmake "${CMAKE_ARGS[@]}"
  cmake --build "$BUILD_DIR" -j --target ccr_serve bench_service
fi

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
SOCK="$WORK/ccr.sock"
LOG="$WORK/serve.log"

# A tight resident cap forces LRU eviction on top of the explicit evicts
# bench_service issues — both rehydration paths get exercised.
"$BUILD_DIR/tools/ccr_serve" --listen "unix:$SOCK" --max-resident 2 \
  --workers 2 > "$LOG" 2>&1 &
SERVE_PID=$!

for _ in $(seq 100); do
  grep -q '^READY ' "$LOG" 2>/dev/null && break
  if ! kill -0 "$SERVE_PID" 2>/dev/null; then
    echo "FAIL: ccr_serve died before READY; log:" >&2
    cat "$LOG" >&2
    exit 1
  fi
  sleep 0.1
done
grep -q '^READY ' "$LOG" || { echo "FAIL: no READY line" >&2; cat "$LOG" >&2; exit 1; }
echo "Daemon up: $(grep '^READY ' "$LOG")"

SECTION="$WORK/service.json"
"$BUILD_DIR/bench/bench_service" --connect "unix:$SOCK" --shutdown \
  --sessions "${CCR_BENCH_SERVICE_SESSIONS:-12}" \
  --clients "${CCR_BENCH_SERVICE_CLIENTS:-3}" \
  --tuples "${CCR_BENCH_SERVICE_TUPLES:-40}" | tee "$SECTION"

jq -e '
  (.service.errors == 0)
  and (.service.identical_after_rehydrate == true)
  and (.service.clean_shutdown == true)
  and (.service.rehydrations >= 1)
' "$SECTION" >/dev/null || {
  echo "FAIL: service smoke gate tripped" >&2
  exit 1
}

# The SHUTDOWN frame must have stopped the daemon: exit 0, STATS printed.
SERVE_RC=0
wait "$SERVE_PID" || SERVE_RC=$?
if [[ "$SERVE_RC" != 0 ]]; then
  echo "FAIL: ccr_serve exited $SERVE_RC; log:" >&2
  cat "$LOG" >&2
  exit 1
fi
grep -q '^STATS ' "$LOG" || { echo "FAIL: no STATS line on exit" >&2; cat "$LOG" >&2; exit 1; }

echo "OK: $(jq .service.sessions_per_sec "$SECTION") sessions/s," \
     "p50 $(jq .service.round_p50_ms "$SECTION") ms," \
     "p99 $(jq .service.round_p99_ms "$SECTION") ms," \
     "$(jq .service.rehydrations "$SECTION") rehydrations, daemon exited 0"
