#!/usr/bin/env bash
# Multi-process sharded experiment run with an exactness check.
#
# Fans the corpus out over N ccr_experiment shard processes, pools the
# shard JSONs with `ccr_experiment --merge`, and asserts the merged
# ExperimentResult is byte-identical (timings excluded via --no-timings)
# to a single-process run over the same corpus — the property that makes
# multi-machine sharding a matter of scp'ing JSON files.
#
# Every run uses ccr_experiment's default engine — the persistent-solver
# session engine (incremental MaxSAT Suggest, selector-guarded CFDs) with
# the default modern solver heuristics, which means the cross-engine
# byte-identity below runs with between-round inprocessing enabled. As a
# second exactness gate, the single-process corpus is also resolved with
# --engine legacy (re-encode every round) and must serialize to the same
# bytes: the two engines are interchangeable, shard by shard. A third gate
# does the same for the solver: --solver legacy (arena binaries, Luby
# restarts, one-step minimization, no inprocessing, no model cache) must
# be byte-identical too — the pipeline consumes only SAT verdicts, so
# solver heuristics can never change a resolution. A fourth gate runs
# --solver nogc (arena GC and bounded variable elimination off, modern
# heuristics otherwise): compaction relocates clauses and BVE rewrites
# the problem, and neither may move a single result byte. A fifth gate
# runs --solver nosls (local-search seeding and MaxSAT upper-bound
# probing off): SLS reorders which models CDCL finds and which bound the
# Sinz search tries first, and none of it may move a result byte either.
# A sixth gate runs --portfolio 2 (every solve races two diversified CDCL
# workers with learnt-clause sharing, defer gate zero so the races really
# fire): which worker wins and what clauses crossed the ring are
# nondeterministic, the serialized result may not be. A seventh gate pins
# the backbone Deduce engine: on the --deduce naive pipeline (where the
# flag is live), the default chunked/model-sweeping engine and --solver
# nobackbone (one Lemma-6 solve per pair) must serialize to the same
# bytes — the entailed pair set is semantically determined, so how it is
# queried may never move a result byte.
#
# Usage: scripts/shard.sh [N] [build-dir]
# Environment:
#   CCR_SHARD_FLAGS  extra ccr_experiment run flags applied to shards and
#                    the reference run alike (e.g. "--dataset nba
#                    --entities 40 --threads 2")

set -euo pipefail

cd "$(dirname "$0")/.."
N="${1:-4}"
BUILD_DIR="${2:-build}"
# Intentionally unquoted below: a list of flags, not one argument.
FLAGS=(${CCR_SHARD_FLAGS:-})

if [[ ! -d "$BUILD_DIR" ]]; then
  CMAKE_ARGS=(-B "$BUILD_DIR" -S .)
  if [[ -z "${CMAKE_GENERATOR:-}" ]] && command -v ninja >/dev/null 2>&1; then
    CMAKE_ARGS+=(-G Ninja)
  fi
  cmake "${CMAKE_ARGS[@]}"
fi
cmake --build "$BUILD_DIR" -j --target ccr_experiment
BIN="$BUILD_DIR/tools/ccr_experiment"

WORK_DIR="$(mktemp -d)"
trap 'rm -rf "$WORK_DIR"' EXIT

echo "Fanning out $N shard processes..."
pids=()
for ((k = 0; k < N; ++k)); do
  "$BIN" "${FLAGS[@]}" --shard "$k/$N" --no-timings \
    --out "$WORK_DIR/shard_$k.json" &
  pids+=($!)
done
for pid in "${pids[@]}"; do
  wait "$pid"
done

"$BIN" --merge "$WORK_DIR"/shard_*.json --no-timings \
  --out "$WORK_DIR/merged.json"
"$BIN" "${FLAGS[@]}" --no-timings --out "$WORK_DIR/single.json"

if cmp "$WORK_DIR/merged.json" "$WORK_DIR/single.json"; then
  echo "OK: $N-shard merge is byte-identical to the single-process run"
else
  echo "FAIL: merged result differs from the single-process run" >&2
  diff "$WORK_DIR/merged.json" "$WORK_DIR/single.json" >&2 || true
  exit 1
fi

echo "Cross-engine exactness: session (default) vs --engine legacy..."
"$BIN" "${FLAGS[@]}" --engine legacy --no-timings \
  --out "$WORK_DIR/legacy.json"
if cmp "$WORK_DIR/legacy.json" "$WORK_DIR/single.json"; then
  echo "OK: legacy engine run is byte-identical to the session engine run"
else
  echo "FAIL: legacy engine result differs from the session engine" >&2
  diff "$WORK_DIR/legacy.json" "$WORK_DIR/single.json" >&2 || true
  exit 1
fi

echo "Cross-solver exactness: modern heuristics (default, inprocessing" \
     "on) vs --solver legacy..."
"$BIN" "${FLAGS[@]}" --solver legacy --no-timings \
  --out "$WORK_DIR/legacy_solver.json"
if cmp "$WORK_DIR/legacy_solver.json" "$WORK_DIR/single.json"; then
  echo "OK: legacy-heuristics run is byte-identical to the modern run"
else
  echo "FAIL: legacy-heuristics result differs from the modern solver" >&2
  diff "$WORK_DIR/legacy_solver.json" "$WORK_DIR/single.json" >&2 || true
  exit 1
fi

echo "Memory-lifecycle exactness: arena GC + BVE (default, on) vs" \
     "--solver nogc..."
"$BIN" "${FLAGS[@]}" --solver nogc --no-timings \
  --out "$WORK_DIR/nogc_solver.json"
if cmp "$WORK_DIR/nogc_solver.json" "$WORK_DIR/single.json"; then
  echo "OK: GC/BVE-off run is byte-identical to the default run"
else
  echo "FAIL: GC/BVE-off result differs from the default run" >&2
  diff "$WORK_DIR/nogc_solver.json" "$WORK_DIR/single.json" >&2 || true
  exit 1
fi

echo "Local-search exactness: SLS warm starts (default, on) vs" \
     "--solver nosls..."
"$BIN" "${FLAGS[@]}" --solver nosls --no-timings \
  --out "$WORK_DIR/nosls_solver.json"
if cmp "$WORK_DIR/nosls_solver.json" "$WORK_DIR/single.json"; then
  echo "OK: SLS-off run is byte-identical to the default run"
else
  echo "FAIL: SLS-off result differs from the default run" >&2
  diff "$WORK_DIR/nosls_solver.json" "$WORK_DIR/single.json" >&2 || true
  exit 1
fi

echo "Parallel-search exactness: single-threaded solves (default) vs" \
     "--portfolio 2..."
"$BIN" "${FLAGS[@]}" --portfolio 2 --no-timings \
  --out "$WORK_DIR/portfolio.json"
if cmp "$WORK_DIR/portfolio.json" "$WORK_DIR/single.json"; then
  echo "OK: portfolio run is byte-identical to the single-threaded run"
else
  echo "FAIL: portfolio result differs from the single-threaded run" >&2
  diff "$WORK_DIR/portfolio.json" "$WORK_DIR/single.json" >&2 || true
  exit 1
fi

echo "Backbone-Deduce exactness: chunked entailment (default) vs" \
     "--solver nobackbone, both on the --deduce naive pipeline..."
"$BIN" "${FLAGS[@]}" --deduce naive --no-timings \
  --out "$WORK_DIR/naive_backbone.json"
"$BIN" "${FLAGS[@]}" --deduce naive --solver nobackbone --no-timings \
  --out "$WORK_DIR/naive_perpair.json"
if cmp "$WORK_DIR/naive_backbone.json" "$WORK_DIR/naive_perpair.json"; then
  echo "OK: backbone Deduce run is byte-identical to the per-pair run"
else
  echo "FAIL: backbone Deduce result differs from the per-pair run" >&2
  diff "$WORK_DIR/naive_backbone.json" "$WORK_DIR/naive_perpair.json" \
    >&2 || true
  exit 1
fi
