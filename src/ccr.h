// Umbrella header for libccr — conflict resolution by inferring data
// currency and consistency (Fan, Geerts, Tang, Yu; ICDE 2013).
//
// Typical use:
//
//   #include "src/ccr.h"
//
//   ccr::Specification se = ...;      // It + Σ + Γ
//   auto result = ccr::Resolve(se, &oracle);
//   if (result.ok() && result->complete) { ... result->true_values ... }
//
// See examples/quickstart.cpp for the paper's Edith/George walkthrough.

#ifndef CCR_CCR_H_
#define CCR_CCR_H_

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/timer.h"
#include "src/constraints/parser.h"
#include "src/constraints/specification.h"
#include "src/core/deduce.h"
#include "src/core/derivation.h"
#include "src/core/implication.h"
#include "src/core/isvalid.h"
#include "src/core/resolver.h"
#include "src/core/session.h"
#include "src/core/suggest.h"
#include "src/data/career_generator.h"
#include "src/data/dataset.h"
#include "src/data/nba_generator.h"
#include "src/data/person_generator.h"
#include "src/encode/cnf_builder.h"
#include "src/encode/instantiation.h"
#include "src/eval/experiment.h"
#include "src/eval/metrics.h"
#include "src/eval/pick.h"
#include "src/eval/result_io.h"
#include "src/graph/clique.h"
#include "src/maxsat/maxsat.h"
#include "src/maxsat/walksat.h"
#include "src/order/partial_order.h"
#include "src/relational/entity_instance.h"
#include "src/sat/dimacs.h"
#include "src/sat/solver.h"
#include "src/service/client.h"
#include "src/service/server.h"
#include "src/service/session_manager.h"
#include "src/service/session_runtime.h"
#include "src/service/snapshot.h"
#include "src/service/wire.h"

#endif  // CCR_CCR_H_
