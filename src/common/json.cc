#include "src/common/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>

namespace ccr {
namespace json {

void AppendEscaped(std::string_view v, std::string* out) {
  for (const char c : v) {
    const unsigned char u = static_cast<unsigned char>(c);
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\b':
        out->append("\\b");
        break;
      case '\f':
        out->append("\\f");
        break;
      default:
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", u);
          out->append(buf);
        } else {
          // Bytes >= 0x80 pass through raw (UTF-8 pass-through): strings
          // are byte strings and the reader accepts raw high bytes.
          out->push_back(c);
        }
    }
  }
}

void Writer::Value(double v) {
  // %.17g survives a double -> text -> double round trip exactly, and
  // equal doubles format to equal bytes — both load-bearing for the
  // byte-identity regression checks built on these files.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out_.append(buf);
  first_ = false;
}

bool Reader::ConsumeWord(std::string_view word) {
  SkipWs();
  if (text_.substr(pos_, word.size()) != word) return false;
  pos_ += word.size();
  return true;
}

Status Reader::ParseString(std::string* out) {
  if (!Consume('"')) return Fail("expected string");
  out->clear();
  while (pos_ < text_.size() && text_[pos_] != '"') {
    char c = text_[pos_];
    if (c != '\\') {
      out->push_back(c);
      ++pos_;
      continue;
    }
    ++pos_;  // backslash
    if (pos_ >= text_.size()) return Fail("unterminated escape");
    const char esc = text_[pos_++];
    switch (esc) {
      case '"':
        out->push_back('"');
        break;
      case '\\':
        out->push_back('\\');
        break;
      case '/':
        out->push_back('/');
        break;
      case 'n':
        out->push_back('\n');
        break;
      case 't':
        out->push_back('\t');
        break;
      case 'r':
        out->push_back('\r');
        break;
      case 'b':
        out->push_back('\b');
        break;
      case 'f':
        out->push_back('\f');
        break;
      case 'u': {
        if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
          const char h = text_[pos_ + static_cast<size_t>(i)];
          code <<= 4;
          if (h >= '0' && h <= '9') {
            code |= static_cast<unsigned>(h - '0');
          } else if (h >= 'a' && h <= 'f') {
            code |= static_cast<unsigned>(h - 'a' + 10);
          } else if (h >= 'A' && h <= 'F') {
            code |= static_cast<unsigned>(h - 'A' + 10);
          } else {
            return Fail("bad \\u escape digit");
          }
        }
        // Strings are byte strings: only single-byte escapes are
        // meaningful (the writer never emits larger code points).
        if (code > 0xFF) return Fail("\\u escape above 0xFF unsupported");
        out->push_back(static_cast<char>(code));
        pos_ += 4;
        break;
      }
      default:
        return Fail("unknown escape sequence");
    }
  }
  if (pos_ >= text_.size()) return Fail("unterminated string");
  ++pos_;  // closing quote
  return Status::OK();
}

Status Reader::ParseDouble(double* out) {
  SkipWs();
  const char* begin = text_.data() + pos_;
  const char* end = text_.data() + text_.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  if (ec != std::errc()) return Fail("expected number");
  pos_ += static_cast<size_t>(ptr - begin);
  return Status::OK();
}

Status Reader::ParseInt(int* out) {
  double v = 0;
  CCR_RETURN_NOT_OK(ParseDouble(&v));
  // Range-check before the cast: double -> int of an out-of-range value
  // is UB, so the guard must run on the double.
  if (v < static_cast<double>(std::numeric_limits<int>::min()) ||
      v > static_cast<double>(std::numeric_limits<int>::max()) ||
      v != std::trunc(v)) {
    return Fail("expected integer");
  }
  *out = static_cast<int>(v);
  return Status::OK();
}

Status Reader::ParseInt64(int64_t* out) {
  SkipWs();
  const char* begin = text_.data() + pos_;
  const char* end = text_.data() + text_.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  if (ec != std::errc()) return Fail("expected integer");
  pos_ += static_cast<size_t>(ptr - begin);
  return Status::OK();
}

Status Reader::ParseBool(bool* out) {
  if (ConsumeWord("true")) {
    *out = true;
    return Status::OK();
  }
  if (ConsumeWord("false")) {
    *out = false;
    return Status::OK();
  }
  return Fail("expected bool");
}

}  // namespace json
}  // namespace ccr
