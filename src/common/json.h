// Minimal JSON emitter and recursive-descent reader shared by every
// module that speaks the repo's versioned JSON formats (ExperimentResult
// files, session snapshots, service replies).
//
// The writer produces a *stable* byte encoding: fixed field order is the
// caller's job, doubles format as "%.17g" (round-trippable, and equal
// doubles format to equal bytes), and strings escape only what must be
// escaped — so equal values serialize to equal bytes and byte comparison
// works as a cross-process regression check.
//
// The reader is strict where it matters: field handlers are driven off the
// key so any field order parses, but callers reject unknown keys, and
// numbers/strings fail loudly instead of coercing. Strings are byte
// strings: the writer emits control bytes as \u00XX and the reader maps
// \uXXXX escapes with XXXX <= 0xFF back to single bytes, so any byte
// sequence round-trips exactly.

#ifndef CCR_COMMON_JSON_H_
#define CCR_COMMON_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/status.h"

namespace ccr {
namespace json {

/// Appends `v` JSON-escaped (no surrounding quotes) to `out`.
void AppendEscaped(std::string_view v, std::string* out);

/// \brief Stable-byte JSON emitter. Objects newline-indent their fields
/// (indent 0 emits a single line); arrays are emitted inline.
class Writer {
 public:
  explicit Writer(int indent) : indent_(indent) {}

  std::string Take() && { return std::move(out_); }

  void BeginObject() {
    out_.push_back('{');
    ++depth_;
    first_ = true;
  }
  void EndObject() {
    --depth_;
    Newline();
    out_.push_back('}');
    first_ = false;
  }
  void Key(const char* name) {
    if (!first_) out_.push_back(',');
    Newline();
    out_.push_back('"');
    out_.append(name);
    out_.append("\": ");
    first_ = true;  // the value is the first token after the key
  }
  void Value(int v) {
    out_.append(std::to_string(v));
    first_ = false;
  }
  void Value(int64_t v) {
    out_.append(std::to_string(v));
    first_ = false;
  }
  void Value(double v);
  void Value(bool v) {
    out_.append(v ? "true" : "false");
    first_ = false;
  }
  void Value(const char* v) { Value(std::string_view(v)); }
  void Value(std::string_view v) {
    out_.push_back('"');
    AppendEscaped(v, &out_);
    out_.push_back('"');
    first_ = false;
  }
  /// Emits the null literal.
  void NullValue() {
    out_.append("null");
    first_ = false;
  }
  void BeginArray() {
    out_.push_back('[');
    first_ = false;
  }
  void ArraySep(bool first) {
    if (!first) out_.append(", ");
  }
  void EndArray() { out_.push_back(']'); }

 private:
  void Newline() {
    if (indent_ <= 0) return;
    out_.push_back('\n');
    out_.append(static_cast<size_t>(indent_ * depth_), ' ');
  }

  std::string out_;
  int indent_;
  int depth_ = 0;
  bool first_ = true;
};

/// \brief Recursive-descent reader over the subset the schemas need:
/// objects, arrays, numbers, strings, bools, null. `context` prefixes
/// every error message (e.g. "ExperimentResult JSON").
class Reader {
 public:
  Reader(std::string_view text, std::string context)
      : text_(text), context_(std::move(context)) {}

  Status Fail(const std::string& what) {
    return Status::InvalidArgument(context_ + ": " + what + " near offset " +
                                   std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  /// Consumes the literal `word` (e.g. "null", "true") if present.
  bool ConsumeWord(std::string_view word);

  bool AtEnd() {
    SkipWs();
    return pos_ >= text_.size();
  }

  Status ParseString(std::string* out);
  Status ParseDouble(double* out);
  /// Integral double in int range; rejects fractions ("expected integer").
  Status ParseInt(int* out);
  /// Exact 64-bit parse (no double round trip — int64 values beyond 2^53
  /// must survive).
  Status ParseInt64(int64_t* out);
  Status ParseBool(bool* out);

  /// Parses `{ "k": ..., ... }`, calling `field(key)` for each value; the
  /// callback must consume the value.
  template <typename FieldFn>
  Status ParseObject(FieldFn field) {
    if (!Consume('{')) return Fail("expected '{'");
    if (Consume('}')) return Status::OK();
    while (true) {
      std::string key;
      CCR_RETURN_NOT_OK(ParseString(&key));
      if (!Consume(':')) return Fail("expected ':'");
      CCR_RETURN_NOT_OK(field(key));
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Fail("expected ',' or '}'");
    }
  }

  /// Parses `[ ... ]`, calling `element()` once per element.
  template <typename ElementFn>
  Status ParseArray(ElementFn element) {
    if (!Consume('[')) return Fail("expected '['");
    if (Consume(']')) return Status::OK();
    while (true) {
      CCR_RETURN_NOT_OK(element());
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Fail("expected ',' or ']'");
    }
  }

 private:
  std::string_view text_;
  std::string context_;
  size_t pos_ = 0;
};

}  // namespace json
}  // namespace ccr

#endif  // CCR_COMMON_JSON_H_
