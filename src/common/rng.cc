#include "src/common/rng.h"

#include "src/common/status.h"

namespace ccr {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::Below(uint64_t bound) {
  CCR_DCHECK(bound > 0);
  // Lemire's multiply-shift rejection method.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::Range(int64_t lo, int64_t hi) {
  CCR_DCHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  Below(static_cast<uint64_t>(hi - lo) + 1ULL));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace ccr
