// Deterministic pseudo-random number generation for data generators,
// experiment harnesses and the WalkSAT local search.
//
// We use xoshiro256** (Blackman & Vigna) seeded via splitmix64 so that every
// dataset and experiment in this repository is reproducible from a single
// 64-bit seed, independent of the standard library implementation.

#ifndef CCR_COMMON_RNG_H_
#define CCR_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ccr {

/// \brief Seeded, implementation-independent PRNG (xoshiro256**).
class Rng {
 public:
  /// Seeds the generator; equal seeds yield equal streams on all platforms.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound) using Lemire's unbiased method.
  /// Precondition: bound > 0.
  uint64_t Below(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t Range(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Returns true with probability p (clamped to [0,1]).
  bool Chance(double p);

  /// Fisher–Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Below(i));
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

  /// Picks a uniformly random element. Precondition: !items.empty().
  template <typename T>
  const T& PickFrom(const std::vector<T>& items) {
    return items[static_cast<size_t>(Below(items.size()))];
  }

  /// Forks an independent stream (for per-entity generators).
  Rng Fork();

 private:
  uint64_t state_[4];
};

}  // namespace ccr

#endif  // CCR_COMMON_RNG_H_
