// Status / Result<T> error handling, in the style of Arrow and RocksDB.
//
// Recoverable errors in libccr never throw across public API boundaries;
// every fallible operation returns a Status or a Result<T>. Programming
// errors (violated preconditions) use CCR_DCHECK and abort in debug builds.

#ifndef CCR_COMMON_STATUS_H_
#define CCR_COMMON_STATUS_H_

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <variant>

namespace ccr {

/// Broad machine-readable classification of an error.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller passed something malformed
  kInvalidSpec,       // the entity specification is unsatisfiable/ill-formed
  kNotFound,          // a named attribute/value does not exist
  kResourceExhausted, // configured limit (conflicts, clauses, time) exceeded
  kInternal,          // invariant violation that was caught gracefully
};

/// \brief Outcome of a fallible operation: OK, or a code plus message.
///
/// Statuses are cheap to copy when OK (no allocation) and carry a
/// human-readable message otherwise.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status InvalidSpec(std::string msg) {
    return Status(StatusCode::kInvalidSpec, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<code>: <message>" for logs and test failures.
  std::string ToString() const {
    if (ok()) return "OK";
    const char* name = "Unknown";
    switch (code_) {
      case StatusCode::kOk: name = "OK"; break;
      case StatusCode::kInvalidArgument: name = "InvalidArgument"; break;
      case StatusCode::kInvalidSpec: name = "InvalidSpec"; break;
      case StatusCode::kNotFound: name = "NotFound"; break;
      case StatusCode::kResourceExhausted: name = "ResourceExhausted"; break;
      case StatusCode::kInternal: name = "Internal"; break;
    }
    return std::string(name) + ": " + message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// \brief A value of type T or an error Status (Arrow-style Result).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(repr_).ok() && "Result from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(repr_);
  }

  /// Precondition: ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> repr_;
};

// Propagates a non-OK Status to the caller.
#define CCR_RETURN_NOT_OK(expr)            \
  do {                                     \
    ::ccr::Status _st = (expr);            \
    if (!_st.ok()) return _st;             \
  } while (0)

// Unwraps a Result<T> into `lhs`, propagating errors.
#define CCR_ASSIGN_OR_RETURN(lhs, rexpr)   \
  auto CCR_CONCAT_(_res, __LINE__) = (rexpr);            \
  if (!CCR_CONCAT_(_res, __LINE__).ok())                 \
    return CCR_CONCAT_(_res, __LINE__).status();         \
  lhs = std::move(CCR_CONCAT_(_res, __LINE__)).value()

#define CCR_CONCAT_IMPL_(a, b) a##b
#define CCR_CONCAT_(a, b) CCR_CONCAT_IMPL_(a, b)

// Precondition checks for programming errors; active in all builds because
// the cost is negligible relative to SAT solving.
#define CCR_CHECK(cond)                                                \
  do {                                                                 \
    if (!(cond)) {                                                     \
      std::fprintf(stderr, "CCR_CHECK failed at %s:%d: %s\n", __FILE__, \
                   __LINE__, #cond);                                   \
      std::abort();                                                    \
    }                                                                  \
  } while (0)

#ifdef NDEBUG
#define CCR_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define CCR_DCHECK(cond) CCR_CHECK(cond)
#endif

}  // namespace ccr

#endif  // CCR_COMMON_STATUS_H_
