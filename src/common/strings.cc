#include "src/common/strings.h"

#include <cctype>
#include <charconv>
#include <cstdlib>

namespace ccr {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t b = 0;
  while (b < text.size() &&
         std::isspace(static_cast<unsigned char>(text[b]))) {
    ++b;
  }
  size_t e = text.size();
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) {
    --e;
  }
  return text.substr(b, e - b);
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool ParseInt64(std::string_view text, int64_t* out) {
  const char* first = text.data();
  const char* last = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(first, last, *out);
  return ec == std::errc() && ptr == last && !text.empty();
}

bool ParseDouble(std::string_view text, double* out) {
  if (text.empty()) return false;
  std::string buf(text);
  char* end = nullptr;
  *out = std::strtod(buf.c_str(), &end);
  return end == buf.c_str() + buf.size();
}

}  // namespace ccr
