// Small string helpers shared by the constraint parser and printers.

#ifndef CCR_COMMON_STRINGS_H_
#define CCR_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace ccr {

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Parses a signed decimal integer; returns false on any non-numeric input.
bool ParseInt64(std::string_view text, int64_t* out);

/// Parses a floating point literal; returns false on any non-numeric input.
bool ParseDouble(std::string_view text, double* out);

}  // namespace ccr

#endif  // CCR_COMMON_STRINGS_H_
