// Monotonic wall-clock timer used by the benchmark harnesses to reproduce
// the paper's elapsed-time figures.

#ifndef CCR_COMMON_TIMER_H_
#define CCR_COMMON_TIMER_H_

#include <chrono>

namespace ccr {

/// \brief Steady-clock stopwatch reporting elapsed milliseconds.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Resets the stopwatch to zero.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed wall time since construction or last Restart, in milliseconds.
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ccr

#endif  // CCR_COMMON_TIMER_H_
