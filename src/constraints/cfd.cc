#include "src/constraints/cfd.h"

namespace ccr {

std::string ConstantCfd::ToString(const Schema& schema) const {
  std::string out = "cfd (";
  for (size_t i = 0; i < lhs_.size(); ++i) {
    if (i > 0) out += " & ";
    out += schema.name(lhs_[i].first) + "='" + lhs_[i].second.ToString() +
           "'";
  }
  out += " -> " + schema.name(rhs_attr_) + "='" + rhs_value_.ToString() +
         "')";
  return out;
}

}  // namespace ccr
