// Constant conditional functional dependencies tp[X] → tp[B] (§II-B).
//
// A constant CFD is interpreted on the *current tuple* LST of a completion:
// if the most current X-values equal the pattern, the most current B-value
// must be (is repaired to) the pattern's B-constant. Because they speak
// about a single tuple, constant CFDs suffice here — general two-tuple CFDs
// are not needed (§II-B, last remark).

#ifndef CCR_CONSTRAINTS_CFD_H_
#define CCR_CONSTRAINTS_CFD_H_

#include <string>
#include <utility>
#include <vector>

#include "src/relational/schema.h"
#include "src/relational/value.h"

namespace ccr {

/// \brief One constant CFD: conjunction of (attribute = constant) on the
/// left implying (attribute = constant) on the right.
class ConstantCfd {
 public:
  ConstantCfd() = default;
  ConstantCfd(std::vector<std::pair<int, Value>> lhs, int rhs_attr,
              Value rhs_value)
      : lhs_(std::move(lhs)),
        rhs_attr_(rhs_attr),
        rhs_value_(std::move(rhs_value)) {}

  const std::vector<std::pair<int, Value>>& lhs() const { return lhs_; }
  int rhs_attr() const { return rhs_attr_; }
  const Value& rhs_value() const { return rhs_value_; }

  /// Renders e.g. "cfd (AC=213 -> city=LA)".
  std::string ToString(const Schema& schema) const;

 private:
  std::vector<std::pair<int, Value>> lhs_;
  int rhs_attr_ = -1;
  Value rhs_value_;
};

}  // namespace ccr

#endif  // CCR_CONSTRAINTS_CFD_H_
