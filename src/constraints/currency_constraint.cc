#include "src/constraints/currency_constraint.h"

namespace ccr {

bool CurrencyConstraint::ComparisonsHold(const Tuple& t1,
                                         const Tuple& t2) const {
  for (const auto& p : cmp_preds_) {
    if (!p.Eval(t1, t2)) return false;
  }
  for (const auto& p : const_preds_) {
    if (!p.Eval(t1, t2)) return false;
  }
  return true;
}

std::string CurrencyConstraint::ToString(const Schema& schema) const {
  std::string out = "forall t1,t2 (";
  bool first = true;
  auto sep = [&] {
    if (!first) out += " & ";
    first = false;
  };
  for (const auto& p : order_preds_) {
    sep();
    out += "t1 < t2 @ " + schema.name(p.attr);
  }
  for (const auto& p : cmp_preds_) {
    sep();
    out += "t1[" + schema.name(p.attr) + "] " + CmpOpToString(p.op) +
           " t2[" + schema.name(p.attr) + "]";
  }
  for (const auto& p : const_preds_) {
    sep();
    out += "t" + std::to_string(p.tuple_ref) + "[" + schema.name(p.attr) +
           "] " + CmpOpToString(p.op) + " '" + p.constant.ToString() + "'";
  }
  if (first) out += "true";
  out += " -> t1 < t2 @ " + schema.name(head_attr_) + ")";
  return out;
}

}  // namespace ccr
