// Currency constraints ∀t1,t2 (ω → t1 ≺_Ar t2) (§II-A).
//
// Unlike the denial constraints of Fan/Geerts/Wijsen (PODS'11), currency
// constraints are two-tuple rules in the style of functional dependencies;
// the paper shows this restriction drops the complexity of the core
// reasoning problems by one level of the polynomial hierarchy (§IV).

#ifndef CCR_CONSTRAINTS_CURRENCY_CONSTRAINT_H_
#define CCR_CONSTRAINTS_CURRENCY_CONSTRAINT_H_

#include <string>
#include <vector>

#include "src/constraints/predicate.h"
#include "src/relational/schema.h"

namespace ccr {

/// \brief One currency constraint: body predicates over (t1, t2) implying
/// t1 ≺_head_attr t2.
class CurrencyConstraint {
 public:
  CurrencyConstraint() = default;
  explicit CurrencyConstraint(int head_attr) : head_attr_(head_attr) {}

  int head_attr() const { return head_attr_; }
  void set_head_attr(int attr) { head_attr_ = attr; }

  void AddOrder(int attr) { order_preds_.push_back({attr}); }
  void AddAttrCompare(int attr, CmpOp op) {
    cmp_preds_.push_back({attr, op});
  }
  void AddConstCompare(int tuple_ref, int attr, CmpOp op, Value constant) {
    const_preds_.push_back({tuple_ref, attr, op, std::move(constant)});
  }

  const std::vector<OrderPredicate>& order_predicates() const {
    return order_preds_;
  }
  const std::vector<AttrComparePredicate>& compare_predicates() const {
    return cmp_preds_;
  }
  const std::vector<ConstComparePredicate>& constant_predicates() const {
    return const_preds_;
  }

  /// True if the body contains no order predicates: the constraint can be
  /// evaluated on values alone. The favored Pick baseline of §VI uses only
  /// such constraints.
  bool IsComparisonOnly() const { return order_preds_.empty(); }

  /// Evaluates the comparison part of ω on a concrete tuple pair: all
  /// AttrCompare and ConstCompare conjuncts. Order predicates are *not*
  /// evaluated here — grounding turns them into Boolean atoms (§V-A).
  bool ComparisonsHold(const Tuple& t1, const Tuple& t2) const;

  /// Renders the constraint like the paper, e.g.
  /// "forall t1,t2 (t1[status]='working' & t2[status]='retired' ->
  ///   t1 < t2 @ status)".
  std::string ToString(const Schema& schema) const;

 private:
  int head_attr_ = -1;
  std::vector<OrderPredicate> order_preds_;
  std::vector<AttrComparePredicate> cmp_preds_;
  std::vector<ConstComparePredicate> const_preds_;
};

}  // namespace ccr

#endif  // CCR_CONSTRAINTS_CURRENCY_CONSTRAINT_H_
