#include "src/constraints/parser.h"

#include <string>

#include "src/common/strings.h"

namespace ccr {

namespace {

// Splits "lhs -> rhs" on the last "->"; fails if absent.
Status SplitArrow(std::string_view text, std::string_view* lhs,
                  std::string_view* rhs) {
  size_t pos = text.rfind("->");
  if (pos == std::string_view::npos) {
    return Status::InvalidArgument("missing '->' in constraint: " +
                                   std::string(text));
  }
  *lhs = StripWhitespace(text.substr(0, pos));
  *rhs = StripWhitespace(text.substr(pos + 2));
  return Status::OK();
}

// Finds the comparison operator in `text`, longest match first, outside of
// quotes. Returns npos if none.
size_t FindOp(std::string_view text, CmpOp* op, size_t* op_len) {
  bool in_quote = false;
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == '\'') in_quote = !in_quote;
    if (in_quote) continue;
    auto two = text.substr(i, 2);
    if (two == "!=") { *op = CmpOp::kNe; *op_len = 2; return i; }
    if (two == "<=") { *op = CmpOp::kLe; *op_len = 2; return i; }
    if (two == ">=") { *op = CmpOp::kGe; *op_len = 2; return i; }
    if (c == '=') { *op = CmpOp::kEq; *op_len = 1; return i; }
    if (c == '<') { *op = CmpOp::kLt; *op_len = 1; return i; }
    if (c == '>') { *op = CmpOp::kGt; *op_len = 1; return i; }
  }
  return std::string_view::npos;
}

// Parses "tN[attr]"; returns tuple_ref (1 or 2) and attr index, or
// tuple_ref 0 if `text` is not of this shape.
Status ParseTupleRef(const Schema& schema, std::string_view text,
                     int* tuple_ref, int* attr) {
  text = StripWhitespace(text);
  *tuple_ref = 0;
  if (text.size() < 4 || text[0] != 't') return Status::OK();
  if (text[1] != '1' && text[1] != '2') return Status::OK();
  if (text[2] != '[' || text.back() != ']') return Status::OK();
  std::string name(StripWhitespace(text.substr(3, text.size() - 4)));
  CCR_ASSIGN_OR_RETURN(*attr, schema.Require(name));
  *tuple_ref = text[1] - '0';
  return Status::OK();
}

}  // namespace

Result<Value> ParseValueLiteral(std::string_view text) {
  text = StripWhitespace(text);
  if (text == "null") return Value::Null();
  if (text.size() >= 2 && text.front() == '\'' && text.back() == '\'') {
    return Value::Str(std::string(text.substr(1, text.size() - 2)));
  }
  int64_t i = 0;
  if (ParseInt64(text, &i)) return Value::Int(i);
  double d = 0;
  if (ParseDouble(text, &d)) return Value::Real(d);
  return Status::InvalidArgument("cannot parse literal: " +
                                 std::string(text));
}

Result<CurrencyConstraint> ParseCurrencyConstraint(const Schema& schema,
                                                   std::string_view text) {
  std::string_view body_text;
  std::string_view head_text;
  CCR_RETURN_NOT_OK(SplitArrow(text, &body_text, &head_text));

  CurrencyConstraint out;
  CCR_ASSIGN_OR_RETURN(int head_attr,
                       schema.Require(std::string(head_text)));
  out.set_head_attr(head_attr);

  if (StripWhitespace(body_text) == "true" || body_text.empty()) return out;

  for (const std::string& raw : Split(body_text, '&')) {
    std::string_view conj = StripWhitespace(raw);
    if (conj.empty()) continue;
    // prec(attr)
    if (StartsWith(conj, "prec(") && conj.back() == ')') {
      std::string name(
          StripWhitespace(conj.substr(5, conj.size() - 6)));
      CCR_ASSIGN_OR_RETURN(int attr, schema.Require(name));
      out.AddOrder(attr);
      continue;
    }
    CmpOp op;
    size_t op_len = 0;
    size_t op_pos = FindOp(conj, &op, &op_len);
    if (op_pos == std::string_view::npos) {
      return Status::InvalidArgument("no operator in conjunct: " +
                                     std::string(conj));
    }
    std::string_view lhs = StripWhitespace(conj.substr(0, op_pos));
    std::string_view rhs = StripWhitespace(conj.substr(op_pos + op_len));

    int l_ref = 0, l_attr = -1;
    CCR_RETURN_NOT_OK(ParseTupleRef(schema, lhs, &l_ref, &l_attr));
    if (l_ref == 0) {
      return Status::InvalidArgument(
          "left side of a currency conjunct must be t1[..] or t2[..]: " +
          std::string(conj));
    }
    int r_ref = 0, r_attr = -1;
    CCR_RETURN_NOT_OK(ParseTupleRef(schema, rhs, &r_ref, &r_attr));
    if (r_ref != 0) {
      // two-tuple comparison: must be t1 op t2 on the same attribute
      if (l_ref != 1 || r_ref != 2 || l_attr != r_attr) {
        return Status::InvalidArgument(
            "two-tuple comparison must be t1[A] op t2[A]: " +
            std::string(conj));
      }
      out.AddAttrCompare(l_attr, op);
    } else {
      CCR_ASSIGN_OR_RETURN(Value c, ParseValueLiteral(rhs));
      out.AddConstCompare(l_ref, l_attr, op, std::move(c));
    }
  }
  return out;
}

Result<ConstantCfd> ParseCfd(const Schema& schema, std::string_view text) {
  std::string_view lhs_text;
  std::string_view rhs_text;
  CCR_RETURN_NOT_OK(SplitArrow(text, &lhs_text, &rhs_text));

  auto parse_eq = [&](std::string_view part,
                      std::pair<int, Value>* out) -> Status {
    CmpOp op;
    size_t op_len = 0;
    size_t op_pos = FindOp(part, &op, &op_len);
    if (op_pos == std::string_view::npos || op != CmpOp::kEq) {
      return Status::InvalidArgument("CFD parts must be attr = literal: " +
                                     std::string(part));
    }
    std::string name(StripWhitespace(part.substr(0, op_pos)));
    CCR_ASSIGN_OR_RETURN(int attr, schema.Require(name));
    CCR_ASSIGN_OR_RETURN(Value v,
                         ParseValueLiteral(part.substr(op_pos + op_len)));
    *out = {attr, std::move(v)};
    return Status::OK();
  };

  std::vector<std::pair<int, Value>> lhs;
  for (const std::string& raw : Split(lhs_text, '&')) {
    std::pair<int, Value> item;
    CCR_RETURN_NOT_OK(parse_eq(StripWhitespace(raw), &item));
    lhs.push_back(std::move(item));
  }
  std::pair<int, Value> rhs;
  CCR_RETURN_NOT_OK(parse_eq(rhs_text, &rhs));
  return ConstantCfd(std::move(lhs), rhs.first, std::move(rhs.second));
}

}  // namespace ccr
