// Textual format for currency constraints and constant CFDs, so examples
// and tests can state constraints the way the paper writes them (Fig. 3).
//
// Currency constraints:  `<conjunct> & ... & <conjunct> -> <attr>`
//   conjuncts:
//     prec(<attr>)                      t1 ≺_attr t2
//     t1[<attr>] <op> t2[<attr>]        two-tuple comparison (same attr)
//     t1[<attr>] <op> <literal>         constant comparison on t1
//     t2[<attr>] <op> <literal>         constant comparison on t2
//   and the head <attr> denotes t1 ≺_attr t2.
//
// Constant CFDs:  `<attr> = <literal> & ... -> <attr> = <literal>`
//
// Literals: 'single quoted strings', bare integers (42), bare reals (4.2),
// and the keyword null. Operators: = != < <= > >=.
//
// Example (ϕ1 and ψ1 of Fig. 3):
//   t1[status] = 'working' & t2[status] = 'retired' -> status
//   AC = '213' -> city = 'LA'

#ifndef CCR_CONSTRAINTS_PARSER_H_
#define CCR_CONSTRAINTS_PARSER_H_

#include <string_view>

#include "src/constraints/cfd.h"
#include "src/constraints/currency_constraint.h"
#include "src/relational/schema.h"

namespace ccr {

/// Parses one currency constraint; attribute names resolve via `schema`.
Result<CurrencyConstraint> ParseCurrencyConstraint(const Schema& schema,
                                                   std::string_view text);

/// Parses one constant CFD.
Result<ConstantCfd> ParseCfd(const Schema& schema, std::string_view text);

/// Parses a literal: quoted string, number, or null.
Result<Value> ParseValueLiteral(std::string_view text);

}  // namespace ccr

#endif  // CCR_CONSTRAINTS_PARSER_H_
