#include "src/constraints/predicate.h"

namespace ccr {

bool EvalCmp(CmpOp op, const Value& a, const Value& b) {
  switch (op) {
    case CmpOp::kEq: return a == b;
    case CmpOp::kNe: return !(a == b);
    case CmpOp::kLt: return a.Compare(b) < 0;
    case CmpOp::kLe: return a.Compare(b) <= 0;
    case CmpOp::kGt: return a.Compare(b) > 0;
    case CmpOp::kGe: return a.Compare(b) >= 0;
  }
  return false;
}

std::string CmpOpToString(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return "=";
    case CmpOp::kNe: return "!=";
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGt: return ">";
    case CmpOp::kGe: return ">=";
  }
  return "?";
}

}  // namespace ccr
