// Predicates appearing in the body ω of currency constraints (§II-A).
//
// ω is a conjunction of:
//   (1) t1 ≺_Al t2              — an order predicate;
//   (2) t1[Al] op t2[Al]         — a two-tuple comparison;
//   (3) ti[Al] op c, i ∈ {1,2}   — a tuple/constant comparison,
// with op one of =, !=, <, <=, >, >=.

#ifndef CCR_CONSTRAINTS_PREDICATE_H_
#define CCR_CONSTRAINTS_PREDICATE_H_

#include <string>

#include "src/relational/schema.h"
#include "src/relational/tuple.h"
#include "src/relational/value.h"

namespace ccr {

/// Comparison operator of a predicate.
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// Evaluates `a op b` under the library-wide total order on values
/// (null < numbers < strings; see Value::Compare).
bool EvalCmp(CmpOp op, const Value& a, const Value& b);

/// Renders "=", "!=", "<", "<=", ">", ">=".
std::string CmpOpToString(CmpOp op);

/// \brief Order predicate t1 ≺_attr t2.
struct OrderPredicate {
  int attr = -1;
};

/// \brief Two-tuple comparison t1[attr] op t2[attr].
struct AttrComparePredicate {
  int attr = -1;
  CmpOp op = CmpOp::kEq;

  bool Eval(const Tuple& t1, const Tuple& t2) const {
    return EvalCmp(op, t1.at(attr), t2.at(attr));
  }
};

/// \brief Tuple/constant comparison t{tuple_ref}[attr] op constant,
/// with tuple_ref 1 or 2.
struct ConstComparePredicate {
  int tuple_ref = 1;  // 1 or 2
  int attr = -1;
  CmpOp op = CmpOp::kEq;
  Value constant;

  bool Eval(const Tuple& t1, const Tuple& t2) const {
    const Tuple& t = (tuple_ref == 1) ? t1 : t2;
    return EvalCmp(op, t.at(attr), constant);
  }
};

}  // namespace ccr

#endif  // CCR_CONSTRAINTS_PREDICATE_H_
