#include "src/constraints/specification.h"

namespace ccr {

std::string Specification::ToString() const {
  std::string out = instance().ToString();
  out += "currency orders: " + std::to_string(temporal.TotalOrderPairs()) +
         " pairs\n";
  for (const auto& c : sigma) out += "  " + c.ToString(schema()) + "\n";
  for (const auto& c : gamma) out += "  " + c.ToString(schema()) + "\n";
  return out;
}

Result<Specification> Extend(const Specification& base,
                             const PartialTemporalOrder& delta) {
  Specification out;
  CCR_ASSIGN_OR_RETURN(out.temporal, Extend(base.temporal, delta));
  out.sigma = base.sigma;
  out.gamma = base.gamma;
  return out;
}

}  // namespace ccr
