// Entity specifications Se = (It, Σ, Γ) — the input to conflict resolution
// (§II-C) — and the extension Se ⊕ Ot.

#ifndef CCR_CONSTRAINTS_SPECIFICATION_H_
#define CCR_CONSTRAINTS_SPECIFICATION_H_

#include <string>
#include <vector>

#include "src/constraints/cfd.h"
#include "src/constraints/currency_constraint.h"
#include "src/order/temporal_instance.h"

namespace ccr {

/// \brief A temporal instance plus currency constraints Σ and constant
/// CFDs Γ. Se is *valid* if some completion of its currency orders
/// satisfies both Σ and Γ (decided by IsValid, §V-A).
struct Specification {
  TemporalInstance temporal;            // It = (Ie, ⪯A1, ..., ⪯An)
  std::vector<CurrencyConstraint> sigma;  // Σ
  std::vector<ConstantCfd> gamma;         // Γ

  const Schema& schema() const { return temporal.schema(); }
  const EntityInstance& instance() const { return temporal.instance(); }

  /// Renders a human-readable summary (sizes plus constraints).
  std::string ToString() const;
};

/// Computes Se ⊕ Ot: same constraints, extended temporal instance (§II-C).
Result<Specification> Extend(const Specification& base,
                             const PartialTemporalOrder& delta);

}  // namespace ccr

#endif  // CCR_CONSTRAINTS_SPECIFICATION_H_
