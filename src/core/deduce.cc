#include "src/core/deduce.h"

#include <vector>

#include "src/common/status.h"

namespace ccr {

int DeducedOrders::CountPairs() const {
  int total = 0;
  for (const PartialOrder& po : per_attr) total += po.CountPairs();
  return total;
}

namespace {

DeducedOrders MakeEmptyOrders(const VarMap& vm) {
  DeducedOrders od;
  od.per_attr.reserve(vm.num_attrs());
  for (int a = 0; a < vm.num_attrs(); ++a) {
    od.per_attr.emplace_back(static_cast<int>(vm.domain(a).size()));
  }
  return od;
}

// Records a deduced literal into Od. Positive x_{a1 a2} adds a1 ≺ a2;
// negative adds the reversed order when `paper_mode` is on (Fig. 5,
// lines 6–7). Auxiliary variables (CFD guards) carry no order content and
// are skipped. Insertion failures (cycles, possible only on invalid
// specifications) are ignored — Od remains a partial order.
void RecordLiteral(const VarMap& vm, sat::Lit lit, bool paper_mode,
                   DeducedOrders* od) {
  if (!vm.IsOrderVar(lit.var())) return;
  const OrderAtom atom = vm.Decode(lit.var());
  if (!lit.negated()) {
    (void)od->per_attr[atom.attr].Add(atom.less, atom.more);
  } else if (paper_mode) {
    (void)od->per_attr[atom.attr].Add(atom.more, atom.less);
  }
}

}  // namespace

DeducedOrders DeduceOrder(const Instantiation& inst, const sat::Cnf& phi,
                          const DeduceOptions& options,
                          std::span<const sat::Lit> assume,
                          DeduceScratch* scratch) {
  const VarMap& vm = inst.varmap;
  DeducedOrders od = MakeEmptyOrders(vm);

  const int n_vars = phi.num_vars();
  const int n_clauses = phi.num_clauses();

  // Counter-based unit propagation: per clause, the number of non-false
  // literals and a satisfied flag; per literal, its occurrence list.
  // The buffers come from the session's scratch when available — they
  // are re-filled from `phi` below, so reuse is observationally inert.
  DeduceScratch local;
  DeduceScratch& s = scratch != nullptr ? *scratch : local;
  std::vector<int32_t>& open_count = s.open_count;
  std::vector<uint8_t>& satisfied = s.satisfied;
  std::vector<std::vector<int32_t>>& occur = s.occur;
  std::vector<sat::Lbool>& value = s.value;
  std::vector<sat::Lit>& queue = s.queue;
  open_count.assign(n_clauses, 0);
  satisfied.assign(n_clauses, 0);
  if (occur.size() < static_cast<size_t>(2 * n_vars)) {
    occur.resize(2 * n_vars);
  }
  // Clear every inner list (including any beyond 2*n_vars left by a
  // larger entity) while keeping their capacity.
  for (std::vector<int32_t>& o : occur) o.clear();
  value.assign(n_vars, sat::Lbool::kUndef);
  queue.assign(assume.begin(), assume.end());

  for (int c = 0; c < n_clauses; ++c) {
    auto lits = phi.clause(c);
    open_count[c] = static_cast<int32_t>(lits.size());
    for (sat::Lit l : lits) occur[l.index()].push_back(c);
    if (lits.size() == 1) queue.push_back(lits[0]);
    // Empty clause: Se invalid; DeduceOrder is only called on valid
    // specifications, but stay graceful and simply deduce nothing from it.
  }

  size_t head = 0;
  while (head < queue.size()) {
    const sat::Lit l = queue[head++];
    const sat::Lbool prior = value[l.var()];
    if (prior != sat::Lbool::kUndef) continue;  // already propagated
    value[l.var()] = l.negated() ? sat::Lbool::kFalse : sat::Lbool::kTrue;
    RecordLiteral(vm, l, options.paper_negative_units, &od);

    // Totality: ¬(a1 ≺ a2) entails a2 ≺ a1 in every completion; assert
    // the reversed atom so contrapositive chains keep propagating.
    if (l.negated() && options.paper_negative_units &&
        options.totality_propagation && vm.IsOrderVar(l.var())) {
      const OrderAtom atom = vm.Decode(l.var());
      queue.push_back(
          sat::Lit::Pos(vm.VarOf(atom.attr, atom.more, atom.less)));
    }

    // Clauses containing l are satisfied.
    for (int32_t c : occur[l.index()]) satisfied[c] = 1;
    // Clauses containing ¬l lose a literal; new units enter the queue.
    for (int32_t c : occur[(~l).index()]) {
      if (satisfied[c]) continue;
      if (--open_count[c] == 1) {
        for (sat::Lit cand : phi.clause(c)) {
          if (value[cand.var()] == sat::Lbool::kUndef) {
            queue.push_back(cand);
            break;
          }
        }
      }
      // open_count 0 means a conflict: the specification was invalid.
      // Nothing further can be soundly deduced from this clause.
    }
  }
  return od;
}

DeducedOrders NaiveDeduce(const Instantiation& inst, const sat::Cnf& phi,
                          const sat::SolverOptions& options) {
  sat::Solver solver(options);
  solver.AddCnf(phi);
  return NaiveDeduceShared(inst, &solver);
}

DeducedOrders NaiveDeduceShared(const Instantiation& inst,
                                sat::Solver* solver,
                                std::span<const sat::Lit> assumptions) {
  if (solver->options().use_backbone_deduce) {
    return BackboneDeduceShared(inst, solver, assumptions);
  }
  const VarMap& vm = inst.varmap;
  DeducedOrders od = MakeEmptyOrders(vm);

  std::vector<sat::Lit> assume(assumptions.begin(), assumptions.end());
  int64_t queries = 1;
  if (solver->SolveWithAssumptions(assume) != sat::SolveResult::kSat) {
    solver->RecordDeduce(queries, 0, 0, 0);
    return od;  // invalid Se
  }

  for (int a = 0; a < vm.num_attrs(); ++a) {
    const int d = static_cast<int>(vm.domain(a).size());
    for (int i = 0; i < d; ++i) {
      for (int j = 0; j < d; ++j) {
        if (i == j) continue;
        if (od.per_attr[a].Less(i, j)) continue;  // already implied
        const sat::Var x = vm.VarOf(a, i, j);
        // Lemma 6: Se |= (i ≺ j) iff Φ(Se) ∧ ¬x is unsatisfiable.
        assume.push_back(sat::Lit::Neg(x));
        ++queries;
        const auto r = solver->SolveWithAssumptions(assume);
        assume.pop_back();
        if (r == sat::SolveResult::kUnsat && !solver->IsUnsatForever()) {
          (void)od.per_attr[a].Add(i, j);
        }
      }
    }
  }
  solver->RecordDeduce(queries, 0, 0, 0);
  return od;
}

DeducedOrders BackboneDeduceShared(const Instantiation& inst,
                                   sat::Solver* solver,
                                   std::span<const sat::Lit> assumptions,
                                   int chunk_size) {
  CCR_CHECK(chunk_size >= 1);
  const VarMap& vm = inst.varmap;
  DeducedOrders od = MakeEmptyOrders(vm);

  std::vector<sat::Lit> assume(assumptions.begin(), assumptions.end());
  int64_t queries = 1;
  int64_t model_prunes = 0;
  int64_t prop_proofs = 0;
  int64_t chunk_solves = 0;
  if (solver->SolveWithAssumptions(assume) != sat::SolveResult::kSat) {
    solver->RecordDeduce(queries, 0, 0, 0);
    return od;  // invalid Se
  }

  // The candidate frontier: every ordered pair whose Lemma-6 verdict is
  // still open. Pairs leave it exactly one way each — swept by a model
  // (not entailed), certified by propagation or a chunk UNSAT
  // (entailed), or subsumed by the transitive closure of earlier
  // certifications.
  struct Cand {
    int32_t attr;
    int32_t less;
    int32_t more;
    sat::Var var;
  };
  std::vector<Cand> frontier;
  for (int a = 0; a < vm.num_attrs(); ++a) {
    const int d = static_cast<int>(vm.domain(a).size());
    for (int i = 0; i < d; ++i) {
      for (int j = 0; j < d; ++j) {
        if (i == j) continue;
        frontier.push_back({a, i, j, vm.VarOf(a, i, j)});
      }
    }
  }

  // Tier 1 — model sweeping. A model of Φ(Se) ∧ guards assigning x_ij
  // false is a valid completion in which i does not precede j: a
  // non-entailment witness, no solver call needed.
  const auto sweep_values = [&](const std::vector<sat::Lbool>& m) {
    size_t w = 0;
    for (const Cand& c : frontier) {
      if (static_cast<size_t>(c.var) < m.size() &&
          m[c.var] == sat::Lbool::kFalse) {
        ++model_prunes;
      } else {
        frontier[w++] = c;
      }
    }
    frontier.resize(w);
  };
  const auto sweep_current_model = [&] {
    size_t w = 0;
    for (const Cand& c : frontier) {
      if (solver->ModelLbool(c.var) == sat::Lbool::kFalse) {
        ++model_prunes;
      } else {
        frontier[w++] = c;
      }
    }
    frontier.resize(w);
  };
  sweep_current_model();
  // The witness ring may hold more genuine models from earlier phases;
  // any of them that satisfies every guard sweeps for free too.
  for (const std::vector<sat::Lbool>* m : solver->CachedWitnesses(assume)) {
    sweep_values(*m);
  }

  // Tier 2 — propagation-only screening under the propagated guards:
  // x forced true is entailed outright; a failed ¬x probe is a
  // unit-propagation UNSAT proof. Neither searches or learns.
  if (!frontier.empty() && solver->BeginProbe(assume)) {
    size_t w = 0;
    for (const Cand& c : frontier) {
      if (od.per_attr[c.attr].Less(c.less, c.more)) continue;
      const sat::Lbool v = solver->ProbeValue(c.var);
      if (v == sat::Lbool::kTrue) {
        ++prop_proofs;
        (void)od.per_attr[c.attr].Add(c.less, c.more);
        continue;
      }
      if (v == sat::Lbool::kFalse) {
        // Guard-forced false: every completion refutes the pair. Tier 1
        // normally catches these (the swept models force it too).
        ++model_prunes;
        continue;
      }
      if (solver->ProbeLitFails(sat::Lit::Neg(c.var))) {
        ++prop_proofs;
        (void)od.per_attr[c.attr].Add(c.less, c.more);
        continue;
      }
      frontier[w++] = c;
    }
    frontier.resize(w);
    solver->EndProbe();
  }

  // Tier 3 — chunked UNSAT certification. A scoped clause
  // (¬sel ∨ ¬x₁ ∨ … ∨ ¬xₖ) under the scope's activation literal asks for
  // a completion refuting ANY chunk member: UNSAT certifies the whole
  // chunk entailed in one call; SAT hands tier 1 a fresh model that
  // falsifies at least one member, so the frontier strictly shrinks
  // either way. Each round gets a fresh selector — the previous chunk
  // clause goes inert by never assuming its selector again, so a
  // rebuilt (smaller) chunk can never be over-claimed by a stale
  // clause. Released wholesale when the frontier drains.
  if (!frontier.empty()) {
    sat::ScopedVars scope(solver);
    std::vector<Cand> chunk;
    std::vector<sat::Lit> clause;
    while (!frontier.empty()) {
      // Drop pairs settled by the transitive closure of earlier chunks,
      // then peel off the next chunk.
      chunk.clear();
      size_t w = 0;
      for (const Cand& c : frontier) {
        if (od.per_attr[c.attr].Less(c.less, c.more)) continue;
        if (static_cast<int>(chunk.size()) < chunk_size) {
          chunk.push_back(c);
        } else {
          frontier[w++] = c;
        }
      }
      frontier.resize(w);
      if (chunk.empty()) break;

      const sat::Var sel = scope.NewVar();
      clause.clear();
      clause.push_back(sat::Lit::Neg(sel));
      for (const Cand& c : chunk) clause.push_back(sat::Lit::Neg(c.var));
      scope.AddClause(clause);

      assume.push_back(scope.activation());
      assume.push_back(sat::Lit::Pos(sel));
      ++queries;
      ++chunk_solves;
      const auto r = solver->SolveWithAssumptions(assume);
      assume.resize(assume.size() - 2);

      if (r == sat::SolveResult::kUnsat) {
        if (solver->IsUnsatForever()) break;
        for (const Cand& c : chunk) {
          (void)od.per_attr[c.attr].Add(c.less, c.more);
        }
      } else if (r == sat::SolveResult::kSat) {
        // A genuine model of Φ(Se) ∧ guards (the scope literals only
        // strengthen it): sweep the unresolved chunk members together
        // with the rest of the frontier.
        frontier.insert(frontier.end(), chunk.begin(), chunk.end());
        sweep_current_model();
      } else {
        // Conflict budget exhausted (kUnknown): like the naive loop,
        // an undecided query never claims entailment. Stop here rather
        // than spin on a chunk that will not resolve.
        break;
      }
    }
  }

  solver->RecordDeduce(queries, model_prunes, prop_proofs, chunk_solves);
  return od;
}

std::vector<int> ExtractTrueValueIndices(const VarMap& vm,
                                         const DeducedOrders& od) {
  std::vector<int> out(vm.num_attrs(), -1);
  for (int a = 0; a < vm.num_attrs(); ++a) {
    const int d = static_cast<int>(vm.domain(a).size());
    if (d == 0) continue;  // only nulls: no true value derivable
    if (d == 1) {
      out[a] = 0;  // unique value dominates vacuously
      continue;
    }
    for (int v = 0; v < d; ++v) {
      if (od.per_attr[a].DominatesAll(v)) {
        out[a] = v;
        break;
      }
    }
  }
  return out;
}

std::vector<std::vector<int>> CandidateValues(const VarMap& vm,
                                              const DeducedOrders& od) {
  std::vector<std::vector<int>> out(vm.num_attrs());
  for (int a = 0; a < vm.num_attrs(); ++a) {
    out[a] = od.per_attr[a].Maximal();
  }
  return out;
}

}  // namespace ccr
