#include "src/core/deduce.h"

#include <vector>

#include "src/common/status.h"

namespace ccr {

int DeducedOrders::CountPairs() const {
  int total = 0;
  for (const PartialOrder& po : per_attr) total += po.CountPairs();
  return total;
}

namespace {

DeducedOrders MakeEmptyOrders(const VarMap& vm) {
  DeducedOrders od;
  od.per_attr.reserve(vm.num_attrs());
  for (int a = 0; a < vm.num_attrs(); ++a) {
    od.per_attr.emplace_back(static_cast<int>(vm.domain(a).size()));
  }
  return od;
}

// Records a deduced literal into Od. Positive x_{a1 a2} adds a1 ≺ a2;
// negative adds the reversed order when `paper_mode` is on (Fig. 5,
// lines 6–7). Auxiliary variables (CFD guards) carry no order content and
// are skipped. Insertion failures (cycles, possible only on invalid
// specifications) are ignored — Od remains a partial order.
void RecordLiteral(const VarMap& vm, sat::Lit lit, bool paper_mode,
                   DeducedOrders* od) {
  if (!vm.IsOrderVar(lit.var())) return;
  const OrderAtom atom = vm.Decode(lit.var());
  if (!lit.negated()) {
    (void)od->per_attr[atom.attr].Add(atom.less, atom.more);
  } else if (paper_mode) {
    (void)od->per_attr[atom.attr].Add(atom.more, atom.less);
  }
}

}  // namespace

DeducedOrders DeduceOrder(const Instantiation& inst, const sat::Cnf& phi,
                          const DeduceOptions& options,
                          std::span<const sat::Lit> assume) {
  const VarMap& vm = inst.varmap;
  DeducedOrders od = MakeEmptyOrders(vm);

  const int n_vars = phi.num_vars();
  const int n_clauses = phi.num_clauses();

  // Counter-based unit propagation: per clause, the number of non-false
  // literals and a satisfied flag; per literal, its occurrence list.
  std::vector<int32_t> open_count(n_clauses);
  std::vector<uint8_t> satisfied(n_clauses, 0);
  std::vector<std::vector<int32_t>> occur(2 * n_vars);
  std::vector<sat::Lbool> value(n_vars, sat::Lbool::kUndef);
  std::vector<sat::Lit> queue(assume.begin(), assume.end());

  for (int c = 0; c < n_clauses; ++c) {
    auto lits = phi.clause(c);
    open_count[c] = static_cast<int32_t>(lits.size());
    for (sat::Lit l : lits) occur[l.index()].push_back(c);
    if (lits.size() == 1) queue.push_back(lits[0]);
    // Empty clause: Se invalid; DeduceOrder is only called on valid
    // specifications, but stay graceful and simply deduce nothing from it.
  }

  size_t head = 0;
  while (head < queue.size()) {
    const sat::Lit l = queue[head++];
    const sat::Lbool prior = value[l.var()];
    if (prior != sat::Lbool::kUndef) continue;  // already propagated
    value[l.var()] = l.negated() ? sat::Lbool::kFalse : sat::Lbool::kTrue;
    RecordLiteral(vm, l, options.paper_negative_units, &od);

    // Totality: ¬(a1 ≺ a2) entails a2 ≺ a1 in every completion; assert
    // the reversed atom so contrapositive chains keep propagating.
    if (l.negated() && options.paper_negative_units &&
        options.totality_propagation && vm.IsOrderVar(l.var())) {
      const OrderAtom atom = vm.Decode(l.var());
      queue.push_back(
          sat::Lit::Pos(vm.VarOf(atom.attr, atom.more, atom.less)));
    }

    // Clauses containing l are satisfied.
    for (int32_t c : occur[l.index()]) satisfied[c] = 1;
    // Clauses containing ¬l lose a literal; new units enter the queue.
    for (int32_t c : occur[(~l).index()]) {
      if (satisfied[c]) continue;
      if (--open_count[c] == 1) {
        for (sat::Lit cand : phi.clause(c)) {
          if (value[cand.var()] == sat::Lbool::kUndef) {
            queue.push_back(cand);
            break;
          }
        }
      }
      // open_count 0 means a conflict: the specification was invalid.
      // Nothing further can be soundly deduced from this clause.
    }
  }
  return od;
}

DeducedOrders NaiveDeduce(const Instantiation& inst, const sat::Cnf& phi,
                          const sat::SolverOptions& options) {
  sat::Solver solver(options);
  solver.AddCnf(phi);
  return NaiveDeduceShared(inst, &solver);
}

DeducedOrders NaiveDeduceShared(const Instantiation& inst,
                                sat::Solver* solver,
                                std::span<const sat::Lit> assumptions) {
  const VarMap& vm = inst.varmap;
  DeducedOrders od = MakeEmptyOrders(vm);

  std::vector<sat::Lit> assume(assumptions.begin(), assumptions.end());
  if (solver->SolveWithAssumptions(assume) != sat::SolveResult::kSat) {
    return od;  // invalid Se
  }

  for (int a = 0; a < vm.num_attrs(); ++a) {
    const int d = static_cast<int>(vm.domain(a).size());
    for (int i = 0; i < d; ++i) {
      for (int j = 0; j < d; ++j) {
        if (i == j) continue;
        if (od.per_attr[a].Less(i, j)) continue;  // already implied
        const sat::Var x = vm.VarOf(a, i, j);
        // Lemma 6: Se |= (i ≺ j) iff Φ(Se) ∧ ¬x is unsatisfiable.
        assume.push_back(sat::Lit::Neg(x));
        const auto r = solver->SolveWithAssumptions(assume);
        assume.pop_back();
        if (r == sat::SolveResult::kUnsat && !solver->IsUnsatForever()) {
          (void)od.per_attr[a].Add(i, j);
        }
      }
    }
  }
  return od;
}

std::vector<int> ExtractTrueValueIndices(const VarMap& vm,
                                         const DeducedOrders& od) {
  std::vector<int> out(vm.num_attrs(), -1);
  for (int a = 0; a < vm.num_attrs(); ++a) {
    const int d = static_cast<int>(vm.domain(a).size());
    if (d == 0) continue;  // only nulls: no true value derivable
    if (d == 1) {
      out[a] = 0;  // unique value dominates vacuously
      continue;
    }
    for (int v = 0; v < d; ++v) {
      if (od.per_attr[a].DominatesAll(v)) {
        out[a] = v;
        break;
      }
    }
  }
  return out;
}

std::vector<std::vector<int>> CandidateValues(const VarMap& vm,
                                              const DeducedOrders& od) {
  std::vector<std::vector<int>> out(vm.num_attrs());
  for (int a = 0; a < vm.num_attrs(); ++a) {
    out[a] = od.per_attr[a].Maximal();
  }
  return out;
}

}  // namespace ccr
