// True-value deduction (§V-B): DeduceOrder (Fig. 5) and NaiveDeduce.
//
// DeduceOrder runs unit propagation over Φ(Se): every one-literal clause
// is recorded into the deduced temporal order Od and used to reduce the
// formula, in O(|Φ(Se)|) total time. NaiveDeduce instead asks the SAT
// solver, for every order variable x, whether Φ(Se) ∧ ¬x is unsatisfiable
// — sound and complete for implied orders (Lemma 6) but, queried one
// pair at a time, O(d²) solver calls per attribute (Fig. 8(b)).
//
// The Lemma-6 pipeline only needs the *set* of entailed pairs, not any
// particular query order, so the classic backbone-computation playbook
// applies: under SolverOptions::use_backbone_deduce (default) the
// per-pair loop is replaced by a three-tier engine — model sweeping
// (every SAT model refutes, in O(1) per pair, all candidates it assigns
// false), propagation-only failed-literal screening, and chunked UNSAT
// certification (one scoped clause ¬x₁ ∨ … ∨ ¬xₖ proves a whole chunk
// entailed per solve). The entailed set is semantically determined, so
// the verdicts — and every downstream byte — are identical to the naive
// loop's; tests/deduce_backbone_test.cpp enforces exactly that.

#ifndef CCR_CORE_DEDUCE_H_
#define CCR_CORE_DEDUCE_H_

#include <span>
#include <vector>

#include "src/encode/instantiation.h"
#include "src/order/partial_order.h"
#include "src/sat/cnf.h"
#include "src/sat/solver.h"

namespace ccr {

/// \brief Od: one deduced strict partial order per attribute, over indices
/// into the VarMap's domains.
struct DeducedOrders {
  std::vector<PartialOrder> per_attr;

  /// Total deduced pairs (|Od|), including transitive consequences.
  int CountPairs() const;
};

/// DeduceOrder knobs.
struct DeduceOptions {
  /// Fig. 5 lines 6–7: a negative unit ¬x_{a1 a2} adds the *reversed*
  /// order a2 ≺ a1 to Od. Sound under completion semantics: completions
  /// totally order the tuples, so for distinct values ¬(a1 ≺ a2) entails
  /// a2 ≺ a1. With the flag off, negative units only reduce the formula
  /// (strict mode — Od then contains positive units only).
  bool paper_negative_units = true;
  /// Feed the reversed order of a negative unit back into propagation as
  /// a true literal (the paper's Fig. 5 records it in Od but does not
  /// propagate it). Justified by the same totality argument; it lets
  /// contrapositive inferences (e.g. a job order implying a status order
  /// through ϕ5) fire the downstream rules in the same pass. Requires
  /// paper_negative_units.
  bool totality_propagation = true;
};

/// Reusable buffers for DeduceOrder's counter-based unit propagation.
/// One instance per session (pooled through SessionScratch) stops the
/// five per-call allocations from re-growing every round on every
/// entity; a default-constructed local works identically for one-shot
/// callers.
struct DeduceScratch {
  std::vector<int32_t> open_count;
  std::vector<uint8_t> satisfied;
  std::vector<std::vector<int32_t>> occur;
  std::vector<sat::Lbool> value;
  std::vector<sat::Lit> queue;
};

/// Algorithm DeduceOrder (Fig. 5): unit propagation over `phi`.
/// `phi` must be the CNF built from `inst` (variable ids must agree).
/// `assume` literals are seeded as established facts before propagation —
/// the guarded session passes its active CFD guards, which re-arms the
/// guarded rule clauses exactly as if they were emitted unguarded.
/// Non-atom (auxiliary) variables propagate but are never recorded in Od.
/// `scratch`, when given, supplies the propagation buffers (contents are
/// overwritten; the result never depends on what was left in them).
DeducedOrders DeduceOrder(const Instantiation& inst, const sat::Cnf& phi,
                          const DeduceOptions& options = {},
                          std::span<const sat::Lit> assume = {},
                          DeduceScratch* scratch = nullptr);

/// NaiveDeduce: one SAT call per order variable (incremental solver with
/// one assumption per call). Exact per Lemma 6. Dispatches to the
/// backbone engine when `options.use_backbone_deduce` is set, like
/// NaiveDeduceShared.
DeducedOrders NaiveDeduce(const Instantiation& inst, const sat::Cnf& phi,
                          const sat::SolverOptions& options = {});

/// NaiveDeduce against a caller-owned solver already holding Φ(Se)'s
/// clauses (the ResolutionSession shares one solver across validity,
/// deduction and rounds; learnt clauses carry over). `assumptions` is
/// prepended to every implication check (active CFD guards). The outcome
/// of each check is semantic — identical to the fresh-solver variant.
/// When the solver was built with use_backbone_deduce (default), the
/// per-pair loop is replaced by BackboneDeduceShared — same pair set,
/// measured here with far fewer solver calls.
DeducedOrders NaiveDeduceShared(const Instantiation& inst,
                                sat::Solver* solver,
                                std::span<const sat::Lit> assumptions = {});

/// Default number of candidate pairs certified per chunked UNSAT solve.
inline constexpr int kBackboneChunkSize = 64;

/// The three-tier backbone engine behind NaiveDeduceShared (exposed so
/// tests can pin degenerate chunk sizes): (1) sweep every SAT model —
/// the initial validity model, the solver's cached witness ring, and
/// each chunk counterexample — over the whole candidate frontier; (2)
/// screen survivors with propagation-only failed-literal probes; (3)
/// certify the rest in chunks of `chunk_size` via a scoped clause
/// ¬x₁ ∨ … ∨ ¬xₖ — UNSAT proves every member entailed in one call, SAT
/// yields a fresh sweep model falsifying at least one member, so the
/// frontier strictly shrinks. Exact per Lemma 6: returns precisely the
/// naive loop's pair set.
DeducedOrders BackboneDeduceShared(const Instantiation& inst,
                                   sat::Solver* solver,
                                   std::span<const sat::Lit> assumptions = {},
                                   int chunk_size = kBackboneChunkSize);

/// True-value extraction (§V-B): value v is the true value of attribute A
/// iff it dominates every other domain value of A in Od. Returns one
/// domain index per attribute, or -1 when the true value is not derivable
/// (including attributes whose domain is empty).
std::vector<int> ExtractTrueValueIndices(const VarMap& vm,
                                         const DeducedOrders& od);

/// DeriveVR (§V-C): candidate true values V(A) — domain values of A not
/// dominated by any other value in Od. Computed for every attribute;
/// callers skip attributes whose true value is known.
std::vector<std::vector<int>> CandidateValues(const VarMap& vm,
                                              const DeducedOrders& od);

}  // namespace ccr

#endif  // CCR_CORE_DEDUCE_H_
