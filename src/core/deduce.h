// True-value deduction (§V-B): DeduceOrder (Fig. 5) and NaiveDeduce.
//
// DeduceOrder runs unit propagation over Φ(Se): every one-literal clause
// is recorded into the deduced temporal order Od and used to reduce the
// formula, in O(|Φ(Se)|) total time. NaiveDeduce instead asks the SAT
// solver, for every order variable x, whether Φ(Se) ∧ ¬x is unsatisfiable
// — sound and complete for implied orders (Lemma 6) but orders of
// magnitude slower (Fig. 8(b)).

#ifndef CCR_CORE_DEDUCE_H_
#define CCR_CORE_DEDUCE_H_

#include <span>
#include <vector>

#include "src/encode/instantiation.h"
#include "src/order/partial_order.h"
#include "src/sat/cnf.h"
#include "src/sat/solver.h"

namespace ccr {

/// \brief Od: one deduced strict partial order per attribute, over indices
/// into the VarMap's domains.
struct DeducedOrders {
  std::vector<PartialOrder> per_attr;

  /// Total deduced pairs (|Od|), including transitive consequences.
  int CountPairs() const;
};

/// DeduceOrder knobs.
struct DeduceOptions {
  /// Fig. 5 lines 6–7: a negative unit ¬x_{a1 a2} adds the *reversed*
  /// order a2 ≺ a1 to Od. Sound under completion semantics: completions
  /// totally order the tuples, so for distinct values ¬(a1 ≺ a2) entails
  /// a2 ≺ a1. With the flag off, negative units only reduce the formula
  /// (strict mode — Od then contains positive units only).
  bool paper_negative_units = true;
  /// Feed the reversed order of a negative unit back into propagation as
  /// a true literal (the paper's Fig. 5 records it in Od but does not
  /// propagate it). Justified by the same totality argument; it lets
  /// contrapositive inferences (e.g. a job order implying a status order
  /// through ϕ5) fire the downstream rules in the same pass. Requires
  /// paper_negative_units.
  bool totality_propagation = true;
};

/// Algorithm DeduceOrder (Fig. 5): unit propagation over `phi`.
/// `phi` must be the CNF built from `inst` (variable ids must agree).
/// `assume` literals are seeded as established facts before propagation —
/// the guarded session passes its active CFD guards, which re-arms the
/// guarded rule clauses exactly as if they were emitted unguarded.
/// Non-atom (auxiliary) variables propagate but are never recorded in Od.
DeducedOrders DeduceOrder(const Instantiation& inst, const sat::Cnf& phi,
                          const DeduceOptions& options = {},
                          std::span<const sat::Lit> assume = {});

/// NaiveDeduce: one SAT call per order variable (incremental solver with
/// one assumption per call). Exact per Lemma 6.
DeducedOrders NaiveDeduce(const Instantiation& inst, const sat::Cnf& phi,
                          const sat::SolverOptions& options = {});

/// NaiveDeduce against a caller-owned solver already holding Φ(Se)'s
/// clauses (the ResolutionSession shares one solver across validity,
/// deduction and rounds; learnt clauses carry over). `assumptions` is
/// prepended to every implication check (active CFD guards). The outcome
/// of each check is semantic — identical to the fresh-solver variant.
DeducedOrders NaiveDeduceShared(const Instantiation& inst,
                                sat::Solver* solver,
                                std::span<const sat::Lit> assumptions = {});

/// True-value extraction (§V-B): value v is the true value of attribute A
/// iff it dominates every other domain value of A in Od. Returns one
/// domain index per attribute, or -1 when the true value is not derivable
/// (including attributes whose domain is empty).
std::vector<int> ExtractTrueValueIndices(const VarMap& vm,
                                         const DeducedOrders& od);

/// DeriveVR (§V-C): candidate true values V(A) — domain values of A not
/// dominated by any other value in Od. Computed for every attribute;
/// callers skip attributes whose true value is known.
std::vector<std::vector<int>> CandidateValues(const VarMap& vm,
                                              const DeducedOrders& od);

}  // namespace ccr

#endif  // CCR_CORE_DEDUCE_H_
