#include "src/core/derivation.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "src/common/status.h"

namespace ccr {

std::string DerivationRule::ToString(const VarMap& vm,
                                     const Schema& schema) const {
  std::string out = "({";
  for (size_t i = 0; i < lhs.size(); ++i) {
    if (i > 0) out += ", ";
    out += schema.name(lhs[i].first) + "=" +
           vm.domain(lhs[i].first)[lhs[i].second].ToString();
  }
  out += "}) -> (" + schema.name(rhs_attr) + ", " +
         vm.domain(rhs_attr)[rhs_value].ToString() + ")";
  return out;
}

namespace {

// True if value index `v` for `attr` is admissible as an assumed true
// value: it matches the known true value if one exists, else it must be a
// candidate (non-dominated) value.
bool Admissible(const std::vector<std::vector<int>>& candidates,
                const std::vector<int>& known_true, int attr, int v) {
  if (known_true[attr] >= 0) return known_true[attr] == v;
  const auto& cands = candidates[attr];
  return std::find(cands.begin(), cands.end(), v) != cands.end();
}

// Candidate indices reordered by the values they denote (the library-wide
// total Value order). Domain *positions* are an artifact of encoding
// history — an incrementally extended VarMap appends new values after
// CFD constants, a rebuild interleaves them — so iterating candidates by
// position would make rule enumeration depend on which path produced the
// encoding. Value order is identical for both.
std::vector<int> SortedByValue(const VarMap& vm, int attr,
                               const std::vector<int>& cands) {
  std::vector<int> out = cands;
  std::sort(out.begin(), out.end(), [&](int a, int b) {
    return vm.domain(attr)[a].Compare(vm.domain(attr)[b]) < 0;
  });
  return out;
}

}  // namespace

std::vector<DerivationRule> TrueDer(
    const Instantiation& inst,
    const std::vector<std::vector<int>>& candidates,
    const std::vector<int>& known_true) {
  const VarMap& vm = inst.varmap;
  std::vector<DerivationRule> rules;

  // (1) Rules from applicable constant CFDs: (X, tp[X]) -> (B, tp[B]),
  // provided the pattern does not clash with validated values and its
  // premises are admissible. The pattern is reconstructed from the CFD's
  // ground constraints so tests can cross-check rule origins against
  // Ω(Se). Rules are emitted in gamma-index order regardless of where a
  // CFD's constraints sit in Ω(Se) — a CFD that became applicable in a
  // later round has its constraints appended at the end, while a rebuild
  // grounds it in place.
  {
    std::map<int, const GroundConstraint*> per_cfd;  // gamma index -> any gc
    for (const GroundConstraint& gc : inst.constraints) {
      if (gc.source != GroundSource::kCfd) continue;
      per_cfd.emplace(gc.source_index, &gc);
    }
    for (const auto& entry : per_cfd) {
      const GroundConstraint& gc = *entry.second;
      // Reconstruct the pattern from the body: each LHS attribute Aj has
      // domination atoms (other ≺ cj); head is (b ≺ tp[B]).
      std::map<int, int> pattern;  // attr -> pattern value index
      bool ok = true;
      for (const OrderAtom& atom : gc.body) {
        auto [it, inserted] = pattern.emplace(atom.attr, atom.more);
        if (!inserted && it->second != atom.more) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      const int rhs_attr = gc.head.attr;
      const int rhs_value = gc.head.more;
      if (known_true[rhs_attr] >= 0) continue;  // already settled
      if (!Admissible(candidates, known_true, rhs_attr, rhs_value)) {
        continue;
      }
      DerivationRule rule;
      rule.origin = GroundSource::kCfd;
      rule.source_index = gc.source_index;
      rule.rhs_attr = rhs_attr;
      rule.rhs_value = rhs_value;
      for (const auto& [attr, v] : pattern) {
        if (!Admissible(candidates, known_true, attr, v)) {
          ok = false;
          break;
        }
        rule.lhs.emplace_back(attr, v);
      }
      if (!ok) continue;
      rules.push_back(std::move(rule));
    }
  }

  // (2) Rules from currency-constraint instance constraints. Index Ω by
  // head atom, then for each unknown attribute B and candidate b, cover
  // every competing candidate bi with a constraint of head (bi ≺ b),
  // accumulating a consistent premise instantiation P[X].
  std::unordered_map<int64_t, std::vector<const GroundConstraint*>> by_head;
  auto head_key = [&vm](const OrderAtom& atom) {
    const int d = static_cast<int>(vm.domain(atom.attr).size());
    return (static_cast<int64_t>(atom.attr) << 32) |
           static_cast<int64_t>(atom.less * d + atom.more);
  };
  for (const GroundConstraint& gc : inst.constraints) {
    if (gc.source != GroundSource::kCurrencyConstraint) continue;
    if (gc.head_kind != GroundHead::kAtom) continue;
    if (gc.body.empty()) continue;  // unconditional: already in Od
    by_head[head_key(gc.head)].push_back(&gc);
  }
  // The first compatible constraint in a bucket wins, so bucket order must
  // not depend on whether Ω(Se) was built at once or extended round by
  // round: sort by the canonical emission rank (a rebuild emits in seq
  // order already; incremental appends are merely rotated).
  for (auto& [key, bucket] : by_head) {
    (void)key;
    std::stable_sort(bucket.begin(), bucket.end(),
                     [](const GroundConstraint* a, const GroundConstraint* b) {
                       return a->seq < b->seq;
                     });
  }

  for (int b_attr = 0; b_attr < vm.num_attrs(); ++b_attr) {
    if (known_true[b_attr] >= 0) continue;
    const std::vector<int> ordered_cands =
        SortedByValue(vm, b_attr, candidates[b_attr]);
    for (int b : ordered_cands) {
      std::map<int, int> premises;  // attr -> assumed true value index
      bool rule_ok = true;
      for (int bi : ordered_cands) {
        if (bi == b) continue;
        // Find a compatible constraint with head (bi ≺ b).
        auto it = by_head.find(head_key(OrderAtom{b_attr, bi, b}));
        bool covered = false;
        if (it != by_head.end()) {
          for (const GroundConstraint* gc : it->second) {
            // Tentatively merge this constraint's premises.
            std::map<int, int> trial = premises;
            bool compatible = true;
            for (const OrderAtom& atom : gc->body) {
              const int attr = atom.attr;
              const int assumed = atom.more;  // "more" value acts as true
              if (attr == b_attr && assumed != b) {
                compatible = false;
                break;
              }
              if (!Admissible(candidates, known_true, attr, assumed)) {
                compatible = false;
                break;
              }
              auto [t_it, inserted] = trial.emplace(attr, assumed);
              if (!inserted && t_it->second != assumed) {
                compatible = false;
                break;
              }
            }
            if (compatible) {
              premises = std::move(trial);
              covered = true;
              break;
            }
          }
        }
        if (!covered) {
          rule_ok = false;
          break;
        }
      }
      if (!rule_ok) continue;
      if (candidates[b_attr].size() <= 1) continue;  // nothing to derive
      DerivationRule rule;
      rule.origin = GroundSource::kCurrencyConstraint;
      rule.rhs_attr = b_attr;
      rule.rhs_value = b;
      for (const auto& [attr, v] : premises) {
        if (attr == b_attr) continue;  // consequent carries it
        rule.lhs.emplace_back(attr, v);
      }
      if (rule.lhs.empty()) continue;  // would already be in Od
      rules.push_back(std::move(rule));
    }
  }
  return rules;
}

graph::Graph CompGraph(const std::vector<DerivationRule>& rules) {
  const int n = static_cast<int>(rules.size());
  graph::Graph g(n);
  // Attribute→value map per rule (premises plus consequent).
  std::vector<std::map<int, int>> maps(n);
  for (int i = 0; i < n; ++i) {
    for (const auto& [attr, v] : rules[i].lhs) maps[i][attr] = v;
    maps[i][rules[i].rhs_attr] = rules[i].rhs_value;
  }
  for (int x = 0; x < n; ++x) {
    for (int y = x + 1; y < n; ++y) {
      if (rules[x].rhs_attr == rules[y].rhs_attr) continue;
      bool agree = true;
      // Walk the smaller map, probe the larger.
      const auto& small = maps[x].size() <= maps[y].size() ? maps[x] : maps[y];
      const auto& large = maps[x].size() <= maps[y].size() ? maps[y] : maps[x];
      for (const auto& [attr, v] : small) {
        auto it = large.find(attr);
        if (it != large.end() && it->second != v) {
          agree = false;
          break;
        }
      }
      if (agree) g.AddEdge(x, y);
    }
  }
  return g;
}

}  // namespace ccr
