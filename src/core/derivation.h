// True-value derivation rules and compatibility graphs (§V-C.1).
//
// A derivation rule (X, P[X]) → (B, b) asserts: if P[X] are the true
// values of X, then b is the true value of B. Rules are mined from the
// instance constraints Ω(Se) (procedure TrueDer) and from the applicable
// constant CFDs. The compatibility graph connects rules that can fire
// together (different consequents, agreeing premises); cliques in it are
// candidate "scenarios" from which suggestions are computed.

#ifndef CCR_CORE_DERIVATION_H_
#define CCR_CORE_DERIVATION_H_

#include <string>
#include <utility>
#include <vector>

#include "src/core/deduce.h"
#include "src/encode/instantiation.h"
#include "src/graph/graph.h"

namespace ccr {

/// \brief One true-value derivation rule (X, P[X]) → (B, b); values are
/// indices into the VarMap domains.
struct DerivationRule {
  std::vector<std::pair<int, int>> lhs;  // (attr, value index), sorted by attr
  int rhs_attr = -1;
  int rhs_value = -1;
  GroundSource origin = GroundSource::kCurrencyConstraint;
  int source_index = -1;

  std::string ToString(const VarMap& vm, const Schema& schema) const;
};

/// Procedure TrueDer: derives rules from Ω(Se).
///
/// `candidates` is V(A) per attribute (from CandidateValues); `known_true`
/// holds the validated/deduced true value index per attribute, or -1.
/// Rules are only generated for attributes whose true value is unknown,
/// and only with premises drawn from candidate (or known) values.
std::vector<DerivationRule> TrueDer(
    const Instantiation& inst,
    const std::vector<std::vector<int>>& candidates,
    const std::vector<int>& known_true);

/// Procedure CompGraph: builds the compatibility graph of `rules`
/// (Fig. 6). Nodes x and y are adjacent iff their consequent attributes
/// differ and their attribute→value maps (premises plus consequent) agree
/// on every shared attribute.
graph::Graph CompGraph(const std::vector<DerivationRule>& rules);

}  // namespace ccr

#endif  // CCR_CORE_DERIVATION_H_
