#include "src/core/implication.h"

#include "src/core/isvalid.h"
#include "src/encode/cnf_builder.h"

namespace ccr {

Result<ImplicationResult> Implies(const Specification& se,
                                  const PartialTemporalOrder& ot,
                                  const sat::SolverOptions& options) {
  if (!ot.new_tuples.empty()) {
    return Status::InvalidArgument(
        "implication is defined over Se's own tuples; Ot may not "
        "introduce new ones");
  }
  CCR_ASSIGN_OR_RETURN(Instantiation inst, Instantiation::Build(se));
  const VarMap& vm = inst.varmap;
  const EntityInstance& ie = se.instance();

  sat::Solver solver(options);
  solver.AddCnf(BuildCnf(inst));
  if (solver.Solve() != sat::SolveResult::kSat) {
    return Status::InvalidSpec("Se is invalid; implication is vacuous");
  }

  ImplicationResult result;
  for (const auto& [attr, t_less, t_more] : ot.orders) {
    if (attr < 0 || attr >= se.schema().size() || t_less < 0 ||
        t_more < 0 || t_less >= ie.size() || t_more >= ie.size()) {
      return Status::InvalidArgument("order pair out of range");
    }
    const Value& lv = ie.tuple(t_less).at(attr);
    const Value& mv = ie.tuple(t_more).at(attr);
    // Tuple-level trivia: equal values satisfy ⪯ outright; a null on the
    // less-current side ranks lowest anyway; a null on the more-current
    // side can never be strictly more current than a value.
    if (lv == mv || lv.is_null()) continue;
    const auto fail = [&] {
      result.implied = false;
      result.witness_attr = attr;
      result.witness_less = t_less;
      result.witness_more = t_more;
      return result;
    };
    if (mv.is_null()) return fail();
    const int li = vm.ValueIndex(attr, lv);
    const int mi = vm.ValueIndex(attr, mv);
    CCR_DCHECK(li >= 0 && mi >= 0);
    ++result.sat_calls;
    // Lemma 6: implied iff Φ(Se) ∧ ¬x is unsatisfiable.
    const auto r = solver.SolveWithAssumptions(
        {sat::Lit::Neg(vm.VarOf(attr, li, mi))});
    if (r != sat::SolveResult::kUnsat) return fail();
  }
  result.implied = true;
  return result;
}

Result<TrueValueAnalysis> AnalyzeTrueValue(
    const Specification& se, const sat::SolverOptions& options) {
  CCR_ASSIGN_OR_RETURN(Instantiation inst, Instantiation::Build(se));
  const sat::Cnf phi = BuildCnf(inst);
  if (!IsValidCnf(phi, options).valid) {
    return Status::InvalidSpec("Se is invalid; it has no current tuple");
  }
  TrueValueAnalysis analysis;
  analysis.implied_orders = NaiveDeduce(inst, phi, options);
  analysis.true_value_index =
      ExtractTrueValueIndices(inst.varmap, analysis.implied_orders);
  analysis.exists = true;
  for (int a = 0; a < inst.varmap.num_attrs(); ++a) {
    if (inst.varmap.domain(a).empty()) continue;  // all-null attribute
    if (analysis.true_value_index[a] < 0) {
      analysis.exists = false;
      break;
    }
  }
  return analysis;
}

}  // namespace ccr
