// The implication and true-value problems of §IV, decided exactly.
//
// Implication (Theorem 2, coNP-complete): Se |= Ot iff every valid
// completion of Se includes Ot. Decided per Lemma 6 one atom at a time:
// Se |= (a1 ≺_A a2) iff Φ(Se) ∧ ¬x^A_{a1 a2} is unsatisfiable.
//
// True value existence (Theorem 3, coNP-complete): T(Se) exists iff every
// attribute has a value that is the most current one in *all* valid
// completions — equivalently (for non-empty domains), a value that
// dominates its whole domain under the implied orders. The exact check
// therefore runs NaiveDeduce (complete for implied orders) and tests
// domination, unlike the linear-time heuristic DeduceOrder pass used
// inside the resolver loop.
//
// Semantics note: both checks decide implication at the Φ(Se) level of
// Lemma 6, which does not assume value-level totality. DeduceOrder in its
// default (paper) mode additionally applies the Fig. 5 reversed-order
// rule, justified by the totality of completions, and can therefore
// determine values these analyses leave open — see DESIGN.md, "Semantic
// decisions discovered during implementation".

#ifndef CCR_CORE_IMPLICATION_H_
#define CCR_CORE_IMPLICATION_H_

#include <vector>

#include "src/core/deduce.h"

namespace ccr {

/// Outcome of an implication check.
struct ImplicationResult {
  /// True iff every order pair of Ot holds in every valid completion.
  bool implied = false;
  /// The first pair (attr, t_less, t_more) that is not implied, if any.
  int witness_attr = -1;
  int witness_less = -1;
  int witness_more = -1;
  /// Number of SAT calls performed (trivial pairs are filtered first).
  int sat_calls = 0;
};

/// Decides Se |= Ot for a partial temporal order over Se's own tuples
/// (Ot may not introduce new tuples — implication is about completions
/// of the existing instance, §IV). Fails with InvalidArgument on new
/// tuples or out-of-range indices, and with InvalidSpec when Se itself is
/// invalid (implication over an invalid Se is vacuous and almost always a
/// caller bug).
Result<ImplicationResult> Implies(const Specification& se,
                                  const PartialTemporalOrder& ot,
                                  const sat::SolverOptions& options = {});

/// Outcome of the exact true-value analysis.
struct TrueValueAnalysis {
  /// True iff T(Se) exists: every attribute with at least one non-null
  /// value has a unique most-current value across all valid completions.
  bool exists = false;
  /// Per-attribute true value index into the VarMap domain, or -1.
  std::vector<int> true_value_index;
  /// The implied orders (complete, per Lemma 6).
  DeducedOrders implied_orders;
};

/// Decides the true value problem exactly (NaiveDeduce-based; expect SAT
/// cost quadratic in the domain sizes). Fails with InvalidSpec when Se is
/// invalid.
Result<TrueValueAnalysis> AnalyzeTrueValue(
    const Specification& se, const sat::SolverOptions& options = {});

}  // namespace ccr

#endif  // CCR_CORE_IMPLICATION_H_
