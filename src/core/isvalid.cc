#include "src/core/isvalid.h"

namespace ccr {

ValidityResult IsValidCnf(const sat::Cnf& phi,
                          const sat::SolverOptions& options) {
  sat::Solver solver(options);
  solver.AddCnf(phi);
  return IsValidShared(&solver, phi);
}

ValidityResult IsValidShared(sat::Solver* solver, const sat::Cnf& phi,
                             std::span<const sat::Lit> assumptions) {
  ValidityResult result;
  result.num_vars = phi.num_vars();
  result.num_clauses = phi.num_clauses();
  result.valid =
      solver->SolveWithAssumptions(assumptions) == sat::SolveResult::kSat;
  result.solver_conflicts = solver->last_call_stats().conflicts;
  return result;
}

Result<ValidityResult> IsValid(const Specification& se,
                               const sat::SolverOptions& options) {
  CCR_ASSIGN_OR_RETURN(Instantiation inst, Instantiation::Build(se));
  const sat::Cnf phi = BuildCnf(inst);
  return IsValidCnf(phi, options);
}

}  // namespace ccr
