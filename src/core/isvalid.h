// IsValid: does a specification Se have a valid completion? (§V-A)
//
// Theorem 1 shows satisfiability of entity specifications is NP-complete,
// so IsValid reduces the question to SAT (Lemma 5: Se valid iff Φ(Se)
// satisfiable) and hands Φ(Se) to the CDCL solver.

#ifndef CCR_CORE_ISVALID_H_
#define CCR_CORE_ISVALID_H_

#include <span>

#include "src/constraints/specification.h"
#include "src/encode/cnf_builder.h"
#include "src/encode/instantiation.h"
#include "src/sat/solver.h"

namespace ccr {

/// Outcome of a validity check, with encoding/solver size counters used by
/// the benchmark harnesses.
struct ValidityResult {
  bool valid = false;
  int num_vars = 0;
  int num_clauses = 0;
  int64_t solver_conflicts = 0;
};

/// Checks validity of a pre-encoded specification. The same Φ(Se) can then
/// be reused by DeduceOrder (the framework of Fig. 4 shares the encoding
/// across steps).
ValidityResult IsValidCnf(const sat::Cnf& phi,
                          const sat::SolverOptions& options = {});

/// Validity via a caller-owned solver that already holds Φ(Se)'s clauses
/// (the ResolutionSession path — one solver across phases and rounds).
/// `assumptions` conditions the check (the session passes its active CFD
/// guard literals; a guarded clause binds only under its guard).
/// `solver_conflicts` reports this call's delta, not the cumulative count,
/// so per-phase attribution survives solver sharing.
ValidityResult IsValidShared(sat::Solver* solver, const sat::Cnf& phi,
                             std::span<const sat::Lit> assumptions = {});

/// One-shot convenience: grounds `se`, builds Φ(Se) and checks it.
Result<ValidityResult> IsValid(const Specification& se,
                               const sat::SolverOptions& options = {});

}  // namespace ccr

#endif  // CCR_CORE_ISVALID_H_
