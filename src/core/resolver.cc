#include "src/core/resolver.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <utility>

#include "src/common/timer.h"
#include "src/core/session.h"

namespace ccr {

int CountResolvableAttrs(const VarMap& vm) {
  int n = 0;
  for (int a = 0; a < vm.num_attrs(); ++a) {
    if (!vm.domain(a).empty()) ++n;
  }
  return n;
}

Result<PartialTemporalOrder> MakeAnswerDelta(
    const Specification& se, const std::vector<UserOracle::Answer>& answers) {
  const int n_attrs = se.schema().size();
  PartialTemporalOrder ot;
  Tuple to(std::vector<Value>(n_attrs, Value::Null()));
  for (const UserOracle::Answer& ans : answers) {
    if (ans.attr < 0 || ans.attr >= n_attrs) {
      return Status::InvalidArgument(
          "answer names an invalid attribute index");
    }
    to[ans.attr] = ans.value;
  }
  const int to_index = se.instance().size();
  ot.new_tuples.push_back(std::move(to));
  for (const UserOracle::Answer& ans : answers) {
    for (int t = 0; t < to_index; ++t) {
      ot.orders.emplace_back(ans.attr, t, to_index);
    }
  }
  return ot;
}

namespace {

// The per-round encode/solve strategy behind the framework loop. Both
// engines run the identical pipeline (validity → deduce → suggest →
// extend) and produce identical results; they differ only in what they
// keep alive between rounds.
class Engine {
 public:
  virtual ~Engine() = default;

  /// Makes the encoding current for this round; reports the grounding +
  /// CNF time attributable to it.
  virtual Status Encode(double* encode_ms) = 0;
  virtual const Specification& spec() const = 0;
  virtual const Instantiation& inst() const = 0;
  virtual ValidityResult CheckValidity() = 0;
  virtual DeducedOrders Deduce() = 0;
  virtual Suggestion MakeSuggestion(
      const std::vector<std::vector<int>>& candidates,
      const std::vector<int>& known_true) = 0;
  virtual Status Extend(const PartialTemporalOrder& ot) = 0;

  /// Cumulative counters for the RoundTrace (Resolve reports per-round
  /// deltas): full re-encodes performed and assumption-carrying solves
  /// answered so far.
  virtual int64_t Rebuilds() const = 0;
  virtual int64_t AssumptionSolves() const = 0;

  /// Cumulative statistics of the engine's persistent solver; Resolve
  /// diffs these around each phase call to attribute solver work
  /// (conflicts, binary propagations, inprocessing counters) per phase.
  /// The legacy engine's throwaway solvers are not traced: all zeros.
  virtual sat::SolverStats SolverStatsNow() const = 0;
};

// Legacy engine: re-grounds Ω(Se), rebuilds Φ(Se) and constructs fresh
// solver state every round. Kept as the regression baseline and the
// bench_throughput comparison point.
class RebuildEngine : public Engine {
 public:
  RebuildEngine(const Specification& se, const ResolveOptions& options)
      : options_(options), spec_(se) {}

  Status Encode(double* encode_ms) override {
    Timer timer;
    CCR_ASSIGN_OR_RETURN(inst_, Instantiation::Build(spec_));
    cnf_ = BuildCnf(inst_);
    *encode_ms = timer.ElapsedMs();
    ++rebuilds_;
    return Status::OK();
  }

  const Specification& spec() const override { return spec_; }
  const Instantiation& inst() const override { return inst_; }

  ValidityResult CheckValidity() override {
    return IsValidCnf(cnf_, options_.solver);
  }

  DeducedOrders Deduce() override {
    return options_.naive_deduce
               ? NaiveDeduce(inst_, cnf_, options_.solver)
               : DeduceOrder(inst_, cnf_, options_.deduce);
  }

  Suggestion MakeSuggestion(const std::vector<std::vector<int>>& candidates,
                            const std::vector<int>& known_true) override {
    return Suggest(inst_, cnf_, candidates, known_true, options_.suggest);
  }

  Status Extend(const PartialTemporalOrder& ot) override {
    CCR_ASSIGN_OR_RETURN(spec_, ::ccr::Extend(spec_, ot));
    return Status::OK();
  }

  int64_t Rebuilds() const override { return rebuilds_; }
  int64_t AssumptionSolves() const override { return 0; }
  sat::SolverStats SolverStatsNow() const override { return {}; }

 private:
  ResolveOptions options_;
  Specification spec_;
  Instantiation inst_;
  sat::Cnf cnf_;
  int64_t rebuilds_ = 0;
};

// Session engine: one ResolutionSession across all rounds.
class SessionEngine : public Engine {
 public:
  SessionEngine(const Specification& se, const ResolveOptions& options)
      : options_(options), spec0_(se) {}

  Status Encode(double* encode_ms) override {
    if (!session_.has_value()) {
      auto s = ResolutionSession::Create(spec0_, options_);
      if (!s.ok()) return s.status();
      session_.emplace(std::move(s).value());
    }
    // Round r > 0 was encoded by the ExtendWith that ended round r-1;
    // attribute that cost to the round it produced.
    *encode_ms = session_->last_encode_ms();
    return Status::OK();
  }

  const Specification& spec() const override { return session_->spec(); }
  const Instantiation& inst() const override {
    return session_->instantiation();
  }

  ValidityResult CheckValidity() override {
    return session_->CheckValidity();
  }

  DeducedOrders Deduce() override { return session_->Deduce(); }

  Suggestion MakeSuggestion(const std::vector<std::vector<int>>& candidates,
                            const std::vector<int>& known_true) override {
    return session_->MakeSuggestion(candidates, known_true);
  }

  Status Extend(const PartialTemporalOrder& ot) override {
    return session_->ExtendWith(ot);
  }

  int64_t Rebuilds() const override {
    return session_.has_value() ? session_->rebuilds() : 0;
  }
  int64_t AssumptionSolves() const override {
    return session_.has_value() ? session_->assumption_solves() : 0;
  }
  sat::SolverStats SolverStatsNow() const override {
    return session_.has_value() ? session_->solver_stats()
                                : sat::SolverStats{};
  }

 private:
  ResolveOptions options_;
  Specification spec0_;
  std::optional<ResolutionSession> session_;
};

}  // namespace

Result<ResolveResult> Resolve(const Specification& se, UserOracle* oracle,
                              const ResolveOptions& options) {
  const int n_attrs = se.schema().size();
  ResolveResult result;
  result.true_values.assign(n_attrs, Value::Null());
  result.resolved.assign(n_attrs, false);
  result.user_provided.assign(n_attrs, false);

  std::unique_ptr<Engine> engine;
  if (options.use_session) {
    engine = std::make_unique<SessionEngine>(se, options);
  } else {
    engine = std::make_unique<RebuildEngine>(se, options);
  }

  // Per-round deltas of the engine's cumulative rebuild/assumption
  // counters, stamped into each RoundTrace right before it is recorded.
  int64_t prev_rebuilds = 0;
  int64_t prev_assumption_solves = 0;
  auto stamp_counters = [&](RoundTrace* t) {
    const int64_t rebuilds = engine->Rebuilds();
    const int64_t assumption_solves = engine->AssumptionSolves();
    t->num_rebuilds = rebuilds - prev_rebuilds;
    t->num_assumption_solves = assumption_solves - prev_assumption_solves;
    prev_rebuilds = rebuilds;
    prev_assumption_solves = assumption_solves;
  };

  // Solver work of the ExtendWith that *produced* a round (clause feed +
  // between-round Simplify, where inprocessing runs) is captured when the
  // extension happens and stamped into the next round's trace — the same
  // attribution rule encode_ms follows.
  sat::SolverStats pending_extend_stats;

  for (int round = 0; round <= options.max_rounds; ++round) {
    RoundTrace trace;
    trace.round = round;
    CCR_RETURN_NOT_OK(engine->Encode(&trace.encode_ms));
    trace.encode_solver = pending_extend_stats;
    pending_extend_stats = {};
    const Instantiation& inst = engine->inst();
    Timer timer;

    // Step (1): validity.
    sat::SolverStats phase_start = engine->SolverStatsNow();
    const ValidityResult validity = engine->CheckValidity();
    trace.validity_solver = engine->SolverStatsNow() - phase_start;
    trace.validity_ms = timer.ElapsedMs();
    if (!validity.valid) {
      // Initial specification invalid (or a user's answer clashed with the
      // constraints): report and stop. The framework's "No" branch sends
      // users back to revise; a programmatic oracle cannot, so we stop.
      if (round == 0) result.valid = false;
      stamp_counters(&trace);
      result.trace.push_back(trace);
      break;
    }

    // Step (2): deduce true values.
    timer.Restart();
    phase_start = engine->SolverStatsNow();
    const DeducedOrders od = engine->Deduce();
    trace.deduce_solver = engine->SolverStatsNow() - phase_start;
    const std::vector<int> true_idx =
        ExtractTrueValueIndices(inst.varmap, od);
    trace.deduce_ms = timer.ElapsedMs();

    int resolved_count = 0;
    for (int a = 0; a < n_attrs; ++a) {
      if (true_idx[a] >= 0) {
        result.true_values[a] = inst.varmap.domain(a)[true_idx[a]];
        result.resolved[a] = true;
        ++resolved_count;
      }
    }
    trace.resolved_attrs = resolved_count;
    result.rounds_used = round;
    result.round_values.push_back(result.true_values);
    result.round_resolved.push_back(result.resolved);

    // Step (3): done when every resolvable attribute has a true value.
    if (resolved_count >= CountResolvableAttrs(inst.varmap)) {
      result.complete = true;
      stamp_counters(&trace);
      result.trace.push_back(trace);
      break;
    }
    if (oracle == nullptr || round == options.max_rounds) {
      stamp_counters(&trace);
      result.trace.push_back(trace);
      break;
    }

    // Step (4): suggestion + user input.
    timer.Restart();
    phase_start = engine->SolverStatsNow();
    const std::vector<std::vector<int>> candidates =
        CandidateValues(inst.varmap, od);
    const Suggestion suggestion =
        engine->MakeSuggestion(candidates, true_idx);
    trace.suggest_solver = engine->SolverStatsNow() - phase_start;
    trace.suggest_ms = timer.ElapsedMs();
    stamp_counters(&trace);
    result.trace.push_back(trace);

    const std::vector<UserOracle::Answer> answers =
        oracle->Provide(engine->spec(), suggestion, inst.varmap);
    if (answers.empty()) break;  // user settles

    // Materialize the answers as a new tuple t_o that dominates every
    // existing tuple on the answered attributes (§III Remark (1)).
    CCR_ASSIGN_OR_RETURN(const PartialTemporalOrder ot,
                         MakeAnswerDelta(engine->spec(), answers));
    for (const auto& ans : answers) {
      result.user_provided[ans.attr] = true;
    }
    phase_start = engine->SolverStatsNow();
    CCR_RETURN_NOT_OK(engine->Extend(ot));
    pending_extend_stats = engine->SolverStatsNow() - phase_start;
  }

  return result;
}

}  // namespace ccr
