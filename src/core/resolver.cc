#include "src/core/resolver.h"

#include <algorithm>

#include "src/common/timer.h"

namespace ccr {

namespace {

// Number of attributes that can possibly be resolved: those with at least
// one non-null value somewhere (empty-domain attributes have no candidate
// true value at all).
int CountResolvableAttrs(const VarMap& vm) {
  int n = 0;
  for (int a = 0; a < vm.num_attrs(); ++a) {
    if (!vm.domain(a).empty()) ++n;
  }
  return n;
}

}  // namespace

Result<ResolveResult> Resolve(const Specification& se, UserOracle* oracle,
                              const ResolveOptions& options) {
  const int n_attrs = se.schema().size();
  ResolveResult result;
  result.true_values.assign(n_attrs, Value::Null());
  result.resolved.assign(n_attrs, false);
  result.user_provided.assign(n_attrs, false);

  Specification current = se;

  for (int round = 0; round <= options.max_rounds; ++round) {
    RoundTrace trace;
    trace.round = round;
    Timer timer;

    // Encode once per round; validity, deduction and suggestion all share
    // Ω(Se) and Φ(Se).
    CCR_ASSIGN_OR_RETURN(Instantiation inst, Instantiation::Build(current));
    const sat::Cnf phi = BuildCnf(inst);

    // Step (1): validity.
    const ValidityResult validity = IsValidCnf(phi, options.solver);
    trace.validity_ms = timer.ElapsedMs();
    if (!validity.valid) {
      // Initial specification invalid (or a user's answer clashed with the
      // constraints): report and stop. The framework's "No" branch sends
      // users back to revise; a programmatic oracle cannot, so we stop.
      if (round == 0) result.valid = false;
      result.trace.push_back(trace);
      break;
    }

    // Step (2): deduce true values.
    timer.Restart();
    const DeducedOrders od =
        options.naive_deduce
            ? NaiveDeduce(inst, phi, options.solver)
            : DeduceOrder(inst, phi, options.deduce);
    const std::vector<int> true_idx =
        ExtractTrueValueIndices(inst.varmap, od);
    trace.deduce_ms = timer.ElapsedMs();

    int resolved_count = 0;
    for (int a = 0; a < n_attrs; ++a) {
      if (true_idx[a] >= 0) {
        result.true_values[a] = inst.varmap.domain(a)[true_idx[a]];
        result.resolved[a] = true;
        ++resolved_count;
      }
    }
    trace.resolved_attrs = resolved_count;
    result.rounds_used = round;
    result.round_values.push_back(result.true_values);
    result.round_resolved.push_back(result.resolved);

    // Step (3): done when every resolvable attribute has a true value.
    if (resolved_count >= CountResolvableAttrs(inst.varmap)) {
      result.complete = true;
      result.trace.push_back(trace);
      break;
    }
    if (oracle == nullptr || round == options.max_rounds) {
      result.trace.push_back(trace);
      break;
    }

    // Step (4): suggestion + user input.
    timer.Restart();
    const std::vector<std::vector<int>> candidates =
        CandidateValues(inst.varmap, od);
    const Suggestion suggestion =
        Suggest(inst, phi, candidates, true_idx, options.suggest);
    trace.suggest_ms = timer.ElapsedMs();
    result.trace.push_back(trace);

    const std::vector<UserOracle::Answer> answers =
        oracle->Provide(current, suggestion, inst.varmap);
    if (answers.empty()) break;  // user settles

    // Materialize the answers as a new tuple t_o that dominates every
    // existing tuple on the answered attributes (§III Remark (1)).
    PartialTemporalOrder ot;
    Tuple to(std::vector<Value>(n_attrs, Value::Null()));
    for (const auto& ans : answers) {
      if (ans.attr < 0 || ans.attr >= n_attrs) {
        return Status::InvalidArgument("oracle answered with an invalid "
                                       "attribute index");
      }
      to[ans.attr] = ans.value;
      result.user_provided[ans.attr] = true;
    }
    const int to_index = current.instance().size();
    ot.new_tuples.push_back(std::move(to));
    for (const auto& ans : answers) {
      for (int t = 0; t < to_index; ++t) {
        ot.orders.emplace_back(ans.attr, t, to_index);
      }
    }
    CCR_ASSIGN_OR_RETURN(current, Extend(current, ot));
  }

  return result;
}

}  // namespace ccr
