// The conflict resolution framework of Fig. 4 (§III).
//
// Given a specification Se, the resolver (1) checks validity, (2) deduces
// as many true values as possible, (3) stops if the entity's true value
// T(Se) is found, and otherwise (4) computes a suggestion and asks a user
// oracle for true values of the suggested attributes, extends Se ⊕ Ot and
// loops. Users may answer a subset of the suggestion or none at all
// ("settle"); everything derivable from their answers is deduced
// automatically in the next round.

#ifndef CCR_CORE_RESOLVER_H_
#define CCR_CORE_RESOLVER_H_

#include <optional>
#include <vector>

#include "src/constraints/specification.h"
#include "src/core/deduce.h"
#include "src/core/isvalid.h"
#include "src/core/suggest.h"

namespace ccr {

class SessionScratch;  // src/core/session.h

/// \brief Interface for the user in the framework loop. Implementations:
/// OracleUser (tests/benches, answers from ground truth), callers may
/// provide interactive ones.
class UserOracle {
 public:
  /// One validated true value.
  struct Answer {
    int attr;
    Value value;  // may be outside the active domain (new value)
  };

  virtual ~UserOracle() = default;

  /// Presented with a suggestion, returns validated true values for any
  /// subset of the suggested attributes. An empty vector means "settle":
  /// the resolver stops interacting.
  virtual std::vector<Answer> Provide(const Specification& se,
                                      const Suggestion& suggestion,
                                      const VarMap& vm) = 0;
};

/// Resolver knobs.
struct ResolveOptions {
  int max_rounds = 8;  // interaction rounds (paper needs at most 2-3)
  DeduceOptions deduce;
  SuggestOptions suggest;
  sat::SolverOptions solver;
  /// Use NaiveDeduce instead of DeduceOrder (for the Fig. 8(b) baseline).
  bool naive_deduce = false;
  /// Drive the rounds through a ResolutionSession (encode once, extend
  /// incrementally, one solver across phases). Off = the legacy engine
  /// that re-grounds and re-encodes from scratch every round; both produce
  /// identical results, the flag exists for regression tests and the
  /// bench_throughput comparison.
  bool use_session = true;
  /// Borrowed (not owned) per-worker allocation pool the session engine
  /// recycles its solver and CNF buffers from, so back-to-back Resolve
  /// calls start warm (batch drivers resolving many entities on one
  /// thread). Null = the session allocates privately. Results are
  /// bit-identical either way; the legacy engine ignores it. The scratch
  /// must outlive the Resolve call and serve one resolution at a time.
  SessionScratch* scratch = nullptr;
};

/// Per-round timings and progress, aggregated by the benchmarks
/// (Fig. 8(c)-(e)).
struct RoundTrace {
  int round = 0;              // 0 = fully automatic
  int resolved_attrs = 0;     // cumulative attrs with a true value
  double encode_ms = 0;       // grounding + CNF (round > 0: the extension)
  double validity_ms = 0;
  double deduce_ms = 0;
  double suggest_ms = 0;
  /// Full re-encodes this round performed. The session engine's guarded
  /// grounding makes this 0 on every round by construction; the legacy
  /// engine reports 1 per round (it rebuilds by design).
  int64_t num_rebuilds = 0;
  /// Assumption-carrying solver calls this round (validity under CFD
  /// guards, NaiveDeduce implication checks, incremental-MaxSAT steps).
  /// 0 for the legacy engine, whose throwaway solvers are not traced.
  int64_t num_assumption_solves = 0;
  /// Per-phase session-solver statistics deltas (conflicts, binary
  /// propagations, glue sums, learnt-tier and inprocessing counters).
  /// `encode_solver` covers the extension that produced this round —
  /// clause feeding plus the between-round Simplify, which is where the
  /// inprocessing (subsumed/vivified) counters accrue. All four are zero
  /// for the legacy engine, whose throwaway solvers are not traced.
  sat::SolverStats encode_solver;
  sat::SolverStats validity_solver;
  sat::SolverStats deduce_solver;
  sat::SolverStats suggest_solver;
};

/// Final state of a resolution run.
struct ResolveResult {
  /// False iff the initial Se was already invalid (step 1 said no and
  /// there was no user input to revise).
  bool valid = true;
  /// True iff every attribute with at least one non-null value got a true
  /// value, i.e., T(Se ⊕ Ot) exists.
  bool complete = false;
  /// Per-attribute resolved true values (null when unresolved).
  std::vector<Value> true_values;
  std::vector<bool> resolved;
  /// Attributes whose value came directly from the oracle.
  std::vector<bool> user_provided;
  int rounds_used = 0;
  std::vector<RoundTrace> trace;
  /// Snapshot of (true_values, resolved) after each completed round —
  /// round_values[k] is the state after k interactions (k = 0 is the fully
  /// automatic pass). Used by the k-interaction accuracy curves of
  /// Fig. 8(e)-(p).
  std::vector<std::vector<Value>> round_values;
  std::vector<std::vector<bool>> round_resolved;
};

/// Runs the framework loop. `oracle` may be null: the resolver then
/// performs only the automatic step (round 0).
Result<ResolveResult> Resolve(const Specification& se, UserOracle* oracle,
                              const ResolveOptions& options = {});

/// Materializes user answers as the delta Ot of §III Remark (1): one new
/// tuple t_o carrying the validated values, ordered above every existing
/// tuple of `se` on each answered attribute. Fails on an out-of-range
/// attribute index. Shared by the framework loop and the service's ANSWER
/// request, so both extend sessions with byte-identical deltas.
Result<PartialTemporalOrder> MakeAnswerDelta(
    const Specification& se, const std::vector<UserOracle::Answer>& answers);

/// Attributes with a non-empty candidate domain — the denominator of the
/// framework's "every resolvable attribute has a true value" stop test
/// (step (3) of Fig. 4). Empty-domain attributes (all values null) have no
/// candidate true value at all.
int CountResolvableAttrs(const VarMap& vm);

}  // namespace ccr

#endif  // CCR_CORE_RESOLVER_H_
