#include "src/core/session.h"

#include <utility>

#include "src/common/timer.h"

namespace ccr {

namespace {

// Session grounding runs guarded: CFD rule bodies carry per-version
// selector variables, which is what lets ExtendWith stay append-only on
// every delta (see InstantiationOptions::guard_cfds).
InstantiationOptions SessionGroundingOptions() {
  InstantiationOptions opts;
  opts.guard_cfds = true;
  return opts;
}

}  // namespace

sat::Solver* SessionScratch::AcquireSolver(const sat::SolverOptions& options) {
  if (solver_ == nullptr) {
    solver_ = std::make_unique<sat::Solver>(options);
  } else {
    solver_->Reset(options);
    ++solver_reuses_;
  }
  return solver_.get();
}

sat::Cnf* SessionScratch::AcquireCnf() {
  if (cnf_ == nullptr) {
    cnf_ = std::make_unique<sat::Cnf>();
  } else {
    cnf_->Clear();
  }
  return cnf_.get();
}

Instantiation* SessionScratch::AcquireInstantiation() {
  // No clearing needed here: BuildInto clears in place, recycling the
  // projection tables and hash buckets the previous session grew.
  if (inst_ == nullptr) inst_ = std::make_unique<Instantiation>();
  return inst_.get();
}

maxsat::WalkSatScratch* SessionScratch::AcquireWalkSatScratch() {
  if (walksat_ == nullptr) walksat_ = std::make_unique<maxsat::WalkSatScratch>();
  return walksat_.get();
}

DeduceScratch* SessionScratch::AcquireDeduceScratch() {
  if (deduce_ == nullptr) deduce_ = std::make_unique<DeduceScratch>();
  return deduce_.get();
}

void ResolutionSession::AdoptScratchObjects() {
  if (options_.scratch != nullptr) {
    inst_ = options_.scratch->AcquireInstantiation();
    cnf_ = options_.scratch->AcquireCnf();
    solver_ = options_.scratch->AcquireSolver(options_.solver);
    owned_inst_.reset();
    owned_cnf_.reset();
    owned_solver_.reset();
  } else {
    owned_inst_ = std::make_unique<Instantiation>();
    owned_cnf_ = std::make_unique<sat::Cnf>();
    owned_solver_ = std::make_unique<sat::Solver>(options_.solver);
    inst_ = owned_inst_.get();
    cnf_ = owned_cnf_.get();
    solver_ = owned_solver_.get();
  }
}

Result<ResolutionSession> ResolutionSession::Create(
    const Specification& se, const ResolveOptions& options) {
  ResolutionSession s;
  s.options_ = options;
  s.spec_ = se;
  Timer timer;
  s.AdoptScratchObjects();
  CCR_RETURN_NOT_OK(
      Instantiation::BuildInto(s.spec_, s.inst_, SessionGroundingOptions()));
  BuildCnfInto(*s.inst_, s.cnf_);
  s.FeedSolver();
  // Inprocessing cadence: the freshly built Φ(Se) is the baseline; every
  // ExtendWith ends in a Simplify() that vivifies and backward-subsumes
  // exactly the round's appended delta against the whole database.
  if (s.options_.solver.use_inprocessing) s.solver_->PrimeInprocessing();
  // SLS warm start: a local-search pass under the active guards installs
  // a near-model into the saved phases (and, when fully satisfying, the
  // witness ring) before the first validity solve ever runs. Skipped on
  // NaiveDeduce pipelines: phases steered toward one arbitrary model
  // bias every Lemma-6 entailment solve away from the easy
  // counterexample models the Deduce phase lives on — a measured net
  // slowdown (the bench sls_warm_start.deduce_speedup floor guards it).
  if (s.options_.solver.use_sls_seeding && !s.options_.naive_deduce) {
    s.solver_->SeedFromLocalSearch(s.inst_->guard_assumptions());
  }
  s.last_encode_ms_ = timer.ElapsedMs();
  return s;
}

void ResolutionSession::FeedSolver() {
  solver_->AddCnfFrom(*cnf_, fed_clauses_);
  fed_clauses_ = cnf_->num_clauses();
}

ValidityResult ResolutionSession::CheckValidity() {
  return IsValidShared(solver_, *cnf_, inst_->guard_assumptions());
}

DeducedOrders ResolutionSession::Deduce() {
  if (options_.naive_deduce) {
    return NaiveDeduceShared(*inst_, solver_, inst_->guard_assumptions());
  }
  DeduceScratch* scratch = options_.scratch != nullptr
                               ? options_.scratch->AcquireDeduceScratch()
                               : nullptr;
  return DeduceOrder(*inst_, *cnf_, options_.deduce,
                     inst_->guard_assumptions(), scratch);
}

Suggestion ResolutionSession::MakeSuggestion(
    const std::vector<std::vector<int>>& candidates,
    const std::vector<int>& known_true) {
  return SuggestOnSolver(*inst_, solver_, inst_->guard_assumptions(),
                         candidates, known_true, options_.suggest);
}

Status ResolutionSession::ExtendWith(const PartialTemporalOrder& ot) {
  CCR_ASSIGN_OR_RETURN(Specification next, Extend(spec_, ot));
  Timer timer;
  // GetSug's released scopes allocated selector/cardinality variables
  // directly on the persistent solver; advance the VarMap's allocator past
  // them so this round's atom and guard variables get ids the solver has
  // not already bound. (The burnt ids stay frozen aux variables.)
  while (inst_->varmap.num_vars() < solver_->num_vars()) {
    inst_->varmap.NewAuxVar();
  }
  cnf_->EnsureVars(inst_->varmap.num_vars());
  CCR_ASSIGN_OR_RETURN(
      InstantiationDelta delta,
      inst_->ExtendWith(next, ot, SessionGroundingOptions()));
  // Guarded grounding expresses every delta append-only — the LHS-growth
  // case retires guards instead of demanding a rebuild.
  CCR_CHECK(!delta.needs_rebuild);
  ExtendCnf(*inst_, delta, cnf_);
  FeedSolver();
  // New clauses (and retired-guard units) may have asserted fresh
  // top-level facts; fold them in and drop clauses they satisfy before
  // the next phase solves. This is also the arena GC schedule point: a
  // round's sweeps and inprocessing mark dead clauses, and Simplify ends
  // by compacting the arena once the dead fraction crosses
  // SolverOptions::gc_frac — which is what keeps a multi-hundred-round
  // session's solver memory proportional to its live clause set.
  solver_->Simplify();
  // Re-seed from local search: the phases still hold (near) the previous
  // round's model, so a short pass usually repairs it against the delta
  // and refills the witness ring the extension just invalidated — the
  // next validity/deduce solves start warm. Skipped on NaiveDeduce
  // pipelines for the same reason as in Create: soft-biased phases
  // poison the entailment sweep.
  if (options_.solver.use_sls_seeding && !options_.naive_deduce &&
      !solver_->IsUnsatForever()) {
    solver_->SeedFromLocalSearch(inst_->guard_assumptions());
  }
  ++incremental_extensions_;
  last_encode_ms_ = timer.ElapsedMs();
  spec_ = std::move(next);
  return Status::OK();
}

}  // namespace ccr
