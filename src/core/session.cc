#include "src/core/session.h"

#include <utility>

#include "src/common/timer.h"

namespace ccr {

sat::Solver* SessionScratch::AcquireSolver(const sat::SolverOptions& options) {
  if (solver_ == nullptr) {
    solver_ = std::make_unique<sat::Solver>(options);
  } else {
    solver_->Reset(options);
    ++solver_reuses_;
  }
  return solver_.get();
}

sat::Cnf* SessionScratch::AcquireCnf() {
  if (cnf_ == nullptr) {
    cnf_ = std::make_unique<sat::Cnf>();
  } else {
    cnf_->Clear();
  }
  return cnf_.get();
}

void ResolutionSession::AdoptSolverAndCnf() {
  if (options_.scratch != nullptr) {
    cnf_ = options_.scratch->AcquireCnf();
    solver_ = options_.scratch->AcquireSolver(options_.solver);
    owned_cnf_.reset();
    owned_solver_.reset();
  } else if (owned_solver_ != nullptr) {
    // Rebuild within a scratch-free session: recycle our own objects the
    // same way a scratch would.
    cnf_->Clear();
    solver_->Reset(options_.solver);
  } else {
    owned_cnf_ = std::make_unique<sat::Cnf>();
    owned_solver_ = std::make_unique<sat::Solver>(options_.solver);
    cnf_ = owned_cnf_.get();
    solver_ = owned_solver_.get();
  }
}

Result<ResolutionSession> ResolutionSession::Create(
    const Specification& se, const ResolveOptions& options) {
  ResolutionSession s;
  s.options_ = options;
  s.spec_ = se;
  Timer timer;
  CCR_ASSIGN_OR_RETURN(s.inst_, Instantiation::Build(s.spec_));
  s.AdoptSolverAndCnf();
  BuildCnfInto(s.inst_, s.cnf_);
  s.FeedSolver();
  s.last_encode_ms_ = timer.ElapsedMs();
  return s;
}

void ResolutionSession::FeedSolver() {
  solver_->AddCnfFrom(*cnf_, fed_clauses_);
  fed_clauses_ = cnf_->num_clauses();
}

ValidityResult ResolutionSession::CheckValidity() {
  return IsValidShared(solver_, *cnf_);
}

DeducedOrders ResolutionSession::Deduce() {
  return options_.naive_deduce ? NaiveDeduceShared(inst_, solver_)
                               : DeduceOrder(inst_, *cnf_, options_.deduce);
}

Suggestion ResolutionSession::MakeSuggestion(
    const std::vector<std::vector<int>>& candidates,
    const std::vector<int>& known_true) {
  return Suggest(inst_, *cnf_, candidates, known_true, options_.suggest);
}

Status ResolutionSession::ExtendWith(const PartialTemporalOrder& ot) {
  CCR_ASSIGN_OR_RETURN(Specification next, Extend(spec_, ot));
  Timer timer;
  CCR_ASSIGN_OR_RETURN(InstantiationDelta delta, inst_.ExtendWith(next, ot));
  if (delta.needs_rebuild) {
    // The delta strengthens already-emitted CFD bodies; append-only
    // encoding cannot express that, so re-encode from scratch (recycling
    // the buffers we already grew).
    CCR_ASSIGN_OR_RETURN(inst_, Instantiation::Build(next));
    AdoptSolverAndCnf();
    BuildCnfInto(inst_, cnf_);
    fed_clauses_ = 0;
    FeedSolver();
    ++rebuilds_;
  } else {
    ExtendCnf(inst_, delta, cnf_);
    FeedSolver();
    // New clauses may have asserted fresh top-level facts; fold them in
    // and drop clauses they satisfy before the next phase solves.
    solver_->Simplify();
    ++incremental_extensions_;
  }
  last_encode_ms_ = timer.ElapsedMs();
  spec_ = std::move(next);
  return Status::OK();
}

}  // namespace ccr
