#include "src/core/session.h"

#include <utility>

#include "src/common/timer.h"

namespace ccr {

Result<ResolutionSession> ResolutionSession::Create(
    const Specification& se, const ResolveOptions& options) {
  ResolutionSession s;
  s.options_ = options;
  s.spec_ = se;
  Timer timer;
  CCR_ASSIGN_OR_RETURN(s.inst_, Instantiation::Build(s.spec_));
  s.cnf_ = BuildCnf(s.inst_);
  s.solver_ = std::make_unique<sat::Solver>(options.solver);
  s.FeedSolver();
  s.last_encode_ms_ = timer.ElapsedMs();
  return s;
}

void ResolutionSession::FeedSolver() {
  solver_->AddCnfFrom(cnf_, fed_clauses_);
  fed_clauses_ = cnf_.num_clauses();
}

ValidityResult ResolutionSession::CheckValidity() {
  return IsValidShared(solver_.get(), cnf_);
}

DeducedOrders ResolutionSession::Deduce() {
  return options_.naive_deduce ? NaiveDeduceShared(inst_, solver_.get())
                               : DeduceOrder(inst_, cnf_, options_.deduce);
}

Suggestion ResolutionSession::MakeSuggestion(
    const std::vector<std::vector<int>>& candidates,
    const std::vector<int>& known_true) {
  return Suggest(inst_, cnf_, candidates, known_true, options_.suggest);
}

Status ResolutionSession::ExtendWith(const PartialTemporalOrder& ot) {
  CCR_ASSIGN_OR_RETURN(Specification next, Extend(spec_, ot));
  Timer timer;
  CCR_ASSIGN_OR_RETURN(InstantiationDelta delta, inst_.ExtendWith(next, ot));
  if (delta.needs_rebuild) {
    // The delta strengthens already-emitted CFD bodies; append-only
    // encoding cannot express that, so re-encode from scratch.
    CCR_ASSIGN_OR_RETURN(inst_, Instantiation::Build(next));
    cnf_ = BuildCnf(inst_);
    solver_ = std::make_unique<sat::Solver>(options_.solver);
    fed_clauses_ = 0;
    FeedSolver();
    ++rebuilds_;
  } else {
    ExtendCnf(inst_, delta, &cnf_);
    FeedSolver();
    // New clauses may have asserted fresh top-level facts; fold them in
    // and drop clauses they satisfy before the next phase solves.
    solver_->Simplify();
    ++incremental_extensions_;
  }
  last_encode_ms_ = timer.ElapsedMs();
  spec_ = std::move(next);
  return Status::OK();
}

}  // namespace ccr
