// ResolutionSession: one specification's lifetime across the framework
// pipeline of Fig. 4 — encode once, solve many.
//
// The framework loops validity → deduction → suggestion over the *same*
// specification, growing it by a small user delta Ot each round. A session
// therefore owns the three artifacts that survive rounds:
//   * Ω(Se): the instantiation, extended in place (ExtendWith grounds only
//     the delta's tuples/orders and appends);
//   * Φ(Se): the CNF, extended append-only (ExtendCnf);
//   * one incremental CDCL solver holding Φ's clauses plus everything it
//     learnt — validity and NaiveDeduce share it via assumptions, and a
//     top-level Simplify pass runs after each extension.
// When a delta cannot be grounded append-only (a new value lands in the
// LHS attribute of an already-grounded CFD), the session transparently
// rebuilds all three from scratch — the legacy cost, paid only in the rare
// case instead of every round.
//
// Resolve() drives a session internally; the class is public so batch
// drivers and benches can observe per-round encode costs and the
// incremental/rebuild split.

#ifndef CCR_CORE_SESSION_H_
#define CCR_CORE_SESSION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/resolver.h"
#include "src/sat/cnf.h"
#include "src/sat/solver.h"

namespace ccr {

/// \brief Reusable solver/CNF allocations shared by back-to-back sessions
/// on one worker thread (cross-entity pooling).
///
/// A batch driver resolves thousands of entities per thread, and every
/// session used to grow its solver's clause arena, watch lists and the CNF
/// literal pool from cold. A scratch keeps those buffers alive between
/// sessions: Acquire* hands out the same objects semantically reset to
/// their freshly-constructed state (Solver::Reset, Cnf::Clear), so entity
/// N+1 reuses entity N's warm allocations while every result stays
/// bit-identical to a scratch-free run.
///
/// A scratch serves ONE live session at a time and must outlive it. Not
/// thread-safe — use one scratch per worker thread.
class SessionScratch {
 public:
  /// A solver observably identical to `Solver(options)`, recycled when a
  /// previous session already grew one.
  sat::Solver* AcquireSolver(const sat::SolverOptions& options);

  /// An empty CNF, recycled with its pool capacity intact.
  sat::Cnf* AcquireCnf();

  /// Acquire calls that recycled a warm object instead of allocating.
  int64_t solver_reuses() const { return solver_reuses_; }

 private:
  std::unique_ptr<sat::Solver> solver_;
  std::unique_ptr<sat::Cnf> cnf_;
  int64_t solver_reuses_ = 0;
};

/// \brief Encode-once/solve-many pipeline state for one specification.
class ResolutionSession {
 public:
  /// Grounds and encodes `se` and loads the solver.
  static Result<ResolutionSession> Create(const Specification& se,
                                          const ResolveOptions& options = {});

  /// Step (1): does the current Se ⊕ Ot ⊕ ... have a valid completion?
  ValidityResult CheckValidity();

  /// Step (2): the deduced value-level currency orders Od.
  DeducedOrders Deduce();

  /// Step (4a): suggestion from the deduced state (`candidates` from
  /// CandidateValues, `known_true` from ExtractTrueValueIndices).
  Suggestion MakeSuggestion(const std::vector<std::vector<int>>& candidates,
                            const std::vector<int>& known_true);

  /// Step (4b): Se ← Se ⊕ Ot. Takes the incremental path when the delta
  /// grounds append-only, otherwise rebuilds instantiation/CNF/solver.
  Status ExtendWith(const PartialTemporalOrder& ot);

  const Specification& spec() const { return spec_; }
  const Instantiation& instantiation() const { return inst_; }
  const sat::Cnf& cnf() const { return *cnf_; }

  /// Wall time the last Create/ExtendWith spent grounding + encoding (ms).
  double last_encode_ms() const { return last_encode_ms_; }
  /// How many ExtendWith calls appended vs. fell back to a full rebuild.
  int incremental_extensions() const { return incremental_extensions_; }
  int rebuilds() const { return rebuilds_; }

 private:
  ResolutionSession() = default;

  /// Points solver_/cnf_ at fresh objects: the scratch's recycled ones
  /// when options_.scratch is set, privately owned ones otherwise. Both
  /// targets are heap-stable, so moving the session keeps them valid.
  void AdoptSolverAndCnf();

  /// Feeds the solver the cnf_ suffix it has not seen yet.
  void FeedSolver();

  ResolveOptions options_;
  Specification spec_;
  Instantiation inst_;
  std::unique_ptr<sat::Cnf> owned_cnf_;        // null when scratch-backed
  std::unique_ptr<sat::Solver> owned_solver_;  // null when scratch-backed
  sat::Cnf* cnf_ = nullptr;
  sat::Solver* solver_ = nullptr;
  int fed_clauses_ = 0;  // prefix of cnf_ already in the solver
  double last_encode_ms_ = 0;
  int incremental_extensions_ = 0;
  int rebuilds_ = 0;
};

}  // namespace ccr

#endif  // CCR_CORE_SESSION_H_
