// ResolutionSession: one specification's lifetime across the framework
// pipeline of Fig. 4 — encode once, solve many, one solver for everything.
//
// The framework loops validity → deduction → suggestion over the *same*
// specification, growing it by a small user delta Ot each round. A session
// therefore owns the three artifacts that survive rounds:
//   * Ω(Se): the instantiation, extended in place (ExtendWith grounds only
//     the delta's tuples/orders and appends). CFD rule bodies are guarded
//     by per-(CFD, LHS-pattern) selector variables, so even the one
//     non-append-only delta — a new value in an applicable CFD's LHS
//     attribute — extends incrementally: the stale version's guard is
//     asserted off and re-grounded guarded rules are appended. Sessions
//     never rebuild.
//   * Φ(Se): the CNF, extended append-only (ExtendCnf);
//   * one incremental CDCL solver holding Φ's clauses plus everything it
//     learnt. Every phase queries it under assumptions: validity and
//     NaiveDeduce assume the active CFD guards, and GetSug runs
//     assumption-based incremental MaxSAT whose per-round selector and
//     cardinality variables live in a released ScopedVars scope — nothing
//     a round introduces constrains the next. A top-level Simplify pass
//     after each extension sweeps clauses deactivated by retired guards.
//
// Resolve() drives a session internally; the class is public so batch
// drivers and benches can observe per-round encode costs and the
// assumption/rebuild counters.

#ifndef CCR_CORE_SESSION_H_
#define CCR_CORE_SESSION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/resolver.h"
#include "src/maxsat/walksat.h"
#include "src/sat/cnf.h"
#include "src/sat/solver.h"

namespace ccr {

/// \brief Reusable solver/CNF/instantiation allocations shared by
/// back-to-back sessions on one worker thread (cross-entity pooling).
///
/// A batch driver resolves thousands of entities per thread, and every
/// session used to grow its solver's clause arena, watch lists, the CNF
/// literal pool and the grounding's projection tables from cold. A scratch
/// keeps those buffers alive between sessions: Acquire* hands out the same
/// objects semantically reset to their freshly-constructed state
/// (Solver::Reset, Cnf::Clear, Instantiation::BuildInto), so entity N+1
/// reuses entity N's warm allocations while every result stays
/// bit-identical to a scratch-free run.
///
/// A scratch serves ONE live session at a time and must outlive it. Not
/// thread-safe — use one scratch per worker thread.
class SessionScratch {
 public:
  /// A solver observably identical to `Solver(options)`, recycled when a
  /// previous session already grew one.
  sat::Solver* AcquireSolver(const sat::SolverOptions& options);

  /// An empty CNF, recycled with its pool capacity intact.
  sat::Cnf* AcquireCnf();

  /// An Instantiation arena for BuildInto: projection tables, hash-table
  /// buckets and the constraint vector stay warm across entities.
  Instantiation* AcquireInstantiation();

  /// WalkSAT working buffers (occurrence CSR, counters, unsat stack) for
  /// the CNF-form RunWalkSat, kept warm across calls — the same pooling
  /// pattern as AcquireInstantiation. The buffers carry no semantic state
  /// between runs (RunWalkSat reinitializes them), so no reset is needed.
  maxsat::WalkSatScratch* AcquireWalkSatScratch();

  /// DeduceOrder's unit-propagation buffers (occurrence lists, clause
  /// counters, the literal queue), kept warm across every round of every
  /// entity — DeduceOrder overwrites them from the CNF each call, so no
  /// reset is needed.
  DeduceScratch* AcquireDeduceScratch();

  /// Acquire calls that recycled a warm object instead of allocating.
  int64_t solver_reuses() const { return solver_reuses_; }

 private:
  std::unique_ptr<sat::Solver> solver_;
  std::unique_ptr<sat::Cnf> cnf_;
  std::unique_ptr<Instantiation> inst_;
  std::unique_ptr<maxsat::WalkSatScratch> walksat_;
  std::unique_ptr<DeduceScratch> deduce_;
  int64_t solver_reuses_ = 0;
};

/// \brief Encode-once/solve-many pipeline state for one specification.
class ResolutionSession {
 public:
  /// Grounds and encodes `se` and loads the solver.
  static Result<ResolutionSession> Create(const Specification& se,
                                          const ResolveOptions& options = {});

  /// Step (1): does the current Se ⊕ Ot ⊕ ... have a valid completion?
  ValidityResult CheckValidity();

  /// Step (2): the deduced value-level currency orders Od.
  DeducedOrders Deduce();

  /// Step (4a): suggestion from the deduced state (`candidates` from
  /// CandidateValues, `known_true` from ExtractTrueValueIndices). Runs
  /// GetSug as incremental MaxSAT on the session solver.
  Suggestion MakeSuggestion(const std::vector<std::vector<int>>& candidates,
                            const std::vector<int>& known_true);

  /// Step (4b): Se ← Se ⊕ Ot. Always extends incrementally — CFD guards
  /// absorb the one formerly non-append-only delta.
  Status ExtendWith(const PartialTemporalOrder& ot);

  const Specification& spec() const { return spec_; }
  const Instantiation& instantiation() const { return *inst_; }
  const sat::Cnf& cnf() const { return *cnf_; }

  /// Wall time the last Create/ExtendWith spent grounding + encoding (ms).
  double last_encode_ms() const { return last_encode_ms_; }
  /// ExtendWith calls (every one of them appends; kept alongside
  /// `rebuilds` for the A/B counters in RoundTrace).
  int incremental_extensions() const { return incremental_extensions_; }
  /// Full re-encodes this session performed. Guarded grounding makes this
  /// 0 by construction; the counter exists so tests and traces can assert
  /// exactly that.
  int rebuilds() const { return rebuilds_; }
  /// Assumption-carrying solves answered by the session solver so far
  /// (validity under guards, NaiveDeduce checks, MaxSAT search steps).
  int64_t assumption_solves() const {
    return solver_->stats().assumption_solves;
  }
  /// Cumulative statistics of the session solver. Resolve diffs these
  /// around each phase call to stamp per-phase deltas (binary
  /// propagations, glue sums, tier/inprocessing counters) into the
  /// RoundTrace.
  const sat::SolverStats& solver_stats() const { return solver_->stats(); }
  /// The persistent session solver, read-only. Soak tests and the bench
  /// harness use it to watch the arena lifecycle (live vs peak words, GC
  /// runs) across a long-lived session.
  const sat::Solver& solver() const { return *solver_; }

 private:
  ResolutionSession() = default;

  /// Points solver_/cnf_/inst_ at fresh objects: the scratch's recycled
  /// ones when options_.scratch is set, privately owned ones otherwise.
  /// All targets are heap-stable, so moving the session keeps them valid.
  void AdoptScratchObjects();

  /// Feeds the solver the cnf_ suffix it has not seen yet.
  void FeedSolver();

  ResolveOptions options_;
  Specification spec_;
  std::unique_ptr<Instantiation> owned_inst_;  // null when scratch-backed
  std::unique_ptr<sat::Cnf> owned_cnf_;        // null when scratch-backed
  std::unique_ptr<sat::Solver> owned_solver_;  // null when scratch-backed
  Instantiation* inst_ = nullptr;
  sat::Cnf* cnf_ = nullptr;
  sat::Solver* solver_ = nullptr;
  int fed_clauses_ = 0;  // prefix of cnf_ already in the solver
  double last_encode_ms_ = 0;
  int incremental_extensions_ = 0;
  int rebuilds_ = 0;
};

}  // namespace ccr

#endif  // CCR_CORE_SESSION_H_
