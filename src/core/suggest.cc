#include "src/core/suggest.h"

#include <algorithm>
#include <optional>

#include "src/graph/clique.h"

namespace ccr {

std::string Suggestion::ToString(const VarMap& vm,
                                 const Schema& schema) const {
  std::string out = "suggest A = {";
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (i > 0) out += ", ";
    out += schema.name(attrs[i]) + " in {";
    for (size_t j = 0; j < candidates[i].size(); ++j) {
      if (j > 0) out += ", ";
      out += vm.domain(attrs[i])[candidates[i][j]].ToString();
    }
    out += "}";
  }
  out += "}; derivable A' = {";
  for (size_t i = 0; i < derivable_attrs.size(); ++i) {
    if (i > 0) out += ", ";
    out += schema.name(derivable_attrs[i]);
  }
  out += "}";
  return out;
}

namespace {

// Shared Suggest implementation. `solver` already holds Φ(Se) (session
// path) or is null with `phi` supplied for lazy one-shot loading — the
// formula is only fed to a solver once a non-empty clique makes a GetSug
// MaxSAT call necessary at all.
Suggestion SuggestImpl(const Instantiation& inst, sat::Solver* solver,
                       const sat::Cnf* phi,
                       std::span<const sat::Lit> assumptions,
                       const std::vector<std::vector<int>>& candidates,
                       const std::vector<int>& known_true,
                       const SuggestOptions& options) {
  const VarMap& vm = inst.varmap;
  Suggestion out;

  // TrueDer + CompGraph + MaxClique (Fig. 7, lines 1-3).
  const std::vector<DerivationRule> rules =
      TrueDer(inst, candidates, known_true);
  const graph::Graph g = CompGraph(rules);
  const std::vector<int> clique = options.exact_clique
                                      ? graph::MaxClique(g)
                                      : graph::GreedyClique(g);

  // GetSug: find the maximal conflict-free subset C' of the clique via
  // MaxSAT. Each rule gets a scoped selector implying that its premises
  // and consequent hold as most-current values; softs maximize kept
  // rules. The scope dies with this call — later rounds on the same
  // solver never see these selectors or clauses.
  std::vector<int> kept;  // indices into `rules`
  if (!clique.empty()) {
    std::optional<sat::Solver> local;
    if (solver == nullptr) {
      local.emplace(options.solver);
      local->AddCnf(*phi);
      solver = &*local;
    }
    sat::ScopedVars scope(solver);
    std::vector<sat::Lit> base(assumptions.begin(), assumptions.end());
    base.push_back(scope.activation());
    std::vector<std::vector<sat::Lit>> softs;
    for (int node : clique) {
      const DerivationRule& rule = rules[node];
      const sat::Var sel = scope.NewVar();
      auto assert_dominates = [&](int attr, int value_idx) {
        const int d = static_cast<int>(vm.domain(attr).size());
        for (int other = 0; other < d; ++other) {
          if (other == value_idx) continue;
          scope.AddClause(
              {sat::Lit::Neg(sel),
               sat::Lit::Pos(vm.VarOf(attr, other, value_idx))});
        }
      };
      for (const auto& [attr, v] : rule.lhs) assert_dominates(attr, v);
      assert_dominates(rule.rhs_attr, rule.rhs_value);
      softs.push_back({sat::Lit::Pos(sel)});
    }
    maxsat::IncrementalMaxSat max_sat(solver);
    const maxsat::MaxSatResult ms = max_sat.Solve(softs, base);
    if (ms.hard_satisfiable) {
      // The MaxSAT result covers every soft positionally — anything less
      // would silently drop kept rules from the tail of the clique.
      CCR_CHECK(ms.soft_satisfied.size() == clique.size());
      for (size_t i = 0; i < clique.size(); ++i) {
        // A soft is "kept" when it holds in the canonical optimum.
        if (ms.soft_satisfied[i]) kept.push_back(clique[i]);
      }
    }
  }

  // A' = consequents of C'; A = R \ (A' ∪ B).
  std::vector<bool> derivable(vm.num_attrs(), false);
  for (int node : kept) {
    derivable[rules[node].rhs_attr] = true;
    out.clique_rules.push_back(rules[node]);
  }
  for (int a = 0; a < vm.num_attrs(); ++a) {
    if (derivable[a]) out.derivable_attrs.push_back(a);
  }
  for (int a = 0; a < vm.num_attrs(); ++a) {
    if (known_true[a] >= 0) continue;   // B: already settled
    if (derivable[a]) continue;         // A': follows from C'
    if (vm.domain(a).empty()) continue; // no values at all: nothing to ask
    if (vm.domain(a).size() == 1) continue;  // trivially resolved
    out.attrs.push_back(a);
    out.candidates.push_back(candidates[a]);
  }
  // Degenerate case: every unresolved attribute is a consequent of the
  // clique, yet the entity is not resolved — the clique's premises are
  // assumed candidate values, so its derivations may not actually fire
  // under propagation. Fall back to asking the unresolved attributes
  // directly; the framework loop is then guaranteed to make progress.
  if (out.attrs.empty()) {
    for (int a = 0; a < vm.num_attrs(); ++a) {
      if (known_true[a] >= 0 || vm.domain(a).size() <= 1) continue;
      out.attrs.push_back(a);
      out.candidates.push_back(candidates[a]);
    }
  }
  return out;
}

}  // namespace

Suggestion Suggest(const Instantiation& inst, const sat::Cnf& phi,
                   const std::vector<std::vector<int>>& candidates,
                   const std::vector<int>& known_true,
                   const SuggestOptions& options) {
  return SuggestImpl(inst, /*solver=*/nullptr, &phi, {}, candidates,
                     known_true, options);
}

Suggestion SuggestOnSolver(const Instantiation& inst, sat::Solver* solver,
                           std::span<const sat::Lit> assumptions,
                           const std::vector<std::vector<int>>& candidates,
                           const std::vector<int>& known_true,
                           const SuggestOptions& options) {
  return SuggestImpl(inst, solver, /*phi=*/nullptr, assumptions, candidates,
                     known_true, options);
}

}  // namespace ccr
