// Suggestion generation (Algorithm Suggest, §V-C.2, Fig. 7).
//
// The minimum suggestion problem is Σp2-complete (Corollary 7), so Suggest
// is a heuristic: derive rules (TrueDer), build the compatibility graph,
// take a maximum clique C, then use MaxSAT to find the largest subset C'
// of C with no conflicts with Se (GetSug). The suggestion asks the user
// for the attributes that are neither known nor derivable from C'.

#ifndef CCR_CORE_SUGGEST_H_
#define CCR_CORE_SUGGEST_H_

#include <span>
#include <string>
#include <vector>

#include "src/core/derivation.h"
#include "src/maxsat/maxsat.h"

namespace ccr {

/// \brief A suggestion (A, V(A)): attributes whose true values the user
/// should provide, with complete candidate sets from the active domain.
struct Suggestion {
  /// A: attributes to ask the user about.
  std::vector<int> attrs;
  /// V(A): candidate value indices (into the VarMap domain) per attribute
  /// of `attrs`, positionally aligned.
  std::vector<std::vector<int>> candidates;
  /// A': attributes whose true values become derivable once A is
  /// validated (consequents of the conflict-free clique C').
  std::vector<int> derivable_attrs;
  /// Rules of the conflict-free clique C' (diagnostics / explanation).
  std::vector<DerivationRule> clique_rules;

  std::string ToString(const VarMap& vm, const Schema& schema) const;
};

/// Suggest knobs.
struct SuggestOptions {
  /// Exact branch-and-bound clique vs. greedy heuristic (ablation).
  bool exact_clique = true;
  sat::SolverOptions solver;
};

/// Computes a suggestion for `se` from its encoding and deduced state.
/// `known_true` is the per-attribute true value index (-1 if unknown).
/// One-shot form: loads Φ(Se) into a fresh solver (no CNF copy) and runs
/// the shared implementation below.
Suggestion Suggest(const Instantiation& inst, const sat::Cnf& phi,
                   const std::vector<std::vector<int>>& candidates,
                   const std::vector<int>& known_true,
                   const SuggestOptions& options = {});

/// Suggest against a caller-owned solver that already holds Φ(Se)'s
/// clauses — the ResolutionSession path. GetSug's per-round rule
/// selectors live in a ScopedVars scope and the conflict-check runs as
/// assumption-based incremental MaxSAT on `solver`; nothing is copied and
/// nothing the call introduces survives it. `assumptions` conditions
/// every query (the session's active CFD guards). The kept-rule set is
/// canonical (see IncrementalMaxSat), so this and the one-shot form agree
/// bit-for-bit on equal specifications.
Suggestion SuggestOnSolver(const Instantiation& inst, sat::Solver* solver,
                           std::span<const sat::Lit> assumptions,
                           const std::vector<std::vector<int>>& candidates,
                           const std::vector<int>& known_true,
                           const SuggestOptions& options = {});

}  // namespace ccr

#endif  // CCR_CORE_SUGGEST_H_
