#include "src/data/career_generator.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>

#include "src/common/rng.h"
#include "src/common/status.h"

namespace ccr {

namespace {

enum CareerAttr {
  kFirstName = 0,
  kLastName,
  kAffiliation,
  kCity,
  kCountry,
  kCareerAttrCount,
};

std::string Label(const char* prefix, int i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%03d", prefix, i);
  return buf;
}

}  // namespace

Dataset GenerateCareer(const CareerOptions& options) {
  Dataset ds;
  ds.name = "CAREER";
  auto schema = Schema::Make(
      {"first_name", "last_name", "affiliation", "city", "country"});
  CCR_CHECK(schema.ok());
  ds.schema = std::move(schema).value();

  // Affiliation i sits in city "Cty_i" and one of 40 countries; the CFD
  // affiliation → (city, country) becomes two constant CFDs per pattern.
  std::vector<std::string> aff_city(options.num_affiliations);
  std::vector<std::string> aff_country(options.num_affiliations);
  for (int i = 0; i < options.num_affiliations; ++i) {
    aff_city[i] = Label("Cty_", i);
    aff_country[i] = Label("Country_", i % 40);
    // Pattern tableaus discovered from data are incomplete; skip every
    // pattern_gap-th affiliation.
    if (options.pattern_gap > 0 && i % options.pattern_gap == 5) continue;
    ds.gamma.emplace_back(
        std::vector<std::pair<int, Value>>{
            {kAffiliation, Value::Str(Label("Univ_", i))}},
        kCity, Value::Str(aff_city[i]));
    ds.gamma.emplace_back(
        std::vector<std::pair<int, Value>>{
            {kAffiliation, Value::Str(Label("Univ_", i))}},
        kCountry, Value::Str(aff_country[i]));
  }

  Rng master(options.seed);

  // First pass: author paths and citation DAGs; mine the pooled
  // affiliation-pair constraints from citation edges.
  struct Author {
    std::vector<int> path;       // strictly increasing affiliation ids
    std::vector<int> paper_aff;  // affiliation id per paper
  };
  std::vector<Author> authors(options.num_entities);
  std::set<std::pair<int, int>> cited_pairs;  // (older aff, newer aff)

  for (int e = 0; e < options.num_entities; ++e) {
    Rng rng = master.Fork();
    Author& author = authors[e];

    // Strictly increasing path over the global affiliation ladder.
    const int path_len =
        rng.Chance(options.p_single_affiliation)
            ? 1
            : static_cast<int>(rng.Range(2, options.max_path));
    std::set<int> chosen;
    while (static_cast<int>(chosen.size()) < path_len) {
      chosen.insert(static_cast<int>(rng.Below(options.num_affiliations)));
    }
    author.path.assign(chosen.begin(), chosen.end());

    // Papers: count from a truncated geometric around the mean; each paper
    // belongs to a path stage, stages non-decreasing over time.
    int n_papers;
    {
      const double u = rng.NextDouble();
      const double span = options.mean_tuples - options.min_tuples;
      n_papers = options.min_tuples +
                 static_cast<int>(-span * 0.9 *
                                  std::log(std::max(1e-9, 1.0 - u)));
      n_papers = std::clamp(n_papers, options.min_tuples,
                            options.max_tuples);
    }
    author.paper_aff.resize(n_papers);
    for (int p = 0; p < n_papers; ++p) {
      const int stage = std::min<int>(
          static_cast<int>(author.path.size()) - 1,
          static_cast<int>(p * author.path.size() / n_papers));
      author.paper_aff[p] = author.path[stage];
    }
    // Make sure the final affiliation appears.
    author.paper_aff[n_papers - 1] = author.path.back();

    // Citation DAG: paper p cites up to max_cites earlier papers, drawn
    // uniformly from the author's whole back catalogue (real citations
    // reach back across affiliations, which is what makes the pooled
    // constraint set large — ≈503 pairs in the paper's corpus).
    for (int p = 1; p < n_papers; ++p) {
      for (int c = 0; c < options.max_cites; ++c) {
        if (!rng.Chance(options.p_cite)) continue;
        const int q = static_cast<int>(rng.Below(p));
        const int a_old = author.paper_aff[q];
        const int a_new = author.paper_aff[p];
        if (a_old != a_new) cited_pairs.emplace(a_old, a_new);
      }
    }
  }

  // Σ: one constraint per cited (older, newer) affiliation pair — the
  // paper's "if paper A cites paper B then the affiliation used in A is
  // more current" rule, pooled across the corpus (≈ 503 in the paper).
  for (const auto& [a_old, a_new] : cited_pairs) {
    CurrencyConstraint phi(kAffiliation);
    phi.AddConstCompare(1, kAffiliation, CmpOp::kEq,
                        Value::Str(Label("Univ_", a_old)));
    phi.AddConstCompare(2, kAffiliation, CmpOp::kEq,
                        Value::Str(Label("Univ_", a_new)));
    ds.sigma.push_back(std::move(phi));
  }

  // Second pass: materialize tuples and ground truth.
  Rng noise_rng(options.seed ^ 0xDECAF);
  for (int e = 0; e < options.num_entities; ++e) {
    const Author& author = authors[e];
    const std::string first = "First_" + std::to_string(e);
    const std::string last = "Last_" + std::to_string(e);

    EntityCase ec;
    ec.instance = EntityInstance(ds.schema, first + " " + last);
    const int n_papers = static_cast<int>(author.paper_aff.size());
    for (int p = 0; p < n_papers; ++p) {
      const int aff = author.paper_aff[p];
      std::string city = aff_city[aff];
      if (p + 1 < n_papers && noise_rng.Chance(options.p_city_noise)) {
        city += "_misspelled";  // repaired by the CFD during resolution
      }
      CCR_CHECK(ec.instance
                    .Add(Tuple({Value::Str(first), Value::Str(last),
                                Value::Str(Label("Univ_", aff)),
                                Value::Str(city),
                                Value::Str(aff_country[aff])}))
                    .ok());
    }
    const int last_aff = author.paper_aff[n_papers - 1];
    ec.truth = {Value::Str(first), Value::Str(last),
                Value::Str(Label("Univ_", last_aff)),
                Value::Str(aff_city[last_aff]),
                Value::Str(aff_country[last_aff])};
    ds.entities.push_back(std::move(ec));
  }
  return ds;
}

}  // namespace ccr
