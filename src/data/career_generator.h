// CAREER-like synthetic data generator (§VI, "CAREER").
//
// The paper's CAREER data is CiteSeer publication metadata for 65 authors
// (schema: first_name, last_name, affiliation, city, country; one tuple
// per publication; 2–175 tuples per entity, about 32 on average). Its
// constraints come from citations — if paper A cites paper B by the same
// author, the affiliation/city/country in A are more current — yielding
// roughly 503 currency constraints and one CFD affiliation → (city,
// country) with 347 constant patterns.
//
// This generator synthesizes authors who move along a globally ordered
// "prestige ladder" of affiliations (global monotonicity keeps the pooled
// citation constraints acyclic, as real time-ordered citations are), plus
// a citation DAG over their papers. Affiliation-pair constraints are mined
// from the citation edges; the CFD patterns bind each affiliation to its
// (city, country). Optional noise misspells a city on non-final papers so
// the CFD repair path is exercised.

#ifndef CCR_DATA_CAREER_GENERATOR_H_
#define CCR_DATA_CAREER_GENERATOR_H_

#include <cstdint>

#include "src/data/dataset.h"

namespace ccr {

/// Parameters for the CAREER generator; defaults follow the paper's corpus
/// statistics.
struct CareerOptions {
  int num_entities = 65;
  int min_tuples = 2;
  int max_tuples = 175;
  double mean_tuples = 32.0;
  uint64_t seed = 11;

  int num_affiliations = 174;
  /// Every pattern_gap-th affiliation has no CFD pattern — discovered
  /// pattern tableaus are incomplete (the paper's single CFD carries 347
  /// patterns, fewer than two per affiliation). Authors ending at such an
  /// affiliation need a second interaction round for city/country, which
  /// is what caps CAREER at 2 rounds in Fig. 8(i).
  int pattern_gap = 11;
  int max_path = 8;            // affiliations per author
  /// Probability an author spends the whole career at one affiliation.
  /// Such authors have no affiliation conflict, so the CFD patterns can
  /// repair their misspelled cities with no currency information — the
  /// Γ-only regime of Fig. 8(l).
  double p_single_affiliation = 0.2;
  double p_cite = 0.65;        // per-slot citation probability
  int max_cites = 5;           // citation slots per paper
  double p_city_noise = 0.04;  // misspelled city on a non-final paper
};

/// Generates the dataset; deterministic in `options.seed`.
Dataset GenerateCareer(const CareerOptions& options = {});

}  // namespace ccr

#endif  // CCR_DATA_CAREER_GENERATOR_H_
