#include "src/data/dataset.h"

#include "src/common/rng.h"

namespace ccr {

namespace {

// Deterministically selects ceil(fraction * n) indices of [0, n).
std::vector<int> SelectFraction(int n, double fraction, uint64_t seed) {
  std::vector<int> idx(n);
  for (int i = 0; i < n; ++i) idx[i] = i;
  if (fraction >= 1.0) return idx;
  Rng rng(seed);
  rng.Shuffle(&idx);
  const int keep = static_cast<int>(fraction * n + 0.5);
  idx.resize(keep);
  return idx;
}

}  // namespace

Specification Dataset::MakeSpec(int idx, double sigma_fraction,
                                double gamma_fraction,
                                uint64_t subset_seed) const {
  Specification se;
  se.temporal = TemporalInstance(entities[idx].instance);
  for (int i : SelectFraction(static_cast<int>(sigma.size()),
                              sigma_fraction, subset_seed)) {
    se.sigma.push_back(sigma[i]);
  }
  for (int i : SelectFraction(static_cast<int>(gamma.size()),
                              gamma_fraction, subset_seed ^ 0xABCDEF)) {
    se.gamma.push_back(gamma[i]);
  }
  return se;
}

std::vector<UserOracle::Answer> TruthOracle::Provide(
    const Specification& se, const Suggestion& suggestion,
    const VarMap& vm) {
  (void)se;
  (void)vm;
  std::vector<Answer> answers;
  bool skipped_any = false;
  for (int attr : suggestion.attrs) {
    if (static_cast<int>(answers.size()) >= answers_per_round_) break;
    const Value& v = truth_[attr];
    if (v.is_null()) continue;  // user has no knowledge of this attribute
    if (!rng_.Chance(answer_prob_)) {
      skipped_any = true;  // hesitates this round; may answer next time
      continue;
    }
    answers.push_back(Answer{attr, v});
  }
  // If everything was skipped by hesitation, answer one attribute anyway:
  // a user who keeps the session open contributes something each round.
  if (answers.empty() && skipped_any) {
    for (int attr : suggestion.attrs) {
      if (!truth_[attr].is_null()) {
        answers.push_back(Answer{attr, truth_[attr]});
        break;
      }
    }
  }
  if (!answers.empty()) ++rounds_answered_;
  return answers;
}

}  // namespace ccr
