// Dataset containers and the ground-truth user oracle for the
// experimental study (§VI).
//
// Each generator produces entity instances with a *hidden* version history
// (its timestamps). The algorithms never see the history — specifications
// start with empty currency orders, exactly as in the paper ("We assumed
// empty currency orders in all the experiments") — but the per-attribute
// most-current values derived from it serve as ground truth for
// verification and for simulating user interactions.

#ifndef CCR_DATA_DATASET_H_
#define CCR_DATA_DATASET_H_

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/core/resolver.h"

namespace ccr {

/// \brief One entity instance plus its ground truth.
struct EntityCase {
  EntityInstance instance;
  /// Per-attribute most-current value (from the hidden history); null when
  /// the attribute never carries a value.
  std::vector<Value> truth;
};

/// \brief A full experimental dataset: shared schema and constraints plus
/// many entities.
struct Dataset {
  std::string name;
  Schema schema;
  std::vector<CurrencyConstraint> sigma;
  std::vector<ConstantCfd> gamma;
  std::vector<EntityCase> entities;

  /// Builds the specification for entity `idx` with empty currency orders
  /// and (optionally) a subset of the constraints.
  ///
  /// `sigma_fraction` / `gamma_fraction` select a prefix-shuffled fraction
  /// of Σ / Γ (deterministic in `subset_seed`), used by the Fig. 8(f)-(p)
  /// sweeps.
  Specification MakeSpec(int idx, double sigma_fraction = 1.0,
                         double gamma_fraction = 1.0,
                         uint64_t subset_seed = 1) const;
};

/// \brief UserOracle that answers suggestions from the dataset's ground
/// truth — the paper's simulated users ("We simulated user interactions by
/// providing true values for suggested attributes, some with new values").
class TruthOracle : public UserOracle {
 public:
  /// `truth` is the per-attribute ground truth of the entity being
  /// resolved. `answers_per_round` caps how many suggested attributes the
  /// user fills in per interaction, and `answer_prob` < 1 makes the user
  /// skip an asked attribute with the complementary probability that
  /// round (§III: "The users do not have to enter values for all
  /// attributes in A") — both produce the gradual k-interaction curves of
  /// Fig. 8(e)/(i)/(m).
  explicit TruthOracle(std::vector<Value> truth,
                       int answers_per_round = 1 << 20,
                       double answer_prob = 1.0, uint64_t seed = 0xACE)
      : truth_(std::move(truth)),
        answers_per_round_(answers_per_round),
        answer_prob_(answer_prob),
        rng_(seed) {}

  std::vector<Answer> Provide(const Specification& se,
                              const Suggestion& suggestion,
                              const VarMap& vm) override;

  int rounds_answered() const { return rounds_answered_; }

 private:
  std::vector<Value> truth_;
  int answers_per_round_;
  double answer_prob_;
  Rng rng_;
  int rounds_answered_ = 0;
};

}  // namespace ccr

#endif  // CCR_DATA_DATASET_H_
