#include "src/data/nba_generator.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <unordered_set>

#include "src/common/rng.h"
#include "src/common/status.h"

namespace ccr {

namespace {

enum NbaAttr {
  kPid = 0,
  kPlayerName,
  kTrueName,
  kTeam,
  kLeague,
  kTname,
  kPoints,
  kPoss,
  kAllpoints,
  kMin,
  kArena,
  kOpened,
  kCapacity,
  kCity,
  kNbaAttrCount,
};

std::string Label(const char* prefix, int i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%03d", prefix, i);
  return buf;
}

// Global league structure: team timelines with renames and arena moves.
struct TeamInfo {
  std::vector<std::string> tnames;     // historical names, oldest first
  int rename_season = -1;              // season at which tnames[1] starts
  std::vector<int> arenas;             // arena ids, oldest first
  std::vector<int> move_seasons;       // season arena[i+1] starts, i >= 0
};

struct ArenaInfo {
  std::string name;
  std::string city;
  int opened = 0;
  int capacity = 0;
};

}  // namespace

Dataset GenerateNba(const NbaOptions& options) {
  Dataset ds;
  ds.name = "NBA";
  auto schema = Schema::Make({"pid", "name", "true_name", "team", "league",
                              "tname", "points", "poss", "allpoints", "min",
                              "arena", "opened", "capacity", "city"});
  CCR_CHECK(schema.ok());
  ds.schema = std::move(schema).value();

  Rng master(options.seed);

  // --- league structure ---------------------------------------------------
  // 26 teams share 58 arenas: 6 teams with 3 arenas (2 moves) and 20 with
  // 2 arenas (1 move) => 6*3 + 20*2 = 58 arenas, 6*2 + 20*1 = 32 moves.
  std::vector<TeamInfo> teams(options.num_teams);
  std::vector<ArenaInfo> arenas;
  int arena_serial = 0;
  auto new_arena = [&]() {
    ArenaInfo a;
    a.name = Label("Arena_", arena_serial);
    a.city = Label("City_", arena_serial);
    a.opened = 1900 + arena_serial;          // globally distinct
    a.capacity = 15000 + 37 * arena_serial;  // globally distinct
    ++arena_serial;
    arenas.push_back(a);
    return arena_serial - 1;
  };
  for (int t = 0; t < options.num_teams; ++t) {
    TeamInfo& info = teams[t];
    info.tnames.push_back(Label("Team_", t));
    if (t < options.num_renames) {
      info.tnames.push_back(Label("Team_", t) + "_new");
      info.rename_season =
          static_cast<int>(master.Range(2, options.max_seasons - 2));
    }
    const int n_arenas = (t < 6) ? 3 : 2;
    for (int a = 0; a < n_arenas; ++a) info.arenas.push_back(new_arena());
    // Move seasons strictly increasing within the career window.
    int prev = 1;
    for (int m = 0; m + 1 < n_arenas; ++m) {
      prev = static_cast<int>(
          master.Range(prev + 1, options.max_seasons - 2 + m));
      info.move_seasons.push_back(prev);
    }
  }
  auto team_tname = [&](int t, int season) -> const std::string& {
    const TeamInfo& info = teams[t];
    if (info.rename_season >= 0 && season >= info.rename_season) {
      return info.tnames[1];
    }
    return info.tnames[0];
  };
  auto team_arena = [&](int t, int season) {
    const TeamInfo& info = teams[t];
    int idx = 0;
    for (size_t m = 0; m < info.move_seasons.size(); ++m) {
      if (season >= info.move_seasons[m]) idx = static_cast<int>(m) + 1;
    }
    return info.arenas[idx];
  };

  // --- Σ: 54 currency constraints ------------------------------------------
  // 15 tname rename pairs (ϕ1 form).
  for (int t = 0; t < options.num_renames; ++t) {
    CurrencyConstraint phi(kTname);
    phi.AddConstCompare(1, kTname, CmpOp::kEq, Value::Str(teams[t].tnames[0]));
    phi.AddConstCompare(2, kTname, CmpOp::kEq, Value::Str(teams[t].tnames[1]));
    ds.sigma.push_back(std::move(phi));
  }
  // 32 arena move pairs (ϕ2 form).
  for (const TeamInfo& info : teams) {
    for (size_t m = 0; m + 1 < info.arenas.size(); ++m) {
      CurrencyConstraint phi(kArena);
      phi.AddConstCompare(1, kArena, CmpOp::kEq,
                          Value::Str(arenas[info.arenas[m]].name));
      phi.AddConstCompare(2, kArena, CmpOp::kEq,
                          Value::Str(arenas[info.arenas[m + 1]].name));
      ds.sigma.push_back(std::move(phi));
    }
  }
  // 4 allpoints constraints (ϕ3 form): the monotone career total orders
  // itself and the per-season stats.
  {
    CurrencyConstraint phi(kAllpoints);
    phi.AddAttrCompare(kAllpoints, CmpOp::kLt);
    ds.sigma.push_back(std::move(phi));
  }
  for (int target : {kPoints, kPoss, kMin}) {
    CurrencyConstraint phi(target);
    phi.AddAttrCompare(kAllpoints, CmpOp::kLt);
    phi.AddAttrCompare(target, CmpOp::kNe);
    ds.sigma.push_back(std::move(phi));
  }
  // 3 arena propagation rules (ϕ4 form).
  for (int target : {kOpened, kCapacity, kCity}) {
    CurrencyConstraint phi(target);
    phi.AddOrder(kArena);
    phi.AddAttrCompare(target, CmpOp::kNe);
    ds.sigma.push_back(std::move(phi));
  }
  CCR_CHECK(static_cast<int>(ds.sigma.size()) == 54);

  // --- Γ: 58 arena → city CFDs (ψ1 form) -----------------------------------
  for (const ArenaInfo& a : arenas) {
    ds.gamma.emplace_back(
        std::vector<std::pair<int, Value>>{{kArena, Value::Str(a.name)}},
        kCity, Value::Str(a.city));
  }
  CCR_CHECK(static_cast<int>(ds.gamma.size()) == 58);

  // --- entities -------------------------------------------------------------
  ds.entities.reserve(options.num_entities);
  for (int e = 0; e < options.num_entities; ++e) {
    Rng rng = master.Fork();
    // Tuple count: geometric-ish around the mean, clamped to [min, max].
    int s = options.min_tuples;
    {
      const double u = rng.NextDouble();
      const double span = options.mean_tuples - options.min_tuples;
      s = options.min_tuples +
          static_cast<int>(-span * 0.9 *
                           std::log(std::max(1e-9, 1.0 - u)));
      s = std::clamp(s, options.min_tuples, options.max_tuples);
    }

    const int n_seasons =
        static_cast<int>(rng.Range(3, options.max_seasons));
    std::unordered_set<int> used_teams;
    int team = static_cast<int>(rng.Below(options.num_teams));
    used_teams.insert(team);

    // Hidden per-season history.
    std::vector<Tuple> history;
    int64_t allpoints = 0;
    const std::string pname = "Player_" + std::to_string(e);
    for (int season = 0; season < n_seasons; ++season) {
      if (season > 0 && rng.Chance(options.p_team_change)) {
        // Move to a team never played for (keeps histories acyclic).
        for (int tries = 0; tries < 8; ++tries) {
          const int cand = static_cast<int>(rng.Below(options.num_teams));
          if (!used_teams.count(cand)) {
            team = cand;
            used_teams.insert(cand);
            break;
          }
        }
      }
      // Per-season stats: distinct within the player (season offsets) so
      // the ϕ3 orders can never cycle.
      const int points =
          200 + season * 977 + static_cast<int>(rng.Below(900));
      const int poss = 500 + season * 1201 + static_cast<int>(rng.Below(1100));
      const int minutes =
          400 + season * 1069 + static_cast<int>(rng.Below(1000));
      allpoints += points;
      const int arena_id = team_arena(team, season);
      const ArenaInfo& arena = arenas[arena_id];
      history.emplace_back(Tuple(
          {Value::Int(e), Value::Str(pname), Value::Str(pname),
           Value::Str(Label("Team_", team)), Value::Str("NBA"),
           Value::Str(team_tname(team, season)), Value::Int(points),
           Value::Int(poss), Value::Int(allpoints), Value::Int(minutes),
           Value::Str(arena.name), Value::Int(arena.opened),
           Value::Int(arena.capacity), Value::Str(arena.city)}));
    }

    EntityCase ec;
    ec.instance = EntityInstance(ds.schema, pname);
    int max_season = -1;
    std::vector<int> sampled(s);
    for (int t = 0; t < s; ++t) {
      sampled[t] = static_cast<int>(rng.Below(n_seasons));
    }
    if (s >= 2) {
      sampled[0] = 0;
      sampled[1] = n_seasons - 1;
    }
    // Misspell some city values (never the first clean occurrence, so
    // every city's true spelling stays present in the instance).
    std::unordered_set<std::string> clean_seen;
    for (int v : sampled) {
      Tuple t = history[v];
      const std::string& city = t[kCity].as_string();
      if (clean_seen.count(city) && rng.Chance(options.p_city_dirt)) {
        t[kCity] = Value::Str(city + "*");
      } else {
        clean_seen.insert(city);
      }
      CCR_CHECK(ec.instance.Add(std::move(t)).ok());
      max_season = std::max(max_season, v);
    }
    ec.truth = history[max_season].values();
    ds.entities.push_back(std::move(ec));
  }
  return ds;
}

}  // namespace ccr
