// NBA-like synthetic data generator (§VI, "NBA player statistics").
//
// The paper's NBA table joins player stats with team and arena histories
// scraped from the web; the data itself is not redistributable, so this
// generator synthesizes a league whose *constraint structure* matches the
// paper's description exactly:
//   * 14-attribute schema (pid, name, true_name, team, league, tname,
//     points, poss, allpoints, min, arena, opened, capacity, city);
//   * 54 currency constraints: 15 team-rename pairs on tname (ϕ1 form),
//     32 arena-move pairs (ϕ2 form), 4 for the monotone career total
//     allpoints (ϕ3 form: allpoints itself plus points/poss/min), and 3
//     propagation rules from the arena order to opened/capacity/city
//     (ϕ4 form);
//   * 58 constant CFDs arena → city (ψ1 form);
//   * 760 entities with 2–136 tuples each (about 27 on average).
//
// Team and arena timelines are globally monotone and players never return
// to a previous team, so the generated histories can never contradict the
// constraints (the paper's instances are likewise constraint-consistent).

#ifndef CCR_DATA_NBA_GENERATOR_H_
#define CCR_DATA_NBA_GENERATOR_H_

#include <cstdint>

#include "src/data/dataset.h"

namespace ccr {

/// Parameters for the NBA generator; defaults follow the paper's corpus
/// statistics (scaled-down entity count by default; benches override).
struct NbaOptions {
  int num_entities = 100;
  int min_tuples = 2;
  int max_tuples = 136;
  double mean_tuples = 27.0;
  uint64_t seed = 7;

  int num_teams = 26;       // 58 arenas over 26 teams => 32 move pairs
  int num_renames = 15;     // teams whose tname changed once
  int max_seasons = 14;     // career length cap
  double p_team_change = 0.45;
  /// Probability that a tuple's city is a misspelled variant of the
  /// arena's city (the paper's NBA table joined three web sources with
  /// inconsistent spellings). The arena → city CFDs repair these; for
  /// single-arena players the repair needs no currency information at
  /// all, which is what keeps the Γ-only curves of Fig. 8(h) above zero.
  double p_city_dirt = 0.10;
};

/// Generates the dataset; deterministic in `options.seed`.
Dataset GenerateNba(const NbaOptions& options = {});

}  // namespace ccr

#endif  // CCR_DATA_NBA_GENERATOR_H_
