#include "src/data/person_generator.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <unordered_set>

#include "src/common/rng.h"
#include "src/common/status.h"

namespace ccr {

namespace {

// Attribute positions in the Person schema (Fig. 2).
enum PersonAttr {
  kName = 0,
  kStatus,
  kJob,
  kKids,
  kCity,
  kAC,
  kZip,
  kCounty,
  kPersonAttrCount,
};

std::string Label(const char* prefix, int i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%04d", prefix, i);
  return buf;
}

// One state of the hidden version history.
struct PersonState {
  int status_idx = 0;
  int job_idx = 0;
  int kids = 0;
  int city_idx = 0;
  int zip_serial = 0;  // entity-local move counter
};

}  // namespace

Dataset GeneratePerson(const PersonOptions& options) {
  Dataset ds;
  ds.name = "Person";
  auto schema = Schema::Make({"name", "status", "job", "kids", "city", "AC",
                              "zip", "county"});
  CCR_CHECK(schema.ok());
  ds.schema = std::move(schema).value();

  // --- Σ: 983 currency constraints of the paper's forms -----------------
  // (a) status transition chain: consecutive-pair constraints like ϕ1/ϕ2.
  for (int i = 0; i + 1 < options.status_chain; ++i) {
    CurrencyConstraint phi(kStatus);
    phi.AddConstCompare(1, kStatus, CmpOp::kEq, Value::Str(Label("st", i)));
    phi.AddConstCompare(2, kStatus, CmpOp::kEq,
                        Value::Str(Label("st", i + 1)));
    ds.sigma.push_back(std::move(phi));
  }
  // (b) job transition chain, like ϕ3 of Fig. 3.
  for (int i = 0; i + 1 < options.job_chain; ++i) {
    CurrencyConstraint phi(kJob);
    phi.AddConstCompare(1, kJob, CmpOp::kEq, Value::Str(Label("jb", i)));
    phi.AddConstCompare(2, kJob, CmpOp::kEq, Value::Str(Label("jb", i + 1)));
    ds.sigma.push_back(std::move(phi));
  }
  // (c) monotone kids (ϕ4).
  {
    CurrencyConstraint phi(kKids);
    phi.AddAttrCompare(kKids, CmpOp::kLt);
    ds.sigma.push_back(std::move(phi));
  }
  // (d) propagation rules ϕ5–ϕ8.
  for (int target : {kJob, kAC, kZip}) {
    CurrencyConstraint phi(target);
    phi.AddOrder(kStatus);
    ds.sigma.push_back(std::move(phi));
  }
  {
    CurrencyConstraint phi(kCounty);
    phi.AddOrder(kCity);
    phi.AddOrder(kZip);
    ds.sigma.push_back(std::move(phi));
  }

  // --- Γ: AC → city, 1000 constant patterns (ψ1/ψ2 style) ---------------
  // City i has area code 200+i and county Label("cn", i).
  for (int i = 0; i < options.num_cities; ++i) {
    ds.gamma.emplace_back(
        std::vector<std::pair<int, Value>>{{kAC, Value::Int(200 + i)}},
        kCity, Value::Str(Label("ct", i)));
  }

  // --- entities ----------------------------------------------------------
  Rng master(options.seed);
  ds.entities.reserve(options.num_entities);
  for (int e = 0; e < options.num_entities; ++e) {
    Rng rng = master.Fork();
    const int s = static_cast<int>(
        rng.Range(options.min_tuples, options.max_tuples));
    // The hidden history grows with the instance, capped so the value
    // domains (and the O(d^3) transitivity encoding) stay bounded.
    const int versions = std::clamp(4 + s / 8, 4, 30);

    // Start low enough in the chains that gap steps never overflow.
    const int status_start = static_cast<int>(rng.Range(
        0, std::max(1, options.status_chain - 2 * versions - 4)));
    const int job_start = static_cast<int>(
        rng.Range(0, std::max(1, options.job_chain - 2 * versions - 4)));

    std::unordered_set<int> used_cities;
    auto fresh_city = [&]() {
      for (int tries = 0; tries < 64; ++tries) {
        const int c = static_cast<int>(rng.Below(options.num_cities));
        if (used_cities.insert(c).second) return c;
      }
      return static_cast<int>(rng.Below(options.num_cities));
    };

    PersonState st;
    st.status_idx = status_start;
    st.job_idx = job_start;
    st.kids = static_cast<int>(rng.Range(0, 2));
    st.city_idx = fresh_city();

    const std::string name = "Person_" + std::to_string(e);
    auto snapshot = [&](const PersonState& v) {
      return Tuple({Value::Str(name), Value::Str(Label("st", v.status_idx)),
                    Value::Str(Label("jb", v.job_idx)), Value::Int(v.kids),
                    Value::Str(Label("ct", v.city_idx)),
                    Value::Int(200 + v.city_idx),
                    Value::Str("zp" + std::to_string(e) + "_" +
                               std::to_string(v.zip_serial)),
                    Value::Str(Label("cn", v.city_idx))});
    };

    // Hidden history: versions[0..versions-1]; the final state is the
    // paper's t_c and is *excluded* from the instance (E \ {t_c}).
    std::vector<Tuple> history;
    history.push_back(snapshot(st));
    for (int v = 1; v < versions; ++v) {
      if (rng.Chance(options.p_move_only)) {
        // Mid-stage move: a new address within the same life stage.
        st.city_idx = fresh_city();
        ++st.zip_serial;
        history.push_back(snapshot(st));
        continue;
      }
      if (rng.Chance(options.p_status_gap)) {
        // Break step: status and job both skip a chain link, leaving no
        // constraint (direct or contrapositive) across this cut.
        st.status_idx += 2;
        st.job_idx += 2;
      } else {
        st.status_idx += 1;
        if (rng.Chance(0.7)) {
          st.job_idx += rng.Chance(options.p_job_gap) ? 2 : 1;
        }
      }
      if (rng.Chance(0.3)) ++st.kids;
      if (rng.Chance(options.p_move)) {
        st.city_idx = fresh_city();
        ++st.zip_serial;
      }
      history.push_back(snapshot(st));
    }

    // Sample s tuples from versions [0, versions-2].
    EntityCase ec;
    ec.instance = EntityInstance(ds.schema, name);
    int max_version = -1;
    std::vector<int> sampled;
    sampled.reserve(s);
    for (int t = 0; t < s; ++t) {
      sampled.push_back(static_cast<int>(rng.Below(versions - 1)));
    }
    // Guarantee at least two distinct versions (conflicts must exist).
    if (s >= 2) {
      sampled[0] = 0;
      sampled[1] = versions - 2;
    }
    // Misspell some city values (never the first clean occurrence, so
    // every city's true spelling stays present in the instance).
    std::unordered_set<std::string> clean_seen;
    for (int v : sampled) {
      Tuple t = history[v];
      const std::string& city = t[kCity].as_string();
      if (clean_seen.count(city) && rng.Chance(options.p_city_dirt)) {
        t[kCity] = Value::Str(city + "*");
      } else {
        clean_seen.insert(city);
      }
      CCR_CHECK(ec.instance.Add(std::move(t)).ok());
      max_version = std::max(max_version, v);
    }

    // Ghost tuple: stale values from an unconnected region of the chains.
    if (rng.Chance(options.p_ghost) && status_start > 12) {
      PersonState ghost;
      ghost.status_idx = static_cast<int>(rng.Range(3, status_start - 8));
      ghost.job_idx =
          static_cast<int>(rng.Range(0, std::max(1, job_start - 8)));
      ghost.kids = 0;
      ghost.city_idx = fresh_city();
      ghost.zip_serial = 1000;  // fresh zip, never a real one
      Tuple g = snapshot(ghost);
      g[kKids] = Value::Null();  // never outrank the real kids count
      CCR_CHECK(ec.instance.Add(std::move(g)).ok());
    }

    // Ground truth: the most current values present in the instance are
    // those of the highest sampled version (all attributes evolve
    // monotonically along the hidden history).
    ec.truth = history[max_version].values();
    ds.entities.push_back(std::move(ec));
  }
  return ds;
}

}  // namespace ccr
