// Person synthetic data generator (§VI, "Person data").
//
// Reimplements the paper's generator: the schema of Fig. 2 (name, status,
// job, kids, city, AC, zip, county); 983 currency constraints of the same
// forms as ϕ1–ϕ8 but with distinct constants (long status/job transition
// chains, monotone kids, status→job/AC/zip and city∧zip→county
// propagation); and a single CFD AC → city with 1000 constant patterns.
//
// Each entity evolves through a hidden version history: status/job advance
// along the chains, kids grow monotonically, and occasional moves change
// (city, AC, zip, county) consistently with the CFD patterns. The entity
// instance samples snapshot versions (the paper's E \ {t_c}: the final
// state itself is excluded); ground truth per attribute is the most
// current value that actually appears in the instance.
//
// Two knobs create the need for user interaction, mirroring the real-data
// behaviour of Fig. 8(m)-(p):
//   * gap transitions: a status/job step occasionally jumps two chain
//     positions, so the consecutive-pair constraints cannot order the
//     observed values (the currency information genuinely is not in Σ);
//   * ghost tuples: stale off-history values that no constraint orders.

#ifndef CCR_DATA_PERSON_GENERATOR_H_
#define CCR_DATA_PERSON_GENERATOR_H_

#include <cstdint>

#include "src/data/dataset.h"

namespace ccr {

/// Parameters for the Person generator. Defaults reproduce the paper's
/// setup (n = 10k entities is scaled down by default; benches override).
struct PersonOptions {
  int num_entities = 100;
  int min_tuples = 4;    // s: size of entity instances
  int max_tuples = 40;
  uint64_t seed = 42;

  int status_chain = 500;  // 499 consecutive-pair constraints
  int job_chain = 480;     // 479 consecutive-pair constraints
  int num_cities = 1000;   // 1000 AC → city CFD patterns

  /// Probability that a version step is a *break*: both status and job
  /// jump two chain positions at once, so neither the consecutive-pair
  /// constraints nor contrapositive reasoning through ϕ5 can order the
  /// values across the cut — the currency information genuinely is not in
  /// Σ and user input is required (the Fig. 8(m) regime).
  double p_status_gap = 0.35;
  /// Probability of an additional job-only chain skip on a normal step
  /// (harmless for resolution — job still follows status via ϕ5 — but
  /// adds realistic variety).
  double p_job_gap = 0.12;
  double p_move = 0.45;        // prob. a version changes city/AC/zip
  /// Probability of a *mid-stage move*: a version where only city/AC/zip
  /// change while status/job/kids stay put. ϕ6/ϕ7 cannot order such AC and
  /// zip values even once status is known (equal status on both sides),
  /// so these attributes need their own user answers — the source of
  /// Person's third interaction round (Fig. 8(m)).
  double p_move_only = 0.22;
  double p_ghost = 0.06;       // prob. of a stale ghost tuple per entity
  /// Probability that a sampled tuple's city is misspelled (AC intact).
  /// The AC → city CFD repairs these; entities that never moved need no
  /// currency information for the repair (Fig. 8(p)'s non-zero floor).
  double p_city_dirt = 0.08;
};

/// Generates the dataset; deterministic in `options.seed`.
Dataset GeneratePerson(const PersonOptions& options = {});

}  // namespace ccr

#endif  // CCR_DATA_PERSON_GENERATOR_H_
