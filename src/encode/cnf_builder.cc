#include "src/encode/cnf_builder.h"

#include <vector>

namespace ccr {

namespace {

// Appends the clause for one ground constraint. A guarded constraint
// (CFD rules under guarded grounding) is emitted as (¬guard ∨ clause):
// it binds only while its guard is assumed true, and retiring the guard
// (unit ¬guard) permanently deactivates it without retracting anything.
void AddConstraintClause(const VarMap& vm, const GroundConstraint& gc,
                         std::vector<sat::Lit>* scratch, sat::Cnf* cnf) {
  scratch->clear();
  if (gc.guard != sat::kVarUndef) {
    scratch->push_back(sat::Lit::Neg(gc.guard));
  }
  for (const OrderAtom& atom : gc.body) {
    scratch->push_back(sat::Lit::Neg(vm.VarOf(atom)));
  }
  if (gc.head_kind == GroundHead::kAtom) {
    scratch->push_back(sat::Lit::Pos(vm.VarOf(gc.head)));
  }
  cnf->AddClause(std::span<const sat::Lit>(scratch->data(), scratch->size()));
}

}  // namespace

sat::Cnf BuildCnf(const Instantiation& inst, const CnfBuildOptions& options) {
  sat::Cnf cnf;
  BuildCnfInto(inst, &cnf, options);
  return cnf;
}

void BuildCnfInto(const Instantiation& inst, sat::Cnf* out,
                  const CnfBuildOptions& options) {
  const VarMap& vm = inst.varmap;
  sat::Cnf& cnf = *out;
  cnf.Clear();
  cnf.EnsureVars(vm.num_vars());

  // Materialized ground constraints.
  std::vector<sat::Lit> clause;
  for (const GroundConstraint& gc : inst.constraints) {
    AddConstraintClause(vm, gc, &clause, &cnf);
  }

  // Structural axioms per attribute domain.
  for (int a = 0; a < vm.num_attrs(); ++a) {
    const int d = static_cast<int>(vm.domain(a).size());
    if (options.asymmetry) {
      for (int i = 0; i < d; ++i) {
        for (int j = i + 1; j < d; ++j) {
          cnf.AddBinary(sat::Lit::Neg(vm.VarOf(a, i, j)),
                        sat::Lit::Neg(vm.VarOf(a, j, i)));
        }
      }
    }
    if (options.transitivity) {
      for (int i = 0; i < d; ++i) {
        for (int j = 0; j < d; ++j) {
          if (j == i) continue;
          for (int k = 0; k < d; ++k) {
            if (k == i || k == j) continue;
            cnf.AddTernary(sat::Lit::Neg(vm.VarOf(a, i, j)),
                           sat::Lit::Neg(vm.VarOf(a, j, k)),
                           sat::Lit::Pos(vm.VarOf(a, i, k)));
          }
        }
      }
    }
  }
}

void ExtendCnf(const Instantiation& inst, const InstantiationDelta& delta,
               sat::Cnf* cnf, const CnfBuildOptions& options) {
  const VarMap& vm = inst.varmap;
  cnf->EnsureVars(vm.num_vars());

  // Retired CFD guards first: each unit permanently satisfies every clause
  // of the invalidated rule version, before the re-grounded replacements
  // (guarded by fresh selectors) are appended below.
  for (sat::Var g : delta.retired_guards) {
    cnf->AddUnit(sat::Lit::Neg(g));
  }

  // Clauses for the freshly grounded constraints.
  std::vector<sat::Lit> clause;
  const int n_constraints = static_cast<int>(inst.constraints.size());
  for (int c = delta.first_new_constraint; c < n_constraints; ++c) {
    AddConstraintClause(vm, inst.constraints[c], &clause, cnf);
  }

  // Structural axioms for atom pairs/triples touching a new domain value.
  // Costs O(d^2 · Δ) per grown attribute instead of the O(d^3) rebuild.
  for (int a = 0; a < vm.num_attrs(); ++a) {
    const int d0 = delta.old_domain_sizes[a];
    const int d = static_cast<int>(vm.domain(a).size());
    if (d == d0) continue;
    if (options.asymmetry) {
      for (int j = d0; j < d; ++j) {
        for (int i = 0; i < j; ++i) {
          cnf->AddBinary(sat::Lit::Neg(vm.VarOf(a, i, j)),
                         sat::Lit::Neg(vm.VarOf(a, j, i)));
        }
      }
    }
    if (options.transitivity) {
      for (int i = 0; i < d; ++i) {
        for (int j = 0; j < d; ++j) {
          if (j == i) continue;
          // Old (i, j) pairs only need the new k range; any pair touching
          // a new value needs every k.
          const int k_begin = (i < d0 && j < d0) ? d0 : 0;
          for (int k = k_begin; k < d; ++k) {
            if (k == i || k == j) continue;
            cnf->AddTernary(sat::Lit::Neg(vm.VarOf(a, i, j)),
                            sat::Lit::Neg(vm.VarOf(a, j, k)),
                            sat::Lit::Pos(vm.VarOf(a, i, k)));
          }
        }
      }
    }
  }
}

}  // namespace ccr
