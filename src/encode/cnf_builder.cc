#include "src/encode/cnf_builder.h"

#include <vector>

namespace ccr {

sat::Cnf BuildCnf(const Instantiation& inst, const CnfBuildOptions& options) {
  const VarMap& vm = inst.varmap;
  sat::Cnf cnf;
  cnf.EnsureVars(vm.num_vars());

  // Materialized ground constraints.
  std::vector<sat::Lit> clause;
  for (const GroundConstraint& gc : inst.constraints) {
    clause.clear();
    for (const OrderAtom& atom : gc.body) {
      clause.push_back(sat::Lit::Neg(vm.VarOf(atom)));
    }
    if (gc.head_kind == GroundHead::kAtom) {
      clause.push_back(sat::Lit::Pos(vm.VarOf(gc.head)));
    }
    cnf.AddClause(std::span<const sat::Lit>(clause.data(), clause.size()));
  }

  // Structural axioms per attribute domain.
  for (int a = 0; a < vm.num_attrs(); ++a) {
    const int d = static_cast<int>(vm.domain(a).size());
    if (options.asymmetry) {
      for (int i = 0; i < d; ++i) {
        for (int j = i + 1; j < d; ++j) {
          cnf.AddBinary(sat::Lit::Neg(vm.VarOf(a, i, j)),
                        sat::Lit::Neg(vm.VarOf(a, j, i)));
        }
      }
    }
    if (options.transitivity) {
      for (int i = 0; i < d; ++i) {
        for (int j = 0; j < d; ++j) {
          if (j == i) continue;
          for (int k = 0; k < d; ++k) {
            if (k == i || k == j) continue;
            cnf.AddTernary(sat::Lit::Neg(vm.VarOf(a, i, j)),
                           sat::Lit::Neg(vm.VarOf(a, j, k)),
                           sat::Lit::Pos(vm.VarOf(a, i, k)));
          }
        }
      }
    }
  }
  return cnf;
}

}  // namespace ccr
