// ConvertToCNF: Φ(Se) from Ω(Se) (§V-A).
//
// Every materialized ground constraint (b1 ∧ ... ∧ bk → h) becomes
// the clause (¬b1 ∨ ... ∨ ¬bk ∨ h); transitivity and asymmetry of ≺^v_A
// are streamed straight into the CNF from the domains. By Lemma 5 of the
// paper, Se is valid iff Φ(Se) is satisfiable (a consistent strict partial
// order always extends to a total order).

#ifndef CCR_ENCODE_CNF_BUILDER_H_
#define CCR_ENCODE_CNF_BUILDER_H_

#include "src/encode/instantiation.h"
#include "src/sat/cnf.h"

namespace ccr {

/// Φ(Se) construction knobs.
struct CnfBuildOptions {
  /// Include the O(d^3) transitivity axioms. Always on for semantic
  /// fidelity; exposed for the encoding micro-benchmarks.
  bool transitivity = true;
  /// Include the asymmetry axioms (x_ab -> ¬x_ba).
  bool asymmetry = true;
};

/// Builds Φ(Se) over the variables of `inst.varmap`.
sat::Cnf BuildCnf(const Instantiation& inst,
                  const CnfBuildOptions& options = {});

/// Builds Φ(Se) into `*cnf` (cleared first, keeping its buffer capacity).
/// Identical output to BuildCnf; the out-parameter form lets a recycled
/// formula (SessionScratch) be refilled without fresh allocations.
void BuildCnfInto(const Instantiation& inst, sat::Cnf* cnf,
                  const CnfBuildOptions& options = {});

/// Appends to `cnf` exactly the clauses Φ(Se ⊕ Ot) gains from an
/// Instantiation::ExtendWith call: one unit per retired CFD guard
/// (guarded grounding — deactivates the stale rule version), one clause
/// per new ground constraint, plus the asymmetry/transitivity axioms for
/// atom pairs/triples that touch a newly added domain value. `cnf` must be
/// the formula previously built (and possibly already extended) from
/// `inst`; `options` must match across all calls.
void ExtendCnf(const Instantiation& inst, const InstantiationDelta& delta,
               sat::Cnf* cnf, const CnfBuildOptions& options = {});

}  // namespace ccr

#endif  // CCR_ENCODE_CNF_BUILDER_H_
