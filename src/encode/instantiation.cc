#include "src/encode/instantiation.h"

#include <algorithm>

#include "src/common/status.h"

namespace ccr {

namespace {

// Attributes mentioned by a currency constraint (body and head), sorted.
std::vector<int> MentionedAttrs(const CurrencyConstraint& phi) {
  std::vector<int> attrs;
  for (const auto& p : phi.order_predicates()) attrs.push_back(p.attr);
  for (const auto& p : phi.compare_predicates()) attrs.push_back(p.attr);
  for (const auto& p : phi.constant_predicates()) attrs.push_back(p.attr);
  attrs.push_back(phi.head_attr());
  std::sort(attrs.begin(), attrs.end());
  attrs.erase(std::unique(attrs.begin(), attrs.end()), attrs.end());
  return attrs;
}

// Stable dedup key for a family-(1a) unit (independent of domain sizes, so
// it survives incremental domain growth).
uint64_t UnitKey(int attr, int less, int more) {
  return (static_cast<uint64_t>(attr) << 42) |
         (static_cast<uint64_t>(less) << 21) | static_cast<uint64_t>(more);
}

// Canonical emission rank of a family-(2) ground constraint: constraint
// index major, then the projection-pair generation (max index, min index,
// direction). Both Build and ExtendWith enumerate pairs in exactly this
// order, so sorting by seq reproduces a from-scratch emission order even
// when the constraints were appended across rounds.
uint64_t SigmaSeq(int ci, int p, int q) {
  const uint64_t n = static_cast<uint64_t>(std::max(p, q));
  const uint64_t m = static_cast<uint64_t>(std::min(p, q));
  const uint64_t dir = p > q ? 1 : 0;
  return (static_cast<uint64_t>(ci) << 44) | (n << 24) | (m << 4) | dir;
}

}  // namespace

std::string GroundConstraint::ToString(const VarMap& vm,
                                       const Schema& schema) const {
  std::string out;
  if (body.empty()) {
    out += "true";
  } else {
    for (size_t i = 0; i < body.size(); ++i) {
      if (i > 0) out += " & ";
      out += vm.AtomToString(body[i], schema);
    }
  }
  out += " -> ";
  out += head_kind == GroundHead::kFalse ? "false"
                                         : vm.AtomToString(head, schema);
  return out;
}

// Grounds ϕ = sigma[ci] on the (ordered) projection pair (p, q) of its
// state table, appending at most one constraint.
void Instantiation::GroundSigmaPair(const CurrencyConstraint& phi, int ci,
                                    int p, int q,
                                    const InstantiationOptions& options) {
  const SigmaState& ss = sigma_state_[ci];
  const Tuple& s1 = ss.projections[p];
  const Tuple& s2 = ss.projections[q];
  if (!phi.ComparisonsHold(s1, s2)) return;

  // Head first: many instantiations are vacuous.
  const int ar = phi.head_attr();
  const Value& h1 = s1.at(ar);
  const Value& h2 = s2.at(ar);
  if (h1.is_null() || h1 == h2) return;  // trivially satisfied
  bool head_false = false;
  if (h2.is_null()) {
    // A value would have to precede a null. Vacuous by default (the
    // null tuple contributes no job/AC/... value to order); under
    // strict null semantics it is a contradiction.
    if (!options.strict_null_order) return;
    head_false = true;
  }

  GroundConstraint gc;
  gc.source = GroundSource::kCurrencyConstraint;
  gc.source_index = ci;
  gc.seq = SigmaSeq(ci, p, q);
  for (const auto& op : phi.order_predicates()) {
    const Value& v1 = s1.at(op.attr);
    const Value& v2 = s2.at(op.attr);
    // A null endpoint has no value-level order atom: the conjunct
    // cannot be instantiated (ins(ω, s1, s2) substitutes values,
    // and a null is the absence of one), so the ground rule is
    // dropped. Treating "null ≺ v" as true instead would lift the
    // tuple-level null-ranks-lowest convention into spurious
    // value-level units whenever the null tuple carries values in
    // other attributes (e.g. the user tuple t_o of §III).
    // Equal values cannot be strictly ordered either.
    if (v1.is_null() || v2.is_null() || v1 == v2) return;
    gc.body.push_back(OrderAtom{op.attr, varmap.ValueIndex(op.attr, v1),
                                varmap.ValueIndex(op.attr, v2)});
  }

  if (head_false) {
    gc.head_kind = GroundHead::kFalse;
  } else {
    gc.head_kind = GroundHead::kAtom;
    gc.head = OrderAtom{ar, varmap.ValueIndex(ar, h1),
                        varmap.ValueIndex(ar, h2)};
  }
  constraints.push_back(std::move(gc));
}

// Family (3) for gamma[gi]: ωX -> b ≺^v_B tp[B] for each competing value b
// with index >= first_b (0 grounds the full family; ExtendWith passes the
// pre-extension domain size to ground only newly competing values).
void Instantiation::GroundCfd(int gi, const Specification& se, int first_b) {
  const ConstantCfd& cfd = se.gamma[gi];
  const int rb = cfd.rhs_attr();
  const int rhs_idx = varmap.ValueIndex(rb, cfd.rhs_value());
  CCR_DCHECK(rhs_idx >= 0);

  const int db = static_cast<int>(varmap.domain(rb).size());
  if (first_b >= db) return;

  // Shared body ωX: tp[Aj] dominates every other domain value of Aj.
  std::vector<OrderAtom> body;
  for (const auto& [aj, cj] : cfd.lhs()) {
    const int cj_idx = varmap.ValueIndex(aj, cj);
    CCR_DCHECK(cj_idx >= 0);
    const int d = static_cast<int>(varmap.domain(aj).size());
    for (int other = 0; other < d; ++other) {
      if (other == cj_idx) continue;
      body.push_back(OrderAtom{aj, other, cj_idx});
    }
  }

  for (int b = first_b; b < db; ++b) {
    if (b == rhs_idx) continue;
    GroundConstraint gc;
    gc.source = GroundSource::kCfd;
    gc.source_index = gi;
    gc.body = body;
    gc.head_kind = GroundHead::kAtom;
    gc.head = OrderAtom{rb, b, rhs_idx};
    gc.guard = guarded_ ? cfd_guard_[gi] : sat::kVarUndef;
    constraints.push_back(std::move(gc));
  }
}

Result<Instantiation> Instantiation::Build(
    const Specification& se, const InstantiationOptions& options) {
  Instantiation inst;
  CCR_RETURN_NOT_OK(BuildInto(se, &inst, options));
  return inst;
}

Status Instantiation::BuildInto(const Specification& se, Instantiation* out,
                                const InstantiationOptions& options) {
  Instantiation& inst = *out;
  // Clear-in-place so a recycled Instantiation refills into the buffers it
  // already grew (constraint vector, projection tables and their hash
  // buckets, the unit-dedup set).
  inst.constraints.clear();
  inst.unit_seen_.clear();
  for (SigmaState& ss : inst.sigma_state_) {
    ss.attrs.clear();
    ss.proj_ids.clear();
    ss.projections.clear();
  }
  inst.active_guards_.clear();
  inst.guarded_ = options.guard_cfds;
  inst.varmap.BuildFrom(se);
  const VarMap& vm = inst.varmap;
  const Schema& schema = se.schema();
  const EntityInstance& ie = se.instance();
  const int n_attrs = schema.size();

  // Bounds-check constraints up front.
  for (const auto& phi : se.sigma) {
    if (phi.head_attr() < 0 || phi.head_attr() >= n_attrs) {
      return Status::InvalidArgument("currency constraint head attribute "
                                     "out of range");
    }
    for (int a : MentionedAttrs(phi)) {
      if (a < 0 || a >= n_attrs) {
        return Status::InvalidArgument(
            "currency constraint attribute out of range");
      }
    }
  }
  for (const auto& cfd : se.gamma) {
    if (cfd.rhs_attr() < 0 || cfd.rhs_attr() >= n_attrs) {
      return Status::InvalidArgument("CFD RHS attribute out of range");
    }
    for (const auto& [a, c] : cfd.lhs()) {
      if (a < 0 || a >= n_attrs) {
        return Status::InvalidArgument("CFD LHS attribute out of range");
      }
    }
  }

  inst.num_tuples_ = ie.size();
  inst.cfd_applicable_.assign(se.gamma.size(), false);
  inst.cfd_lhs_attr_.assign(n_attrs, false);
  inst.cfd_guard_.assign(se.gamma.size(), sat::kVarUndef);

  // (1a) Partial currency orders of It, lifted to value-level unit rules.
  for (int a = 0; a < n_attrs; ++a) {
    for (const auto& [t_less, t_more] : se.temporal.orders(a)) {
      const Value& lv = ie.tuple(t_less).at(a);
      const Value& mv = ie.tuple(t_more).at(a);
      // Null endpoints carry no value-level content: a null is ranked
      // lowest regardless (§II-A).
      if (lv.is_null() || mv.is_null() || lv == mv) continue;
      const int li = vm.ValueIndex(a, lv);
      const int mi = vm.ValueIndex(a, mv);
      CCR_DCHECK(li >= 0 && mi >= 0);
      if (!inst.unit_seen_.insert(UnitKey(a, li, mi)).second) continue;
      GroundConstraint gc;
      gc.source = GroundSource::kCurrencyOrder;
      gc.head = OrderAtom{a, li, mi};
      inst.constraints.push_back(std::move(gc));
    }
  }

  // (2) Currency constraints, grounded over deduplicated tuple-pair
  // projections. Pairs are enumerated generation-major — for every
  // projection n, all pairs with earlier projections m < n — so that
  // ExtendWith (which appends projections) emits the same sequence.
  inst.sigma_state_.resize(se.sigma.size());
  for (size_t ci = 0; ci < se.sigma.size(); ++ci) {
    const CurrencyConstraint& phi = se.sigma[ci];
    SigmaState& ss = inst.sigma_state_[ci];
    ss.attrs = MentionedAttrs(phi);

    for (const Tuple& t : ie.tuples()) {
      std::vector<Value> key;
      key.reserve(ss.attrs.size());
      for (int a : ss.attrs) key.push_back(t.at(a));
      auto [it, inserted] = ss.proj_ids.emplace(
          std::move(key), static_cast<int>(ss.projections.size()));
      if (inserted) {
        std::vector<Value> wide(n_attrs);
        for (int a : ss.attrs) wide[a] = t.at(a);
        ss.projections.emplace_back(std::move(wide));
      }
    }

    const int np = static_cast<int>(ss.projections.size());
    for (int n = 1; n < np; ++n) {
      for (int m = 0; m < n; ++m) {
        inst.GroundSigmaPair(phi, static_cast<int>(ci), m, n, options);
        inst.GroundSigmaPair(phi, static_cast<int>(ci), n, m, options);
      }
    }
  }

  // (3) Applicable constant CFDs: ωX -> b ≺^v_B tp[B] for each competing b.
  for (int gi : vm.applicable_cfds()) {
    if (inst.guarded_) {
      inst.cfd_guard_[gi] = inst.varmap.NewAuxVar();
      inst.active_guards_.push_back(sat::Lit::Pos(inst.cfd_guard_[gi]));
    }
    inst.GroundCfd(gi, se, /*first_b=*/0);
    inst.cfd_applicable_[gi] = true;
    for (const auto& [aj, cj] : se.gamma[gi].lhs()) {
      inst.cfd_lhs_attr_[aj] = true;
    }
  }

  return Status::OK();
}

Result<InstantiationDelta> Instantiation::ExtendWith(
    const Specification& extended_se, const PartialTemporalOrder& delta,
    const InstantiationOptions& options) {
  const EntityInstance& ie = extended_se.instance();
  const int n_attrs = extended_se.schema().size();
  if (ie.size() !=
      num_tuples_ + static_cast<int>(delta.new_tuples.size())) {
    return Status::InvalidArgument(
        "ExtendWith: extended_se does not extend the grounded "
        "specification by exactly delta's tuples");
  }

  // --- plan: which domain values would the delta introduce? --------------
  // (No mutation yet: the rebuild check below must be able to bail out.)
  struct PendingValue {
    int attr;
    Value value;
    bool active;  // from the extended active domain vs. a CFD constant
  };
  std::vector<PendingValue> pending;  // in discovery order
  auto in_domain = [&](int a, const Value& v) {
    if (varmap.ValueIndex(a, v) >= 0) return true;
    for (const auto& p : pending) {
      if (p.attr == a && p.value == v) return true;
    }
    return false;
  };
  for (int t = num_tuples_; t < ie.size(); ++t) {
    for (int a = 0; a < n_attrs; ++a) {
      const Value& v = ie.tuple(t).at(a);
      if (!v.is_null() && !in_domain(a, v)) {
        pending.push_back({a, v, /*active=*/true});
      }
    }
  }

  // CFD reachability fixpoint over the pending values: a CFD whose LHS
  // becomes reachable contributes its RHS constant (possibly cascading).
  std::vector<int> newly_applicable;
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < extended_se.gamma.size(); ++i) {
      if (cfd_applicable_[i]) continue;
      if (std::find(newly_applicable.begin(), newly_applicable.end(),
                    static_cast<int>(i)) != newly_applicable.end()) {
        continue;
      }
      const ConstantCfd& cfd = extended_se.gamma[i];
      bool lhs_reachable = true;
      for (const auto& [attr, c] : cfd.lhs()) {
        if (!in_domain(attr, c)) {
          lhs_reachable = false;
          break;
        }
      }
      if (!lhs_reachable) continue;
      newly_applicable.push_back(static_cast<int>(i));
      changed = true;
      if (!in_domain(cfd.rhs_attr(), cfd.rhs_value())) {
        pending.push_back({cfd.rhs_attr(), cfd.rhs_value(),
                           /*active=*/false});
      }
    }
  }

  // A new value in the LHS attribute of an already-grounded CFD
  // *strengthens* every emitted rule body for that CFD (the pattern must
  // now dominate the new value too), and clauses cannot be retracted.
  // Unguarded grounding must bail out and rebuild. Guarded grounding
  // instead retires the affected CFDs' guards — ExtendCnf asserts them
  // off — and re-grounds those CFDs below under fresh guards, keeping the
  // whole extension append-only.
  InstantiationDelta out;
  std::vector<int> retired_cfds;
  for (const auto& p : pending) {
    if (!cfd_lhs_attr_[p.attr]) continue;
    if (!guarded_) {
      out.needs_rebuild = true;
      return out;
    }
    for (size_t gi = 0; gi < extended_se.gamma.size(); ++gi) {
      if (!cfd_applicable_[gi]) continue;
      for (const auto& [aj, cj] : extended_se.gamma[gi].lhs()) {
        if (aj == p.attr) {
          retired_cfds.push_back(static_cast<int>(gi));
          break;
        }
      }
    }
  }
  std::sort(retired_cfds.begin(), retired_cfds.end());
  retired_cfds.erase(std::unique(retired_cfds.begin(), retired_cfds.end()),
                     retired_cfds.end());

  // --- apply --------------------------------------------------------------
  out.first_new_constraint = static_cast<int>(constraints.size());
  out.old_num_vars = varmap.num_vars();
  out.old_domain_sizes.resize(n_attrs);
  for (int a = 0; a < n_attrs; ++a) {
    out.old_domain_sizes[a] =
        static_cast<int>(varmap.domain(a).size());
  }

  for (const auto& p : pending) {
    varmap.AddDomainValue(p.attr, p.value, p.active);
  }
  std::sort(newly_applicable.begin(), newly_applicable.end());
  for (int gi : newly_applicable) {
    varmap.MarkCfdApplicable(gi);
    cfd_applicable_[gi] = true;
    for (const auto& [aj, cj] : extended_se.gamma[gi].lhs()) {
      cfd_lhs_attr_[aj] = true;
    }
  }

  // Guard churn (guarded grounding): retired CFD versions swap to a fresh
  // guard in place — the live-guard list keeps its stable order — and
  // newly applicable CFDs get their first guard before grounding.
  for (int gi : retired_cfds) {
    out.retired_guards.push_back(cfd_guard_[gi]);
    const sat::Var fresh = varmap.NewAuxVar();
    for (sat::Lit& l : active_guards_) {
      if (l.var() == cfd_guard_[gi]) l = sat::Lit::Pos(fresh);
    }
    cfd_guard_[gi] = fresh;
  }
  if (guarded_) {
    for (int gi : newly_applicable) {
      cfd_guard_[gi] = varmap.NewAuxVar();
      active_guards_.push_back(sat::Lit::Pos(cfd_guard_[gi]));
    }
  }

  // (1a) The delta's currency orders, lifted to value-level unit rules.
  for (const auto& [a, t_less, t_more] : delta.orders) {
    const Value& lv = ie.tuple(t_less).at(a);
    const Value& mv = ie.tuple(t_more).at(a);
    if (lv.is_null() || mv.is_null() || lv == mv) continue;
    const int li = varmap.ValueIndex(a, lv);
    const int mi = varmap.ValueIndex(a, mv);
    CCR_DCHECK(li >= 0 && mi >= 0);
    if (!unit_seen_.insert(UnitKey(a, li, mi)).second) continue;
    GroundConstraint gc;
    gc.source = GroundSource::kCurrencyOrder;
    gc.head = OrderAtom{a, li, mi};
    constraints.push_back(std::move(gc));
  }

  // (2) New tuple-pair projections, paired with everything before them.
  for (size_t ci = 0; ci < extended_se.sigma.size(); ++ci) {
    const CurrencyConstraint& phi = extended_se.sigma[ci];
    SigmaState& ss = sigma_state_[ci];
    const int old_np = static_cast<int>(ss.projections.size());
    for (int t = num_tuples_; t < ie.size(); ++t) {
      std::vector<Value> key;
      key.reserve(ss.attrs.size());
      for (int a : ss.attrs) key.push_back(ie.tuple(t).at(a));
      auto [it, inserted] = ss.proj_ids.emplace(
          std::move(key), static_cast<int>(ss.projections.size()));
      if (inserted) {
        std::vector<Value> wide(n_attrs);
        for (int a : ss.attrs) wide[a] = ie.tuple(t).at(a);
        ss.projections.emplace_back(std::move(wide));
      }
    }
    const int np = static_cast<int>(ss.projections.size());
    for (int n = old_np; n < np; ++n) {
      for (int m = 0; m < n; ++m) {
        GroundSigmaPair(phi, static_cast<int>(ci), m, n, options);
        GroundSigmaPair(phi, static_cast<int>(ci), n, m, options);
      }
    }
  }

  // (3) CFDs: newly competing values of still-valid applicable CFDs (their
  // LHS domains did not change, so recomputed bodies match the rules
  // already emitted), full re-grounds of retired versions under their
  // fresh guards, then the full families of newly applicable ones.
  for (size_t gi = 0; gi < extended_se.gamma.size(); ++gi) {
    if (!cfd_applicable_[gi]) continue;
    const bool is_new =
        std::binary_search(newly_applicable.begin(), newly_applicable.end(),
                           static_cast<int>(gi));
    if (is_new) continue;
    const bool is_retired =
        std::binary_search(retired_cfds.begin(), retired_cfds.end(),
                           static_cast<int>(gi));
    GroundCfd(static_cast<int>(gi), extended_se,
              is_retired
                  ? 0
                  : out.old_domain_sizes[extended_se.gamma[gi].rhs_attr()]);
  }
  for (int gi : newly_applicable) {
    GroundCfd(gi, extended_se, /*first_b=*/0);
  }

  num_tuples_ = ie.size();
  return out;
}

}  // namespace ccr
