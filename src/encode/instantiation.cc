#include "src/encode/instantiation.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "src/common/status.h"

namespace ccr {

namespace {

// Hash / equality over a projection (vector of values).
struct ProjHash {
  size_t operator()(const std::vector<Value>& vs) const {
    size_t h = 0x9e3779b97f4a7c15ULL;
    for (const Value& v : vs) h = h * 1315423911ULL + v.Hash();
    return h;
  }
};

struct ProjEq {
  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (!(a[i] == b[i])) return false;
    }
    return true;
  }
};

// Attributes mentioned by a currency constraint (body and head), sorted.
std::vector<int> MentionedAttrs(const CurrencyConstraint& phi) {
  std::vector<int> attrs;
  for (const auto& p : phi.order_predicates()) attrs.push_back(p.attr);
  for (const auto& p : phi.compare_predicates()) attrs.push_back(p.attr);
  for (const auto& p : phi.constant_predicates()) attrs.push_back(p.attr);
  attrs.push_back(phi.head_attr());
  std::sort(attrs.begin(), attrs.end());
  attrs.erase(std::unique(attrs.begin(), attrs.end()), attrs.end());
  return attrs;
}

}  // namespace

std::string GroundConstraint::ToString(const VarMap& vm,
                                       const Schema& schema) const {
  std::string out;
  if (body.empty()) {
    out += "true";
  } else {
    for (size_t i = 0; i < body.size(); ++i) {
      if (i > 0) out += " & ";
      out += vm.AtomToString(body[i], schema);
    }
  }
  out += " -> ";
  out += head_kind == GroundHead::kFalse ? "false"
                                         : vm.AtomToString(head, schema);
  return out;
}

Result<Instantiation> Instantiation::Build(
    const Specification& se, const InstantiationOptions& options) {
  Instantiation inst;
  inst.varmap = VarMap::Build(se);
  const VarMap& vm = inst.varmap;
  const Schema& schema = se.schema();
  const EntityInstance& ie = se.instance();
  const int n_attrs = schema.size();

  // Bounds-check constraints up front.
  for (const auto& phi : se.sigma) {
    if (phi.head_attr() < 0 || phi.head_attr() >= n_attrs) {
      return Status::InvalidArgument("currency constraint head attribute "
                                     "out of range");
    }
    for (int a : MentionedAttrs(phi)) {
      if (a < 0 || a >= n_attrs) {
        return Status::InvalidArgument(
            "currency constraint attribute out of range");
      }
    }
  }
  for (const auto& cfd : se.gamma) {
    if (cfd.rhs_attr() < 0 || cfd.rhs_attr() >= n_attrs) {
      return Status::InvalidArgument("CFD RHS attribute out of range");
    }
    for (const auto& [a, c] : cfd.lhs()) {
      if (a < 0 || a >= n_attrs) {
        return Status::InvalidArgument("CFD LHS attribute out of range");
      }
    }
  }

  // (1a) Partial currency orders of It, lifted to value-level unit rules.
  {
    std::unordered_set<int64_t> seen;  // (attr, less, more) packed
    for (int a = 0; a < n_attrs; ++a) {
      for (const auto& [t_less, t_more] : se.temporal.orders(a)) {
        const Value& lv = ie.tuple(t_less).at(a);
        const Value& mv = ie.tuple(t_more).at(a);
        // Null endpoints carry no value-level content: a null is ranked
        // lowest regardless (§II-A).
        if (lv.is_null() || mv.is_null() || lv == mv) continue;
        const int li = vm.ValueIndex(a, lv);
        const int mi = vm.ValueIndex(a, mv);
        CCR_DCHECK(li >= 0 && mi >= 0);
        const int d = static_cast<int>(vm.domain(a).size());
        const int64_t key =
            (static_cast<int64_t>(a) * d + li) * d + mi;
        if (!seen.insert(key).second) continue;
        GroundConstraint gc;
        gc.source = GroundSource::kCurrencyOrder;
        gc.head = OrderAtom{a, li, mi};
        inst.constraints.push_back(std::move(gc));
      }
    }
  }

  // (2) Currency constraints, grounded over deduplicated tuple-pair
  // projections.
  for (size_t ci = 0; ci < se.sigma.size(); ++ci) {
    const CurrencyConstraint& phi = se.sigma[ci];
    const std::vector<int> attrs = MentionedAttrs(phi);

    // Distinct projections of tuples onto `attrs`.
    std::unordered_map<std::vector<Value>, int, ProjHash, ProjEq> proj_ids;
    std::vector<Tuple> projections;  // full-width, nulls off-projection
    for (const Tuple& t : ie.tuples()) {
      std::vector<Value> key;
      key.reserve(attrs.size());
      for (int a : attrs) key.push_back(t.at(a));
      auto [it, inserted] =
          proj_ids.emplace(std::move(key), static_cast<int>(projections.size()));
      if (inserted) {
        std::vector<Value> wide(n_attrs);
        for (int a : attrs) wide[a] = t.at(a);
        projections.emplace_back(std::move(wide));
      }
    }

    const int np = static_cast<int>(projections.size());
    for (int p = 0; p < np; ++p) {
      for (int q = 0; q < np; ++q) {
        if (p == q) continue;
        const Tuple& s1 = projections[p];
        const Tuple& s2 = projections[q];
        if (!phi.ComparisonsHold(s1, s2)) continue;

        // Head first: many instantiations are vacuous.
        const int ar = phi.head_attr();
        const Value& h1 = s1.at(ar);
        const Value& h2 = s2.at(ar);
        if (h1.is_null() || h1 == h2) continue;  // trivially satisfied
        bool head_false = false;
        if (h2.is_null()) {
          // A value would have to precede a null. Vacuous by default (the
          // null tuple contributes no job/AC/... value to order); under
          // strict null semantics it is a contradiction.
          if (!options.strict_null_order) continue;
          head_false = true;
        }

        GroundConstraint gc;
        gc.source = GroundSource::kCurrencyConstraint;
        gc.source_index = static_cast<int>(ci);
        bool body_undefined = false;
        for (const auto& op : phi.order_predicates()) {
          const Value& v1 = s1.at(op.attr);
          const Value& v2 = s2.at(op.attr);
          // A null endpoint has no value-level order atom: the conjunct
          // cannot be instantiated (ins(ω, s1, s2) substitutes values,
          // and a null is the absence of one), so the ground rule is
          // dropped. Treating "null ≺ v" as true instead would lift the
          // tuple-level null-ranks-lowest convention into spurious
          // value-level units whenever the null tuple carries values in
          // other attributes (e.g. the user tuple t_o of §III).
          // Equal values cannot be strictly ordered either.
          if (v1.is_null() || v2.is_null() || v1 == v2) {
            body_undefined = true;
            break;
          }
          gc.body.push_back(OrderAtom{op.attr, vm.ValueIndex(op.attr, v1),
                                      vm.ValueIndex(op.attr, v2)});
        }
        if (body_undefined) continue;

        if (head_false) {
          gc.head_kind = GroundHead::kFalse;
        } else {
          gc.head_kind = GroundHead::kAtom;
          gc.head = OrderAtom{ar, vm.ValueIndex(ar, h1),
                              vm.ValueIndex(ar, h2)};
        }
        inst.constraints.push_back(std::move(gc));
      }
    }
  }

  // (3) Applicable constant CFDs: ωX -> b ≺^v_B tp[B] for each competing b.
  for (int gi : vm.applicable_cfds()) {
    const ConstantCfd& cfd = se.gamma[gi];
    const int rb = cfd.rhs_attr();
    const int rhs_idx = vm.ValueIndex(rb, cfd.rhs_value());
    CCR_DCHECK(rhs_idx >= 0);

    // Shared body ωX: tp[Aj] dominates every other domain value of Aj.
    std::vector<OrderAtom> body;
    for (const auto& [aj, cj] : cfd.lhs()) {
      const int cj_idx = vm.ValueIndex(aj, cj);
      CCR_DCHECK(cj_idx >= 0);
      const int d = static_cast<int>(vm.domain(aj).size());
      for (int other = 0; other < d; ++other) {
        if (other == cj_idx) continue;
        body.push_back(OrderAtom{aj, other, cj_idx});
      }
    }

    const int db = static_cast<int>(vm.domain(rb).size());
    for (int b = 0; b < db; ++b) {
      if (b == rhs_idx) continue;
      GroundConstraint gc;
      gc.source = GroundSource::kCfd;
      gc.source_index = gi;
      gc.body = body;
      gc.head_kind = GroundHead::kAtom;
      gc.head = OrderAtom{rb, b, rhs_idx};
      inst.constraints.push_back(std::move(gc));
    }
  }

  return inst;
}

}  // namespace ccr
