// Instantiation(Se): grounding a specification into the instance
// constraints Ω(Se) of §V-A.
//
// Ω(Se) conceptually contains four families:
//   (1a) unit constraints for the partial currency orders in It;
//   (1b) transitivity and (1c) asymmetry of each ≺^v_A;
//   (2)  currency constraints instantiated on tuple pairs;
//   (3)  constant CFDs expanded per competing value b.
// Families (2), (3) and (1a) are materialized here — they carry the
// provenance that TrueDer (§V-C) partitions into derivation rules.
// Families (1b)/(1c) are pure functions of the domains and are streamed
// directly into the CNF by cnf_builder.h, never stored.
//
// Grounding deduplicates tuple pairs by their projection onto the
// attributes a constraint mentions, so the cost is bounded by distinct
// value combinations instead of |It|^2 — this is what makes the paper's
// 10k-tuple Person entities (Fig. 8(a)) tractable.
//
// The framework loop (Fig. 4) re-grounds the *same* specification plus a
// small user delta every round, so Build retains its grounding state
// (projection tables, emitted units, CFD applicability) and ExtendWith
// grounds only the delta, appending constraints and domain values without
// disturbing anything already emitted. Appended constraints follow the
// same canonical order a from-scratch Build would produce (see `seq`), so
// downstream rule mining is bit-compatible with a full rebuild.

#ifndef CCR_ENCODE_INSTANTIATION_H_
#define CCR_ENCODE_INSTANTIATION_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/constraints/specification.h"
#include "src/encode/varmap.h"

namespace ccr {

/// How a ground constraint concludes.
enum class GroundHead {
  kAtom,     // body -> head atom            (orders, currency rules, CFDs)
  kFalse,    // body -> false                (head was unsatisfiable)
};

/// Where a ground constraint came from (provenance for TrueDer).
enum class GroundSource {
  kCurrencyOrder,       // partial order pair in It
  kCurrencyConstraint,  // some ϕ ∈ Σ on a tuple pair
  kCfd,                 // some ψ ∈ Γ and a competing value
};

/// \brief One materialized instance constraint: conjunction of positive
/// order atoms implying a head atom (or false).
struct GroundConstraint {
  GroundSource source = GroundSource::kCurrencyOrder;
  int source_index = -1;  // index into Σ or Γ; -1 for order pairs
  std::vector<OrderAtom> body;
  GroundHead head_kind = GroundHead::kAtom;
  OrderAtom head;
  /// Guard selector (guarded grounding only): the CNF clause is emitted as
  /// (¬guard ∨ clause) and holds only while the guard is assumed true.
  /// One guard is shared by all rules of a (CFD, LHS-pattern-version); a
  /// version whose guard has been retired stays in `constraints` but is
  /// permanently deactivated in the formula. kVarUndef = unguarded.
  sat::Var guard = sat::kVarUndef;
  /// Canonical emission rank within its family. For family (2) this packs
  /// (constraint index, projection-pair generation); TrueDer sorts by it so
  /// incremental appends and full rebuilds mine identical rule orders.
  uint64_t seq = 0;

  std::string ToString(const VarMap& vm, const Schema& schema) const;
};

/// Grounding options.
struct InstantiationOptions {
  /// How to ground a rule whose head demands that a *null* be more
  /// current than a value (e.g. prec(status) -> job onto a tuple with a
  /// missing job). Nulls rank lowest (§II-A), so under the strict reading
  /// the head is unsatisfiable and the rule becomes (body -> false). The
  /// default is the operational reading of the paper's value-level
  /// encoding: nulls carry no value-level content and the ground rule is
  /// vacuous — required for the framework's user tuples t_o, which are
  /// null outside the answered attributes (§III Remark (1)).
  bool strict_null_order = false;
  /// Guard every grounded CFD rule body with a per-(CFD, LHS-pattern)
  /// selector variable (see GroundConstraint::guard). With guards on, the
  /// one non-append-only delta — a new value in an applicable CFD's LHS
  /// attribute — no longer forces a rebuild: ExtendWith retires the old
  /// guard and appends re-grounded guarded rules. Callers must then pass
  /// guard_assumptions() to every solve/deduction over the encoding. The
  /// ResolutionSession runs guarded; one-shot paths stay unguarded and
  /// keep needs_rebuild semantics. Must match across Build/ExtendWith.
  bool guard_cfds = false;
};

/// Hash / equality over a projection (vector of values), used by the
/// grounding's tuple-pair deduplication tables.
struct ProjHash {
  size_t operator()(const std::vector<Value>& vs) const {
    size_t h = 0x9e3779b97f4a7c15ULL;
    for (const Value& v : vs) h = h * 1315423911ULL + v.Hash();
    return h;
  }
};

struct ProjEq {
  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (!(a[i] == b[i])) return false;
    }
    return true;
  }
};

/// \brief What an ExtendWith call changed — consumed by ExtendCnf to
/// append exactly the matching clauses.
struct InstantiationDelta {
  /// True when the delta cannot be grounded append-only (a new domain
  /// value landed in the LHS attribute of an already-grounded CFD, which
  /// would strengthen existing rule bodies) — unguarded grounding only;
  /// with InstantiationOptions::guard_cfds that case is expressed by
  /// `retired_guards` instead and this is always false. When set, nothing
  /// was mutated; the caller must rebuild from scratch.
  bool needs_rebuild = false;
  /// Constraints [first_new_constraint, constraints.size()) are new.
  int first_new_constraint = 0;
  /// Per-attribute domain sizes before the extension (new values have
  /// indices past these).
  std::vector<int> old_domain_sizes;
  /// Variable count before the extension.
  int old_num_vars = 0;
  /// Guards of CFD versions invalidated by this delta (their LHS domain
  /// grew). ExtendCnf asserts each one off with a permanent unit clause;
  /// the re-grounded replacement rules are among the new constraints.
  std::vector<sat::Var> retired_guards;
};

/// \brief Ω(Se): the var map plus the materialized constraint families.
struct Instantiation {
  VarMap varmap;
  std::vector<GroundConstraint> constraints;

  /// Grounds `se`. Fails only on malformed constraints (e.g. attribute
  /// indices out of range); an unsatisfiable Se still grounds fine and is
  /// detected later by IsValid.
  static Result<Instantiation> Build(const Specification& se,
                                     const InstantiationOptions& options = {});

  /// In-place Build: grounds `se` into `*out`, recycling the projection
  /// tables, hash-table buckets and vectors `*out` has already grown
  /// (SessionScratch's cross-entity Instantiation arena). Observably
  /// identical to assigning a fresh Build. On error `*out` is left in an
  /// unspecified (but destructible/reusable) state.
  static Status BuildInto(const Specification& se, Instantiation* out,
                          const InstantiationOptions& options = {});

  /// Active CFD guard literals (guarded grounding only; empty otherwise).
  /// Every solve or unit-propagation pass over the guarded CNF must
  /// assume these true — a retired guard is instead asserted off inside
  /// the formula by ExtendCnf.
  const std::vector<sat::Lit>& guard_assumptions() const {
    return active_guards_;
  }

  /// Incrementally grounds Se ⊕ Ot. `extended_se` must be
  /// Extend(previous, delta) for the specification this instantiation was
  /// built from (or last extended to); only `delta`'s tuples and orders
  /// are grounded. Appends domain values / variables / constraints; never
  /// reorders or mutates existing ones. When the returned delta has
  /// needs_rebuild set, this instantiation is unchanged and the caller
  /// must Build(extended_se) instead.
  Result<InstantiationDelta> ExtendWith(
      const Specification& extended_se, const PartialTemporalOrder& delta,
      const InstantiationOptions& options = {});

 private:
  // Per-Σ-constraint grounding state: the mentioned attributes and the
  // deduplicated tuple-pair projection table, retained so ExtendWith can
  // ground only projections contributed by new tuples.
  struct SigmaState {
    std::vector<int> attrs;
    std::unordered_map<std::vector<Value>, int, ProjHash, ProjEq> proj_ids;
    std::vector<Tuple> projections;  // full-width, nulls off-projection
  };

  void GroundSigmaPair(const CurrencyConstraint& phi, int ci, int p, int q,
                       const InstantiationOptions& options);
  void GroundCfd(int gi, const Specification& se, int first_b);

  std::vector<SigmaState> sigma_state_;
  std::unordered_set<uint64_t> unit_seen_;  // family (1a) dedup keys
  std::vector<bool> cfd_applicable_;        // per gamma index
  std::vector<bool> cfd_lhs_attr_;  // attr is LHS of an applicable CFD
  int num_tuples_ = 0;              // tuples grounded so far
  bool guarded_ = false;            // InstantiationOptions::guard_cfds
  std::vector<sat::Var> cfd_guard_;  // current guard per gamma index
  std::vector<sat::Lit> active_guards_;  // live guard literals, stable order
};

}  // namespace ccr

#endif  // CCR_ENCODE_INSTANTIATION_H_
