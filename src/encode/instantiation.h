// Instantiation(Se): grounding a specification into the instance
// constraints Ω(Se) of §V-A.
//
// Ω(Se) conceptually contains four families:
//   (1a) unit constraints for the partial currency orders in It;
//   (1b) transitivity and (1c) asymmetry of each ≺^v_A;
//   (2)  currency constraints instantiated on tuple pairs;
//   (3)  constant CFDs expanded per competing value b.
// Families (2), (3) and (1a) are materialized here — they carry the
// provenance that TrueDer (§V-C) partitions into derivation rules.
// Families (1b)/(1c) are pure functions of the domains and are streamed
// directly into the CNF by cnf_builder.h, never stored.
//
// Grounding deduplicates tuple pairs by their projection onto the
// attributes a constraint mentions, so the cost is bounded by distinct
// value combinations instead of |It|^2 — this is what makes the paper's
// 10k-tuple Person entities (Fig. 8(a)) tractable.

#ifndef CCR_ENCODE_INSTANTIATION_H_
#define CCR_ENCODE_INSTANTIATION_H_

#include <string>
#include <vector>

#include "src/constraints/specification.h"
#include "src/encode/varmap.h"

namespace ccr {

/// How a ground constraint concludes.
enum class GroundHead {
  kAtom,     // body -> head atom            (orders, currency rules, CFDs)
  kFalse,    // body -> false                (head was unsatisfiable)
};

/// Where a ground constraint came from (provenance for TrueDer).
enum class GroundSource {
  kCurrencyOrder,       // partial order pair in It
  kCurrencyConstraint,  // some ϕ ∈ Σ on a tuple pair
  kCfd,                 // some ψ ∈ Γ and a competing value
};

/// \brief One materialized instance constraint: conjunction of positive
/// order atoms implying a head atom (or false).
struct GroundConstraint {
  GroundSource source = GroundSource::kCurrencyOrder;
  int source_index = -1;  // index into Σ or Γ; -1 for order pairs
  std::vector<OrderAtom> body;
  GroundHead head_kind = GroundHead::kAtom;
  OrderAtom head;

  std::string ToString(const VarMap& vm, const Schema& schema) const;
};

/// Grounding options.
struct InstantiationOptions {
  /// How to ground a rule whose head demands that a *null* be more
  /// current than a value (e.g. prec(status) -> job onto a tuple with a
  /// missing job). Nulls rank lowest (§II-A), so under the strict reading
  /// the head is unsatisfiable and the rule becomes (body -> false). The
  /// default is the operational reading of the paper's value-level
  /// encoding: nulls carry no value-level content and the ground rule is
  /// vacuous — required for the framework's user tuples t_o, which are
  /// null outside the answered attributes (§III Remark (1)).
  bool strict_null_order = false;
};

/// \brief Ω(Se): the var map plus the materialized constraint families.
struct Instantiation {
  VarMap varmap;
  std::vector<GroundConstraint> constraints;

  /// Grounds `se`. Fails only on malformed constraints (e.g. attribute
  /// indices out of range); an unsatisfiable Se still grounds fine and is
  /// detected later by IsValid.
  static Result<Instantiation> Build(const Specification& se,
                                     const InstantiationOptions& options = {});
};

}  // namespace ccr

#endif  // CCR_ENCODE_INSTANTIATION_H_
