#include "src/encode/varmap.h"

#include <algorithm>

#include "src/common/status.h"

namespace ccr {

VarMap VarMap::Build(const Specification& se) {
  VarMap vm;
  vm.BuildFrom(se);
  return vm;
}

void VarMap::BuildFrom(const Specification& se) {
  VarMap& vm = *this;
  const Schema& schema = se.schema();
  const EntityInstance& inst = se.instance();
  const int n_attrs = schema.size();

  // Clear-in-place: inner vectors and hash tables keep their buffers so a
  // recycled VarMap (SessionScratch's Instantiation arena) refills warm.
  vm.domains_.resize(n_attrs);
  vm.index_.resize(n_attrs);
  vm.adom_sizes_.resize(n_attrs);
  for (int a = 0; a < n_attrs; ++a) {
    vm.domains_[a].clear();
    vm.index_[a].clear();
  }
  vm.applicable_cfds_.clear();
  vm.ext_vars_.clear();
  vm.ext_atoms_.clear();
  vm.num_vars_ = 0;
  vm.dense_num_vars_ = 0;

  auto add_value = [&vm](int attr, const Value& v) -> bool {
    auto [it, inserted] = vm.index_[attr].emplace(
        v, static_cast<int>(vm.domains_[attr].size()));
    if (inserted) vm.domains_[attr].push_back(v);
    return inserted;
  };

  // Active domains (nulls excluded; they rank lowest and are never
  // candidate current values).
  for (int a = 0; a < n_attrs; ++a) {
    for (const Value& v : inst.ActiveDomain(a)) add_value(a, v);
    vm.adom_sizes_[a] = static_cast<int>(vm.domains_[a].size());
  }

  // Reachability fixpoint over CFD constants: applicable CFDs contribute
  // their RHS constant as a possible (repaired) current value.
  std::vector<bool> applicable(se.gamma.size(), false);
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < se.gamma.size(); ++i) {
      if (applicable[i]) continue;
      const ConstantCfd& cfd = se.gamma[i];
      bool lhs_reachable = true;
      for (const auto& [attr, c] : cfd.lhs()) {
        if (vm.ValueIndex(attr, c) < 0) {
          lhs_reachable = false;
          break;
        }
      }
      if (!lhs_reachable) continue;
      applicable[i] = true;
      changed = true;
      add_value(cfd.rhs_attr(), cfd.rhs_value());
    }
  }
  for (size_t i = 0; i < se.gamma.size(); ++i) {
    if (applicable[i]) vm.applicable_cfds_.push_back(static_cast<int>(i));
  }

  vm.offsets_.resize(n_attrs);
  vm.dense_sizes_.resize(n_attrs);
  int next = 0;
  for (int a = 0; a < n_attrs; ++a) {
    vm.offsets_[a] = next;
    const int d = static_cast<int>(vm.domains_[a].size());
    vm.dense_sizes_[a] = d;
    next += d * d;  // diagonal slots unused but keep decode O(1)
  }
  vm.num_vars_ = next;
  vm.dense_num_vars_ = next;
}

sat::Var VarMap::NewAuxVar() {
  // Hold an ext slot so Decode's dense/ext split stays index-aligned; the
  // sentinel attr marks the slot as "no atom" for IsOrderVar.
  ext_atoms_.push_back(OrderAtom{-1, -1, -1});
  return num_vars_++;
}

int VarMap::AddDomainValue(int attr, const Value& v, bool active) {
  auto [it, inserted] =
      index_[attr].emplace(v, static_cast<int>(domains_[attr].size()));
  if (!inserted) return it->second;
  const int idx = it->second;
  domains_[attr].push_back(v);
  if (active) ++adom_sizes_[attr];
  for (int other = 0; other < idx; ++other) {
    ext_vars_.emplace(PackAtom(attr, other, idx), num_vars_++);
    ext_atoms_.push_back(OrderAtom{attr, other, idx});
    ext_vars_.emplace(PackAtom(attr, idx, other), num_vars_++);
    ext_atoms_.push_back(OrderAtom{attr, idx, other});
  }
  return idx;
}

void VarMap::MarkCfdApplicable(int gi) {
  auto pos = std::lower_bound(applicable_cfds_.begin(),
                              applicable_cfds_.end(), gi);
  if (pos != applicable_cfds_.end() && *pos == gi) return;
  applicable_cfds_.insert(pos, gi);
}

int VarMap::ValueIndex(int attr, const Value& v) const {
  const auto& idx = index_[attr];
  auto it = idx.find(v);
  return it == idx.end() ? -1 : it->second;
}

sat::Var VarMap::VarOf(int attr, int less, int more) const {
  CCR_DCHECK(less >= 0 && more >= 0 &&
             less < static_cast<int>(domains_[attr].size()) &&
             more < static_cast<int>(domains_[attr].size()));
  CCR_DCHECK(less != more);
  const int d = dense_sizes_[attr];
  if (less < d && more < d) return offsets_[attr] + less * d + more;
  auto it = ext_vars_.find(PackAtom(attr, less, more));
  CCR_DCHECK(it != ext_vars_.end());
  return it->second;
}

OrderAtom VarMap::Decode(sat::Var v) const {
  if (v >= dense_num_vars_) return ext_atoms_[v - dense_num_vars_];
  int attr = num_attrs() - 1;
  while (attr > 0 && offsets_[attr] > v) --attr;
  const int d = dense_sizes_[attr];
  const int rel = v - offsets_[attr];
  return OrderAtom{attr, rel / d, rel % d};
}

std::string VarMap::AtomToString(const OrderAtom& atom,
                                 const Schema& schema) const {
  return schema.name(atom.attr) + ": " +
         domains_[atom.attr][atom.less].ToString() + " < " +
         domains_[atom.attr][atom.more].ToString();
}

}  // namespace ccr
