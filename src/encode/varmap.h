// Mapping between value-level currency-order atoms a1 ≺^v_A a2 and SAT
// variables x^A_{a1 a2} (§V-A).
//
// The order domain of attribute A is adom(Ie.A) plus the constants that
// constant CFDs can introduce as repaired current values. Following the
// remark in DESIGN.md, CFD constants are added by a reachability fixpoint:
// a CFD is *applicable* when every LHS constant is already in its
// attribute's domain, and an applicable CFD adds its RHS constant. CFDs
// that can never fire on this entity are dropped, which keeps the domain —
// and the O(d^3) transitivity encoding — proportional to the entity
// instead of to |Γ| (the paper's 1000-pattern CFD sets would otherwise
// blow up the CNF).

#ifndef CCR_ENCODE_VARMAP_H_
#define CCR_ENCODE_VARMAP_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/constraints/specification.h"
#include "src/sat/literal.h"

namespace ccr {

/// \brief A value-level currency-order atom: value `less` is less current
/// than value `more` in attribute `attr` (indices into VarMap domains).
struct OrderAtom {
  int attr = -1;
  int less = -1;
  int more = -1;

  bool operator==(const OrderAtom& o) const {
    return attr == o.attr && less == o.less && more == o.more;
  }
};

/// \brief Per-attribute value domains and the dense atom ↔ variable map.
///
/// Supports incremental growth: values appended after Build (new user
/// values, newly reachable CFD constants) keep every existing variable id
/// stable — atoms over the build-time domains live in dense per-attribute
/// blocks, atoms touching an appended value get fresh ids past the dense
/// region (hash-mapped). This is what lets the ResolutionSession append
/// CNF clauses across rounds instead of re-encoding.
class VarMap {
 public:
  /// Builds domains from `se` and selects the applicable CFDs.
  static VarMap Build(const Specification& se);

  /// In-place equivalent of `*this = Build(se)` that keeps the heap
  /// allocations (domain vectors, value-index hash tables, extension maps)
  /// already grown — the Instantiation arena recycles one VarMap across
  /// back-to-back entities. Observably identical to a fresh Build.
  void BuildFrom(const Specification& se);

  int num_attrs() const { return static_cast<int>(domains_.size()); }

  /// Ordered value domain of `attr` (active domain first, then reachable
  /// CFD constants).
  const std::vector<Value>& domain(int attr) const { return domains_[attr]; }

  /// Number of values of `attr` that come from the active domain; the
  /// rest were introduced by CFDs. At Build time the active values are a
  /// prefix of domain(attr); incremental extension appends new active
  /// values after any CFD constants, so this is a count, not a prefix
  /// length. (Diagnostics only — a value introduced as a CFD constant and
  /// later also observed in a tuple stays counted as a constant.)
  int active_domain_size(int attr) const { return adom_sizes_[attr]; }

  /// Index of `v` in domain(attr), or -1.
  int ValueIndex(int attr, const Value& v) const;

  /// Indices into Specification::gamma of CFDs that can fire on this
  /// entity (reachability fixpoint).
  const std::vector<int>& applicable_cfds() const { return applicable_cfds_; }

  /// Total number of SAT variables.
  int num_vars() const { return num_vars_; }

  /// Variable for the atom less ≺^v more on attr. Precondition:
  /// 0 <= less, more < |domain(attr)| and less != more.
  sat::Var VarOf(int attr, int less, int more) const;
  sat::Var VarOf(const OrderAtom& atom) const {
    return VarOf(atom.attr, atom.less, atom.more);
  }

  /// Inverse of VarOf.
  OrderAtom Decode(sat::Var v) const;

  /// Renders an atom like "city: NY < LA" for diagnostics.
  std::string AtomToString(const OrderAtom& atom, const Schema& schema) const;

  // --- incremental extension (ResolutionSession fast path) ---------------

  /// Appends `v` to domain(attr) and allocates variables for every order
  /// atom pairing it with the existing values (ids appended after
  /// num_vars(); all prior ids stay valid). `active` says whether the
  /// value comes from the (extended) active domain, as opposed to being a
  /// CFD-introduced constant. Returns the value's index — the existing
  /// one if `v` was already in the domain.
  int AddDomainValue(int attr, const Value& v, bool active);

  /// Records gamma index `gi` as applicable, keeping applicable_cfds()
  /// sorted (Build emits it sorted; incremental discovery must match).
  void MarkCfdApplicable(int gi);

  /// Allocates an auxiliary SAT variable that denotes no order atom (CFD
  /// guard selectors). Decode must not be called on it; IsOrderVar
  /// answers false. Ids share the one universe with atom variables so the
  /// CNF, the solver and the deduction pass all agree on var counts.
  sat::Var NewAuxVar();

  /// True iff `v` encodes an order atom (false for NewAuxVar ids).
  bool IsOrderVar(sat::Var v) const {
    return v < dense_num_vars_ || ext_atoms_[v - dense_num_vars_].attr >= 0;
  }

 private:
  static uint64_t PackAtom(int attr, int less, int more) {
    return (static_cast<uint64_t>(attr) << 42) |
           (static_cast<uint64_t>(less) << 21) | static_cast<uint64_t>(more);
  }

  std::vector<std::vector<Value>> domains_;
  std::vector<int> adom_sizes_;
  std::vector<std::unordered_map<Value, int, ValueHash>> index_;
  std::vector<int> offsets_;      // var id base per attribute (dense region)
  std::vector<int> dense_sizes_;  // domain size covered by the dense block
  std::vector<int> applicable_cfds_;
  int num_vars_ = 0;
  int dense_num_vars_ = 0;
  // Atoms touching post-Build values: packed atom -> var, and the inverse.
  std::unordered_map<uint64_t, sat::Var> ext_vars_;
  std::vector<OrderAtom> ext_atoms_;
};

}  // namespace ccr

#endif  // CCR_ENCODE_VARMAP_H_
