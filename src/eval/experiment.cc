#include "src/eval/experiment.h"

#include <algorithm>
#include <atomic>
#include <optional>
#include <thread>

#include "src/core/session.h"
#include "src/eval/pick.h"

namespace ccr {

void RecomputePctTrueByRound(ExperimentResult* r) {
  const size_t n_rounds = r->accuracy_by_round.size();
  r->pct_true_by_round.resize(n_rounds);
  for (size_t k = 0; k < n_rounds; ++k) {
    const AccuracyCounts& c = r->accuracy_by_round[k];
    r->pct_true_by_round[k] =
        c.conflicts == 0 ? 0.0
                         : static_cast<double>(c.deduced) / c.conflicts;
  }
}

std::vector<int> ShardIndices(int num_entities, int shard, int num_shards) {
  std::vector<int> out;
  if (num_shards <= 0 || shard < 0 || shard >= num_shards) return out;
  out.reserve(static_cast<size_t>(num_entities / num_shards) + 1);
  for (int i = shard; i < num_entities; i += num_shards) out.push_back(i);
  return out;
}

ExperimentResult RunExperiment(const Dataset& ds,
                               const ExperimentOptions& options,
                               const std::vector<int>& entity_indices) {
  ExperimentResult out;
  const int n_rounds = options.max_rounds + 1;  // rounds 0..max
  out.accuracy_by_round.assign(n_rounds, AccuracyCounts{});

  std::vector<int> indices = entity_indices;
  if (indices.empty()) {
    indices.resize(ds.entities.size());
    for (size_t i = 0; i < ds.entities.size(); ++i) {
      indices[i] = static_cast<int>(i);
    }
  }
  const int n = static_cast<int>(indices.size());

  // Resolve entities under a work-stealing driver: workers pull the next
  // unclaimed batch of entities off a shared counter, so stragglers never
  // idle a thread. Each entity is fully independent — its own
  // specification copy, its own oracle (seeded by entity index), its own
  // solver — and drops its result into a per-entity slot. Pooling happens
  // afterwards in entity-index order, which makes the ExperimentResult
  // bit-identical at any thread count and any batch size (timings aside).
  const int n_threads = std::clamp(options.num_threads, 1, std::max(1, n));
  std::vector<std::optional<ResolveResult>> results(n);
  // The claim counter lives alone on its cache line: it is the one word
  // every worker hammers, and sharing its line with the result slots (or
  // the lambda's captures) would put that contention on unrelated reads.
  struct alignas(64) ClaimCounter {
    std::atomic<int> v{0};
  };
  ClaimCounter next;
  // Batched claiming: one fetch_add per `batch` entities instead of per
  // entity. On small per-entity work the counter line bouncing between
  // cores is the scaling ceiling; batches amortize it while staying small
  // enough (<= 16, ~1/8 of a thread's fair share) that an unlucky batch
  // of hard entities cannot idle the other workers at the tail. Positions
  // claimed are positions in `indices`, so sharded runs (strided entity
  // subsets) batch equally well.
  const int batch = std::clamp(n / (n_threads * 8), 1, 16);
  auto worker = [&]() {
    // Cross-entity pooling: one scratch per worker, so consecutive
    // entities on this thread recycle the same solver arena / watch lists
    // / CNF pool instead of growing them from cold.
    SessionScratch scratch;
    for (;;) {
      const int begin = next.v.fetch_add(batch, std::memory_order_relaxed);
      if (begin >= n) break;
      const int end = std::min(begin + batch, n);
      for (int i = begin; i < end; ++i) {
        const int idx = indices[i];
        const EntityCase& ec = ds.entities[idx];
        const Specification se =
            ds.MakeSpec(idx, options.sigma_fraction, options.gamma_fraction,
                        options.subset_seed);
        TruthOracle oracle(ec.truth, options.answers_per_round,
                           options.oracle_answer_prob,
                           options.oracle_seed + static_cast<uint64_t>(idx));
        ResolveOptions ropts = options.resolve;
        ropts.max_rounds = options.max_rounds;
        // Never let a caller-set scratch leak through: one scratch shared
        // by several workers would be a data race (SessionScratch serves
        // one resolution at a time); each worker uses its own or none.
        ropts.scratch = options.reuse_allocations ? &scratch : nullptr;
        auto rr_or = Resolve(se, &oracle, ropts);
        if (rr_or.ok()) results[i] = std::move(rr_or).value();
      }
    }
  };
  if (n_threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(n_threads);
    for (int t = 0; t < n_threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  for (int i = 0; i < n; ++i) {
    const EntityCase& ec = ds.entities[indices[i]];
    if (!results[i].has_value()) {
      ++out.invalid_entities;  // Resolve returned an error
      continue;
    }
    const ResolveResult& rr = *results[i];
    ++out.entities;
    if (!rr.valid) ++out.invalid_entities;
    out.max_rounds_used = std::max(out.max_rounds_used, rr.rounds_used);
    for (const RoundTrace& t : rr.trace) {
      out.encode_ms += t.encode_ms;
      out.validity_ms += t.validity_ms;
      out.deduce_ms += t.deduce_ms;
      out.suggest_ms += t.suggest_ms;
      out.solver_encode += t.encode_solver;
      out.solver_validity += t.validity_solver;
      out.solver_deduce += t.deduce_solver;
      out.solver_suggest += t.suggest_solver;
    }
    // Accuracy after exactly k rounds; if the run ended earlier the final
    // state carries forward (the entity is finished).
    for (int k = 0; k < n_rounds; ++k) {
      const int avail =
          std::min<int>(k, static_cast<int>(rr.round_values.size()) - 1);
      if (avail < 0) {
        // Invalid on round 0: nothing resolved.
        AccuracyCounts c;
        c.conflicts = ec.instance.CountConflictAttributes();
        out.accuracy_by_round[k].Add(c);
        continue;
      }
      out.accuracy_by_round[k].Add(
          ScoreAssignment(ec.instance, ec.truth, rr.round_values[avail],
                          rr.round_resolved[avail]));
    }
  }

  RecomputePctTrueByRound(&out);
  return out;
}

AccuracyCounts RunPick(const Dataset& ds, uint64_t seed,
                       const std::vector<int>& entity_indices) {
  AccuracyCounts pooled;
  Rng rng(seed);
  std::vector<int> indices = entity_indices;
  if (indices.empty()) {
    indices.resize(ds.entities.size());
    for (size_t i = 0; i < ds.entities.size(); ++i) {
      indices[i] = static_cast<int>(i);
    }
  }
  for (int idx : indices) {
    const EntityCase& ec = ds.entities[idx];
    const Specification se = ds.MakeSpec(idx);
    const PickResult pick = PickBaseline(se, &rng);
    pooled.Add(
        ScoreAssignment(ec.instance, ec.truth, pick.values, pick.resolved));
  }
  return pooled;
}

}  // namespace ccr
