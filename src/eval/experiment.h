// Experiment harness shared by the Fig. 8 benchmark binaries.
//
// Runs conflict resolution over every entity of a dataset with a
// ground-truth oracle, pooling per-round accuracy and per-phase timings;
// also runs the Pick baseline. The benches layer sweeps (constraint
// fractions, size buckets) on top.

#ifndef CCR_EVAL_EXPERIMENT_H_
#define CCR_EVAL_EXPERIMENT_H_

#include <vector>

#include "src/core/resolver.h"
#include "src/data/dataset.h"
#include "src/eval/metrics.h"

namespace ccr {

/// Configuration of one dataset-level run.
struct ExperimentOptions {
  double sigma_fraction = 1.0;
  double gamma_fraction = 1.0;
  int max_rounds = 3;            // interaction rounds to simulate
  int answers_per_round = 1 << 20;  // oracle answers per suggestion
  double oracle_answer_prob = 1.0;  // per-attribute answer probability
  uint64_t oracle_seed = 0xACE;
  uint64_t subset_seed = 1;      // constraint subsetting
  /// Worker threads resolving entities in parallel (1 = run inline).
  /// Entities are independent (per-entity oracle seed, no shared state),
  /// and results are pooled in entity-index order after all workers join,
  /// so every thread count produces bit-identical ExperimentResults
  /// (timings aside).
  int num_threads = 1;
  /// Cross-entity pooling: each worker thread keeps a SessionScratch so
  /// entity N+1's session recycles entity N's warm solver/CNF allocations
  /// instead of building them from cold. Results are bit-identical either
  /// way (Solver::Reset restores the exact fresh state); the flag exists
  /// for the bench_throughput A/B and regression tests.
  bool reuse_allocations = true;
  ResolveOptions resolve;
};

/// Pooled results of a dataset-level run.
struct ExperimentResult {
  /// accuracy_by_round[k]: accuracy if resolution stopped after k
  /// interaction rounds (k = 0 is fully automatic).
  std::vector<AccuracyCounts> accuracy_by_round;
  /// pct_true_by_round[k]: fraction of conflicted attributes whose true
  /// value is known after k rounds (the y-axis of Fig. 8(e)/(i)/(m)).
  std::vector<double> pct_true_by_round;
  /// Pooled per-phase wall time across entities (ms).
  double encode_ms = 0;
  double validity_ms = 0;
  double deduce_ms = 0;
  double suggest_ms = 0;
  /// Pooled per-phase session-solver statistics across rounds and
  /// entities (the RoundTrace deltas summed). Zero for the legacy engine.
  /// Diagnostics only: deliberately NOT part of the serialized
  /// ExperimentResult JSON, so shard/engine byte-identity is unaffected;
  /// `ccr_experiment --solver-stats` dumps them on stderr.
  sat::SolverStats solver_encode;
  sat::SolverStats solver_validity;
  sat::SolverStats solver_deduce;
  sat::SolverStats solver_suggest;
  int entities = 0;
  int invalid_entities = 0;
  /// Maximum interaction rounds any entity actually used.
  int max_rounds_used = 0;
};

/// Resolves every entity in `ds` (or the sublist `entity_indices` if
/// non-empty) and pools the results.
ExperimentResult RunExperiment(const Dataset& ds,
                               const ExperimentOptions& options,
                               const std::vector<int>& entity_indices = {});

/// Recomputes `r->pct_true_by_round` from `r->accuracy_by_round` (the
/// Fig. 8(e)/(i)/(m) y-axis: deduced / conflicts, 0 when nothing
/// conflicts). The single definition shared by RunExperiment and the
/// shard merge (eval/result_io.h) — byte-identity across processes
/// depends on both computing the ratio identically.
void RecomputePctTrueByRound(ExperimentResult* r);

/// Entity indices belonging to shard `shard` of `num_shards`: every index
/// i in [0, num_entities) with i % num_shards == shard. The shards
/// partition the corpus, and because AccuracyCounts pool losslessly,
/// merging the per-shard ExperimentResults (MergeExperimentResults in
/// eval/result_io.h) reproduces the unsharded run exactly — the unit of
/// scale-out for the multi-process driver (tools/ccr_experiment).
std::vector<int> ShardIndices(int num_entities, int shard, int num_shards);

/// Pick baseline accuracy over the same entities.
AccuracyCounts RunPick(const Dataset& ds, uint64_t seed = 99,
                       const std::vector<int>& entity_indices = {});

}  // namespace ccr

#endif  // CCR_EVAL_EXPERIMENT_H_
