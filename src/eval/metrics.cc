#include "src/eval/metrics.h"

#include "src/common/status.h"

namespace ccr {

AccuracyCounts ScoreAssignment(const EntityInstance& instance,
                               const std::vector<Value>& truth,
                               const std::vector<Value>& values,
                               const std::vector<bool>& resolved) {
  AccuracyCounts counts;
  const int n = instance.schema().size();
  CCR_DCHECK(static_cast<int>(truth.size()) == n);
  CCR_DCHECK(static_cast<int>(values.size()) == n);
  for (int a = 0; a < n; ++a) {
    if (!instance.HasConflict(a)) continue;
    ++counts.conflicts;
    if (!resolved[a]) continue;
    ++counts.deduced;
    if (values[a] == truth[a]) ++counts.correct;
  }
  return counts;
}

}  // namespace ccr
