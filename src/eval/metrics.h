// Accuracy metrics for conflict resolution (§VI, "Accuracy").
//
// Following the paper: precision is the ratio of correctly deduced values
// to all deduced values; recall is the ratio of correctly deduced values
// to the number of attributes with conflicts or stale values; F-measure is
// their harmonic mean. Only attributes that actually conflict (more than
// one distinct non-null value) enter the counts — attributes without
// conflicts need no resolution.

#ifndef CCR_EVAL_METRICS_H_
#define CCR_EVAL_METRICS_H_

#include <vector>

#include "src/relational/entity_instance.h"

namespace ccr {

/// \brief Micro-averaged accuracy counters; Add() pools entities.
struct AccuracyCounts {
  int deduced = 0;    // conflicted attributes assigned a value
  int correct = 0;    // ... of which match the ground truth
  int conflicts = 0;  // conflicted attributes (recall denominator)

  void Add(const AccuracyCounts& other) {
    deduced += other.deduced;
    correct += other.correct;
    conflicts += other.conflicts;
  }

  double Precision() const {
    return deduced == 0 ? 0.0 : static_cast<double>(correct) / deduced;
  }
  double Recall() const {
    return conflicts == 0 ? 0.0 : static_cast<double>(correct) / conflicts;
  }
  double F1() const {
    const double p = Precision();
    const double r = Recall();
    return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }
};

/// Scores a per-attribute value assignment against ground truth over the
/// conflicted attributes of `instance`. `resolved[a]` marks attributes the
/// method committed a value for; unresolved attributes hurt recall only.
AccuracyCounts ScoreAssignment(const EntityInstance& instance,
                               const std::vector<Value>& truth,
                               const std::vector<Value>& values,
                               const std::vector<bool>& resolved);

}  // namespace ccr

#endif  // CCR_EVAL_METRICS_H_
