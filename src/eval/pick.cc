#include "src/eval/pick.h"

#include "src/common/status.h"
#include "src/core/deduce.h"
#include "src/encode/instantiation.h"

namespace ccr {

PickResult PickBaseline(const Specification& se, Rng* rng) {
  // Keep only comparison-only currency constraints and drop Γ, then let
  // grounding produce the unconditional value orders they imply.
  Specification favored;
  favored.temporal = se.temporal;
  for (const CurrencyConstraint& phi : se.sigma) {
    if (phi.IsComparisonOnly()) favored.sigma.push_back(phi);
  }

  auto inst_or = Instantiation::Build(favored);
  CCR_CHECK(inst_or.ok());
  const Instantiation& inst = inst_or.value();
  const VarMap& vm = inst.varmap;

  // Unconditional ground heads give the known currency orders.
  DeducedOrders od;
  for (int a = 0; a < vm.num_attrs(); ++a) {
    od.per_attr.emplace_back(static_cast<int>(vm.domain(a).size()));
  }
  for (const GroundConstraint& gc : inst.constraints) {
    if (!gc.body.empty() || gc.head_kind != GroundHead::kAtom) continue;
    (void)od.per_attr[gc.head.attr].Add(gc.head.less, gc.head.more);
  }

  PickResult out;
  const int n = se.schema().size();
  out.values.assign(n, Value::Null());
  out.resolved.assign(n, false);
  for (int a = 0; a < n; ++a) {
    const std::vector<int> maximal = od.per_attr[a].Maximal();
    if (vm.domain(a).empty()) continue;
    // Pick a value that is not less current than any other value.
    const int idx =
        maximal.empty()
            ? static_cast<int>(rng->Below(vm.domain(a).size()))
            : maximal[static_cast<size_t>(rng->Below(maximal.size()))];
    out.values[a] = vm.domain(a)[idx];
    out.resolved[a] = true;
  }
  return out;
}

}  // namespace ccr
