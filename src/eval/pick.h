// The traditional Pick baseline (§VI).
//
// Conflict resolution surveys resolve attribute conflicts by picking a
// value (max/min/any) [4]. The paper compares against a *favored* Pick:
// it may use the comparison-only currency constraints (bodies without
// order predicates, e.g. ϕ1–ϕ3 of the NBA set) to discard values that are
// provably less current, then picks uniformly among the remaining ones.

#ifndef CCR_EVAL_PICK_H_
#define CCR_EVAL_PICK_H_

#include <vector>

#include "src/common/rng.h"
#include "src/constraints/specification.h"

namespace ccr {

/// Result of the Pick baseline on one entity.
struct PickResult {
  std::vector<Value> values;   // per attribute; null if no value available
  std::vector<bool> resolved;  // false only for all-null attributes
};

/// Runs favored Pick on `se` (Γ is ignored; order-predicate constraints in
/// Σ are ignored, matching the paper's setup).
PickResult PickBaseline(const Specification& se, Rng* rng);

}  // namespace ccr

#endif  // CCR_EVAL_PICK_H_
