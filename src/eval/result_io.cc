#include "src/eval/result_io.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>
#include <set>

namespace ccr {

namespace {

// --- writer ----------------------------------------------------------------

// %.17g survives a double -> text -> double round trip exactly, and equal
// doubles format to equal bytes — both load-bearing for the shard/merge
// byte-identity check.
void AppendDouble(double v, std::string* out) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
}

void AppendInt(int v, std::string* out) {
  out->append(std::to_string(v));
}

class JsonWriter {
 public:
  explicit JsonWriter(int indent) : indent_(indent) {}

  std::string Take() && { return std::move(out_); }

  void BeginObject() {
    out_.push_back('{');
    ++depth_;
    first_ = true;
  }
  void EndObject() {
    --depth_;
    Newline();
    out_.push_back('}');
    first_ = false;
  }
  void Key(const char* name) {
    if (!first_) out_.push_back(',');
    Newline();
    out_.push_back('"');
    out_.append(name);
    out_.append("\": ");
    first_ = true;  // the value is the first token after the key
  }
  void Value(int v) {
    AppendInt(v, &out_);
    first_ = false;
  }
  void Value(double v) {
    AppendDouble(v, &out_);
    first_ = false;
  }
  void Value(const char* v) {
    out_.push_back('"');
    out_.append(v);
    out_.push_back('"');
    first_ = false;
  }
  /// Arrays are emitted inline (one line per element for objects is the
  /// caller's concern; scalars stay compact).
  void BeginArray() {
    out_.push_back('[');
    first_ = false;
  }
  void ArraySep(bool first) {
    if (!first) out_.append(", ");
  }
  void EndArray() { out_.push_back(']'); }

 private:
  void Newline() {
    if (indent_ <= 0) return;
    out_.push_back('\n');
    out_.append(static_cast<size_t>(indent_ * depth_), ' ');
  }

  std::string out_;
  int indent_;
  int depth_ = 0;
  bool first_ = true;
};

// --- parser ----------------------------------------------------------------

// Minimal recursive-descent JSON reader, specialized to what the schema
// needs: objects, arrays, numbers, strings, bools. Field handlers are
// driven off the key so any field order parses; unknown keys are errors.
class JsonReader {
 public:
  explicit JsonReader(std::string_view text) : text_(text) {}

  Status Fail(const std::string& what) {
    return Status::InvalidArgument("ExperimentResult JSON: " + what +
                                   " near offset " + std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool AtEnd() {
    SkipWs();
    return pos_ >= text_.size();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Fail("expected string");
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') return Fail("escape sequences unsupported");
      out->push_back(text_[pos_++]);
    }
    if (pos_ >= text_.size()) return Fail("unterminated string");
    ++pos_;  // closing quote
    return Status::OK();
  }

  Status ParseDouble(double* out) {
    SkipWs();
    const char* begin = text_.data() + pos_;
    const char* end = text_.data() + text_.size();
    auto [ptr, ec] = std::from_chars(begin, end, *out);
    if (ec != std::errc()) return Fail("expected number");
    pos_ += static_cast<size_t>(ptr - begin);
    return Status::OK();
  }

  Status ParseInt(int* out) {
    double v = 0;
    CCR_RETURN_NOT_OK(ParseDouble(&v));
    // Range-check before the cast: double -> int of an out-of-range value
    // is UB, so the guard must run on the double.
    if (v < static_cast<double>(std::numeric_limits<int>::min()) ||
        v > static_cast<double>(std::numeric_limits<int>::max()) ||
        v != std::trunc(v)) {
      return Fail("expected integer");
    }
    *out = static_cast<int>(v);
    return Status::OK();
  }

  /// Parses `{ "k": ..., ... }`, calling `field(key)` for each value; the
  /// callback must consume the value.
  template <typename FieldFn>
  Status ParseObject(FieldFn field) {
    if (!Consume('{')) return Fail("expected '{'");
    if (Consume('}')) return Status::OK();
    while (true) {
      std::string key;
      CCR_RETURN_NOT_OK(ParseString(&key));
      if (!Consume(':')) return Fail("expected ':'");
      CCR_RETURN_NOT_OK(field(key));
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Fail("expected ',' or '}'");
    }
  }

  /// Parses `[ ... ]`, calling `element()` once per element.
  template <typename ElementFn>
  Status ParseArray(ElementFn element) {
    if (!Consume('[')) return Fail("expected '['");
    if (Consume(']')) return Status::OK();
    while (true) {
      CCR_RETURN_NOT_OK(element());
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Fail("expected ',' or ']'");
    }
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

constexpr char kSchemaName[] = "ccr.experiment_result";

}  // namespace

std::string ExperimentResultToJson(const ExperimentResult& r,
                                   const ResultJsonOptions& options) {
  JsonWriter w(options.indent);
  const bool t = options.include_timings;
  w.BeginObject();
  w.Key("schema");
  w.Value(kSchemaName);
  w.Key("schema_version");
  w.Value(kExperimentResultSchemaVersion);
  w.Key("entities");
  w.Value(r.entities);
  w.Key("invalid_entities");
  w.Value(r.invalid_entities);
  w.Key("max_rounds_used");
  w.Value(r.max_rounds_used);
  w.Key("accuracy_by_round");
  w.BeginArray();
  for (size_t k = 0; k < r.accuracy_by_round.size(); ++k) {
    w.ArraySep(k == 0);
    const AccuracyCounts& c = r.accuracy_by_round[k];
    w.BeginObject();
    w.Key("deduced");
    w.Value(c.deduced);
    w.Key("correct");
    w.Value(c.correct);
    w.Key("conflicts");
    w.Value(c.conflicts);
    w.EndObject();
  }
  w.EndArray();
  w.Key("pct_true_by_round");
  w.BeginArray();
  for (size_t k = 0; k < r.pct_true_by_round.size(); ++k) {
    w.ArraySep(k == 0);
    w.Value(r.pct_true_by_round[k]);
  }
  w.EndArray();
  w.Key("timings_ms");
  w.BeginObject();
  w.Key("encode");
  w.Value(t ? r.encode_ms : 0.0);
  w.Key("validity");
  w.Value(t ? r.validity_ms : 0.0);
  w.Key("deduce");
  w.Value(t ? r.deduce_ms : 0.0);
  w.Key("suggest");
  w.Value(t ? r.suggest_ms : 0.0);
  w.EndObject();
  w.EndObject();
  std::string out = std::move(w).Take();
  out.push_back('\n');
  return out;
}

Result<ExperimentResult> ExperimentResultFromJson(std::string_view json) {
  JsonReader rd(json);
  ExperimentResult out;
  std::string schema;
  int version = -1;

  // Duplicate keys at any level are rejected uniformly: a last-one-wins
  // scalar is as much silent corruption as a doubled round array.
  std::set<std::string> seen;
  std::set<std::string> seen_timing;
  Status st = rd.ParseObject([&](const std::string& key) -> Status {
    if (!seen.insert(key).second) {
      return rd.Fail("duplicate field '" + key + "'");
    }
    if (key == "schema") return rd.ParseString(&schema);
    if (key == "schema_version") return rd.ParseInt(&version);
    if (key == "entities") return rd.ParseInt(&out.entities);
    if (key == "invalid_entities") return rd.ParseInt(&out.invalid_entities);
    if (key == "max_rounds_used") return rd.ParseInt(&out.max_rounds_used);
    if (key == "accuracy_by_round") {
      return rd.ParseArray([&]() -> Status {
        AccuracyCounts c;
        std::set<std::string> seen_count;
        CCR_RETURN_NOT_OK(rd.ParseObject([&](const std::string& f) -> Status {
          if (!seen_count.insert(f).second) {
            return rd.Fail("duplicate accuracy field '" + f + "'");
          }
          if (f == "deduced") return rd.ParseInt(&c.deduced);
          if (f == "correct") return rd.ParseInt(&c.correct);
          if (f == "conflicts") return rd.ParseInt(&c.conflicts);
          return rd.Fail("unknown accuracy field '" + f + "'");
        }));
        out.accuracy_by_round.push_back(c);
        return Status::OK();
      });
    }
    if (key == "pct_true_by_round") {
      return rd.ParseArray([&]() -> Status {
        double v = 0;
        CCR_RETURN_NOT_OK(rd.ParseDouble(&v));
        out.pct_true_by_round.push_back(v);
        return Status::OK();
      });
    }
    if (key == "timings_ms") {
      return rd.ParseObject([&](const std::string& f) -> Status {
        if (!seen_timing.insert(f).second) {
          return rd.Fail("duplicate timing field '" + f + "'");
        }
        if (f == "encode") return rd.ParseDouble(&out.encode_ms);
        if (f == "validity") return rd.ParseDouble(&out.validity_ms);
        if (f == "deduce") return rd.ParseDouble(&out.deduce_ms);
        if (f == "suggest") return rd.ParseDouble(&out.suggest_ms);
        return rd.Fail("unknown timing field '" + f + "'");
      });
    }
    return rd.Fail("unknown field '" + key + "'");
  });
  CCR_RETURN_NOT_OK(st);
  if (!rd.AtEnd()) return rd.Fail("trailing content");
  // Strictness cuts both ways: a missing field is as much schema drift as
  // an unknown one (a trimmed file would otherwise pool zeros silently).
  for (const char* required :
       {"schema", "schema_version", "entities", "invalid_entities",
        "max_rounds_used", "accuracy_by_round", "pct_true_by_round",
        "timings_ms"}) {
    if (seen.count(required) == 0) {
      return Status::InvalidArgument(
          std::string("ExperimentResult JSON: missing field '") + required +
          "'");
    }
  }
  if (schema != kSchemaName) {
    return Status::InvalidArgument("ExperimentResult JSON: schema is '" +
                                   schema + "', want '" + kSchemaName + "'");
  }
  if (version != kExperimentResultSchemaVersion) {
    return Status::InvalidArgument(
        "ExperimentResult JSON: schema_version " + std::to_string(version) +
        " unsupported (have " +
        std::to_string(kExperimentResultSchemaVersion) + ")");
  }
  return out;
}

Result<ExperimentResult> MergeExperimentResults(
    const std::vector<ExperimentResult>& parts) {
  if (parts.empty()) {
    return Status::InvalidArgument("MergeExperimentResults: no inputs");
  }
  size_t n_rounds = 0;
  for (const ExperimentResult& p : parts) {
    n_rounds = std::max(n_rounds, p.accuracy_by_round.size());
  }
  ExperimentResult out;
  out.accuracy_by_round.assign(n_rounds, AccuracyCounts{});
  for (const ExperimentResult& p : parts) {
    out.entities += p.entities;
    out.invalid_entities += p.invalid_entities;
    out.max_rounds_used = std::max(out.max_rounds_used, p.max_rounds_used);
    out.encode_ms += p.encode_ms;
    out.validity_ms += p.validity_ms;
    out.deduce_ms += p.deduce_ms;
    out.suggest_ms += p.suggest_ms;
    if (p.accuracy_by_round.empty()) continue;
    const size_t last = p.accuracy_by_round.size() - 1;
    for (size_t k = 0; k < n_rounds; ++k) {
      // Round-length alignment: past a part's last round its final state
      // carries forward, exactly as RunExperiment carries a finished
      // entity's state through the remaining rounds.
      out.accuracy_by_round[k].Add(p.accuracy_by_round[std::min(k, last)]);
    }
  }
  // Derived ratios come from the pooled counts — the single definition
  // RunExperiment also uses — never from averaging the parts' ratios.
  RecomputePctTrueByRound(&out);
  return out;
}

}  // namespace ccr
