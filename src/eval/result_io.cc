#include "src/eval/result_io.h"

#include <algorithm>
#include <set>

#include "src/common/json.h"

namespace ccr {

namespace {

// The writer/reader machinery lives in src/common/json.h (shared with the
// session-snapshot and service-reply formats); this file only states the
// ExperimentResult schema. The emitted bytes are identical to what the
// pre-extraction local writer produced.
using JsonWriter = json::Writer;

constexpr char kSchemaName[] = "ccr.experiment_result";

}  // namespace

std::string ExperimentResultToJson(const ExperimentResult& r,
                                   const ResultJsonOptions& options) {
  JsonWriter w(options.indent);
  const bool t = options.include_timings;
  w.BeginObject();
  w.Key("schema");
  w.Value(kSchemaName);
  w.Key("schema_version");
  w.Value(kExperimentResultSchemaVersion);
  w.Key("entities");
  w.Value(r.entities);
  w.Key("invalid_entities");
  w.Value(r.invalid_entities);
  w.Key("max_rounds_used");
  w.Value(r.max_rounds_used);
  w.Key("accuracy_by_round");
  w.BeginArray();
  for (size_t k = 0; k < r.accuracy_by_round.size(); ++k) {
    w.ArraySep(k == 0);
    const AccuracyCounts& c = r.accuracy_by_round[k];
    w.BeginObject();
    w.Key("deduced");
    w.Value(c.deduced);
    w.Key("correct");
    w.Value(c.correct);
    w.Key("conflicts");
    w.Value(c.conflicts);
    w.EndObject();
  }
  w.EndArray();
  w.Key("pct_true_by_round");
  w.BeginArray();
  for (size_t k = 0; k < r.pct_true_by_round.size(); ++k) {
    w.ArraySep(k == 0);
    w.Value(r.pct_true_by_round[k]);
  }
  w.EndArray();
  w.Key("timings_ms");
  w.BeginObject();
  w.Key("encode");
  w.Value(t ? r.encode_ms : 0.0);
  w.Key("validity");
  w.Value(t ? r.validity_ms : 0.0);
  w.Key("deduce");
  w.Value(t ? r.deduce_ms : 0.0);
  w.Key("suggest");
  w.Value(t ? r.suggest_ms : 0.0);
  w.EndObject();
  w.EndObject();
  std::string out = std::move(w).Take();
  out.push_back('\n');
  return out;
}

Result<ExperimentResult> ExperimentResultFromJson(std::string_view text) {
  json::Reader rd(text, "ExperimentResult JSON");
  ExperimentResult out;
  std::string schema;
  int version = -1;

  // Duplicate keys at any level are rejected uniformly: a last-one-wins
  // scalar is as much silent corruption as a doubled round array.
  std::set<std::string> seen;
  std::set<std::string> seen_timing;
  Status st = rd.ParseObject([&](const std::string& key) -> Status {
    if (!seen.insert(key).second) {
      return rd.Fail("duplicate field '" + key + "'");
    }
    if (key == "schema") return rd.ParseString(&schema);
    if (key == "schema_version") return rd.ParseInt(&version);
    if (key == "entities") return rd.ParseInt(&out.entities);
    if (key == "invalid_entities") return rd.ParseInt(&out.invalid_entities);
    if (key == "max_rounds_used") return rd.ParseInt(&out.max_rounds_used);
    if (key == "accuracy_by_round") {
      return rd.ParseArray([&]() -> Status {
        AccuracyCounts c;
        std::set<std::string> seen_count;
        CCR_RETURN_NOT_OK(rd.ParseObject([&](const std::string& f) -> Status {
          if (!seen_count.insert(f).second) {
            return rd.Fail("duplicate accuracy field '" + f + "'");
          }
          if (f == "deduced") return rd.ParseInt(&c.deduced);
          if (f == "correct") return rd.ParseInt(&c.correct);
          if (f == "conflicts") return rd.ParseInt(&c.conflicts);
          return rd.Fail("unknown accuracy field '" + f + "'");
        }));
        out.accuracy_by_round.push_back(c);
        return Status::OK();
      });
    }
    if (key == "pct_true_by_round") {
      return rd.ParseArray([&]() -> Status {
        double v = 0;
        CCR_RETURN_NOT_OK(rd.ParseDouble(&v));
        out.pct_true_by_round.push_back(v);
        return Status::OK();
      });
    }
    if (key == "timings_ms") {
      return rd.ParseObject([&](const std::string& f) -> Status {
        if (!seen_timing.insert(f).second) {
          return rd.Fail("duplicate timing field '" + f + "'");
        }
        if (f == "encode") return rd.ParseDouble(&out.encode_ms);
        if (f == "validity") return rd.ParseDouble(&out.validity_ms);
        if (f == "deduce") return rd.ParseDouble(&out.deduce_ms);
        if (f == "suggest") return rd.ParseDouble(&out.suggest_ms);
        return rd.Fail("unknown timing field '" + f + "'");
      });
    }
    return rd.Fail("unknown field '" + key + "'");
  });
  CCR_RETURN_NOT_OK(st);
  if (!rd.AtEnd()) return rd.Fail("trailing content");
  // Strictness cuts both ways: a missing field is as much schema drift as
  // an unknown one (a trimmed file would otherwise pool zeros silently).
  for (const char* required :
       {"schema", "schema_version", "entities", "invalid_entities",
        "max_rounds_used", "accuracy_by_round", "pct_true_by_round",
        "timings_ms"}) {
    if (seen.count(required) == 0) {
      return Status::InvalidArgument(
          std::string("ExperimentResult JSON: missing field '") + required +
          "'");
    }
  }
  if (schema != kSchemaName) {
    return Status::InvalidArgument("ExperimentResult JSON: schema is '" +
                                   schema + "', want '" + kSchemaName + "'");
  }
  if (version != kExperimentResultSchemaVersion) {
    return Status::InvalidArgument(
        "ExperimentResult JSON: schema_version " + std::to_string(version) +
        " unsupported (have " +
        std::to_string(kExperimentResultSchemaVersion) + ")");
  }
  return out;
}

Result<ExperimentResult> MergeExperimentResults(
    const std::vector<ExperimentResult>& parts) {
  if (parts.empty()) {
    return Status::InvalidArgument("MergeExperimentResults: no inputs");
  }
  size_t n_rounds = 0;
  for (const ExperimentResult& p : parts) {
    n_rounds = std::max(n_rounds, p.accuracy_by_round.size());
  }
  ExperimentResult out;
  out.accuracy_by_round.assign(n_rounds, AccuracyCounts{});
  for (const ExperimentResult& p : parts) {
    out.entities += p.entities;
    out.invalid_entities += p.invalid_entities;
    out.max_rounds_used = std::max(out.max_rounds_used, p.max_rounds_used);
    out.encode_ms += p.encode_ms;
    out.validity_ms += p.validity_ms;
    out.deduce_ms += p.deduce_ms;
    out.suggest_ms += p.suggest_ms;
    if (p.accuracy_by_round.empty()) continue;
    const size_t last = p.accuracy_by_round.size() - 1;
    for (size_t k = 0; k < n_rounds; ++k) {
      // Round-length alignment: past a part's last round its final state
      // carries forward, exactly as RunExperiment carries a finished
      // entity's state through the remaining rounds.
      out.accuracy_by_round[k].Add(p.accuracy_by_round[std::min(k, last)]);
    }
  }
  // Derived ratios come from the pooled counts — the single definition
  // RunExperiment also uses — never from averaging the parts' ratios.
  RecomputePctTrueByRound(&out);
  return out;
}

}  // namespace ccr
