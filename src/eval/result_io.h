// Serialization and exact merging of ExperimentResults — the scale-out
// layer of the evaluation pipeline.
//
// The Fig. 8 evaluation resolves every entity independently, so a corpus
// shards trivially across processes/machines (ShardIndices in
// eval/experiment.h). What makes the fan-out *exact* is that
// AccuracyCounts pool losslessly (integer sums): a shard's result
// serializes to JSON, ships as a file, and MergeExperimentResults
// reproduces the unsharded ExperimentResult field-for-field — derived
// ratios (pct_true_by_round) are recomputed from the pooled counts, never
// averaged across shards. tools/ccr_experiment is the CLI over this
// module; scripts/shard.sh asserts the byte-identity end to end.
//
// The JSON schema is versioned and emitted with a stable field order and
// round-trippable number formatting ("%.17g"), so equal results serialize
// to equal bytes — byte comparison is the cross-process regression check.

#ifndef CCR_EVAL_RESULT_IO_H_
#define CCR_EVAL_RESULT_IO_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/eval/experiment.h"

namespace ccr {

/// Serialization knobs.
struct ResultJsonOptions {
  /// Include the pooled per-phase wall times. Off for byte-stable output:
  /// timings are the one machine-dependent field, so shard/merge byte
  /// comparisons exclude them (they serialize as zeros).
  bool include_timings = true;
  /// Indentation unit (spaces); 0 emits a single line.
  int indent = 2;
};

/// Current schema_version written by ExperimentResultToJson.
inline constexpr int kExperimentResultSchemaVersion = 1;

/// Renders `r` as versioned JSON with stable field order.
std::string ExperimentResultToJson(const ExperimentResult& r,
                                   const ResultJsonOptions& options = {});

/// Parses JSON produced by ExperimentResultToJson (any field order is
/// accepted; unknown fields are rejected so schema drift is loud).
Result<ExperimentResult> ExperimentResultFromJson(std::string_view json);

/// Pools shard results into the ExperimentResult the unsharded run over
/// the union of their entities would produce (timings are summed, so only
/// they reflect the fan-out). Round-length alignment: when parts disagree
/// on accuracy_by_round length — shards run with different max_rounds — a
/// shorter part's final counts carry forward, mirroring the per-entity
/// carry-forward inside RunExperiment. pct_true_by_round is recomputed
/// from the pooled counts. The merge is associative and order-independent.
/// Fails on an empty input.
Result<ExperimentResult> MergeExperimentResults(
    const std::vector<ExperimentResult>& parts);

}  // namespace ccr

#endif  // CCR_EVAL_RESULT_IO_H_
