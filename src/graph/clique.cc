#include "src/graph/clique.h"

#include <algorithm>

namespace ccr::graph {

std::vector<int> GreedyClique(const Graph& g) {
  const int n = g.num_vertices();
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return g.Degree(a) > g.Degree(b);
  });
  std::vector<int> clique;
  for (int v : order) {
    bool compatible = true;
    for (int u : clique) {
      if (!g.HasEdge(u, v)) {
        compatible = false;
        break;
      }
    }
    if (compatible) clique.push_back(v);
  }
  std::sort(clique.begin(), clique.end());
  return clique;
}

namespace {

struct BnBState {
  const Graph* g;
  std::vector<int> best;
  std::vector<int> current;
  int64_t nodes_left;
};

// Greedy coloring of `candidates`; returns them reordered with color
// numbers, colors ascending. The color number of a vertex bounds the size
// of any clique among it and its predecessors.
void ColorSort(const Graph& g, const std::vector<int>& candidates,
               std::vector<int>* ordered, std::vector<int>* colors) {
  ordered->clear();
  colors->clear();
  std::vector<std::vector<int>> classes;
  for (int v : candidates) {
    bool placed = false;
    for (auto& cls : classes) {
      bool independent = true;
      for (int u : cls) {
        if (g.HasEdge(u, v)) {
          independent = false;
          break;
        }
      }
      if (independent) {
        cls.push_back(v);
        placed = true;
        break;
      }
    }
    if (!placed) classes.push_back({v});
  }
  for (size_t c = 0; c < classes.size(); ++c) {
    for (int v : classes[c]) {
      ordered->push_back(v);
      colors->push_back(static_cast<int>(c) + 1);
    }
  }
}

void Expand(BnBState* s, std::vector<int> candidates) {
  if (s->nodes_left-- <= 0) return;
  std::vector<int> ordered;
  std::vector<int> colors;
  ColorSort(*s->g, candidates, &ordered, &colors);
  for (int i = static_cast<int>(ordered.size()) - 1; i >= 0; --i) {
    const int bound =
        static_cast<int>(s->current.size()) + colors[i];
    if (bound <= static_cast<int>(s->best.size())) return;
    const int v = ordered[i];
    s->current.push_back(v);
    std::vector<int> next;
    for (int j = 0; j < i; ++j) {
      if (s->g->HasEdge(ordered[j], v)) next.push_back(ordered[j]);
    }
    if (next.empty()) {
      if (s->current.size() > s->best.size()) s->best = s->current;
    } else {
      Expand(s, std::move(next));
    }
    s->current.pop_back();
  }
}

}  // namespace

std::vector<int> MaxClique(const Graph& g, int64_t max_nodes) {
  BnBState s;
  s.g = &g;
  s.best = GreedyClique(g);  // warm start for pruning
  s.nodes_left = max_nodes;
  std::vector<int> all(g.num_vertices());
  for (int i = 0; i < g.num_vertices(); ++i) all[i] = i;
  // Order by degree descending helps the coloring bound.
  std::sort(all.begin(), all.end(), [&](int a, int b) {
    return g.Degree(a) > g.Degree(b);
  });
  Expand(&s, all);
  std::sort(s.best.begin(), s.best.end());
  return s.best;
}

}  // namespace ccr::graph
