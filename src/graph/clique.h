// Maximum clique solvers for the compatibility graph (§V-C).
//
// The paper plugs in an approximate MaxClique tool (Feige [16]); we provide
// (a) a fast greedy heuristic and (b) an exact branch-and-bound with a
// greedy-coloring upper bound (Tomita-style). Compatibility graphs have at
// most |R|·|It| vertices and in practice a few dozen, so the exact solver
// is the default; the ablation bench compares both.

#ifndef CCR_GRAPH_CLIQUE_H_
#define CCR_GRAPH_CLIQUE_H_

#include <vector>

#include "src/graph/graph.h"

namespace ccr::graph {

/// Greedy heuristic: repeatedly adds the highest-degree compatible vertex.
/// Linear-time and typically near-optimal on dense compatibility graphs.
std::vector<int> GreedyClique(const Graph& g);

/// Exact maximum clique via branch-and-bound with greedy coloring bound.
/// `max_nodes` caps the search-tree size; on hitting the cap the best
/// clique found so far is returned (still a valid clique).
std::vector<int> MaxClique(const Graph& g, int64_t max_nodes = 1 << 22);

}  // namespace ccr::graph

#endif  // CCR_GRAPH_CLIQUE_H_
