#include "src/graph/graph.h"

namespace ccr::graph {

Graph::Graph(int num_vertices) : n_(num_vertices) {
  CCR_CHECK(num_vertices >= 0);
  adj_.assign(static_cast<size_t>(n_) * n_, 0);
}

void Graph::AddEdge(int u, int v) {
  CCR_DCHECK(u >= 0 && v >= 0 && u < n_ && v < n_);
  if (u == v) return;
  if (adj_[u * n_ + v]) return;
  adj_[u * n_ + v] = 1;
  adj_[v * n_ + u] = 1;
  ++num_edges_;
}

int Graph::Degree(int v) const {
  int d = 0;
  for (int u = 0; u < n_; ++u) d += adj_[v * n_ + u];
  return d;
}

std::vector<int> Graph::Neighbors(int v) const {
  std::vector<int> out;
  for (int u = 0; u < n_; ++u) {
    if (adj_[v * n_ + u]) out.push_back(u);
  }
  return out;
}

bool Graph::IsClique(const std::vector<int>& vs) const {
  for (size_t i = 0; i < vs.size(); ++i) {
    for (size_t j = i + 1; j < vs.size(); ++j) {
      if (!HasEdge(vs[i], vs[j])) return false;
    }
  }
  return true;
}

std::string Graph::ToString() const {
  std::string out = "graph n=" + std::to_string(n_) + " m=" +
                    std::to_string(num_edges_) + "\n";
  for (int u = 0; u < n_; ++u) {
    for (int v = u + 1; v < n_; ++v) {
      if (HasEdge(u, v)) {
        out += "  " + std::to_string(u) + " -- " + std::to_string(v) + "\n";
      }
    }
  }
  return out;
}

}  // namespace ccr::graph
