// Undirected graphs for the compatibility graph of derivation rules
// (§V-C, Fig. 6).

#ifndef CCR_GRAPH_GRAPH_H_
#define CCR_GRAPH_GRAPH_H_

#include <string>
#include <vector>

#include "src/common/status.h"

namespace ccr::graph {

/// \brief Simple undirected graph over vertices {0, ..., n-1} with an
/// adjacency matrix (compatibility graphs are small and dense).
class Graph {
 public:
  explicit Graph(int num_vertices);

  int num_vertices() const { return n_; }
  int num_edges() const { return num_edges_; }

  /// Adds edge {u, v}; self-loops and duplicates are ignored.
  void AddEdge(int u, int v);

  bool HasEdge(int u, int v) const { return adj_[u * n_ + v]; }

  /// Degree of vertex v.
  int Degree(int v) const;

  /// Neighbors of v in increasing order.
  std::vector<int> Neighbors(int v) const;

  /// True iff every pair of vertices in `vs` is adjacent.
  bool IsClique(const std::vector<int>& vs) const;

  std::string ToString() const;

 private:
  int n_;
  int num_edges_ = 0;
  std::vector<char> adj_;  // row-major matrix
};

}  // namespace ccr::graph

#endif  // CCR_GRAPH_GRAPH_H_
