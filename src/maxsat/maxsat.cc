#include "src/maxsat/maxsat.h"

#include "src/common/status.h"

namespace ccr::maxsat {

using sat::Cnf;
using sat::Lit;
using sat::SolveResult;
using sat::Solver;
using sat::Var;

void AddAtMostK(Cnf* cnf, const std::vector<Lit>& xs, int k) {
  const int n = static_cast<int>(xs.size());
  if (k >= n) return;
  if (k == 0) {
    for (Lit x : xs) cnf->AddUnit(~x);
    return;
  }
  // Sinz sequential counter: r[i][j] <=> at least j+1 of x_0..x_i true.
  std::vector<std::vector<Var>> r(n);
  for (int i = 0; i < n; ++i) {
    r[i].resize(k);
    for (int j = 0; j < k; ++j) r[i][j] = cnf->NewVar();
  }
  // x_0 -> r[0][0]
  cnf->AddBinary(~xs[0], Lit::Pos(r[0][0]));
  for (int j = 1; j < k; ++j) cnf->AddUnit(Lit::Neg(r[0][j]));
  for (int i = 1; i < n; ++i) {
    // x_i -> r[i][0]
    cnf->AddBinary(~xs[i], Lit::Pos(r[i][0]));
    // r[i-1][j] -> r[i][j]
    for (int j = 0; j < k; ++j) {
      cnf->AddBinary(Lit::Neg(r[i - 1][j]), Lit::Pos(r[i][j]));
    }
    // x_i & r[i-1][j-1] -> r[i][j]
    for (int j = 1; j < k; ++j) {
      cnf->AddTernary(~xs[i], Lit::Neg(r[i - 1][j - 1]),
                      Lit::Pos(r[i][j]));
    }
    // x_i & r[i-1][k-1] -> false  (would exceed k)
    cnf->AddBinary(~xs[i], Lit::Neg(r[i - 1][k - 1]));
  }
}

MaxSatResult SolveMaxSat(const Cnf& hard,
                         const std::vector<std::vector<Lit>>& soft,
                         const sat::SolverOptions& options) {
  MaxSatResult result;
  const int n_soft = static_cast<int>(soft.size());

  // Check the hard clauses alone first.
  {
    Solver probe(options);
    probe.AddCnf(hard);
    if (probe.Solve() != SolveResult::kSat) return result;
    result.hard_satisfiable = true;
    if (n_soft == 0) {
      result.model.resize(hard.num_vars());
      for (Var v = 0; v < hard.num_vars(); ++v) {
        result.model[v] = probe.ModelValue(v);
      }
      return result;
    }
  }

  for (int k = 0; k <= n_soft; ++k) {
    // Fresh formula per k: hard + relaxed softs + at-most-k dropped.
    Cnf cnf = hard;
    std::vector<Var> selectors(n_soft);
    std::vector<Lit> dropped;
    dropped.reserve(n_soft);
    for (int i = 0; i < n_soft; ++i) {
      selectors[i] = cnf.NewVar();
      std::vector<Lit> clause = soft[i];
      clause.push_back(Lit::Neg(selectors[i]));
      cnf.AddClause(std::span<const Lit>(clause.data(), clause.size()));
      dropped.push_back(Lit::Neg(selectors[i]));
    }
    AddAtMostK(&cnf, dropped, k);
    // Prefer selectors on: a dropped soft may only be dropped when needed.
    Solver solver(options);
    solver.AddCnf(cnf);
    if (solver.Solve() != SolveResult::kSat) continue;

    result.soft_satisfied.assign(n_soft, false);
    result.num_satisfied = 0;
    result.model.resize(hard.num_vars());
    for (Var v = 0; v < hard.num_vars(); ++v) {
      result.model[v] = solver.ModelValue(v);
    }
    for (int i = 0; i < n_soft; ++i) {
      // A soft counts as satisfied if its literals hold in the model
      // (selector choice aside, this is what callers care about).
      bool sat_i = false;
      for (Lit l : soft[i]) {
        const bool val = result.model[l.var()] != l.negated();
        if (val) {
          sat_i = true;
          break;
        }
      }
      if (sat_i) {
        result.soft_satisfied[i] = true;
        ++result.num_satisfied;
      }
    }
    return result;
  }
  // Unreachable: k == n_soft always admits a model when hard is SAT.
  CCR_CHECK(false);
  return result;
}

}  // namespace ccr::maxsat
