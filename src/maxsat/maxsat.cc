#include "src/maxsat/maxsat.h"

#include <algorithm>

#include "src/common/status.h"

namespace ccr::maxsat {

using sat::Cnf;
using sat::Lit;
using sat::ScopedVars;
using sat::SolveResult;
using sat::Solver;
using sat::Var;

void AddAtMostK(Cnf* cnf, const std::vector<Lit>& xs, int k) {
  const int n = static_cast<int>(xs.size());
  if (k >= n) return;
  if (k == 0) {
    for (Lit x : xs) cnf->AddUnit(~x);
    return;
  }
  // Sinz sequential counter: r[i][j] <=> at least j+1 of x_0..x_i true.
  std::vector<std::vector<Var>> r(n);
  for (int i = 0; i < n; ++i) {
    r[i].resize(k);
    for (int j = 0; j < k; ++j) r[i][j] = cnf->NewVar();
  }
  // x_0 -> r[0][0]
  cnf->AddBinary(~xs[0], Lit::Pos(r[0][0]));
  for (int j = 1; j < k; ++j) cnf->AddUnit(Lit::Neg(r[0][j]));
  for (int i = 1; i < n; ++i) {
    // x_i -> r[i][0]
    cnf->AddBinary(~xs[i], Lit::Pos(r[i][0]));
    // r[i-1][j] -> r[i][j]
    for (int j = 0; j < k; ++j) {
      cnf->AddBinary(Lit::Neg(r[i - 1][j]), Lit::Pos(r[i][j]));
    }
    // x_i & r[i-1][j-1] -> r[i][j]
    for (int j = 1; j < k; ++j) {
      cnf->AddTernary(~xs[i], Lit::Neg(r[i - 1][j - 1]),
                      Lit::Pos(r[i][j]));
    }
    // x_i & r[i-1][k-1] -> false  (would exceed k)
    cnf->AddBinary(~xs[i], Lit::Neg(r[i - 1][k - 1]));
  }
}

MaxSatResult IncrementalMaxSat::Solve(
    const std::vector<std::vector<Lit>>& soft,
    std::span<const Lit> extra_assumptions) {
  MaxSatResult result;
  const int n = static_cast<int>(soft.size());
  const int num_orig = solver_->num_vars();

  std::vector<Lit> base(extra_assumptions.begin(), extra_assumptions.end());
  // SLS upper-bound probe (use_sls_probing): one budgeted local-search
  // pass over hard+soft under the same assumptions, before anything is
  // encoded. A feasible pass missing u softs bounds the optimum from
  // above — the exact search below then verifies downward from u instead
  // of climbing from 0 — and its assignment is a genuine model that
  // pre-warms the solver's witness ring, usually turning the hard check
  // into a cache hit. Verdicts cannot change: every bound k is still
  // decided by the CDCL solver, and a misestimated u only changes which
  // k values get queried.
  sat::LocalSearchResult probe;
  if (solver_->options().use_sls_probing) {
    probe = solver_->SeedFromLocalSearch(
        std::span<const Lit>(base.data(), base.size()), soft);
    if (n > 0 && probe.feasible && probe.soft_unsat == 0 &&
        probe.softs_exact) {
      // The probe's assignment is a genuine model (every live clause
      // verified, eliminated variables reconstructed — no placeholder
      // scores) satisfying every soft: optimum 0 is witnessed exactly.
      // An exact witness cannot be improved or contradicted, so the
      // relaxation, counter, and every CDCL call are skipped outright.
      // The verdict is what the exact search would compute; only the
      // (non-canonical either way) model differs.
      solver_->RecordSlsProbe(true);
      result.hard_satisfiable = true;
      result.num_satisfied = n;
      result.soft_satisfied.assign(static_cast<size_t>(n), true);
      result.model.resize(static_cast<size_t>(num_orig));
      for (Var v = 0; v < num_orig; ++v) result.model[v] = probe.model[v] != 0;
      return result;
    }
  }
  if (solver_->SolveWithAssumptions(base) != SolveResult::kSat) {
    return result;
  }
  result.hard_satisfiable = true;
  if (n == 0) {
    result.model.resize(num_orig);
    for (Var v = 0; v < num_orig; ++v) result.model[v] = solver_->ModelValue(v);
    return result;
  }

  // Relaxation: selector si with (Ci ∨ ¬si); dropped literal di = ¬si.
  ScopedVars scope(solver_);
  base.push_back(scope.activation());
  std::vector<Var> sel(n);
  std::vector<Lit> dropped;
  dropped.reserve(n);
  for (int i = 0; i < n; ++i) {
    sel[i] = scope.NewVar();
    std::vector<Lit> clause = soft[i];
    clause.push_back(Lit::Neg(sel[i]));
    scope.AddClause(std::move(clause));
    dropped.push_back(Lit::Neg(sel[i]));
  }

  // Triangular Sinz counter over the dropped literals, encoded once:
  // count[i][j] <= "at least j+1 of d_0..d_i true", clauses only in the
  // counting direction, which is all an "at most k" bound needs. Row i
  // has width i+1 — "at least j+1 of the first i+1" is impossible past
  // that, so the square encoding's dead variables are never allocated.
  // Bound k is then a single assumption ¬count[n-1][k] — the linear
  // search and the canonicalization below reuse the same encoding for
  // every k.
  std::vector<std::vector<Var>> count(n);
  for (int i = 0; i < n; ++i) {
    count[i].resize(i + 1);
    for (int j = 0; j <= i; ++j) count[i][j] = scope.NewVar();
  }
  scope.AddClause({~dropped[0], Lit::Pos(count[0][0])});
  for (int i = 1; i < n; ++i) {
    scope.AddClause({~dropped[i], Lit::Pos(count[i][0])});
    for (int j = 0; j < i; ++j) {
      scope.AddClause({Lit::Neg(count[i - 1][j]), Lit::Pos(count[i][j])});
    }
    for (int j = 1; j <= i; ++j) {
      scope.AddClause({~dropped[i], Lit::Neg(count[i - 1][j - 1]),
                       Lit::Pos(count[i][j])});
    }
  }

  // Bound search. Without a probe: linear climb — the first satisfiable
  // k is the exact optimum (k = n never needs a bound; all softs dropped
  // is satisfiable by the hard check above). With a feasible probe of u
  // unsatisfied softs: verify SAT at u, then walk downward until UNSAT —
  // identical optimum, and when the probe is exact the whole search is
  // one SAT (at u) plus one UNSAT (at u-1) solve.
  int best_k = n;
  std::vector<Lit> assume = base;
  const auto sat_at = [&](int k) {
    assume.push_back(Lit::Neg(count[n - 1][k]));
    const SolveResult r = solver_->SolveWithAssumptions(assume);
    assume.pop_back();
    return r == SolveResult::kSat;
  };
  // A probe whose bound is u == n is trivially true and carries no
  // information — walking down from n would cost up to n solves where
  // the climb finds a low optimum in one. Treat it as no probe.
  const bool probed =
      probe.ran && probe.feasible && probe.soft_unsat < n;
  const int u = probed ? std::min(probe.soft_unsat, n) : n;
  if (!probed) {
    for (int k = 0; k < n; ++k) {
      if (sat_at(k)) {
        best_k = k;
        break;
      }
    }
  } else if (sat_at(u)) {
    best_k = u;
    while (best_k > 0 && sat_at(best_k - 1)) --best_k;
  } else {
    // The probe's bound was not genuinely achievable (possible only when
    // a soft touches an eliminated variable, whose SLS value is a
    // placeholder); every k <= u is UNSAT a fortiori, so resume the
    // climb above u.
    for (int k = u + 1; k < n; ++k) {
      if (sat_at(k)) {
        best_k = k;
        break;
      }
    }
  }
  if (solver_->options().use_sls_probing) {
    solver_->RecordSlsProbe(probed && best_k == u);
  }

  // Canonical extraction: fix selectors in soft-index order, keeping each
  // iff still satisfiable under the optimum bound. Under bound best_k any
  // model satisfies exactly the softs whose selectors are on (on ⊆
  // satisfied, |on| >= n-k, |satisfied| <= n-k), so this pins down the
  // lexicographically greatest optimal kept set — a semantic property,
  // independent of solver history.
  if (best_k < n) assume.push_back(Lit::Neg(count[n - 1][best_k]));
  for (int i = 0; i < n; ++i) {
    assume.push_back(Lit::Pos(sel[i]));
    if (solver_->SolveWithAssumptions(assume) != SolveResult::kSat) {
      assume.back() = Lit::Neg(sel[i]);
    }
  }
  const SolveResult final_r = solver_->SolveWithAssumptions(assume);
  CCR_CHECK(final_r == SolveResult::kSat);

  result.model.resize(num_orig);
  for (Var v = 0; v < num_orig; ++v) result.model[v] = solver_->ModelValue(v);
  result.soft_satisfied.assign(n, false);
  result.num_satisfied = 0;
  for (int i = 0; i < n; ++i) {
    // A soft counts as satisfied if its literals hold in the model
    // (selector choice aside, this is what callers care about).
    for (Lit l : soft[i]) {
      CCR_DCHECK(l.var() < num_orig);
      if (result.model[l.var()] != l.negated()) {
        result.soft_satisfied[i] = true;
        ++result.num_satisfied;
        break;
      }
    }
  }
  return result;
}

MaxSatResult SolveMaxSat(const Cnf& hard,
                         const std::vector<std::vector<Lit>>& soft,
                         const sat::SolverOptions& options) {
  Solver solver(options);
  solver.AddCnf(hard);
  IncrementalMaxSat inc(&solver);
  return inc.Solve(soft);
}

}  // namespace ccr::maxsat
