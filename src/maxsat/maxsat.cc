#include "src/maxsat/maxsat.h"

#include "src/common/status.h"

namespace ccr::maxsat {

using sat::Cnf;
using sat::Lit;
using sat::ScopedVars;
using sat::SolveResult;
using sat::Solver;
using sat::Var;

void AddAtMostK(Cnf* cnf, const std::vector<Lit>& xs, int k) {
  const int n = static_cast<int>(xs.size());
  if (k >= n) return;
  if (k == 0) {
    for (Lit x : xs) cnf->AddUnit(~x);
    return;
  }
  // Sinz sequential counter: r[i][j] <=> at least j+1 of x_0..x_i true.
  std::vector<std::vector<Var>> r(n);
  for (int i = 0; i < n; ++i) {
    r[i].resize(k);
    for (int j = 0; j < k; ++j) r[i][j] = cnf->NewVar();
  }
  // x_0 -> r[0][0]
  cnf->AddBinary(~xs[0], Lit::Pos(r[0][0]));
  for (int j = 1; j < k; ++j) cnf->AddUnit(Lit::Neg(r[0][j]));
  for (int i = 1; i < n; ++i) {
    // x_i -> r[i][0]
    cnf->AddBinary(~xs[i], Lit::Pos(r[i][0]));
    // r[i-1][j] -> r[i][j]
    for (int j = 0; j < k; ++j) {
      cnf->AddBinary(Lit::Neg(r[i - 1][j]), Lit::Pos(r[i][j]));
    }
    // x_i & r[i-1][j-1] -> r[i][j]
    for (int j = 1; j < k; ++j) {
      cnf->AddTernary(~xs[i], Lit::Neg(r[i - 1][j - 1]),
                      Lit::Pos(r[i][j]));
    }
    // x_i & r[i-1][k-1] -> false  (would exceed k)
    cnf->AddBinary(~xs[i], Lit::Neg(r[i - 1][k - 1]));
  }
}

MaxSatResult IncrementalMaxSat::Solve(
    const std::vector<std::vector<Lit>>& soft,
    std::span<const Lit> extra_assumptions) {
  MaxSatResult result;
  const int n = static_cast<int>(soft.size());
  const int num_orig = solver_->num_vars();

  std::vector<Lit> base(extra_assumptions.begin(), extra_assumptions.end());
  if (solver_->SolveWithAssumptions(base) != SolveResult::kSat) {
    return result;
  }
  result.hard_satisfiable = true;
  if (n == 0) {
    result.model.resize(num_orig);
    for (Var v = 0; v < num_orig; ++v) result.model[v] = solver_->ModelValue(v);
    return result;
  }

  // Relaxation: selector si with (Ci ∨ ¬si); dropped literal di = ¬si.
  ScopedVars scope(solver_);
  base.push_back(scope.activation());
  std::vector<Var> sel(n);
  std::vector<Lit> dropped;
  dropped.reserve(n);
  for (int i = 0; i < n; ++i) {
    sel[i] = scope.NewVar();
    std::vector<Lit> clause = soft[i];
    clause.push_back(Lit::Neg(sel[i]));
    scope.AddClause(std::move(clause));
    dropped.push_back(Lit::Neg(sel[i]));
  }

  // Triangular Sinz counter over the dropped literals, encoded once:
  // count[i][j] <= "at least j+1 of d_0..d_i true", clauses only in the
  // counting direction, which is all an "at most k" bound needs. Row i
  // has width i+1 — "at least j+1 of the first i+1" is impossible past
  // that, so the square encoding's dead variables are never allocated.
  // Bound k is then a single assumption ¬count[n-1][k] — the linear
  // search and the canonicalization below reuse the same encoding for
  // every k.
  std::vector<std::vector<Var>> count(n);
  for (int i = 0; i < n; ++i) {
    count[i].resize(i + 1);
    for (int j = 0; j <= i; ++j) count[i][j] = scope.NewVar();
  }
  scope.AddClause({~dropped[0], Lit::Pos(count[0][0])});
  for (int i = 1; i < n; ++i) {
    scope.AddClause({~dropped[i], Lit::Pos(count[i][0])});
    for (int j = 0; j < i; ++j) {
      scope.AddClause({Lit::Neg(count[i - 1][j]), Lit::Pos(count[i][j])});
    }
    for (int j = 1; j <= i; ++j) {
      scope.AddClause({~dropped[i], Lit::Neg(count[i - 1][j - 1]),
                       Lit::Pos(count[i][j])});
    }
  }

  // Linear search: the first satisfiable k is the exact optimum (k = n
  // never needs a bound — all softs dropped is satisfiable by the hard
  // check above).
  int best_k = n;
  std::vector<Lit> assume = base;
  for (int k = 0; k < n; ++k) {
    assume.push_back(Lit::Neg(count[n - 1][k]));
    const SolveResult r = solver_->SolveWithAssumptions(assume);
    assume.pop_back();
    if (r == SolveResult::kSat) {
      best_k = k;
      break;
    }
  }

  // Canonical extraction: fix selectors in soft-index order, keeping each
  // iff still satisfiable under the optimum bound. Under bound best_k any
  // model satisfies exactly the softs whose selectors are on (on ⊆
  // satisfied, |on| >= n-k, |satisfied| <= n-k), so this pins down the
  // lexicographically greatest optimal kept set — a semantic property,
  // independent of solver history.
  if (best_k < n) assume.push_back(Lit::Neg(count[n - 1][best_k]));
  for (int i = 0; i < n; ++i) {
    assume.push_back(Lit::Pos(sel[i]));
    if (solver_->SolveWithAssumptions(assume) != SolveResult::kSat) {
      assume.back() = Lit::Neg(sel[i]);
    }
  }
  const SolveResult final_r = solver_->SolveWithAssumptions(assume);
  CCR_CHECK(final_r == SolveResult::kSat);

  result.model.resize(num_orig);
  for (Var v = 0; v < num_orig; ++v) result.model[v] = solver_->ModelValue(v);
  result.soft_satisfied.assign(n, false);
  result.num_satisfied = 0;
  for (int i = 0; i < n; ++i) {
    // A soft counts as satisfied if its literals hold in the model
    // (selector choice aside, this is what callers care about).
    for (Lit l : soft[i]) {
      CCR_DCHECK(l.var() < num_orig);
      if (result.model[l.var()] != l.negated()) {
        result.soft_satisfied[i] = true;
        ++result.num_satisfied;
        break;
      }
    }
  }
  return result;
}

MaxSatResult SolveMaxSat(const Cnf& hard,
                         const std::vector<std::vector<Lit>>& soft,
                         const sat::SolverOptions& options) {
  Solver solver(options);
  solver.AddCnf(hard);
  IncrementalMaxSat inc(&solver);
  return inc.Solve(soft);
}

}  // namespace ccr::maxsat
