// Partial MaxSAT: hard clauses that must hold plus unit-weight soft clauses
// to satisfy as many of as possible.
//
// This is the repository's stand-in for the Walksat-based MaxSat solver the
// paper uses in GetSug (§V-C) to find the maximum subset of a clique of
// derivation rules that has no conflicts with the specification. The exact
// engine runs a linear search over the number of relaxed softs on top of
// the CDCL solver, with an assumption-core shortcut; maxsat/walksat.h
// offers the paper-faithful stochastic local search alternative.

#ifndef CCR_MAXSAT_MAXSAT_H_
#define CCR_MAXSAT_MAXSAT_H_

#include <vector>

#include "src/common/status.h"
#include "src/sat/cnf.h"
#include "src/sat/solver.h"

namespace ccr::maxsat {

/// Result of a MaxSAT call.
struct MaxSatResult {
  /// True if the hard clauses alone are satisfiable (otherwise the rest of
  /// the fields are meaningless).
  bool hard_satisfiable = false;
  /// Which soft clauses are satisfied in the best model found.
  std::vector<bool> soft_satisfied;
  /// Number of satisfied soft clauses.
  int num_satisfied = 0;
  /// Model over the original variables.
  std::vector<bool> model;
};

/// \brief Exact partial-MaxSAT via relaxation and linear search.
///
/// Each soft clause Ci gets a fresh selector si with hard clause
/// (¬si ∨ Ci); a Sinz sequential-counter cardinality constraint bounds the
/// number of dropped softs (¬si) by k, and k grows 0, 1, 2, ... until the
/// formula is satisfiable. The first satisfiable k is the exact optimum.
/// GetSug instances carry at most |R| softs, so the loop is short.
MaxSatResult SolveMaxSat(const sat::Cnf& hard,
                         const std::vector<std::vector<sat::Lit>>& soft,
                         const sat::SolverOptions& options = {});

/// Appends clauses to `cnf` enforcing "at most k of `xs` are true" using
/// the Sinz sequential-counter encoding (auxiliary variables are drawn
/// from `cnf`). k >= xs.size() adds nothing; k == 0 forces all false.
void AddAtMostK(sat::Cnf* cnf, const std::vector<sat::Lit>& xs, int k);

}  // namespace ccr::maxsat

#endif  // CCR_MAXSAT_MAXSAT_H_
