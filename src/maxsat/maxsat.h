// Partial MaxSAT: hard clauses that must hold plus unit-weight soft clauses
// to satisfy as many of as possible.
//
// This is the repository's stand-in for the Walksat-based MaxSat solver the
// paper uses in GetSug (§V-C) to find the maximum subset of a clique of
// derivation rules that has no conflicts with the specification. The exact
// engine is IncrementalMaxSat: relaxation plus a Sinz sequential-counter
// linear search run *in place* on a caller-owned CDCL solver under
// assumptions, with every auxiliary variable confined to a released scope.
// SolveMaxSat is the one-shot convenience built on top of it;
// maxsat/walksat.h offers the paper-faithful stochastic local search
// alternative.

#ifndef CCR_MAXSAT_MAXSAT_H_
#define CCR_MAXSAT_MAXSAT_H_

#include <span>
#include <vector>

#include "src/common/status.h"
#include "src/sat/cnf.h"
#include "src/sat/solver.h"

namespace ccr::maxsat {

/// Result of a MaxSAT call.
struct MaxSatResult {
  /// True if the hard clauses alone are satisfiable (otherwise the rest of
  /// the fields are meaningless).
  bool hard_satisfiable = false;
  /// Which soft clauses are satisfied in the optimal solution. Invariant:
  /// when hard_satisfiable, size() equals the number of soft clauses
  /// passed in — callers may index it positionally without bounds guards.
  std::vector<bool> soft_satisfied;
  /// Number of satisfied soft clauses.
  int num_satisfied = 0;
  /// Model over the original variables (those existing before the call).
  std::vector<bool> model;
};

/// \brief Exact partial MaxSAT run in place on a persistent solver.
///
/// The hard formula is whatever the solver already holds, conditioned on
/// `extra_assumptions` (e.g. a session's active CFD guards plus the
/// activation literal of a scope holding per-round rule clauses). Each
/// Solve call:
///   1. relaxes every soft Ci with a fresh selector si and clause
///      (Ci ∨ ¬si),
///   2. encodes a full-width Sinz sequential counter over the dropped
///      literals ¬si once, and linearly searches k = 0, 1, ... by assuming
///      the counter output "at most k dropped" until satisfiable — the
///      first such k is the exact optimum,
///   3. canonicalizes: selectors are fixed one at a time in soft-index
///      order, keeping each iff still satisfiable under the optimum bound
///      (the lexicographically greatest optimal kept set).
/// All auxiliary variables and clauses live in a ScopedVars scope released
/// before returning, so back-to-back calls on one solver cannot observe
/// each other. Because step 3 is decided by SAT verdicts alone, the result
/// is a pure function of the conditioned formula — bit-identical whether
/// the solver is freshly built or has served many prior rounds.
class IncrementalMaxSat {
 public:
  explicit IncrementalMaxSat(sat::Solver* solver) : solver_(solver) {}

  MaxSatResult Solve(const std::vector<std::vector<sat::Lit>>& soft,
                     std::span<const sat::Lit> extra_assumptions = {});

 private:
  sat::Solver* solver_;
};

/// \brief One-shot exact partial MaxSAT over an explicit hard formula.
///
/// Loads `hard` into a fresh solver and runs IncrementalMaxSat on it — the
/// same algorithm the ResolutionSession runs on its persistent solver, so
/// the two paths agree bit-for-bit on every instance.
MaxSatResult SolveMaxSat(const sat::Cnf& hard,
                         const std::vector<std::vector<sat::Lit>>& soft,
                         const sat::SolverOptions& options = {});

/// Appends clauses to `cnf` enforcing "at most k of `xs` are true" using
/// the Sinz sequential-counter encoding (auxiliary variables are drawn
/// from `cnf`). k >= xs.size() adds nothing; k == 0 forces all false.
void AddAtMostK(sat::Cnf* cnf, const std::vector<sat::Lit>& xs, int k);

}  // namespace ccr::maxsat

#endif  // CCR_MAXSAT_MAXSAT_H_
