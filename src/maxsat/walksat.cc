#include "src/maxsat/walksat.h"

#include <algorithm>

#include "src/common/status.h"

namespace ccr::maxsat {

using sat::Cnf;
using sat::Lit;

namespace {

// Occurrence lists and per-clause satisfied-literal counts for O(1) flip
// bookkeeping.
struct LocalState {
  std::vector<bool> assign;             // per var
  std::vector<int> true_count;          // per clause
  std::vector<std::vector<int>> occur;  // lit index -> clauses containing it
  std::vector<int> unsat_clauses;       // stack of unsatisfied clause ids
  std::vector<int> unsat_pos;           // clause -> index in unsat_clauses, -1
};

bool LitTrue(const std::vector<bool>& assign, Lit l) {
  return assign[l.var()] != l.negated();
}

void MarkUnsat(LocalState* s, int clause) {
  if (s->unsat_pos[clause] >= 0) return;
  s->unsat_pos[clause] = static_cast<int>(s->unsat_clauses.size());
  s->unsat_clauses.push_back(clause);
}

void MarkSat(LocalState* s, int clause) {
  const int pos = s->unsat_pos[clause];
  if (pos < 0) return;
  const int last = s->unsat_clauses.back();
  s->unsat_clauses[pos] = last;
  s->unsat_pos[last] = pos;
  s->unsat_clauses.pop_back();
  s->unsat_pos[clause] = -1;
}

void Flip(LocalState* s, sat::Var v) {
  const bool new_val = !s->assign[v];
  s->assign[v] = new_val;
  const Lit now_true = sat::Lit(v, /*negated=*/!new_val);
  const Lit now_false = ~now_true;
  for (int c : s->occur[now_true.index()]) {
    if (++s->true_count[c] == 1) MarkSat(s, c);
  }
  for (int c : s->occur[now_false.index()]) {
    if (--s->true_count[c] == 0) MarkUnsat(s, c);
  }
}

// Number of currently-satisfied clauses that flipping v would break
// (clauses where v's literal is the only true one).
int BreakCount(const LocalState& s, sat::Var v) {
  const Lit cur_true = sat::Lit(v, /*negated=*/!s.assign[v]);
  int breaks = 0;
  for (int c : s.occur[cur_true.index()]) {
    if (s.true_count[c] == 1) ++breaks;
  }
  return breaks;
}

}  // namespace

WalkSatResult RunWalkSat(const Cnf& cnf, const WalkSatOptions& options) {
  WalkSatResult result;
  const int n_vars = cnf.num_vars();
  const int n_clauses = cnf.num_clauses();
  result.model.assign(n_vars, false);
  result.best_unsat = n_clauses;

  Rng rng(options.seed);
  LocalState s;
  s.occur.resize(2 * std::max(n_vars, 1));
  for (int c = 0; c < n_clauses; ++c) {
    for (Lit l : cnf.clause(c)) s.occur[l.index()].push_back(c);
  }

  for (int attempt = 0; attempt < options.tries; ++attempt) {
    s.assign.resize(n_vars);
    for (int v = 0; v < n_vars; ++v) s.assign[v] = rng.Chance(0.5);
    s.true_count.assign(n_clauses, 0);
    s.unsat_clauses.clear();
    s.unsat_pos.assign(n_clauses, -1);
    for (int c = 0; c < n_clauses; ++c) {
      for (Lit l : cnf.clause(c)) {
        if (LitTrue(s.assign, l)) ++s.true_count[c];
      }
      if (s.true_count[c] == 0) MarkUnsat(&s, c);
    }

    for (int64_t flip = 0; flip < options.max_flips; ++flip) {
      const int unsat_now = static_cast<int>(s.unsat_clauses.size());
      if (unsat_now < result.best_unsat) {
        result.best_unsat = unsat_now;
        result.model = s.assign;
      }
      if (unsat_now == 0) {
        result.satisfied = true;
        return result;
      }
      // Pick a random unsatisfied clause.
      const int c = s.unsat_clauses[static_cast<size_t>(
          rng.Below(s.unsat_clauses.size()))];
      auto lits = cnf.clause(c);
      if (lits.empty()) break;  // empty clause: formula can't be satisfied
      // Freebie move: a variable with break count 0, else noise/greedy.
      sat::Var chosen = sat::kVarUndef;
      int best_break = INT32_MAX;
      std::vector<sat::Var> zero_break;
      for (Lit l : lits) {
        const int b = BreakCount(s, l.var());
        if (b == 0) zero_break.push_back(l.var());
        if (b < best_break) {
          best_break = b;
          chosen = l.var();
        }
      }
      if (!zero_break.empty()) {
        chosen = rng.PickFrom(zero_break);
      } else if (rng.Chance(options.noise)) {
        chosen = lits[static_cast<size_t>(rng.Below(lits.size()))].var();
      }
      CCR_DCHECK(chosen != sat::kVarUndef);
      Flip(&s, chosen);
    }
  }
  return result;
}

}  // namespace ccr::maxsat
