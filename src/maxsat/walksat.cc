#include "src/maxsat/walksat.h"

#include <algorithm>
#include <cstdint>

#include "src/common/status.h"

namespace ccr::maxsat {

using sat::Cnf;
using sat::Lit;

namespace {

Status ValidateOptions(const WalkSatOptions& options) {
  if (options.max_flips <= 0) {
    return Status::InvalidArgument("WalkSatOptions.max_flips must be > 0");
  }
  if (options.tries <= 0) {
    return Status::InvalidArgument("WalkSatOptions.tries must be > 0");
  }
  if (!(options.noise >= 0.0 && options.noise <= 1.0)) {
    return Status::InvalidArgument(
        "WalkSatOptions.noise must lie in [0, 1]");
  }
  return Status::OK();
}

bool LitTrue(const std::vector<uint8_t>& assign, Lit l) {
  return (assign[l.var()] != 0) != l.negated();
}

void MarkUnsat(WalkSatScratch* s, int clause) {
  if (s->unsat_pos[clause] >= 0) return;
  s->unsat_pos[clause] = static_cast<int>(s->unsat_clauses.size());
  s->unsat_clauses.push_back(clause);
}

void MarkSat(WalkSatScratch* s, int clause) {
  const int pos = s->unsat_pos[clause];
  if (pos < 0) return;
  const int last = s->unsat_clauses.back();
  s->unsat_clauses[pos] = last;
  s->unsat_pos[last] = pos;
  s->unsat_clauses.pop_back();
  s->unsat_pos[clause] = -1;
}

void Flip(WalkSatScratch* s, sat::Var v) {
  const uint8_t new_val = s->assign[v] ^ 1;
  s->assign[v] = new_val;
  const Lit now_true = sat::Lit(v, /*negated=*/new_val == 0);
  const Lit now_false = ~now_true;
  for (int j = s->occ_start[now_true.index()];
       j < s->occ_start[now_true.index() + 1]; ++j) {
    if (++s->true_count[s->occ[j]] == 1) MarkSat(s, s->occ[j]);
  }
  for (int j = s->occ_start[now_false.index()];
       j < s->occ_start[now_false.index() + 1]; ++j) {
    if (--s->true_count[s->occ[j]] == 0) MarkUnsat(s, s->occ[j]);
  }
}

// Number of currently-satisfied clauses that flipping v would break
// (clauses where v's literal is the only true one).
int BreakCount(const WalkSatScratch& s, sat::Var v) {
  const Lit cur_true = sat::Lit(v, /*negated=*/s.assign[v] == 0);
  int breaks = 0;
  for (int j = s.occ_start[cur_true.index()];
       j < s.occ_start[cur_true.index() + 1]; ++j) {
    if (s.true_count[s.occ[j]] == 1) ++breaks;
  }
  return breaks;
}

}  // namespace

Result<WalkSatResult> RunWalkSat(const Cnf& cnf,
                                 const WalkSatOptions& options,
                                 WalkSatScratch* scratch) {
  CCR_RETURN_NOT_OK(ValidateOptions(options));
  WalkSatResult result;
  const int n_vars = cnf.num_vars();
  const int n_clauses = cnf.num_clauses();
  result.model.assign(n_vars, false);
  result.best_unsat = n_clauses;

  Rng rng(options.seed);
  WalkSatScratch local;
  WalkSatScratch& s = scratch != nullptr ? *scratch : local;

  // Occurrence lists (lit index -> clause ids) in flat CSR form so a
  // pooled scratch clears in O(buffers), not O(vars).
  s.occ_start.assign(static_cast<size_t>(2 * n_vars) + 1, 0);
  int total_lits = 0;
  for (int c = 0; c < n_clauses; ++c) {
    for (Lit l : cnf.clause(c)) {
      ++s.occ_start[l.index() + 1];
      ++total_lits;
    }
  }
  for (size_t i = 1; i < s.occ_start.size(); ++i) {
    s.occ_start[i] += s.occ_start[i - 1];
  }
  s.occ.resize(static_cast<size_t>(total_lits));
  s.cursor.assign(s.occ_start.begin(), s.occ_start.end() - 1);
  for (int c = 0; c < n_clauses; ++c) {
    for (Lit l : cnf.clause(c)) s.occ[s.cursor[l.index()]++] = c;
  }

  for (int attempt = 0; attempt < options.tries; ++attempt) {
    s.assign.resize(static_cast<size_t>(n_vars));
    for (int v = 0; v < n_vars; ++v) s.assign[v] = rng.Chance(0.5) ? 1 : 0;
    s.true_count.assign(static_cast<size_t>(n_clauses), 0);
    s.unsat_clauses.clear();
    s.unsat_pos.assign(static_cast<size_t>(n_clauses), -1);
    for (int c = 0; c < n_clauses; ++c) {
      for (Lit l : cnf.clause(c)) {
        if (LitTrue(s.assign, l)) ++s.true_count[c];
      }
      if (s.true_count[c] == 0) MarkUnsat(&s, c);
    }

    for (int64_t flip = 0; flip < options.max_flips; ++flip) {
      const int unsat_now = static_cast<int>(s.unsat_clauses.size());
      if (unsat_now < result.best_unsat) {
        result.best_unsat = unsat_now;
        for (int v = 0; v < n_vars; ++v) result.model[v] = s.assign[v] != 0;
      }
      if (unsat_now == 0) {
        result.satisfied = true;
        return result;
      }
      // Pick a random unsatisfied clause.
      const int c = s.unsat_clauses[static_cast<size_t>(
          rng.Below(s.unsat_clauses.size()))];
      auto lits = cnf.clause(c);
      if (lits.empty()) break;  // empty clause: formula can't be satisfied
      // Freebie move: a variable with break count 0, else noise/greedy.
      sat::Var chosen = sat::kVarUndef;
      int best_break = INT32_MAX;
      s.zero_break.clear();
      for (Lit l : lits) {
        const int b = BreakCount(s, l.var());
        if (b == 0) s.zero_break.push_back(l.var());
        if (b < best_break) {
          best_break = b;
          chosen = l.var();
        }
      }
      if (!s.zero_break.empty()) {
        chosen = rng.PickFrom(s.zero_break);
      } else if (rng.Chance(options.noise)) {
        chosen = lits[static_cast<size_t>(rng.Below(lits.size()))].var();
      }
      CCR_DCHECK(chosen != sat::kVarUndef);
      Flip(&s, chosen);
    }
  }
  return result;
}

Result<WalkSatResult> RunWalkSat(sat::Solver* solver,
                                 const WalkSatOptions& options) {
  CCR_RETURN_NOT_OK(ValidateOptions(options));
  WalkSatResult result;
  result.model.assign(static_cast<size_t>(solver->num_vars()), false);
  if (solver->IsUnsatForever()) {
    // Refuted at level 0 before any flip could run.
    result.best_unsat = 1;
    return result;
  }
  sat::LocalSearchBudget budget;
  budget.max_flips = options.max_flips;
  budget.tries = options.tries;
  budget.noise = options.noise;
  budget.has_seed = true;
  budget.seed = options.seed;
  const sat::LocalSearchResult r =
      solver->SeedFromLocalSearch({}, {}, budget);
  if (!r.ran) {
    result.best_unsat = 1;
    return result;
  }
  for (size_t v = 0; v < r.model.size(); ++v) result.model[v] = r.model[v] != 0;
  result.best_unsat = r.hard_unsat;
  result.satisfied = r.feasible;
  return result;
}

}  // namespace ccr::maxsat
