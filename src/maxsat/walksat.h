// WalkSAT-style stochastic local search for (Max)SAT.
//
// The paper's GetSug uses the Walksat solver of Selman & Kautz [24]; this
// module reimplements that algorithm: greedy flips with random noise,
// scored by the number of clauses a flip breaks. It doubles as an
// approximate MaxSAT engine (best assignment seen = most clauses
// satisfied), which the ablation bench compares against the exact engine
// in maxsat.h. Two entry points share the options and result types: the
// CNF form below (paper-faithful, runs on pooled WalkSatScratch buffers)
// and the solver form, which runs the same search directly on a live
// Solver's clause arena and binary watch lists with no CNF copy —
// the engine behind Solver::SeedFromLocalSearch and the hot-path
// warm starts.

#ifndef CCR_MAXSAT_WALKSAT_H_
#define CCR_MAXSAT_WALKSAT_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/sat/cnf.h"
#include "src/sat/solver.h"

namespace ccr::maxsat {

/// WalkSAT parameters. Validated by RunWalkSat: max_flips and tries must
/// be positive and noise must lie in [0, 1] — violations surface as
/// Status::InvalidArgument, never as silent clamping.
struct WalkSatOptions {
  int64_t max_flips = 100000;  // per try
  int tries = 3;               // random restarts
  double noise = 0.5;          // probability of a random (vs greedy) flip
  uint64_t seed = 0x5eed;
};

/// Result of a WalkSAT run.
struct WalkSatResult {
  /// Best assignment found (indexed by variable).
  std::vector<bool> model;
  /// Number of clauses unsatisfied under `model` (0 means satisfying).
  int best_unsat = 0;
  /// True iff a fully satisfying assignment was found.
  bool satisfied = false;
};

/// \brief Reusable buffers for the CNF-form RunWalkSat.
///
/// Owned by SessionScratch (AcquireWalkSatScratch, the same pooling
/// pattern as AcquireInstantiation) so repeated runs — the ablation bench
/// loops over every entity — stop paying per-call occurrence-list and
/// counter allocations. The occurrence index is a flat CSR layout, not a
/// vector-of-vectors, so clearing it between runs is O(1) per buffer.
struct WalkSatScratch {
  std::vector<uint8_t> assign;     // per var
  std::vector<int> true_count;     // per clause
  std::vector<int> occ_start;      // lit index -> CSR offset
  std::vector<int> occ;            // CSR clause ids
  std::vector<int> cursor;         // CSR fill cursors
  std::vector<int> unsat_clauses;  // stack of unsatisfied clause ids
  std::vector<int> unsat_pos;      // clause -> index in unsat_clauses, -1
  std::vector<sat::Var> zero_break;  // freebie candidates per flip
};

/// Runs WalkSAT on `cnf`. With weights absent, this maximizes the number
/// of satisfied clauses; callers implementing partial MaxSAT replicate
/// hard clauses to weight them (as the original Walksat-based MaxSat
/// pipelines did). `scratch` (optional) pools the working buffers across
/// calls. Deterministic under options.seed.
Result<WalkSatResult> RunWalkSat(const sat::Cnf& cnf,
                                 const WalkSatOptions& options,
                                 WalkSatScratch* scratch = nullptr);

/// Runs the same search directly on `solver`'s clause arena and binary
/// watch lists — no CNF copy; the scratch is the solver's own pooled
/// local-search buffers. Variables fixed at level 0 (and BVE-eliminated
/// ones) never flip, and as a side effect the best assignment seeds the
/// solver's saved phases / model cache exactly as SeedFromLocalSearch
/// does. Precondition: decision level 0.
Result<WalkSatResult> RunWalkSat(sat::Solver* solver,
                                 const WalkSatOptions& options);

}  // namespace ccr::maxsat

#endif  // CCR_MAXSAT_WALKSAT_H_
