// WalkSAT-style stochastic local search for (Max)SAT.
//
// The paper's GetSug uses the Walksat solver of Selman & Kautz [24]; this
// module reimplements that algorithm: greedy flips with random noise,
// scored by the number of clauses a flip breaks. It doubles as an
// approximate MaxSAT engine (best assignment seen = most clauses
// satisfied), which the ablation bench compares against the exact engine
// in maxsat.h.

#ifndef CCR_MAXSAT_WALKSAT_H_
#define CCR_MAXSAT_WALKSAT_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/sat/cnf.h"

namespace ccr::maxsat {

/// WalkSAT parameters.
struct WalkSatOptions {
  int64_t max_flips = 100000;  // per try
  int tries = 3;               // random restarts
  double noise = 0.5;          // probability of a random (vs greedy) flip
  uint64_t seed = 0x5eed;
};

/// Result of a WalkSAT run.
struct WalkSatResult {
  /// Best assignment found (indexed by variable).
  std::vector<bool> model;
  /// Number of clauses unsatisfied under `model` (0 means satisfying).
  int best_unsat = 0;
  /// True iff a fully satisfying assignment was found.
  bool satisfied = false;
};

/// Runs WalkSAT on `cnf`. With weights absent, this maximizes the number
/// of satisfied clauses; callers implementing partial MaxSAT replicate
/// hard clauses to weight them (as the original Walksat-based MaxSat
/// pipelines did).
WalkSatResult RunWalkSat(const sat::Cnf& cnf, const WalkSatOptions& options);

}  // namespace ccr::maxsat

#endif  // CCR_MAXSAT_WALKSAT_H_
