#include "src/order/partial_order.h"

namespace ccr {

int DenseBitset::Count() const {
  int total = 0;
  for (uint64_t w : words_) total += __builtin_popcountll(w);
  return total;
}

PartialOrder::PartialOrder(int num_elements) : n_(num_elements) {
  reach_.reserve(n_);
  for (int i = 0; i < n_; ++i) reach_.emplace_back(n_);
}

Status PartialOrder::Add(int u, int v) {
  if (u < 0 || v < 0 || u >= n_ || v >= n_) {
    return Status::InvalidArgument("partial order element out of range");
  }
  if (u == v) {
    return Status::InvalidArgument(
        "irreflexivity violated: element ordered before itself");
  }
  if (Less(v, u)) {
    return Status::InvalidArgument("cycle: adding " + std::to_string(u) +
                                   " < " + std::to_string(v) +
                                   " but the reverse already holds");
  }
  if (Less(u, v)) return Status::OK();
  // Everything at or below u now reaches v and everything v reaches.
  for (int x = 0; x < n_; ++x) {
    if (x == u || Less(x, u)) {
      reach_[x].Set(v);
      reach_[x].UnionWith(reach_[v]);
    }
  }
  return Status::OK();
}

std::vector<int> PartialOrder::Maximal() const {
  std::vector<int> out;
  for (int v = 0; v < n_; ++v) {
    bool has_above = false;
    for (int w = 0; w < n_ && !has_above; ++w) {
      if (Less(v, w)) has_above = true;
    }
    if (!has_above) out.push_back(v);
  }
  return out;
}

bool PartialOrder::DominatesAll(int top) const {
  for (int w = 0; w < n_; ++w) {
    if (w != top && !Less(w, top)) return false;
  }
  return true;
}

std::vector<std::pair<int, int>> PartialOrder::Pairs() const {
  std::vector<std::pair<int, int>> out;
  for (int u = 0; u < n_; ++u) {
    for (int v = 0; v < n_; ++v) {
      if (Less(u, v)) out.emplace_back(u, v);
    }
  }
  return out;
}

int PartialOrder::CountPairs() const {
  int total = 0;
  for (int u = 0; u < n_; ++u) total += reach_[u].Count();
  return total;
}

}  // namespace ccr
