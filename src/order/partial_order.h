// Strict partial orders over a fixed universe of elements.
//
// Used for (a) deduced value-level currency orders Od (§V-B), and (b)
// validating that user-supplied temporal orders keep each attribute's
// currency order acyclic (§II-C: "We only consider partial temporal orders
// Ot such that the union is a partial order").
//
// The order is maintained transitively closed, so Less() is O(1) and cycle
// detection happens eagerly on insertion.

#ifndef CCR_ORDER_PARTIAL_ORDER_H_
#define CCR_ORDER_PARTIAL_ORDER_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/status.h"

namespace ccr {

/// \brief Fixed-capacity bitset used for reachability rows.
class DenseBitset {
 public:
  explicit DenseBitset(int bits = 0) : bits_(bits), words_((bits + 63) / 64) {}

  void Set(int i) { words_[i >> 6] |= (1ULL << (i & 63)); }
  bool Test(int i) const { return (words_[i >> 6] >> (i & 63)) & 1ULL; }

  /// this |= other. Requires equal capacity.
  void UnionWith(const DenseBitset& other) {
    for (size_t w = 0; w < words_.size(); ++w) words_[w] |= other.words_[w];
  }

  int size_bits() const { return bits_; }

  /// Number of set bits.
  int Count() const;

 private:
  int bits_;
  std::vector<uint64_t> words_;
};

/// \brief Strict partial order ≺ on elements {0, ..., n-1}, closed under
/// transitivity.
class PartialOrder {
 public:
  explicit PartialOrder(int num_elements);

  int num_elements() const { return n_; }

  /// Records u ≺ v (and all transitive consequences). Fails with
  /// InvalidArgument if v ≺ u already holds (a cycle) or u == v
  /// (irreflexivity).
  Status Add(int u, int v);

  /// True iff u ≺ v in the closure.
  bool Less(int u, int v) const { return reach_[u].Test(v); }

  /// True iff neither u ≺ v nor v ≺ u (and u != v).
  bool Incomparable(int u, int v) const {
    return u != v && !Less(u, v) && !Less(v, u);
  }

  /// Elements with no element above them (candidates for "most current").
  std::vector<int> Maximal() const;

  /// True iff `top` dominates every other element: for all w != top,
  /// w ≺ top. Such an element is the unique most-current value (§V-B).
  bool DominatesAll(int top) const;

  /// All pairs (u, v) with u ≺ v, including transitive ones.
  std::vector<std::pair<int, int>> Pairs() const;

  /// Number of ordered pairs in the closure.
  int CountPairs() const;

 private:
  int n_;
  std::vector<DenseBitset> reach_;  // reach_[u].Test(v) <=> u ≺ v
};

}  // namespace ccr

#endif  // CCR_ORDER_PARTIAL_ORDER_H_
