#include "src/order/temporal_instance.h"

namespace ccr {

TemporalInstance::TemporalInstance(EntityInstance instance)
    : instance_(std::move(instance)) {
  orders_.resize(instance_.schema().size());
}

Status TemporalInstance::AddOrder(int attr, int t_less, int t_more) {
  if (attr < 0 || attr >= schema().size()) {
    return Status::InvalidArgument("attribute index out of range");
  }
  if (t_less < 0 || t_more < 0 || t_less >= instance_.size() ||
      t_more >= instance_.size()) {
    return Status::InvalidArgument("tuple index out of range in order pair");
  }
  if (t_less == t_more) return Status::OK();
  const Value& a = instance_.tuple(t_less).at(attr);
  const Value& b = instance_.tuple(t_more).at(attr);
  if (a == b) return Status::OK();  // trivially ordered, nothing to record
  orders_[attr].emplace_back(t_less, t_more);
  return Status::OK();
}

int TemporalInstance::TotalOrderPairs() const {
  int total = 0;
  for (const auto& per_attr : orders_) {
    total += static_cast<int>(per_attr.size());
  }
  return total;
}

Status TemporalInstance::AddTuple(Tuple t) {
  return instance_.Add(std::move(t));
}

Result<TemporalInstance> Extend(const TemporalInstance& base,
                                const PartialTemporalOrder& delta) {
  TemporalInstance out = base;
  for (const Tuple& t : delta.new_tuples) {
    CCR_RETURN_NOT_OK(out.AddTuple(t));
  }
  for (const auto& [attr, less, more] : delta.orders) {
    CCR_RETURN_NOT_OK(out.AddOrder(attr, less, more));
  }
  return out;
}

}  // namespace ccr
