// Temporal instances It = (Ie, ⪯A1, ..., ⪯An) and partial temporal orders
// Ot, with the extension operator Se ⊕ Ot (§II-A, §II-C).
//
// Currency orders are stored at tuple level, exactly as in the paper: a pair
// (i, j) in attribute A's order means tuple j's A-value is at least as
// current as tuple i's. Pairs between tuples with equal A-values are
// implicit and never stored; stored pairs with distinct values denote the
// strict order t_i ≺_A t_j.

#ifndef CCR_ORDER_TEMPORAL_INSTANCE_H_
#define CCR_ORDER_TEMPORAL_INSTANCE_H_

#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/relational/entity_instance.h"

namespace ccr {

/// \brief An entity instance plus one (possibly empty) currency order per
/// attribute: the paper's temporal instance It.
class TemporalInstance {
 public:
  TemporalInstance() = default;

  /// Wraps `instance` with empty currency orders.
  explicit TemporalInstance(EntityInstance instance);

  const EntityInstance& instance() const { return instance_; }
  const Schema& schema() const { return instance_.schema(); }

  /// Records t_less ≺_attr t_more (available temporal information).
  /// Pairs whose two tuples carry the same value for `attr` are accepted
  /// and dropped (they are trivially true).
  Status AddOrder(int attr, int t_less, int t_more);

  /// Stored strict-order pairs for `attr`, as (less, more) tuple indices.
  const std::vector<std::pair<int, int>>& orders(int attr) const {
    return orders_[attr];
  }

  /// Total number of stored order pairs across attributes.
  int TotalOrderPairs() const;

  /// Appends a tuple (used when materializing user input as a new tuple
  /// t_o, §III Remark (1)).
  Status AddTuple(Tuple t);

 private:
  EntityInstance instance_;
  std::vector<std::vector<std::pair<int, int>>> orders_;
};

/// \brief Additional currency information Ot = (I, ≺'A1, ..., ≺'An)
/// solicited from users; applied to a specification with Extend (Se ⊕ Ot).
struct PartialTemporalOrder {
  /// Tuples to append to the entity instance (e.g., the synthetic tuple t_o
  /// holding the user-validated values). Indices of these tuples, as
  /// referenced by `orders`, start at the current instance size.
  std::vector<Tuple> new_tuples;

  /// Order pairs (attr, less_tuple, more_tuple) over the extended instance.
  std::vector<std::tuple<int, int, int>> orders;

  /// |Ot|: the amount of currency information added (§II-C).
  int size() const { return static_cast<int>(orders.size()); }

  bool empty() const { return new_tuples.empty() && orders.empty(); }
};

/// Computes It ⊕ Ot: appends Ot's tuples and merges its currency orders.
/// Fails if an order pair is out of range; cycle detection is left to
/// validity checking (IsValid), as in the framework of Fig. 4.
Result<TemporalInstance> Extend(const TemporalInstance& base,
                                const PartialTemporalOrder& delta);

}  // namespace ccr

#endif  // CCR_ORDER_TEMPORAL_INSTANCE_H_
