#include "src/relational/entity_instance.h"

#include <unordered_set>

namespace ccr {

Status EntityInstance::Add(Tuple t) {
  if (t.size() != schema_.size()) {
    return Status::InvalidArgument(
        "tuple arity " + std::to_string(t.size()) +
        " does not match schema arity " + std::to_string(schema_.size()));
  }
  tuples_.push_back(std::move(t));
  return Status::OK();
}

std::vector<Value> EntityInstance::ActiveDomain(int attr) const {
  std::vector<Value> out;
  std::unordered_set<Value, ValueHash> seen;
  for (const Tuple& t : tuples_) {
    const Value& v = t.at(attr);
    if (v.is_null()) continue;
    if (seen.insert(v).second) out.push_back(v);
  }
  return out;
}

bool EntityInstance::HasConflict(int attr) const {
  return ActiveDomain(attr).size() > 1;
}

int EntityInstance::CountConflictAttributes() const {
  int n = 0;
  for (int a = 0; a < schema_.size(); ++a) {
    if (HasConflict(a)) ++n;
  }
  return n;
}

std::string EntityInstance::ToString() const {
  std::string out = "entity '" + entity_id_ + "' (" +
                    std::to_string(size()) + " tuples)\n";
  for (const Tuple& t : tuples_) {
    out += "  " + t.ToString() + "\n";
  }
  return out;
}

}  // namespace ccr
