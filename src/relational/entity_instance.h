// Entity instances: sets of tuples pertaining to one real-world entity
// (§II-A). These are the unit of work for conflict resolution — typically
// much smaller than a full database, produced upstream by record linkage.

#ifndef CCR_RELATIONAL_ENTITY_INSTANCE_H_
#define CCR_RELATIONAL_ENTITY_INSTANCE_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/relational/schema.h"
#include "src/relational/tuple.h"

namespace ccr {

/// \brief A named entity and its (possibly conflicting) tuples.
class EntityInstance {
 public:
  EntityInstance() = default;
  EntityInstance(Schema schema, std::string entity_id)
      : schema_(std::move(schema)), entity_id_(std::move(entity_id)) {}

  const Schema& schema() const { return schema_; }
  const std::string& entity_id() const { return entity_id_; }

  int size() const { return static_cast<int>(tuples_.size()); }
  bool empty() const { return tuples_.empty(); }

  const Tuple& tuple(int i) const { return tuples_[i]; }
  const std::vector<Tuple>& tuples() const { return tuples_; }

  /// Appends a tuple; its arity must match the schema.
  Status Add(Tuple t);

  /// Active domain adom(Ie.A): the distinct non-null values of attribute
  /// `attr` across all tuples, in first-occurrence order (§II-A).
  ///
  /// Nulls are excluded: a null marks the absence of a value and ranks
  /// lowest in every currency order, so it is never a candidate true value.
  std::vector<Value> ActiveDomain(int attr) const;

  /// True if attribute `attr` holds more than one distinct non-null value,
  /// i.e., the tuples conflict on it (used by the evaluation metrics).
  bool HasConflict(int attr) const;

  /// Number of attributes with conflicts.
  int CountConflictAttributes() const;

  /// Renders all tuples, one per line, for diagnostics.
  std::string ToString() const;

 private:
  Schema schema_;
  std::string entity_id_;
  std::vector<Tuple> tuples_;
};

}  // namespace ccr

#endif  // CCR_RELATIONAL_ENTITY_INSTANCE_H_
