#include "src/relational/schema.h"

namespace ccr {

Result<Schema> Schema::Make(std::vector<std::string> attribute_names) {
  Schema s;
  s.names_ = std::move(attribute_names);
  for (int i = 0; i < static_cast<int>(s.names_.size()); ++i) {
    auto [it, inserted] = s.index_.emplace(s.names_[i], i);
    if (!inserted) {
      return Status::InvalidArgument("duplicate attribute name: " +
                                     s.names_[i]);
    }
  }
  return s;
}

int Schema::IndexOf(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? -1 : it->second;
}

Result<int> Schema::Require(const std::string& name) const {
  int idx = IndexOf(name);
  if (idx < 0) return Status::NotFound("no attribute named '" + name + "'");
  return idx;
}

}  // namespace ccr
