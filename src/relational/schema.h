// Relation schema R = (A1, ..., An) (§II-A).

#ifndef CCR_RELATIONAL_SCHEMA_H_
#define CCR_RELATIONAL_SCHEMA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"

namespace ccr {

/// \brief Ordered list of attribute names with O(1) name lookup.
///
/// Attribute positions (0-based) are the attribute identifiers used across
/// the library; names only appear at API boundaries and in printing.
class Schema {
 public:
  Schema() = default;

  /// Builds a schema from attribute names; duplicate names are rejected.
  static Result<Schema> Make(std::vector<std::string> attribute_names);

  /// Number of attributes n = |R|.
  int size() const { return static_cast<int>(names_.size()); }

  /// Name of attribute at `index`. Precondition: 0 <= index < size().
  const std::string& name(int index) const { return names_[index]; }

  /// All attribute names in schema order.
  const std::vector<std::string>& names() const { return names_; }

  /// Index of `name`, or -1 if absent.
  int IndexOf(const std::string& name) const;

  /// Index of `name`, or NotFound.
  Result<int> Require(const std::string& name) const;

  bool operator==(const Schema& other) const { return names_ == other.names_; }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, int> index_;
};

}  // namespace ccr

#endif  // CCR_RELATIONAL_SCHEMA_H_
