#include "src/relational/tuple.h"

namespace ccr {

std::string Tuple::ToString() const {
  std::string out = "(";
  for (int i = 0; i < size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  out += ")";
  return out;
}

std::string Tuple::ToString(const Schema& schema) const {
  std::string out;
  for (int i = 0; i < size() && i < schema.size(); ++i) {
    if (i > 0) out += ", ";
    out += schema.name(i);
    out += "=";
    out += values_[i].ToString();
  }
  return out;
}

}  // namespace ccr
