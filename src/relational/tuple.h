// Tuples of an entity instance (§II-A).

#ifndef CCR_RELATIONAL_TUPLE_H_
#define CCR_RELATIONAL_TUPLE_H_

#include <initializer_list>
#include <string>
#include <vector>

#include "src/relational/schema.h"
#include "src/relational/value.h"

namespace ccr {

/// \brief A row: one Value per schema attribute.
///
/// Tuples do not own a schema reference; the owning EntityInstance pairs
/// them with its Schema. Attribute access is by position.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}
  Tuple(std::initializer_list<Value> values) : values_(values) {}

  /// Number of fields; must equal the owning schema's size.
  int size() const { return static_cast<int>(values_.size()); }

  const Value& at(int attr) const { return values_[attr]; }
  Value& at(int attr) { return values_[attr]; }
  const Value& operator[](int attr) const { return values_[attr]; }
  Value& operator[](int attr) { return values_[attr]; }

  const std::vector<Value>& values() const { return values_; }

  bool operator==(const Tuple& other) const {
    return values_ == other.values_;
  }

  /// Renders "(v1, v2, ...)" for diagnostics.
  std::string ToString() const;

  /// Renders "name1=v1, name2=v2, ..." using `schema` for names.
  std::string ToString(const Schema& schema) const;

 private:
  std::vector<Value> values_;
};

}  // namespace ccr

#endif  // CCR_RELATIONAL_TUPLE_H_
