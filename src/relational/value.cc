#include "src/relational/value.h"

#include <functional>

#include "src/common/status.h"

namespace ccr {

double Value::AsNumber() const {
  if (type() == ValueType::kInt) return static_cast<double>(as_int());
  CCR_DCHECK(type() == ValueType::kDouble);
  return as_double();
}

bool Value::operator==(const Value& other) const {
  const bool lhs_num =
      type() == ValueType::kInt || type() == ValueType::kDouble;
  const bool rhs_num =
      other.type() == ValueType::kInt || other.type() == ValueType::kDouble;
  if (lhs_num && rhs_num) return AsNumber() == other.AsNumber();
  if (type() != other.type()) return false;
  switch (type()) {
    case ValueType::kNull: return true;
    case ValueType::kString: return as_string() == other.as_string();
    default: return false;  // unreachable: numeric handled above
  }
}

int Value::Compare(const Value& other) const {
  // Rank classes: null(0) < number(1) < string(2).
  auto rank = [](ValueType t) {
    switch (t) {
      case ValueType::kNull: return 0;
      case ValueType::kInt:
      case ValueType::kDouble: return 1;
      case ValueType::kString: return 2;
    }
    return 3;
  };
  const int lr = rank(type());
  const int rr = rank(other.type());
  if (lr != rr) return lr < rr ? -1 : 1;
  switch (lr) {
    case 0: return 0;  // null == null
    case 1: {
      const double a = AsNumber();
      const double b = other.AsNumber();
      if (a < b) return -1;
      if (a > b) return 1;
      return 0;
    }
    default: {
      const int c = as_string().compare(other.as_string());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
  }
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull: return "null";
    case ValueType::kInt: return std::to_string(as_int());
    case ValueType::kDouble: {
      std::string s = std::to_string(as_double());
      return s;
    }
    case ValueType::kString: return as_string();
  }
  return "?";
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull: return 0x9bf1'53d1ULL;
    case ValueType::kInt:
    case ValueType::kDouble: {
      // Numeric values hash through double so kInt 3 == kDouble 3.0
      // (equal under ==) hash identically.
      double d = AsNumber();
      if (d == 0.0) d = 0.0;  // normalize -0.0
      return std::hash<double>{}(d) * 0x9e3779b97f4a7c15ULL;
    }
    case ValueType::kString:
      return std::hash<std::string>{}(as_string());
  }
  return 0;
}

}  // namespace ccr
