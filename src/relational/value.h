// Attribute values for entity instances (§II-A of the paper).
//
// A Value is null, a 64-bit integer, a double, or a string. Nulls rank
// lowest everywhere: in currency orders a tuple whose attribute is null is
// the least current (§II-A), and in comparison predicates null < k for any
// value k (Example 2(b), "assuming null < k for any number k").

#ifndef CCR_RELATIONAL_VALUE_H_
#define CCR_RELATIONAL_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace ccr {

/// Runtime type tag of a Value.
enum class ValueType : uint8_t { kNull = 0, kInt = 1, kDouble = 2, kString = 3 };

/// \brief Dynamically typed attribute value with a total comparison order.
///
/// The total order is: null < all numbers < all strings; numbers compare by
/// magnitude across kInt/kDouble; strings compare lexicographically. This
/// order backs the comparison predicates (=, !=, <, <=, >, >=) of currency
/// constraints.
class Value {
 public:
  /// Constructs the null value.
  Value() : repr_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(Repr(v)); }
  static Value Real(double v) { return Value(Repr(v)); }
  static Value Str(std::string v) { return Value(Repr(std::move(v))); }

  ValueType type() const {
    return static_cast<ValueType>(repr_.index());
  }
  bool is_null() const { return type() == ValueType::kNull; }

  /// Precondition: type() == kInt.
  int64_t as_int() const { return std::get<int64_t>(repr_); }
  /// Precondition: type() == kDouble.
  double as_double() const { return std::get<double>(repr_); }
  /// Precondition: type() == kString.
  const std::string& as_string() const { return std::get<std::string>(repr_); }

  /// Numeric view: int or double widened to double. Precondition: numeric.
  double AsNumber() const;

  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Three-way comparison under the library-wide total order.
  /// Returns <0, 0, >0 like strcmp.
  int Compare(const Value& other) const;

  bool operator<(const Value& other) const { return Compare(other) < 0; }
  bool operator>(const Value& other) const { return Compare(other) > 0; }
  bool operator<=(const Value& other) const { return Compare(other) <= 0; }
  bool operator>=(const Value& other) const { return Compare(other) >= 0; }

  /// Renders the value for printing; strings are unquoted, null is "null".
  std::string ToString() const;

  /// Stable hash compatible with operator== (kInt 3 and kDouble 3.0 collide
  /// deliberately only if equal under ==; they are not equal here: == is
  /// type-sensitive except int/double compare numerically — see .cc).
  size_t Hash() const;

 private:
  using Repr = std::variant<std::monostate, int64_t, double, std::string>;
  explicit Value(Repr r) : repr_(std::move(r)) {}

  Repr repr_;
};

/// Hash functor for use in unordered containers.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace ccr

#endif  // CCR_RELATIONAL_VALUE_H_
