#include "src/sat/cnf.h"

#include "src/common/status.h"

namespace ccr::sat {

void Cnf::AddClause(std::span<const Lit> lits) {
  for (Lit l : lits) {
    CCR_DCHECK(l.var() >= 0);
    EnsureVars(l.var() + 1);
    pool_.push_back(l);
  }
  starts_.push_back(static_cast<uint32_t>(pool_.size()));
}

std::string Cnf::ToString() const {
  std::string out = "p cnf " + std::to_string(num_vars_) + " " +
                    std::to_string(num_clauses()) + "\n";
  if (num_clauses() > 200) return out + "(too many clauses to print)\n";
  for (int i = 0; i < num_clauses(); ++i) {
    for (Lit l : clause(i)) {
      out += l.ToString();
      out += " ";
    }
    out += "\n";
  }
  return out;
}

}  // namespace ccr::sat
