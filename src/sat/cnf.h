// CNF formula container with pooled clause storage.
//
// The encoder (Φ(Se), §V-A) can emit hundreds of thousands of clauses per
// entity; storing every clause as its own vector would fragment the heap,
// so literals live in one contiguous pool with an offset table — the same
// layout database engines use for packed row storage.

#ifndef CCR_SAT_CNF_H_
#define CCR_SAT_CNF_H_

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "src/sat/literal.h"

namespace ccr::sat {

/// \brief An immutable-after-append list of clauses over vars [0, num_vars).
class Cnf {
 public:
  Cnf() = default;

  /// Grows the variable universe to at least `n` variables.
  void EnsureVars(int n) {
    if (n > num_vars_) num_vars_ = n;
  }

  /// Allocates one fresh variable; returns its id.
  Var NewVar() { return num_vars_++; }

  int num_vars() const { return num_vars_; }
  int num_clauses() const { return static_cast<int>(starts_.size()) - 1; }

  /// Total number of literal slots across clauses.
  int64_t num_literals() const {
    return static_cast<int64_t>(pool_.size());
  }

  /// Appends a clause (disjunction of `lits`). Empty clauses are allowed
  /// and make the formula trivially unsatisfiable.
  void AddClause(std::span<const Lit> lits);
  void AddClause(std::initializer_list<Lit> lits) {
    AddClause(std::span<const Lit>(lits.begin(), lits.size()));
  }

  /// Convenience: unit / binary / ternary clauses.
  void AddUnit(Lit a) { AddClause({a}); }
  void AddBinary(Lit a, Lit b) { AddClause({a, b}); }
  void AddTernary(Lit a, Lit b, Lit c) { AddClause({a, b, c}); }

  /// View of clause `i`'s literals.
  std::span<const Lit> clause(int i) const {
    return std::span<const Lit>(pool_.data() + starts_[i],
                                starts_[i + 1] - starts_[i]);
  }

  /// Renders a compact textual summary ("p cnf V C" plus clause list when
  /// small) for diagnostics.
  std::string ToString() const;

  /// Removes every variable and clause but keeps the literal pool's and
  /// offset table's capacity, so a recycled formula (SessionScratch) can
  /// be refilled without re-growing its buffers from cold.
  void Clear() {
    num_vars_ = 0;
    pool_.clear();
    starts_.clear();
    starts_.push_back(0);
  }

 private:
  int num_vars_ = 0;
  std::vector<Lit> pool_;
  std::vector<uint32_t> starts_{0};
};

}  // namespace ccr::sat

#endif  // CCR_SAT_CNF_H_
