#include "src/sat/dimacs.h"

#include <sstream>
#include <vector>

#include "src/common/strings.h"

namespace ccr::sat {

std::string ToDimacs(const Cnf& cnf) {
  std::string out = "p cnf " + std::to_string(cnf.num_vars()) + " " +
                    std::to_string(cnf.num_clauses()) + "\n";
  for (int i = 0; i < cnf.num_clauses(); ++i) {
    for (Lit l : cnf.clause(i)) {
      const int signed_var = (l.var() + 1) * (l.negated() ? -1 : 1);
      out += std::to_string(signed_var);
      out += " ";
    }
    out += "0\n";
  }
  return out;
}

Result<Cnf> FromDimacs(const std::string& text) {
  Cnf cnf;
  std::istringstream in(text);
  std::string line;
  std::vector<Lit> clause;
  while (std::getline(in, line)) {
    std::string_view sv = StripWhitespace(line);
    if (sv.empty() || sv[0] == 'c') continue;
    if (sv[0] == 'p') {
      // "p cnf V C": pre-size the variable universe.
      auto parts = Split(sv, ' ');
      for (const auto& p : parts) {
        int64_t v = 0;
        if (ParseInt64(StripWhitespace(p), &v) && v > 0) {
          cnf.EnsureVars(static_cast<int>(v));
          break;
        }
      }
      continue;
    }
    std::istringstream ls{std::string(sv)};
    int64_t x = 0;
    while (ls >> x) {
      if (x == 0) {
        cnf.AddClause(std::span<const Lit>(clause.data(), clause.size()));
        clause.clear();
      } else {
        const Var v = static_cast<Var>((x > 0 ? x : -x) - 1);
        // Headerless input must still satisfy the Cnf invariant that every
        // clause ranges over [0, num_vars).
        cnf.EnsureVars(v + 1);
        clause.push_back(Lit(v, x < 0));
      }
    }
  }
  if (!clause.empty()) {
    return Status::InvalidArgument("unterminated clause in DIMACS input");
  }
  return cnf;
}

}  // namespace ccr::sat
