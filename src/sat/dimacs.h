// DIMACS CNF serialization, for interoperability with external SAT tooling
// and for snapshotting Φ(Se) instances in tests.

#ifndef CCR_SAT_DIMACS_H_
#define CCR_SAT_DIMACS_H_

#include <string>

#include "src/common/status.h"
#include "src/sat/cnf.h"

namespace ccr::sat {

/// Renders `cnf` in DIMACS format ("p cnf <vars> <clauses>" header,
/// 1-based signed literals, 0-terminated clauses).
std::string ToDimacs(const Cnf& cnf);

/// Parses DIMACS text. Accepts comment lines ('c ...') and tolerates a
/// missing header; literal 0 terminates each clause.
Result<Cnf> FromDimacs(const std::string& text);

}  // namespace ccr::sat

#endif  // CCR_SAT_DIMACS_H_
