// Boolean variables and literals for the SAT substrate (§V-A).
//
// Variables are dense 0-based integers; a literal packs a variable and a
// sign into one int so it can index watch lists directly (MiniSat layout).

#ifndef CCR_SAT_LITERAL_H_
#define CCR_SAT_LITERAL_H_

#include <cstdint>
#include <string>

namespace ccr::sat {

/// 0-based Boolean variable identifier.
using Var = int32_t;

inline constexpr Var kVarUndef = -1;

/// \brief A possibly negated variable; index() = 2*var + sign.
class Lit {
 public:
  constexpr Lit() : x_(-2) {}
  constexpr Lit(Var v, bool negated) : x_(v + v + (negated ? 1 : 0)) {}

  /// Positive literal of v.
  static constexpr Lit Pos(Var v) { return Lit(v, false); }
  /// Negative literal of v.
  static constexpr Lit Neg(Var v) { return Lit(v, true); }
  /// Reconstructs a literal from its index().
  static constexpr Lit FromIndex(int32_t idx) {
    Lit l;
    l.x_ = idx;
    return l;
  }

  constexpr Var var() const { return x_ >> 1; }
  constexpr bool negated() const { return x_ & 1; }
  constexpr int32_t index() const { return x_; }

  constexpr Lit operator~() const { return FromIndex(x_ ^ 1); }

  constexpr bool operator==(const Lit& o) const { return x_ == o.x_; }
  constexpr bool operator!=(const Lit& o) const { return x_ != o.x_; }
  constexpr bool operator<(const Lit& o) const { return x_ < o.x_; }

  /// Renders "v3" or "~v3".
  std::string ToString() const {
    return (negated() ? "~v" : "v") + std::to_string(var());
  }

 private:
  int32_t x_;
};

inline constexpr Lit kLitUndef{};

/// Three-valued assignment state.
enum class Lbool : uint8_t { kFalse = 0, kTrue = 1, kUndef = 2 };

/// Applies a literal's sign to a variable's value.
inline Lbool LboolOf(Lbool var_value, bool negated) {
  if (var_value == Lbool::kUndef) return Lbool::kUndef;
  const bool b = (var_value == Lbool::kTrue) != negated;
  return b ? Lbool::kTrue : Lbool::kFalse;
}

}  // namespace ccr::sat

#endif  // CCR_SAT_LITERAL_H_
