// Portfolio race implementation: team lifecycle, formula mirroring, the
// clause-sharing ring protocol, and the race itself. See portfolio.h for
// the design and the determinism contract.

#include "src/sat/portfolio.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "src/common/status.h"
#include "src/sat/solver.h"

namespace ccr::sat {

// Out of line because PortfolioTeam is incomplete in solver.h.
Solver::~Solver() = default;

void ClauseShareRing::BeginRace(int workers) {
  workers_ = workers;
  while (bufs_.size() < static_cast<size_t>(workers)) {
    bufs_.push_back(std::make_unique<ClauseExportBuf>());
  }
  for (int w = 0; w < workers; ++w) bufs_[w]->Reset();
  cursors_.assign(static_cast<size_t>(workers),
                  std::vector<size_t>(static_cast<size_t>(workers), 0));
}

PortfolioTeam::PortfolioTeam(const SolverOptions& master_options,
                             int workers) {
  helpers.reserve(static_cast<size_t>(workers - 1));
  for (int w = 1; w < workers; ++w) {
    helpers.push_back(
        std::make_unique<Solver>(DiversifiedOptions(master_options, w)));
  }
}

SolverOptions PortfolioTeam::DiversifiedOptions(const SolverOptions& base,
                                                int w) {
  SolverOptions o = base;
  // Helpers never race recursively, never simplify (the master owns
  // inprocessing/BVE; a helper that eliminated variables could no longer
  // adopt-export its models), never run local search (pure CDCL keeps a
  // helper's whole budget on search), and never answer from a model
  // cache (their solves are always real races).
  o.portfolio_threads = 0;
  o.use_inprocessing = false;
  o.use_bve = false;
  o.use_sls_seeding = false;
  o.use_sls_probing = false;
  o.use_model_cache = false;
  // Diversity: each slot flips a different corner of the flag matrix the
  // ablation suite already proves verdict-neutral, so every helper
  // explores a genuinely different search trajectory on the same
  // formula.
  switch (w % 4) {
    case 1:
      o.use_ema_restarts = false;  // Luby cadence vs. the master's EMA
      break;
    case 2:
      o.use_deep_ccmin = false;  // longer learnts, different 1-UIP shape
      o.var_decay = 0.85;        // faster-moving VSIDS focus
      break;
    case 3:
      o.use_phase_saving = false;  // default-false polarities
      o.var_decay = 0.75;
      break;
    default:  // w % 4 == 0
      o.use_ema_restarts = false;
      o.use_lbd_tiers = false;  // MiniSat-style activity-only learnt DB
      break;
  }
  return o;
}

void Solver::SyncTeam() {
  if (team_ == nullptr) {
    team_ = std::make_unique<PortfolioTeam>(options_,
                                            options_.portfolio_threads);
  }
  // Replay the mirror op log into every helper, in call order, so each
  // holds the caller's formula with identical variable ids (NewVar
  // allocates densely, so growing to a clause's max var reproduces the
  // master's id assignment). The log then clears: all helpers sync at
  // this single point.
  for (const std::unique_ptr<Solver>& h : team_->helpers) {
    for (const MirrorOp& op : mirror_log_) {
      if (op.is_freeze) {
        Var max_v = op.act.var();
        for (Var v : op.vars) max_v = std::max(max_v, v);
        while (h->num_vars() <= max_v) h->NewVar();
        h->FreezeScope(op.act, op.vars);
      } else {
        h->AddClause(op.lits);  // grows the helper's vars as needed
      }
    }
    // Variables the master allocated that no mirrored op mentions yet
    // (e.g. assumption-only selectors) still need helper-side ids.
    while (h->num_vars() < num_vars()) h->NewVar();
  }
  mirror_log_.clear();
}

void Solver::MaybeExportLearnt(const std::vector<Lit>& learnt, int lbd) {
  if (learnt.size() > static_cast<size_t>(kShareMaxLits)) return;
  if (learnt.size() > 2 && lbd > kShareMaxGlue) return;
  export_buf_->TryPush(learnt, lbd);
}

bool Solver::ImportSharedClause(std::span<const Lit> lits, int glue) {
  CCR_DCHECK(DecisionLevel() == 0);
  if (!ok_) return false;
  // Validation: every variable must exist here, and must be neither
  // BVE-eliminated (it no longer exists in this solver's formula) nor
  // scope-frozen (the exporter's scope state may differ). Rejection is
  // always sound — a skipped implied clause changes nothing.
  for (Lit l : lits) {
    if (l.var() < 0 || l.var() >= num_vars()) return false;
    if (eliminated_[l.var()] || frozen_[l.var()]) return false;
  }
  // Evaluate against the level-0 trail, defensively dedup (the exporter
  // is trusted code, but a sorted unique clause is what the attach paths
  // below expect).
  std::vector<Lit> out(lits.begin(), lits.end());
  std::sort(out.begin(), out.end());
  std::vector<Lit> kept;
  Lit prev = kLitUndef;
  for (Lit l : out) {
    if (l == prev) continue;
    if (l == ~prev) return false;  // tautology: nothing to integrate
    const Lbool v = ValueOf(l);
    if (v == Lbool::kTrue) return false;  // already satisfied at level 0
    if (v == Lbool::kFalse) continue;     // false literal: drop
    kept.push_back(l);
    prev = l;
  }
  if (kept.empty()) {
    // Every literal false at level 0: the implied clause is empty, the
    // formula is UNSAT regardless of assumptions.
    ok_ = false;
    return false;
  }
  if (kept.size() == 1) {
    UncheckedEnqueue(kept[0], kRefUndef);
    ok_ = (Propagate() == kRefUndef);
    ++stats_.imported_units;
    return true;
  }
  if (kept.size() == 2 && options_.use_binary_watches) {
    AttachBinary(kept[0], kept[1]);
    if (learnt_binaries_.size() < 4096) {
      learnt_binaries_.emplace_back(kept[0], kept[1]);
    }
    ++stats_.learnt_core;  // kept forever, like any learnt binary
    ++stats_.imported_bins;
    return true;
  }
  const ClauseRef c = AllocClause(kept, /*learnt=*/true);
  SetClauseLbd(c, static_cast<uint32_t>(std::max(glue, 1)));
  if (options_.use_lbd_tiers && glue <= 2) {
    learnts_core_.push_back(c);
    ++stats_.learnt_core;
  } else if (options_.use_lbd_tiers && glue <= 6) {
    learnts_mid_.push_back(c);
    ++stats_.learnt_mid;
  } else {
    learnts_local_.push_back(c);
    ++stats_.learnt_local;
  }
  AttachClause(c);
  if (kept.size() == 2) {
    ++stats_.imported_bins;
  } else {
    ++stats_.imported_lbd;
  }
  return true;
}

bool Solver::ImportSharedClauses() {
  CCR_DCHECK(DecisionLevel() == 0);
  std::vector<Lit> scratch;
  const int n = share_ring_->workers();
  for (int p = 0; p < n; ++p) {
    if (p == share_worker_) continue;
    ClauseExportBuf& buf = share_ring_->buf(p);
    size_t& cur = share_ring_->cursor(share_worker_, p);
    const size_t end = buf.Published();
    for (; cur < end && ok_; ++cur) {
      const SharedClause& sc = buf.At(cur);
      scratch.clear();
      for (int k = 0; k < sc.size; ++k) {
        scratch.push_back(Lit::FromIndex(sc.lits[k]));
      }
      ImportSharedClause(scratch, sc.glue);
    }
  }
  return ok_;
}

void Solver::AdoptExternalModel(const std::vector<Lbool>& m) {
  // Same ring rotation as CacheCurrentModel, but WITHOUT its SLS
  // re-anchor block: the master's assignment here is the level-0 trail
  // only, nowhere near a full model, and must not become the local
  // search verification baseline.
  if (options_.use_model_cache && model_fresh_ && !model_.empty()) {
    if (model_pool_.size() < kModelPoolSize) {
      model_pool_.push_back(model_);
    } else {
      model_pool_[model_pool_next_] = model_;
      model_pool_next_ = (model_pool_next_ + 1) % kModelPoolSize;
    }
  }
  model_ = m;
  // The helper never eliminated variables, so its values for the
  // master's BVE-eliminated variables are genuine — no ExtendModel
  // reconstruction needed, the model is already complete and exact.
  CCR_DCHECK(DebugModelSatisfiesLive(model_));
  if (options_.use_model_cache) model_fresh_ = true;
}

SolveResult Solver::PortfolioRace(std::span<const Lit> assumptions) {
  SyncTeam();
  const int n = options_.portfolio_threads;
  team_->ring.BeginRace(n);

  // Race state. `winner` is CASed exactly once by the first decisive
  // worker; `stop` is the interrupt flag Search and Propagate poll.
  std::atomic<uint8_t> stop{0};
  std::atomic<int> winner{-1};
  std::vector<SolveResult> results(static_cast<size_t>(n),
                                   SolveResult::kUnknown);

  std::vector<SolverStats> helper_before;
  helper_before.reserve(team_->helpers.size());
  for (const std::unique_ptr<Solver>& h : team_->helpers) {
    helper_before.push_back(h->stats_);
  }

  const auto run = [&](int w, Solver* s) {
    s->stop_flag_ = &stop;
    s->share_ring_ = &team_->ring;
    s->export_buf_ = &team_->ring.buf(w);
    s->share_worker_ = w;
    const SolveResult r = s->SolveLoop(assumptions);
    s->stop_flag_ = nullptr;
    s->share_ring_ = nullptr;
    s->export_buf_ = nullptr;
    s->share_worker_ = -1;
    results[static_cast<size_t>(w)] = r;
    if (r != SolveResult::kUnknown) {
      int expected = -1;
      if (winner.compare_exchange_strong(expected, w)) {
        stop.store(1, std::memory_order_release);
      }
    }
  };

  // Helpers get real threads; the master races in the calling thread as
  // worker 0 (its warm VSIDS/phase/learnt state is the strongest
  // starting point of the team).
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(n - 1));
  for (int w = 1; w < n; ++w) {
    threads.emplace_back(run, w, team_->helpers[static_cast<size_t>(w - 1)].get());
  }
  run(0, this);
  for (std::thread& t : threads) t.join();

  // Post-race, single-threaded again. Drain the leftover exports into
  // the master: every one is an implied clause the master keeps across
  // solves — a free warm start for the session's next call.
  share_ring_ = &team_->ring;
  share_worker_ = 0;
  ImportSharedClauses();
  share_ring_ = nullptr;
  share_worker_ = -1;

  // Fold the helpers' import work into the master's counters so
  // RoundTrace attribution sees the whole team's sharing traffic.
  ++stats_.portfolio_races;
  for (size_t i = 0; i < team_->helpers.size(); ++i) {
    const SolverStats d = team_->helpers[i]->stats_ - helper_before[i];
    stats_.imported_units += d.imported_units;
    stats_.imported_bins += d.imported_bins;
    stats_.imported_lbd += d.imported_lbd;
  }

  const int win = winner.load(std::memory_order_acquire);
  if (win >= 0) {
    for (int w = 0; w < n; ++w) {
      if (w != win && results[static_cast<size_t>(w)] == SolveResult::kUnknown) {
        ++stats_.cancelled_workers;
      }
    }
  }
  if (win < 0) {
    // Only possible under a max_conflicts budget: every worker ran out.
    return SolveResult::kUnknown;
  }
  if (win == 0) return results[0];

  Solver& h = *team_->helpers[static_cast<size_t>(win - 1)];
  if (results[static_cast<size_t>(win)] == SolveResult::kSat) {
    AdoptExternalModel(h.model_);
    conflict_core_.clear();
    return SolveResult::kSat;
  }
  // kUnsat: the helper's failed-assumption core is valid here verbatim —
  // same formula, and helper learnts are implied by it alone.
  conflict_core_ = h.conflict_core_;
  if (h.IsUnsatForever()) ok_ = false;
  return SolveResult::kUnsat;
}

}  // namespace ccr::sat
