// Portfolio CDCL: N diverse solver configurations racing on one formula,
// exchanging learnt clauses (the DataSync/ThreadControl design from
// portfolio SAT solvers, adapted to this repo's incremental sessions).
//
// The master solver — the session's persistent solver, with its warm
// heap, saved phases, learnt database and model cache — is worker 0 and
// runs in the calling thread. Helpers are persistent Solver instances
// owned by the team, kept formula-synchronized through the master's
// mirror op log, each carrying a diversified SolverOptions derived from
// the master's (restart policy, conflict-clause minimization, phase
// saving, decay — the flag matrix the ablation suite already proves
// verdict-neutral). Helpers skip inprocessing/BVE/SLS/model-cache work:
// the master owns formula simplification, helpers only search.
//
// Clause sharing is a lock-light single-producer ring: each worker
// appends small learnt clauses (units, binaries, low-LBD) to its own
// fixed-capacity buffer and publishes them with one release-store;
// consumers acquire-load the published count and keep private cursors,
// importing only at restart boundaries, where every import is validated
// (unknown/eliminated/frozen variables reject the clause) and integrated
// through level-0 propagation. No locks, no reallocation while threads
// run, no wraparound: a full buffer just stops exporting until the next
// race resets it.
//
// Determinism contract (the headline guarantee, gated by the shard
// byte-identity lanes and tests/portfolio_test.cpp): every shared clause
// is implied by the formula, and the pipeline consumes SAT verdicts
// only, so a portfolio race may change time-to-verdict — never a
// verdict, a failed-assumption core's validity, or any resolution byte.

#ifndef CCR_SAT_PORTFOLIO_H_
#define CCR_SAT_PORTFOLIO_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/sat/literal.h"
#include "src/sat/solver.h"

namespace ccr::sat {

/// Sharing caps: clauses longer than kShareMaxLits never enter the ring
/// (the entry is fixed-size, and long clauses rarely help other
/// configurations), and clauses longer than binary must carry a glue of
/// at most kShareMaxGlue (low-LBD = likely to be reused).
inline constexpr int kShareMaxLits = 8;
inline constexpr int kShareMaxGlue = 4;
/// Per-worker export capacity per race. A full buffer stops exporting —
/// losing late exports costs only potential speedup, never correctness.
inline constexpr size_t kShareBufCap = 1 << 12;

/// One shared clause: literal indices plus the exporter's glue. POD and
/// fixed-size so the ring never allocates while threads run.
struct SharedClause {
  int32_t lits[kShareMaxLits];
  uint8_t size = 0;
  uint8_t glue = 0;
};

/// Single-producer publish buffer. The producer fills entries_[n] and
/// then release-stores published_ = n + 1; a consumer that acquire-loads
/// published_ therefore sees every byte of every entry below it. Only
/// the owning worker pushes; any worker may read.
class alignas(64) ClauseExportBuf {
 public:
  /// Called between races (all worker threads joined): pre-sizes the
  /// buffer so TryPush never reallocates concurrently.
  void Reset() {
    entries_.resize(kShareBufCap);
    published_.store(0, std::memory_order_relaxed);
  }

  /// Producer only. Returns false when the clause exceeds the caps or
  /// the buffer is full.
  bool TryPush(std::span<const Lit> lits, int glue) {
    const size_t n = published_.load(std::memory_order_relaxed);
    if (n >= entries_.size()) return false;
    if (lits.size() > static_cast<size_t>(kShareMaxLits)) return false;
    SharedClause& sc = entries_[n];
    sc.size = static_cast<uint8_t>(lits.size());
    sc.glue = static_cast<uint8_t>(std::min(glue, 255));
    for (size_t i = 0; i < lits.size(); ++i) {
      sc.lits[i] = lits[i].index();
    }
    published_.store(n + 1, std::memory_order_release);
    return true;
  }

  size_t Published() const {
    return published_.load(std::memory_order_acquire);
  }
  const SharedClause& At(size_t i) const { return entries_[i]; }

 private:
  std::vector<SharedClause> entries_;
  std::atomic<size_t> published_{0};
};

/// The per-race sharing fabric: one export buffer per worker plus a
/// cursor matrix. cursors(consumer, producer) is read and written by the
/// consumer's thread only.
class ClauseShareRing {
 public:
  /// Called by the master with all threads joined.
  void BeginRace(int workers);

  int workers() const { return workers_; }
  ClauseExportBuf& buf(int worker) { return *bufs_[worker]; }
  size_t& cursor(int consumer, int producer) {
    return cursors_[consumer][producer];
  }

 private:
  int workers_ = 0;
  // unique_ptr per buffer: ClauseExportBuf is neither movable (atomic)
  // nor something adjacent workers should share a cache line of.
  std::vector<std::unique_ptr<ClauseExportBuf>> bufs_;
  std::vector<std::vector<size_t>> cursors_;
};

/// The helper solvers plus the sharing fabric, owned by the master
/// solver and persistent across races (helpers keep their learnt
/// databases and heuristic state warm between solves, exactly like the
/// master).
class PortfolioTeam {
 public:
  /// Creates workers - 1 helpers with DiversifiedOptions applied.
  PortfolioTeam(const SolverOptions& master_options, int workers);

  /// The helper configuration for worker index w (1-based: worker 0 is
  /// the master and keeps its options untouched). Derived from the
  /// master's options with portfolio/inprocessing/BVE/SLS/model-cache
  /// off, then diversified over restart policy, minimization depth,
  /// phase saving and activity decay.
  static SolverOptions DiversifiedOptions(const SolverOptions& base, int w);

  std::vector<std::unique_ptr<Solver>> helpers;
  ClauseShareRing ring;
};

}  // namespace ccr::sat

#endif  // CCR_SAT_PORTFOLIO_H_
