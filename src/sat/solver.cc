#include "src/sat/solver.h"

#include <algorithm>
#include <climits>
#include <cmath>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/sat/portfolio.h"  // completes PortfolioTeam for team_

namespace ccr::sat {

namespace {

// Glucose-style restart tuning: restart when the short-term glue average
// exceeds the long-term one by this margin, but never within the first
// kEmaMinConflicts conflicts of a restart (the EMAs need samples first).
constexpr double kEmaFastAlpha = 1.0 / 32.0;
constexpr double kEmaSlowAlpha = 1.0 / 4096.0;
constexpr double kEmaRestartMargin = 1.25;
constexpr int64_t kEmaMinConflicts = 32;

// Inprocessing budgets per Simplify() call, so the between-round pass
// stays a small fraction of the round's solve time even on the first call
// (which sees the whole initial encoding, not just a delta).
constexpr int64_t kSubsumptionStepBudget = 2'000'000;  // literal compares
constexpr int64_t kVivifyPropBudget = 200'000;         // trail literals

// A relocated clause leaves this in its header slot, with the forwarding
// reference in the next word. No live header can collide: the smallest
// stored clause has size 2, so every real header is >= (2 << 3) = 16.
constexpr uint32_t kMovedHeader = 7;

// Bounded variable elimination limits (SatELite-style): skip a variable
// whose occurrence side exceeds kBveOccLimit clauses, or whose resolvents
// would exceed the clauses removed (no-growth rule) or grow past
// kBveResolventLitCap literals.
constexpr size_t kBveOccLimit = 16;
constexpr size_t kBveResolventLitCap = 64;

// Stochastic local search (SeedFromLocalSearch) auto-budget: flips per
// try scale with the number of unfixed variables in the active
// subformula, capped so a huge session solver never spends more than a
// small slice of a real solve on seeding.
constexpr int64_t kSlsFlipsBase = 256;
constexpr int64_t kSlsFlipsPerVar = 1;
constexpr int64_t kSlsFlipsCap = 1 << 13;
// Greedy repair (the middle tier between "phases are already a model"
// and the full WalkSAT search): only attempted when the evaluation scan
// finds at most kSlsRepairMaxUnsat falsified clauses, and bounded to
// kSlsRepairMaxFlips minimum-break flips before giving up.
constexpr size_t kSlsRepairMaxUnsat = 64;
constexpr int64_t kSlsRepairMaxFlips = 512;
constexpr int kSlsRepairRounds = 3;
// Soft-improvement pass: per falsified soft, the repair chain triggered
// by flipping it true may spend this many flips before rolling back.
// Deliberately small: successful chains are short (the soft was one
// near-satisfied implication away), and failed chains are pure cost.
constexpr int64_t kSlsSoftChainFlips = 24;
// Incremental verification cache limits: fall back to a full scan when
// more variables changed since the last verified assignment, and void
// the cache when more problem binaries were added than the log holds.
constexpr size_t kSlsDiffMaxVars = 2048;
constexpr size_t kSlsBinLogCap = 4096;
// Base of the salted RNG seed stream (arbitrary fixed constant).
constexpr uint64_t kSlsSeedBase = 0x51e5'5eed'c0de'2013ULL;

}  // namespace

Solver::Solver(SolverOptions options) : options_(options) {}

Var Solver::NewVar() {
  const Var v = static_cast<Var>(assigns_.size());
  assigns_.push_back(Lbool::kUndef);
  polarity_.push_back(false);
  frozen_.push_back(0);
  level_.push_back(0);
  reason_.push_back(kRefUndef);
  activity_.push_back(0.0);
  heap_pos_.push_back(-1);
  seen_.push_back(0);
  // 2 watch lists (and 2 binary implication lists) per var; after a Reset
  // the lists (already cleared) are still there and keep their buffers.
  while (watches_.size() < 2 * static_cast<size_t>(v) + 2) {
    watches_.emplace_back();
  }
  while (bins_.size() < 2 * static_cast<size_t>(v) + 2) {
    bins_.emplace_back();
  }
  while (occur_.size() < static_cast<size_t>(v) + 1) {
    occur_.emplace_back();
  }
  eliminable_.push_back(0);
  eliminated_.push_back(0);
  HeapInsert(v);
  return v;
}

void Solver::Reset(SolverOptions options) {
  options_ = options;
  stats_ = {};
  last_call_ = {};
  ok_ = true;
  arena_.clear();
  clauses_.clear();
  sls_verified_val_.clear();
  sls_verified_clauses_ = 0;
  sls_epoch_ = 0;
  sls_verified_epoch_ = 0;
  sls_bin_log_overflow_ = false;
  sls_new_bins_.clear();
  learnts_core_.clear();
  learnts_mid_.clear();
  learnts_local_.clear();
  // Keep the outer vectors (and each inner list's buffer); NewVar re-adopts
  // the lists as the variable universe regrows.
  for (std::vector<Watcher>& ws : watches_) ws.clear();
  for (std::vector<Lit>& bs : bins_) bs.clear();
  learnt_binaries_.clear();
  bin_conflict_[0] = bin_conflict_[1] = kLitUndef;
  assigns_.clear();
  polarity_.clear();
  frozen_.clear();
  level_.clear();
  reason_.clear();
  trail_.clear();
  trail_lim_.clear();
  qhead_ = 0;
  bhead_ = 0;
  activity_.clear();
  var_inc_ = 1.0;
  clause_inc_ = 1.0;
  heap_.clear();
  heap_pos_.clear();
  seen_.clear();
  analyze_stack_.clear();
  analyze_toclear_.clear();
  lbd_stamp_.clear();
  lbd_counter_ = 0;
  model_.clear();
  conflict_core_.clear();
  ema_fast_ = 0;
  ema_slow_ = 0;
  ema_seeded_ = false;
  conflicts_since_restart_ = 0;
  max_learnts_ = 0;
  reduce_calls_ = 0;
  inproc_watermark_ = 0;
  pending_bins_.clear();
  vivify_primed_ = false;
  arena_dead_words_ = 0;
  arena_peak_words_ = 0;
  arena_tmp_.clear();
  for (std::vector<ClauseRef>& o : occur_) o.clear();
  eliminable_.clear();
  eliminated_.clear();
  elim_candidates_.clear();
  elim_stack_.clear();
  model_fresh_ = false;
  model_pool_.clear();
  model_pool_next_ = 0;
  probe_base_level_ = -1;
  // The scratch buffers keep their capacity; only the salt is observable
  // (it drives the local-search RNG stream).
  sls_salt_ = 0;
  mirror_log_.clear();
  team_.reset();
  stop_flag_ = nullptr;
  share_ring_ = nullptr;
  export_buf_ = nullptr;
  share_worker_ = -1;
  conflict_cap_ = -1;
}

Solver::ClauseRef Solver::AllocClause(const std::vector<Lit>& lits,
                                      bool learnt) {
  const ClauseRef ref = static_cast<ClauseRef>(arena_.size());
  // Arena references must leave bit 31 free for the literal-encoded
  // binary reasons.
  CCR_CHECK(ref < kRefBinaryFlag);
  arena_.push_back((static_cast<uint32_t>(lits.size()) << 3) |
                   (learnt ? 1u : 0u));
  arena_.push_back(0);  // activity bits
  arena_.push_back(0);  // LBD
  for (Lit l : lits) {
    arena_.push_back(static_cast<uint32_t>(l.index()));
  }
  arena_peak_words_ = std::max(arena_peak_words_, arena_.size());
  return ref;
}

void Solver::StoreClauseSig(ClauseRef c) {
  CCR_DCHECK(!ClauseLearnt(c));
  uint64_t s = 0;
  const Lit* lits = ClauseLits(c);
  for (int k = 0; k < ClauseSize(c); ++k) {
    s |= 1ull << (lits[k].var() & 63);
  }
  arena_[c + 1] = static_cast<uint32_t>(s);
  arena_[c + 2] = static_cast<uint32_t>(s >> 32);
}

void Solver::AttachClause(ClauseRef c) {
  CCR_DCHECK(ClauseSize(c) >= 2);
  const Lit* lits = ClauseLits(c);
  watches_[(~lits[0]).index()].push_back({c, lits[1]});
  watches_[(~lits[1]).index()].push_back({c, lits[0]});
}

void Solver::DetachClause(ClauseRef c) {
  const Lit* lits = ClauseLits(c);
  for (int i = 0; i < 2; ++i) {
    auto& ws = watches_[(~lits[i]).index()];
    for (size_t j = 0; j < ws.size(); ++j) {
      if (ws[j].cref == c) {
        ws[j] = ws.back();
        ws.pop_back();
        break;
      }
    }
  }
}

void Solver::AttachBinary(Lit a, Lit b) {
  bins_[(~a).index()].push_back(b);
  bins_[(~b).index()].push_back(a);
}

bool Solver::AddClause(std::vector<Lit> lits) {
  if (!ok_) return false;
  CCR_DCHECK(DecisionLevel() == 0);
  InvalidateModelCache();
  for (Lit l : lits) {
    while (l.var() >= num_vars()) NewVar();
    // Eliminated variables no longer exist in the formula; a caller that
    // mentions one after MarkEliminable took effect is a contract breach.
    CCR_CHECK(!eliminated_[l.var()]);
  }
  if (options_.portfolio_threads > 1) {
    // Mirror the raw caller clause for the helper team (SyncTeam). BVE
    // resolvents and shared-clause imports go through AddClauseInternal
    // and are deliberately not logged: helpers derive their own.
    MirrorOp op;
    op.lits = lits;
    mirror_log_.push_back(std::move(op));
  }
  return AddClauseInternal(std::move(lits));
}

bool Solver::AddClauseInternal(std::vector<Lit> lits) {
  // Simplify: drop duplicate/false literals; detect tautology/satisfied.
  std::sort(lits.begin(), lits.end());
  std::vector<Lit> out;
  Lit prev = kLitUndef;
  for (Lit l : lits) {
    if (l == prev) continue;
    if (l == ~prev) return true;  // tautology: p ∨ ~p
    const Lbool v = ValueOf(l);
    if (v == Lbool::kTrue) return true;  // already satisfied at level 0
    if (v == Lbool::kFalse) continue;    // already false at level 0
    out.push_back(l);
    prev = l;
  }
  if (out.empty()) {
    ok_ = false;
    return false;
  }
  if (out.size() == 1) {
    UncheckedEnqueue(out[0], kRefUndef);
    ok_ = (Propagate() == kRefUndef);
    return ok_;
  }
  if (out.size() == 2 && options_.use_binary_watches) {
    // Binaries never touch the arena: they live in the implicit
    // implication lists and propagate with literal-encoded reasons.
    AttachBinary(out[0], out[1]);
    if (options_.use_inprocessing) {
      pending_bins_.emplace_back(out[0], out[1]);
    }
    // Log for the incremental SLS verification cache (learnt binaries
    // need no log: they are implied, so any genuine model of the
    // problem clauses satisfies them automatically).
    if (!sls_verified_val_.empty() && !sls_bin_log_overflow_) {
      if (sls_new_bins_.size() < kSlsBinLogCap) {
        sls_new_bins_.emplace_back(out[0], out[1]);
      } else {
        sls_bin_log_overflow_ = true;
      }
    }
    return true;
  }
  const ClauseRef c = AllocClause(out, /*learnt=*/false);
  StoreClauseSig(c);
  clauses_.push_back(c);
  if (TrackOccurrences()) {
    for (Lit l : out) occur_[l.var()].push_back(c);
  }
  AttachClause(c);
  return true;
}

void Solver::AddCnfFrom(const Cnf& cnf, int first_clause) {
  while (num_vars() < cnf.num_vars()) NewVar();
  std::vector<Lit> scratch;
  for (int i = first_clause; i < cnf.num_clauses(); ++i) {
    auto span = cnf.clause(i);
    scratch.assign(span.begin(), span.end());
    AddClause(std::move(scratch));
    scratch.clear();
  }
}

void Solver::UncheckedEnqueue(Lit p, ClauseRef from) {
  CCR_DCHECK(ValueOf(p) == Lbool::kUndef);
  assigns_[p.var()] = p.negated() ? Lbool::kFalse : Lbool::kTrue;
  level_[p.var()] = DecisionLevel();
  reason_[p.var()] = from;
  trail_.push_back(p);
}

Solver::ClauseRef Solver::Propagate() {
  ClauseRef conflict = kRefUndef;
  const bool use_bins = options_.use_binary_watches;
  while (qhead_ < trail_.size()) {
    // Portfolio interrupt: another worker won. Bail mid-trail — qhead_
    // persists, so whatever is left propagates on the next call. Search
    // re-checks the flag before trusting a "no conflict" answer.
    if (StopRequested()) break;
    if (use_bins) {
      // Binary-first BFS: drain every pending binary implication before
      // touching a long clause. Binaries resolve with one contiguous list
      // scan — no arena access, no watcher juggling.
      while (bhead_ < trail_.size()) {
        const Lit bp = trail_[bhead_++];
        for (const Lit q : bins_[bp.index()]) {
          const Lbool v = ValueOf(q);
          if (v == Lbool::kTrue) continue;
          if (v == Lbool::kFalse) {
            bin_conflict_[0] = q;
            bin_conflict_[1] = ~bp;
            qhead_ = bhead_ = trail_.size();
            return kRefBinConflict;
          }
          ++stats_.binary_propagations;
          UncheckedEnqueue(q, MakeBinaryRef(~bp));
        }
      }
    }
    const Lit p = trail_[qhead_++];
    ++stats_.propagations;
    auto& ws = watches_[p.index()];
    size_t i = 0, j = 0;
    const size_t n = ws.size();
    while (i < n) {
      Watcher w = ws[i];
      if (ValueOf(w.blocker) == Lbool::kTrue) {
        ws[j++] = ws[i++];
        continue;
      }
      const ClauseRef c = w.cref;
      Lit* lits = ClauseLits(c);
      const int size = ClauseSize(c);
      // Normalize so the false literal (~p) is at position 1.
      const Lit not_p = ~p;
      if (lits[0] == not_p) std::swap(lits[0], lits[1]);
      CCR_DCHECK(lits[1] == not_p);
      ++i;
      // 0th watch true => clause satisfied.
      if (lits[0] != w.blocker && ValueOf(lits[0]) == Lbool::kTrue) {
        ws[j++] = {c, lits[0]};
        continue;
      }
      // Look for a new literal to watch.
      bool found = false;
      for (int k = 2; k < size; ++k) {
        if (ValueOf(lits[k]) != Lbool::kFalse) {
          std::swap(lits[1], lits[k]);
          watches_[(~lits[1]).index()].push_back({c, lits[0]});
          found = true;
          break;
        }
      }
      if (found) continue;
      // Clause is unit or conflicting.
      ws[j++] = {c, lits[0]};
      if (ValueOf(lits[0]) == Lbool::kFalse) {
        conflict = c;
        qhead_ = bhead_ = trail_.size();
        while (i < n) ws[j++] = ws[i++];
      } else {
        UncheckedEnqueue(lits[0], c);
      }
    }
    ws.resize(j);
    if (conflict != kRefUndef) break;
  }
  return conflict;
}

void Solver::VarBump(Var v) {
  activity_[v] += var_inc_;
  if (activity_[v] > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
  if (heap_pos_[v] >= 0) HeapDecrease(v);
}

void Solver::ClauseBump(ClauseRef c) {
  const float act = ClauseActivity(c) + static_cast<float>(clause_inc_);
  SetClauseActivity(c, act);
  if (act > 1e20f) {
    for (ClauseRef l : learnts_core_) {
      SetClauseActivity(l, ClauseActivity(l) * 1e-20f);
    }
    for (ClauseRef l : learnts_mid_) {
      SetClauseActivity(l, ClauseActivity(l) * 1e-20f);
    }
    for (ClauseRef l : learnts_local_) {
      SetClauseActivity(l, ClauseActivity(l) * 1e-20f);
    }
    clause_inc_ *= 1e-20;
  }
}

int Solver::ComputeLbd(std::span<const Lit> lits) {
  if (lbd_stamp_.size() < trail_lim_.size() + 1) {
    lbd_stamp_.resize(trail_lim_.size() + 1, 0);
  }
  ++lbd_counter_;
  int lbd = 0;
  for (Lit l : lits) {
    const int lev = level_[l.var()];
    if (lev == 0) continue;
    if (lbd_stamp_[lev] != lbd_counter_) {
      lbd_stamp_[lev] = lbd_counter_;
      ++lbd;
    }
  }
  return lbd;
}

void Solver::Analyze(ClauseRef conflict, std::vector<Lit>* out_learnt,
                     int* out_btlevel, int* out_lbd) {
  int path_count = 0;
  Lit p = kLitUndef;
  out_learnt->clear();
  out_learnt->push_back(kLitUndef);  // slot for the asserting literal
  size_t index = trail_.size();

  ClauseRef c = conflict;
  do {
    CCR_DCHECK(c != kRefUndef);
    Lit bin_buf[2];
    const Lit* lits;
    int size;
    if (c == kRefBinConflict) {
      bin_buf[0] = bin_conflict_[0];
      bin_buf[1] = bin_conflict_[1];
      lits = bin_buf;
      size = 2;
    } else if (RefIsBinary(c)) {
      // Reason clause of p is (p ∨ other); position 0 mirrors the arena
      // invariant that lits[0] is the asserting literal.
      bin_buf[0] = p;
      bin_buf[1] = RefLit(c);
      lits = bin_buf;
      size = 2;
    } else {
      if (ClauseLearnt(c)) {
        ClauseBump(c);
        if (options_.use_lbd_tiers) {
          // Glucose-style dynamic glue: a learnt clause participating in
          // analysis refreshes its LBD; improvements promote it at the
          // next ReduceDb.
          const int now = ComputeLbd(
              std::span<const Lit>(ClauseLits(c), ClauseSize(c)));
          if (now > 0 && static_cast<uint32_t>(now) < ClauseLbd(c)) {
            SetClauseLbd(c, static_cast<uint32_t>(now));
          }
        }
      }
      lits = ClauseLits(c);
      size = ClauseSize(c);
    }
    for (int k = (p == kLitUndef) ? 0 : 1; k < size; ++k) {
      const Lit q = lits[k];
      const Var v = q.var();
      if (!seen_[v] && level_[v] > 0) {
        seen_[v] = 1;
        VarBump(v);
        if (level_[v] >= DecisionLevel()) {
          ++path_count;
        } else {
          out_learnt->push_back(q);
        }
      }
    }
    // Select next literal on the current level to resolve on.
    while (!seen_[trail_[--index].var()]) {
    }
    p = trail_[index];
    c = reason_[p.var()];
    seen_[p.var()] = 0;
    --path_count;
  } while (path_count > 0);
  (*out_learnt)[0] = ~p;

  // Conflict-clause minimization: drop literals implied by the rest.
  // Snapshot the pre-minimization literals first: the loops below compact
  // the clause in place, so dropped literals are overwritten and only this
  // snapshot can clear their seen_ marks afterwards. A stale seen_ bit
  // would make every later Analyze skip that variable entirely —
  // producing learnt clauses that are not implied by the formula.
  std::vector<Lit>& learnt = *out_learnt;
  analyze_toclear_.assign(learnt.begin(), learnt.end());
  size_t keep = 1;
  if (options_.use_deep_ccmin) {
    // Recursive (deep) minimization: a literal is redundant if every
    // antecedent chain from it bottoms out in other learnt literals (or
    // level 0). The abstract-level filter prunes chains that could only
    // fail.
    uint32_t abstract_levels = 0;
    for (size_t k = 1; k < learnt.size(); ++k) {
      abstract_levels |= 1u << (level_[learnt[k].var()] & 31);
    }
    for (size_t k = 1; k < learnt.size(); ++k) {
      if (reason_[learnt[k].var()] == kRefUndef ||
          !LitRedundant(learnt[k], abstract_levels)) {
        learnt[keep++] = learnt[k];
      }
    }
  } else {
    // One-step check: redundant if the reason's other literals are all
    // already in the learnt clause (or level 0).
    for (size_t k = 1; k < learnt.size(); ++k) {
      const Var v = learnt[k].var();
      const ClauseRef r = reason_[v];
      bool redundant = false;
      if (r != kRefUndef) {
        if (RefIsBinary(r)) {
          const Lit other = RefLit(r);
          redundant = seen_[other.var()] || level_[other.var()] == 0;
        } else {
          redundant = true;
          const Lit* rl = ClauseLits(r);
          const int rs = ClauseSize(r);
          for (int m = 1; m < rs; ++m) {
            const Var w = rl[m].var();
            if (!seen_[w] && level_[w] > 0) {
              redundant = false;
              break;
            }
          }
        }
      }
      if (!redundant) learnt[keep++] = learnt[k];
    }
  }
  stats_.learnt_literals += static_cast<int64_t>(keep);
  learnt.resize(keep);

  // Backtrack level: highest level among the non-asserting literals.
  if (learnt.size() == 1) {
    *out_btlevel = 0;
  } else {
    size_t max_i = 1;
    for (size_t k = 2; k < learnt.size(); ++k) {
      if (level_[learnt[k].var()] > level_[learnt[max_i].var()]) max_i = k;
    }
    std::swap(learnt[1], learnt[max_i]);
    *out_btlevel = level_[learnt[1].var()];
  }
  *out_lbd = ComputeLbd(std::span<const Lit>(learnt.data(), learnt.size()));
  // The snapshot covers every kept literal, every dropped one, and every
  // mark LitRedundant added.
  for (Lit l : analyze_toclear_) seen_[l.var()] = 0;
  analyze_toclear_.clear();
}

bool Solver::LitRedundant(Lit p, uint32_t abstract_levels) {
  analyze_stack_.clear();
  analyze_stack_.push_back(p);
  const size_t top = analyze_toclear_.size();
  while (!analyze_stack_.empty()) {
    const Lit q = analyze_stack_.back();
    analyze_stack_.pop_back();
    const ClauseRef r = reason_[q.var()];
    CCR_DCHECK(r != kRefUndef);
    // Antecedents of q: the reason clause minus q's own (asserting)
    // literal — for a binary reason that is exactly the encoded literal.
    Lit bin_other = kLitUndef;
    const Lit* lits;
    int size;
    if (RefIsBinary(r)) {
      bin_other = RefLit(r);
      lits = &bin_other;
      size = 1;
    } else {
      lits = ClauseLits(r) + 1;
      size = ClauseSize(r) - 1;
    }
    for (int k = 0; k < size; ++k) {
      const Lit l = lits[k];
      const Var v = l.var();
      if (seen_[v] || level_[v] == 0) continue;
      if (reason_[v] != kRefUndef &&
          ((1u << (level_[v] & 31)) & abstract_levels) != 0) {
        seen_[v] = 1;
        analyze_stack_.push_back(l);
        analyze_toclear_.push_back(l);
      } else {
        // Not removable: undo the marks this call added.
        for (size_t j = top; j < analyze_toclear_.size(); ++j) {
          seen_[analyze_toclear_[j].var()] = 0;
        }
        analyze_toclear_.resize(top);
        return false;
      }
    }
  }
  return true;
}

void Solver::AnalyzeFinal(Lit p, std::vector<Lit>* out_core) {
  out_core->clear();
  out_core->push_back(p);
  if (DecisionLevel() == 0) return;
  seen_[p.var()] = 1;
  for (size_t i = trail_.size();
       i-- > static_cast<size_t>(trail_lim_[0]);) {
    const Var v = trail_[i].var();
    if (!seen_[v]) continue;
    const ClauseRef r = reason_[v];
    if (r == kRefUndef) {
      if (level_[v] > 0) out_core->push_back(~trail_[i]);
    } else if (RefIsBinary(r)) {
      const Lit other = RefLit(r);
      if (level_[other.var()] > 0) seen_[other.var()] = 1;
    } else {
      const Lit* lits = ClauseLits(r);
      const int size = ClauseSize(r);
      for (int k = 1; k < size; ++k) {
        if (level_[lits[k].var()] > 0) seen_[lits[k].var()] = 1;
      }
    }
    seen_[v] = 0;
  }
  seen_[p.var()] = 0;
}

void Solver::CancelUntil(int target) {
  if (DecisionLevel() <= target) return;
  const size_t keep = static_cast<size_t>(trail_lim_[target]);
  for (size_t i = trail_.size(); i-- > keep;) {
    const Var v = trail_[i].var();
    assigns_[v] = Lbool::kUndef;
    if (options_.use_phase_saving) polarity_[v] = trail_[i].negated();
    reason_[v] = kRefUndef;
    if (heap_pos_[v] < 0) HeapInsert(v);
  }
  trail_.resize(trail_lim_[target]);
  trail_lim_.resize(target);
  qhead_ = trail_.size();
  bhead_ = qhead_;
}

// --- decision heap -------------------------------------------------------

void Solver::HeapInsert(Var v) {
  // Released scope variables are frozen false at level 0 and must never
  // come back as decision candidates.
  CCR_DCHECK(!frozen_[v]);
  heap_pos_[v] = static_cast<int>(heap_.size());
  heap_.push_back(v);
  HeapDecrease(v);
}

void Solver::HeapDecrease(Var v) {
  // Percolate up by activity.
  int i = heap_pos_[v];
  while (i > 0) {
    const int parent = (i - 1) / 2;
    if (activity_[heap_[parent]] >= activity_[v]) break;
    heap_[i] = heap_[parent];
    heap_pos_[heap_[i]] = i;
    i = parent;
  }
  heap_[i] = v;
  heap_pos_[v] = i;
}

Var Solver::HeapPop() {
  const Var top = heap_[0];
  heap_pos_[top] = -1;
  const Var last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    // Percolate `last` down from the root.
    int i = 0;
    const int n = static_cast<int>(heap_.size());
    while (true) {
      int child = 2 * i + 1;
      if (child >= n) break;
      if (child + 1 < n &&
          activity_[heap_[child + 1]] > activity_[heap_[child]]) {
        ++child;
      }
      if (activity_[heap_[child]] <= activity_[last]) break;
      heap_[i] = heap_[child];
      heap_pos_[heap_[i]] = i;
      i = child;
    }
    heap_[i] = last;
    heap_pos_[last] = i;
  }
  return top;
}

Lit Solver::PickBranchLit() {
  Var next = kVarUndef;
  if (options_.use_vsids) {
    while (!HeapEmpty()) {
      next = HeapPop();
      if (assigns_[next] == Lbool::kUndef && !eliminated_[next]) break;
      next = kVarUndef;
    }
  } else {
    for (Var v = 0; v < num_vars(); ++v) {
      if (assigns_[v] == Lbool::kUndef && !eliminated_[v]) {
        next = v;
        break;
      }
    }
  }
  if (next == kVarUndef) return kLitUndef;
  CCR_DCHECK(!frozen_[next]);
  return Lit(next, polarity_[next]);
}

void Solver::RecordLearnt(const std::vector<Lit>& learnt, int lbd) {
  stats_.lbd_sum += lbd;
  if (export_buf_ != nullptr) MaybeExportLearnt(learnt, lbd);
  if (learnt.size() == 1) {
    UncheckedEnqueue(learnt[0], kRefUndef);
    return;
  }
  if (learnt.size() == 2 && options_.use_binary_watches) {
    AttachBinary(learnt[0], learnt[1]);
    // Recorded only for the LearntClauses() debug accessor; capped so a
    // conflict-heavy production solve cannot grow it without bound.
    if (learnt_binaries_.size() < 4096) {
      learnt_binaries_.emplace_back(learnt[0], learnt[1]);
    }
    ++stats_.learnt_core;  // binaries are kept forever by construction
    UncheckedEnqueue(learnt[0], MakeBinaryRef(learnt[1]));
    return;
  }
  const ClauseRef c = AllocClause(learnt, /*learnt=*/true);
  SetClauseLbd(c, static_cast<uint32_t>(std::max(lbd, 1)));
  if (options_.use_lbd_tiers) {
    if (lbd <= 2) {
      learnts_core_.push_back(c);
      ++stats_.learnt_core;
    } else if (lbd <= 6) {
      learnts_mid_.push_back(c);
      ++stats_.learnt_mid;
    } else {
      learnts_local_.push_back(c);
      ++stats_.learnt_local;
    }
  } else {
    learnts_local_.push_back(c);
    ++stats_.learnt_local;
  }
  AttachClause(c);
  ClauseBump(c);
  UncheckedEnqueue(learnt[0], c);
}

void Solver::ReduceDb() {
  // Legacy single-tier reduction: keep the most active half of learnt
  // clauses; never drop reasons.
  std::vector<ClauseRef>& learnts = learnts_local_;
  std::sort(learnts.begin(), learnts.end(),
            [this](ClauseRef a, ClauseRef b) {
              return ClauseActivity(a) > ClauseActivity(b);
            });
  size_t keep = learnts.size() / 2;
  std::vector<ClauseRef> kept;
  kept.reserve(keep + 16);
  for (size_t i = 0; i < learnts.size(); ++i) {
    const ClauseRef c = learnts[i];
    const Lit first = ClauseLits(c)[0];
    const bool is_reason = assigns_[first.var()] != Lbool::kUndef &&
                           reason_[first.var()] == c;
    if (i < keep || ClauseSize(c) == 2 || is_reason) {
      kept.push_back(c);
    } else {
      DetachClause(c);
      MarkClauseDead(c);
    }
  }
  learnts.swap(kept);
}

void Solver::ReduceDbTiered() {
  ++reduce_calls_;
  auto is_reason = [this](ClauseRef c) {
    const Lit first = ClauseLits(c)[0];
    return assigns_[first.var()] != Lbool::kUndef &&
           reason_[first.var()] == c;
  };
  // Promote by improved glue (LBDs refreshed during conflict analysis):
  // glue <= 2 graduates to core from either tier, glue <= 6 lifts local
  // clauses into mid.
  auto promote = [&](std::vector<ClauseRef>* list, bool from_local) {
    size_t j = 0;
    for (ClauseRef c : *list) {
      const uint32_t lbd = ClauseLbd(c);
      if (lbd <= 2) {
        learnts_core_.push_back(c);
      } else if (from_local && lbd <= 6) {
        learnts_mid_.push_back(c);
      } else {
        (*list)[j++] = c;
      }
    }
    list->resize(j);
  };
  promote(&learnts_mid_, /*from_local=*/false);
  promote(&learnts_local_, /*from_local=*/true);

  // Local tier: activity-sorted, keep the better half (plus reasons).
  std::sort(learnts_local_.begin(), learnts_local_.end(),
            [this](ClauseRef a, ClauseRef b) {
              return ClauseActivity(a) > ClauseActivity(b);
            });
  const size_t local_keep = learnts_local_.size() / 2;
  std::vector<ClauseRef> kept;
  kept.reserve(local_keep + 16);
  for (size_t i = 0; i < learnts_local_.size(); ++i) {
    const ClauseRef c = learnts_local_[i];
    if (i < local_keep || is_reason(c)) {
      kept.push_back(c);
    } else {
      DetachClause(c);
      MarkClauseDead(c);
    }
  }
  learnts_local_.swap(kept);

  // Mid tier: reduced rarely, by glue then activity.
  if (reduce_calls_ % 3 == 0 && learnts_mid_.size() > 16) {
    std::sort(learnts_mid_.begin(), learnts_mid_.end(),
              [this](ClauseRef a, ClauseRef b) {
                if (ClauseLbd(a) != ClauseLbd(b)) {
                  return ClauseLbd(a) < ClauseLbd(b);
                }
                return ClauseActivity(a) > ClauseActivity(b);
              });
    const size_t mid_keep = learnts_mid_.size() / 2;
    kept.clear();
    kept.reserve(mid_keep + 16);
    for (size_t i = 0; i < learnts_mid_.size(); ++i) {
      const ClauseRef c = learnts_mid_[i];
      if (i < mid_keep || is_reason(c)) {
        kept.push_back(c);
      } else {
        DetachClause(c);
        MarkClauseDead(c);
      }
    }
    learnts_mid_.swap(kept);
  }
}

void Solver::SweepSatisfied(std::vector<ClauseRef>* list) {
  size_t j = 0;
  for (ClauseRef c : *list) {
    if (ClauseDead(c)) continue;  // removed by inprocessing, already detached
    const Lit* lits = ClauseLits(c);
    const int size = ClauseSize(c);
    bool satisfied = false;
    for (int k = 0; k < size && !satisfied; ++k) {
      satisfied = ValueOf(lits[k]) == Lbool::kTrue;
    }
    if (satisfied) {
      DetachClause(c);
      MarkClauseDead(c);
    } else {
      (*list)[j++] = c;
    }
  }
  list->resize(j);
}

void Solver::SweepSatisfiedProblem() {
  CCR_DCHECK(DecisionLevel() == 0);
  for (ClauseRef c : clauses_) {
    if (ClauseDead(c)) continue;
    const Lit* lits = ClauseLits(c);
    const int size = ClauseSize(c);
    bool satisfied = false;
    for (int k = 0; k < size && !satisfied; ++k) {
      satisfied = ValueOf(lits[k]) == Lbool::kTrue;
    }
    if (satisfied) {
      DetachClause(c);
      MarkClauseDead(c);
    }
  }
  CompactProblemClauses();
}

void Solver::CompactProblemClauses() {
  // Compaction shifts clause indices under the SLS verification
  // watermark; void the cache rather than track the shuffle.
  ++sls_epoch_;
  size_t j = 0;
  size_t wm = inproc_watermark_;
  for (size_t i = 0; i < clauses_.size(); ++i) {
    if (ClauseDead(clauses_[i])) {
      if (i < inproc_watermark_) --wm;
      continue;
    }
    clauses_[j++] = clauses_[i];
  }
  clauses_.resize(j);
  inproc_watermark_ = wm;
  CCR_DCHECK(inproc_watermark_ <= clauses_.size());
}

void Solver::RemoveSatisfiedTopLevel() {
  SweepSatisfied(&learnts_core_);
  SweepSatisfied(&learnts_mid_);
  SweepSatisfied(&learnts_local_);
}

void Solver::SweepBinaries() {
  // An entry (p -> q) is dead once either variable is fixed at level 0:
  // p fixed means the list is never scanned again (or was fully
  // propagated), q fixed true means the clause is satisfied, and q fixed
  // false implies p's var was fixed by the same propagation. This is what
  // sweeps the binary clauses of released ScopedVars scopes.
  CCR_DCHECK(DecisionLevel() == 0);
  for (size_t i = 0; i < bins_.size(); ++i) {
    std::vector<Lit>& list = bins_[i];
    if (list.empty()) continue;
    const Lit p = Lit::FromIndex(static_cast<int32_t>(i));
    if (assigns_[p.var()] != Lbool::kUndef) {
      list.clear();
      continue;
    }
    size_t j = 0;
    for (Lit q : list) {
      if (assigns_[q.var()] == Lbool::kUndef) list[j++] = q;
    }
    list.resize(j);
  }
}

bool Solver::Simplify() {
  CCR_DCHECK(DecisionLevel() == 0);
  if (!ok_) return false;
  if (Propagate() != kRefUndef) {
    ok_ = false;
    return false;
  }
  RemoveSatisfiedTopLevel();
  SweepSatisfiedProblem();
  if (options_.use_binary_watches) SweepBinaries();
  if (options_.use_inprocessing) {
    SubsumptionPass();
    if (ok_) VivificationPass();
  }
  if (options_.use_bve && ok_) EliminatePass();
  MaybeGarbageCollect();
  return ok_;
}

void Solver::PrimeInprocessing() {
  for (ClauseRef c : clauses_) SetClauseVivified(c, true);
  vivify_primed_ = true;
  inproc_watermark_ = clauses_.size();
  pending_bins_.clear();
}

bool Solver::FreezeScope(Lit activation, std::span<const Var> vars) {
  if (!ok_) return false;
  CCR_DCHECK(DecisionLevel() == 0);
  InvalidateModelCache();
  if (options_.portfolio_threads > 1) {
    MirrorOp op;
    op.is_freeze = true;
    op.act = activation;
    op.vars.assign(vars.begin(), vars.end());
    mirror_log_.push_back(std::move(op));
  }
  // One batched multi-literal pass: enqueue ¬activation and every ¬v,
  // then run a single propagation fixpoint — instead of one unit clause
  // (each with its own propagation round) per variable.
  const Lit neg_act = ~activation;
  const Lbool av = ValueOf(neg_act);
  if (av == Lbool::kFalse) {
    ok_ = false;
    return false;
  }
  if (av == Lbool::kUndef) UncheckedEnqueue(neg_act, kRefUndef);
  frozen_[activation.var()] = 1;
  for (Var v : vars) {
    const Lbool val = assigns_[v];
    if (val == Lbool::kTrue) {
      // A scope var fixed true at level 0 means the formula already
      // contradicts the freeze — only possible if it is UNSAT.
      ok_ = false;
      return false;
    }
    if (val == Lbool::kUndef) UncheckedEnqueue(Lit::Neg(v), kRefUndef);
    CCR_DCHECK(!eliminated_[v]);
    frozen_[v] = 1;
  }
  ok_ = (Propagate() == kRefUndef);
  return ok_;
}

bool Solver::BeginProbe(std::span<const Lit> base) {
  CCR_DCHECK(probe_base_level_ < 0);
  if (!ok_) return false;
  CancelUntil(0);
  if (Propagate() != kRefUndef) {
    ok_ = false;
    return false;
  }
  // One decision level holds the whole base, so every failed-literal
  // probe backtracks to here instead of re-propagating the guards.
  trail_lim_.push_back(static_cast<int>(trail_.size()));
  for (const Lit a : base) {
    CCR_CHECK(a.var() < num_vars());
    CCR_CHECK(!eliminated_[a.var()]);
    const Lbool v = ValueOf(a);
    if (v == Lbool::kFalse) {
      CancelUntil(0);
      return false;
    }
    if (v == Lbool::kUndef) UncheckedEnqueue(a, kRefUndef);
  }
  if (Propagate() != kRefUndef) {
    CancelUntil(0);
    return false;
  }
  probe_base_level_ = DecisionLevel();
  return true;
}

bool Solver::ProbeLitFails(Lit p) {
  CCR_DCHECK(probe_base_level_ >= 0);
  CCR_DCHECK(DecisionLevel() == probe_base_level_);
  const Lbool v = ValueOf(p);
  if (v == Lbool::kTrue) return false;
  if (v == Lbool::kFalse) return true;
  trail_lim_.push_back(static_cast<int>(trail_.size()));
  UncheckedEnqueue(p, kRefUndef);
  const bool failed = Propagate() != kRefUndef;
  CancelUntil(probe_base_level_);
  return failed;
}

void Solver::EndProbe() {
  CCR_DCHECK(probe_base_level_ >= 0);
  CancelUntil(0);
  probe_base_level_ = -1;
}

std::vector<const std::vector<Lbool>*> Solver::CachedWitnesses(
    std::span<const Lit> assumptions) const {
  std::vector<const std::vector<Lbool>*> out;
  if (!options_.use_model_cache) return out;
  if (model_fresh_ && !model_.empty() &&
      ModelWitnesses(model_, assumptions)) {
    out.push_back(&model_);
  }
  for (const std::vector<Lbool>& m : model_pool_) {
    if (ModelWitnesses(m, assumptions)) out.push_back(&m);
  }
  return out;
}

std::vector<std::vector<Lit>> Solver::LearntClauses() const {
  std::vector<std::vector<Lit>> out;
  for (const std::vector<ClauseRef>* list :
       {&learnts_core_, &learnts_mid_, &learnts_local_}) {
    for (ClauseRef c : *list) {
      if (ClauseDead(c)) continue;
      const Lit* lits = ClauseLits(c);
      out.emplace_back(lits, lits + ClauseSize(c));
    }
  }
  for (const auto& [a, b] : learnt_binaries_) {
    out.push_back({a, b});
  }
  return out;
}

int64_t Solver::Luby(int64_t i) {
  // Luby sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
  int64_t k = 1;
  while ((1LL << k) - 1 < i + 1) ++k;
  while ((1LL << k) - 1 != i + 1) {
    --k;
    i = i - ((1LL << k) - 1);
  }
  return 1LL << (k - 1);
}

SolveResult Solver::Search(int64_t conflict_budget,
                           std::span<const Lit> assumptions) {
  int64_t conflicts_here = 0;
  std::vector<Lit> learnt;
  while (true) {
    const ClauseRef conflict = Propagate();
    if (conflict != kRefUndef) {
      ++stats_.conflicts;
      ++conflicts_here;
      ++conflicts_since_restart_;
      if (DecisionLevel() == 0) {
        ok_ = false;
        return SolveResult::kUnsat;
      }
      int bt_level = 0;
      int lbd = 0;
      Analyze(conflict, &learnt, &bt_level, &lbd);
      if (!ema_seeded_) {
        // Seed both averages with the first sample: from 0, the slow EMA
        // would stay near 0 for thousands of conflicts and the restart
        // test would degenerate to a fixed 32-conflict cadence.
        ema_seeded_ = true;
        ema_fast_ = ema_slow_ = static_cast<double>(lbd);
      } else {
        ema_fast_ += (static_cast<double>(lbd) - ema_fast_) * kEmaFastAlpha;
        ema_slow_ += (static_cast<double>(lbd) - ema_slow_) * kEmaSlowAlpha;
      }
      // Backjumping may pop assumption pseudo-decisions; the
      // honor-assumptions step below re-establishes them, and an
      // assumption forced false there yields kUnsat with a core.
      CancelUntil(bt_level);
      RecordLearnt(learnt, lbd);
      VarDecay();
      ClauseDecay();
      continue;
    }

    // No conflict. A stop request must be honored HERE, before the
    // all-assigned => kSat check below: an interrupted Propagate may have
    // left the trail only partially propagated, and a verdict computed
    // from it would be unsound. Conflicts found while stopping are still
    // real (handled above); only the quiescent paths are cut short.
    if (StopRequested()) {
      CancelUntil(0);
      return SolveResult::kUnknown;
    }
    bool restart = false;
    if (options_.use_restarts) {
      if (options_.use_ema_restarts) {
        restart = conflicts_since_restart_ >= kEmaMinConflicts &&
                  ema_fast_ > kEmaRestartMargin * ema_slow_;
      } else {
        restart = conflict_budget >= 0 && conflicts_here >= conflict_budget;
      }
    }
    if (restart) {
      CancelUntil(0);
      return SolveResult::kUnknown;  // restart
    }
    if (options_.max_conflicts >= 0 &&
        stats_.conflicts >= options_.max_conflicts) {
      CancelUntil(0);
      return SolveResult::kUnknown;
    }
    // Portfolio defer gate: the master's solo phase ends here and
    // SolveInternal escalates to a race.
    if (conflict_cap_ >= 0 && stats_.conflicts >= conflict_cap_) {
      CancelUntil(0);
      return SolveResult::kUnknown;
    }
    if (DecisionLevel() == 0) RemoveSatisfiedTopLevel();
    if (options_.use_clause_deletion &&
        static_cast<double>(NumReducibleLearnts()) >= max_learnts_) {
      if (options_.use_lbd_tiers) {
        ReduceDbTiered();
      } else {
        ReduceDb();
      }
      max_learnts_ *= 1.1;
      MaybeGarbageCollect();
    }

    Lit next = kLitUndef;
    // Honor assumptions first.
    while (DecisionLevel() < static_cast<int>(assumptions.size())) {
      const Lit a = assumptions[DecisionLevel()];
      const Lbool av = ValueOf(a);
      if (av == Lbool::kTrue) {
        trail_lim_.push_back(static_cast<int>(trail_.size()));
      } else if (av == Lbool::kFalse) {
        AnalyzeFinal(~a, &conflict_core_);
        return SolveResult::kUnsat;
      } else {
        next = a;
        break;
      }
    }
    if (next == kLitUndef) {
      next = PickBranchLit();
      if (next == kLitUndef) {
        // All variables assigned: model found.
        CacheCurrentModel();
        model_.assign(assigns_.begin(), assigns_.end());
        if (!elim_stack_.empty()) ExtendModel(&model_);
        return SolveResult::kSat;
      }
      ++stats_.decisions;
    }
    trail_lim_.push_back(static_cast<int>(trail_.size()));
    UncheckedEnqueue(next, kRefUndef);
  }
}

void Solver::CacheCurrentModel() {
  // Free re-anchor for the incremental SLS verification cache: the
  // complete conflict-free assignment in hand is a proven model of
  // every live clause, so it can serve as the diff baseline without any
  // scan. Only re-anchor when the formula moved past the cached state —
  // steady-state solve streams then pay nothing.
  if ((options_.use_sls_seeding || options_.use_sls_probing) &&
      TrackOccurrences() &&
      (sls_verified_val_.empty() || sls_verified_epoch_ != sls_epoch_ ||
       sls_verified_clauses_ != clauses_.size() ||
       sls_verified_val_.size() != assigns_.size())) {
    sls_verified_val_.resize(assigns_.size());
    for (size_t v = 0; v < assigns_.size(); ++v) {
      sls_verified_val_[v] = assigns_[v] == Lbool::kTrue ? 1 : 0;
    }
    sls_verified_clauses_ = clauses_.size();
    sls_verified_epoch_ = sls_epoch_;
    sls_new_bins_.clear();
    sls_bin_log_overflow_ = false;
  }
  if (!options_.use_model_cache) return;
  if (model_fresh_ && !model_.empty()) {
    // Rotate the previous newest model into the ring.
    if (model_pool_.size() < kModelPoolSize) {
      model_pool_.push_back(model_);
    } else {
      model_pool_[model_pool_next_] = model_;
      model_pool_next_ = (model_pool_next_ + 1) % kModelPoolSize;
    }
  }
  model_fresh_ = true;
}

LocalSearchResult Solver::SeedFromLocalSearch(
    std::span<const Lit> assumptions, std::span<const std::vector<Lit>> softs,
    const LocalSearchBudget& budget) {
  LocalSearchResult out;
  CCR_DCHECK(DecisionLevel() == 0);
  if (!ok_) return out;

  const int nv = num_vars();
  SlsScratch& s = sls_;

  // Fix the variables the search must not touch: the level-0 trail, the
  // assumption literals, and BVE-eliminated variables (whose exact values
  // only exist through model reconstruction). Everything else starts at
  // its saved phase, so a solver that just produced a model searches from
  // (near) that model.
  s.fixed.assign(static_cast<size_t>(nv), 0);
  s.val.resize(static_cast<size_t>(nv));
  for (Var v = 0; v < nv; ++v) {
    if (assigns_[v] != Lbool::kUndef) {
      s.fixed[v] = 1;
      s.val[v] = assigns_[v] == Lbool::kTrue ? 1 : 0;
    } else if (eliminated_[v]) {
      s.fixed[v] = 1;
      s.val[v] = 0;
    } else {
      s.val[v] = polarity_[v] ? 0 : 1;
    }
  }
  for (Lit a : assumptions) {
    if (eliminated_[a.var()]) return out;  // caller contract violation
    const uint8_t want = a.negated() ? 0 : 1;
    if (s.fixed[a.var()] && s.val[a.var()] != want) return out;
    s.fixed[a.var()] = 1;
    s.val[a.var()] = want;
  }
  // Prefer the last verified assignment over saved phases as the free
  // variables' starting point whenever the cache is still valid: it is
  // a genuine model of everything up to the cache point, so the initial
  // violation set shrinks to the formula delta plus fixing conflicts. A
  // solve stream that ends UNSAT leaves saved phases nowhere near a
  // model; the cache still remembers one.
  if (!sls_verified_val_.empty() && sls_verified_epoch_ == sls_epoch_ &&
      !sls_bin_log_overflow_ && sls_verified_clauses_ <= clauses_.size()) {
    const Var anchored = static_cast<Var>(
        std::min(sls_verified_val_.size(), static_cast<size_t>(nv)));
    for (Var v = 0; v < anchored; ++v) {
      if (!s.fixed[v]) s.val[v] = sls_verified_val_[v];
    }
  }

  // Tier 0: a cached genuine model that satisfies the assumptions
  // decides the call with no clause scan at all. The fresh model_ and
  // every pooled witness satisfy every live clause and all implied
  // units by the cache invariant (anything that could break that
  // invalidates the cache), so only the assumptions and softs need
  // evaluating — O(pool × |assumptions| + |softs|).
  if (options_.use_model_cache) {
    const auto try_model = [&](const std::vector<Lbool>& m) {
      // A shorter model predates variables added since; those could
      // appear in the softs, so pass on it.
      if (m.size() < static_cast<size_t>(nv)) return false;
      for (Lit a : assumptions) {
        if (LboolOf(m[a.var()], a.negated()) != Lbool::kTrue) return false;
      }
      return true;
    };
    const std::vector<Lbool>* hit = nullptr;
    if (model_fresh_ && try_model(model_)) hit = &model_;
    for (size_t k = 0; !hit && k < model_pool_.size(); ++k) {
      if (try_model(model_pool_[k])) hit = &model_pool_[k];
    }
    if (hit) {
      const std::vector<Lbool>& m = *hit;
      CCR_DCHECK(DebugModelSatisfiesLive(m));
      int soft_unsat = 0;
      for (const std::vector<Lit>& soft : softs) {
        bool sat = false;
        for (Lit l : soft) {
          CCR_DCHECK(l.var() >= 0 && l.var() < nv);
          sat = sat || LboolOf(m[l.var()], l.negated()) == Lbool::kTrue;
        }
        if (!sat) ++soft_unsat;
      }
      out.ran = true;
      out.feasible = true;
      out.hard_unsat = 0;
      // A soft counted unsat only through an undetermined (don't-care
      // eliminated) variable keeps soft_unsat an upper bound, never an
      // underestimate, so exactness still holds: every definite
      // evaluation is against genuine values.
      out.soft_unsat = soft_unsat;
      out.softs_exact = true;
      out.model.resize(static_cast<size_t>(nv));
      for (Var v = 0; v < nv; ++v) out.model[v] = m[v] == Lbool::kTrue ? 1 : 0;
      // Phases and the witness ring stay as they are: the CDCL descent
      // will re-find this very model as a pool hit.
      return out;
    }
  }

  // Fast path: on a warm solver the saved phases usually still form a
  // model (the last solve saved them from one) or miss one by only a
  // handful of clauses, so one early-exit evaluation pass plus a bounded
  // greedy repair decides most calls — no clause pool, no CSR occurrence
  // build, no restarts. Anything beyond repair's reach falls through to
  // the full search below.
  {
    const auto val_true = [&](Lit l) {
      return (s.val[l.var()] != 0) != l.negated();
    };
    // A falsified item found by the scan: a live arena clause, or a
    // mirrored binary (ref == kRefUndef).
    struct Bad {
      ClauseRef ref;
      Lit a, b;
    };
    std::vector<Bad> worklist;
    bool any_unsat = false;
    // Scans every live clause and binary. With collect, falsified items
    // land in the worklist until it would exceed kSlsRepairMaxUnsat;
    // without, the scan is a pure early-exit feasibility check. Either
    // way any_unsat reports whether an (uncollected) falsified item
    // exists.
    const auto scan_all = [&](bool collect) {
      worklist.clear();
      any_unsat = false;
      for (ClauseRef c : clauses_) {
        if (ClauseDead(c)) continue;
        const Lit* lits = ClauseLits(c);
        const int sz = ClauseSize(c);
        bool sat = false;
        for (int i = 0; i < sz && !sat; ++i) sat = val_true(lits[i]);
        if (!sat) {
          if (!collect || worklist.size() >= kSlsRepairMaxUnsat) {
            any_unsat = true;
            return;
          }
          worklist.push_back({c, kLitUndef, kLitUndef});
        }
      }
      for (int32_t i = 0; i < 2 * nv; ++i) {
        const Lit u = ~Lit::FromIndex(i);
        for (Lit q : bins_[i]) {
          if (u.index() > q.index()) continue;
          if (!val_true(u) && !val_true(q)) {
            if (!collect || worklist.size() >= kSlsRepairMaxUnsat) {
              any_unsat = true;
              return;
            }
            worklist.push_back({kRefUndef, u, q});
          }
        }
      }
    };
    // Publishes the current s.val as a feasible result: scores the
    // softs, reconstructs eliminated variables, and pushes the model
    // into the witness ring exactly as the search below would. Only
    // legal right after a scan proved every live clause satisfied.
    const auto publish = [&] {
      int soft_unsat = 0;
      bool selim = false;
      for (const std::vector<Lit>& soft : softs) {
        bool sat = false;
        for (Lit l : soft) {
          CCR_DCHECK(l.var() >= 0 && l.var() < nv);
          selim = selim || eliminated_[l.var()];
          sat = sat || val_true(l);
        }
        if (!sat) ++soft_unsat;
      }
      out.ran = true;
      out.feasible = true;
      out.hard_unsat = 0;
      out.soft_unsat = soft_unsat;
      out.model.assign(s.val.begin(), s.val.end());
      std::vector<Lbool> m(static_cast<size_t>(nv));
      for (Var v = 0; v < nv; ++v) {
        m[v] = eliminated_[v] ? Lbool::kUndef
                              : (s.val[v] ? Lbool::kTrue : Lbool::kFalse);
      }
      if (!elim_stack_.empty()) ExtendModel(&m);
      CCR_DCHECK(DebugModelSatisfiesLive(m));
      for (Var v = 0; v < nv; ++v) {
        if (eliminated_[v]) out.model[v] = m[v] == Lbool::kTrue ? 1 : 0;
      }
      out.softs_exact = !selim;
      if (options_.use_model_cache) {
        if (model_pool_.size() < kModelPoolSize) {
          model_pool_.push_back(std::move(m));
        } else {
          model_pool_[model_pool_next_] = std::move(m);
          model_pool_next_ = (model_pool_next_ + 1) % kModelPoolSize;
        }
        ++stats_.sls_seeded_models;
      }
      // Record the assignment as verified against the current formula so
      // the next call can diff instead of rescanning.
      sls_verified_val_.assign(s.val.begin(), s.val.end());
      sls_verified_clauses_ = clauses_.size();
      sls_verified_epoch_ = sls_epoch_;
      sls_new_bins_.clear();
      sls_bin_log_overflow_ = false;
    };
    // Incremental verification: diff the candidate assignment against
    // the last verified one and re-check only what could have changed
    // truth value — clauses holding a changed variable (via the
    // persistent occurrence index and the binary lists), arena clauses
    // appended since, and logged new problem binaries. Everything else
    // holds by induction: identical clause content (the epoch guard),
    // identical variable values, satisfied at the last verification.
    // Learnt binaries of unchanged variables need no check: they are
    // implied, and an assignment satisfying every problem clause
    // satisfies implications automatically.
    const auto try_incremental = [&] {
      if (!TrackOccurrences() || sls_verified_val_.empty() ||
          sls_verified_epoch_ != sls_epoch_ || sls_bin_log_overflow_ ||
          sls_verified_clauses_ > clauses_.size()) {
        return false;
      }
      const Var old_nv = static_cast<Var>(
          std::min(sls_verified_val_.size(), static_cast<size_t>(nv)));
      size_t changed = static_cast<size_t>(nv - old_nv);
      for (Var v = 0; v < old_nv; ++v) {
        if (s.val[v] != sls_verified_val_[v]) ++changed;
      }
      if (changed > kSlsDiffMaxVars) return false;
      worklist.clear();
      any_unsat = false;
      const auto check_clause = [&](ClauseRef d) {
        if (ClauseDead(d)) return;
        const Lit* dl = ClauseLits(d);
        const int dsz = ClauseSize(d);
        bool sat = false;
        for (int i = 0; i < dsz && !sat; ++i) sat = val_true(dl[i]);
        if (!sat) worklist.push_back({d, kLitUndef, kLitUndef});
      };
      const auto check_var = [&](Var v) {
        for (ClauseRef d : occur_[v]) check_clause(d);
        for (int sign = 0; sign < 2; ++sign) {
          const Lit u(v, sign != 0);
          if (val_true(u)) continue;  // u true: its binaries all hold
          for (Lit q : bins_[(~u).index()]) {
            if (!val_true(q)) worklist.push_back({kRefUndef, u, q});
          }
        }
      };
      for (Var v = 0; v < old_nv; ++v) {
        if (s.val[v] != sls_verified_val_[v]) check_var(v);
      }
      for (Var v = old_nv; v < nv; ++v) check_var(v);
      for (size_t i = sls_verified_clauses_; i < clauses_.size(); ++i) {
        check_clause(clauses_[i]);
      }
      for (const auto& [a, b] : sls_new_bins_) {
        if (!val_true(a) && !val_true(b)) {
          worklist.push_back({kRefUndef, a, b});
        }
      }
      return true;
    };

    // Break count of flipping v: live clauses where v's currently true
    // literal is the lone satisfier, plus binaries it alone holds up.
    const auto breaks_of = [&](Var v) {
      const Lit t = Lit(v, s.val[v] == 0);
      int b = 0;
      for (ClauseRef d : occur_[v]) {
        if (ClauseDead(d)) continue;
        const Lit* dl = ClauseLits(d);
        const int dsz = ClauseSize(d);
        int true_cnt = 0;
        bool t_sats = false;
        for (int i = 0; i < dsz && true_cnt < 2; ++i) {
          if (val_true(dl[i])) {
            ++true_cnt;
            t_sats = t_sats || dl[i] == t;
          }
        }
        if (true_cnt == 1 && t_sats) ++b;
      }
      for (Lit q : bins_[(~t).index()]) {
        if (!val_true(q)) ++b;
      }
      return b;
    };
    // Chase what a flip of v just falsified: clauses holding the
    // now-false literal of v with nothing else true, via the occurrence
    // index and the binary lists.
    const auto chase = [&](Var v) {
      const Lit now_false = Lit(v, s.val[v] != 0);
      for (ClauseRef d : occur_[v]) {
        if (ClauseDead(d)) continue;
        const Lit* dl = ClauseLits(d);
        const int dsz = ClauseSize(d);
        bool dsat = false;
        for (int i = 0; i < dsz && !dsat; ++i) dsat = val_true(dl[i]);
        if (!dsat) worklist.push_back({d, kLitUndef, kLitUndef});
      }
      for (Lit q : bins_[(~now_false).index()]) {
        if (!val_true(q)) worklist.push_back({kRefUndef, now_false, q});
      }
    };
    // Greedy min-break drain of the worklist (shared by the repair tier
    // and the soft-improvement pass): pops falsified items, flips the
    // minimum-break free variable of each (ties to the lowest id —
    // fully deterministic, no RNG draw), and chases what every flip
    // breaks. Flipped variables append to s.cand. Returns true only
    // when the worklist fully drained within the flip budget.
    const auto drain = [&](int64_t max_flips) {
      int64_t flips = 0;
      bool stuck = false;
      size_t head = 0;
      while (head < worklist.size() && flips < max_flips) {
        const Bad item = worklist[head++];
        // Lazy recheck: a later flip may have satisfied it already.
        bool sat = false;
        const Lit* lits = nullptr;
        int sz = 0;
        if (item.ref == kRefUndef) {
          sat = val_true(item.a) || val_true(item.b);
        } else {
          lits = ClauseLits(item.ref);
          sz = ClauseSize(item.ref);
          for (int i = 0; i < sz && !sat; ++i) sat = val_true(lits[i]);
        }
        if (sat) continue;
        Var chosen = kVarUndef;
        int min_break = INT_MAX;
        const auto consider = [&](Lit l) {
          const Var v = l.var();
          if (s.fixed[v]) return;
          const int b = breaks_of(v);
          if (b < min_break || (b == min_break && v < chosen)) {
            min_break = b;
            chosen = v;
          }
        };
        if (item.ref == kRefUndef) {
          consider(item.a);
          consider(item.b);
        } else {
          for (int i = 0; i < sz; ++i) consider(lits[i]);
        }
        if (chosen == kVarUndef) {
          // Every literal is fixed: falsified under the fixing itself.
          stuck = true;
          break;
        }
        s.val[chosen] ^= 1;
        s.cand.push_back(chosen);
        ++flips;
        chase(chosen);
      }
      stats_.sls_flips += flips;
      return !stuck && head >= worklist.size();
    };
    // Soft-improvement pass, run only with hard feasibility in hand:
    // try to satisfy each falsified soft by flipping its min-break free
    // variable and repairing the fallout with a bounded drain, rolling
    // the whole chain back whenever it fails (re-flipping the log in
    // reverse restores the exact prior assignment). This is what makes
    // the fast tiers genuine optimizers: a fresh MaxSAT probe's
    // selector variables all start at their default phase with every
    // soft open, and without this pass the probe could only report the
    // vacuous bound u = n. Feasibility is preserved by induction — a
    // kept chain drained every violation it caused, a rejected one is
    // undone — with a final incremental re-verification as a backstop.
    const auto improve_softs = [&] {
      if (softs.empty()) return;
      const size_t pass_mark = s.cand.size();
      for (const std::vector<Lit>& soft : softs) {
        bool sat = false;
        for (Lit l : soft) sat = sat || val_true(l);
        if (sat) continue;
        Var chosen = kVarUndef;
        int min_break = INT_MAX;
        for (Lit l : soft) {
          const Var v = l.var();
          if (s.fixed[v]) continue;
          const int b = breaks_of(v);
          if (b < min_break || (b == min_break && v < chosen)) {
            min_break = b;
            chosen = v;
          }
        }
        if (chosen == kVarUndef) continue;  // fixed false; nothing to try
        const size_t mark = s.cand.size();
        s.val[chosen] ^= 1;
        s.cand.push_back(chosen);
        ++stats_.sls_flips;
        // Pin the seed flip for the duration of the chain — otherwise
        // the cheapest repair is almost always to flip it right back,
        // and the pass would never achieve anything.
        s.fixed[chosen] = 1;
        worklist.clear();
        chase(chosen);
        const bool kept = drain(kSlsSoftChainFlips);
        s.fixed[chosen] = 0;
        if (!kept) {
          while (s.cand.size() > mark) {
            s.val[s.cand.back()] ^= 1;
            s.cand.pop_back();
          }
          // The softs of one call are structurally alike (a MaxSAT
          // probe's selectors all guard the same rule shape): when a
          // chain fails, its siblings almost always fail the same way,
          // so stop paying for them. Successes already kept stand.
          break;
        }
      }
      if (s.cand.size() > pass_mark) {
        // Backstop re-verification of the kept chains; on failure the
        // pass rolls back entirely to the proven-feasible base.
        bool verified = false;
        if (try_incremental()) {
          verified = worklist.empty();
        } else {
          scan_all(/*collect=*/false);
          verified = !any_unsat;
        }
        if (!verified) {
          while (s.cand.size() > pass_mark) {
            s.val[s.cand.back()] ^= 1;
            s.cand.pop_back();
          }
        }
      }
    };

    // `exhaustive` means the worklist holds every falsified live item.
    bool exhaustive = try_incremental();
    if (!exhaustive) {
      scan_all(/*collect=*/true);
      exhaustive = !any_unsat;
    }
    if (TrackOccurrences()) {
      s.cand.clear();  // reused as the flipped-variable log
      bool feasible = exhaustive && worklist.empty();
      // Greedy repair, in rounds: drain the (possibly truncated)
      // worklist, then re-verify from scratch — the verification, not
      // the occurrence index (which carries stale and lazily-purged
      // entries), is what the published model rests on. A re-scan that
      // overflows the collection cap leaves a fresh partial worklist
      // for the next round, so even a scan too broken to enumerate
      // exhaustively up front can converge.
      for (int round = 0;
           round < kSlsRepairRounds && !feasible && !worklist.empty();
           ++round) {
        if (!drain(kSlsRepairMaxFlips)) break;  // stuck or out of budget
        if (try_incremental()) {
          feasible = worklist.empty();
        } else {
          scan_all(/*collect=*/true);
          feasible = !any_unsat && worklist.empty();
        }
      }
      if (feasible) {
        improve_softs();
        // Install the flipped phases so the next descent starts here —
        // except for variables the softs mention: the exact search that
        // follows a probe exists to satisfy softs, so their phases stay
        // biased toward satisfaction rather than wherever the repair
        // happened to leave them (flipping a selector off is the repair's
        // cheapest move and the bound search's most expensive start).
        const auto in_softs = [&](Var v) {
          for (const std::vector<Lit>& soft : softs) {
            for (Lit l : soft) {
              if (l.var() == v) return true;
            }
          }
          return false;
        };
        for (Var v : s.cand) {
          if (!in_softs(v)) polarity_[v] = s.val[v] == 0;
        }
        publish();
        return out;
      }
      // Repair ran out of budget or got stuck; the full search below
      // starts from the mutated assignment deterministically.
    } else if (exhaustive && worklist.empty()) {
      // No occurrence index (so no repair or soft pass), but the saved
      // phases already form a model; publish it as-is.
      publish();
      return out;
    }
  }

  // Gather the active subformula: live problem clauses and binary
  // implications not already satisfied by a fixed-true literal, with
  // fixed-false literals dropped. A hard clause left empty is permanently
  // falsified under the fixing (the CDCL solve will refute it; nothing
  // for a flip search to do); an empty soft is a constant offset.
  s.pool.clear();
  s.starts.clear();
  s.starts.push_back(0);
  // Returns -1 when the clause is satisfied by the fixing (skipped), 1
  // when it came up empty, 0 when it entered the pool.
  const auto add_clause = [&](std::span<const Lit> lits) -> int {
    const size_t start = s.pool.size();
    for (Lit l : lits) {
      if (s.fixed[l.var()]) {
        if ((s.val[l.var()] != 0) != l.negated()) {
          s.pool.resize(start);
          return -1;
        }
        continue;
      }
      s.pool.push_back(l);
    }
    if (s.pool.size() == start) return 1;
    s.starts.push_back(static_cast<int32_t>(s.pool.size()));
    return 0;
  };
  int hard_count = 0;
  for (ClauseRef c : clauses_) {
    if (ClauseDead(c)) continue;
    const int rc = add_clause({ClauseLits(c), ClauseLits(c) + ClauseSize(c)});
    if (rc == 1) return out;
    if (rc == 0) ++hard_count;
  }
  // Each binary clause (u ∨ q) appears mirrored in two implication
  // lists; keep the copy where u has the smaller literal index.
  for (int32_t i = 0; i < 2 * nv; ++i) {
    const Lit u = ~Lit::FromIndex(i);
    for (Lit q : bins_[i]) {
      if (u.index() > q.index()) continue;
      const Lit pair[2] = {u, q};
      const int rc = add_clause({pair, 2});
      if (rc == 1) return out;
      if (rc == 0) ++hard_count;
    }
  }
  int soft_base = 0;  // softs permanently unsatisfied under the fixing
  bool soft_touches_elim = false;
  for (const std::vector<Lit>& soft : softs) {
    for (Lit l : soft) {
      CCR_DCHECK(l.var() >= 0 && l.var() < nv);
      // A soft touching an eliminated variable is scored against that
      // variable's placeholder value; the bound consumer verifies with
      // exact solves either way.
      soft_touches_elim = soft_touches_elim || eliminated_[l.var()];
    }
    if (add_clause({soft.data(), soft.size()}) == 1) ++soft_base;
  }
  const int n_clauses = static_cast<int>(s.starts.size()) - 1;

  s.free_vars.clear();
  s.var_seen.assign(static_cast<size_t>(nv), 0);
  for (Lit l : s.pool) {
    if (!s.var_seen[l.var()]) {
      s.var_seen[l.var()] = 1;
      s.free_vars.push_back(l.var());
    }
  }

  // Occurrence lists (lit index -> clause ids), flat CSR. Built lazily:
  // a warm solver's saved phases are usually already a model, and the
  // evaluate-only pass that discovers this never flips anything.
  bool occ_built = false;
  const auto build_occ = [&] {
    s.occ_start.assign(static_cast<size_t>(2 * nv) + 1, 0);
    for (Lit l : s.pool) ++s.occ_start[l.index() + 1];
    for (size_t i = 1; i < s.occ_start.size(); ++i) {
      s.occ_start[i] += s.occ_start[i - 1];
    }
    s.occ.resize(s.pool.size());
    s.cursor.assign(s.occ_start.begin(), s.occ_start.end() - 1);
    for (int c = 0; c < n_clauses; ++c) {
      for (int32_t j = s.starts[c]; j < s.starts[c + 1]; ++j) {
        s.occ[s.cursor[s.pool[j].index()]++] = c;
      }
    }
    occ_built = true;
  };

  const int64_t max_flips =
      budget.max_flips > 0
          ? budget.max_flips
          : std::min(kSlsFlipsCap,
                     kSlsFlipsBase +
                         kSlsFlipsPerVar *
                             static_cast<int64_t>(s.free_vars.size()));
  const int tries =
      std::max(1, budget.tries > 0 ? budget.tries : options_.sls_tries);
  const double noise = budget.noise >= 0 ? budget.noise : options_.sls_noise;
  Rng rng(budget.has_seed
              ? budget.seed
              : kSlsSeedBase ^ (0x9e3779b97f4a7c15ULL * ++sls_salt_));

  // O(1) unsatisfied-clause bookkeeping, hard and soft stacks apart so
  // clause picking can insist on hard feasibility first.
  const auto mark_unsat = [&](int c) {
    std::vector<int32_t>& stack = c < hard_count ? s.unsat_hard : s.unsat_soft;
    s.unsat_pos[c] = static_cast<int32_t>(stack.size());
    stack.push_back(c);
  };
  const auto mark_sat = [&](int c) {
    std::vector<int32_t>& stack = c < hard_count ? s.unsat_hard : s.unsat_soft;
    const int32_t pos = s.unsat_pos[c];
    stack[pos] = stack.back();
    s.unsat_pos[stack.back()] = pos;
    stack.pop_back();
    s.unsat_pos[c] = -1;
  };
  // True literal of v under the current assignment.
  const auto true_lit = [&](Var v) { return Lit(v, s.val[v] == 0); };
  const auto break_count = [&](Var v) {
    const int32_t idx = true_lit(v).index();
    int breaks = 0;
    for (int32_t j = s.occ_start[idx]; j < s.occ_start[idx + 1]; ++j) {
      if (s.true_count[s.occ[j]] == 1) ++breaks;
    }
    return breaks;
  };
  const auto flip = [&](Var v) {
    s.val[v] = s.val[v] ^ 1;
    const Lit now_true = true_lit(v);
    const Lit now_false = ~now_true;
    for (int32_t j = s.occ_start[now_true.index()];
         j < s.occ_start[now_true.index() + 1]; ++j) {
      if (++s.true_count[s.occ[j]] == 1) mark_sat(s.occ[j]);
    }
    for (int32_t j = s.occ_start[now_false.index()];
         j < s.occ_start[now_false.index() + 1]; ++j) {
      if (--s.true_count[s.occ[j]] == 0) mark_unsat(s.occ[j]);
    }
  };

  int best_hard = INT_MAX;
  int best_soft = INT_MAX;
  s.best.assign(s.val.begin(), s.val.end());
  // Records the current assignment if it improves (hard count first,
  // softs tie-break); returns true when nothing can improve further.
  const auto consider_best = [&] {
    const int h = static_cast<int>(s.unsat_hard.size());
    const int sf = static_cast<int>(s.unsat_soft.size()) + soft_base;
    if (h < best_hard || (h == best_hard && sf < best_soft)) {
      best_hard = h;
      best_soft = sf;
      s.best.assign(s.val.begin(), s.val.end());
    }
    return s.unsat_hard.empty() && s.unsat_soft.empty();
  };

  int64_t flips_done = 0;
  bool perfect = false;
  for (int attempt = 0; attempt < tries && !perfect; ++attempt) {
    if (attempt > 0) {
      // Restart from a random assignment (try 0 searched the phases).
      for (Var v : s.free_vars) s.val[v] = rng.Chance(0.5) ? 1 : 0;
    }
    s.true_count.assign(static_cast<size_t>(n_clauses), 0);
    s.unsat_hard.clear();
    s.unsat_soft.clear();
    s.unsat_pos.assign(static_cast<size_t>(n_clauses), -1);
    for (int c = 0; c < n_clauses; ++c) {
      for (int32_t j = s.starts[c]; j < s.starts[c + 1]; ++j) {
        const Lit l = s.pool[j];
        if ((s.val[l.var()] != 0) != l.negated()) ++s.true_count[c];
      }
      if (s.true_count[c] == 0) mark_unsat(c);
    }
    perfect = consider_best();
    if (!perfect && !occ_built) build_occ();

    for (int64_t f = 0; f < max_flips && !perfect; ++f) {
      if (s.unsat_hard.empty() && s.unsat_soft.empty()) break;
      const int c =
          !s.unsat_hard.empty()
              ? s.unsat_hard[rng.Below(s.unsat_hard.size())]
              : s.unsat_soft[rng.Below(s.unsat_soft.size())];
      // Freebie move: a variable with break count 0, else noise/greedy.
      s.cand.clear();
      Var chosen = kVarUndef;
      int min_break = INT_MAX;
      for (int32_t j = s.starts[c]; j < s.starts[c + 1]; ++j) {
        const Var v = s.pool[j].var();
        const int b = break_count(v);
        if (b == 0) s.cand.push_back(v);
        if (b < min_break) {
          min_break = b;
          chosen = v;
        }
      }
      if (!s.cand.empty()) {
        chosen = s.cand[rng.Below(s.cand.size())];
      } else if (rng.Chance(noise)) {
        const int32_t len = s.starts[c + 1] - s.starts[c];
        chosen = s.pool[s.starts[c] + rng.Below(len)].var();
      }
      flip(chosen);
      ++flips_done;
      perfect = consider_best();
    }
  }
  stats_.sls_flips += flips_done;

  out.ran = true;
  out.feasible = best_hard == 0;
  out.hard_unsat = best_hard;
  out.soft_unsat = best_soft;
  out.model.assign(s.best.begin(), s.best.end());

  if (out.feasible) {
    // Install the model as saved phases: the next CDCL descent starts
    // at it. Only the searched variables move — fixed variables' phases
    // are irrelevant (assigned) or owned by reconstruction. A failed
    // search installs nothing: overwriting saved phases with a
    // best-effort non-model measurably slows the solves that follow.
    for (Var v : s.free_vars) polarity_[v] = s.best[v] == 0;
    // Every live problem clause is satisfied; together with the level-0
    // trail (dead clauses are subsumed, swept-satisfied, or reconstructed
    // by the BVE stack) this extends to a genuine model, so it may enter
    // the witness ring the same way a search model does.
    std::vector<Lbool> m(static_cast<size_t>(nv));
    for (Var v = 0; v < nv; ++v) {
      m[v] = eliminated_[v] ? Lbool::kUndef
                            : (s.best[v] ? Lbool::kTrue : Lbool::kFalse);
    }
    if (!elim_stack_.empty()) ExtendModel(&m);
    CCR_DCHECK(DebugModelSatisfiesLive(m));
    // Reflect the reconstructed values so out.model is a genuine model,
    // and mark the soft score exact when no placeholder was involved.
    for (Var v = 0; v < nv; ++v) {
      if (eliminated_[v]) out.model[v] = m[v] == Lbool::kTrue ? 1 : 0;
    }
    out.softs_exact = !soft_touches_elim;
    if (options_.use_model_cache) {
      if (model_pool_.size() < kModelPoolSize) {
        model_pool_.push_back(std::move(m));
      } else {
        model_pool_[model_pool_next_] = std::move(m);
        model_pool_next_ = (model_pool_next_ + 1) % kModelPoolSize;
      }
      ++stats_.sls_seeded_models;
    }
    sls_verified_val_.assign(s.best.begin(), s.best.end());
    sls_verified_clauses_ = clauses_.size();
    sls_verified_epoch_ = sls_epoch_;
    sls_new_bins_.clear();
    sls_bin_log_overflow_ = false;
  }
  return out;
}

bool Solver::DebugModelSatisfiesLive(const std::vector<Lbool>& m) const {
  if (m.size() < static_cast<size_t>(num_vars())) return false;
  for (Var v = 0; v < num_vars(); ++v) {
    if (assigns_[v] != Lbool::kUndef && level_[v] == 0 &&
        m[v] != assigns_[v]) {
      return false;
    }
  }
  for (ClauseRef c : clauses_) {
    if (ClauseDead(c)) continue;
    bool sat = false;
    const Lit* lits = ClauseLits(c);
    const int sz = ClauseSize(c);
    for (int i = 0; i < sz && !sat; ++i) {
      sat = LboolOf(m[lits[i].var()], lits[i].negated()) == Lbool::kTrue;
    }
    if (!sat) return false;
  }
  for (int32_t i = 0; i < 2 * num_vars(); ++i) {
    const Lit u = ~Lit::FromIndex(i);
    for (Lit q : bins_[i]) {
      if (u.index() > q.index()) continue;
      if (LboolOf(m[u.var()], u.negated()) != Lbool::kTrue &&
          LboolOf(m[q.var()], q.negated()) != Lbool::kTrue) {
        return false;
      }
    }
  }
  return true;
}

SolveResult Solver::SolveInternal(std::span<const Lit> assumptions) {
  const SolverStats before = stats_;
  if (!assumptions.empty()) ++stats_.assumption_solves;
  // Witness reuse: a recent model satisfying every assumption already
  // decides the call — kSat, with that model, zero search.
  if (options_.use_model_cache && ok_) {
    bool hit = false;
    if (model_fresh_ && ModelWitnesses(model_, assumptions)) {
      hit = true;  // model_ stays the answer
    } else {
      for (size_t k = model_pool_.size(); k-- > 0 && !hit;) {
        if (ModelWitnesses(model_pool_[k], assumptions)) {
          // Trade places: the witness becomes model_, the displaced
          // newest model stays cached in the witness's slot. (Rotating
          // via CacheCurrentModel here could overwrite the very slot
          // being read when the ring is full.) The swap is only legal
          // while model_ is itself a model of the current formula; a
          // stale model_ (invalidated, pool since repopulated by local
          // search) must not re-enter the ring, so copy instead.
          if (model_fresh_) {
            std::swap(model_, model_pool_[k]);
          } else {
            model_ = model_pool_[k];
          }
          model_fresh_ = true;
          hit = true;
        }
      }
    }
    if (hit) {
      ++stats_.model_cache_hits;
      conflict_core_.clear();
      last_call_ = stats_ - before;
      return SolveResult::kSat;
    }
  }
  SolveResult r;
  if (options_.portfolio_threads > 1 && ok_) {
    // Defer gate: search alone first — most pipeline solves finish
    // within a few hundred conflicts and a thread spawn would be pure
    // overhead. Only a solve still undecided at the cap races.
    conflict_cap_ = stats_.conflicts + options_.portfolio_defer_conflicts;
    r = SolveLoop(assumptions);
    conflict_cap_ = -1;
    const bool out_of_budget = options_.max_conflicts >= 0 &&
                               stats_.conflicts >= options_.max_conflicts;
    if (r == SolveResult::kUnknown && !out_of_budget) {
      r = PortfolioRace(assumptions);
    }
  } else {
    r = SolveLoop(assumptions);
  }
  last_call_ = stats_ - before;
  return r;
}

SolveResult Solver::SolveLoop(std::span<const Lit> assumptions) {
  conflict_core_.clear();
  if (!ok_) return SolveResult::kUnsat;
  for (Lit a : assumptions) {
    CCR_CHECK(a.var() < num_vars());
    CCR_CHECK(!eliminated_[a.var()]);
  }
  CancelUntil(0);
  max_learnts_ =
      std::max(1000.0, static_cast<double>(clauses_.size()) / 3.0);
  ema_fast_ = 0;
  ema_slow_ = 0;
  ema_seeded_ = false;
  conflicts_since_restart_ = 0;

  int64_t restart_round = 0;
  while (true) {
    const int64_t budget =
        (options_.use_restarts && !options_.use_ema_restarts)
            ? 100 * Luby(restart_round)
            : -1;
    const SolveResult r = Search(budget, assumptions);
    if (r != SolveResult::kUnknown) {
      CancelUntil(0);
      return r;
    }
    // Search returned kUnknown at level 0: a restart boundary, an
    // exhausted budget, the portfolio defer gate, or a stop request.
    if (StopRequested()) return SolveResult::kUnknown;
    if (options_.max_conflicts >= 0 &&
        stats_.conflicts >= options_.max_conflicts) {
      CancelUntil(0);
      return SolveResult::kUnknown;
    }
    if (conflict_cap_ >= 0 && stats_.conflicts >= conflict_cap_) {
      return SolveResult::kUnknown;
    }
    // Racing: integrate the other workers' exports at this restart
    // boundary, at decision level 0. An implied empty clause here is a
    // sound UNSAT verdict.
    if (share_ring_ != nullptr && !ImportSharedClauses()) {
      return SolveResult::kUnsat;
    }
    ++restart_round;
    ++stats_.restarts;
    conflicts_since_restart_ = 0;
  }
}

// --- inprocessing --------------------------------------------------------

void Solver::ShrinkClause(ClauseRef c, std::span<const Lit> lits) {
  // In-place content change: the SLS verification cache's "unchanged
  // clauses still hold" induction no longer applies.
  ++sls_epoch_;
  // `c` is detached. Re-home the shortened clause by its new size.
  if (lits.empty()) {
    MarkClauseDead(c);
    ok_ = false;
    return;
  }
  if (lits.size() == 1) {
    MarkClauseDead(c);
    const Lbool v = ValueOf(lits[0]);
    if (v == Lbool::kFalse) {
      ok_ = false;
    } else if (v == Lbool::kUndef) {
      UncheckedEnqueue(lits[0], kRefUndef);  // propagated by the caller
    }
    return;
  }
  CCR_DCHECK(!ClauseLearnt(c));
  const int old_size = ClauseSize(c);
  Lit* dst = ClauseLits(c);
  std::copy(lits.begin(), lits.end(), dst);
  SetClauseSize(c, static_cast<int>(lits.size()));
  // The abandoned tail words are dead arena weight from here on.
  arena_dead_words_ += static_cast<size_t>(old_size) - lits.size();
  SetClauseVivified(c, false);  // a changed clause is worth revisiting
  if (lits.size() == 2 && options_.use_binary_watches) {
    MarkClauseDead(c);  // migrated out of the arena into the bin lists
    AttachBinary(lits[0], lits[1]);
    return;
  }
  StoreClauseSig(c);
  AttachClause(c);
}

void Solver::StrengthenClause(ClauseRef c, Lit l) {
  DetachClause(c);
  std::vector<Lit> out;
  const Lit* lits = ClauseLits(c);
  const int size = ClauseSize(c);
  out.reserve(static_cast<size_t>(size) - 1);
  bool satisfied = false;
  for (int k = 0; k < size && !satisfied; ++k) {
    const Lit x = lits[k];
    if (x == l) continue;
    const Lbool v = ValueOf(x);
    if (v == Lbool::kTrue) satisfied = true;
    if (v == Lbool::kUndef) out.push_back(x);
    // Level-0 false literals are dropped along the way.
  }
  if (satisfied) {
    MarkClauseDead(c);
    return;
  }
  ShrinkClause(c, out);
}

void Solver::SubsumptionPass() {
  CCR_DCHECK(DecisionLevel() == 0);
  CCR_DCHECK(inproc_watermark_ <= clauses_.size());
  // Backward subsumption / self-subsuming resolution: the clauses the
  // encode layer appended since the last pass — everything at or beyond
  // the watermark — act as subsumers against the whole problem DB. A
  // subsumer C removes any D ⊇ C outright; if C matches D except for
  // exactly one flipped literal l, resolving on l strengthens D by
  // dropping ~l (equivalence-preserving both ways). Candidates come from
  // the persistent occurrence index; dead or stale entries are purged in
  // place as the scan walks a list.
  const size_t fresh_begin = inproc_watermark_;
  if (fresh_begin == clauses_.size() && pending_bins_.empty()) return;

  int64_t steps = 0;
  // Does the clause `sub` subsume `d` outright (return 1), subsume it
  // after flipping exactly one literal (return 2, *flip = the literal of
  // `sub` whose negation must leave `d`), or neither (return 0)?
  auto subsume_check = [this, &steps](std::span<const Lit> sub, ClauseRef d,
                                      Lit* flip) -> int {
    const Lit* dl = ClauseLits(d);
    const int ds = ClauseSize(d);
    Lit flipped = kLitUndef;
    for (Lit a : sub) {
      steps += ds;
      bool found = false;
      bool neg = false;
      for (int b = 0; b < ds; ++b) {
        if (dl[b] == a) {
          found = true;
          break;
        }
        if (dl[b] == ~a) {
          neg = true;
          break;
        }
      }
      if (found) continue;
      if (neg && flipped == kLitUndef) {
        flipped = a;
        continue;
      }
      return 0;
    }
    if (flipped == kLitUndef) return 1;
    *flip = flipped;
    return 2;
  };

  auto run_subsumer = [&](std::span<const Lit> sub, ClauseRef self) {
    // Candidates must contain every var of `sub`; scan the shortest
    // occurrence list.
    int best_var = -1;
    size_t best_len = SIZE_MAX;
    for (Lit a : sub) {
      const size_t len = occur_[a.var()].size();
      if (len < best_len) {
        best_len = len;
        best_var = a.var();
      }
    }
    if (best_var < 0) return;
    uint64_t sub_sig = 0;
    for (Lit a : sub) sub_sig |= 1ull << (a.var() & 63);
    std::vector<ClauseRef>& list = occur_[best_var];
    size_t j = 0;
    for (size_t i = 0; i < list.size(); ++i) {
      const ClauseRef d = list[i];
      if (ClauseDead(d)) continue;  // lazy purge
      list[j++] = d;
      if (d == self || !ok_) continue;
      if (ClauseSize(d) < static_cast<int>(sub.size())) continue;
      if ((sub_sig & ~ClauseSig(d)) != 0) continue;
      Lit flip = kLitUndef;
      const int verdict = subsume_check(sub, d, &flip);
      if (verdict == 1) {
        DetachClause(d);
        MarkClauseDead(d);
        ++stats_.subsumed;
        --j;  // died just now: purge it from this list too
      } else if (verdict == 2) {
        StrengthenClause(d, ~flip);
        ++stats_.subsumed;
        if (ClauseDead(d)) --j;  // shrank to unit/binary or was satisfied
      }
    }
    list.resize(j);
  };

  // New binary clauses first (the currency-order encodings are dominated
  // by them), then the appended long clauses.
  for (const auto& [a, b] : pending_bins_) {
    if (steps > kSubsumptionStepBudget || !ok_) break;
    const Lit sub[2] = {a, b};
    run_subsumer(std::span<const Lit>(sub, 2), kRefUndef);
  }
  pending_bins_.clear();
  for (size_t i = fresh_begin; i < clauses_.size(); ++i) {
    if (steps > kSubsumptionStepBudget || !ok_) break;
    const ClauseRef c = clauses_[i];
    if (ClauseDead(c)) continue;
    run_subsumer(
        std::span<const Lit>(ClauseLits(c), ClauseSize(c)), c);
  }

  // Strengthening may have queued units; fold them in.
  if (ok_ && Propagate() != kRefUndef) ok_ = false;
  CompactProblemClauses();
  inproc_watermark_ = clauses_.size();
}

void Solver::VivificationPass() {
  CCR_DCHECK(DecisionLevel() == 0);
  if (!ok_) return;
  // Clause vivification (distillation): for problem clause C = (l1..ln),
  // assume ¬l1, ¬l2, ... one at a time with full propagation (C itself
  // detached). A conflict — or a literal already decided by the prefix —
  // proves a strict subclause is implied, and C shrinks to it.
  //
  // Scope: only the round's delta. The first pass stamps the initial
  // encoding as vivified WITHOUT distilling it (wholesale distillation of
  // a generator-canonical encoding costs far more propagation than every
  // solve of the session combined); later passes distill exactly the
  // clauses appended — or strengthened by subsumption — since, under a
  // propagation budget as a backstop.
  if (!vivify_primed_) {
    vivify_primed_ = true;
    for (ClauseRef c : clauses_) SetClauseVivified(c, true);
    return;
  }
  const int64_t start_props = stats_.propagations;
  std::vector<Lit> kept;
  for (size_t n = clauses_.size(); n-- > 0;) {
    if (!ok_) break;
    if (stats_.propagations - start_props > kVivifyPropBudget) break;
    const ClauseRef c = clauses_[n];
    if (ClauseDead(c) || ClauseVivified(c)) continue;
    SetClauseVivified(c, true);
    const Lit* lits = ClauseLits(c);
    const int size = ClauseSize(c);
    bool satisfied = false;
    for (int k = 0; k < size && !satisfied; ++k) {
      satisfied = ValueOf(lits[k]) == Lbool::kTrue;
    }
    if (satisfied) {
      DetachClause(c);
      MarkClauseDead(c);
      continue;
    }
    if (size < 3) continue;  // arena binaries (legacy mode): leave alone
    DetachClause(c);
    kept.clear();
    for (int k = 0; k < size; ++k) {
      const Lit l = lits[k];
      const Lbool v = ValueOf(l);
      if (v == Lbool::kTrue) {
        // ¬(prefix) forces l: C shrinks to (prefix ∨ l).
        kept.push_back(l);
        break;
      }
      if (v == Lbool::kFalse) continue;  // redundant literal
      kept.push_back(l);
      if (k == size - 1) break;  // asserting the last literal proves nothing
      trail_lim_.push_back(static_cast<int>(trail_.size()));
      UncheckedEnqueue(~l, kRefUndef);
      if (Propagate() != kRefUndef) break;  // ¬(prefix) is contradictory
    }
    CancelUntil(0);
    if (kept.size() == static_cast<size_t>(size)) {
      AttachClause(c);
      continue;
    }
    stats_.vivified += size - static_cast<int64_t>(kept.size());
    ShrinkClause(c, kept);
    // Keep the level-0 fixpoint before the next clause's decisions.
    if (ok_ && Propagate() != kRefUndef) ok_ = false;
  }
  CompactProblemClauses();
}

// --- arena garbage collection --------------------------------------------

Solver::ClauseRef Solver::RelocateClause(ClauseRef c) {
  if (arena_[c] == kMovedHeader) return arena_[c + 1];
  const ClauseRef nc = static_cast<ClauseRef>(arena_tmp_.size());
  CCR_CHECK(nc < kRefBinaryFlag);
  const size_t words = 3 + static_cast<size_t>(ClauseSize(c));
  arena_tmp_.insert(arena_tmp_.end(), arena_.begin() + c,
                    arena_.begin() + c + words);
  arena_[c] = kMovedHeader;
  arena_[c + 1] = nc;
  return nc;
}

void Solver::GarbageCollect() {
  if (arena_.empty()) return;
  ++sls_epoch_;  // refs relocate and clauses_ compacts
  const size_t old_words = arena_.size();
  arena_tmp_.clear();
  arena_tmp_.reserve(old_words - std::min(arena_dead_words_, old_words));
  // Relocate in list order: clause order — and with it watcher and
  // occurrence order — is identical before and after, which keeps the
  // collection search-neutral.
  size_t wm = inproc_watermark_;
  size_t j = 0;
  for (size_t i = 0; i < clauses_.size(); ++i) {
    const ClauseRef c = clauses_[i];
    if (ClauseDead(c)) {
      if (i < inproc_watermark_) --wm;
      continue;
    }
    clauses_[j++] = RelocateClause(c);
  }
  clauses_.resize(j);
  inproc_watermark_ = wm;
  CCR_DCHECK(inproc_watermark_ <= clauses_.size());
  for (std::vector<ClauseRef>* list :
       {&learnts_core_, &learnts_mid_, &learnts_local_}) {
    size_t k = 0;
    for (ClauseRef c : *list) {
      if (ClauseDead(c)) continue;
      (*list)[k++] = RelocateClause(c);
    }
    list->resize(k);
  }
  // Every watched clause is live (each MarkClauseDead site detaches), so
  // every watcher's target has a forwarding ref by now.
  for (std::vector<Watcher>& ws : watches_) {
    for (Watcher& w : ws) {
      CCR_DCHECK(arena_[w.cref] == kMovedHeader);
      w.cref = arena_[w.cref + 1];
    }
  }
  for (Var v = 0; v < num_vars(); ++v) {
    const ClauseRef r = reason_[v];
    if (r == kRefUndef || r == kRefBinConflict || RefIsBinary(r)) continue;
    if (arena_[r] == kMovedHeader) {
      reason_[v] = arena_[r + 1];
    } else {
      // A dead reason can only hang off an unassigned or level-0
      // variable (live reasons are pinned by the reduce passes, and the
      // level-0 sweeps run with no deeper assignments outstanding), and
      // conflict analysis never dereferences level-0 reasons.
      CCR_DCHECK(assigns_[v] == Lbool::kUndef || level_[v] == 0);
      reason_[v] = kRefUndef;
    }
  }
  arena_.swap(arena_tmp_);
  arena_tmp_.clear();
  arena_tmp_.shrink_to_fit();
  // ClauseLits reads arena_, so the rebuild has to follow the swap.
  if (TrackOccurrences()) RebuildOccurrenceIndex();
  stats_.gc_reclaimed_words += static_cast<int64_t>(old_words - arena_.size());
  ++stats_.gc_runs;
  arena_dead_words_ = 0;
}

void Solver::MaybeGarbageCollect() {
  if (!options_.use_arena_gc || arena_dead_words_ == 0) return;
  if (static_cast<double>(arena_dead_words_) <=
      options_.gc_frac * static_cast<double>(arena_.size())) {
    return;
  }
  GarbageCollect();
}

void Solver::RebuildOccurrenceIndex() {
  for (std::vector<ClauseRef>& o : occur_) o.clear();
  // Iterating clauses_ reproduces clause-addition order, the same order
  // the incremental appends in AddClauseInternal produce.
  for (ClauseRef c : clauses_) {
    const Lit* lits = ClauseLits(c);
    for (int k = 0; k < ClauseSize(c); ++k) {
      occur_[lits[k].var()].push_back(c);
    }
  }
}

// --- bounded variable elimination ----------------------------------------

void Solver::MarkEliminable(Var v) {
  CCR_CHECK(v >= 0 && v < num_vars());
  if (eliminable_[v]) return;
  eliminable_[v] = 1;
  elim_candidates_.push_back(v);
}

void Solver::EliminatePass() {
  CCR_DCHECK(DecisionLevel() == 0);
  if (!ok_ || elim_candidates_.empty()) return;
  bool any = false;
  size_t keep = 0;
  for (Var v : elim_candidates_) {
    if (eliminated_[v] || frozen_[v] || assigns_[v] != Lbool::kUndef) {
      continue;  // fixed or released: nothing left to eliminate
    }
    if (TryEliminateVar(v)) {
      any = true;
      if (!ok_) break;
      continue;
    }
    elim_candidates_[keep++] = v;  // over limits now; retry next round
  }
  elim_candidates_.resize(keep);
  if (!any) return;
  // Learnt clauses are implied, so they never joined the elimination —
  // but any that still mention an eliminated variable would pin it in
  // the search and must go.
  for (std::vector<ClauseRef>* list :
       {&learnts_core_, &learnts_mid_, &learnts_local_}) {
    size_t j = 0;
    for (ClauseRef c : *list) {
      if (ClauseDead(c)) continue;
      const Lit* lits = ClauseLits(c);
      const int size = ClauseSize(c);
      bool touches = false;
      for (int k = 0; k < size && !touches; ++k) {
        touches = eliminated_[lits[k].var()] != 0;
      }
      if (touches) {
        DetachClause(c);
        MarkClauseDead(c);
        continue;
      }
      (*list)[j++] = c;
    }
    list->resize(j);
  }
  CompactProblemClauses();
}

bool Solver::TryEliminateVar(Var v) {
  CCR_DCHECK(assigns_[v] == Lbool::kUndef);
  // Gather the clauses containing v. The occurrence index is lazy:
  // entries may be dead, or may no longer contain v after strengthening
  // — verify both before counting them.
  std::vector<std::vector<Lit>> pos, neg;
  std::vector<ClauseRef> refs;
  for (ClauseRef c : occur_[v]) {
    if (ClauseDead(c)) continue;
    const Lit* lits = ClauseLits(c);
    const int size = ClauseSize(c);
    Lit vlit = kLitUndef;
    for (int k = 0; k < size; ++k) {
      if (lits[k].var() == v) {
        vlit = lits[k];
        break;
      }
    }
    if (vlit == kLitUndef) continue;  // stale entry: strengthened away
    refs.push_back(c);
    std::vector<Lit> cl(lits, lits + size);
    (vlit.negated() ? neg : pos).push_back(std::move(cl));
  }
  // Binary implication lists hold the rest — including learnt binaries,
  // which is sound: resolving implied clauses yields implied resolvents,
  // and saving them only over-constrains the reconstruction.
  const Lit pv = Lit::Pos(v);
  const Lit nv = Lit::Neg(v);
  for (Lit q : bins_[nv.index()]) pos.push_back({pv, q});  // (v ∨ q)
  for (Lit q : bins_[pv.index()]) neg.push_back({nv, q});  // (¬v ∨ q)
  if (pos.size() > kBveOccLimit || neg.size() > kBveOccLimit) return false;

  // Build the resolvent set; bail on growth before mutating anything.
  std::vector<std::vector<Lit>> resolvents;
  for (const std::vector<Lit>& p : pos) {
    for (const std::vector<Lit>& n : neg) {
      std::vector<Lit> r;
      bool taut = false;
      for (Lit l : p) {
        if (l.var() != v) r.push_back(l);
      }
      for (Lit l : n) {
        if (l.var() == v) continue;
        bool dup = false;
        for (Lit x : r) {
          if (x == l) {
            dup = true;
            break;
          }
          if (x == ~l) {
            taut = true;
            break;
          }
        }
        if (taut) break;
        if (!dup) r.push_back(l);
      }
      if (taut) continue;
      if (r.size() > kBveResolventLitCap) return false;
      resolvents.push_back(std::move(r));
      if (resolvents.size() > pos.size() + neg.size()) return false;
    }
  }

  // Commit. Save the removed clauses for model reconstruction first.
  ElimRecord rec;
  rec.v = v;
  rec.clauses.reserve(pos.size() + neg.size());
  for (std::vector<Lit>& cl : pos) rec.clauses.push_back(std::move(cl));
  for (std::vector<Lit>& cl : neg) rec.clauses.push_back(std::move(cl));
  elim_stack_.push_back(std::move(rec));
  for (ClauseRef c : refs) {
    DetachClause(c);
    MarkClauseDead(c);
  }
  // Binary surgery: drop v's clauses from the partner lists, then v's
  // own lists wholesale. A partner q never has q.var() == v (tautologies
  // and duplicate literals are rejected at AddClause), so the lists
  // being iterated are never the ones edited.
  auto remove_one = [this](Lit from, Lit what) {
    std::vector<Lit>& list = bins_[from.index()];
    for (size_t i = 0; i < list.size(); ++i) {
      if (list[i] == what) {
        list[i] = list.back();
        list.pop_back();
        return;
      }
    }
    CCR_DCHECK(false);
  };
  for (Lit q : bins_[nv.index()]) remove_one(~q, pv);
  for (Lit q : bins_[pv.index()]) remove_one(~q, nv);
  bins_[nv.index()].clear();
  bins_[pv.index()].clear();
  occur_[v].clear();
  eliminated_[v] = 1;
  ++stats_.bve_eliminated;
  for (std::vector<Lit>& r : resolvents) {
    ++stats_.bve_resolvents;
    if (!AddClauseInternal(std::move(r)) && !ok_) break;
  }
  return true;
}

void Solver::ExtendModel(std::vector<Lbool>* model) const {
  // Newest elimination first: a saved clause can mention variables
  // eliminated later (their records are below on the stack — processed
  // already), never ones eliminated earlier (those were gone from the
  // formula when this record's clauses were saved).
  for (auto it = elim_stack_.rbegin(); it != elim_stack_.rend(); ++it) {
    const Var v = it->v;
    if (static_cast<size_t>(v) >= model->size()) continue;
    if ((*model)[v] != Lbool::kUndef) continue;
    Lbool val = Lbool::kFalse;
    [[maybe_unused]] bool forced = false;
    for (const std::vector<Lit>& cl : it->clauses) {
      Lit vlit = kLitUndef;
      bool satisfied = false;
      for (Lit l : cl) {
        if (l.var() == v) {
          vlit = l;
          continue;
        }
        if (LboolOf((*model)[l.var()], l.negated()) == Lbool::kTrue) {
          satisfied = true;
          break;
        }
      }
      if (satisfied) continue;
      CCR_DCHECK(vlit != kLitUndef);
      const Lbool need = vlit.negated() ? Lbool::kFalse : Lbool::kTrue;
      // The resolvent set guarantees one value satisfies every clause.
      CCR_DCHECK(!forced || val == need);
      forced = true;
      val = need;
    }
    (*model)[v] = val;
  }
}

}  // namespace ccr::sat
