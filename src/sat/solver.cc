#include "src/sat/solver.h"

#include <algorithm>
#include <cmath>

#include "src/common/status.h"

namespace ccr::sat {

namespace {

// Glucose-style restart tuning: restart when the short-term glue average
// exceeds the long-term one by this margin, but never within the first
// kEmaMinConflicts conflicts of a restart (the EMAs need samples first).
constexpr double kEmaFastAlpha = 1.0 / 32.0;
constexpr double kEmaSlowAlpha = 1.0 / 4096.0;
constexpr double kEmaRestartMargin = 1.25;
constexpr int64_t kEmaMinConflicts = 32;

// Inprocessing budgets per Simplify() call, so the between-round pass
// stays a small fraction of the round's solve time even on the first call
// (which sees the whole initial encoding, not just a delta).
constexpr int64_t kSubsumptionStepBudget = 2'000'000;  // literal compares
constexpr int64_t kVivifyPropBudget = 200'000;         // trail literals

// A relocated clause leaves this in its header slot, with the forwarding
// reference in the next word. No live header can collide: the smallest
// stored clause has size 2, so every real header is >= (2 << 3) = 16.
constexpr uint32_t kMovedHeader = 7;

// Bounded variable elimination limits (SatELite-style): skip a variable
// whose occurrence side exceeds kBveOccLimit clauses, or whose resolvents
// would exceed the clauses removed (no-growth rule) or grow past
// kBveResolventLitCap literals.
constexpr size_t kBveOccLimit = 16;
constexpr size_t kBveResolventLitCap = 64;

}  // namespace

Solver::Solver(SolverOptions options) : options_(options) {}

Var Solver::NewVar() {
  const Var v = static_cast<Var>(assigns_.size());
  assigns_.push_back(Lbool::kUndef);
  polarity_.push_back(false);
  frozen_.push_back(0);
  level_.push_back(0);
  reason_.push_back(kRefUndef);
  activity_.push_back(0.0);
  heap_pos_.push_back(-1);
  seen_.push_back(0);
  // 2 watch lists (and 2 binary implication lists) per var; after a Reset
  // the lists (already cleared) are still there and keep their buffers.
  while (watches_.size() < 2 * static_cast<size_t>(v) + 2) {
    watches_.emplace_back();
  }
  while (bins_.size() < 2 * static_cast<size_t>(v) + 2) {
    bins_.emplace_back();
  }
  while (occur_.size() < static_cast<size_t>(v) + 1) {
    occur_.emplace_back();
  }
  eliminable_.push_back(0);
  eliminated_.push_back(0);
  HeapInsert(v);
  return v;
}

void Solver::Reset(SolverOptions options) {
  options_ = options;
  stats_ = {};
  last_call_ = {};
  ok_ = true;
  arena_.clear();
  clauses_.clear();
  learnts_core_.clear();
  learnts_mid_.clear();
  learnts_local_.clear();
  // Keep the outer vectors (and each inner list's buffer); NewVar re-adopts
  // the lists as the variable universe regrows.
  for (std::vector<Watcher>& ws : watches_) ws.clear();
  for (std::vector<Lit>& bs : bins_) bs.clear();
  learnt_binaries_.clear();
  bin_conflict_[0] = bin_conflict_[1] = kLitUndef;
  assigns_.clear();
  polarity_.clear();
  frozen_.clear();
  level_.clear();
  reason_.clear();
  trail_.clear();
  trail_lim_.clear();
  qhead_ = 0;
  bhead_ = 0;
  activity_.clear();
  var_inc_ = 1.0;
  clause_inc_ = 1.0;
  heap_.clear();
  heap_pos_.clear();
  seen_.clear();
  analyze_stack_.clear();
  analyze_toclear_.clear();
  lbd_stamp_.clear();
  lbd_counter_ = 0;
  model_.clear();
  conflict_core_.clear();
  ema_fast_ = 0;
  ema_slow_ = 0;
  ema_seeded_ = false;
  conflicts_since_restart_ = 0;
  max_learnts_ = 0;
  reduce_calls_ = 0;
  inproc_watermark_ = 0;
  pending_bins_.clear();
  vivify_primed_ = false;
  arena_dead_words_ = 0;
  arena_peak_words_ = 0;
  arena_tmp_.clear();
  for (std::vector<ClauseRef>& o : occur_) o.clear();
  eliminable_.clear();
  eliminated_.clear();
  elim_candidates_.clear();
  elim_stack_.clear();
  model_fresh_ = false;
  model_pool_.clear();
  model_pool_next_ = 0;
}

Solver::ClauseRef Solver::AllocClause(const std::vector<Lit>& lits,
                                      bool learnt) {
  const ClauseRef ref = static_cast<ClauseRef>(arena_.size());
  // Arena references must leave bit 31 free for the literal-encoded
  // binary reasons.
  CCR_CHECK(ref < kRefBinaryFlag);
  arena_.push_back((static_cast<uint32_t>(lits.size()) << 3) |
                   (learnt ? 1u : 0u));
  arena_.push_back(0);  // activity bits
  arena_.push_back(0);  // LBD
  for (Lit l : lits) {
    arena_.push_back(static_cast<uint32_t>(l.index()));
  }
  arena_peak_words_ = std::max(arena_peak_words_, arena_.size());
  return ref;
}

void Solver::StoreClauseSig(ClauseRef c) {
  CCR_DCHECK(!ClauseLearnt(c));
  uint64_t s = 0;
  const Lit* lits = ClauseLits(c);
  for (int k = 0; k < ClauseSize(c); ++k) {
    s |= 1ull << (lits[k].var() & 63);
  }
  arena_[c + 1] = static_cast<uint32_t>(s);
  arena_[c + 2] = static_cast<uint32_t>(s >> 32);
}

void Solver::AttachClause(ClauseRef c) {
  CCR_DCHECK(ClauseSize(c) >= 2);
  const Lit* lits = ClauseLits(c);
  watches_[(~lits[0]).index()].push_back({c, lits[1]});
  watches_[(~lits[1]).index()].push_back({c, lits[0]});
}

void Solver::DetachClause(ClauseRef c) {
  const Lit* lits = ClauseLits(c);
  for (int i = 0; i < 2; ++i) {
    auto& ws = watches_[(~lits[i]).index()];
    for (size_t j = 0; j < ws.size(); ++j) {
      if (ws[j].cref == c) {
        ws[j] = ws.back();
        ws.pop_back();
        break;
      }
    }
  }
}

void Solver::AttachBinary(Lit a, Lit b) {
  bins_[(~a).index()].push_back(b);
  bins_[(~b).index()].push_back(a);
}

bool Solver::AddClause(std::vector<Lit> lits) {
  if (!ok_) return false;
  CCR_DCHECK(DecisionLevel() == 0);
  InvalidateModelCache();
  for (Lit l : lits) {
    while (l.var() >= num_vars()) NewVar();
    // Eliminated variables no longer exist in the formula; a caller that
    // mentions one after MarkEliminable took effect is a contract breach.
    CCR_CHECK(!eliminated_[l.var()]);
  }
  return AddClauseInternal(std::move(lits));
}

bool Solver::AddClauseInternal(std::vector<Lit> lits) {
  // Simplify: drop duplicate/false literals; detect tautology/satisfied.
  std::sort(lits.begin(), lits.end());
  std::vector<Lit> out;
  Lit prev = kLitUndef;
  for (Lit l : lits) {
    if (l == prev) continue;
    if (l == ~prev) return true;  // tautology: p ∨ ~p
    const Lbool v = ValueOf(l);
    if (v == Lbool::kTrue) return true;  // already satisfied at level 0
    if (v == Lbool::kFalse) continue;    // already false at level 0
    out.push_back(l);
    prev = l;
  }
  if (out.empty()) {
    ok_ = false;
    return false;
  }
  if (out.size() == 1) {
    UncheckedEnqueue(out[0], kRefUndef);
    ok_ = (Propagate() == kRefUndef);
    return ok_;
  }
  if (out.size() == 2 && options_.use_binary_watches) {
    // Binaries never touch the arena: they live in the implicit
    // implication lists and propagate with literal-encoded reasons.
    AttachBinary(out[0], out[1]);
    if (options_.use_inprocessing) {
      pending_bins_.emplace_back(out[0], out[1]);
    }
    return true;
  }
  const ClauseRef c = AllocClause(out, /*learnt=*/false);
  StoreClauseSig(c);
  clauses_.push_back(c);
  if (TrackOccurrences()) {
    for (Lit l : out) occur_[l.var()].push_back(c);
  }
  AttachClause(c);
  return true;
}

void Solver::AddCnfFrom(const Cnf& cnf, int first_clause) {
  while (num_vars() < cnf.num_vars()) NewVar();
  std::vector<Lit> scratch;
  for (int i = first_clause; i < cnf.num_clauses(); ++i) {
    auto span = cnf.clause(i);
    scratch.assign(span.begin(), span.end());
    AddClause(std::move(scratch));
    scratch.clear();
  }
}

void Solver::UncheckedEnqueue(Lit p, ClauseRef from) {
  CCR_DCHECK(ValueOf(p) == Lbool::kUndef);
  assigns_[p.var()] = p.negated() ? Lbool::kFalse : Lbool::kTrue;
  level_[p.var()] = DecisionLevel();
  reason_[p.var()] = from;
  trail_.push_back(p);
}

Solver::ClauseRef Solver::Propagate() {
  ClauseRef conflict = kRefUndef;
  const bool use_bins = options_.use_binary_watches;
  while (qhead_ < trail_.size()) {
    if (use_bins) {
      // Binary-first BFS: drain every pending binary implication before
      // touching a long clause. Binaries resolve with one contiguous list
      // scan — no arena access, no watcher juggling.
      while (bhead_ < trail_.size()) {
        const Lit bp = trail_[bhead_++];
        for (const Lit q : bins_[bp.index()]) {
          const Lbool v = ValueOf(q);
          if (v == Lbool::kTrue) continue;
          if (v == Lbool::kFalse) {
            bin_conflict_[0] = q;
            bin_conflict_[1] = ~bp;
            qhead_ = bhead_ = trail_.size();
            return kRefBinConflict;
          }
          ++stats_.binary_propagations;
          UncheckedEnqueue(q, MakeBinaryRef(~bp));
        }
      }
    }
    const Lit p = trail_[qhead_++];
    ++stats_.propagations;
    auto& ws = watches_[p.index()];
    size_t i = 0, j = 0;
    const size_t n = ws.size();
    while (i < n) {
      Watcher w = ws[i];
      if (ValueOf(w.blocker) == Lbool::kTrue) {
        ws[j++] = ws[i++];
        continue;
      }
      const ClauseRef c = w.cref;
      Lit* lits = ClauseLits(c);
      const int size = ClauseSize(c);
      // Normalize so the false literal (~p) is at position 1.
      const Lit not_p = ~p;
      if (lits[0] == not_p) std::swap(lits[0], lits[1]);
      CCR_DCHECK(lits[1] == not_p);
      ++i;
      // 0th watch true => clause satisfied.
      if (lits[0] != w.blocker && ValueOf(lits[0]) == Lbool::kTrue) {
        ws[j++] = {c, lits[0]};
        continue;
      }
      // Look for a new literal to watch.
      bool found = false;
      for (int k = 2; k < size; ++k) {
        if (ValueOf(lits[k]) != Lbool::kFalse) {
          std::swap(lits[1], lits[k]);
          watches_[(~lits[1]).index()].push_back({c, lits[0]});
          found = true;
          break;
        }
      }
      if (found) continue;
      // Clause is unit or conflicting.
      ws[j++] = {c, lits[0]};
      if (ValueOf(lits[0]) == Lbool::kFalse) {
        conflict = c;
        qhead_ = bhead_ = trail_.size();
        while (i < n) ws[j++] = ws[i++];
      } else {
        UncheckedEnqueue(lits[0], c);
      }
    }
    ws.resize(j);
    if (conflict != kRefUndef) break;
  }
  return conflict;
}

void Solver::VarBump(Var v) {
  activity_[v] += var_inc_;
  if (activity_[v] > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
  if (heap_pos_[v] >= 0) HeapDecrease(v);
}

void Solver::ClauseBump(ClauseRef c) {
  const float act = ClauseActivity(c) + static_cast<float>(clause_inc_);
  SetClauseActivity(c, act);
  if (act > 1e20f) {
    for (ClauseRef l : learnts_core_) {
      SetClauseActivity(l, ClauseActivity(l) * 1e-20f);
    }
    for (ClauseRef l : learnts_mid_) {
      SetClauseActivity(l, ClauseActivity(l) * 1e-20f);
    }
    for (ClauseRef l : learnts_local_) {
      SetClauseActivity(l, ClauseActivity(l) * 1e-20f);
    }
    clause_inc_ *= 1e-20;
  }
}

int Solver::ComputeLbd(std::span<const Lit> lits) {
  if (lbd_stamp_.size() < trail_lim_.size() + 1) {
    lbd_stamp_.resize(trail_lim_.size() + 1, 0);
  }
  ++lbd_counter_;
  int lbd = 0;
  for (Lit l : lits) {
    const int lev = level_[l.var()];
    if (lev == 0) continue;
    if (lbd_stamp_[lev] != lbd_counter_) {
      lbd_stamp_[lev] = lbd_counter_;
      ++lbd;
    }
  }
  return lbd;
}

void Solver::Analyze(ClauseRef conflict, std::vector<Lit>* out_learnt,
                     int* out_btlevel, int* out_lbd) {
  int path_count = 0;
  Lit p = kLitUndef;
  out_learnt->clear();
  out_learnt->push_back(kLitUndef);  // slot for the asserting literal
  size_t index = trail_.size();

  ClauseRef c = conflict;
  do {
    CCR_DCHECK(c != kRefUndef);
    Lit bin_buf[2];
    const Lit* lits;
    int size;
    if (c == kRefBinConflict) {
      bin_buf[0] = bin_conflict_[0];
      bin_buf[1] = bin_conflict_[1];
      lits = bin_buf;
      size = 2;
    } else if (RefIsBinary(c)) {
      // Reason clause of p is (p ∨ other); position 0 mirrors the arena
      // invariant that lits[0] is the asserting literal.
      bin_buf[0] = p;
      bin_buf[1] = RefLit(c);
      lits = bin_buf;
      size = 2;
    } else {
      if (ClauseLearnt(c)) {
        ClauseBump(c);
        if (options_.use_lbd_tiers) {
          // Glucose-style dynamic glue: a learnt clause participating in
          // analysis refreshes its LBD; improvements promote it at the
          // next ReduceDb.
          const int now = ComputeLbd(
              std::span<const Lit>(ClauseLits(c), ClauseSize(c)));
          if (now > 0 && static_cast<uint32_t>(now) < ClauseLbd(c)) {
            SetClauseLbd(c, static_cast<uint32_t>(now));
          }
        }
      }
      lits = ClauseLits(c);
      size = ClauseSize(c);
    }
    for (int k = (p == kLitUndef) ? 0 : 1; k < size; ++k) {
      const Lit q = lits[k];
      const Var v = q.var();
      if (!seen_[v] && level_[v] > 0) {
        seen_[v] = 1;
        VarBump(v);
        if (level_[v] >= DecisionLevel()) {
          ++path_count;
        } else {
          out_learnt->push_back(q);
        }
      }
    }
    // Select next literal on the current level to resolve on.
    while (!seen_[trail_[--index].var()]) {
    }
    p = trail_[index];
    c = reason_[p.var()];
    seen_[p.var()] = 0;
    --path_count;
  } while (path_count > 0);
  (*out_learnt)[0] = ~p;

  // Conflict-clause minimization: drop literals implied by the rest.
  // Snapshot the pre-minimization literals first: the loops below compact
  // the clause in place, so dropped literals are overwritten and only this
  // snapshot can clear their seen_ marks afterwards. A stale seen_ bit
  // would make every later Analyze skip that variable entirely —
  // producing learnt clauses that are not implied by the formula.
  std::vector<Lit>& learnt = *out_learnt;
  analyze_toclear_.assign(learnt.begin(), learnt.end());
  size_t keep = 1;
  if (options_.use_deep_ccmin) {
    // Recursive (deep) minimization: a literal is redundant if every
    // antecedent chain from it bottoms out in other learnt literals (or
    // level 0). The abstract-level filter prunes chains that could only
    // fail.
    uint32_t abstract_levels = 0;
    for (size_t k = 1; k < learnt.size(); ++k) {
      abstract_levels |= 1u << (level_[learnt[k].var()] & 31);
    }
    for (size_t k = 1; k < learnt.size(); ++k) {
      if (reason_[learnt[k].var()] == kRefUndef ||
          !LitRedundant(learnt[k], abstract_levels)) {
        learnt[keep++] = learnt[k];
      }
    }
  } else {
    // One-step check: redundant if the reason's other literals are all
    // already in the learnt clause (or level 0).
    for (size_t k = 1; k < learnt.size(); ++k) {
      const Var v = learnt[k].var();
      const ClauseRef r = reason_[v];
      bool redundant = false;
      if (r != kRefUndef) {
        if (RefIsBinary(r)) {
          const Lit other = RefLit(r);
          redundant = seen_[other.var()] || level_[other.var()] == 0;
        } else {
          redundant = true;
          const Lit* rl = ClauseLits(r);
          const int rs = ClauseSize(r);
          for (int m = 1; m < rs; ++m) {
            const Var w = rl[m].var();
            if (!seen_[w] && level_[w] > 0) {
              redundant = false;
              break;
            }
          }
        }
      }
      if (!redundant) learnt[keep++] = learnt[k];
    }
  }
  stats_.learnt_literals += static_cast<int64_t>(keep);
  learnt.resize(keep);

  // Backtrack level: highest level among the non-asserting literals.
  if (learnt.size() == 1) {
    *out_btlevel = 0;
  } else {
    size_t max_i = 1;
    for (size_t k = 2; k < learnt.size(); ++k) {
      if (level_[learnt[k].var()] > level_[learnt[max_i].var()]) max_i = k;
    }
    std::swap(learnt[1], learnt[max_i]);
    *out_btlevel = level_[learnt[1].var()];
  }
  *out_lbd = ComputeLbd(std::span<const Lit>(learnt.data(), learnt.size()));
  // The snapshot covers every kept literal, every dropped one, and every
  // mark LitRedundant added.
  for (Lit l : analyze_toclear_) seen_[l.var()] = 0;
  analyze_toclear_.clear();
}

bool Solver::LitRedundant(Lit p, uint32_t abstract_levels) {
  analyze_stack_.clear();
  analyze_stack_.push_back(p);
  const size_t top = analyze_toclear_.size();
  while (!analyze_stack_.empty()) {
    const Lit q = analyze_stack_.back();
    analyze_stack_.pop_back();
    const ClauseRef r = reason_[q.var()];
    CCR_DCHECK(r != kRefUndef);
    // Antecedents of q: the reason clause minus q's own (asserting)
    // literal — for a binary reason that is exactly the encoded literal.
    Lit bin_other = kLitUndef;
    const Lit* lits;
    int size;
    if (RefIsBinary(r)) {
      bin_other = RefLit(r);
      lits = &bin_other;
      size = 1;
    } else {
      lits = ClauseLits(r) + 1;
      size = ClauseSize(r) - 1;
    }
    for (int k = 0; k < size; ++k) {
      const Lit l = lits[k];
      const Var v = l.var();
      if (seen_[v] || level_[v] == 0) continue;
      if (reason_[v] != kRefUndef &&
          ((1u << (level_[v] & 31)) & abstract_levels) != 0) {
        seen_[v] = 1;
        analyze_stack_.push_back(l);
        analyze_toclear_.push_back(l);
      } else {
        // Not removable: undo the marks this call added.
        for (size_t j = top; j < analyze_toclear_.size(); ++j) {
          seen_[analyze_toclear_[j].var()] = 0;
        }
        analyze_toclear_.resize(top);
        return false;
      }
    }
  }
  return true;
}

void Solver::AnalyzeFinal(Lit p, std::vector<Lit>* out_core) {
  out_core->clear();
  out_core->push_back(p);
  if (DecisionLevel() == 0) return;
  seen_[p.var()] = 1;
  for (size_t i = trail_.size();
       i-- > static_cast<size_t>(trail_lim_[0]);) {
    const Var v = trail_[i].var();
    if (!seen_[v]) continue;
    const ClauseRef r = reason_[v];
    if (r == kRefUndef) {
      if (level_[v] > 0) out_core->push_back(~trail_[i]);
    } else if (RefIsBinary(r)) {
      const Lit other = RefLit(r);
      if (level_[other.var()] > 0) seen_[other.var()] = 1;
    } else {
      const Lit* lits = ClauseLits(r);
      const int size = ClauseSize(r);
      for (int k = 1; k < size; ++k) {
        if (level_[lits[k].var()] > 0) seen_[lits[k].var()] = 1;
      }
    }
    seen_[v] = 0;
  }
  seen_[p.var()] = 0;
}

void Solver::CancelUntil(int target) {
  if (DecisionLevel() <= target) return;
  const size_t keep = static_cast<size_t>(trail_lim_[target]);
  for (size_t i = trail_.size(); i-- > keep;) {
    const Var v = trail_[i].var();
    assigns_[v] = Lbool::kUndef;
    if (options_.use_phase_saving) polarity_[v] = trail_[i].negated();
    reason_[v] = kRefUndef;
    if (heap_pos_[v] < 0) HeapInsert(v);
  }
  trail_.resize(trail_lim_[target]);
  trail_lim_.resize(target);
  qhead_ = trail_.size();
  bhead_ = qhead_;
}

// --- decision heap -------------------------------------------------------

void Solver::HeapInsert(Var v) {
  // Released scope variables are frozen false at level 0 and must never
  // come back as decision candidates.
  CCR_DCHECK(!frozen_[v]);
  heap_pos_[v] = static_cast<int>(heap_.size());
  heap_.push_back(v);
  HeapDecrease(v);
}

void Solver::HeapDecrease(Var v) {
  // Percolate up by activity.
  int i = heap_pos_[v];
  while (i > 0) {
    const int parent = (i - 1) / 2;
    if (activity_[heap_[parent]] >= activity_[v]) break;
    heap_[i] = heap_[parent];
    heap_pos_[heap_[i]] = i;
    i = parent;
  }
  heap_[i] = v;
  heap_pos_[v] = i;
}

Var Solver::HeapPop() {
  const Var top = heap_[0];
  heap_pos_[top] = -1;
  const Var last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    // Percolate `last` down from the root.
    int i = 0;
    const int n = static_cast<int>(heap_.size());
    while (true) {
      int child = 2 * i + 1;
      if (child >= n) break;
      if (child + 1 < n &&
          activity_[heap_[child + 1]] > activity_[heap_[child]]) {
        ++child;
      }
      if (activity_[heap_[child]] <= activity_[last]) break;
      heap_[i] = heap_[child];
      heap_pos_[heap_[i]] = i;
      i = child;
    }
    heap_[i] = last;
    heap_pos_[last] = i;
  }
  return top;
}

Lit Solver::PickBranchLit() {
  Var next = kVarUndef;
  if (options_.use_vsids) {
    while (!HeapEmpty()) {
      next = HeapPop();
      if (assigns_[next] == Lbool::kUndef && !eliminated_[next]) break;
      next = kVarUndef;
    }
  } else {
    for (Var v = 0; v < num_vars(); ++v) {
      if (assigns_[v] == Lbool::kUndef && !eliminated_[v]) {
        next = v;
        break;
      }
    }
  }
  if (next == kVarUndef) return kLitUndef;
  CCR_DCHECK(!frozen_[next]);
  return Lit(next, polarity_[next]);
}

void Solver::RecordLearnt(const std::vector<Lit>& learnt, int lbd) {
  stats_.lbd_sum += lbd;
  if (learnt.size() == 1) {
    UncheckedEnqueue(learnt[0], kRefUndef);
    return;
  }
  if (learnt.size() == 2 && options_.use_binary_watches) {
    AttachBinary(learnt[0], learnt[1]);
    // Recorded only for the LearntClauses() debug accessor; capped so a
    // conflict-heavy production solve cannot grow it without bound.
    if (learnt_binaries_.size() < 4096) {
      learnt_binaries_.emplace_back(learnt[0], learnt[1]);
    }
    ++stats_.learnt_core;  // binaries are kept forever by construction
    UncheckedEnqueue(learnt[0], MakeBinaryRef(learnt[1]));
    return;
  }
  const ClauseRef c = AllocClause(learnt, /*learnt=*/true);
  SetClauseLbd(c, static_cast<uint32_t>(std::max(lbd, 1)));
  if (options_.use_lbd_tiers) {
    if (lbd <= 2) {
      learnts_core_.push_back(c);
      ++stats_.learnt_core;
    } else if (lbd <= 6) {
      learnts_mid_.push_back(c);
      ++stats_.learnt_mid;
    } else {
      learnts_local_.push_back(c);
      ++stats_.learnt_local;
    }
  } else {
    learnts_local_.push_back(c);
    ++stats_.learnt_local;
  }
  AttachClause(c);
  ClauseBump(c);
  UncheckedEnqueue(learnt[0], c);
}

void Solver::ReduceDb() {
  // Legacy single-tier reduction: keep the most active half of learnt
  // clauses; never drop reasons.
  std::vector<ClauseRef>& learnts = learnts_local_;
  std::sort(learnts.begin(), learnts.end(),
            [this](ClauseRef a, ClauseRef b) {
              return ClauseActivity(a) > ClauseActivity(b);
            });
  size_t keep = learnts.size() / 2;
  std::vector<ClauseRef> kept;
  kept.reserve(keep + 16);
  for (size_t i = 0; i < learnts.size(); ++i) {
    const ClauseRef c = learnts[i];
    const Lit first = ClauseLits(c)[0];
    const bool is_reason = assigns_[first.var()] != Lbool::kUndef &&
                           reason_[first.var()] == c;
    if (i < keep || ClauseSize(c) == 2 || is_reason) {
      kept.push_back(c);
    } else {
      DetachClause(c);
      MarkClauseDead(c);
    }
  }
  learnts.swap(kept);
}

void Solver::ReduceDbTiered() {
  ++reduce_calls_;
  auto is_reason = [this](ClauseRef c) {
    const Lit first = ClauseLits(c)[0];
    return assigns_[first.var()] != Lbool::kUndef &&
           reason_[first.var()] == c;
  };
  // Promote by improved glue (LBDs refreshed during conflict analysis):
  // glue <= 2 graduates to core from either tier, glue <= 6 lifts local
  // clauses into mid.
  auto promote = [&](std::vector<ClauseRef>* list, bool from_local) {
    size_t j = 0;
    for (ClauseRef c : *list) {
      const uint32_t lbd = ClauseLbd(c);
      if (lbd <= 2) {
        learnts_core_.push_back(c);
      } else if (from_local && lbd <= 6) {
        learnts_mid_.push_back(c);
      } else {
        (*list)[j++] = c;
      }
    }
    list->resize(j);
  };
  promote(&learnts_mid_, /*from_local=*/false);
  promote(&learnts_local_, /*from_local=*/true);

  // Local tier: activity-sorted, keep the better half (plus reasons).
  std::sort(learnts_local_.begin(), learnts_local_.end(),
            [this](ClauseRef a, ClauseRef b) {
              return ClauseActivity(a) > ClauseActivity(b);
            });
  const size_t local_keep = learnts_local_.size() / 2;
  std::vector<ClauseRef> kept;
  kept.reserve(local_keep + 16);
  for (size_t i = 0; i < learnts_local_.size(); ++i) {
    const ClauseRef c = learnts_local_[i];
    if (i < local_keep || is_reason(c)) {
      kept.push_back(c);
    } else {
      DetachClause(c);
      MarkClauseDead(c);
    }
  }
  learnts_local_.swap(kept);

  // Mid tier: reduced rarely, by glue then activity.
  if (reduce_calls_ % 3 == 0 && learnts_mid_.size() > 16) {
    std::sort(learnts_mid_.begin(), learnts_mid_.end(),
              [this](ClauseRef a, ClauseRef b) {
                if (ClauseLbd(a) != ClauseLbd(b)) {
                  return ClauseLbd(a) < ClauseLbd(b);
                }
                return ClauseActivity(a) > ClauseActivity(b);
              });
    const size_t mid_keep = learnts_mid_.size() / 2;
    kept.clear();
    kept.reserve(mid_keep + 16);
    for (size_t i = 0; i < learnts_mid_.size(); ++i) {
      const ClauseRef c = learnts_mid_[i];
      if (i < mid_keep || is_reason(c)) {
        kept.push_back(c);
      } else {
        DetachClause(c);
        MarkClauseDead(c);
      }
    }
    learnts_mid_.swap(kept);
  }
}

void Solver::SweepSatisfied(std::vector<ClauseRef>* list) {
  size_t j = 0;
  for (ClauseRef c : *list) {
    if (ClauseDead(c)) continue;  // removed by inprocessing, already detached
    const Lit* lits = ClauseLits(c);
    const int size = ClauseSize(c);
    bool satisfied = false;
    for (int k = 0; k < size && !satisfied; ++k) {
      satisfied = ValueOf(lits[k]) == Lbool::kTrue;
    }
    if (satisfied) {
      DetachClause(c);
      MarkClauseDead(c);
    } else {
      (*list)[j++] = c;
    }
  }
  list->resize(j);
}

void Solver::SweepSatisfiedProblem() {
  CCR_DCHECK(DecisionLevel() == 0);
  for (ClauseRef c : clauses_) {
    if (ClauseDead(c)) continue;
    const Lit* lits = ClauseLits(c);
    const int size = ClauseSize(c);
    bool satisfied = false;
    for (int k = 0; k < size && !satisfied; ++k) {
      satisfied = ValueOf(lits[k]) == Lbool::kTrue;
    }
    if (satisfied) {
      DetachClause(c);
      MarkClauseDead(c);
    }
  }
  CompactProblemClauses();
}

void Solver::CompactProblemClauses() {
  size_t j = 0;
  size_t wm = inproc_watermark_;
  for (size_t i = 0; i < clauses_.size(); ++i) {
    if (ClauseDead(clauses_[i])) {
      if (i < inproc_watermark_) --wm;
      continue;
    }
    clauses_[j++] = clauses_[i];
  }
  clauses_.resize(j);
  inproc_watermark_ = wm;
  CCR_DCHECK(inproc_watermark_ <= clauses_.size());
}

void Solver::RemoveSatisfiedTopLevel() {
  SweepSatisfied(&learnts_core_);
  SweepSatisfied(&learnts_mid_);
  SweepSatisfied(&learnts_local_);
}

void Solver::SweepBinaries() {
  // An entry (p -> q) is dead once either variable is fixed at level 0:
  // p fixed means the list is never scanned again (or was fully
  // propagated), q fixed true means the clause is satisfied, and q fixed
  // false implies p's var was fixed by the same propagation. This is what
  // sweeps the binary clauses of released ScopedVars scopes.
  CCR_DCHECK(DecisionLevel() == 0);
  for (size_t i = 0; i < bins_.size(); ++i) {
    std::vector<Lit>& list = bins_[i];
    if (list.empty()) continue;
    const Lit p = Lit::FromIndex(static_cast<int32_t>(i));
    if (assigns_[p.var()] != Lbool::kUndef) {
      list.clear();
      continue;
    }
    size_t j = 0;
    for (Lit q : list) {
      if (assigns_[q.var()] == Lbool::kUndef) list[j++] = q;
    }
    list.resize(j);
  }
}

bool Solver::Simplify() {
  CCR_DCHECK(DecisionLevel() == 0);
  if (!ok_) return false;
  if (Propagate() != kRefUndef) {
    ok_ = false;
    return false;
  }
  RemoveSatisfiedTopLevel();
  SweepSatisfiedProblem();
  if (options_.use_binary_watches) SweepBinaries();
  if (options_.use_inprocessing) {
    SubsumptionPass();
    if (ok_) VivificationPass();
  }
  if (options_.use_bve && ok_) EliminatePass();
  MaybeGarbageCollect();
  return ok_;
}

void Solver::PrimeInprocessing() {
  for (ClauseRef c : clauses_) SetClauseVivified(c, true);
  vivify_primed_ = true;
  inproc_watermark_ = clauses_.size();
  pending_bins_.clear();
}

bool Solver::FreezeScope(Lit activation, std::span<const Var> vars) {
  if (!ok_) return false;
  CCR_DCHECK(DecisionLevel() == 0);
  InvalidateModelCache();
  // One batched multi-literal pass: enqueue ¬activation and every ¬v,
  // then run a single propagation fixpoint — instead of one unit clause
  // (each with its own propagation round) per variable.
  const Lit neg_act = ~activation;
  const Lbool av = ValueOf(neg_act);
  if (av == Lbool::kFalse) {
    ok_ = false;
    return false;
  }
  if (av == Lbool::kUndef) UncheckedEnqueue(neg_act, kRefUndef);
  frozen_[activation.var()] = 1;
  for (Var v : vars) {
    const Lbool val = assigns_[v];
    if (val == Lbool::kTrue) {
      // A scope var fixed true at level 0 means the formula already
      // contradicts the freeze — only possible if it is UNSAT.
      ok_ = false;
      return false;
    }
    if (val == Lbool::kUndef) UncheckedEnqueue(Lit::Neg(v), kRefUndef);
    CCR_DCHECK(!eliminated_[v]);
    frozen_[v] = 1;
  }
  ok_ = (Propagate() == kRefUndef);
  return ok_;
}

std::vector<std::vector<Lit>> Solver::LearntClauses() const {
  std::vector<std::vector<Lit>> out;
  for (const std::vector<ClauseRef>* list :
       {&learnts_core_, &learnts_mid_, &learnts_local_}) {
    for (ClauseRef c : *list) {
      if (ClauseDead(c)) continue;
      const Lit* lits = ClauseLits(c);
      out.emplace_back(lits, lits + ClauseSize(c));
    }
  }
  for (const auto& [a, b] : learnt_binaries_) {
    out.push_back({a, b});
  }
  return out;
}

int64_t Solver::Luby(int64_t i) {
  // Luby sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
  int64_t k = 1;
  while ((1LL << k) - 1 < i + 1) ++k;
  while ((1LL << k) - 1 != i + 1) {
    --k;
    i = i - ((1LL << k) - 1);
  }
  return 1LL << (k - 1);
}

SolveResult Solver::Search(int64_t conflict_budget,
                           std::span<const Lit> assumptions) {
  int64_t conflicts_here = 0;
  std::vector<Lit> learnt;
  while (true) {
    const ClauseRef conflict = Propagate();
    if (conflict != kRefUndef) {
      ++stats_.conflicts;
      ++conflicts_here;
      ++conflicts_since_restart_;
      if (DecisionLevel() == 0) {
        ok_ = false;
        return SolveResult::kUnsat;
      }
      int bt_level = 0;
      int lbd = 0;
      Analyze(conflict, &learnt, &bt_level, &lbd);
      if (!ema_seeded_) {
        // Seed both averages with the first sample: from 0, the slow EMA
        // would stay near 0 for thousands of conflicts and the restart
        // test would degenerate to a fixed 32-conflict cadence.
        ema_seeded_ = true;
        ema_fast_ = ema_slow_ = static_cast<double>(lbd);
      } else {
        ema_fast_ += (static_cast<double>(lbd) - ema_fast_) * kEmaFastAlpha;
        ema_slow_ += (static_cast<double>(lbd) - ema_slow_) * kEmaSlowAlpha;
      }
      // Backjumping may pop assumption pseudo-decisions; the
      // honor-assumptions step below re-establishes them, and an
      // assumption forced false there yields kUnsat with a core.
      CancelUntil(bt_level);
      RecordLearnt(learnt, lbd);
      VarDecay();
      ClauseDecay();
      continue;
    }

    // No conflict.
    bool restart = false;
    if (options_.use_restarts) {
      if (options_.use_ema_restarts) {
        restart = conflicts_since_restart_ >= kEmaMinConflicts &&
                  ema_fast_ > kEmaRestartMargin * ema_slow_;
      } else {
        restart = conflict_budget >= 0 && conflicts_here >= conflict_budget;
      }
    }
    if (restart) {
      CancelUntil(0);
      return SolveResult::kUnknown;  // restart
    }
    if (options_.max_conflicts >= 0 &&
        stats_.conflicts >= options_.max_conflicts) {
      CancelUntil(0);
      return SolveResult::kUnknown;
    }
    if (DecisionLevel() == 0) RemoveSatisfiedTopLevel();
    if (options_.use_clause_deletion &&
        static_cast<double>(NumReducibleLearnts()) >= max_learnts_) {
      if (options_.use_lbd_tiers) {
        ReduceDbTiered();
      } else {
        ReduceDb();
      }
      max_learnts_ *= 1.1;
      MaybeGarbageCollect();
    }

    Lit next = kLitUndef;
    // Honor assumptions first.
    while (DecisionLevel() < static_cast<int>(assumptions.size())) {
      const Lit a = assumptions[DecisionLevel()];
      const Lbool av = ValueOf(a);
      if (av == Lbool::kTrue) {
        trail_lim_.push_back(static_cast<int>(trail_.size()));
      } else if (av == Lbool::kFalse) {
        AnalyzeFinal(~a, &conflict_core_);
        return SolveResult::kUnsat;
      } else {
        next = a;
        break;
      }
    }
    if (next == kLitUndef) {
      next = PickBranchLit();
      if (next == kLitUndef) {
        // All variables assigned: model found.
        CacheCurrentModel();
        model_.assign(assigns_.begin(), assigns_.end());
        if (!elim_stack_.empty()) ExtendModel(&model_);
        return SolveResult::kSat;
      }
      ++stats_.decisions;
    }
    trail_lim_.push_back(static_cast<int>(trail_.size()));
    UncheckedEnqueue(next, kRefUndef);
  }
}

void Solver::CacheCurrentModel() {
  if (!options_.use_model_cache) return;
  if (model_fresh_ && !model_.empty()) {
    // Rotate the previous newest model into the ring.
    if (model_pool_.size() < kModelPoolSize) {
      model_pool_.push_back(model_);
    } else {
      model_pool_[model_pool_next_] = model_;
      model_pool_next_ = (model_pool_next_ + 1) % kModelPoolSize;
    }
  }
  model_fresh_ = true;
}

SolveResult Solver::SolveInternal(std::span<const Lit> assumptions) {
  const SolverStats before = stats_;
  if (!assumptions.empty()) ++stats_.assumption_solves;
  // Witness reuse: a recent model satisfying every assumption already
  // decides the call — kSat, with that model, zero search.
  if (options_.use_model_cache && ok_) {
    bool hit = false;
    if (model_fresh_ && ModelWitnesses(model_, assumptions)) {
      hit = true;  // model_ stays the answer
    } else {
      for (size_t k = model_pool_.size(); k-- > 0 && !hit;) {
        if (ModelWitnesses(model_pool_[k], assumptions)) {
          // Trade places: the witness becomes model_, the displaced
          // newest model stays cached in the witness's slot. (Rotating
          // via CacheCurrentModel here could overwrite the very slot
          // being read when the ring is full.)
          std::swap(model_, model_pool_[k]);
          model_fresh_ = true;
          hit = true;
        }
      }
    }
    if (hit) {
      ++stats_.model_cache_hits;
      conflict_core_.clear();
      last_call_ = stats_ - before;
      return SolveResult::kSat;
    }
  }
  const SolveResult r = SolveLoop(assumptions);
  last_call_ = stats_ - before;
  return r;
}

SolveResult Solver::SolveLoop(std::span<const Lit> assumptions) {
  conflict_core_.clear();
  if (!ok_) return SolveResult::kUnsat;
  for (Lit a : assumptions) {
    CCR_CHECK(a.var() < num_vars());
    CCR_CHECK(!eliminated_[a.var()]);
  }
  CancelUntil(0);
  max_learnts_ =
      std::max(1000.0, static_cast<double>(clauses_.size()) / 3.0);
  ema_fast_ = 0;
  ema_slow_ = 0;
  ema_seeded_ = false;
  conflicts_since_restart_ = 0;

  int64_t restart_round = 0;
  while (true) {
    const int64_t budget =
        (options_.use_restarts && !options_.use_ema_restarts)
            ? 100 * Luby(restart_round)
            : -1;
    const SolveResult r = Search(budget, assumptions);
    if (r != SolveResult::kUnknown) {
      CancelUntil(0);
      return r;
    }
    if (options_.max_conflicts >= 0 &&
        stats_.conflicts >= options_.max_conflicts) {
      CancelUntil(0);
      return SolveResult::kUnknown;
    }
    ++restart_round;
    ++stats_.restarts;
    conflicts_since_restart_ = 0;
  }
}

// --- inprocessing --------------------------------------------------------

void Solver::ShrinkClause(ClauseRef c, std::span<const Lit> lits) {
  // `c` is detached. Re-home the shortened clause by its new size.
  if (lits.empty()) {
    MarkClauseDead(c);
    ok_ = false;
    return;
  }
  if (lits.size() == 1) {
    MarkClauseDead(c);
    const Lbool v = ValueOf(lits[0]);
    if (v == Lbool::kFalse) {
      ok_ = false;
    } else if (v == Lbool::kUndef) {
      UncheckedEnqueue(lits[0], kRefUndef);  // propagated by the caller
    }
    return;
  }
  CCR_DCHECK(!ClauseLearnt(c));
  const int old_size = ClauseSize(c);
  Lit* dst = ClauseLits(c);
  std::copy(lits.begin(), lits.end(), dst);
  SetClauseSize(c, static_cast<int>(lits.size()));
  // The abandoned tail words are dead arena weight from here on.
  arena_dead_words_ += static_cast<size_t>(old_size) - lits.size();
  SetClauseVivified(c, false);  // a changed clause is worth revisiting
  if (lits.size() == 2 && options_.use_binary_watches) {
    MarkClauseDead(c);  // migrated out of the arena into the bin lists
    AttachBinary(lits[0], lits[1]);
    return;
  }
  StoreClauseSig(c);
  AttachClause(c);
}

void Solver::StrengthenClause(ClauseRef c, Lit l) {
  DetachClause(c);
  std::vector<Lit> out;
  const Lit* lits = ClauseLits(c);
  const int size = ClauseSize(c);
  out.reserve(static_cast<size_t>(size) - 1);
  bool satisfied = false;
  for (int k = 0; k < size && !satisfied; ++k) {
    const Lit x = lits[k];
    if (x == l) continue;
    const Lbool v = ValueOf(x);
    if (v == Lbool::kTrue) satisfied = true;
    if (v == Lbool::kUndef) out.push_back(x);
    // Level-0 false literals are dropped along the way.
  }
  if (satisfied) {
    MarkClauseDead(c);
    return;
  }
  ShrinkClause(c, out);
}

void Solver::SubsumptionPass() {
  CCR_DCHECK(DecisionLevel() == 0);
  CCR_DCHECK(inproc_watermark_ <= clauses_.size());
  // Backward subsumption / self-subsuming resolution: the clauses the
  // encode layer appended since the last pass — everything at or beyond
  // the watermark — act as subsumers against the whole problem DB. A
  // subsumer C removes any D ⊇ C outright; if C matches D except for
  // exactly one flipped literal l, resolving on l strengthens D by
  // dropping ~l (equivalence-preserving both ways). Candidates come from
  // the persistent occurrence index; dead or stale entries are purged in
  // place as the scan walks a list.
  const size_t fresh_begin = inproc_watermark_;
  if (fresh_begin == clauses_.size() && pending_bins_.empty()) return;

  int64_t steps = 0;
  // Does the clause `sub` subsume `d` outright (return 1), subsume it
  // after flipping exactly one literal (return 2, *flip = the literal of
  // `sub` whose negation must leave `d`), or neither (return 0)?
  auto subsume_check = [this, &steps](std::span<const Lit> sub, ClauseRef d,
                                      Lit* flip) -> int {
    const Lit* dl = ClauseLits(d);
    const int ds = ClauseSize(d);
    Lit flipped = kLitUndef;
    for (Lit a : sub) {
      steps += ds;
      bool found = false;
      bool neg = false;
      for (int b = 0; b < ds; ++b) {
        if (dl[b] == a) {
          found = true;
          break;
        }
        if (dl[b] == ~a) {
          neg = true;
          break;
        }
      }
      if (found) continue;
      if (neg && flipped == kLitUndef) {
        flipped = a;
        continue;
      }
      return 0;
    }
    if (flipped == kLitUndef) return 1;
    *flip = flipped;
    return 2;
  };

  auto run_subsumer = [&](std::span<const Lit> sub, ClauseRef self) {
    // Candidates must contain every var of `sub`; scan the shortest
    // occurrence list.
    int best_var = -1;
    size_t best_len = SIZE_MAX;
    for (Lit a : sub) {
      const size_t len = occur_[a.var()].size();
      if (len < best_len) {
        best_len = len;
        best_var = a.var();
      }
    }
    if (best_var < 0) return;
    uint64_t sub_sig = 0;
    for (Lit a : sub) sub_sig |= 1ull << (a.var() & 63);
    std::vector<ClauseRef>& list = occur_[best_var];
    size_t j = 0;
    for (size_t i = 0; i < list.size(); ++i) {
      const ClauseRef d = list[i];
      if (ClauseDead(d)) continue;  // lazy purge
      list[j++] = d;
      if (d == self || !ok_) continue;
      if (ClauseSize(d) < static_cast<int>(sub.size())) continue;
      if ((sub_sig & ~ClauseSig(d)) != 0) continue;
      Lit flip = kLitUndef;
      const int verdict = subsume_check(sub, d, &flip);
      if (verdict == 1) {
        DetachClause(d);
        MarkClauseDead(d);
        ++stats_.subsumed;
        --j;  // died just now: purge it from this list too
      } else if (verdict == 2) {
        StrengthenClause(d, ~flip);
        ++stats_.subsumed;
        if (ClauseDead(d)) --j;  // shrank to unit/binary or was satisfied
      }
    }
    list.resize(j);
  };

  // New binary clauses first (the currency-order encodings are dominated
  // by them), then the appended long clauses.
  for (const auto& [a, b] : pending_bins_) {
    if (steps > kSubsumptionStepBudget || !ok_) break;
    const Lit sub[2] = {a, b};
    run_subsumer(std::span<const Lit>(sub, 2), kRefUndef);
  }
  pending_bins_.clear();
  for (size_t i = fresh_begin; i < clauses_.size(); ++i) {
    if (steps > kSubsumptionStepBudget || !ok_) break;
    const ClauseRef c = clauses_[i];
    if (ClauseDead(c)) continue;
    run_subsumer(
        std::span<const Lit>(ClauseLits(c), ClauseSize(c)), c);
  }

  // Strengthening may have queued units; fold them in.
  if (ok_ && Propagate() != kRefUndef) ok_ = false;
  CompactProblemClauses();
  inproc_watermark_ = clauses_.size();
}

void Solver::VivificationPass() {
  CCR_DCHECK(DecisionLevel() == 0);
  if (!ok_) return;
  // Clause vivification (distillation): for problem clause C = (l1..ln),
  // assume ¬l1, ¬l2, ... one at a time with full propagation (C itself
  // detached). A conflict — or a literal already decided by the prefix —
  // proves a strict subclause is implied, and C shrinks to it.
  //
  // Scope: only the round's delta. The first pass stamps the initial
  // encoding as vivified WITHOUT distilling it (wholesale distillation of
  // a generator-canonical encoding costs far more propagation than every
  // solve of the session combined); later passes distill exactly the
  // clauses appended — or strengthened by subsumption — since, under a
  // propagation budget as a backstop.
  if (!vivify_primed_) {
    vivify_primed_ = true;
    for (ClauseRef c : clauses_) SetClauseVivified(c, true);
    return;
  }
  const int64_t start_props = stats_.propagations;
  std::vector<Lit> kept;
  for (size_t n = clauses_.size(); n-- > 0;) {
    if (!ok_) break;
    if (stats_.propagations - start_props > kVivifyPropBudget) break;
    const ClauseRef c = clauses_[n];
    if (ClauseDead(c) || ClauseVivified(c)) continue;
    SetClauseVivified(c, true);
    const Lit* lits = ClauseLits(c);
    const int size = ClauseSize(c);
    bool satisfied = false;
    for (int k = 0; k < size && !satisfied; ++k) {
      satisfied = ValueOf(lits[k]) == Lbool::kTrue;
    }
    if (satisfied) {
      DetachClause(c);
      MarkClauseDead(c);
      continue;
    }
    if (size < 3) continue;  // arena binaries (legacy mode): leave alone
    DetachClause(c);
    kept.clear();
    for (int k = 0; k < size; ++k) {
      const Lit l = lits[k];
      const Lbool v = ValueOf(l);
      if (v == Lbool::kTrue) {
        // ¬(prefix) forces l: C shrinks to (prefix ∨ l).
        kept.push_back(l);
        break;
      }
      if (v == Lbool::kFalse) continue;  // redundant literal
      kept.push_back(l);
      if (k == size - 1) break;  // asserting the last literal proves nothing
      trail_lim_.push_back(static_cast<int>(trail_.size()));
      UncheckedEnqueue(~l, kRefUndef);
      if (Propagate() != kRefUndef) break;  // ¬(prefix) is contradictory
    }
    CancelUntil(0);
    if (kept.size() == static_cast<size_t>(size)) {
      AttachClause(c);
      continue;
    }
    stats_.vivified += size - static_cast<int64_t>(kept.size());
    ShrinkClause(c, kept);
    // Keep the level-0 fixpoint before the next clause's decisions.
    if (ok_ && Propagate() != kRefUndef) ok_ = false;
  }
  CompactProblemClauses();
}

// --- arena garbage collection --------------------------------------------

Solver::ClauseRef Solver::RelocateClause(ClauseRef c) {
  if (arena_[c] == kMovedHeader) return arena_[c + 1];
  const ClauseRef nc = static_cast<ClauseRef>(arena_tmp_.size());
  CCR_CHECK(nc < kRefBinaryFlag);
  const size_t words = 3 + static_cast<size_t>(ClauseSize(c));
  arena_tmp_.insert(arena_tmp_.end(), arena_.begin() + c,
                    arena_.begin() + c + words);
  arena_[c] = kMovedHeader;
  arena_[c + 1] = nc;
  return nc;
}

void Solver::GarbageCollect() {
  if (arena_.empty()) return;
  const size_t old_words = arena_.size();
  arena_tmp_.clear();
  arena_tmp_.reserve(old_words - std::min(arena_dead_words_, old_words));
  // Relocate in list order: clause order — and with it watcher and
  // occurrence order — is identical before and after, which keeps the
  // collection search-neutral.
  size_t wm = inproc_watermark_;
  size_t j = 0;
  for (size_t i = 0; i < clauses_.size(); ++i) {
    const ClauseRef c = clauses_[i];
    if (ClauseDead(c)) {
      if (i < inproc_watermark_) --wm;
      continue;
    }
    clauses_[j++] = RelocateClause(c);
  }
  clauses_.resize(j);
  inproc_watermark_ = wm;
  CCR_DCHECK(inproc_watermark_ <= clauses_.size());
  for (std::vector<ClauseRef>* list :
       {&learnts_core_, &learnts_mid_, &learnts_local_}) {
    size_t k = 0;
    for (ClauseRef c : *list) {
      if (ClauseDead(c)) continue;
      (*list)[k++] = RelocateClause(c);
    }
    list->resize(k);
  }
  // Every watched clause is live (each MarkClauseDead site detaches), so
  // every watcher's target has a forwarding ref by now.
  for (std::vector<Watcher>& ws : watches_) {
    for (Watcher& w : ws) {
      CCR_DCHECK(arena_[w.cref] == kMovedHeader);
      w.cref = arena_[w.cref + 1];
    }
  }
  for (Var v = 0; v < num_vars(); ++v) {
    const ClauseRef r = reason_[v];
    if (r == kRefUndef || r == kRefBinConflict || RefIsBinary(r)) continue;
    if (arena_[r] == kMovedHeader) {
      reason_[v] = arena_[r + 1];
    } else {
      // A dead reason can only hang off an unassigned or level-0
      // variable (live reasons are pinned by the reduce passes, and the
      // level-0 sweeps run with no deeper assignments outstanding), and
      // conflict analysis never dereferences level-0 reasons.
      CCR_DCHECK(assigns_[v] == Lbool::kUndef || level_[v] == 0);
      reason_[v] = kRefUndef;
    }
  }
  arena_.swap(arena_tmp_);
  arena_tmp_.clear();
  arena_tmp_.shrink_to_fit();
  // ClauseLits reads arena_, so the rebuild has to follow the swap.
  if (TrackOccurrences()) RebuildOccurrenceIndex();
  stats_.gc_reclaimed_words += static_cast<int64_t>(old_words - arena_.size());
  ++stats_.gc_runs;
  arena_dead_words_ = 0;
}

void Solver::MaybeGarbageCollect() {
  if (!options_.use_arena_gc || arena_dead_words_ == 0) return;
  if (static_cast<double>(arena_dead_words_) <=
      options_.gc_frac * static_cast<double>(arena_.size())) {
    return;
  }
  GarbageCollect();
}

void Solver::RebuildOccurrenceIndex() {
  for (std::vector<ClauseRef>& o : occur_) o.clear();
  // Iterating clauses_ reproduces clause-addition order, the same order
  // the incremental appends in AddClauseInternal produce.
  for (ClauseRef c : clauses_) {
    const Lit* lits = ClauseLits(c);
    for (int k = 0; k < ClauseSize(c); ++k) {
      occur_[lits[k].var()].push_back(c);
    }
  }
}

// --- bounded variable elimination ----------------------------------------

void Solver::MarkEliminable(Var v) {
  CCR_CHECK(v >= 0 && v < num_vars());
  if (eliminable_[v]) return;
  eliminable_[v] = 1;
  elim_candidates_.push_back(v);
}

void Solver::EliminatePass() {
  CCR_DCHECK(DecisionLevel() == 0);
  if (!ok_ || elim_candidates_.empty()) return;
  bool any = false;
  size_t keep = 0;
  for (Var v : elim_candidates_) {
    if (eliminated_[v] || frozen_[v] || assigns_[v] != Lbool::kUndef) {
      continue;  // fixed or released: nothing left to eliminate
    }
    if (TryEliminateVar(v)) {
      any = true;
      if (!ok_) break;
      continue;
    }
    elim_candidates_[keep++] = v;  // over limits now; retry next round
  }
  elim_candidates_.resize(keep);
  if (!any) return;
  // Learnt clauses are implied, so they never joined the elimination —
  // but any that still mention an eliminated variable would pin it in
  // the search and must go.
  for (std::vector<ClauseRef>* list :
       {&learnts_core_, &learnts_mid_, &learnts_local_}) {
    size_t j = 0;
    for (ClauseRef c : *list) {
      if (ClauseDead(c)) continue;
      const Lit* lits = ClauseLits(c);
      const int size = ClauseSize(c);
      bool touches = false;
      for (int k = 0; k < size && !touches; ++k) {
        touches = eliminated_[lits[k].var()] != 0;
      }
      if (touches) {
        DetachClause(c);
        MarkClauseDead(c);
        continue;
      }
      (*list)[j++] = c;
    }
    list->resize(j);
  }
  CompactProblemClauses();
}

bool Solver::TryEliminateVar(Var v) {
  CCR_DCHECK(assigns_[v] == Lbool::kUndef);
  // Gather the clauses containing v. The occurrence index is lazy:
  // entries may be dead, or may no longer contain v after strengthening
  // — verify both before counting them.
  std::vector<std::vector<Lit>> pos, neg;
  std::vector<ClauseRef> refs;
  for (ClauseRef c : occur_[v]) {
    if (ClauseDead(c)) continue;
    const Lit* lits = ClauseLits(c);
    const int size = ClauseSize(c);
    Lit vlit = kLitUndef;
    for (int k = 0; k < size; ++k) {
      if (lits[k].var() == v) {
        vlit = lits[k];
        break;
      }
    }
    if (vlit == kLitUndef) continue;  // stale entry: strengthened away
    refs.push_back(c);
    std::vector<Lit> cl(lits, lits + size);
    (vlit.negated() ? neg : pos).push_back(std::move(cl));
  }
  // Binary implication lists hold the rest — including learnt binaries,
  // which is sound: resolving implied clauses yields implied resolvents,
  // and saving them only over-constrains the reconstruction.
  const Lit pv = Lit::Pos(v);
  const Lit nv = Lit::Neg(v);
  for (Lit q : bins_[nv.index()]) pos.push_back({pv, q});  // (v ∨ q)
  for (Lit q : bins_[pv.index()]) neg.push_back({nv, q});  // (¬v ∨ q)
  if (pos.size() > kBveOccLimit || neg.size() > kBveOccLimit) return false;

  // Build the resolvent set; bail on growth before mutating anything.
  std::vector<std::vector<Lit>> resolvents;
  for (const std::vector<Lit>& p : pos) {
    for (const std::vector<Lit>& n : neg) {
      std::vector<Lit> r;
      bool taut = false;
      for (Lit l : p) {
        if (l.var() != v) r.push_back(l);
      }
      for (Lit l : n) {
        if (l.var() == v) continue;
        bool dup = false;
        for (Lit x : r) {
          if (x == l) {
            dup = true;
            break;
          }
          if (x == ~l) {
            taut = true;
            break;
          }
        }
        if (taut) break;
        if (!dup) r.push_back(l);
      }
      if (taut) continue;
      if (r.size() > kBveResolventLitCap) return false;
      resolvents.push_back(std::move(r));
      if (resolvents.size() > pos.size() + neg.size()) return false;
    }
  }

  // Commit. Save the removed clauses for model reconstruction first.
  ElimRecord rec;
  rec.v = v;
  rec.clauses.reserve(pos.size() + neg.size());
  for (std::vector<Lit>& cl : pos) rec.clauses.push_back(std::move(cl));
  for (std::vector<Lit>& cl : neg) rec.clauses.push_back(std::move(cl));
  elim_stack_.push_back(std::move(rec));
  for (ClauseRef c : refs) {
    DetachClause(c);
    MarkClauseDead(c);
  }
  // Binary surgery: drop v's clauses from the partner lists, then v's
  // own lists wholesale. A partner q never has q.var() == v (tautologies
  // and duplicate literals are rejected at AddClause), so the lists
  // being iterated are never the ones edited.
  auto remove_one = [this](Lit from, Lit what) {
    std::vector<Lit>& list = bins_[from.index()];
    for (size_t i = 0; i < list.size(); ++i) {
      if (list[i] == what) {
        list[i] = list.back();
        list.pop_back();
        return;
      }
    }
    CCR_DCHECK(false);
  };
  for (Lit q : bins_[nv.index()]) remove_one(~q, pv);
  for (Lit q : bins_[pv.index()]) remove_one(~q, nv);
  bins_[nv.index()].clear();
  bins_[pv.index()].clear();
  occur_[v].clear();
  eliminated_[v] = 1;
  ++stats_.bve_eliminated;
  for (std::vector<Lit>& r : resolvents) {
    ++stats_.bve_resolvents;
    if (!AddClauseInternal(std::move(r)) && !ok_) break;
  }
  return true;
}

void Solver::ExtendModel(std::vector<Lbool>* model) const {
  // Newest elimination first: a saved clause can mention variables
  // eliminated later (their records are below on the stack — processed
  // already), never ones eliminated earlier (those were gone from the
  // formula when this record's clauses were saved).
  for (auto it = elim_stack_.rbegin(); it != elim_stack_.rend(); ++it) {
    const Var v = it->v;
    if (static_cast<size_t>(v) >= model->size()) continue;
    if ((*model)[v] != Lbool::kUndef) continue;
    Lbool val = Lbool::kFalse;
    [[maybe_unused]] bool forced = false;
    for (const std::vector<Lit>& cl : it->clauses) {
      Lit vlit = kLitUndef;
      bool satisfied = false;
      for (Lit l : cl) {
        if (l.var() == v) {
          vlit = l;
          continue;
        }
        if (LboolOf((*model)[l.var()], l.negated()) == Lbool::kTrue) {
          satisfied = true;
          break;
        }
      }
      if (satisfied) continue;
      CCR_DCHECK(vlit != kLitUndef);
      const Lbool need = vlit.negated() ? Lbool::kFalse : Lbool::kTrue;
      // The resolvent set guarantees one value satisfies every clause.
      CCR_DCHECK(!forced || val == need);
      forced = true;
      val = need;
    }
    (*model)[v] = val;
  }
}

}  // namespace ccr::sat
