#include "src/sat/solver.h"

#include <algorithm>
#include <cmath>

#include "src/common/status.h"

namespace ccr::sat {

Solver::Solver(SolverOptions options) : options_(options) {}

Var Solver::NewVar() {
  const Var v = static_cast<Var>(assigns_.size());
  assigns_.push_back(Lbool::kUndef);
  polarity_.push_back(false);
  level_.push_back(0);
  reason_.push_back(kRefUndef);
  activity_.push_back(0.0);
  heap_pos_.push_back(-1);
  seen_.push_back(0);
  // 2 watch lists per var; after a Reset the lists (already cleared) are
  // still there and keep their buffers.
  while (watches_.size() < 2 * static_cast<size_t>(v) + 2) {
    watches_.emplace_back();
  }
  HeapInsert(v);
  return v;
}

void Solver::Reset(SolverOptions options) {
  options_ = options;
  stats_ = {};
  last_call_ = {};
  ok_ = true;
  arena_.clear();
  clauses_.clear();
  learnts_.clear();
  // Keep the outer vector (and each inner list's buffer); NewVar re-adopts
  // the lists as the variable universe regrows.
  for (std::vector<Watcher>& ws : watches_) ws.clear();
  assigns_.clear();
  polarity_.clear();
  level_.clear();
  reason_.clear();
  trail_.clear();
  trail_lim_.clear();
  qhead_ = 0;
  activity_.clear();
  var_inc_ = 1.0;
  clause_inc_ = 1.0;
  heap_.clear();
  heap_pos_.clear();
  seen_.clear();
  model_.clear();
  conflict_core_.clear();
  max_learnts_ = 0;
}

Solver::ClauseRef Solver::AllocClause(const std::vector<Lit>& lits,
                                      bool learnt) {
  const ClauseRef ref = static_cast<ClauseRef>(arena_.size());
  arena_.push_back((static_cast<uint32_t>(lits.size()) << 1) |
                   (learnt ? 1u : 0u));
  arena_.push_back(0);  // activity bits
  for (Lit l : lits) {
    arena_.push_back(static_cast<uint32_t>(l.index()));
  }
  return ref;
}

void Solver::AttachClause(ClauseRef c) {
  CCR_DCHECK(ClauseSize(c) >= 2);
  const Lit* lits = ClauseLits(c);
  watches_[(~lits[0]).index()].push_back({c, lits[1]});
  watches_[(~lits[1]).index()].push_back({c, lits[0]});
}

void Solver::DetachClause(ClauseRef c) {
  const Lit* lits = ClauseLits(c);
  for (int i = 0; i < 2; ++i) {
    auto& ws = watches_[(~lits[i]).index()];
    for (size_t j = 0; j < ws.size(); ++j) {
      if (ws[j].cref == c) {
        ws[j] = ws.back();
        ws.pop_back();
        break;
      }
    }
  }
}

bool Solver::AddClause(std::vector<Lit> lits) {
  if (!ok_) return false;
  CCR_DCHECK(DecisionLevel() == 0);
  for (Lit l : lits) {
    while (l.var() >= num_vars()) NewVar();
  }
  // Simplify: drop duplicate/false literals; detect tautology/satisfied.
  std::sort(lits.begin(), lits.end());
  std::vector<Lit> out;
  Lit prev = kLitUndef;
  for (Lit l : lits) {
    if (l == prev) continue;
    if (l == ~prev) return true;  // tautology: p ∨ ~p
    const Lbool v = ValueOf(l);
    if (v == Lbool::kTrue) return true;  // already satisfied at level 0
    if (v == Lbool::kFalse) continue;    // already false at level 0
    out.push_back(l);
    prev = l;
  }
  if (out.empty()) {
    ok_ = false;
    return false;
  }
  if (out.size() == 1) {
    UncheckedEnqueue(out[0], kRefUndef);
    ok_ = (Propagate() == kRefUndef);
    return ok_;
  }
  const ClauseRef c = AllocClause(out, /*learnt=*/false);
  clauses_.push_back(c);
  AttachClause(c);
  return true;
}

void Solver::AddCnfFrom(const Cnf& cnf, int first_clause) {
  while (num_vars() < cnf.num_vars()) NewVar();
  std::vector<Lit> scratch;
  for (int i = first_clause; i < cnf.num_clauses(); ++i) {
    auto span = cnf.clause(i);
    scratch.assign(span.begin(), span.end());
    AddClause(std::move(scratch));
    scratch.clear();
  }
}

void Solver::UncheckedEnqueue(Lit p, ClauseRef from) {
  CCR_DCHECK(ValueOf(p) == Lbool::kUndef);
  assigns_[p.var()] = p.negated() ? Lbool::kFalse : Lbool::kTrue;
  level_[p.var()] = DecisionLevel();
  reason_[p.var()] = from;
  trail_.push_back(p);
}

Solver::ClauseRef Solver::Propagate() {
  ClauseRef conflict = kRefUndef;
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];
    ++stats_.propagations;
    auto& ws = watches_[p.index()];
    size_t i = 0, j = 0;
    const size_t n = ws.size();
    while (i < n) {
      Watcher w = ws[i];
      if (ValueOf(w.blocker) == Lbool::kTrue) {
        ws[j++] = ws[i++];
        continue;
      }
      const ClauseRef c = w.cref;
      Lit* lits = ClauseLits(c);
      const int size = ClauseSize(c);
      // Normalize so the false literal (~p) is at position 1.
      const Lit not_p = ~p;
      if (lits[0] == not_p) std::swap(lits[0], lits[1]);
      CCR_DCHECK(lits[1] == not_p);
      ++i;
      // 0th watch true => clause satisfied.
      if (lits[0] != w.blocker && ValueOf(lits[0]) == Lbool::kTrue) {
        ws[j++] = {c, lits[0]};
        continue;
      }
      // Look for a new literal to watch.
      bool found = false;
      for (int k = 2; k < size; ++k) {
        if (ValueOf(lits[k]) != Lbool::kFalse) {
          std::swap(lits[1], lits[k]);
          watches_[(~lits[1]).index()].push_back({c, lits[0]});
          found = true;
          break;
        }
      }
      if (found) continue;
      // Clause is unit or conflicting.
      ws[j++] = {c, lits[0]};
      if (ValueOf(lits[0]) == Lbool::kFalse) {
        conflict = c;
        qhead_ = trail_.size();
        while (i < n) ws[j++] = ws[i++];
      } else {
        UncheckedEnqueue(lits[0], c);
      }
    }
    ws.resize(j);
    if (conflict != kRefUndef) break;
  }
  return conflict;
}

void Solver::VarBump(Var v) {
  activity_[v] += var_inc_;
  if (activity_[v] > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
  if (heap_pos_[v] >= 0) HeapDecrease(v);
}

void Solver::ClauseBump(ClauseRef c) {
  float& act = ClauseActivity(c);
  act += static_cast<float>(clause_inc_);
  if (act > 1e20f) {
    for (ClauseRef l : learnts_) ClauseActivity(l) *= 1e-20f;
    clause_inc_ *= 1e-20;
  }
}

void Solver::Analyze(ClauseRef conflict, std::vector<Lit>* out_learnt,
                     int* out_btlevel) {
  int path_count = 0;
  Lit p = kLitUndef;
  out_learnt->clear();
  out_learnt->push_back(kLitUndef);  // slot for the asserting literal
  size_t index = trail_.size();

  ClauseRef c = conflict;
  do {
    CCR_DCHECK(c != kRefUndef);
    if (ClauseLearnt(c)) ClauseBump(c);
    const Lit* lits = ClauseLits(c);
    const int size = ClauseSize(c);
    for (int k = (p == kLitUndef) ? 0 : 1; k < size; ++k) {
      const Lit q = lits[k];
      const Var v = q.var();
      if (!seen_[v] && level_[v] > 0) {
        seen_[v] = 1;
        VarBump(v);
        if (level_[v] >= DecisionLevel()) {
          ++path_count;
        } else {
          out_learnt->push_back(q);
        }
      }
    }
    // Select next literal on the current level to resolve on.
    while (!seen_[trail_[--index].var()]) {
    }
    p = trail_[index];
    c = reason_[p.var()];
    seen_[p.var()] = 0;
    --path_count;
  } while (path_count > 0);
  (*out_learnt)[0] = ~p;

  // Conflict-clause minimization: drop literals implied by the rest.
  std::vector<Lit>& learnt = *out_learnt;
  size_t keep = 1;
  for (size_t k = 1; k < learnt.size(); ++k) {
    const Var v = learnt[k].var();
    const ClauseRef r = reason_[v];
    bool redundant = false;
    if (r != kRefUndef) {
      redundant = true;
      const Lit* rl = ClauseLits(r);
      const int rs = ClauseSize(r);
      for (int m = 1; m < rs; ++m) {
        const Var w = rl[m].var();
        if (!seen_[w] && level_[w] > 0) {
          redundant = false;
          break;
        }
      }
    }
    if (!redundant) learnt[keep++] = learnt[k];
  }
  stats_.learnt_literals += static_cast<int64_t>(keep);
  for (size_t k = keep; k < learnt.size(); ++k) seen_[learnt[k].var()] = 0;
  learnt.resize(keep);

  // Backtrack level: highest level among the non-asserting literals.
  if (learnt.size() == 1) {
    *out_btlevel = 0;
  } else {
    size_t max_i = 1;
    for (size_t k = 2; k < learnt.size(); ++k) {
      if (level_[learnt[k].var()] > level_[learnt[max_i].var()]) max_i = k;
    }
    std::swap(learnt[1], learnt[max_i]);
    *out_btlevel = level_[learnt[1].var()];
  }
  for (Lit l : learnt) seen_[l.var()] = 0;
}

void Solver::AnalyzeFinal(Lit p, std::vector<Lit>* out_core) {
  out_core->clear();
  out_core->push_back(p);
  if (DecisionLevel() == 0) return;
  seen_[p.var()] = 1;
  for (size_t i = trail_.size();
       i-- > static_cast<size_t>(trail_lim_[0]);) {
    const Var v = trail_[i].var();
    if (!seen_[v]) continue;
    const ClauseRef r = reason_[v];
    if (r == kRefUndef) {
      if (level_[v] > 0) out_core->push_back(~trail_[i]);
    } else {
      const Lit* lits = ClauseLits(r);
      const int size = ClauseSize(r);
      for (int k = 1; k < size; ++k) {
        if (level_[lits[k].var()] > 0) seen_[lits[k].var()] = 1;
      }
    }
    seen_[v] = 0;
  }
  seen_[p.var()] = 0;
}

void Solver::CancelUntil(int target) {
  if (DecisionLevel() <= target) return;
  const size_t keep = static_cast<size_t>(trail_lim_[target]);
  for (size_t i = trail_.size(); i-- > keep;) {
    const Var v = trail_[i].var();
    assigns_[v] = Lbool::kUndef;
    if (options_.use_phase_saving) polarity_[v] = trail_[i].negated();
    reason_[v] = kRefUndef;
    if (heap_pos_[v] < 0) HeapInsert(v);
  }
  trail_.resize(trail_lim_[target]);
  trail_lim_.resize(target);
  qhead_ = trail_.size();
}

// --- decision heap -------------------------------------------------------

void Solver::HeapInsert(Var v) {
  heap_pos_[v] = static_cast<int>(heap_.size());
  heap_.push_back(v);
  HeapDecrease(v);
}

void Solver::HeapDecrease(Var v) {
  // Percolate up by activity.
  int i = heap_pos_[v];
  while (i > 0) {
    const int parent = (i - 1) / 2;
    if (activity_[heap_[parent]] >= activity_[v]) break;
    heap_[i] = heap_[parent];
    heap_pos_[heap_[i]] = i;
    i = parent;
  }
  heap_[i] = v;
  heap_pos_[v] = i;
}

Var Solver::HeapPop() {
  const Var top = heap_[0];
  heap_pos_[top] = -1;
  const Var last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    // Percolate `last` down from the root.
    int i = 0;
    const int n = static_cast<int>(heap_.size());
    while (true) {
      int child = 2 * i + 1;
      if (child >= n) break;
      if (child + 1 < n &&
          activity_[heap_[child + 1]] > activity_[heap_[child]]) {
        ++child;
      }
      if (activity_[heap_[child]] <= activity_[last]) break;
      heap_[i] = heap_[child];
      heap_pos_[heap_[i]] = i;
      i = child;
    }
    heap_[i] = last;
    heap_pos_[last] = i;
  }
  return top;
}

Lit Solver::PickBranchLit() {
  Var next = kVarUndef;
  if (options_.use_vsids) {
    while (!HeapEmpty()) {
      next = HeapPop();
      if (assigns_[next] == Lbool::kUndef) break;
      next = kVarUndef;
    }
  } else {
    for (Var v = 0; v < num_vars(); ++v) {
      if (assigns_[v] == Lbool::kUndef) {
        next = v;
        break;
      }
    }
  }
  if (next == kVarUndef) return kLitUndef;
  return Lit(next, polarity_[next]);
}

void Solver::ReduceDb() {
  // Keep the most active half of learnt clauses; never drop reasons.
  std::sort(learnts_.begin(), learnts_.end(),
            [this](ClauseRef a, ClauseRef b) {
              return ClauseActivity(a) > ClauseActivity(b);
            });
  size_t keep = learnts_.size() / 2;
  std::vector<ClauseRef> kept;
  kept.reserve(keep + 16);
  for (size_t i = 0; i < learnts_.size(); ++i) {
    const ClauseRef c = learnts_[i];
    const Lit first = ClauseLits(c)[0];
    const bool is_reason = assigns_[first.var()] != Lbool::kUndef &&
                           reason_[first.var()] == c;
    if (i < keep || ClauseSize(c) == 2 || is_reason) {
      kept.push_back(c);
    } else {
      DetachClause(c);
    }
  }
  learnts_.swap(kept);
}

void Solver::SweepSatisfied(std::vector<ClauseRef>* list) {
  size_t j = 0;
  for (ClauseRef c : *list) {
    const Lit* lits = ClauseLits(c);
    const int size = ClauseSize(c);
    bool satisfied = false;
    for (int k = 0; k < size && !satisfied; ++k) {
      satisfied = ValueOf(lits[k]) == Lbool::kTrue;
    }
    if (satisfied) {
      DetachClause(c);
    } else {
      (*list)[j++] = c;
    }
  }
  list->resize(j);
}

void Solver::RemoveSatisfiedTopLevel() { SweepSatisfied(&learnts_); }

bool Solver::Simplify() {
  CCR_DCHECK(DecisionLevel() == 0);
  if (!ok_) return false;
  if (Propagate() != kRefUndef) {
    ok_ = false;
    return false;
  }
  SweepSatisfied(&learnts_);
  SweepSatisfied(&clauses_);
  return true;
}

int64_t Solver::Luby(int64_t i) {
  // Luby sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
  int64_t k = 1;
  while ((1LL << k) - 1 < i + 1) ++k;
  while ((1LL << k) - 1 != i + 1) {
    --k;
    i = i - ((1LL << k) - 1);
  }
  return 1LL << (k - 1);
}

SolveResult Solver::Search(int64_t conflict_budget,
                           std::span<const Lit> assumptions) {
  int64_t conflicts_here = 0;
  std::vector<Lit> learnt;
  while (true) {
    const ClauseRef conflict = Propagate();
    if (conflict != kRefUndef) {
      ++stats_.conflicts;
      ++conflicts_here;
      if (DecisionLevel() == 0) {
        ok_ = false;
        return SolveResult::kUnsat;
      }
      int bt_level = 0;
      Analyze(conflict, &learnt, &bt_level);
      // Backjumping may pop assumption pseudo-decisions; the
      // honor-assumptions step below re-establishes them, and an
      // assumption forced false there yields kUnsat with a core.
      CancelUntil(bt_level);
      if (learnt.size() == 1) {
        UncheckedEnqueue(learnt[0], kRefUndef);
      } else {
        const ClauseRef c = AllocClause(learnt, /*learnt=*/true);
        learnts_.push_back(c);
        AttachClause(c);
        ClauseBump(c);
        UncheckedEnqueue(learnt[0], c);
      }
      VarDecay();
      ClauseDecay();
      continue;
    }

    // No conflict.
    if (options_.use_restarts && conflict_budget >= 0 &&
        conflicts_here >= conflict_budget) {
      CancelUntil(0);
      return SolveResult::kUnknown;  // restart
    }
    if (options_.max_conflicts >= 0 &&
        stats_.conflicts >= options_.max_conflicts) {
      CancelUntil(0);
      return SolveResult::kUnknown;
    }
    if (DecisionLevel() == 0) RemoveSatisfiedTopLevel();
    if (options_.use_clause_deletion &&
        static_cast<double>(learnts_.size()) >= max_learnts_) {
      ReduceDb();
      max_learnts_ *= 1.1;
    }

    Lit next = kLitUndef;
    // Honor assumptions first.
    while (DecisionLevel() < static_cast<int>(assumptions.size())) {
      const Lit a = assumptions[DecisionLevel()];
      const Lbool av = ValueOf(a);
      if (av == Lbool::kTrue) {
        trail_lim_.push_back(static_cast<int>(trail_.size()));
      } else if (av == Lbool::kFalse) {
        AnalyzeFinal(~a, &conflict_core_);
        return SolveResult::kUnsat;
      } else {
        next = a;
        break;
      }
    }
    if (next == kLitUndef) {
      next = PickBranchLit();
      if (next == kLitUndef) {
        // All variables assigned: model found.
        model_.assign(assigns_.begin(), assigns_.end());
        return SolveResult::kSat;
      }
      ++stats_.decisions;
    }
    trail_lim_.push_back(static_cast<int>(trail_.size()));
    UncheckedEnqueue(next, kRefUndef);
  }
}

SolveResult Solver::SolveInternal(std::span<const Lit> assumptions) {
  const SolverStats before = stats_;
  if (!assumptions.empty()) ++stats_.assumption_solves;
  const SolveResult r = SolveLoop(assumptions);
  last_call_ = stats_ - before;
  return r;
}

SolveResult Solver::SolveLoop(std::span<const Lit> assumptions) {
  conflict_core_.clear();
  if (!ok_) return SolveResult::kUnsat;
  for (Lit a : assumptions) {
    CCR_CHECK(a.var() < num_vars());
  }
  CancelUntil(0);
  max_learnts_ =
      std::max(1000.0, static_cast<double>(clauses_.size()) / 3.0);

  int64_t restart_round = 0;
  while (true) {
    const int64_t budget =
        options_.use_restarts ? 100 * Luby(restart_round) : -1;
    const SolveResult r = Search(budget, assumptions);
    if (r != SolveResult::kUnknown) {
      CancelUntil(0);
      return r;
    }
    if (options_.max_conflicts >= 0 &&
        stats_.conflicts >= options_.max_conflicts) {
      CancelUntil(0);
      return SolveResult::kUnknown;
    }
    ++restart_round;
    ++stats_.restarts;
  }
}

}  // namespace ccr::sat
