// Conflict-driven clause learning (CDCL) SAT solver.
//
// This is the repository's stand-in for MiniSat [19], which the paper's
// IsValid uses to decide whether a specification Se has a valid completion.
// The architecture is a modern incremental CDCL: two-watched-literal
// propagation with a dedicated implicit watch list for binary clauses
// (binaries never touch the clause arena — the currency-order and CFD
// encodings are dominated by binary implications), 1-UIP conflict analysis
// with recursive (deep) conflict-clause minimization, LBD ("glue")
// computation per learnt clause feeding a three-tier learnt database
// (core glue<=2 kept forever, mid reduced by glue, local reduced by
// activity), Glucose-style EMA-based restarts, VSIDS decision ordering,
// phase saving, incremental solving under assumptions (used by NaiveDeduce
// and the MaxSAT layer), and an inprocessing pass — clause vivification
// plus backward subsumption / self-subsuming resolution — run from
// Simplify() between session rounds. Every modern heuristic sits behind a
// SolverOptions flag; the legacy MiniSat-2003 behavior (arena binaries,
// activity-only deletion, Luby restarts, one-step minimization, no
// inprocessing) stays available for ablation, and because the pipeline
// above consumes only SAT/UNSAT verdicts, every option combination
// resolves every entity identically.

#ifndef CCR_SAT_SOLVER_H_
#define CCR_SAT_SOLVER_H_

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <span>
#include <vector>

#include "src/sat/cnf.h"
#include "src/sat/literal.h"

namespace ccr::sat {

/// Tunables. The defaults are the modern configuration; the ablation
/// benches and the randomized equivalence suite flip features off (all
/// five `use_*` modernization flags false = the legacy MiniSat-style
/// solver this repo started from).
struct SolverOptions {
  bool use_vsids = true;          // activity-ordered decisions vs. lowest id
  bool use_phase_saving = true;   // remember last polarity per variable
  bool use_restarts = true;       // restarts enabled at all
  bool use_clause_deletion = true;  // periodically shrink the learnt DB
  /// Implicit binary-clause watch lists: clauses of size 2 live in a
  /// (Lit -> Lit) implication list and propagate without arena access;
  /// their reasons are literal-encoded. Off = binaries share the arena
  /// and the generic watcher path.
  bool use_binary_watches = true;
  /// LBD-tiered learnt DB: glue <= 2 core (kept forever), glue <= 6 mid
  /// (reduced by glue, rarely), rest local (reduced by activity, often).
  /// Off = single activity-sorted DB, MiniSat style.
  bool use_lbd_tiers = true;
  /// Glucose-style restarts: restart when the short-term LBD average
  /// exceeds the long-term average. Off = Luby sequence.
  bool use_ema_restarts = true;
  /// Full recursive conflict-clause minimization (ccmin deep mode).
  /// Off = the one-step self-subsumption check only.
  bool use_deep_ccmin = true;
  /// Inprocessing in Simplify(): clause vivification and backward
  /// subsumption / self-subsuming resolution over the problem clauses.
  /// Intended between session rounds, after the encode layer appended the
  /// round's delta. Off = Simplify only sweeps satisfied clauses.
  bool use_inprocessing = true;
  /// Cached-model witness reuse (the backbone-extraction trick): an
  /// assumption solve first probes the models of recent kSat calls — a
  /// cached model satisfying every assumption IS the answer, no search.
  /// Adding a clause or freezing a scope invalidates the cache; clause
  /// learning and inprocessing are implication-preserving and do not.
  /// This is what makes NaiveDeduce's d² Lemma-6 queries cheap: most are
  /// satisfiable, and each real solve's model witnesses many later ones.
  /// The verdict is exact either way, so results cannot change.
  bool use_model_cache = true;
  /// Compacting arena garbage collection: once the words owned by dead
  /// clauses (removed, subsumed, shrunk, eliminated) exceed gc_frac of
  /// the arena, live clauses relocate into a fresh arena and every
  /// ClauseRef holder — watch lists, reason slots, learnt tiers, the
  /// occurrence index — is rewritten. Triggered from Simplify() and after
  /// learnt-DB reductions; list and watcher order is preserved, so GC
  /// changes memory and time only, never a verdict or a model.
  bool use_arena_gc = true;
  double gc_frac = 0.25;
  /// Bounded variable elimination (SatELite-style) as an inprocessing
  /// step over variables the caller declared disposable via
  /// MarkEliminable(): a variable is resolved away when the resolvents do
  /// not grow the clause count. A model-reconstruction stack keeps
  /// ModelValue exact for eliminated variables, so cached-model
  /// witnesses and downstream model extraction stay valid.
  bool use_bve = true;
  /// Stochastic local search (WalkSAT) in the hot path. Both flags may
  /// only change time-to-verdict, never a verdict: every answer is still
  /// produced by the exact CDCL search / MaxSAT bound solves.
  ///
  /// use_sls_seeding: before CDCL search, a budgeted local-search pass
  /// (Solver::SeedFromLocalSearch) installs its best assignment into the
  /// saved-phase array, and — when the assignment satisfies every problem
  /// clause — pushes it into the cached-model ring as a genuine witness.
  bool use_sls_seeding = true;
  /// Backbone-style Deduce (src/core/deduce.cc): the per-pair Lemma-6
  /// loop of NaiveDeduceShared is replaced by a three-tier backbone
  /// engine — model sweeping (every SAT answer refutes all candidate
  /// pairs its model assigns false, in O(1) per pair), propagation-only
  /// failed-literal screening (assume ¬x, propagate, no search), and
  /// chunked UNSAT certification (one scoped clause ¬x1 ∨ … ∨ ¬xk
  /// certifies a whole chunk entailed in a single solve). The entailed
  /// pair set is semantically determined (Lemma 6), so verdicts and all
  /// downstream bytes are identical by construction; only the number of
  /// solver calls changes. Off = one SolveWithAssumptions per pair.
  bool use_backbone_deduce = true;
  /// use_sls_probing: IncrementalMaxSat runs the same local search over
  /// hard+soft clauses first and uses the number of unsatisfied softs as
  /// an upper bound u, verifying downward from u instead of climbing the
  /// cardinality bound up from 0. When the probe hits the true optimum
  /// the exact search collapses to two solves (SAT at u, UNSAT at u-1).
  bool use_sls_probing = true;
  /// Local-search budget: flips per try (0 = scaled to the free-variable
  /// count), number of restarts, and WalkSAT noise probability.
  int64_t sls_max_flips = 0;
  int sls_tries = 2;
  double sls_noise = 0.5;
  double var_decay = 0.95;
  double clause_decay = 0.999;
  int64_t max_conflicts = -1;     // < 0 means unlimited
  /// Portfolio search (src/sat/portfolio.{h,cc}): when > 1, a solve that
  /// survives the defer gate below races this solver against
  /// portfolio_threads - 1 helper solvers carrying diversified heuristic
  /// configurations on a mirrored copy of the formula, all exchanging
  /// learnt unit/binary/low-LBD clauses through a lock-light ring. The
  /// first decisive worker wins; the rest are interrupted. Portfolio
  /// search may only ever change time-to-verdict, never a verdict — every
  /// shared clause is implied, so the existing byte-identity suites stay
  /// the gate. 0 or 1 = off (the default; the service layer keeps it off
  /// and lets the per-entity pool own the cores).
  int portfolio_threads = 0;
  /// Conflicts the master searches alone before a portfolio race spawns
  /// threads. Most pipeline solves (model-cache misses included) finish
  /// within a few hundred conflicts; paying a thread spawn for those
  /// would be pure overhead. Only solves still undecided after this many
  /// conflicts race.
  int64_t portfolio_defer_conflicts = 512;

  /// The 2003-era configuration this repo started from: every
  /// modernization flag off. The single definition the ablation bench,
  /// `ccr_experiment --solver legacy` and the equivalence tests share —
  /// a new modernization flag added here is legacy-off everywhere at
  /// once.
  static SolverOptions LegacyHeuristics() {
    SolverOptions o;
    o.use_binary_watches = false;
    o.use_lbd_tiers = false;
    o.use_ema_restarts = false;
    o.use_deep_ccmin = false;
    o.use_inprocessing = false;
    o.use_model_cache = false;
    o.use_arena_gc = false;
    o.use_bve = false;
    o.use_sls_seeding = false;
    o.use_sls_probing = false;
    o.use_backbone_deduce = false;
    return o;
  }
};

/// Outcome of a solve call.
enum class SolveResult { kSat, kUnsat, kUnknown };

/// Solver statistics (cumulative across Solve calls).
struct SolverStats {
  int64_t conflicts = 0;
  int64_t decisions = 0;
  int64_t propagations = 0;
  int64_t restarts = 0;
  int64_t learnt_literals = 0;
  /// Solve calls that carried at least one assumption. With one solver
  /// persisting across pipeline phases and rounds, this is the count of
  /// conditional queries answered without copying or rebuilding anything.
  int64_t assumption_solves = 0;
  /// Literals enqueued from the implicit binary watch lists (a subset of
  /// the implications behind `propagations`, which counts trail literals
  /// processed).
  int64_t binary_propagations = 0;
  /// Sum of LBD ("glue") over learnt clauses at learn time; divide by
  /// `conflicts` for the average glue of the search.
  int64_t lbd_sum = 0;
  /// Learnt clauses entering each tier at learn time. With LBD tiers off,
  /// every non-unit learnt counts as local. Binary learnts under binary
  /// watches count as core (they are kept forever by construction).
  int64_t learnt_core = 0;
  int64_t learnt_mid = 0;
  int64_t learnt_local = 0;
  /// Inprocessing: problem clauses removed by backward subsumption plus
  /// literals removed by self-subsuming resolution.
  int64_t subsumed = 0;
  /// Inprocessing: literals removed from problem clauses by vivification.
  int64_t vivified = 0;
  /// Assumption solves answered from the cached-model pool without any
  /// search (use_model_cache).
  int64_t model_cache_hits = 0;
  /// Arena garbage collections run, and the arena words they reclaimed
  /// (use_arena_gc).
  int64_t gc_runs = 0;
  int64_t gc_reclaimed_words = 0;
  /// Bounded variable elimination: variables resolved away, and the
  /// resolvent clauses added back in their place (use_bve).
  int64_t bve_eliminated = 0;
  int64_t bve_resolvents = 0;
  /// Stochastic local search: flips performed across all
  /// SeedFromLocalSearch calls, fully satisfying assignments pushed into
  /// the cached-model ring (use_sls_seeding / use_sls_probing), and
  /// MaxSAT upper-bound probes run / probes whose bound was the exact
  /// optimum (reported back by IncrementalMaxSat via RecordSlsProbe).
  int64_t sls_flips = 0;
  int64_t sls_seeded_models = 0;
  int64_t sls_probes = 0;
  int64_t sls_probe_wins = 0;
  /// Portfolio search (portfolio_threads > 1): races that actually
  /// spawned worker threads, shared clauses integrated by this solver and
  /// its helpers (split by kind: units, binaries, longer low-LBD
  /// clauses), and workers interrupted because another worker finished
  /// first. Helper-side imports are folded into the master's counters
  /// when a race ends, so RoundTrace attribution sees the whole team.
  int64_t portfolio_races = 0;
  int64_t imported_units = 0;
  int64_t imported_bins = 0;
  int64_t imported_lbd = 0;
  int64_t cancelled_workers = 0;
  /// Backbone-style Deduce (reported by src/core/deduce.cc via
  /// RecordDeduce): solver calls issued by the Deduce phase (the initial
  /// validity solve plus, per-pair under the naive loop or per-chunk
  /// under use_backbone_deduce, every SolveWithAssumptions), candidate
  /// pairs refuted by sweeping a SAT model (x_ij = false is a
  /// non-entailment witness), pairs certified entailed by propagation
  /// alone (guard-forced x_ij or a failed ¬x_ij probe), and chunked
  /// certification solves (SAT and UNSAT alike).
  int64_t deduce_queries = 0;
  int64_t deduce_model_prunes = 0;
  int64_t deduce_propagation_proofs = 0;
  int64_t deduce_chunk_solves = 0;

  /// Component-wise difference (for per-call and per-phase deltas).
  SolverStats operator-(const SolverStats& o) const {
    return {conflicts - o.conflicts,
            decisions - o.decisions,
            propagations - o.propagations,
            restarts - o.restarts,
            learnt_literals - o.learnt_literals,
            assumption_solves - o.assumption_solves,
            binary_propagations - o.binary_propagations,
            lbd_sum - o.lbd_sum,
            learnt_core - o.learnt_core,
            learnt_mid - o.learnt_mid,
            learnt_local - o.learnt_local,
            subsumed - o.subsumed,
            vivified - o.vivified,
            model_cache_hits - o.model_cache_hits,
            gc_runs - o.gc_runs,
            gc_reclaimed_words - o.gc_reclaimed_words,
            bve_eliminated - o.bve_eliminated,
            bve_resolvents - o.bve_resolvents,
            sls_flips - o.sls_flips,
            sls_seeded_models - o.sls_seeded_models,
            sls_probes - o.sls_probes,
            sls_probe_wins - o.sls_probe_wins,
            portfolio_races - o.portfolio_races,
            imported_units - o.imported_units,
            imported_bins - o.imported_bins,
            imported_lbd - o.imported_lbd,
            cancelled_workers - o.cancelled_workers,
            deduce_queries - o.deduce_queries,
            deduce_model_prunes - o.deduce_model_prunes,
            deduce_propagation_proofs - o.deduce_propagation_proofs,
            deduce_chunk_solves - o.deduce_chunk_solves};
  }

  /// Component-wise sum (for pooling per-phase deltas across rounds and
  /// entities).
  SolverStats& operator+=(const SolverStats& o) {
    conflicts += o.conflicts;
    decisions += o.decisions;
    propagations += o.propagations;
    restarts += o.restarts;
    learnt_literals += o.learnt_literals;
    assumption_solves += o.assumption_solves;
    binary_propagations += o.binary_propagations;
    lbd_sum += o.lbd_sum;
    learnt_core += o.learnt_core;
    learnt_mid += o.learnt_mid;
    learnt_local += o.learnt_local;
    subsumed += o.subsumed;
    vivified += o.vivified;
    model_cache_hits += o.model_cache_hits;
    gc_runs += o.gc_runs;
    gc_reclaimed_words += o.gc_reclaimed_words;
    bve_eliminated += o.bve_eliminated;
    bve_resolvents += o.bve_resolvents;
    sls_flips += o.sls_flips;
    sls_seeded_models += o.sls_seeded_models;
    sls_probes += o.sls_probes;
    sls_probe_wins += o.sls_probe_wins;
    portfolio_races += o.portfolio_races;
    imported_units += o.imported_units;
    imported_bins += o.imported_bins;
    imported_lbd += o.imported_lbd;
    cancelled_workers += o.cancelled_workers;
    deduce_queries += o.deduce_queries;
    deduce_model_prunes += o.deduce_model_prunes;
    deduce_propagation_proofs += o.deduce_propagation_proofs;
    deduce_chunk_solves += o.deduce_chunk_solves;
    return *this;
  }
};

/// Explicit budget for one local-search pass. Zero / negative fields fall
/// back to SolverOptions (sls_max_flips / sls_tries / sls_noise).
struct LocalSearchBudget {
  int64_t max_flips = 0;  // per try; 0 = auto
  int tries = 0;          // 0 = SolverOptions::sls_tries
  double noise = -1.0;    // < 0 = SolverOptions::sls_noise
  /// When set, seeds the RNG from `seed` instead of the solver's per-call
  /// salt — RunWalkSat's same-seed determinism contract rides on this.
  bool has_seed = false;
  uint64_t seed = 0;
};

/// Outcome of Solver::SeedFromLocalSearch.
struct LocalSearchResult {
  /// False when the search could not run at all: the solver is already
  /// UNSAT, or the assumptions contradict each other / the level-0 trail.
  bool ran = false;
  /// The best assignment satisfies every live problem clause (together
  /// with the level-0 trail it is then a genuine model).
  bool feasible = false;
  /// Problem clauses left unsatisfied by the best assignment.
  int hard_unsat = 0;
  /// Soft clauses left unsatisfied by the best assignment (the MaxSAT
  /// upper bound u when `feasible`).
  int soft_unsat = 0;
  /// True when `feasible` and no soft clause touches a BVE-eliminated
  /// variable: `soft_unsat` is then the exact score of `model` (a genuine
  /// model), not an estimate against placeholder values.
  bool softs_exact = false;
  /// Best assignment per variable. When `feasible`, eliminated variables
  /// carry their reconstructed values, making this a genuine model;
  /// otherwise they are unspecified.
  std::vector<uint8_t> model;
};

class ClauseExportBuf;  // src/sat/portfolio.h
class ClauseShareRing;  // src/sat/portfolio.h
class PortfolioTeam;    // src/sat/portfolio.h

/// \brief Incremental CDCL solver.
///
/// Typical use:
///   Solver s;
///   s.AddCnf(phi);
///   if (s.Solve() == SolveResult::kSat) { ... s.ModelValue(v) ... }
///
/// Clauses may be added between Solve calls; assumptions make a solve
/// conditional without permanently asserting the literals.
class Solver {
 public:
  explicit Solver(SolverOptions options = {});
  ~Solver();  // out of line: PortfolioTeam is incomplete here
  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  /// Allocates a fresh variable.
  Var NewVar();
  int num_vars() const { return static_cast<int>(assigns_.size()); }

  /// Adds a clause. Returns false if the solver is already in an
  /// unsatisfiable state (empty clause derived at level 0).
  bool AddClause(std::vector<Lit> lits);

  /// Adds every clause of `cnf`, growing the variable universe as needed.
  void AddCnf(const Cnf& cnf) { AddCnfFrom(cnf, 0); }

  /// Adds the clauses of `cnf` starting at index `first_clause`. Used by
  /// callers that keep one solver alive while their CNF grows append-only
  /// (the ResolutionSession pipeline): only the new suffix is fed.
  void AddCnfFrom(const Cnf& cnf, int first_clause);

  /// Decides satisfiability of the accumulated clauses.
  SolveResult Solve() { return SolveInternal({}); }

  /// Decides satisfiability under the given assumption literals. The
  /// assumptions hold for this call only — nothing is permanently
  /// asserted, which is what lets one persistent solver answer every
  /// phase of a ResolutionSession (validity, deduction, suggestion)
  /// without copying CNF.
  SolveResult SolveWithAssumptions(std::span<const Lit> assumptions) {
    return SolveInternal(assumptions);
  }
  SolveResult SolveWithAssumptions(std::initializer_list<Lit> assumptions) {
    return SolveInternal(
        std::span<const Lit>(assumptions.begin(), assumptions.size()));
  }

  /// Model access after kSat. Precondition: last solve returned kSat.
  bool ModelValue(Var v) const { return model_[v] == Lbool::kTrue; }
  Lbool ModelLbool(Var v) const { return model_[v]; }

  /// After kUnsat under assumptions: a subset of the assumptions that is
  /// already jointly inconsistent with the clauses (an unsat "core").
  const std::vector<Lit>& FailedAssumptions() const { return conflict_core_; }

  const SolverStats& stats() const { return stats_; }
  const SolverOptions& options() const { return options_; }

  /// Statistics of the most recent Solve/SolveWithAssumptions call alone.
  /// With one solver shared across pipeline phases (validity, deduction,
  /// suggestion) the cumulative counters blend phases together; the
  /// per-call delta keeps phase attribution meaningful.
  const SolverStats& last_call_stats() const { return last_call_; }

  /// Top-level simplification hook: propagates any pending level-0 facts,
  /// detaches problem and learnt clauses already satisfied at level 0,
  /// and — when options.use_inprocessing is set — runs the inprocessing
  /// passes (backward subsumption / self-subsuming resolution, then
  /// clause vivification) over the problem clauses. Intended between
  /// rounds of an incremental session, after new clauses were appended.
  /// Both passes are equivalence-preserving, so every verdict the solver
  /// produces afterwards is unchanged. Returns false if the solver is
  /// (now) unsatisfiable.
  bool Simplify();

  /// Declares the problem clauses loaded so far the inprocessing
  /// baseline: they will not be re-distilled or self-subsumed; future
  /// Simplify() calls inprocess only the clauses appended afterwards (the
  /// session rounds' deltas) against the whole DB. ResolutionSession
  /// calls this once after loading Φ(Se) — distilling a freshly
  /// generated, canonical encoding wholesale costs more propagation than
  /// every solve of the session combined. Without priming, the first
  /// Simplify() primes implicitly (vivification) and the whole formula
  /// acts as its own subsumer set under the step budget.
  void PrimeInprocessing();

  /// True if unsatisfiability was established independent of assumptions.
  bool IsUnsatForever() const { return !ok_; }

  /// \brief WalkSAT-style local search run directly on the solver's own
  /// clause arena and binary watch lists (no CNF copy; scratch buffers
  /// are pooled on the solver and reused across calls).
  ///
  /// Variables fixed on the level-0 trail, named by `assumptions`, or
  /// eliminated by BVE never flip; the search covers exactly the live
  /// problem clauses not already satisfied by those fixings. The best
  /// assignment found is installed into the saved-phase array (biasing
  /// the next CDCL descent toward it), and when it satisfies every
  /// problem clause it is extended over eliminated variables and pushed
  /// into the cached-model ring as a genuine witness. `softs` (clauses
  /// over existing, non-eliminated variables) are scored but never
  /// required: the returned soft_unsat of a feasible pass is the MaxSAT
  /// upper-bound probe. Deterministic: the RNG is seeded from a per-call
  /// salt (reset by Reset()) or budget.seed — never wall-clock or global
  /// state. Must be called at decision level 0. Verdict-neutral by
  /// construction: phases and cached models only steer search time.
  LocalSearchResult SeedFromLocalSearch(
      std::span<const Lit> assumptions = {},
      std::span<const std::vector<Lit>> softs = {},
      const LocalSearchBudget& budget = {});

  /// MaxSAT layer reporting: an upper-bound probe ran; `win` when the
  /// probed bound turned out to be the exact optimum.
  void RecordSlsProbe(bool win) {
    ++stats_.sls_probes;
    if (win) ++stats_.sls_probe_wins;
  }

  /// Deduce-phase reporting (src/core/deduce.cc): entailment solver
  /// calls issued, pairs refuted by model sweeping, pairs certified by
  /// propagation alone, and chunked certification solves. Folded into
  /// stats_ so RoundTrace per-phase deltas pick the counters up with no
  /// extra plumbing.
  void RecordDeduce(int64_t queries, int64_t model_prunes,
                    int64_t propagation_proofs, int64_t chunk_solves) {
    stats_.deduce_queries += queries;
    stats_.deduce_model_prunes += model_prunes;
    stats_.deduce_propagation_proofs += propagation_proofs;
    stats_.deduce_chunk_solves += chunk_solves;
  }

  /// \name Propagation-only probing (no search, no learning)
  ///
  /// The backbone Deduce engine's tier-2 screen: BeginProbe backtracks
  /// to level 0, opens ONE decision level, enqueues `base` (typically
  /// the guard assumptions) and propagates it to fixpoint. While the
  /// probe is open, ProbeValue reads the propagated value of a variable
  /// — kTrue means base ∪ Φ unit-implies it — and ProbeLitFails(p)
  /// pushes a nested level, enqueues `p`, propagates, and backtracks to
  /// the probe base again: `true` (a conflict) is a unit-propagation
  /// proof that Φ ∧ base entails ¬p. Nothing is learnt and nothing is
  /// analyzed; the only side effect is phase saving, which never moves
  /// a verdict. EndProbe backtracks to level 0. BeginProbe returns
  /// false (and leaves the solver at level 0) when `base` is already
  /// propagation-refuted.
  /// @{
  bool BeginProbe(std::span<const Lit> base);
  Lbool ProbeValue(Var v) const { return assigns_[v]; }
  bool ProbeLitFails(Lit p);
  void EndProbe();
  /// @}

  /// Cached models (the fresh entry plus the witness ring) that satisfy
  /// every literal of `assumptions` — each one a genuine model of the
  /// current formula, usable as a bulk non-entailment witness by the
  /// backbone Deduce sweep. Pointers are invalidated by the next solver
  /// call of any kind; empty when use_model_cache is off.
  std::vector<const std::vector<Lbool>*> CachedWitnesses(
      std::span<const Lit> assumptions) const;

  /// Asserts ¬activation plus ¬v for every scope variable in one batch —
  /// a single multi-literal pass with ONE propagation round, instead of
  /// one AddClause (each with its own propagation fixpoint) per variable.
  /// The frozen variables are additionally barred from ever re-entering
  /// the decision heap (checked). Returns false if the solver became
  /// unsatisfiable. ScopedVars::Release is the caller.
  bool FreezeScope(Lit activation, std::span<const Var> vars);

  /// Integrates one clause learnt by another portfolio worker (public so
  /// the validation contract is directly testable). The clause must be
  /// implied by the problem clauses; the solver must be at decision
  /// level 0. Returns true iff the clause was integrated: a clause
  /// mentioning an unknown, BVE-eliminated, or scope-frozen variable is
  /// rejected outright (eliminated variables no longer exist in this
  /// solver's formula, and frozen scopes may differ from the exporter's
  /// view — rejection is always sound, an import never is unless it
  /// validates). Satisfied clauses are skipped; false literals are
  /// dropped by level-0 propagation, and a clause emptied that way proves
  /// the formula UNSAT (IsUnsatForever() flips — the implied empty
  /// clause). Imports never invalidate the cached-model pool: an implied
  /// clause is satisfied by every genuine model already cached.
  bool ImportSharedClause(std::span<const Lit> lits, int glue);

  /// Debug/test accessor: every learnt clause currently in the database
  /// (all tiers), plus every binary clause ever learnt into the implicit
  /// binary watch lists. Each returned clause is implied by the problem
  /// clauses — the learnt-implication regression suite re-solves to check
  /// exactly that.
  std::vector<std::vector<Lit>> LearntClauses() const;

  /// Restores the solver to its freshly-constructed state — no variables,
  /// no clauses, zeroed statistics, `options` applied — while keeping the
  /// heap allocations (clause arena, watch lists, trail, per-variable
  /// arrays) it has grown so far. A Reset solver is observably identical
  /// to `Solver(options)`: same decisions, same models, same statistics on
  /// the same input. SessionScratch uses it to recycle one solver across
  /// back-to-back ResolutionSessions without re-allocating from cold.
  void Reset(SolverOptions options = {});

  /// Compacts the clause arena: live clauses move into a fresh arena and
  /// every ClauseRef holder — watch lists, reason slots, the learnt
  /// tiers, the occurrence index — is rewritten to the relocated
  /// references. (The cached-model pool holds no references, only
  /// per-variable values, so it survives untouched.) Runs automatically
  /// under SolverOptions::use_arena_gc / gc_frac; public so tests and
  /// benches can force a relocation. Order inside every clause list and
  /// watch list is preserved, which makes the collection search-neutral:
  /// every later decision, propagation and verdict is identical to a run
  /// that never collected.
  void GarbageCollect();

  /// Declares `v` a candidate for bounded variable elimination
  /// (use_bve): the caller promises `v` is never assumed and never
  /// appears in a clause added after this call (both checked). Once
  /// inprocessing resolves `v` away, ModelValue(v) stays exact through
  /// the model-reconstruction stack.
  void MarkEliminable(Var v);
  bool VarEliminated(Var v) const { return eliminated_[v] != 0; }

  /// Arena occupancy in 32-bit words: current size, size minus the dead
  /// words awaiting collection, and the lifetime high-water mark. The
  /// long-lived-session soak asserts arena_words() stays within a small
  /// factor of arena_live_words() when the GC is on.
  size_t arena_words() const { return arena_.size(); }
  size_t arena_live_words() const { return arena_.size() - arena_dead_words_; }
  size_t arena_peak_words() const { return arena_peak_words_; }

 private:
  // --- clause arena ----------------------------------------------------
  //
  // Arena layout per clause: [size<<3 | vivified<<2 | dead<<1 |
  // learnt][activity bits / sig lo][lbd / sig hi][lits...]. `dead` marks
  // clauses removed by deletion or inprocessing (already detached; their
  // words are accounted in arena_dead_words_ and reclaimed by
  // GarbageCollect); `vivified` marks clauses the vivification pass has
  // already distilled, so later passes skip them until a strengthening
  // changes them again. Learnt clauses use words 1–2 for activity and
  // LBD; problem clauses never do, so the subsumption pass stores their
  // 64-bit variable signature there instead.
  //
  // Reason encoding: a reason is either an arena reference (< 2^31 —
  // checked at allocation), the literal-encoded reason of a binary
  // implication (bit 31 set, low bits the OTHER, false literal of the
  // binary clause), kRefBinConflict (a binary conflict, the two literals
  // in bin_conflict_), or kRefUndef.
  using ClauseRef = uint32_t;
  static constexpr ClauseRef kRefUndef = UINT32_MAX;
  static constexpr ClauseRef kRefBinConflict = UINT32_MAX - 1;
  static constexpr ClauseRef kRefBinaryFlag = 0x80000000u;

  static bool RefIsBinary(ClauseRef r) {
    return r >= kRefBinaryFlag && r < kRefBinConflict;
  }
  static ClauseRef MakeBinaryRef(Lit other) {
    return kRefBinaryFlag | static_cast<uint32_t>(other.index());
  }
  static Lit RefLit(ClauseRef r) {
    return Lit::FromIndex(static_cast<int32_t>(r & ~kRefBinaryFlag));
  }

  ClauseRef AllocClause(const std::vector<Lit>& lits, bool learnt);
  int ClauseSize(ClauseRef c) const { return arena_[c] >> 3; }
  bool ClauseLearnt(ClauseRef c) const { return arena_[c] & 1; }
  bool ClauseDead(ClauseRef c) const { return arena_[c] & 2; }
  void MarkClauseDead(ClauseRef c) {
    if (!(arena_[c] & 2)) {
      arena_dead_words_ += 3 + static_cast<size_t>(ClauseSize(c));
      arena_[c] |= 2;
    }
  }
  bool ClauseVivified(ClauseRef c) const { return arena_[c] & 4; }
  void SetClauseVivified(ClauseRef c, bool on) {
    if (on) {
      arena_[c] |= 4;
    } else {
      arena_[c] &= ~4u;
    }
  }
  void SetClauseSize(ClauseRef c, int size) {
    arena_[c] = (static_cast<uint32_t>(size) << 3) | (arena_[c] & 7);
  }
  Lit* ClauseLits(ClauseRef c) {
    return reinterpret_cast<Lit*>(&arena_[c + 3]);
  }
  const Lit* ClauseLits(ClauseRef c) const {
    return reinterpret_cast<const Lit*>(&arena_[c + 3]);
  }
  // Activity is a float stored in a uint32_t arena word; std::bit_cast is
  // the strict-aliasing-clean way to view it (a reinterpret_cast through
  // float* here is UB under -fstrict-aliasing).
  float ClauseActivity(ClauseRef c) const {
    return std::bit_cast<float>(arena_[c + 1]);
  }
  void SetClauseActivity(ClauseRef c, float a) {
    arena_[c + 1] = std::bit_cast<uint32_t>(a);
  }
  // Problem-clause variable signature (Bloom filter over var % 64),
  // cached in the unused activity/LBD words at AddClause and kept fresh
  // on every strengthening, so the subsumption pass never rebuilds it.
  uint64_t ClauseSig(ClauseRef c) const {
    return arena_[c + 1] | (static_cast<uint64_t>(arena_[c + 2]) << 32);
  }
  void StoreClauseSig(ClauseRef c);
  uint32_t ClauseLbd(ClauseRef c) const { return arena_[c + 2]; }
  void SetClauseLbd(ClauseRef c, uint32_t lbd) { arena_[c + 2] = lbd; }

  struct Watcher {
    ClauseRef cref;
    Lit blocker;
  };

  // --- portfolio search (implemented in src/sat/portfolio.cc) ----------
  //
  // SolveInternal intercepts a solve when options_.portfolio_threads > 1:
  // the master first searches alone under a conflict cap (the defer
  // gate); a solve still undecided then races the master (worker 0, this
  // thread) against the lazily created helper team. During a race every
  // worker exports small learnt clauses into its ring slot
  // (MaybeExportLearnt, from RecordLearnt) and imports the other
  // workers' exports at restart boundaries (ImportSharedClauses, from
  // SolveLoop at level 0). The first decisive worker CASes itself the
  // winner and raises the stop flag, which Search and Propagate poll.
  SolveResult PortfolioRace(std::span<const Lit> assumptions);
  // Creates the helper team on first use and replays the mirror op log
  // (caller clauses + scope freezes recorded by AddClause/FreezeScope
  // while portfolio is enabled) so every helper holds an equisatisfiable
  // copy of the formula with identical variable ids.
  void SyncTeam();
  // Drains every other worker's export buffer through ImportSharedClause.
  // Returns ok_ (false = an implied empty clause surfaced: UNSAT).
  bool ImportSharedClauses();
  void MaybeExportLearnt(const std::vector<Lit>& learnt, int lbd);
  // Installs a winning helper's model as this solver's model_ (the helper
  // formula is the mirrored original, so its model satisfies every master
  // clause — BVE resolvents included, they are implied).
  void AdoptExternalModel(const std::vector<Lbool>& m);
  bool StopRequested() const {
    return stop_flag_ != nullptr &&
           stop_flag_->load(std::memory_order_relaxed) != 0;
  }

  // --- search ----------------------------------------------------------
  SolveResult SolveInternal(std::span<const Lit> assumptions);
  SolveResult SolveLoop(std::span<const Lit> assumptions);
  SolveResult Search(int64_t conflict_budget,
                     std::span<const Lit> assumptions);
  ClauseRef Propagate();
  void Analyze(ClauseRef conflict, std::vector<Lit>* out_learnt,
               int* out_btlevel, int* out_lbd);
  bool LitRedundant(Lit p, uint32_t abstract_levels);
  void AnalyzeFinal(Lit p, std::vector<Lit>* out_core);
  void UncheckedEnqueue(Lit p, ClauseRef from);
  void CancelUntil(int level);
  Lit PickBranchLit();
  void AttachClause(ClauseRef c);
  void DetachClause(ClauseRef c);
  void AttachBinary(Lit a, Lit b);
  void RecordLearnt(const std::vector<Lit>& learnt, int lbd);
  int ComputeLbd(std::span<const Lit> lits);
  void ReduceDb();
  void ReduceDbTiered();
  void RemoveSatisfiedTopLevel();
  void SweepSatisfied(std::vector<ClauseRef>* list);
  void SweepSatisfiedProblem();
  void SweepBinaries();
  // Shared tail of AddClause: simplify, allocate, index, attach. The
  // internal entry point is what BVE uses to insert resolvents — they are
  // implied by the clauses they replace, so it must NOT invalidate the
  // model cache the way a genuine caller-added clause does.
  bool AddClauseInternal(std::vector<Lit> lits);

  // --- arena lifecycle --------------------------------------------------
  // Whether the persistent occurrence index is maintained at all: both
  // the subsumption pass and variable elimination consume it.
  bool TrackOccurrences() const {
    return options_.use_inprocessing || options_.use_bve;
  }
  void MaybeGarbageCollect();
  ClauseRef RelocateClause(ClauseRef c);
  // Drops dead entries from clauses_, shifting inproc_watermark_ by the
  // number removed below it — the exact accounting that replaces the old
  // drifting fresh-clause counter.
  void CompactProblemClauses();
  void RebuildOccurrenceIndex();

  // --- bounded variable elimination ------------------------------------
  void EliminatePass();
  bool TryEliminateVar(Var v);
  // Fills the eliminated variables of `model` (processed newest
  // elimination first) with values satisfying their saved clauses.
  void ExtendModel(std::vector<Lbool>* model) const;
  size_t NumReducibleLearnts() const {
    return learnts_mid_.size() + learnts_local_.size();
  }

  // --- model cache ------------------------------------------------------
  bool ModelWitnesses(const std::vector<Lbool>& m,
                      std::span<const Lit> assumptions) const {
    // Backwards: callers append the discriminating literal (cell value,
    // bound selector) after the long-lived guard prefix, so misses fail
    // on the first probe instead of re-checking the shared guards.
    for (size_t i = assumptions.size(); i-- > 0;) {
      const Lit a = assumptions[i];
      if (static_cast<size_t>(a.var()) >= m.size()) return false;
      if (LboolOf(m[a.var()], a.negated()) != Lbool::kTrue) return false;
    }
    return true;
  }
  // A clause was added or a scope frozen: cached models may be falsified.
  void InvalidateModelCache() {
    model_fresh_ = false;
    model_pool_.clear();
    model_pool_next_ = 0;
  }
  // Rotates the previous newest model into the ring before model_ is
  // overwritten by a fresh solve.
  void CacheCurrentModel();
  // Debug aid: does `m` satisfy every live problem clause, every binary,
  // and agree with the level-0 trail?
  bool DebugModelSatisfiesLive(const std::vector<Lbool>& m) const;

  // --- inprocessing ----------------------------------------------------
  void SubsumptionPass();
  void VivificationPass();
  // Removes `l` from the (attached, size>=3) problem clause `c`,
  // re-attaching / migrating / enqueueing as the new size demands.
  void StrengthenClause(ClauseRef c, Lit l);
  // Rewrites clause `c` to `lits` after vivification shortened it.
  void ShrinkClause(ClauseRef c, std::span<const Lit> lits);

  Lbool ValueOf(Lit p) const {
    return LboolOf(assigns_[p.var()], p.negated());
  }
  int DecisionLevel() const { return static_cast<int>(trail_lim_.size()); }

  // VSIDS helpers.
  void VarBump(Var v);
  void VarDecay() { var_inc_ /= options_.var_decay; }
  void ClauseBump(ClauseRef c);
  void ClauseDecay() { clause_inc_ /= options_.clause_decay; }
  void HeapInsert(Var v);
  Var HeapPop();
  void HeapDecrease(Var v);
  bool HeapEmpty() const { return heap_.empty(); }

  static int64_t Luby(int64_t i);

  SolverOptions options_;
  SolverStats stats_;
  SolverStats last_call_;
  bool ok_ = true;  // false once UNSAT independent of assumptions

  std::vector<uint32_t> arena_;
  std::vector<ClauseRef> clauses_;  // problem clauses (arena-backed)
  // Learnt tiers. With use_lbd_tiers off everything lands in local and
  // ReduceDb behaves like the single activity-sorted MiniSat DB.
  std::vector<ClauseRef> learnts_core_;   // glue <= 2, kept forever
  std::vector<ClauseRef> learnts_mid_;    // glue <= 6, reduced by glue
  std::vector<ClauseRef> learnts_local_;  // reduced by activity

  std::vector<std::vector<Watcher>> watches_;  // indexed by Lit::index()
  // Implicit binary watch lists: bins_[p.index()] holds every literal q
  // with a clause (~p ∨ q) — assigning p true implies q, no arena access.
  std::vector<std::vector<Lit>> bins_;
  // Binary clauses learnt into bins_ (LearntClauses() debug accessor
  // only; capped in RecordLearnt, and a learnt binary stays implied even
  // after a sweep prunes its entries).
  std::vector<std::pair<Lit, Lit>> learnt_binaries_;
  Lit bin_conflict_[2] = {kLitUndef, kLitUndef};

  std::vector<Lbool> assigns_;                 // per var
  std::vector<bool> polarity_;                 // saved phases
  std::vector<uint8_t> frozen_;  // per var; released scope vars, barred
                                 // from the decision heap
  std::vector<int> level_;                     // per var
  std::vector<ClauseRef> reason_;              // per var
  std::vector<Lit> trail_;
  std::vector<int> trail_lim_;
  size_t qhead_ = 0;   // next trail literal for long-clause propagation
  size_t bhead_ = 0;   // next trail literal for binary propagation

  std::vector<double> activity_;  // per var
  double var_inc_ = 1.0;
  double clause_inc_ = 1.0;
  std::vector<Var> heap_;       // binary max-heap of vars by activity
  std::vector<int> heap_pos_;   // per var; -1 if absent

  std::vector<uint8_t> seen_;   // scratch for Analyze
  std::vector<Lit> analyze_stack_;    // scratch for LitRedundant
  std::vector<Lit> analyze_toclear_;  // seen_ marks to undo
  std::vector<uint64_t> lbd_stamp_;   // per level, for ComputeLbd
  uint64_t lbd_counter_ = 0;
  std::vector<Lbool> model_;
  std::vector<Lit> conflict_core_;

  // Cached-model pool (use_model_cache): model_ itself is the newest
  // entry when model_fresh_; older models ride in a small ring. Cleared
  // whenever the formula genuinely strengthens (AddClause, FreezeScope).
  static constexpr size_t kModelPoolSize = 4;
  std::vector<std::vector<Lbool>> model_pool_;
  size_t model_pool_next_ = 0;
  bool model_fresh_ = false;

  // Decision level of an open BeginProbe session; -1 when no probe is
  // open. Guards the ProbeLitFails/EndProbe contract in debug builds.
  int probe_base_level_ = -1;

  // Glucose-style restart state (per SolveLoop; seeded by the first
  // conflict's glue so the slow average never anchors at 0).
  double ema_fast_ = 0;
  double ema_slow_ = 0;
  bool ema_seeded_ = false;
  int64_t conflicts_since_restart_ = 0;

  double max_learnts_ = 0;
  int64_t reduce_calls_ = 0;

  // Inprocessing bookkeeping: clauses_[inproc_watermark_..] are the
  // entries appended since the last subsumption pass (those act as the
  // subsumers). Every clauses_ compaction adjusts the watermark by the
  // number of entries dropped below it, so the delta is exact — no
  // clamping, no drift. Problem binaries added since the last pass ride
  // in pending_bins_ (they bypass the arena under binary watches).
  size_t inproc_watermark_ = 0;
  std::vector<std::pair<Lit, Lit>> pending_bins_;
  // False until the first vivification pass, which stamps the initial
  // encoding as seen instead of distilling it wholesale.
  bool vivify_primed_ = false;

  // Arena lifecycle: words owned by dead clauses and shrunk tails (live =
  // arena_.size() - arena_dead_words_), the lifetime high-water mark, and
  // the relocation target recycled across collections.
  size_t arena_dead_words_ = 0;
  size_t arena_peak_words_ = 0;
  std::vector<uint32_t> arena_tmp_;

  // Persistent occurrence index over the problem clauses (maintained
  // whenever inprocessing or BVE is on): occur_[v] lists every arena
  // clause containing v in clause-addition order, appended at AddClause,
  // purged lazily when dead entries are scanned, and rebuilt exactly —
  // same order — by GarbageCollect.
  std::vector<std::vector<ClauseRef>> occur_;

  // Stochastic local search scratch (SeedFromLocalSearch), pooled so
  // repeated seeding/probing calls on a long-lived solver allocate
  // nothing once warm. The active subformula (live clauses minus those
  // satisfied by the fixing, fixed-false literals dropped) is gathered
  // into flat CSR buffers per call.
  struct SlsScratch {
    std::vector<Lit> pool;          // clause literals, CSR
    std::vector<int32_t> starts;    // clause -> offset into pool
    std::vector<int32_t> occ;       // lit index -> clause ids, CSR
    std::vector<int32_t> occ_start;
    std::vector<int32_t> cursor;    // CSR fill cursors
    std::vector<uint8_t> val;       // per var: current assignment
    std::vector<uint8_t> fixed;     // per var: never flipped
    std::vector<uint8_t> best;      // per var: best assignment seen
    std::vector<int32_t> true_count;  // per clause
    std::vector<int32_t> unsat_hard;  // stacks of unsatisfied clause ids
    std::vector<int32_t> unsat_soft;
    std::vector<int32_t> unsat_pos;   // clause -> position in its stack
    std::vector<Var> free_vars;       // distinct unfixed vars in pool
    std::vector<uint8_t> var_seen;    // per var: dedup for free_vars
    std::vector<Var> cand;            // zero-break candidates per flip
  };
  SlsScratch sls_;
  // Per-call RNG salt: advances on every auto-seeded search so repeated
  // calls explore different trajectories, deterministically. Reset()
  // zeroes it — a Reset solver replays the identical stream.
  uint64_t sls_salt_ = 0;

  // Incremental local-search verification cache: the last assignment a
  // SeedFromLocalSearch call proved to satisfy every live clause, plus
  // watermarks describing the formula it was proved against. A later
  // call can then re-verify only what changed — variables whose value
  // differs (their clauses found through occur_ and bins_), arena
  // clauses appended past the watermark, and the logged problem
  // binaries — instead of scanning the whole clause database. Any
  // in-place clause edit or clause-list compaction bumps sls_epoch_,
  // voiding the cache until the next full verification; the binary log
  // is bounded, overflowing into the same voiding.
  std::vector<uint8_t> sls_verified_val_;  // empty = nothing verified yet
  size_t sls_verified_clauses_ = 0;        // clauses_.size() at verify
  uint64_t sls_epoch_ = 0;
  uint64_t sls_verified_epoch_ = 0;
  bool sls_bin_log_overflow_ = false;
  std::vector<std::pair<Lit, Lit>> sls_new_bins_;

  // Bounded variable elimination state. The stack records every clause
  // removed with its variable; ExtendModel replays it newest-first to
  // give eliminated variables exact model values.
  std::vector<uint8_t> eliminable_;   // per var: MarkEliminable called
  std::vector<uint8_t> eliminated_;   // per var: resolved away
  std::vector<Var> elim_candidates_;  // marked, not yet eliminated
  struct ElimRecord {
    Var v;
    std::vector<std::vector<Lit>> clauses;
  };
  std::vector<ElimRecord> elim_stack_;

  // Portfolio state. The mirror op log records, while portfolio is
  // enabled, every external AddClause and FreezeScope in call order —
  // exactly what SyncTeam replays into the helpers before a race (BVE
  // resolvents and imports go through AddClauseInternal and are
  // deliberately NOT logged: helpers derive their own). The race-scoped
  // pointers below are non-null only while this solver is a worker in a
  // running race; Reset() tears all of it down.
  struct MirrorOp {
    bool is_freeze = false;
    Lit act = kLitUndef;     // freeze only
    std::vector<Lit> lits;   // clause literals
    std::vector<Var> vars;   // freeze scope vars
  };
  std::vector<MirrorOp> mirror_log_;
  std::unique_ptr<PortfolioTeam> team_;
  const std::atomic<uint8_t>* stop_flag_ = nullptr;
  ClauseShareRing* share_ring_ = nullptr;
  ClauseExportBuf* export_buf_ = nullptr;
  int share_worker_ = -1;
  // Defer-gate conflict cap (absolute, against stats_.conflicts; < 0 =
  // none). Unlike options_.max_conflicts this is transient: SolveInternal
  // sets it for the master's solo phase and clears it before racing.
  int64_t conflict_cap_ = -1;
};

/// \brief A batch of temporary variables and clauses on a persistent
/// solver, deactivated wholesale when the scope is released.
///
/// Incremental MaxSAT (and GetSug's per-round rule selectors) introduce
/// auxiliary variables whose clauses must not constrain later rounds of
/// the same session. A scope ties every clause added through it to a fresh
/// activation literal `act`: the clause is stored as (clause ∨ ¬act), so it
/// only bites while `act` is among the solve assumptions. Release() hands
/// the whole scope to Solver::FreezeScope, which asserts ¬act and freezes
/// every scope variable false in one batched pass with a single
/// propagation round — every scope clause (and every learnt clause derived
/// from one, which necessarily contains ¬act) becomes permanently
/// satisfied and is swept by the solver's top-level simplification — and
/// bars the frozen variables from re-entering the decision heap. Variable
/// ids are not reclaimed; everything else about the scope is gone.
///
/// Usage:
///   ScopedVars scope(&solver);
///   Var s = scope.NewVar();
///   scope.AddClause({Lit::Neg(s), some_lit});
///   solver.SolveWithAssumptions({scope.activation(), Lit::Pos(s)});
///   // scope.Release() — or let the destructor do it.
class ScopedVars {
 public:
  explicit ScopedVars(Solver* solver)
      : solver_(solver), act_(solver->NewVar()) {}
  ~ScopedVars() { Release(); }
  ScopedVars(const ScopedVars&) = delete;
  ScopedVars& operator=(const ScopedVars&) = delete;

  /// Assume this literal (true) in every solve that should see the
  /// scope's clauses.
  Lit activation() const { return Lit::Pos(act_); }

  /// A fresh variable owned by the scope (frozen to false on release).
  Var NewVar() {
    const Var v = solver_->NewVar();
    vars_.push_back(v);
    return v;
  }

  /// Adds (lits ∨ ¬activation): active only while activation() is assumed.
  bool AddClause(std::vector<Lit> lits) {
    lits.push_back(Lit::Neg(act_));
    return solver_->AddClause(std::move(lits));
  }

  /// Permanently deactivates the scope (idempotent): one batched
  /// freeze-and-propagate pass over the activation plus every scope var.
  void Release() {
    if (released_) return;
    released_ = true;
    solver_->FreezeScope(activation(), vars_);
  }

 private:
  Solver* solver_;
  Var act_;
  std::vector<Var> vars_;
  bool released_ = false;
};

}  // namespace ccr::sat

#endif  // CCR_SAT_SOLVER_H_
