// Conflict-driven clause learning (CDCL) SAT solver.
//
// This is the repository's stand-in for MiniSat [19], which the paper's
// IsValid uses to decide whether a specification Se has a valid completion.
// It implements the standard modern architecture: two-watched-literal
// propagation, 1-UIP conflict analysis with clause learning, VSIDS decision
// ordering, phase saving, Luby restarts, activity-based learnt-clause
// reduction, and incremental solving under assumptions (used by NaiveDeduce
// and the MaxSAT layer).

#ifndef CCR_SAT_SOLVER_H_
#define CCR_SAT_SOLVER_H_

#include <cstdint>
#include <vector>

#include "src/sat/cnf.h"
#include "src/sat/literal.h"

namespace ccr::sat {

/// Tunables; the defaults match common MiniSat settings. The ablation
/// benches flip individual features off.
struct SolverOptions {
  bool use_vsids = true;          // activity-ordered decisions vs. lowest id
  bool use_phase_saving = true;   // remember last polarity per variable
  bool use_restarts = true;       // Luby restarts
  bool use_clause_deletion = true;  // periodically shrink the learnt DB
  double var_decay = 0.95;
  double clause_decay = 0.999;
  int64_t max_conflicts = -1;     // < 0 means unlimited
};

/// Outcome of a solve call.
enum class SolveResult { kSat, kUnsat, kUnknown };

/// Solver statistics (cumulative across Solve calls).
struct SolverStats {
  int64_t conflicts = 0;
  int64_t decisions = 0;
  int64_t propagations = 0;
  int64_t restarts = 0;
  int64_t learnt_literals = 0;

  /// Component-wise difference (for per-call deltas).
  SolverStats operator-(const SolverStats& o) const {
    return {conflicts - o.conflicts, decisions - o.decisions,
            propagations - o.propagations, restarts - o.restarts,
            learnt_literals - o.learnt_literals};
  }
};

/// \brief Incremental CDCL solver.
///
/// Typical use:
///   Solver s;
///   s.AddCnf(phi);
///   if (s.Solve() == SolveResult::kSat) { ... s.ModelValue(v) ... }
///
/// Clauses may be added between Solve calls; assumptions make a solve
/// conditional without permanently asserting the literals.
class Solver {
 public:
  explicit Solver(SolverOptions options = {});

  /// Allocates a fresh variable.
  Var NewVar();
  int num_vars() const { return static_cast<int>(assigns_.size()); }

  /// Adds a clause. Returns false if the solver is already in an
  /// unsatisfiable state (empty clause derived at level 0).
  bool AddClause(std::vector<Lit> lits);

  /// Adds every clause of `cnf`, growing the variable universe as needed.
  void AddCnf(const Cnf& cnf) { AddCnfFrom(cnf, 0); }

  /// Adds the clauses of `cnf` starting at index `first_clause`. Used by
  /// callers that keep one solver alive while their CNF grows append-only
  /// (the ResolutionSession pipeline): only the new suffix is fed.
  void AddCnfFrom(const Cnf& cnf, int first_clause);

  /// Decides satisfiability of the accumulated clauses.
  SolveResult Solve() { return SolveInternal({}); }

  /// Decides satisfiability under the given assumption literals.
  SolveResult SolveWithAssumptions(const std::vector<Lit>& assumptions) {
    return SolveInternal(assumptions);
  }

  /// Model access after kSat. Precondition: last solve returned kSat.
  bool ModelValue(Var v) const { return model_[v] == Lbool::kTrue; }
  Lbool ModelLbool(Var v) const { return model_[v]; }

  /// After kUnsat under assumptions: a subset of the assumptions that is
  /// already jointly inconsistent with the clauses (an unsat "core").
  const std::vector<Lit>& FailedAssumptions() const { return conflict_core_; }

  const SolverStats& stats() const { return stats_; }

  /// Statistics of the most recent Solve/SolveWithAssumptions call alone.
  /// With one solver shared across pipeline phases (validity, deduction,
  /// suggestion) the cumulative counters blend phases together; the
  /// per-call delta keeps phase attribution meaningful.
  const SolverStats& last_call_stats() const { return last_call_; }

  /// Top-level simplification hook: propagates any pending level-0 facts
  /// and detaches problem and learnt clauses already satisfied at level 0.
  /// Intended between rounds of an incremental session, after new clauses
  /// were appended. Returns false if the solver is (now) unsatisfiable.
  bool Simplify();

  /// True if unsatisfiability was established independent of assumptions.
  bool IsUnsatForever() const { return !ok_; }

  /// Restores the solver to its freshly-constructed state — no variables,
  /// no clauses, zeroed statistics, `options` applied — while keeping the
  /// heap allocations (clause arena, watch lists, trail, per-variable
  /// arrays) it has grown so far. A Reset solver is observably identical
  /// to `Solver(options)`: same decisions, same models, same statistics on
  /// the same input. SessionScratch uses it to recycle one solver across
  /// back-to-back ResolutionSessions without re-allocating from cold.
  void Reset(SolverOptions options = {});

 private:
  // --- clause arena ----------------------------------------------------
  using ClauseRef = uint32_t;
  static constexpr ClauseRef kRefUndef = UINT32_MAX;

  // Arena layout per clause: [size<<1 | learnt][activity bits][lits...]
  ClauseRef AllocClause(const std::vector<Lit>& lits, bool learnt);
  int ClauseSize(ClauseRef c) const { return arena_[c] >> 1; }
  bool ClauseLearnt(ClauseRef c) const { return arena_[c] & 1; }
  Lit* ClauseLits(ClauseRef c) {
    return reinterpret_cast<Lit*>(&arena_[c + 2]);
  }
  const Lit* ClauseLits(ClauseRef c) const {
    return reinterpret_cast<const Lit*>(&arena_[c + 2]);
  }
  float& ClauseActivity(ClauseRef c) {
    return *reinterpret_cast<float*>(&arena_[c + 1]);
  }

  struct Watcher {
    ClauseRef cref;
    Lit blocker;
  };

  // --- search ----------------------------------------------------------
  SolveResult SolveInternal(const std::vector<Lit>& assumptions);
  SolveResult SolveLoop(const std::vector<Lit>& assumptions);
  SolveResult Search(int64_t conflict_budget,
                     const std::vector<Lit>& assumptions);
  ClauseRef Propagate();
  void Analyze(ClauseRef conflict, std::vector<Lit>* out_learnt,
               int* out_btlevel);
  void AnalyzeFinal(Lit p, std::vector<Lit>* out_core);
  void UncheckedEnqueue(Lit p, ClauseRef from);
  void CancelUntil(int level);
  Lit PickBranchLit();
  void AttachClause(ClauseRef c);
  void DetachClause(ClauseRef c);
  void ReduceDb();
  void RemoveSatisfiedTopLevel();
  void SweepSatisfied(std::vector<ClauseRef>* list);

  Lbool ValueOf(Lit p) const {
    return LboolOf(assigns_[p.var()], p.negated());
  }
  int DecisionLevel() const { return static_cast<int>(trail_lim_.size()); }

  // VSIDS helpers.
  void VarBump(Var v);
  void VarDecay() { var_inc_ /= options_.var_decay; }
  void ClauseBump(ClauseRef c);
  void ClauseDecay() { clause_inc_ /= options_.clause_decay; }
  void HeapInsert(Var v);
  Var HeapPop();
  void HeapDecrease(Var v);
  bool HeapEmpty() const { return heap_.empty(); }

  static int64_t Luby(int64_t i);

  SolverOptions options_;
  SolverStats stats_;
  SolverStats last_call_;
  bool ok_ = true;  // false once UNSAT independent of assumptions

  std::vector<uint32_t> arena_;
  std::vector<ClauseRef> clauses_;  // problem clauses
  std::vector<ClauseRef> learnts_;

  std::vector<std::vector<Watcher>> watches_;  // indexed by Lit::index()
  std::vector<Lbool> assigns_;                 // per var
  std::vector<bool> polarity_;                 // saved phases
  std::vector<int> level_;                     // per var
  std::vector<ClauseRef> reason_;              // per var
  std::vector<Lit> trail_;
  std::vector<int> trail_lim_;
  size_t qhead_ = 0;

  std::vector<double> activity_;  // per var
  double var_inc_ = 1.0;
  double clause_inc_ = 1.0;
  std::vector<Var> heap_;       // binary max-heap of vars by activity
  std::vector<int> heap_pos_;   // per var; -1 if absent

  std::vector<uint8_t> seen_;   // scratch for Analyze
  std::vector<Lbool> model_;
  std::vector<Lit> conflict_core_;

  double max_learnts_ = 0;
};

}  // namespace ccr::sat

#endif  // CCR_SAT_SOLVER_H_
