// Conflict-driven clause learning (CDCL) SAT solver.
//
// This is the repository's stand-in for MiniSat [19], which the paper's
// IsValid uses to decide whether a specification Se has a valid completion.
// It implements the standard modern architecture: two-watched-literal
// propagation, 1-UIP conflict analysis with clause learning, VSIDS decision
// ordering, phase saving, Luby restarts, activity-based learnt-clause
// reduction, and incremental solving under assumptions (used by NaiveDeduce
// and the MaxSAT layer).

#ifndef CCR_SAT_SOLVER_H_
#define CCR_SAT_SOLVER_H_

#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

#include "src/sat/cnf.h"
#include "src/sat/literal.h"

namespace ccr::sat {

/// Tunables; the defaults match common MiniSat settings. The ablation
/// benches flip individual features off.
struct SolverOptions {
  bool use_vsids = true;          // activity-ordered decisions vs. lowest id
  bool use_phase_saving = true;   // remember last polarity per variable
  bool use_restarts = true;       // Luby restarts
  bool use_clause_deletion = true;  // periodically shrink the learnt DB
  double var_decay = 0.95;
  double clause_decay = 0.999;
  int64_t max_conflicts = -1;     // < 0 means unlimited
};

/// Outcome of a solve call.
enum class SolveResult { kSat, kUnsat, kUnknown };

/// Solver statistics (cumulative across Solve calls).
struct SolverStats {
  int64_t conflicts = 0;
  int64_t decisions = 0;
  int64_t propagations = 0;
  int64_t restarts = 0;
  int64_t learnt_literals = 0;
  /// Solve calls that carried at least one assumption. With one solver
  /// persisting across pipeline phases and rounds, this is the count of
  /// conditional queries answered without copying or rebuilding anything.
  int64_t assumption_solves = 0;

  /// Component-wise difference (for per-call deltas).
  SolverStats operator-(const SolverStats& o) const {
    return {conflicts - o.conflicts,           decisions - o.decisions,
            propagations - o.propagations,     restarts - o.restarts,
            learnt_literals - o.learnt_literals,
            assumption_solves - o.assumption_solves};
  }
};

/// \brief Incremental CDCL solver.
///
/// Typical use:
///   Solver s;
///   s.AddCnf(phi);
///   if (s.Solve() == SolveResult::kSat) { ... s.ModelValue(v) ... }
///
/// Clauses may be added between Solve calls; assumptions make a solve
/// conditional without permanently asserting the literals.
class Solver {
 public:
  explicit Solver(SolverOptions options = {});

  /// Allocates a fresh variable.
  Var NewVar();
  int num_vars() const { return static_cast<int>(assigns_.size()); }

  /// Adds a clause. Returns false if the solver is already in an
  /// unsatisfiable state (empty clause derived at level 0).
  bool AddClause(std::vector<Lit> lits);

  /// Adds every clause of `cnf`, growing the variable universe as needed.
  void AddCnf(const Cnf& cnf) { AddCnfFrom(cnf, 0); }

  /// Adds the clauses of `cnf` starting at index `first_clause`. Used by
  /// callers that keep one solver alive while their CNF grows append-only
  /// (the ResolutionSession pipeline): only the new suffix is fed.
  void AddCnfFrom(const Cnf& cnf, int first_clause);

  /// Decides satisfiability of the accumulated clauses.
  SolveResult Solve() { return SolveInternal({}); }

  /// Decides satisfiability under the given assumption literals. The
  /// assumptions hold for this call only — nothing is permanently
  /// asserted, which is what lets one persistent solver answer every
  /// phase of a ResolutionSession (validity, deduction, suggestion)
  /// without copying CNF.
  SolveResult SolveWithAssumptions(std::span<const Lit> assumptions) {
    return SolveInternal(assumptions);
  }
  SolveResult SolveWithAssumptions(std::initializer_list<Lit> assumptions) {
    return SolveInternal(
        std::span<const Lit>(assumptions.begin(), assumptions.size()));
  }

  /// Model access after kSat. Precondition: last solve returned kSat.
  bool ModelValue(Var v) const { return model_[v] == Lbool::kTrue; }
  Lbool ModelLbool(Var v) const { return model_[v]; }

  /// After kUnsat under assumptions: a subset of the assumptions that is
  /// already jointly inconsistent with the clauses (an unsat "core").
  const std::vector<Lit>& FailedAssumptions() const { return conflict_core_; }

  const SolverStats& stats() const { return stats_; }

  /// Statistics of the most recent Solve/SolveWithAssumptions call alone.
  /// With one solver shared across pipeline phases (validity, deduction,
  /// suggestion) the cumulative counters blend phases together; the
  /// per-call delta keeps phase attribution meaningful.
  const SolverStats& last_call_stats() const { return last_call_; }

  /// Top-level simplification hook: propagates any pending level-0 facts
  /// and detaches problem and learnt clauses already satisfied at level 0.
  /// Intended between rounds of an incremental session, after new clauses
  /// were appended. Returns false if the solver is (now) unsatisfiable.
  bool Simplify();

  /// True if unsatisfiability was established independent of assumptions.
  bool IsUnsatForever() const { return !ok_; }

  /// Restores the solver to its freshly-constructed state — no variables,
  /// no clauses, zeroed statistics, `options` applied — while keeping the
  /// heap allocations (clause arena, watch lists, trail, per-variable
  /// arrays) it has grown so far. A Reset solver is observably identical
  /// to `Solver(options)`: same decisions, same models, same statistics on
  /// the same input. SessionScratch uses it to recycle one solver across
  /// back-to-back ResolutionSessions without re-allocating from cold.
  void Reset(SolverOptions options = {});

 private:
  // --- clause arena ----------------------------------------------------
  using ClauseRef = uint32_t;
  static constexpr ClauseRef kRefUndef = UINT32_MAX;

  // Arena layout per clause: [size<<1 | learnt][activity bits][lits...]
  ClauseRef AllocClause(const std::vector<Lit>& lits, bool learnt);
  int ClauseSize(ClauseRef c) const { return arena_[c] >> 1; }
  bool ClauseLearnt(ClauseRef c) const { return arena_[c] & 1; }
  Lit* ClauseLits(ClauseRef c) {
    return reinterpret_cast<Lit*>(&arena_[c + 2]);
  }
  const Lit* ClauseLits(ClauseRef c) const {
    return reinterpret_cast<const Lit*>(&arena_[c + 2]);
  }
  float& ClauseActivity(ClauseRef c) {
    return *reinterpret_cast<float*>(&arena_[c + 1]);
  }

  struct Watcher {
    ClauseRef cref;
    Lit blocker;
  };

  // --- search ----------------------------------------------------------
  SolveResult SolveInternal(std::span<const Lit> assumptions);
  SolveResult SolveLoop(std::span<const Lit> assumptions);
  SolveResult Search(int64_t conflict_budget,
                     std::span<const Lit> assumptions);
  ClauseRef Propagate();
  void Analyze(ClauseRef conflict, std::vector<Lit>* out_learnt,
               int* out_btlevel);
  void AnalyzeFinal(Lit p, std::vector<Lit>* out_core);
  void UncheckedEnqueue(Lit p, ClauseRef from);
  void CancelUntil(int level);
  Lit PickBranchLit();
  void AttachClause(ClauseRef c);
  void DetachClause(ClauseRef c);
  void ReduceDb();
  void RemoveSatisfiedTopLevel();
  void SweepSatisfied(std::vector<ClauseRef>* list);

  Lbool ValueOf(Lit p) const {
    return LboolOf(assigns_[p.var()], p.negated());
  }
  int DecisionLevel() const { return static_cast<int>(trail_lim_.size()); }

  // VSIDS helpers.
  void VarBump(Var v);
  void VarDecay() { var_inc_ /= options_.var_decay; }
  void ClauseBump(ClauseRef c);
  void ClauseDecay() { clause_inc_ /= options_.clause_decay; }
  void HeapInsert(Var v);
  Var HeapPop();
  void HeapDecrease(Var v);
  bool HeapEmpty() const { return heap_.empty(); }

  static int64_t Luby(int64_t i);

  SolverOptions options_;
  SolverStats stats_;
  SolverStats last_call_;
  bool ok_ = true;  // false once UNSAT independent of assumptions

  std::vector<uint32_t> arena_;
  std::vector<ClauseRef> clauses_;  // problem clauses
  std::vector<ClauseRef> learnts_;

  std::vector<std::vector<Watcher>> watches_;  // indexed by Lit::index()
  std::vector<Lbool> assigns_;                 // per var
  std::vector<bool> polarity_;                 // saved phases
  std::vector<int> level_;                     // per var
  std::vector<ClauseRef> reason_;              // per var
  std::vector<Lit> trail_;
  std::vector<int> trail_lim_;
  size_t qhead_ = 0;

  std::vector<double> activity_;  // per var
  double var_inc_ = 1.0;
  double clause_inc_ = 1.0;
  std::vector<Var> heap_;       // binary max-heap of vars by activity
  std::vector<int> heap_pos_;   // per var; -1 if absent

  std::vector<uint8_t> seen_;   // scratch for Analyze
  std::vector<Lbool> model_;
  std::vector<Lit> conflict_core_;

  double max_learnts_ = 0;
};

/// \brief A batch of temporary variables and clauses on a persistent
/// solver, deactivated wholesale when the scope is released.
///
/// Incremental MaxSAT (and GetSug's per-round rule selectors) introduce
/// auxiliary variables whose clauses must not constrain later rounds of
/// the same session. A scope ties every clause added through it to a fresh
/// activation literal `act`: the clause is stored as (clause ∨ ¬act), so it
/// only bites while `act` is among the solve assumptions. Release() asserts
/// ¬act at the top level — every scope clause (and every learnt clause
/// derived from one, which necessarily contains ¬act) becomes permanently
/// satisfied and is swept by the solver's top-level simplification — and
/// freezes the scope's variables to false so they never resurface as
/// decision candidates. Variable ids are not reclaimed; everything else
/// about the scope is gone.
///
/// Usage:
///   ScopedVars scope(&solver);
///   Var s = scope.NewVar();
///   scope.AddClause({Lit::Neg(s), some_lit});
///   solver.SolveWithAssumptions({scope.activation(), Lit::Pos(s)});
///   // scope.Release() — or let the destructor do it.
class ScopedVars {
 public:
  explicit ScopedVars(Solver* solver)
      : solver_(solver), act_(solver->NewVar()) {}
  ~ScopedVars() { Release(); }
  ScopedVars(const ScopedVars&) = delete;
  ScopedVars& operator=(const ScopedVars&) = delete;

  /// Assume this literal (true) in every solve that should see the
  /// scope's clauses.
  Lit activation() const { return Lit::Pos(act_); }

  /// A fresh variable owned by the scope (frozen to false on release).
  Var NewVar() {
    const Var v = solver_->NewVar();
    vars_.push_back(v);
    return v;
  }

  /// Adds (lits ∨ ¬activation): active only while activation() is assumed.
  bool AddClause(std::vector<Lit> lits) {
    lits.push_back(Lit::Neg(act_));
    return solver_->AddClause(std::move(lits));
  }

  /// Permanently deactivates the scope (idempotent).
  void Release() {
    if (released_) return;
    released_ = true;
    solver_->AddClause({Lit::Neg(act_)});
    for (Var v : vars_) solver_->AddClause({Lit::Neg(v)});
  }

 private:
  Solver* solver_;
  Var act_;
  std::vector<Var> vars_;
  bool released_ = false;
};

}  // namespace ccr::sat

#endif  // CCR_SAT_SOLVER_H_
