#include "src/service/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace ccr {
namespace service {

Result<ServiceClient> ServiceClient::Dial(const std::string& address) {
  int fd = -1;
  if (address.rfind("unix:", 0) == 0) {
    const std::string path = address.substr(5);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument("bad unix socket path: " + path);
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return Status::Internal("socket() failed");
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      return Status::Internal("connect(" + path +
                              ") failed: " + std::strerror(errno));
    }
  } else if (address.rfind("tcp:", 0) == 0) {
    const std::string rest = address.substr(4);
    std::string host = "127.0.0.1";
    std::string port = rest;
    const size_t colon = rest.find(':');
    if (colon != std::string::npos) {
      host = rest.substr(0, colon);
      port = rest.substr(colon + 1);
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(std::atoi(port.c_str())));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      return Status::InvalidArgument("bad IPv4 host: " + host);
    }
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return Status::Internal("socket() failed");
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      return Status::Internal("connect(" + rest +
                              ") failed: " + std::strerror(errno));
    }
  } else {
    return Status::InvalidArgument(
        "address wants unix:/path or tcp:[host:]port, got '" + address + "'");
  }
  return ServiceClient(fd);
}

void ServiceClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Frame> ServiceClient::Call(const Frame& request) {
  if (fd_ < 0) return Status::Internal("client is not connected");
  std::string bytes;
  if (!EncodeFrame(request, &bytes)) {
    return Status::InvalidArgument("request exceeds the frame size cap");
  }
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd_, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      Close();
      return Status::Internal("write failed: " + std::string(strerror(errno)));
    }
    off += static_cast<size_t>(n);
  }
  Frame reply;
  char buf[64 * 1024];
  while (true) {
    const FrameDecoder::Outcome got = decoder_.Next(&reply);
    if (got == FrameDecoder::Outcome::kFrame) return reply;
    if (got == FrameDecoder::Outcome::kError) {
      Close();
      return Status::Internal("reply framing error: " + decoder_.error());
    }
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      Close();
      return Status::Internal("connection closed mid-reply");
    }
    decoder_.Feed(std::string_view(buf, static_cast<size_t>(n)));
  }
}

Result<Frame> ServiceClient::Call(RequestType type,
                                  const std::string& session_id,
                                  const std::string& body) {
  Frame request;
  request.type = static_cast<uint8_t>(type);
  request.session_id = session_id;
  request.body = body;
  return Call(request);
}

}  // namespace service
}  // namespace ccr
