// Minimal blocking client for the framed protocol — what the tests, the
// bench load generator, and the smoke scripts use to talk to ccr_serve.
// One request in flight per client; use one client per thread.

#ifndef CCR_SERVICE_CLIENT_H_
#define CCR_SERVICE_CLIENT_H_

#include <string>

#include "src/common/status.h"
#include "src/service/wire.h"

namespace ccr {
namespace service {

/// \brief Blocking connection to a ccr_serve daemon.
class ServiceClient {
 public:
  ServiceClient() = default;
  ~ServiceClient() { Close(); }

  ServiceClient(ServiceClient&& other) noexcept : fd_(other.fd_) {
    other.fd_ = -1;
  }
  ServiceClient& operator=(ServiceClient&&) = delete;
  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  /// Connects to "unix:/path" or "tcp:PORT" / "tcp:host:port" (host may
  /// only be a dotted-quad IPv4 literal; default 127.0.0.1).
  static Result<ServiceClient> Dial(const std::string& address);

  /// Sends one request frame and blocks for its response frame. A decode
  /// error or closed connection fails the call; the client is then dead.
  Result<Frame> Call(const Frame& request);

  /// Convenience wrapper: builds the request frame, returns the reply.
  Result<Frame> Call(RequestType type, const std::string& session_id,
                     const std::string& body);

  bool connected() const { return fd_ >= 0; }
  void Close();

 private:
  explicit ServiceClient(int fd) : fd_(fd) {}

  int fd_ = -1;
  FrameDecoder decoder_;
};

}  // namespace service
}  // namespace ccr

#endif  // CCR_SERVICE_CLIENT_H_
