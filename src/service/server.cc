#include "src/service/server.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace ccr {
namespace service {

namespace {

// write(2) until done; sockets may take partial writes under pressure.
bool WriteAll(int fd, const std::string& bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

bool SendErrorFrame(int fd, uint8_t req_type, ErrorCode code,
                    const std::string& message) {
  Frame reply;
  reply.type = static_cast<uint8_t>(req_type | kResponseBit);
  reply.status = code;
  reply.body = "{\"error\": \"" + message + "\"}";
  std::string bytes;
  if (!EncodeFrame(reply, &bytes)) return false;
  return WriteAll(fd, bytes);
}

}  // namespace

struct Server::Connection {
  int fd = -1;
  std::thread thread;
  std::atomic<bool> done{false};
};

Server::Server(SessionManager* manager, const ServerOptions& options)
    : manager_(manager), options_(options) {}

Server::~Server() { Shutdown(); }

Status Server::Start() {
  const std::string& spec = options_.listen;
  if (spec.rfind("unix:", 0) == 0) {
    unix_path_ = spec.substr(5);
    if (unix_path_.empty()) {
      return Status::InvalidArgument("unix listen spec wants a path");
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (unix_path_.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument("unix socket path too long: " +
                                     unix_path_);
    }
    std::memcpy(addr.sun_path, unix_path_.c_str(), unix_path_.size() + 1);
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return Status::Internal("socket() failed");
    ::unlink(unix_path_.c_str());  // stale socket from a previous run
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return Status::Internal("bind(" + unix_path_ +
                              ") failed: " + std::strerror(errno));
    }
  } else if (spec.rfind("tcp:", 0) == 0) {
    const int want_port = std::atoi(spec.c_str() + 4);
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return Status::Internal("socket() failed");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(want_port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return Status::Internal("bind(tcp:" + std::to_string(want_port) +
                              ") failed: " + std::strerror(errno));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    port_ = ntohs(bound.sin_port);
  } else {
    return Status::InvalidArgument(
        "listen spec wants unix:/path or tcp:PORT, got '" + spec + "'");
  }
  if (::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("listen() failed");
  }
  started_ = true;
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void Server::Wait() {
  std::unique_lock<std::mutex> lock(conn_mu_);
  while (!stopping_.load()) {
    // Bounded waits so a RequestShutdown() from a signal handler (atomic
    // store only — it cannot notify a condition variable) is seen promptly.
    stop_cv_.wait_for(lock, std::chrono::milliseconds(200));
  }
}

void Server::Shutdown() {
  if (!started_) return;
  stopping_.store(true);
  stop_cv_.notify_all();
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    // Force-wake blocked reads so connection threads exit promptly.
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (const auto& conn : connections_) {
      if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  std::vector<std::unique_ptr<Connection>> to_join;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    to_join.swap(connections_);
  }
  for (const auto& conn : to_join) {
    if (conn->thread.joinable()) conn->thread.join();
  }
  if (!unix_path_.empty()) {
    ::unlink(unix_path_.c_str());
    unix_path_.clear();
  }
  started_ = false;
}

void Server::JoinFinishedConnections() {
  std::lock_guard<std::mutex> lock(conn_mu_);
  for (size_t i = 0; i < connections_.size();) {
    if (connections_[i]->done.load()) {
      if (connections_[i]->thread.joinable()) connections_[i]->thread.join();
      connections_.erase(connections_.begin() +
                         static_cast<ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
}

void Server::AcceptLoop() {
  while (!stopping_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/200);
    if (stopping_.load()) return;
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    JoinFinishedConnections();
    int live;
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      live = static_cast<int>(connections_.size());
    }
    if (live >= options_.max_connections) {
      SendErrorFrame(fd, 0, ErrorCode::kOverloaded,
                     "connection cap reached");
      ::close(fd);
      continue;
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      connections_.push_back(std::move(conn));
    }
    raw->thread = std::thread([this, raw] { ServeConnection(raw); });
  }
}

void Server::ServeConnection(Connection* conn) {
  FrameDecoder decoder;
  char buf[64 * 1024];
  bool open = true;
  while (open && !stopping_.load()) {
    const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    decoder.Feed(std::string_view(buf, static_cast<size_t>(n)));
    Frame frame;
    while (open) {
      const FrameDecoder::Outcome got = decoder.Next(&frame);
      if (got == FrameDecoder::Outcome::kNeedMore) break;
      if (got == FrameDecoder::Outcome::kError) {
        // Framing is lost; resynchronizing would be guesswork. Report and
        // drop the connection — other connections are unaffected.
        const ErrorCode code =
            decoder.error().find("cap") != std::string::npos
                ? ErrorCode::kTooLarge
                : ErrorCode::kBadRequest;
        SendErrorFrame(conn->fd, 0, code, decoder.error());
        open = false;
        break;
      }
      if (frame.version != kWireVersion) {
        // Framing is intact — reject the request, keep the connection.
        if (!SendErrorFrame(conn->fd, frame.type, ErrorCode::kBadVersion,
                            "unsupported protocol version")) {
          open = false;
        }
        continue;
      }
      if (frame.request_type() == RequestType::kShutdown) {
        Frame reply;
        reply.type = static_cast<uint8_t>(frame.type | kResponseBit);
        reply.body = "{\"stopping\": true}";
        std::string bytes;
        EncodeFrame(reply, &bytes);
        WriteAll(conn->fd, bytes);
        // Wake Wait(); the daemon main performs the orderly Shutdown()
        // (this thread cannot join itself).
        stopping_.store(true);
        stop_cv_.notify_all();
        open = false;
        break;
      }
      ServiceRequest request;
      request.type = frame.request_type();
      request.session_id = frame.session_id;
      request.payload = std::move(frame.body);
      ServiceReply reply = manager_->Call(std::move(request));
      Frame out;
      out.type = static_cast<uint8_t>(frame.type | kResponseBit);
      out.status = reply.code;
      out.session_id = frame.session_id;
      out.body = std::move(reply.payload);
      std::string bytes;
      if (!EncodeFrame(out, &bytes)) {
        SendErrorFrame(conn->fd, frame.type, ErrorCode::kInternal,
                       "reply exceeds the frame size cap");
        open = false;
        break;
      }
      if (!WriteAll(conn->fd, bytes)) {
        open = false;
        break;
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    ::close(conn->fd);
    conn->fd = -1;
  }
  conn->done.store(true);
}

}  // namespace service
}  // namespace ccr
