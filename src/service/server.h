// Socket front end for the session manager: accepts Unix-domain or TCP
// connections and speaks the framed protocol of wire.h. One thread per
// connection, strictly sequential request → response per connection;
// concurrency across sessions comes from connections, and the manager's
// worker pool bounds how much engine work runs at once.
//
// Robustness contract (tested in service_test.cpp): a malformed or
// oversize frame gets a best-effort error frame and the connection is
// dropped — framing is lost, resynchronizing would be guesswork. An
// unknown request type or bad version is answered with an error frame and
// the connection survives (framing is intact). One bad client never
// wedges the accept loop or other connections.

#ifndef CCR_SERVICE_SERVER_H_
#define CCR_SERVICE_SERVER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/status.h"
#include "src/service/session_manager.h"

namespace ccr {
namespace service {

struct ServerOptions {
  /// "unix:/path/to.sock" or "tcp:PORT" (TCP binds 127.0.0.1; port 0 picks
  /// a free port, readable from port() after Start).
  std::string listen = "tcp:0";
  /// Connections over this cap are greeted with an OVERLOADED error frame
  /// and closed.
  int max_connections = 256;
};

/// \brief The daemon's accept loop. Owns the listening socket and the
/// per-connection threads; requests are executed synchronously through
/// SessionManager::Call (admission control and deadlines live there).
class Server {
 public:
  /// `manager` must outlive the server.
  Server(SessionManager* manager, const ServerOptions& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the accept thread.
  Status Start();

  /// Bound TCP port (after Start with a tcp: listen spec); -1 for unix.
  int port() const { return port_; }

  /// Blocks until a stop is requested (SHUTDOWN frame, RequestShutdown,
  /// or Shutdown from another thread).
  void Wait();

  /// Async-signal-safe stop request: a single atomic store, no locks, no
  /// joins. Wait() observes it within its poll interval; the caller then
  /// runs the real Shutdown() from a normal context.
  void RequestShutdown() { stopping_.store(true); }

  /// Stops accepting, closes the listening socket, joins connection
  /// threads. Idempotent.
  void Shutdown();

 private:
  struct Connection;

  void AcceptLoop();
  void ServeConnection(Connection* conn);
  void JoinFinishedConnections();

  SessionManager* const manager_;
  const ServerOptions options_;

  int listen_fd_ = -1;
  int port_ = -1;
  std::string unix_path_;

  std::atomic<bool> stopping_{false};
  bool started_ = false;
  std::thread acceptor_;

  std::mutex conn_mu_;
  std::condition_variable stop_cv_;
  std::vector<std::unique_ptr<Connection>> connections_;
};

}  // namespace service
}  // namespace ccr

#endif  // CCR_SERVICE_SERVER_H_
