#include "src/service/session_manager.h"

#include <chrono>
#include <utility>

#include "src/common/json.h"
#include "src/core/resolver.h"

namespace ccr {
namespace service {

namespace {

using Clock = std::chrono::steady_clock;

ServiceReply ErrorReply(ErrorCode code, const std::string& message) {
  json::Writer w(0);
  w.BeginObject();
  w.Key("error");
  w.Value(message);
  w.EndObject();
  return ServiceReply{code, std::move(w).Take()};
}

ServiceReply OkReply(std::string payload) {
  return ServiceReply{ErrorCode::kOk, std::move(payload)};
}

}  // namespace

/// One session's slot in the cache. `snapshot` (spec + op log) is always
/// current; `live`/`scratch` exist only while resident; `frozen` holds the
/// serialized snapshot while evicted and is the *authoritative* rehydration
/// source — eviction round-trips through bytes on purpose, so the
/// serialization path is exercised (and correctness-gated) by every evict,
/// not only by the tests.
struct SessionManager::SessionEntry {
  std::string id;
  std::mutex mu;
  SessionSnapshot snapshot;
  std::optional<ResolutionSession> live;
  SessionScratch* scratch = nullptr;
  std::string frozen;
  std::list<SessionEntry*>::iterator lru_it;
  bool in_lru = false;
  bool closed = false;
};

struct SessionManager::Queued {
  ServiceRequest request;
  std::function<void(ServiceReply)> done;
  Clock::time_point deadline = Clock::time_point::max();
};

SessionManager::SessionManager(const ServiceOptions& options)
    : options_(options) {
  const int workers = options_.workers > 0 ? options_.workers : 1;
  const int pool = options_.max_resident > 0 ? options_.max_resident : 1;
  scratch_pool_.reserve(static_cast<size_t>(pool));
  for (int i = 0; i < pool; ++i) {
    scratch_pool_.push_back(std::make_unique<SessionScratch>());
    free_scratches_.push_back(scratch_pool_.back().get());
  }
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

SessionManager::~SessionManager() { Shutdown(); }

void SessionManager::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      // Idempotent: a second caller must not double-join.
      if (workers_.empty()) return;
    }
    shutdown_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
}

bool SessionManager::Submit(ServiceRequest request,
                            std::function<void(ServiceReply)> done) {
  Queued q;
  const int64_t deadline_ms =
      request.deadline_ms > 0 ? request.deadline_ms
                              : options_.default_deadline_ms;
  if (deadline_ms > 0) {
    q.deadline = Clock::now() + std::chrono::milliseconds(deadline_ms);
  }
  q.request = std::move(request);
  q.done = std::move(done);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return false;
    if (static_cast<int>(queue_.size()) >= options_.queue_capacity) {
      ++rejected_overload_;
      return false;
    }
    queue_.push_back(std::move(q));
  }
  queue_cv_.notify_one();
  return true;
}

ServiceReply SessionManager::Call(ServiceRequest request) {
  // A tiny latch instead of std::promise: Call must work from any thread
  // and the worker invokes the callback exactly once.
  struct State {
    std::mutex mu;
    std::condition_variable cv;
    bool ready = false;
    ServiceReply reply;
  };
  auto state = std::make_shared<State>();
  const bool admitted = Submit(std::move(request), [state](ServiceReply r) {
    std::lock_guard<std::mutex> lock(state->mu);
    state->reply = std::move(r);
    state->ready = true;
    state->cv.notify_one();
  });
  if (!admitted) {
    bool down;
    {
      std::lock_guard<std::mutex> lock(mu_);
      down = shutdown_;
    }
    return down ? ErrorReply(ErrorCode::kShuttingDown, "daemon is draining")
                : ErrorReply(ErrorCode::kOverloaded,
                             "admission queue full; retry with backoff");
  }
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] { return state->ready; });
  return std::move(state->reply);
}

void SessionManager::WorkerLoop() {
  while (true) {
    Queued q;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [&] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      q = std::move(queue_.front());
      queue_.pop_front();
    }
    ServiceReply reply;
    if (Clock::now() > q.deadline) {
      // The deadline bounds time-in-queue: an expired request is answered
      // without touching the engine (mid-solve cancellation is out of
      // scope; see docs/OPERATIONS.md).
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++rejected_deadline_;
      }
      reply = ErrorReply(ErrorCode::kDeadlineExceeded,
                         "request expired while queued");
    } else {
      reply = Dispatch(q.request);
    }
    if (q.done) q.done(std::move(reply));
  }
}

ServiceReply SessionManager::Dispatch(const ServiceRequest& request) {
  switch (request.type) {
    case RequestType::kPing: {
      if (!request.payload.empty()) {
        json::Reader rd(request.payload, "ping request");
        int sleep_ms = 0;
        Status st = rd.ParseObject([&](const std::string& f) -> Status {
          if (f == "sleep_ms") return rd.ParseInt(&sleep_ms);
          return rd.Fail("unknown ping field '" + f + "'");
        });
        if (!st.ok()) return ErrorReply(ErrorCode::kBadRequest, st.message());
        if (sleep_ms > 0) {
          // Test hook: lets suites park the workers deterministically to
          // drive the queue into overload / deadline expiry.
          std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
        }
      }
      return OkReply("{\"pong\": true}");
    }
    case RequestType::kOpen:
      return HandleOpen(request);
    case RequestType::kRound:
    case RequestType::kAnswer:
    case RequestType::kExtend:
    case RequestType::kSnapshot:
    case RequestType::kEvict:
    case RequestType::kClose:
      return HandleSessionOp(request);
    case RequestType::kStats:
      return HandleStats();
    case RequestType::kShutdown:
      // Daemon lifecycle belongs to the server layer (it must stop
      // accepting connections); a manager seeing SHUTDOWN is a protocol
      // misuse.
      return ErrorReply(ErrorCode::kBadRequest,
                        "SHUTDOWN is handled by the server, not the manager");
  }
  return ErrorReply(ErrorCode::kBadRequest, "unknown request type");
}

ServiceReply SessionManager::HandleOpen(const ServiceRequest& request) {
  if (request.session_id.empty()) {
    return ErrorReply(ErrorCode::kBadRequest, "OPEN wants a session id");
  }
  auto parsed = SnapshotFromJson(request.payload);
  if (!parsed.ok()) {
    return ErrorReply(ErrorCode::kBadRequest, parsed.status().message());
  }
  auto entry = std::make_shared<SessionEntry>();
  entry->id = request.session_id;
  entry->snapshot = std::move(parsed).value();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      return ErrorReply(ErrorCode::kShuttingDown, "daemon is draining");
    }
    if (!sessions_.emplace(entry->id, entry).second) {
      return ErrorReply(ErrorCode::kAlreadyExists,
                        "session '" + entry->id + "' is already open");
    }
  }
  // Build the live session outside mu_ (replay can be expensive); the
  // per-entry mutex keeps concurrent requests for this id waiting.
  ServiceReply reply;
  {
    std::lock_guard<std::mutex> entry_lock(entry->mu);
    SessionScratch* scratch = AcquireScratch();
    auto opts = MakeResolveOptions(entry->snapshot.engine, scratch);
    Result<ResolutionSession> live =
        opts.ok() ? ReplaySnapshot(entry->snapshot, scratch)
                  : Result<ResolutionSession>(opts.status());
    if (!live.ok()) {
      ReleaseScratch(scratch);
      {
        std::lock_guard<std::mutex> lock(mu_);
        sessions_.erase(entry->id);
      }
      return ErrorReply(ErrorCode::kInternal, live.status().message());
    }
    entry->live.emplace(std::move(live).value());
    entry->scratch = scratch;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++resident_;
      ++opens_;
    }
    TouchLru(entry.get());
    json::Writer w(0);
    w.BeginObject();
    w.Key("opened");
    w.Value(true);
    w.Key("replayed_ops");
    w.Value(static_cast<int>(entry->snapshot.ops.size()));
    w.EndObject();
    reply = OkReply(std::move(w).Take());
  }
  EnforceResidentCap(entry.get());
  return reply;
}

ServiceReply SessionManager::HandleSessionOp(const ServiceRequest& request) {
  std::shared_ptr<SessionEntry> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(request.session_id);
    if (it != sessions_.end()) entry = it->second;
  }
  if (!entry) {
    return ErrorReply(ErrorCode::kNotFound,
                      "no session '" + request.session_id + "'");
  }
  ServiceReply reply;
  bool became_resident = false;
  {
    std::lock_guard<std::mutex> entry_lock(entry->mu);
    if (entry->closed) {
      return ErrorReply(ErrorCode::kNotFound,
                        "no session '" + request.session_id + "'");
    }
    switch (request.type) {
      case RequestType::kRound: {
        const bool was_live = entry->live.has_value();
        Status st = EnsureLive(entry.get());
        if (!st.ok()) return ErrorReply(ErrorCode::kInternal, st.message());
        became_resident = !was_live;
        const RoundOutcome out = RunSessionRound(&entry->live.value());
        entry->snapshot.ops.push_back(SessionOp{SessionOp::Kind::kRound, {}});
        TouchLru(entry.get());
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++rounds_;
        }
        reply = OkReply(RoundOutcomeToJson(out));
        break;
      }
      case RequestType::kAnswer:
      case RequestType::kExtend: {
        PartialTemporalOrder delta;
        if (request.type == RequestType::kAnswer) {
          json::Reader rd(request.payload, "answer request");
          std::vector<UserOracle::Answer> answers;
          Status st = rd.ParseObject([&](const std::string& f) -> Status {
            if (f != "answers") {
              return rd.Fail("unknown answer field '" + f + "'");
            }
            return rd.ParseArray([&]() -> Status {
              int slot = 0;
              UserOracle::Answer ans{-1, Value::Null()};
              CCR_RETURN_NOT_OK(rd.ParseArray([&]() -> Status {
                if (slot == 0) {
                  ++slot;
                  return rd.ParseInt(&ans.attr);
                }
                if (slot == 1) {
                  ++slot;
                  return ParseValue(&rd, &ans.value);
                }
                return rd.Fail("answer wants [attr, value]");
              }));
              if (slot != 2) return rd.Fail("answer wants [attr, value]");
              answers.push_back(std::move(ans));
              return Status::OK();
            });
          });
          if (!st.ok() || answers.empty()) {
            return ErrorReply(ErrorCode::kBadRequest,
                              st.ok() ? "ANSWER wants at least one answer"
                                      : st.message());
          }
          // The delta is built against the session's *current* spec, so
          // the session must be live first.
          const bool was_live = entry->live.has_value();
          Status live_st = EnsureLive(entry.get());
          if (!live_st.ok()) {
            return ErrorReply(ErrorCode::kInternal, live_st.message());
          }
          became_resident = !was_live;
          auto made = MakeAnswerDelta(entry->live->spec(), answers);
          if (!made.ok()) {
            return ErrorReply(ErrorCode::kBadRequest, made.status().message());
          }
          delta = std::move(made).value();
        } else {
          json::Reader rd(request.payload, "extend request");
          Status st = ParseDelta(&rd, &delta);
          if (st.ok() && !rd.AtEnd()) st = rd.Fail("trailing content");
          if (!st.ok()) return ErrorReply(ErrorCode::kBadRequest, st.message());
          const bool was_live = entry->live.has_value();
          Status live_st = EnsureLive(entry.get());
          if (!live_st.ok()) {
            return ErrorReply(ErrorCode::kInternal, live_st.message());
          }
          became_resident = !was_live;
        }
        Status st = entry->live->ExtendWith(delta);
        if (!st.ok()) {
          // The extension may be structurally invalid (out-of-range tuple
          // index); the session stays at its pre-extend state.
          return ErrorReply(ErrorCode::kBadRequest, st.message());
        }
        entry->snapshot.ops.push_back(
            SessionOp{SessionOp::Kind::kExtend, std::move(delta)});
        TouchLru(entry.get());
        {
          std::lock_guard<std::mutex> lock(mu_);
          if (request.type == RequestType::kAnswer) {
            ++answers_;
          } else {
            ++extends_;
          }
        }
        json::Writer w(0);
        w.BeginObject();
        w.Key("extended");
        w.Value(true);
        w.Key("ops");
        w.Value(static_cast<int>(entry->snapshot.ops.size()));
        w.EndObject();
        reply = OkReply(std::move(w).Take());
        break;
      }
      case RequestType::kSnapshot:
        // Works on live and evicted sessions alike — the op log is always
        // current.
        reply = OkReply(SnapshotToJson(entry->snapshot, /*indent=*/0));
        break;
      case RequestType::kEvict: {
        const bool was_live = entry->live.has_value();
        if (was_live) {
          EvictLocked(entry.get());
          std::lock_guard<std::mutex> lock(mu_);
          ++evictions_explicit_;
        }
        json::Writer w(0);
        w.BeginObject();
        w.Key("evicted");
        w.Value(true);
        w.Key("was_live");
        w.Value(was_live);
        w.EndObject();
        reply = OkReply(std::move(w).Take());
        break;
      }
      case RequestType::kClose: {
        if (entry->live.has_value()) {
          entry->live.reset();
          SessionScratch* scratch = entry->scratch;
          entry->scratch = nullptr;
          std::lock_guard<std::mutex> lock(mu_);
          --resident_;
          if (entry->in_lru) {
            lru_.erase(entry->lru_it);
            entry->in_lru = false;
          }
          if (scratch != nullptr) free_scratches_.push_back(scratch);
        }
        entry->closed = true;
        {
          std::lock_guard<std::mutex> lock(mu_);
          sessions_.erase(entry->id);
          ++closed_;
        }
        reply = OkReply("{\"closed\": true}");
        break;
      }
      default:
        return ErrorReply(ErrorCode::kBadRequest, "unknown session op");
    }
  }
  if (became_resident) EnforceResidentCap(entry.get());
  return reply;
}

ServiceReply SessionManager::HandleStats() {
  json::Writer w(0);
  std::lock_guard<std::mutex> lock(mu_);
  w.BeginObject();
  w.Key("resident");
  w.Value(resident_);
  w.Key("known");
  w.Value(static_cast<int>(sessions_.size()));
  w.Key("queue_depth");
  w.Value(static_cast<int>(queue_.size()));
  w.Key("opens");
  w.Value(opens_);
  w.Key("rounds");
  w.Value(rounds_);
  w.Key("answers");
  w.Value(answers_);
  w.Key("extends");
  w.Value(extends_);
  w.Key("evictions_lru");
  w.Value(evictions_lru_);
  w.Key("evictions_explicit");
  w.Value(evictions_explicit_);
  w.Key("rehydrations");
  w.Value(rehydrations_);
  w.Key("rejected_overload");
  w.Value(rejected_overload_);
  w.Key("rejected_deadline");
  w.Value(rejected_deadline_);
  w.Key("closed");
  w.Value(closed_);
  w.EndObject();
  return OkReply(std::move(w).Take());
}

Status SessionManager::EnsureLive(SessionEntry* entry) {
  if (entry->live.has_value()) return Status::OK();
  // Rehydrate from the *frozen bytes*, not the in-memory snapshot: every
  // rehydration exercises the full serialize → parse → replay path.
  CCR_ASSIGN_OR_RETURN(const SessionSnapshot thawed,
                       SnapshotFromJson(entry->frozen));
  SessionScratch* scratch = AcquireScratch();
  Result<ResolutionSession> live = ReplaySnapshot(thawed, scratch);
  if (!live.ok()) {
    ReleaseScratch(scratch);
    return live.status();
  }
  entry->live.emplace(std::move(live).value());
  entry->scratch = scratch;
  entry->frozen.clear();
  entry->frozen.shrink_to_fit();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++resident_;
    ++rehydrations_;
  }
  TouchLru(entry);
  return Status::OK();
}

void SessionManager::EvictLocked(SessionEntry* entry) {
  entry->frozen = SnapshotToJson(entry->snapshot, /*indent=*/0);
  entry->live.reset();
  SessionScratch* scratch = entry->scratch;
  entry->scratch = nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  --resident_;
  if (entry->in_lru) {
    lru_.erase(entry->lru_it);
    entry->in_lru = false;
  }
  if (scratch != nullptr) free_scratches_.push_back(scratch);
}

void SessionManager::EnforceResidentCap(SessionEntry* keep) {
  while (true) {
    std::shared_ptr<SessionEntry> victim;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (resident_ <= options_.max_resident) return;
      for (SessionEntry* candidate : lru_) {
        if (candidate == keep) continue;
        auto it = sessions_.find(candidate->id);
        if (it != sessions_.end()) victim = it->second;
        break;
      }
      if (!victim) return;  // only `keep` is resident; transient overshoot
    }
    // Locking order is entry->mu then mu_; the victim's mutex cannot be
    // taken under mu_, so a concurrent request may win the race and touch
    // the victim first — then it is simply evicted slightly later.
    std::lock_guard<std::mutex> victim_lock(victim->mu);
    if (victim->closed || !victim->live.has_value()) continue;
    EvictLocked(victim.get());
    std::lock_guard<std::mutex> lock(mu_);
    ++evictions_lru_;
  }
}

void SessionManager::TouchLru(SessionEntry* entry) {
  std::lock_guard<std::mutex> lock(mu_);
  if (entry->in_lru) lru_.erase(entry->lru_it);
  lru_.push_back(entry);
  entry->lru_it = std::prev(lru_.end());
  entry->in_lru = true;
}

SessionScratch* SessionManager::AcquireScratch() {
  std::lock_guard<std::mutex> lock(mu_);
  if (free_scratches_.empty()) {
    // Transient overshoot past max_resident (a burst of opens before the
    // cap is enforced): run scratch-less; results are identical either
    // way, only allocation warmth differs.
    return nullptr;
  }
  SessionScratch* scratch = free_scratches_.back();
  free_scratches_.pop_back();
  return scratch;
}

void SessionManager::ReleaseScratch(SessionScratch* scratch) {
  if (scratch == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  free_scratches_.push_back(scratch);
}

int SessionManager::resident_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resident_;
}

int SessionManager::known_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(sessions_.size());
}

}  // namespace service
}  // namespace ccr
