// The heart of ccr_serve: a bounded pool of warm ResolutionSessions with
// LRU eviction to snapshots, a worker pool draining a bounded admission
// queue, per-request deadlines, and counters.
//
// Capacity model: at most `max_resident` sessions hold live solver state;
// the rest exist only as snapshot JSON (spec + op log — see snapshot.h)
// and are rehydrated by replay on their next request. Each resident
// session owns a SessionScratch leased from a free-list pool of exactly
// `max_resident` scratches, so evict/open churn reuses warm solver arenas
// instead of allocating cold ones (the same pooling RunExperiment does per
// worker thread).
//
// Admission control: Submit() enqueues onto a bounded queue and returns
// false when it is full — the caller maps that to an OVERLOADED reply
// immediately, on the caller's thread, so a flood of requests degrades
// into fast rejections instead of unbounded memory growth. Deadlines are
// checked when a worker dequeues the request: a request that waited out
// its deadline in the queue is answered DEADLINE_EXCEEDED without touching
// the engine (time spent queueing is the thing a deadline bounds here;
// mid-solve cancellation is out of scope and documented as such).

#ifndef CCR_SERVICE_SESSION_MANAGER_H_
#define CCR_SERVICE_SESSION_MANAGER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/core/session.h"
#include "src/service/session_runtime.h"
#include "src/service/snapshot.h"
#include "src/service/wire.h"

namespace ccr {
namespace service {

/// Manager knobs; the daemon exposes these as flags (docs/OPERATIONS.md).
struct ServiceOptions {
  /// Live-session cap; colder sessions exist only as snapshots.
  int max_resident = 64;
  /// Worker threads draining the request queue.
  int workers = 2;
  /// Bounded admission queue; a full queue rejects (backpressure).
  int queue_capacity = 256;
  /// Default per-request deadline; 0 = no deadline. Requests may override.
  int64_t default_deadline_ms = 0;
};

/// \brief One queued request. `session_id` addresses the session;
/// `payload` is the request-type-specific JSON body (see docs/PROTOCOL.md).
struct ServiceRequest {
  RequestType type = RequestType::kPing;
  std::string session_id;
  std::string payload;
  /// Overrides ServiceOptions::default_deadline_ms when > 0.
  int64_t deadline_ms = 0;
};

/// \brief Outcome of a request: a wire status plus the JSON reply body
/// (an {"error": ...} document when code != kOk).
struct ServiceReply {
  ErrorCode code = ErrorCode::kOk;
  std::string payload;
};

/// \brief Warm-session cache + worker pool. Thread-safe; one instance per
/// daemon. Destruction drains and joins the workers.
class SessionManager {
 public:
  explicit SessionManager(const ServiceOptions& options);
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Asynchronous entry point: enqueues the request and invokes `done`
  /// (on a worker thread) with the reply. Returns false without invoking
  /// `done` when the admission queue is full or the manager is shutting
  /// down — the caller synthesizes the OVERLOADED / SHUTTING_DOWN reply.
  bool Submit(ServiceRequest request, std::function<void(ServiceReply)> done);

  /// Synchronous wrapper over Submit; returns the OVERLOADED reply
  /// directly when admission fails.
  ServiceReply Call(ServiceRequest request);

  /// Stops accepting work, drains the queue, joins the workers. Idempotent.
  void Shutdown();

  /// Sessions currently holding live solver state.
  int resident_sessions() const;
  /// Total sessions the manager knows (resident + evicted-to-snapshot).
  int known_sessions() const;

 private:
  struct SessionEntry;
  struct Queued;

  void WorkerLoop();
  ServiceReply Dispatch(const ServiceRequest& request);
  ServiceReply HandleOpen(const ServiceRequest& request);
  ServiceReply HandleSessionOp(const ServiceRequest& request);
  ServiceReply HandleStats();

  /// Rehydrates `entry` if evicted (replaying its op log); no-op when the
  /// session is already live. Caller holds entry->mu.
  Status EnsureLive(SessionEntry* entry);
  /// Serializes `entry` and frees its live state. Caller holds entry->mu.
  void EvictLocked(SessionEntry* entry);
  /// Evicts least-recently-used live sessions until the resident count is
  /// within max_resident. Never evicts `keep`.
  void EnforceResidentCap(SessionEntry* keep);
  void TouchLru(SessionEntry* entry);

  SessionScratch* AcquireScratch();
  void ReleaseScratch(SessionScratch* scratch);

  const ServiceOptions options_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;
  std::deque<Queued> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;

  std::unordered_map<std::string, std::shared_ptr<SessionEntry>> sessions_;
  /// LRU order over *live* sessions only; most recent at the back.
  std::list<SessionEntry*> lru_;
  int resident_ = 0;

  std::vector<std::unique_ptr<SessionScratch>> scratch_pool_;
  std::vector<SessionScratch*> free_scratches_;

  // Counters (exposed by STATS; see docs/OPERATIONS.md).
  int64_t opens_ = 0;
  int64_t rounds_ = 0;
  int64_t answers_ = 0;
  int64_t extends_ = 0;
  int64_t evictions_lru_ = 0;
  int64_t evictions_explicit_ = 0;
  int64_t rehydrations_ = 0;
  int64_t rejected_overload_ = 0;
  int64_t rejected_deadline_ = 0;
  int64_t closed_ = 0;
};

}  // namespace service
}  // namespace ccr

#endif  // CCR_SERVICE_SESSION_MANAGER_H_
