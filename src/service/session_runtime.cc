#include "src/service/session_runtime.h"

#include <utility>

#include "src/common/json.h"
#include "src/core/deduce.h"

namespace ccr {
namespace service {

Result<sat::SolverOptions> SolverOptionsForPreset(const std::string& preset) {
  sat::SolverOptions options;
  if (preset == "modern" || preset == "sls") return options;
  if (preset == "legacy") return sat::SolverOptions::LegacyHeuristics();
  if (preset == "nogc") {
    options.use_arena_gc = false;
    options.use_bve = false;
    return options;
  }
  if (preset == "nosls") {
    options.use_sls_seeding = false;
    options.use_sls_probing = false;
    return options;
  }
  return Status::InvalidArgument("unknown solver preset '" + preset + "'");
}

Result<ResolveOptions> MakeResolveOptions(const EngineConfig& engine,
                                          SessionScratch* scratch) {
  ResolveOptions options;
  CCR_ASSIGN_OR_RETURN(options.solver,
                       SolverOptionsForPreset(engine.solver_preset));
  options.naive_deduce = engine.naive_deduce;
  options.scratch = scratch;
  return options;
}

RoundOutcome RunSessionRound(ResolutionSession* session) {
  RoundOutcome outcome;
  const ValidityResult validity = session->CheckValidity();
  outcome.valid = validity.valid;
  if (!validity.valid) return outcome;

  const VarMap& vm = session->instantiation().varmap;
  const DeducedOrders od = session->Deduce();
  const std::vector<int> true_idx = ExtractTrueValueIndices(vm, od);
  int resolved_count = 0;
  for (int a = 0; a < vm.num_attrs(); ++a) {
    if (true_idx[a] >= 0) {
      outcome.resolved.emplace_back(a, vm.domain(a)[true_idx[a]]);
      ++resolved_count;
    }
  }
  outcome.complete = resolved_count >= CountResolvableAttrs(vm);
  if (outcome.complete) return outcome;

  // Suggestion runs only when the round is incomplete — same as the
  // framework loop, and load-bearing for replay: MakeSuggestion allocates
  // solver-scope variables, so whether it ran is part of the state.
  const std::vector<std::vector<int>> candidates = CandidateValues(vm, od);
  const Suggestion suggestion = session->MakeSuggestion(candidates, true_idx);
  outcome.has_suggestion = true;
  outcome.suggested_attrs = suggestion.attrs;
  outcome.derivable_attrs = suggestion.derivable_attrs;
  outcome.suggested_values.reserve(suggestion.attrs.size());
  for (size_t i = 0; i < suggestion.attrs.size(); ++i) {
    std::vector<Value> values;
    values.reserve(suggestion.candidates[i].size());
    for (const int idx : suggestion.candidates[i]) {
      values.push_back(vm.domain(suggestion.attrs[i])[idx]);
    }
    outcome.suggested_values.push_back(std::move(values));
  }
  return outcome;
}

std::string RoundOutcomeToJson(const RoundOutcome& outcome) {
  json::Writer w(0);
  w.BeginObject();
  w.Key("valid");
  w.Value(outcome.valid);
  w.Key("complete");
  w.Value(outcome.complete);
  w.Key("resolved");
  w.BeginArray();
  for (size_t i = 0; i < outcome.resolved.size(); ++i) {
    w.ArraySep(i == 0);
    w.BeginArray();
    w.Value(outcome.resolved[i].first);
    w.ArraySep(false);
    WriteValue(outcome.resolved[i].second, &w);
    w.EndArray();
  }
  w.EndArray();
  w.Key("suggest");
  if (!outcome.has_suggestion) {
    w.NullValue();
  } else {
    w.BeginObject();
    w.Key("attrs");
    w.BeginArray();
    for (size_t i = 0; i < outcome.suggested_attrs.size(); ++i) {
      w.ArraySep(i == 0);
      w.Value(outcome.suggested_attrs[i]);
    }
    w.EndArray();
    w.Key("candidates");
    w.BeginArray();
    for (size_t i = 0; i < outcome.suggested_values.size(); ++i) {
      w.ArraySep(i == 0);
      w.BeginArray();
      for (size_t k = 0; k < outcome.suggested_values[i].size(); ++k) {
        w.ArraySep(k == 0);
        WriteValue(outcome.suggested_values[i][k], &w);
      }
      w.EndArray();
    }
    w.EndArray();
    w.Key("derivable");
    w.BeginArray();
    for (size_t i = 0; i < outcome.derivable_attrs.size(); ++i) {
      w.ArraySep(i == 0);
      w.Value(outcome.derivable_attrs[i]);
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();
  return std::move(w).Take();
}

Result<ResolutionSession> ReplaySnapshot(const SessionSnapshot& snapshot,
                                         SessionScratch* scratch) {
  CCR_ASSIGN_OR_RETURN(const ResolveOptions options,
                       MakeResolveOptions(snapshot.engine, scratch));
  CCR_ASSIGN_OR_RETURN(ResolutionSession session,
                       ResolutionSession::Create(snapshot.spec, options));
  for (const SessionOp& op : snapshot.ops) {
    if (op.kind == SessionOp::Kind::kRound) {
      // Replies are discarded; the calls themselves recreate the solver's
      // variable allocation and learnt state.
      (void)RunSessionRound(&session);
    } else {
      CCR_RETURN_NOT_OK(session.ExtendWith(op.delta));
    }
  }
  return session;
}

}  // namespace service
}  // namespace ccr
