// The bridge between the wire protocol and the core engine: one place that
// knows how to (a) turn an EngineConfig into ResolveOptions, (b) run one
// framework round against a live ResolutionSession and render its verdict
// as canonical JSON, and (c) rebuild a live session from a snapshot by
// replaying the op log. The session manager and the round-trip equivalence
// tests both go through these functions, so "evicted and rehydrated" and
// "never evicted" sessions execute literally the same code path — the
// byte-identity gates compare outputs of one implementation, not two.

#ifndef CCR_SERVICE_SESSION_RUNTIME_H_
#define CCR_SERVICE_SESSION_RUNTIME_H_

#include <string>
#include <utility>
#include <vector>

#include "src/core/session.h"
#include "src/service/snapshot.h"

namespace ccr {
namespace service {

/// \brief Verdict of one framework round (validity → deduce → suggest),
/// the reply body of a ROUND request.
struct RoundOutcome {
  bool valid = false;
  bool complete = false;
  /// Deduced true values, (attr, value) in attribute order.
  std::vector<std::pair<int, Value>> resolved;
  /// Suggestion, present when the round was valid but incomplete.
  bool has_suggestion = false;
  std::vector<int> suggested_attrs;
  /// Candidate true values per suggested attribute, positionally aligned.
  std::vector<std::vector<Value>> suggested_values;
  std::vector<int> derivable_attrs;
};

/// Maps ccr_experiment's --solver vocabulary (modern | legacy | nogc |
/// sls | nosls) to SolverOptions; rejects unknown names.
Result<sat::SolverOptions> SolverOptionsForPreset(const std::string& preset);

/// ResolveOptions for a service session: preset solver, optional naive
/// deduction, borrowed per-worker scratch (may be null).
Result<ResolveOptions> MakeResolveOptions(const EngineConfig& engine,
                                          SessionScratch* scratch);

/// Runs one round of the Fig. 4 pipeline against `session`, mirroring
/// Resolve()'s per-round sequence exactly (validity; deduce + true-value
/// extraction; completeness test; suggestion only when valid and
/// incomplete). The solver call sequence is part of the replay contract:
/// rehydration re-runs this function for every logged ROUND.
RoundOutcome RunSessionRound(ResolutionSession* session);

/// Canonical single-line JSON for a round verdict — the bytes the
/// equivalence gates compare across evicted/never-evicted sessions.
std::string RoundOutcomeToJson(const RoundOutcome& outcome);

/// Builds a live session from a snapshot: Create(spec), then replay the op
/// log in order (ROUND entries re-run RunSessionRound with the reply
/// discarded; EXTEND entries apply their delta).
Result<ResolutionSession> ReplaySnapshot(const SessionSnapshot& snapshot,
                                         SessionScratch* scratch);

}  // namespace service
}  // namespace ccr

#endif  // CCR_SERVICE_SESSION_RUNTIME_H_
