#include "src/service/snapshot.h"

#include <set>
#include <utility>

#include "src/constraints/predicate.h"

namespace ccr {
namespace service {

namespace {

constexpr char kSchemaName[] = "ccr.session_snapshot";

Result<CmpOp> CmpOpFromName(const std::string& name, json::Reader* rd) {
  if (name == "=") return CmpOp::kEq;
  if (name == "!=") return CmpOp::kNe;
  if (name == "<") return CmpOp::kLt;
  if (name == "<=") return CmpOp::kLe;
  if (name == ">") return CmpOp::kGt;
  if (name == ">=") return CmpOp::kGe;
  return rd->Fail("unknown comparison operator '" + name + "'");
}

bool KnownPreset(const std::string& preset) {
  return preset == "modern" || preset == "legacy" || preset == "nogc" ||
         preset == "sls" || preset == "nosls";
}

// --- writer ----------------------------------------------------------------

void WriteTuple(const Tuple& t, json::Writer* w) {
  w->BeginArray();
  for (int a = 0; a < t.size(); ++a) {
    w->ArraySep(a == 0);
    WriteValue(t.at(a), w);
  }
  w->EndArray();
}

void WriteOrderTriple(int attr, int less, int more, bool first,
                      json::Writer* w) {
  w->ArraySep(first);
  w->BeginArray();
  w->Value(attr);
  w->ArraySep(false);
  w->Value(less);
  w->ArraySep(false);
  w->Value(more);
  w->EndArray();
}

void WriteSpec(const Specification& spec, json::Writer* w) {
  const Schema& schema = spec.schema();
  w->BeginObject();
  w->Key("entity_id");
  w->Value(spec.instance().entity_id());
  w->Key("attributes");
  w->BeginArray();
  for (int a = 0; a < schema.size(); ++a) {
    w->ArraySep(a == 0);
    w->Value(schema.name(a));
  }
  w->EndArray();
  w->Key("tuples");
  w->BeginArray();
  for (int i = 0; i < spec.instance().size(); ++i) {
    w->ArraySep(i == 0);
    WriteTuple(spec.instance().tuple(i), w);
  }
  w->EndArray();
  w->Key("orders");
  w->BeginArray();
  bool first = true;
  for (int a = 0; a < schema.size(); ++a) {
    for (const auto& [less, more] : spec.temporal.orders(a)) {
      WriteOrderTriple(a, less, more, first, w);
      first = false;
    }
  }
  w->EndArray();
  w->Key("sigma");
  w->BeginArray();
  for (size_t i = 0; i < spec.sigma.size(); ++i) {
    const CurrencyConstraint& cc = spec.sigma[i];
    w->ArraySep(i == 0);
    w->BeginObject();
    w->Key("head");
    w->Value(cc.head_attr());
    w->Key("prec");
    w->BeginArray();
    bool f = true;
    for (const OrderPredicate& p : cc.order_predicates()) {
      w->ArraySep(f);
      f = false;
      w->Value(p.attr);
    }
    w->EndArray();
    w->Key("cmp");
    w->BeginArray();
    f = true;
    for (const AttrComparePredicate& p : cc.compare_predicates()) {
      w->ArraySep(f);
      f = false;
      w->BeginArray();
      w->Value(p.attr);
      w->ArraySep(false);
      w->Value(CmpOpToString(p.op));
      w->EndArray();
    }
    w->EndArray();
    w->Key("const");
    w->BeginArray();
    f = true;
    for (const ConstComparePredicate& p : cc.constant_predicates()) {
      w->ArraySep(f);
      f = false;
      w->BeginArray();
      w->Value(p.tuple_ref);
      w->ArraySep(false);
      w->Value(p.attr);
      w->ArraySep(false);
      w->Value(CmpOpToString(p.op));
      w->ArraySep(false);
      WriteValue(p.constant, w);
      w->EndArray();
    }
    w->EndArray();
    w->EndObject();
  }
  w->EndArray();
  w->Key("gamma");
  w->BeginArray();
  for (size_t i = 0; i < spec.gamma.size(); ++i) {
    const ConstantCfd& cfd = spec.gamma[i];
    w->ArraySep(i == 0);
    w->BeginObject();
    w->Key("lhs");
    w->BeginArray();
    bool f = true;
    for (const auto& [attr, value] : cfd.lhs()) {
      w->ArraySep(f);
      f = false;
      w->BeginArray();
      w->Value(attr);
      w->ArraySep(false);
      WriteValue(value, w);
      w->EndArray();
    }
    w->EndArray();
    w->Key("rhs");
    w->BeginArray();
    w->Value(cfd.rhs_attr());
    w->ArraySep(false);
    WriteValue(cfd.rhs_value(), w);
    w->EndArray();
    w->EndObject();
  }
  w->EndArray();
  w->EndObject();
}

void WriteDelta(const PartialTemporalOrder& delta, json::Writer* w) {
  w->BeginObject();
  w->Key("tuples");
  w->BeginArray();
  for (size_t i = 0; i < delta.new_tuples.size(); ++i) {
    w->ArraySep(i == 0);
    WriteTuple(delta.new_tuples[i], w);
  }
  w->EndArray();
  w->Key("orders");
  w->BeginArray();
  bool first = true;
  for (const auto& [attr, less, more] : delta.orders) {
    WriteOrderTriple(attr, less, more, first, w);
    first = false;
  }
  w->EndArray();
  w->EndObject();
}

// --- parser ----------------------------------------------------------------

// Spec fields are buffered raw and assembled after the parse so any field
// order loads (the reader is order-agnostic by contract, even though the
// writer always emits the canonical order).
struct RawSpec {
  std::string entity_id;
  std::vector<std::string> attributes;
  std::vector<std::vector<Value>> tuples;
  std::vector<std::tuple<int, int, int>> orders;
  std::vector<CurrencyConstraint> sigma;
  std::vector<ConstantCfd> gamma;
};

Status ParseTupleValues(json::Reader* rd, std::vector<Value>* out) {
  out->clear();
  return rd->ParseArray([&]() -> Status {
    Value v;
    CCR_RETURN_NOT_OK(ParseValue(rd, &v));
    out->push_back(std::move(v));
    return Status::OK();
  });
}

Status ParseOrderTriple(json::Reader* rd,
                        std::vector<std::tuple<int, int, int>>* out) {
  int slot = 0;
  int attr = 0, less = 0, more = 0;
  CCR_RETURN_NOT_OK(rd->ParseArray([&]() -> Status {
    int* dst = slot == 0 ? &attr : slot == 1 ? &less : slot == 2 ? &more
                                                                 : nullptr;
    if (dst == nullptr) return rd->Fail("order entry wants 3 ints");
    ++slot;
    return rd->ParseInt(dst);
  }));
  if (slot != 3) return rd->Fail("order entry wants 3 ints");
  out->emplace_back(attr, less, more);
  return Status::OK();
}

Status ParseSigmaEntry(json::Reader* rd, std::vector<CurrencyConstraint>* out) {
  CurrencyConstraint cc;
  std::set<std::string> seen;
  CCR_RETURN_NOT_OK(rd->ParseObject([&](const std::string& f) -> Status {
    if (!seen.insert(f).second) {
      return rd->Fail("duplicate sigma field '" + f + "'");
    }
    if (f == "head") {
      int head = -1;
      CCR_RETURN_NOT_OK(rd->ParseInt(&head));
      cc.set_head_attr(head);
      return Status::OK();
    }
    if (f == "prec") {
      return rd->ParseArray([&]() -> Status {
        int attr = -1;
        CCR_RETURN_NOT_OK(rd->ParseInt(&attr));
        cc.AddOrder(attr);
        return Status::OK();
      });
    }
    if (f == "cmp") {
      return rd->ParseArray([&]() -> Status {
        int slot = 0, attr = -1;
        std::string op;
        CCR_RETURN_NOT_OK(rd->ParseArray([&]() -> Status {
          if (slot == 0) {
            ++slot;
            return rd->ParseInt(&attr);
          }
          if (slot == 1) {
            ++slot;
            return rd->ParseString(&op);
          }
          return rd->Fail("cmp entry wants [attr, op]");
        }));
        if (slot != 2) return rd->Fail("cmp entry wants [attr, op]");
        CCR_ASSIGN_OR_RETURN(const CmpOp parsed, CmpOpFromName(op, rd));
        cc.AddAttrCompare(attr, parsed);
        return Status::OK();
      });
    }
    if (f == "const") {
      return rd->ParseArray([&]() -> Status {
        int slot = 0, ref = 0, attr = -1;
        std::string op;
        Value constant;
        CCR_RETURN_NOT_OK(rd->ParseArray([&]() -> Status {
          switch (slot++) {
            case 0:
              return rd->ParseInt(&ref);
            case 1:
              return rd->ParseInt(&attr);
            case 2:
              return rd->ParseString(&op);
            case 3:
              return ParseValue(rd, &constant);
            default:
              return rd->Fail("const entry wants [ref, attr, op, value]");
          }
        }));
        if (slot != 4) {
          return rd->Fail("const entry wants [ref, attr, op, value]");
        }
        if (ref != 1 && ref != 2) {
          return rd->Fail("const tuple_ref must be 1 or 2");
        }
        CCR_ASSIGN_OR_RETURN(const CmpOp parsed, CmpOpFromName(op, rd));
        cc.AddConstCompare(ref, attr, parsed, std::move(constant));
        return Status::OK();
      });
    }
    return rd->Fail("unknown sigma field '" + f + "'");
  }));
  if (seen.count("head") == 0) return rd->Fail("sigma entry missing 'head'");
  out->push_back(std::move(cc));
  return Status::OK();
}

Status ParseAttrValuePair(json::Reader* rd, std::pair<int, Value>* out) {
  int slot = 0;
  CCR_RETURN_NOT_OK(rd->ParseArray([&]() -> Status {
    if (slot == 0) {
      ++slot;
      return rd->ParseInt(&out->first);
    }
    if (slot == 1) {
      ++slot;
      return ParseValue(rd, &out->second);
    }
    return rd->Fail("expected [attr, value]");
  }));
  if (slot != 2) return rd->Fail("expected [attr, value]");
  return Status::OK();
}

Status ParseGammaEntry(json::Reader* rd, std::vector<ConstantCfd>* out) {
  std::vector<std::pair<int, Value>> lhs;
  std::pair<int, Value> rhs{-1, Value::Null()};
  std::set<std::string> seen;
  CCR_RETURN_NOT_OK(rd->ParseObject([&](const std::string& f) -> Status {
    if (!seen.insert(f).second) {
      return rd->Fail("duplicate gamma field '" + f + "'");
    }
    if (f == "lhs") {
      return rd->ParseArray([&]() -> Status {
        std::pair<int, Value> p{-1, Value::Null()};
        CCR_RETURN_NOT_OK(ParseAttrValuePair(rd, &p));
        lhs.push_back(std::move(p));
        return Status::OK();
      });
    }
    if (f == "rhs") return ParseAttrValuePair(rd, &rhs);
    return rd->Fail("unknown gamma field '" + f + "'");
  }));
  if (seen.count("rhs") == 0) return rd->Fail("gamma entry missing 'rhs'");
  out->emplace_back(std::move(lhs), rhs.first, std::move(rhs.second));
  return Status::OK();
}

Status ParseSpecObject(json::Reader* rd, RawSpec* raw) {
  std::set<std::string> seen;
  CCR_RETURN_NOT_OK(rd->ParseObject([&](const std::string& f) -> Status {
    if (!seen.insert(f).second) {
      return rd->Fail("duplicate spec field '" + f + "'");
    }
    if (f == "entity_id") return rd->ParseString(&raw->entity_id);
    if (f == "attributes") {
      return rd->ParseArray([&]() -> Status {
        std::string name;
        CCR_RETURN_NOT_OK(rd->ParseString(&name));
        raw->attributes.push_back(std::move(name));
        return Status::OK();
      });
    }
    if (f == "tuples") {
      return rd->ParseArray([&]() -> Status {
        std::vector<Value> values;
        CCR_RETURN_NOT_OK(ParseTupleValues(rd, &values));
        raw->tuples.push_back(std::move(values));
        return Status::OK();
      });
    }
    if (f == "orders") {
      return rd->ParseArray(
          [&]() -> Status { return ParseOrderTriple(rd, &raw->orders); });
    }
    if (f == "sigma") {
      return rd->ParseArray(
          [&]() -> Status { return ParseSigmaEntry(rd, &raw->sigma); });
    }
    if (f == "gamma") {
      return rd->ParseArray(
          [&]() -> Status { return ParseGammaEntry(rd, &raw->gamma); });
    }
    return rd->Fail("unknown spec field '" + f + "'");
  }));
  for (const char* required : {"entity_id", "attributes", "tuples"}) {
    if (seen.count(required) == 0) {
      return rd->Fail(std::string("spec missing field '") + required + "'");
    }
  }
  return Status::OK();
}

Result<Specification> AssembleSpec(RawSpec raw) {
  CCR_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(raw.attributes)));
  const int n_attrs = schema.size();
  EntityInstance instance(std::move(schema), std::move(raw.entity_id));
  for (std::vector<Value>& values : raw.tuples) {
    CCR_RETURN_NOT_OK(instance.Add(Tuple(std::move(values))));
  }
  TemporalInstance temporal(std::move(instance));
  for (const auto& [attr, less, more] : raw.orders) {
    if (attr < 0 || attr >= n_attrs) {
      return Status::InvalidArgument(
          "session snapshot: order attribute " + std::to_string(attr) +
          " out of range");
    }
    CCR_RETURN_NOT_OK(temporal.AddOrder(attr, less, more));
  }
  auto check_attr = [&](int attr, const char* what) -> Status {
    if (attr < 0 || attr >= n_attrs) {
      return Status::InvalidArgument("session snapshot: " + std::string(what) +
                                     " attribute " + std::to_string(attr) +
                                     " out of range");
    }
    return Status::OK();
  };
  for (const CurrencyConstraint& cc : raw.sigma) {
    CCR_RETURN_NOT_OK(check_attr(cc.head_attr(), "sigma head"));
    for (const OrderPredicate& p : cc.order_predicates()) {
      CCR_RETURN_NOT_OK(check_attr(p.attr, "sigma prec"));
    }
    for (const AttrComparePredicate& p : cc.compare_predicates()) {
      CCR_RETURN_NOT_OK(check_attr(p.attr, "sigma cmp"));
    }
    for (const ConstComparePredicate& p : cc.constant_predicates()) {
      CCR_RETURN_NOT_OK(check_attr(p.attr, "sigma const"));
    }
  }
  for (const ConstantCfd& cfd : raw.gamma) {
    CCR_RETURN_NOT_OK(check_attr(cfd.rhs_attr(), "gamma rhs"));
    for (const auto& [attr, value] : cfd.lhs()) {
      (void)value;
      CCR_RETURN_NOT_OK(check_attr(attr, "gamma lhs"));
    }
  }
  Specification spec;
  spec.temporal = std::move(temporal);
  spec.sigma = std::move(raw.sigma);
  spec.gamma = std::move(raw.gamma);
  return spec;
}

}  // namespace

std::string DeltaToJson(const PartialTemporalOrder& delta) {
  json::Writer w(0);
  WriteDelta(delta, &w);
  return std::move(w).Take();
}

Status ParseDelta(json::Reader* rd, PartialTemporalOrder* delta) {
  std::set<std::string> seen;
  return rd->ParseObject([&](const std::string& f) -> Status {
    if (!seen.insert(f).second) {
      return rd->Fail("duplicate extend field '" + f + "'");
    }
    if (f == "tuples") {
      return rd->ParseArray([&]() -> Status {
        std::vector<Value> values;
        CCR_RETURN_NOT_OK(ParseTupleValues(rd, &values));
        delta->new_tuples.emplace_back(std::move(values));
        return Status::OK();
      });
    }
    if (f == "orders") {
      std::vector<std::tuple<int, int, int>> orders;
      CCR_RETURN_NOT_OK(rd->ParseArray(
          [&]() -> Status { return ParseOrderTriple(rd, &orders); }));
      delta->orders = std::move(orders);
      return Status::OK();
    }
    return rd->Fail("unknown extend field '" + f + "'");
  });
}

void WriteValue(const Value& v, json::Writer* w) {
  switch (v.type()) {
    case ValueType::kNull:
      w->NullValue();
      return;
    case ValueType::kInt:
      w->BeginObject();
      w->Key("i");
      w->Value(v.as_int());
      w->EndObject();
      return;
    case ValueType::kDouble:
      w->BeginObject();
      w->Key("d");
      w->Value(v.as_double());
      w->EndObject();
      return;
    case ValueType::kString:
      w->BeginObject();
      w->Key("s");
      w->Value(v.as_string());
      w->EndObject();
      return;
  }
}

Status ParseValue(json::Reader* rd, Value* out) {
  if (rd->ConsumeWord("null")) {
    *out = Value::Null();
    return Status::OK();
  }
  int fields = 0;
  CCR_RETURN_NOT_OK(rd->ParseObject([&](const std::string& f) -> Status {
    if (++fields > 1) return rd->Fail("value wants exactly one tag field");
    if (f == "i") {
      int64_t v = 0;
      CCR_RETURN_NOT_OK(rd->ParseInt64(&v));
      *out = Value::Int(v);
      return Status::OK();
    }
    if (f == "d") {
      double v = 0;
      CCR_RETURN_NOT_OK(rd->ParseDouble(&v));
      *out = Value::Real(v);
      return Status::OK();
    }
    if (f == "s") {
      std::string v;
      CCR_RETURN_NOT_OK(rd->ParseString(&v));
      *out = Value::Str(std::move(v));
      return Status::OK();
    }
    return rd->Fail("unknown value tag '" + f + "'");
  }));
  if (fields != 1) return rd->Fail("value wants exactly one tag field");
  return Status::OK();
}

std::string SnapshotToJson(const SessionSnapshot& snapshot, int indent) {
  json::Writer w(indent);
  w.BeginObject();
  w.Key("schema");
  w.Value(kSchemaName);
  w.Key("schema_version");
  w.Value(kSnapshotSchemaVersion);
  w.Key("engine");
  w.BeginObject();
  w.Key("solver_preset");
  w.Value(snapshot.engine.solver_preset);
  w.Key("naive_deduce");
  w.Value(snapshot.engine.naive_deduce);
  w.EndObject();
  w.Key("spec");
  WriteSpec(snapshot.spec, &w);
  w.Key("ops");
  w.BeginArray();
  for (size_t i = 0; i < snapshot.ops.size(); ++i) {
    const SessionOp& op = snapshot.ops[i];
    w.ArraySep(i == 0);
    w.BeginObject();
    if (op.kind == SessionOp::Kind::kRound) {
      w.Key("round");
      w.Value(true);
    } else {
      w.Key("extend");
      WriteDelta(op.delta, &w);
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  std::string out = std::move(w).Take();
  out.push_back('\n');
  return out;
}

Result<SessionSnapshot> SnapshotFromJson(std::string_view text) {
  json::Reader rd(text, "session snapshot");
  SessionSnapshot snap;
  RawSpec raw;
  std::string schema;
  int version = -1;
  std::set<std::string> seen;
  Status st = rd.ParseObject([&](const std::string& key) -> Status {
    if (!seen.insert(key).second) {
      return rd.Fail("duplicate field '" + key + "'");
    }
    if (key == "schema") return rd.ParseString(&schema);
    if (key == "schema_version") return rd.ParseInt(&version);
    if (key == "engine") {
      std::set<std::string> seen_engine;
      return rd.ParseObject([&](const std::string& f) -> Status {
        if (!seen_engine.insert(f).second) {
          return rd.Fail("duplicate engine field '" + f + "'");
        }
        if (f == "solver_preset") {
          CCR_RETURN_NOT_OK(rd.ParseString(&snap.engine.solver_preset));
          if (!KnownPreset(snap.engine.solver_preset)) {
            return rd.Fail("unknown solver preset '" +
                           snap.engine.solver_preset + "'");
          }
          return Status::OK();
        }
        if (f == "naive_deduce") {
          return rd.ParseBool(&snap.engine.naive_deduce);
        }
        return rd.Fail("unknown engine field '" + f + "'");
      });
    }
    if (key == "spec") return ParseSpecObject(&rd, &raw);
    if (key == "ops") {
      return rd.ParseArray([&]() -> Status {
        SessionOp op;
        int fields = 0;
        CCR_RETURN_NOT_OK(rd.ParseObject([&](const std::string& f) -> Status {
          if (++fields > 1) return rd.Fail("op wants exactly one field");
          if (f == "round") {
            bool marker = false;
            CCR_RETURN_NOT_OK(rd.ParseBool(&marker));
            if (!marker) return rd.Fail("round marker must be true");
            op.kind = SessionOp::Kind::kRound;
            return Status::OK();
          }
          if (f == "extend") {
            op.kind = SessionOp::Kind::kExtend;
            return ParseDelta(&rd, &op.delta);
          }
          return rd.Fail("unknown op field '" + f + "'");
        }));
        if (fields != 1) return rd.Fail("op wants exactly one field");
        snap.ops.push_back(std::move(op));
        return Status::OK();
      });
    }
    return rd.Fail("unknown field '" + key + "'");
  });
  CCR_RETURN_NOT_OK(st);
  if (!rd.AtEnd()) return rd.Fail("trailing content");
  for (const char* required : {"schema", "schema_version", "spec"}) {
    if (seen.count(required) == 0) {
      return Status::InvalidArgument(
          std::string("session snapshot: missing field '") + required + "'");
    }
  }
  if (schema != kSchemaName) {
    return Status::InvalidArgument("session snapshot: schema is '" + schema +
                                   "', want '" + kSchemaName + "'");
  }
  if (version != kSnapshotSchemaVersion) {
    return Status::InvalidArgument(
        "session snapshot: schema_version " + std::to_string(version) +
        " unsupported (have " + std::to_string(kSnapshotSchemaVersion) + ")");
  }
  CCR_ASSIGN_OR_RETURN(snap.spec, AssembleSpec(std::move(raw)));
  return snap;
}

}  // namespace service
}  // namespace ccr
