// Session snapshots: the persistent form of a warm ResolutionSession.
//
// The engine is deterministic given its inputs (verdict-only determinism is
// a repo invariant — see docs/ARCHITECTURE.md), so a session's state is
// fully captured by *how it got here*: the initial specification plus the
// ordered log of operations applied since Create. A snapshot stores exactly
// that — spec + op log + engine config — as versioned strict JSON (sibling
// of result_io's ExperimentResult format, built on the same ccr::json
// primitives). Rehydration replays the log against a fresh session and
// lands on byte-identical verdict state; ROUND entries matter because
// MakeSuggestion allocates solver-scope variables, which shifts the ids of
// everything grounded later.
//
// The format is strict both ways: stable field order and %.17g doubles on
// write (equal snapshots are equal bytes), unknown/duplicate/missing
// fields rejected on read.

#ifndef CCR_SERVICE_SNAPSHOT_H_
#define CCR_SERVICE_SNAPSHOT_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/json.h"
#include "src/common/status.h"
#include "src/constraints/specification.h"

namespace ccr {
namespace service {

inline constexpr int kSnapshotSchemaVersion = 1;

/// \brief Engine knobs that must survive eviction: replaying the op log
/// under a different solver preset would still yield identical verdicts,
/// but pinning them keeps rehydrated sessions bit-comparable in the
/// equivalence gates (and honors what the client asked for at OPEN).
struct EngineConfig {
  /// One of modern | legacy | nogc | sls | nosls (ccr_experiment's
  /// --solver vocabulary; "sls" is an alias of the default).
  std::string solver_preset = "modern";
  bool naive_deduce = false;
};

/// \brief One replayable operation. kRound runs the validity → deduce →
/// suggest pipeline (replies discarded on replay); kExtend applies `delta`.
struct SessionOp {
  enum class Kind { kRound, kExtend };
  Kind kind = Kind::kRound;
  PartialTemporalOrder delta;  // kExtend only
};

/// \brief A full session snapshot: everything needed to rebuild the live
/// session from scratch.
struct SessionSnapshot {
  EngineConfig engine;
  Specification spec;
  std::vector<SessionOp> ops;
};

/// Writes `v` as the snapshot format's tagged value: `null`, `{"i": N}`,
/// `{"d": X}`, or `{"s": "..."}`. Shared with the service's reply bodies.
void WriteValue(const Value& v, json::Writer* w);

/// Parses a tagged value written by WriteValue.
Status ParseValue(json::Reader* rd, Value* out);

/// Writes a delta as `{"tuples": [...], "orders": [[attr,less,more],...]}`
/// — the body of an EXTEND request and of kExtend ops inside snapshots.
std::string DeltaToJson(const PartialTemporalOrder& delta);

/// Parses a delta object written by DeltaToJson from the reader's current
/// position (shared by the snapshot parser and the EXTEND handler).
Status ParseDelta(json::Reader* rd, PartialTemporalOrder* delta);

/// Serializes a snapshot. `indent` matches json::Writer (0 = single line).
std::string SnapshotToJson(const SessionSnapshot& snapshot, int indent = 1);

/// Parses and validates a snapshot; rejects unknown/duplicate/missing
/// fields, bad attribute indices, and unsupported schema versions.
Result<SessionSnapshot> SnapshotFromJson(std::string_view text);

}  // namespace service
}  // namespace ccr

#endif  // CCR_SERVICE_SNAPSHOT_H_
