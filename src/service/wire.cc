#include "src/service/wire.h"

#include <cstring>

namespace ccr {
namespace service {

namespace {

void PutU16(uint16_t v, std::string* out) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
}

void PutU32(uint32_t v, std::string* out) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
  out->push_back(static_cast<char>((v >> 16) & 0xFF));
  out->push_back(static_cast<char>((v >> 24) & 0xFF));
}

uint16_t GetU16(const char* p) {
  return static_cast<uint16_t>(static_cast<unsigned char>(p[0]) |
                               (static_cast<unsigned char>(p[1]) << 8));
}

uint32_t GetU32(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24);
}

}  // namespace

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "ok";
    case ErrorCode::kBadRequest:
      return "bad_request";
    case ErrorCode::kNotFound:
      return "not_found";
    case ErrorCode::kAlreadyExists:
      return "already_exists";
    case ErrorCode::kOverloaded:
      return "overloaded";
    case ErrorCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case ErrorCode::kBadVersion:
      return "bad_version";
    case ErrorCode::kTooLarge:
      return "too_large";
    case ErrorCode::kInternal:
      return "internal";
    case ErrorCode::kShuttingDown:
      return "shutting_down";
  }
  return "unknown";
}

bool EncodeFrame(const Frame& frame, std::string* out) {
  if (frame.session_id.size() > 0xFFFF) return false;
  const uint64_t payload = static_cast<uint64_t>(kFrameHeaderBytes) +
                           frame.session_id.size() + frame.body.size();
  if (payload > kMaxFrameBytes) return false;
  out->reserve(out->size() + 4 + static_cast<size_t>(payload));
  PutU32(static_cast<uint32_t>(payload), out);
  out->push_back(static_cast<char>(frame.version));
  out->push_back(static_cast<char>(frame.type));
  out->push_back(static_cast<char>(frame.status));
  PutU16(static_cast<uint16_t>(frame.session_id.size()), out);
  out->append(frame.session_id);
  out->append(frame.body);
  return true;
}

FrameDecoder::Outcome FrameDecoder::Next(Frame* frame) {
  if (!error_.empty()) return Outcome::kError;
  // Reclaim the consumed prefix once it dominates the buffer, so a
  // long-lived connection doesn't grow the buffer without bound.
  if (off_ > 0 && off_ >= buf_.size() / 2) {
    buf_.erase(0, off_);
    off_ = 0;
  }
  const size_t avail = buf_.size() - off_;
  if (avail < 4) return Outcome::kNeedMore;
  const char* p = buf_.data() + off_;
  const uint32_t payload = GetU32(p);
  // Validate the length prefix before waiting for the body: a hostile
  // 4 GiB prefix must fail now, not after the buffer fills.
  if (payload > kMaxFrameBytes) {
    error_ = "frame payload of " + std::to_string(payload) +
             " bytes exceeds the " + std::to_string(kMaxFrameBytes) +
             "-byte cap";
    return Outcome::kError;
  }
  if (payload < kFrameHeaderBytes) {
    error_ = "frame payload of " + std::to_string(payload) +
             " bytes is shorter than the fixed header";
    return Outcome::kError;
  }
  if (avail < 4u + payload) return Outcome::kNeedMore;
  const char* h = p + 4;
  const uint16_t sid_len = GetU16(h + 3);
  if (static_cast<uint32_t>(sid_len) + kFrameHeaderBytes > payload) {
    error_ = "session id length " + std::to_string(sid_len) +
             " overruns the frame payload";
    return Outcome::kError;
  }
  frame->version = static_cast<uint8_t>(h[0]);
  frame->type = static_cast<uint8_t>(h[1]);
  frame->status = static_cast<ErrorCode>(static_cast<unsigned char>(h[2]));
  frame->session_id.assign(h + kFrameHeaderBytes, sid_len);
  frame->body.assign(h + kFrameHeaderBytes + sid_len,
                     payload - kFrameHeaderBytes - sid_len);
  off_ += 4u + payload;
  return Outcome::kFrame;
}

}  // namespace service
}  // namespace ccr
