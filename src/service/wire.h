// Length-prefixed binary framing for the resolution service.
//
// One frame per request, one frame per response, strictly sequential per
// connection. The layout (all multi-byte integers little-endian) is:
//
//   offset  size  field
//   0       4     payload_len   = frame size minus this 4-byte prefix
//   4       1     version       (kWireVersion)
//   5       1     type          (RequestType, or 0x80|RequestType in replies)
//   6       1     status        (ErrorCode; always kOk in requests)
//   7       2     session_id_len
//   9       n     session_id    (opaque bytes, n = session_id_len)
//   9+n     m     body          (JSON payload; m = payload_len - 5 - n)
//
// The decoder is incremental (sockets deliver partial reads) and fails
// closed: an oversize length prefix or a malformed header is kError and the
// server drops the connection rather than resynchronize. See
// docs/PROTOCOL.md for the full contract.

#ifndef CCR_SERVICE_WIRE_H_
#define CCR_SERVICE_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace ccr {
namespace service {

/// Protocol version carried in every frame. Bumped on any incompatible
/// layout or semantics change; servers reject other versions with
/// kBadVersion rather than guess.
inline constexpr uint8_t kWireVersion = 1;

/// Hard cap on payload_len. A 16 MiB frame comfortably holds the largest
/// snapshot the bench produces; anything bigger is a corrupt or hostile
/// length prefix, and bounding it keeps one client from ballooning server
/// memory before the first sanity check.
inline constexpr uint32_t kMaxFrameBytes = 16u << 20;

/// Fixed bytes after the length prefix: version, type, status,
/// session_id_len (2).
inline constexpr uint32_t kFrameHeaderBytes = 5;

/// Request kinds. Replies echo the request type with the high bit set.
enum class RequestType : uint8_t {
  kPing = 0x01,      ///< liveness probe; body may carry {"sleep_ms": N}
  kOpen = 0x02,      ///< create a session from a spec/snapshot JSON body
  kRound = 0x03,     ///< run one resolve round, stream back the verdict
  kAnswer = 0x04,    ///< apply user answers [{"attr", "value"}, ...]
  kExtend = 0x05,    ///< append a raw PartialTemporalOrder delta
  kSnapshot = 0x06,  ///< serialize the session; body of reply is the JSON
  kEvict = 0x07,     ///< force the session cold (snapshot + free state)
  kClose = 0x08,     ///< drop the session entirely
  kStats = 0x09,     ///< server counters as JSON
  kShutdown = 0x0A,  ///< orderly daemon shutdown (reply sent first)
};

/// Bit set on `type` in every response frame.
inline constexpr uint8_t kResponseBit = 0x80;

/// Wire status byte. kOk responses carry the result payload; error
/// responses carry a JSON body {"error": "..."} with a human-readable
/// message.
enum class ErrorCode : uint8_t {
  kOk = 0,
  kBadRequest = 1,        ///< malformed body or unknown request type
  kNotFound = 2,          ///< no such session
  kAlreadyExists = 3,     ///< OPEN of a live session id
  kOverloaded = 4,        ///< admission queue full; retry with backoff
  kDeadlineExceeded = 5,  ///< request expired before a worker picked it up
  kBadVersion = 6,        ///< frame version != kWireVersion
  kTooLarge = 7,          ///< payload_len exceeds kMaxFrameBytes
  kInternal = 8,          ///< engine error; body has details
  kShuttingDown = 9,      ///< daemon is draining; no new work accepted
};

const char* ErrorCodeName(ErrorCode code);

/// A decoded frame. `type` holds the raw byte (response bit included for
/// replies); `session_id` and `body` are owned copies.
struct Frame {
  uint8_t version = kWireVersion;
  uint8_t type = 0;
  ErrorCode status = ErrorCode::kOk;
  std::string session_id;
  std::string body;

  RequestType request_type() const {
    return static_cast<RequestType>(type & ~kResponseBit);
  }
  bool is_response() const { return (type & kResponseBit) != 0; }
};

/// Appends the encoded frame to `out`. Returns false (and appends nothing)
/// if the frame would exceed kMaxFrameBytes or the session id exceeds
/// 65535 bytes.
bool EncodeFrame(const Frame& frame, std::string* out);

/// \brief Incremental frame decoder. Feed() raw socket bytes, then drain
/// Next() until it stops returning kFrame. Once kError is returned the
/// stream is poisoned: framing is lost and the connection must be closed.
class FrameDecoder {
 public:
  enum class Outcome { kFrame, kNeedMore, kError };

  void Feed(std::string_view bytes) { buf_.append(bytes); }

  /// On kFrame, `*frame` holds the next complete frame (consumed from the
  /// buffer). On kError, `error()` describes the fault.
  Outcome Next(Frame* frame);

  const std::string& error() const { return error_; }

 private:
  std::string buf_;
  size_t off_ = 0;  // consumed prefix of buf_
  std::string error_;
};

}  // namespace service
}  // namespace ccr

#endif  // CCR_SERVICE_WIRE_H_
