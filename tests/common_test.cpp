// Unit tests for src/common: Status/Result, Rng, strings, Timer.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/strings.h"
#include "src/common/timer.h"

namespace ccr {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllConstructorsProduceDistinctCodes) {
  EXPECT_EQ(Status::InvalidSpec("x").code(), StatusCode::kInvalidSpec);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  CCR_ASSIGN_OR_RETURN(int h, Half(x));
  CCR_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Quarter(8).value(), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd
  EXPECT_FALSE(Quarter(5).ok());
}

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Below(13), 13u);
  }
}

TEST(RngTest, BelowCoversAllResidues) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, RangeInclusiveBounds) {
  Rng rng(3);
  bool lo_hit = false, hi_hit = false;
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = rng.Range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    lo_hit |= (v == -2);
    hi_hit |= (v == 2);
  }
  EXPECT_TRUE(lo_hit);
  EXPECT_TRUE(hi_hit);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(9);
  EXPECT_FALSE(rng.Chance(0.0));
  EXPECT_TRUE(rng.Chance(1.0));
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(21);
  Rng fork = a.Fork();
  EXPECT_NE(a.Next(), fork.Next());
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y \t\n"), "x y");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("prec(city)", "prec("));
  EXPECT_FALSE(StartsWith("pre", "prec("));
}

TEST(StringsTest, ParseInt64) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("-42", &v));
  EXPECT_EQ(v, -42);
  EXPECT_FALSE(ParseInt64("42x", &v));
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("4.2", &v));
}

TEST(StringsTest, ParseDouble) {
  double d = 0;
  EXPECT_TRUE(ParseDouble("4.25", &d));
  EXPECT_DOUBLE_EQ(d, 4.25);
  EXPECT_FALSE(ParseDouble("abc", &d));
  EXPECT_FALSE(ParseDouble("", &d));
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer t;
  double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GT(sink, 0.0);
  EXPECT_GE(t.ElapsedMs(), 0.0);
  t.Restart();
  EXPECT_LT(t.ElapsedMs(), 1000.0);
}

}  // namespace
}  // namespace ccr
