// Unit tests for src/constraints: predicates, currency constraints, CFDs,
// specifications.

#include <gtest/gtest.h>

#include "src/constraints/specification.h"

namespace ccr {
namespace {

TEST(EvalCmpTest, AllOperators) {
  const Value a = Value::Int(1);
  const Value b = Value::Int(2);
  EXPECT_TRUE(EvalCmp(CmpOp::kLt, a, b));
  EXPECT_FALSE(EvalCmp(CmpOp::kLt, b, a));
  EXPECT_TRUE(EvalCmp(CmpOp::kLe, a, a));
  EXPECT_TRUE(EvalCmp(CmpOp::kGt, b, a));
  EXPECT_TRUE(EvalCmp(CmpOp::kGe, b, b));
  EXPECT_TRUE(EvalCmp(CmpOp::kEq, a, a));
  EXPECT_TRUE(EvalCmp(CmpOp::kNe, a, b));
}

TEST(EvalCmpTest, NullComparesBelowEverything) {
  EXPECT_TRUE(EvalCmp(CmpOp::kLt, Value::Null(), Value::Int(0)));
  EXPECT_TRUE(EvalCmp(CmpOp::kLt, Value::Null(), Value::Str("")));
  EXPECT_FALSE(EvalCmp(CmpOp::kLt, Value::Null(), Value::Null()));
  EXPECT_TRUE(EvalCmp(CmpOp::kEq, Value::Null(), Value::Null()));
}

TEST(CmpOpToStringTest, Renders) {
  EXPECT_EQ(CmpOpToString(CmpOp::kEq), "=");
  EXPECT_EQ(CmpOpToString(CmpOp::kNe), "!=");
  EXPECT_EQ(CmpOpToString(CmpOp::kLt), "<");
  EXPECT_EQ(CmpOpToString(CmpOp::kLe), "<=");
  EXPECT_EQ(CmpOpToString(CmpOp::kGt), ">");
  EXPECT_EQ(CmpOpToString(CmpOp::kGe), ">=");
}

class CurrencyConstraintTest : public ::testing::Test {
 protected:
  Schema schema_ = Schema::Make({"status", "kids"}).value();
  Tuple working_{Value::Str("working"), Value::Int(0)};
  Tuple retired_{Value::Str("retired"), Value::Int(3)};
};

TEST_F(CurrencyConstraintTest, ConstCompare) {
  // ϕ1: t1[status]=working & t2[status]=retired -> t1 < t2 @ status.
  CurrencyConstraint phi(0);
  phi.AddConstCompare(1, 0, CmpOp::kEq, Value::Str("working"));
  phi.AddConstCompare(2, 0, CmpOp::kEq, Value::Str("retired"));
  EXPECT_TRUE(phi.ComparisonsHold(working_, retired_));
  EXPECT_FALSE(phi.ComparisonsHold(retired_, working_));
  EXPECT_FALSE(phi.ComparisonsHold(working_, working_));
  EXPECT_TRUE(phi.IsComparisonOnly());
}

TEST_F(CurrencyConstraintTest, AttrCompare) {
  // ϕ4: t1[kids] < t2[kids] -> t1 < t2 @ kids.
  CurrencyConstraint phi(1);
  phi.AddAttrCompare(1, CmpOp::kLt);
  EXPECT_TRUE(phi.ComparisonsHold(working_, retired_));  // 0 < 3
  EXPECT_FALSE(phi.ComparisonsHold(retired_, working_));
}

TEST_F(CurrencyConstraintTest, OrderPredicatesNotEvaluatedHere) {
  // ϕ5: prec(status) -> job-like; ComparisonsHold ignores order preds.
  CurrencyConstraint phi(1);
  phi.AddOrder(0);
  EXPECT_TRUE(phi.ComparisonsHold(working_, retired_));
  EXPECT_FALSE(phi.IsComparisonOnly());
}

TEST_F(CurrencyConstraintTest, ToStringMatchesPaperShape) {
  CurrencyConstraint phi(0);
  phi.AddConstCompare(1, 0, CmpOp::kEq, Value::Str("working"));
  phi.AddConstCompare(2, 0, CmpOp::kEq, Value::Str("retired"));
  const std::string s = phi.ToString(schema_);
  EXPECT_NE(s.find("t1[status] = 'working'"), std::string::npos);
  EXPECT_NE(s.find("t2[status] = 'retired'"), std::string::npos);
  EXPECT_NE(s.find("-> t1 < t2 @ status"), std::string::npos);
}

TEST(ConstantCfdTest, AccessorsAndToString) {
  Schema schema = Schema::Make({"AC", "city"}).value();
  ConstantCfd psi({{0, Value::Int(213)}}, 1, Value::Str("LA"));
  EXPECT_EQ(psi.rhs_attr(), 1);
  EXPECT_EQ(psi.rhs_value(), Value::Str("LA"));
  ASSERT_EQ(psi.lhs().size(), 1u);
  const std::string s = psi.ToString(schema);
  EXPECT_NE(s.find("AC='213'"), std::string::npos);
  EXPECT_NE(s.find("city='LA'"), std::string::npos);
}

TEST(SpecificationTest, ExtendSharesConstraints) {
  Schema schema = Schema::Make({"a"}).value();
  EntityInstance inst(schema, "e");
  ASSERT_TRUE(inst.Add(Tuple({Value::Int(1)})).ok());
  ASSERT_TRUE(inst.Add(Tuple({Value::Int(2)})).ok());

  Specification se;
  se.temporal = TemporalInstance(std::move(inst));
  CurrencyConstraint phi(0);
  phi.AddAttrCompare(0, CmpOp::kLt);
  se.sigma.push_back(phi);

  PartialTemporalOrder ot;
  ot.new_tuples.push_back(Tuple({Value::Int(9)}));
  ot.orders.emplace_back(0, 0, 2);
  auto extended = Extend(se, ot);
  ASSERT_TRUE(extended.ok());
  EXPECT_EQ(extended->instance().size(), 3);
  EXPECT_EQ(extended->sigma.size(), 1u);
  EXPECT_EQ(extended->temporal.orders(0).size(), 1u);
  // The original is untouched.
  EXPECT_EQ(se.instance().size(), 2);
}

}  // namespace
}  // namespace ccr
