// Tests for the dataset generators (§VI): structural fidelity to the
// paper's corpora, determinism, constraint consistency, and resolvability.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/core/isvalid.h"
#include "src/core/resolver.h"
#include "src/data/career_generator.h"
#include "src/data/nba_generator.h"
#include "src/data/person_generator.h"

namespace ccr {
namespace {

TEST(PersonGeneratorTest, MatchesPaperConstraintCounts) {
  PersonOptions opts;
  opts.num_entities = 5;
  const Dataset ds = GeneratePerson(opts);
  EXPECT_EQ(ds.sigma.size(), 983u);   // §VI: 983 currency constraints
  EXPECT_EQ(ds.gamma.size(), 1000u);  // one CFD with 1000 patterns
  EXPECT_EQ(ds.schema.size(), 8);
  EXPECT_EQ(ds.entities.size(), 5u);
}

TEST(PersonGeneratorTest, DeterministicUnderSeed) {
  PersonOptions opts;
  opts.num_entities = 3;
  const Dataset a = GeneratePerson(opts);
  const Dataset b = GeneratePerson(opts);
  ASSERT_EQ(a.entities.size(), b.entities.size());
  for (size_t i = 0; i < a.entities.size(); ++i) {
    ASSERT_EQ(a.entities[i].instance.size(), b.entities[i].instance.size());
    for (int t = 0; t < a.entities[i].instance.size(); ++t) {
      EXPECT_EQ(a.entities[i].instance.tuple(t),
                b.entities[i].instance.tuple(t));
    }
    EXPECT_EQ(a.entities[i].truth, b.entities[i].truth);
  }
}

TEST(PersonGeneratorTest, DifferentSeedsDiffer) {
  PersonOptions a_opts;
  a_opts.num_entities = 3;
  PersonOptions b_opts = a_opts;
  b_opts.seed = a_opts.seed + 1;
  const Dataset a = GeneratePerson(a_opts);
  const Dataset b = GeneratePerson(b_opts);
  bool any_diff = false;
  for (size_t i = 0; i < a.entities.size() && !any_diff; ++i) {
    any_diff = !(a.entities[i].truth == b.entities[i].truth);
  }
  EXPECT_TRUE(any_diff);
}

TEST(PersonGeneratorTest, InstancesHaveConflictsAndRespectSizes) {
  PersonOptions opts;
  opts.num_entities = 10;
  opts.min_tuples = 5;
  opts.max_tuples = 25;
  const Dataset ds = GeneratePerson(opts);
  for (const EntityCase& ec : ds.entities) {
    EXPECT_GE(ec.instance.size(), 5);
    EXPECT_LE(ec.instance.size(), 26);  // +1 possible ghost tuple
    EXPECT_GT(ec.instance.CountConflictAttributes(), 0);
  }
}

TEST(PersonGeneratorTest, AllSpecificationsAreValid) {
  // The paper's generator emits tuples that "do not violate the currency
  // constraints"; every specification must pass IsValid.
  PersonOptions opts;
  opts.num_entities = 8;
  opts.p_ghost = 0.5;  // stress the ghost path too
  const Dataset ds = GeneratePerson(opts);
  for (size_t i = 0; i < ds.entities.size(); ++i) {
    auto r = IsValid(ds.MakeSpec(static_cast<int>(i)));
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->valid) << "entity " << i;
  }
}

TEST(PersonGeneratorTest, TruthValuesAppearInInstance) {
  PersonOptions opts;
  opts.num_entities = 6;
  const Dataset ds = GeneratePerson(opts);
  for (const EntityCase& ec : ds.entities) {
    for (int a = 0; a < ds.schema.size(); ++a) {
      if (ec.truth[a].is_null()) continue;
      bool found = false;
      for (const Tuple& t : ec.instance.tuples()) {
        if (t.at(a) == ec.truth[a]) found = true;
      }
      EXPECT_TRUE(found) << ds.schema.name(a);
    }
  }
}

TEST(PersonGeneratorTest, OracleCompletesEntities) {
  PersonOptions opts;
  opts.num_entities = 6;
  const Dataset ds = GeneratePerson(opts);
  int complete = 0;
  for (size_t i = 0; i < ds.entities.size(); ++i) {
    TruthOracle oracle(ds.entities[i].truth);
    auto r = Resolve(ds.MakeSpec(static_cast<int>(i)), &oracle);
    ASSERT_TRUE(r.ok());
    complete += r->complete ? 1 : 0;
  }
  EXPECT_EQ(complete, 6);
}

TEST(NbaGeneratorTest, MatchesPaperConstraintCounts) {
  NbaOptions opts;
  opts.num_entities = 5;
  const Dataset ds = GenerateNba(opts);
  EXPECT_EQ(ds.sigma.size(), 54u);  // §VI: 54 currency constraints
  EXPECT_EQ(ds.gamma.size(), 58u);  // 58 constant CFDs
  EXPECT_EQ(ds.schema.size(), 14);  // the joined NBA schema
  EXPECT_EQ(ds.schema.IndexOf("allpoints"), 8);
}

TEST(NbaGeneratorTest, TupleCountsInPaperRange) {
  NbaOptions opts;
  opts.num_entities = 60;
  const Dataset ds = GenerateNba(opts);
  double total = 0;
  for (const EntityCase& ec : ds.entities) {
    EXPECT_GE(ec.instance.size(), 2);
    EXPECT_LE(ec.instance.size(), 136);
    total += ec.instance.size();
  }
  const double avg = total / ds.entities.size();
  EXPECT_GT(avg, 10.0);  // paper: about 27 on average
  EXPECT_LT(avg, 60.0);
}

TEST(NbaGeneratorTest, AllSpecificationsAreValid) {
  NbaOptions opts;
  opts.num_entities = 10;
  const Dataset ds = GenerateNba(opts);
  for (size_t i = 0; i < ds.entities.size(); ++i) {
    auto r = IsValid(ds.MakeSpec(static_cast<int>(i)));
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->valid) << "entity " << i;
  }
}

TEST(NbaGeneratorTest, MonotoneStatsResolveAutomatically) {
  // allpoints/points/poss/min are always derivable through the ϕ3 family.
  NbaOptions opts;
  opts.num_entities = 8;
  const Dataset ds = GenerateNba(opts);
  for (size_t i = 0; i < ds.entities.size(); ++i) {
    auto r = Resolve(ds.MakeSpec(static_cast<int>(i)), nullptr);
    ASSERT_TRUE(r.ok());
    for (const char* attr : {"allpoints", "points", "poss", "min"}) {
      const int a = ds.schema.IndexOf(attr);
      EXPECT_TRUE(r->resolved[a]) << attr << " entity " << i;
      EXPECT_EQ(r->true_values[a], ds.entities[i].truth[a])
          << attr << " entity " << i;
    }
  }
}

TEST(NbaGeneratorTest, OracleCompletesEntities) {
  NbaOptions opts;
  opts.num_entities = 8;
  const Dataset ds = GenerateNba(opts);
  for (size_t i = 0; i < ds.entities.size(); ++i) {
    TruthOracle oracle(ds.entities[i].truth);
    auto r = Resolve(ds.MakeSpec(static_cast<int>(i)), &oracle);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->complete) << "entity " << i;
    EXPECT_LE(r->rounds_used, 2);  // paper: at most 2 rounds for NBA
  }
}

TEST(CareerGeneratorTest, MatchesPaperShape) {
  const Dataset ds = GenerateCareer();
  EXPECT_EQ(ds.entities.size(), 65u);  // §VI: 65 persons
  EXPECT_EQ(ds.schema.size(), 5);
  // ≈503 currency constraints; citation sampling puts us in the vicinity.
  EXPECT_GT(ds.sigma.size(), 350u);
  EXPECT_LT(ds.sigma.size(), 650u);
  // ≈347 CFD patterns: two per affiliation, minus the deliberately
  // missing pattern-gap entries.
  EXPECT_GT(ds.gamma.size(), 290u);
  EXPECT_LE(ds.gamma.size(), 348u);
}

TEST(CareerGeneratorTest, AllSpecificationsAreValid) {
  CareerOptions opts;
  opts.num_entities = 12;
  const Dataset ds = GenerateCareer(opts);
  for (size_t i = 0; i < ds.entities.size(); ++i) {
    auto r = IsValid(ds.MakeSpec(static_cast<int>(i)));
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->valid) << "entity " << i;
  }
}

TEST(CareerGeneratorTest, HighAutomaticResolution) {
  // §VI: 78% of CAREER true values resolve with no interaction — the
  // citation structure orders most affiliations. Expect a clear majority.
  CareerOptions opts;
  opts.num_entities = 20;
  const Dataset ds = GenerateCareer(opts);
  int resolved = 0, conflicts = 0;
  for (size_t i = 0; i < ds.entities.size(); ++i) {
    auto r = Resolve(ds.MakeSpec(static_cast<int>(i)), nullptr);
    ASSERT_TRUE(r.ok());
    for (int a = 0; a < ds.schema.size(); ++a) {
      if (!ds.entities[i].instance.HasConflict(a)) continue;
      ++conflicts;
      resolved += r->resolved[a] ? 1 : 0;
    }
  }
  ASSERT_GT(conflicts, 0);
  EXPECT_GT(static_cast<double>(resolved) / conflicts, 0.5);
}

TEST(CareerGeneratorTest, MisspelledCityRepairedByCfd) {
  // With noise on, some instances carry a misspelled city; resolution must
  // still land on the CFD's pattern city.
  CareerOptions opts;
  opts.num_entities = 30;
  opts.p_city_noise = 0.3;
  const Dataset ds = GenerateCareer(opts);
  int checked = 0;
  for (size_t i = 0; i < ds.entities.size(); ++i) {
    TruthOracle oracle(ds.entities[i].truth);
    auto r = Resolve(ds.MakeSpec(static_cast<int>(i)), &oracle);
    ASSERT_TRUE(r.ok());
    const int city = ds.schema.IndexOf("city");
    if (r->resolved[city]) {
      EXPECT_EQ(r->true_values[city], ds.entities[i].truth[city])
          << "entity " << i;
      ++checked;
    }
  }
  EXPECT_GT(checked, 10);
}

TEST(DatasetTest, MakeSpecSubsetsConstraints) {
  PersonOptions opts;
  opts.num_entities = 1;
  const Dataset ds = GeneratePerson(opts);
  const Specification half = ds.MakeSpec(0, 0.5, 0.5);
  EXPECT_NEAR(half.sigma.size(), ds.sigma.size() / 2.0,
              ds.sigma.size() * 0.02 + 1);
  EXPECT_NEAR(half.gamma.size(), ds.gamma.size() / 2.0,
              ds.gamma.size() * 0.02 + 1);
  // Deterministic subsetting.
  const Specification again = ds.MakeSpec(0, 0.5, 0.5);
  EXPECT_EQ(half.sigma.size(), again.sigma.size());
  const Specification full = ds.MakeSpec(0);
  EXPECT_EQ(full.sigma.size(), ds.sigma.size());
}

}  // namespace
}  // namespace ccr
