// Equivalence and regression suite for the backbone Deduce engine
// (src/core/deduce.cc): model sweeping + propagation-only screening +
// chunked UNSAT certification must return exactly the per-pair Lemma-6
// loop's entailed pair set — on the paper's fixtures, on randomized
// corpora from all three generators, under the session's guard
// assumptions (including across an ExtendWith round), and at degenerate
// chunk sizes where a chunk UNSAT tempted by mid-chunk transitive
// closure could over-claim. The pipeline-level byte-identity cross
// against every solver-heuristic combination lives in
// solver_modern_test.cpp (ablation mask bit 128).

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "paper_fixture.h"
#include "src/ccr.h"
#include "src/core/session.h"
#include "src/encode/cnf_builder.h"
#include "src/eval/result_io.h"

namespace ccr {
namespace {

using testing::EdithSpec;
using testing::GeorgeSpec;
using testing::PaperSchema;

// Every deduced pair as (attr, less, more) — transitive closure
// included, so two DeducedOrders are equal iff their sets are.
using PairSet = std::set<std::tuple<int, int, int>>;

PairSet ToPairSet(const DeducedOrders& od) {
  PairSet out;
  for (size_t a = 0; a < od.per_attr.size(); ++a) {
    for (const auto& [u, v] : od.per_attr[a].Pairs()) {
      out.insert({static_cast<int>(a), u, v});
    }
  }
  return out;
}

// Runs the shared-solver Deduce on a fresh solver loaded with Φ(se).
// `chunk` > 0 forces the backbone engine at that chunk size; otherwise
// NaiveDeduceShared dispatches on `backbone`.
DeducedOrders DeduceFresh(const Specification& se, bool backbone,
                          int chunk = 0) {
  auto inst = Instantiation::Build(se);
  EXPECT_TRUE(inst.ok());
  const sat::Cnf phi = BuildCnf(*inst);
  sat::SolverOptions sopts;
  sopts.use_backbone_deduce = backbone;
  sat::Solver solver(sopts);
  solver.AddCnf(phi);
  if (chunk > 0) {
    return BackboneDeduceShared(*inst, &solver, {}, chunk);
  }
  return NaiveDeduceShared(*inst, &solver);
}

Dataset SmallCorpus(const std::string& kind, uint64_t seed) {
  if (kind == "nba") {
    NbaOptions o;
    o.num_entities = 4;
    o.min_tuples = 3;
    o.max_tuples = 8;
    o.seed = seed;
    return GenerateNba(o);
  }
  if (kind == "career") {
    CareerOptions o;
    o.num_entities = 4;
    o.min_tuples = 3;
    o.max_tuples = 8;
    o.seed = seed;
    return GenerateCareer(o);
  }
  PersonOptions o;
  o.num_entities = 4;
  o.min_tuples = 4;
  o.max_tuples = 10;
  o.seed = seed;
  return GeneratePerson(o);
}

TEST(DeduceBackboneTest, PaperSpecsMatchPerPair) {
  for (const Specification& se : {EdithSpec(), GeorgeSpec()}) {
    const PairSet perpair = ToPairSet(DeduceFresh(se, /*backbone=*/false));
    EXPECT_EQ(ToPairSet(DeduceFresh(se, /*backbone=*/true)), perpair);
    EXPECT_FALSE(perpair.empty());
  }
}

// The distilled over-claim regression: Edith's spec entails total orders
// per attribute, so every chunk's members are riddled with pairs the
// transitive closure of an earlier chunk (or an earlier member of the
// SAME chunk) already settles. At chunk sizes 1..5 the engine rebuilds
// its scoped clause constantly; a stale selector clause, or an UNSAT
// verdict applied to pairs that were dropped from the chunk before the
// solve, would claim pairs the per-pair loop refutes.
TEST(DeduceBackboneTest, TinyChunksNeverOverclaim) {
  for (const Specification& se : {EdithSpec(), GeorgeSpec()}) {
    const PairSet perpair = ToPairSet(DeduceFresh(se, /*backbone=*/false));
    for (const int chunk : {1, 2, 3, 5, 64}) {
      EXPECT_EQ(ToPairSet(DeduceFresh(se, /*backbone=*/true, chunk)),
                perpair)
          << "chunk size " << chunk;
    }
  }
}

TEST(DeduceBackboneTest, RandomizedCorporaMatchPerPair) {
  for (const std::string kind : {"person", "nba", "career"}) {
    for (const uint64_t seed : {0xBB1u, 0xBB2u, 0xBB3u}) {
      const Dataset ds = SmallCorpus(kind, seed);
      for (size_t e = 0; e < ds.entities.size(); ++e) {
        const Specification se = ds.MakeSpec(static_cast<int>(e));
        const PairSet perpair =
            ToPairSet(DeduceFresh(se, /*backbone=*/false));
        EXPECT_EQ(ToPairSet(DeduceFresh(se, /*backbone=*/true)), perpair)
            << kind << " seed " << seed << " entity " << e;
        // Degenerate chunking crossed with random structure: the chunk
        // rebuild logic sees frontiers of every residue size.
        EXPECT_EQ(ToPairSet(DeduceFresh(se, /*backbone=*/true, 3)), perpair)
            << kind << " seed " << seed << " entity " << e << " chunk 3";
      }
    }
  }
}

// Under the session's guard assumptions: guarded grounding arms every
// CFD rule clause through its guard literal, so the entailment checks
// run under a non-empty assumption prefix, and the session solver's
// witness ring (filled by CheckValidity) feeds the tier-1 sweep. An
// ExtendWith round then retires guards and appends clauses — the two
// engines must keep agreeing on the extended spec.
TEST(DeduceBackboneTest, SessionDeduceUnderGuardsAndExtension) {
  const Schema schema = PaperSchema();
  ResolveOptions on;
  on.naive_deduce = true;
  ResolveOptions off = on;
  off.solver.use_backbone_deduce = false;

  auto s_on = ResolutionSession::Create(GeorgeSpec(), on);
  auto s_off = ResolutionSession::Create(GeorgeSpec(), off);
  ASSERT_TRUE(s_on.ok());
  ASSERT_TRUE(s_off.ok());
  EXPECT_EQ(s_on->CheckValidity().valid, s_off->CheckValidity().valid);
  EXPECT_EQ(ToPairSet(s_on->Deduce()), ToPairSet(s_off->Deduce()));

  // Example 9's user round: assert status = retired via a dominating
  // user tuple; the cascade entails orders on five more attributes.
  PartialTemporalOrder ot;
  Tuple to(std::vector<Value>(schema.size(), Value::Null()));
  to[schema.IndexOf("status")] = Value::Str("retired");
  ot.new_tuples.push_back(to);
  for (int t = 0; t < 3; ++t) {
    ot.orders.emplace_back(schema.IndexOf("status"), t, 3);
  }
  ASSERT_TRUE(s_on->ExtendWith(ot).ok());
  ASSERT_TRUE(s_off->ExtendWith(ot).ok());
  const PairSet extended_on = ToPairSet(s_on->Deduce());
  EXPECT_EQ(extended_on, ToPairSet(s_off->Deduce()));
  EXPECT_FALSE(extended_on.empty());
  EXPECT_EQ(s_on->rebuilds(), 0);
  EXPECT_EQ(s_off->rebuilds(), 0);
}

// The point of the engine, counter-verified: on the same session
// workload the backbone configuration must issue strictly fewer
// Deduce-phase solver calls than the per-pair loop, and must attribute
// the retired calls to model prunes / propagation proofs / chunked
// certification (queries = 1 initial solve + chunk solves).
TEST(DeduceBackboneTest, CountersShowCallsRetired) {
  ResolveOptions on;
  on.naive_deduce = true;
  ResolveOptions off = on;
  off.solver.use_backbone_deduce = false;

  const Dataset ds = SmallCorpus("person", 0xC0DE);
  int64_t on_queries = 0, off_queries = 0;
  int64_t prunes = 0, proofs = 0, chunk_solves = 0;
  for (size_t e = 0; e < ds.entities.size(); ++e) {
    const Specification se = ds.MakeSpec(static_cast<int>(e));
    auto s_on = ResolutionSession::Create(se, on);
    auto s_off = ResolutionSession::Create(se, off);
    ASSERT_TRUE(s_on.ok());
    ASSERT_TRUE(s_off.ok());
    const PairSet a = ToPairSet(s_on->Deduce());
    const PairSet b = ToPairSet(s_off->Deduce());
    EXPECT_EQ(a, b) << "entity " << e;
    const sat::SolverStats& son = s_on->solver_stats();
    const sat::SolverStats& soff = s_off->solver_stats();
    on_queries += son.deduce_queries;
    off_queries += soff.deduce_queries;
    prunes += son.deduce_model_prunes;
    proofs += son.deduce_propagation_proofs;
    chunk_solves += son.deduce_chunk_solves;
    EXPECT_EQ(son.deduce_queries, 1 + son.deduce_chunk_solves)
        << "entity " << e;
    EXPECT_EQ(soff.deduce_model_prunes, 0) << "entity " << e;
    EXPECT_EQ(soff.deduce_chunk_solves, 0) << "entity " << e;
  }
  EXPECT_LT(on_queries, off_queries);
  EXPECT_GT(prunes, 0);
  EXPECT_GT(prunes + proofs + chunk_solves, 0);
}

// Pipeline-level byte identity on the naive_deduce pipeline, including
// the oracle loop and serialization: the full RunExperiment output must
// not move by a byte when the backbone engine is switched off.
TEST(DeduceBackboneTest, ExperimentBytesIdenticalAcrossEngines) {
  for (const std::string kind : {"person", "career"}) {
    const Dataset ds = SmallCorpus(kind, 0xE5E);
    ExperimentOptions eopts;
    eopts.max_rounds = 3;
    eopts.answers_per_round = 1;
    eopts.resolve.naive_deduce = true;
    ExperimentOptions eopts_off = eopts;
    eopts_off.resolve.solver.use_backbone_deduce = false;
    ResultJsonOptions jopts;
    jopts.include_timings = false;
    EXPECT_EQ(ExperimentResultToJson(RunExperiment(ds, eopts), jopts),
              ExperimentResultToJson(RunExperiment(ds, eopts_off), jopts))
        << kind;
  }
}

// DeduceScratch reuse is observationally inert: a scratch dirtied by a
// larger instance must leave a later, smaller instance's DeduceOrder
// result untouched (the session pool hands one scratch to every round
// of every entity on a worker thread).
TEST(DeduceBackboneTest, DeduceScratchReuseIsInert) {
  DeduceScratch scratch;
  const auto run = [&](const Specification& se, DeduceScratch* s) {
    auto inst = Instantiation::Build(se);
    EXPECT_TRUE(inst.ok());
    const sat::Cnf phi = BuildCnf(*inst);
    return ToPairSet(DeduceOrder(*inst, phi, {}, {}, s));
  };
  const PairSet edith_fresh = run(EdithSpec(), nullptr);
  const PairSet george_fresh = run(GeorgeSpec(), nullptr);
  EXPECT_EQ(run(EdithSpec(), &scratch), edith_fresh);
  EXPECT_EQ(run(GeorgeSpec(), &scratch), george_fresh);
  EXPECT_EQ(run(EdithSpec(), &scratch), edith_fresh);
}

}  // namespace
}  // namespace ccr
