// Tests for DeduceOrder / NaiveDeduce and true-value extraction (§V-B).
//
// The central cases are the paper's own: Example 2 (all of Edith's true
// values are deducible automatically) and Examples 3/9 (only name and kids
// for George until the user supplies status).

#include <gtest/gtest.h>

#include "paper_fixture.h"
#include "src/core/deduce.h"
#include "src/encode/cnf_builder.h"

namespace ccr {
namespace {

using testing::EdithSpec;
using testing::GeorgeSpec;
using testing::PaperSchema;

class DeduceTest : public ::testing::Test {
 protected:
  // Deduces true values for `se`; returns per-attribute Values (null when
  // underivable).
  static std::vector<Value> DeduceTruth(const Specification& se,
                                        bool naive = false) {
    auto inst = Instantiation::Build(se);
    EXPECT_TRUE(inst.ok());
    const sat::Cnf phi = BuildCnf(*inst);
    const DeducedOrders od =
        naive ? NaiveDeduce(*inst, phi) : DeduceOrder(*inst, phi);
    const std::vector<int> idx = ExtractTrueValueIndices(inst->varmap, od);
    std::vector<Value> out(idx.size(), Value::Null());
    for (size_t a = 0; a < idx.size(); ++a) {
      if (idx[a] >= 0) out[a] = inst->varmap.domain(a)[idx[a]];
    }
    return out;
  }

  Schema schema_ = PaperSchema();
};

TEST_F(DeduceTest, Example2EdithFullyResolved) {
  // Example 2: t1 = (Edith Shain, deceased, n/a, 3, LA, 213, 90058,
  // Vermont) — deduced with no user interaction.
  const std::vector<Value> truth = DeduceTruth(EdithSpec());
  EXPECT_EQ(truth[schema_.IndexOf("name")], Value::Str("Edith Shain"));
  EXPECT_EQ(truth[schema_.IndexOf("status")], Value::Str("deceased"));
  EXPECT_EQ(truth[schema_.IndexOf("job")], Value::Str("n/a"));
  EXPECT_EQ(truth[schema_.IndexOf("kids")], Value::Int(3));
  EXPECT_EQ(truth[schema_.IndexOf("city")], Value::Str("LA"));
  EXPECT_EQ(truth[schema_.IndexOf("AC")], Value::Int(213));
  EXPECT_EQ(truth[schema_.IndexOf("zip")], Value::Str("90058"));
  EXPECT_EQ(truth[schema_.IndexOf("county")], Value::Str("Vermont"));
}

TEST_F(DeduceTest, Example3GeorgePartiallyResolved) {
  // Example 3: only (name, kids) = (George, 2) are derivable from E2.
  const std::vector<Value> truth = DeduceTruth(GeorgeSpec());
  EXPECT_EQ(truth[schema_.IndexOf("name")],
            Value::Str("George Mendonca"));
  EXPECT_EQ(truth[schema_.IndexOf("kids")], Value::Int(2));
  for (const char* open :
       {"status", "job", "city", "AC", "zip", "county"}) {
    EXPECT_TRUE(truth[schema_.IndexOf(open)].is_null()) << open;
  }
}

TEST_F(DeduceTest, Example9DeducedOrdersForGeorge) {
  // Example 9 lists the orders DeduceOrder finds for E2.
  const Specification se = GeorgeSpec();
  auto inst = Instantiation::Build(se);
  ASSERT_TRUE(inst.ok());
  const sat::Cnf phi = BuildCnf(*inst);
  const DeducedOrders od = DeduceOrder(*inst, phi);
  const VarMap& vm = inst->varmap;
  auto expect_less = [&](const char* attr_name, Value a, Value b) {
    const int attr = schema_.IndexOf(attr_name);
    const int ia = vm.ValueIndex(attr, a);
    const int ib = vm.ValueIndex(attr, b);
    ASSERT_GE(ia, 0);
    ASSERT_GE(ib, 0);
    EXPECT_TRUE(od.per_attr[attr].Less(ia, ib))
        << attr_name << ": " << a.ToString() << " < " << b.ToString();
  };
  expect_less("kids", Value::Int(0), Value::Int(2));         // (1) by ϕ4
  expect_less("status", Value::Str("working"),
              Value::Str("retired"));                         // (2) by ϕ1
  expect_less("job", Value::Str("sailor"), Value::Str("veteran"));  // (3)
  expect_less("AC", Value::Int(401), Value::Int(212));
  expect_less("zip", Value::Str("02840"), Value::Str("12404"));
}

TEST_F(DeduceTest, Example9AfterUserAssertsStatus) {
  // "Assume that the users assure that the true value of status is
  // retired" — extend E2 and the cascade resolves everything:
  // (George, retired, n/a?, 2, NY, 212, 12404, Accord). In the paper the
  // user tuple's job is deduced via ϕ5 from tuple r5, giving veteran for
  // job (Example 6) — our extension matches Example 6's reading.
  Specification se = GeorgeSpec();
  PartialTemporalOrder ot;
  // t_o carries status=retired and dominates all tuples on status.
  Tuple to(std::vector<Value>(schema_.size(), Value::Null()));
  to[schema_.IndexOf("status")] = Value::Str("retired");
  ot.new_tuples.push_back(to);
  for (int t = 0; t < 3; ++t) {
    ot.orders.emplace_back(schema_.IndexOf("status"), t, 3);
  }
  auto extended = Extend(se, ot);
  ASSERT_TRUE(extended.ok());
  const std::vector<Value> truth = DeduceTruth(*extended);
  EXPECT_EQ(truth[schema_.IndexOf("status")], Value::Str("retired"));
  EXPECT_EQ(truth[schema_.IndexOf("job")], Value::Str("veteran"));
  EXPECT_EQ(truth[schema_.IndexOf("AC")], Value::Int(212));
  EXPECT_EQ(truth[schema_.IndexOf("zip")], Value::Str("12404"));
  EXPECT_EQ(truth[schema_.IndexOf("city")], Value::Str("NY"));
  EXPECT_EQ(truth[schema_.IndexOf("county")], Value::Str("Accord"));
  EXPECT_EQ(truth[schema_.IndexOf("kids")], Value::Int(2));
}

TEST_F(DeduceTest, NaiveDeduceAgreesOnEdith) {
  const auto fast = DeduceTruth(EdithSpec(), /*naive=*/false);
  const auto naive = DeduceTruth(EdithSpec(), /*naive=*/true);
  EXPECT_EQ(fast, naive);
}

TEST_F(DeduceTest, NaiveDeduceAgreesOnGeorge) {
  const auto fast = DeduceTruth(GeorgeSpec(), /*naive=*/false);
  const auto naive = DeduceTruth(GeorgeSpec(), /*naive=*/true);
  EXPECT_EQ(fast, naive);
}

TEST_F(DeduceTest, NaiveSupersetOfUnitPropagation) {
  // NaiveDeduce is complete (Lemma 6); DeduceOrder is a sound heuristic:
  // every positive order deduced by unit propagation must also be found
  // by the naive method.
  const Specification se = GeorgeSpec();
  auto inst = Instantiation::Build(se);
  ASSERT_TRUE(inst.ok());
  const sat::Cnf phi = BuildCnf(*inst);
  DeduceOptions strict;
  strict.paper_negative_units = false;  // only proven positives
  const DeducedOrders fast = DeduceOrder(*inst, phi, strict);
  const DeducedOrders naive = NaiveDeduce(*inst, phi);
  for (int a = 0; a < inst->varmap.num_attrs(); ++a) {
    for (const auto& [u, v] : fast.per_attr[a].Pairs()) {
      EXPECT_TRUE(naive.per_attr[a].Less(u, v))
          << "attr " << a << ": " << u << " < " << v;
    }
  }
}

TEST_F(DeduceTest, CandidateValuesExcludeDominated) {
  const Specification se = GeorgeSpec();
  auto inst = Instantiation::Build(se);
  ASSERT_TRUE(inst.ok());
  const sat::Cnf phi = BuildCnf(*inst);
  const DeducedOrders od = DeduceOrder(*inst, phi);
  const auto candidates = CandidateValues(inst->varmap, od);
  const int status = schema_.IndexOf("status");
  // "working" is dominated by "retired"; candidates are retired and
  // unemployed (Example 12: V(status) = {retired, unemployed}).
  const VarMap& vm = inst->varmap;
  std::vector<Value> cand_values;
  for (int i : candidates[status]) {
    cand_values.push_back(vm.domain(status)[i]);
  }
  EXPECT_EQ(cand_values.size(), 2u);
  EXPECT_NE(std::find(cand_values.begin(), cand_values.end(),
                      Value::Str("retired")),
            cand_values.end());
  EXPECT_NE(std::find(cand_values.begin(), cand_values.end(),
                      Value::Str("unemployed")),
            cand_values.end());
}

TEST_F(DeduceTest, EmptyDomainHasNoTrueValue) {
  Schema schema = Schema::Make({"a", "b"}).value();
  EntityInstance inst(schema, "e");
  ASSERT_TRUE(inst.Add(Tuple({Value::Null(), Value::Int(1)})).ok());
  Specification se;
  se.temporal = TemporalInstance(std::move(inst));
  auto ground = Instantiation::Build(se);
  ASSERT_TRUE(ground.ok());
  const sat::Cnf phi = BuildCnf(*ground);
  const DeducedOrders od = DeduceOrder(*ground, phi);
  const auto idx = ExtractTrueValueIndices(ground->varmap, od);
  EXPECT_EQ(idx[0], -1);  // all-null attribute
  EXPECT_EQ(idx[1], 0);   // singleton domain resolves trivially
}

TEST_F(DeduceTest, PaperNegativeUnitModeAddsReversedOrders) {
  // Craft a formula where only a negative unit is derivable: with the
  // asymmetry axiom, x_ab forces ¬x_ba; both modes agree there. Check the
  // mode flag is wired by confirming strict mode never exceeds paper mode.
  const Specification se = EdithSpec();
  auto inst = Instantiation::Build(se);
  ASSERT_TRUE(inst.ok());
  const sat::Cnf phi = BuildCnf(*inst);
  DeduceOptions paper_mode;
  paper_mode.paper_negative_units = true;
  DeduceOptions strict;
  strict.paper_negative_units = false;
  const int paper_pairs = DeduceOrder(*inst, phi, paper_mode).CountPairs();
  const int strict_pairs = DeduceOrder(*inst, phi, strict).CountPairs();
  EXPECT_GE(paper_pairs, strict_pairs);
}

TEST_F(DeduceTest, DeduceCountsPairs) {
  const Specification se = EdithSpec();
  auto inst = Instantiation::Build(se);
  ASSERT_TRUE(inst.ok());
  const sat::Cnf phi = BuildCnf(*inst);
  const DeducedOrders od = DeduceOrder(*inst, phi);
  EXPECT_GT(od.CountPairs(), 0);
}

}  // namespace
}  // namespace ccr
