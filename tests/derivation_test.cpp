// Tests for TrueDer and CompGraph (§V-C.1), against Example 10 (derivation
// rules for George) and Example 11 (the compatibility graph of Fig. 6).

#include <gtest/gtest.h>

#include <algorithm>

#include "paper_fixture.h"
#include "src/core/derivation.h"
#include "src/encode/cnf_builder.h"

namespace ccr {
namespace {

using testing::GeorgeSpec;
using testing::PaperSchema;

class DerivationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    se_ = GeorgeSpec();
    auto inst = Instantiation::Build(se_);
    ASSERT_TRUE(inst.ok());
    inst_ = std::move(inst).value();
    phi_ = BuildCnf(inst_);
    od_ = DeduceOrder(inst_, phi_);
    known_ = ExtractTrueValueIndices(inst_.varmap, od_);
    candidates_ = CandidateValues(inst_.varmap, od_);
    rules_ = TrueDer(inst_, candidates_, known_);
  }

  // Finds a rule with the given premise/consequent (by value), or -1.
  int FindRule(const std::vector<std::pair<std::string, Value>>& lhs,
               const std::string& rhs_attr, const Value& rhs_value) const {
    const Schema schema = PaperSchema();
    const VarMap& vm = inst_.varmap;
    for (size_t i = 0; i < rules_.size(); ++i) {
      const DerivationRule& r = rules_[i];
      if (schema.name(r.rhs_attr) != rhs_attr) continue;
      if (!(vm.domain(r.rhs_attr)[r.rhs_value] == rhs_value)) continue;
      if (r.lhs.size() != lhs.size()) continue;
      bool all = true;
      for (const auto& [name, value] : lhs) {
        const int attr = schema.IndexOf(name);
        bool found = false;
        for (const auto& [rattr, rvalue] : r.lhs) {
          if (rattr == attr && vm.domain(rattr)[rvalue] == value) {
            found = true;
          }
        }
        all = all && found;
      }
      if (all) return static_cast<int>(i);
    }
    return -1;
  }

  Specification se_;
  Instantiation inst_;
  sat::Cnf phi_;
  DeducedOrders od_;
  std::vector<int> known_;
  std::vector<std::vector<int>> candidates_;
  std::vector<DerivationRule> rules_;
};

TEST_F(DerivationTest, Example10RulesArePresent) {
  // n1: ({status}, {retired}) -> (job, veteran)
  EXPECT_GE(FindRule({{"status", Value::Str("retired")}}, "job",
                     Value::Str("veteran")),
            0);
  // n2: ({status}, {retired}) -> (AC, 212)
  EXPECT_GE(
      FindRule({{"status", Value::Str("retired")}}, "AC", Value::Int(212)),
      0);
  // n3: ({status}, {retired}) -> (zip, 12404)
  EXPECT_GE(FindRule({{"status", Value::Str("retired")}}, "zip",
                     Value::Str("12404")),
            0);
  // n4: ({city, zip}, {NY, 12404}) -> (county, Accord)
  EXPECT_GE(FindRule({{"city", Value::Str("NY")},
                      {"zip", Value::Str("12404")}},
                     "county", Value::Str("Accord")),
            0);
  // n5: ({AC}, {212}) -> (city, NY)   [from CFD ψ2]
  EXPECT_GE(
      FindRule({{"AC", Value::Int(212)}}, "city", Value::Str("NY")), 0);
  // n6: ({status}, {unemployed}) -> (job, n/a)
  EXPECT_GE(FindRule({{"status", Value::Str("unemployed")}}, "job",
                     Value::Str("n/a")),
            0);
  // n7: ({status}, {unemployed}) -> (AC, 312)
  EXPECT_GE(FindRule({{"status", Value::Str("unemployed")}}, "AC",
                     Value::Int(312)),
            0);
  // n8: ({status}, {unemployed}) -> (zip, 60653)
  EXPECT_GE(FindRule({{"status", Value::Str("unemployed")}}, "zip",
                     Value::Str("60653")),
            0);
  // n9: ({city, zip}, {Chicago, 60653}) -> (county, Bronzeville)
  EXPECT_GE(FindRule({{"city", Value::Str("Chicago")},
                      {"zip", Value::Str("60653")}},
                     "county", Value::Str("Bronzeville")),
            0);
}

TEST_F(DerivationTest, NoRulesForKnownAttributes) {
  // name and kids are already resolved (Example 3); no rule may target
  // them.
  const Schema schema = PaperSchema();
  for (const DerivationRule& r : rules_) {
    EXPECT_NE(schema.name(r.rhs_attr), "name");
    EXPECT_NE(schema.name(r.rhs_attr), "kids");
  }
}

TEST_F(DerivationTest, PremisesAreCandidates) {
  // Rule premises must be candidate (or known) true values — never values
  // that are already dominated.
  for (const DerivationRule& r : rules_) {
    for (const auto& [attr, v] : r.lhs) {
      if (known_[attr] >= 0) {
        EXPECT_EQ(known_[attr], v);
      } else {
        const auto& cands = candidates_[attr];
        EXPECT_NE(std::find(cands.begin(), cands.end(), v), cands.end());
      }
    }
  }
}

TEST_F(DerivationTest, Example11CompatibilityEdges) {
  const graph::Graph g = CompGraph(rules_);
  const int n1 = FindRule({{"status", Value::Str("retired")}}, "job",
                          Value::Str("veteran"));
  const int n2 = FindRule({{"status", Value::Str("retired")}}, "AC",
                          Value::Int(212));
  const int n5 =
      FindRule({{"AC", Value::Int(212)}}, "city", Value::Str("NY"));
  const int n7 = FindRule({{"status", Value::Str("unemployed")}}, "AC",
                          Value::Int(312));
  ASSERT_GE(n1, 0);
  ASSERT_GE(n2, 0);
  ASSERT_GE(n5, 0);
  ASSERT_GE(n7, 0);
  // Edge (n1, n2): same status premise, different consequents.
  EXPECT_TRUE(g.HasEdge(n1, n2));
  // Edge (n2, n5): n2 concludes AC=212, n5 premises AC=212 — compatible.
  EXPECT_TRUE(g.HasEdge(n2, n5));
  // No edge (n5, n7): AC values differ (212 vs 312) — Example 11.
  EXPECT_FALSE(g.HasEdge(n5, n7));
  // No edge (n2, n7): both conclude AC.
  EXPECT_FALSE(g.HasEdge(n2, n7));
}

TEST_F(DerivationTest, RuleToStringIsReadable) {
  ASSERT_FALSE(rules_.empty());
  const std::string s =
      rules_[0].ToString(inst_.varmap, PaperSchema());
  EXPECT_NE(s.find("->"), std::string::npos);
}

TEST_F(DerivationTest, KnownTrueValuesRestrictCfdRules) {
  // Pin city = Chicago as known; the CFD rule for city = NY must vanish.
  std::vector<int> known = known_;
  const int city = PaperSchema().IndexOf("city");
  known[city] =
      inst_.varmap.ValueIndex(city, Value::Str("Chicago"));
  const auto rules = TrueDer(inst_, candidates_, known);
  for (const DerivationRule& r : rules) {
    EXPECT_NE(r.rhs_attr, city);
  }
}

}  // namespace
}  // namespace ccr
