// Deterministic-seed regression tests for the synthetic data generators.
//
// Future parallelization work (sharded generation, async pipelines) must
// keep a generator a pure function of its options: identical seeds produce
// byte-identical corpora, on every run and regardless of scheduling. These
// tests pin that contract by fingerprinting entire datasets.

#include <string>

#include "gtest/gtest.h"
#include "src/data/career_generator.h"
#include "src/data/dataset.h"
#include "src/data/nba_generator.h"
#include "src/data/person_generator.h"

namespace ccr {
namespace {

// Serializes everything observable about a dataset: constraints (rendered
// against the schema), every tuple of every entity, and the ground truth.
std::string Fingerprint(const Dataset& ds) {
  std::string out = ds.name + "\n";
  for (const auto& cc : ds.sigma) out += cc.ToString(ds.schema) + "\n";
  for (const auto& cfd : ds.gamma) out += cfd.ToString(ds.schema) + "\n";
  for (const auto& e : ds.entities) {
    out += "entity " + e.instance.entity_id() + "\n";
    for (const auto& t : e.instance.tuples()) {
      out += t.ToString(ds.schema) + "\n";
    }
    out += "truth:";
    for (const auto& v : e.truth) {
      out += " " + v.ToString();
    }
    out += "\n";
  }
  return out;
}

TEST(DeterminismTest, PersonSameSeedSameCorpus) {
  PersonOptions opts;
  opts.num_entities = 20;
  EXPECT_EQ(Fingerprint(GeneratePerson(opts)),
            Fingerprint(GeneratePerson(opts)));
}

TEST(DeterminismTest, PersonDifferentSeedDifferentCorpus) {
  PersonOptions a;
  a.num_entities = 20;
  PersonOptions b = a;
  b.seed = a.seed + 1;
  EXPECT_NE(Fingerprint(GeneratePerson(a)), Fingerprint(GeneratePerson(b)));
}

TEST(DeterminismTest, NbaSameSeedSameCorpus) {
  NbaOptions opts;
  opts.num_entities = 20;
  EXPECT_EQ(Fingerprint(GenerateNba(opts)), Fingerprint(GenerateNba(opts)));
}

TEST(DeterminismTest, NbaDifferentSeedDifferentCorpus) {
  NbaOptions a;
  a.num_entities = 20;
  NbaOptions b = a;
  b.seed = a.seed + 1;
  EXPECT_NE(Fingerprint(GenerateNba(a)), Fingerprint(GenerateNba(b)));
}

TEST(DeterminismTest, CareerSameSeedSameCorpus) {
  CareerOptions opts;
  opts.num_entities = 20;
  EXPECT_EQ(Fingerprint(GenerateCareer(opts)),
            Fingerprint(GenerateCareer(opts)));
}

TEST(DeterminismTest, CareerDifferentSeedDifferentCorpus) {
  CareerOptions a;
  a.num_entities = 20;
  CareerOptions b = a;
  b.seed = a.seed + 1;
  EXPECT_NE(Fingerprint(GenerateCareer(a)), Fingerprint(GenerateCareer(b)));
}

// MakeSpec's subset selection must likewise be pure in its seed — the
// Fig. 8(f)-(p) sweeps depend on comparable subsets across runs.
TEST(DeterminismTest, MakeSpecSubsetIsSeedDeterministic) {
  PersonOptions opts;
  opts.num_entities = 3;
  const Dataset ds = GeneratePerson(opts);
  const Specification s1 = ds.MakeSpec(0, 0.5, 0.5, /*subset_seed=*/9);
  const Specification s2 = ds.MakeSpec(0, 0.5, 0.5, /*subset_seed=*/9);
  EXPECT_EQ(s1.ToString(), s2.ToString());
}

}  // namespace
}  // namespace ccr
