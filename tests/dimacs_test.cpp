// Round-trip and malformed-input coverage for the DIMACS CNF codec
// (src/sat/dimacs.cc).

#include "src/sat/dimacs.h"

#include <string>

#include "gtest/gtest.h"
#include "src/sat/cnf.h"
#include "src/sat/literal.h"

namespace ccr::sat {
namespace {

// Two Cnf instances are equal iff they agree on the variable universe and
// on every clause's literal sequence.
void ExpectCnfEq(const Cnf& a, const Cnf& b) {
  ASSERT_EQ(a.num_vars(), b.num_vars());
  ASSERT_EQ(a.num_clauses(), b.num_clauses());
  for (int i = 0; i < a.num_clauses(); ++i) {
    auto ca = a.clause(i);
    auto cb = b.clause(i);
    ASSERT_EQ(ca.size(), cb.size()) << "clause " << i;
    for (size_t j = 0; j < ca.size(); ++j) {
      EXPECT_EQ(ca[j], cb[j]) << "clause " << i << " literal " << j;
    }
  }
}

TEST(DimacsTest, EmitsHeaderAndClauses) {
  Cnf cnf;
  cnf.EnsureVars(3);
  cnf.AddBinary(Lit::Pos(0), Lit::Neg(1));
  cnf.AddUnit(Lit::Pos(2));

  EXPECT_EQ(ToDimacs(cnf), "p cnf 3 2\n1 -2 0\n3 0\n");
}

TEST(DimacsTest, ParseEmitParseRoundTrip) {
  const std::string text =
      "c a comment line\n"
      "p cnf 4 3\n"
      "1 -2 3 0\n"
      "-1 4 0\n"
      "2 0\n";

  auto first = FromDimacs(text);
  ASSERT_TRUE(first.ok()) << first.status().ToString();

  const std::string emitted = ToDimacs(*first);
  auto second = FromDimacs(emitted);
  ASSERT_TRUE(second.ok()) << second.status().ToString();

  ExpectCnfEq(*first, *second);
  // Emission is canonical, so a second emit must be byte-identical.
  EXPECT_EQ(emitted, ToDimacs(*second));
}

TEST(DimacsTest, RoundTripsGeneratedFormula) {
  Cnf cnf;
  for (int v = 0; v < 16; ++v) cnf.NewVar();
  for (int i = 0; i < 40; ++i) {
    // Deterministic pseudo-clauses with mixed arity and signs.
    const Var a = static_cast<Var>(i % 16);
    const Var b = static_cast<Var>((i * 5 + 3) % 16);
    const Var c = static_cast<Var>((i * 11 + 7) % 16);
    cnf.AddTernary(Lit(a, i % 2 == 0), Lit(b, i % 3 == 0), Lit(c, i % 5 == 0));
  }
  cnf.AddClause({});  // empty clauses must survive the trip too

  auto parsed = FromDimacs(ToDimacs(cnf));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ExpectCnfEq(cnf, *parsed);
}

TEST(DimacsTest, ToleratesMissingHeaderAndComments) {
  auto parsed = FromDimacs("c no header here\n1 2 0\n-2 0\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->num_clauses(), 2);
  // Without a header the universe grows to cover the literals seen.
  EXPECT_EQ(parsed->num_vars(), 2);
  EXPECT_EQ(parsed->clause(0)[0], Lit::Pos(0));
  EXPECT_EQ(parsed->clause(1)[0], Lit::Neg(1));
}

TEST(DimacsTest, RejectsUnterminatedClause) {
  auto parsed = FromDimacs("p cnf 3 1\n1 2 3\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

TEST(DimacsTest, EmptyInputIsEmptyFormula) {
  auto parsed = FromDimacs("");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->num_vars(), 0);
  EXPECT_EQ(parsed->num_clauses(), 0);
}

}  // namespace
}  // namespace ccr::sat
