// Tests for src/encode: VarMap, Instantiation (Ω(Se)), CNF builder (Φ(Se)).

#include <gtest/gtest.h>

#include <algorithm>

#include "paper_fixture.h"
#include "src/core/deduce.h"
#include "src/encode/cnf_builder.h"
#include "src/encode/instantiation.h"
#include "src/sat/solver.h"

namespace ccr {
namespace {

using testing::EdithSpec;
using testing::GeorgeSpec;
using testing::PaperSchema;

class VarMapTest : public ::testing::Test {
 protected:
  Specification se_ = EdithSpec();
  VarMap vm_ = VarMap::Build(se_);
  int status_ = PaperSchema().IndexOf("status");
  int city_ = PaperSchema().IndexOf("city");
  int kids_ = PaperSchema().IndexOf("kids");
  int ac_ = PaperSchema().IndexOf("AC");
};

TEST_F(VarMapTest, DomainsMatchActiveDomains) {
  EXPECT_EQ(vm_.domain(status_).size(), 3u);  // working, retired, deceased
  EXPECT_EQ(vm_.domain(kids_).size(), 2u);    // 0, 3 (null excluded)
  EXPECT_EQ(vm_.active_domain_size(status_), 3);
}

TEST_F(VarMapTest, CfdConstantsAreIncludedWhenReachable) {
  // ψ1/ψ2 RHS cities LA and NY are already in adom(city); domain stays 3.
  EXPECT_EQ(vm_.domain(city_).size(), 3u);
  EXPECT_EQ(vm_.ValueIndex(city_, Value::Str("LA")), 2);
  // Both CFDs are applicable: 213 and 212 appear in adom(AC).
  EXPECT_EQ(vm_.applicable_cfds().size(), 2u);
}

TEST_F(VarMapTest, UnreachableCfdIsPruned) {
  Specification se = EdithSpec();
  auto extra = ParseCfd(PaperSchema(), "AC = 999 -> city = 'Nowhere'");
  ASSERT_TRUE(extra.ok());
  se.gamma.push_back(std::move(extra).value());
  const VarMap vm = VarMap::Build(se);
  // AC 999 never occurs: the CFD can never fire, its RHS constant must not
  // pollute the city domain.
  EXPECT_EQ(vm.domain(city_).size(), 3u);
  EXPECT_EQ(vm.ValueIndex(city_, Value::Str("Nowhere")), -1);
  EXPECT_EQ(vm.applicable_cfds().size(), 2u);
}

TEST_F(VarMapTest, ReachableCfdConstantExtendsDomain) {
  Specification se = EdithSpec();
  auto extra = ParseCfd(PaperSchema(), "AC = 213 -> county = 'LA County'");
  ASSERT_TRUE(extra.ok());
  se.gamma.push_back(std::move(extra).value());
  const VarMap vm = VarMap::Build(se);
  const int county = PaperSchema().IndexOf("county");
  EXPECT_EQ(vm.domain(county).size(), 4u);  // 3 adom + introduced constant
  EXPECT_GE(vm.ValueIndex(county, Value::Str("LA County")), 0);
  EXPECT_EQ(vm.active_domain_size(county), 3);
}

TEST_F(VarMapTest, CfdChainingFixpoint) {
  // A CFD whose LHS constant is only *introduced* by another CFD must
  // still be applicable (fixpoint, not single pass).
  Specification se = EdithSpec();
  auto c1 = ParseCfd(PaperSchema(), "AC = 213 -> county = 'LA County'");
  auto c2 = ParseCfd(PaperSchema(), "county = 'LA County' -> zip = '90001'");
  ASSERT_TRUE(c1.ok() && c2.ok());
  se.gamma.push_back(std::move(c1).value());
  se.gamma.push_back(std::move(c2).value());
  const VarMap vm = VarMap::Build(se);
  const int zip = PaperSchema().IndexOf("zip");
  EXPECT_GE(vm.ValueIndex(zip, Value::Str("90001")), 0);
  EXPECT_EQ(vm.applicable_cfds().size(), 4u);
}

TEST_F(VarMapTest, VarOfDecodeRoundTrip) {
  for (int a = 0; a < vm_.num_attrs(); ++a) {
    const int d = static_cast<int>(vm_.domain(a).size());
    for (int i = 0; i < d; ++i) {
      for (int j = 0; j < d; ++j) {
        if (i == j) continue;
        const sat::Var v = vm_.VarOf(a, i, j);
        ASSERT_GE(v, 0);
        ASSERT_LT(v, vm_.num_vars());
        const OrderAtom atom = vm_.Decode(v);
        EXPECT_EQ(atom.attr, a);
        EXPECT_EQ(atom.less, i);
        EXPECT_EQ(atom.more, j);
      }
    }
  }
}

TEST_F(VarMapTest, DistinctAtomsGetDistinctVars) {
  std::vector<sat::Var> vars;
  for (int a = 0; a < vm_.num_attrs(); ++a) {
    const int d = static_cast<int>(vm_.domain(a).size());
    for (int i = 0; i < d; ++i) {
      for (int j = 0; j < d; ++j) {
        if (i != j) vars.push_back(vm_.VarOf(a, i, j));
      }
    }
  }
  std::sort(vars.begin(), vars.end());
  EXPECT_EQ(std::adjacent_find(vars.begin(), vars.end()), vars.end());
}

class InstantiationTest : public ::testing::Test {
 protected:
  static int CountBySource(const Instantiation& inst, GroundSource src) {
    int n = 0;
    for (const auto& gc : inst.constraints) n += (gc.source == src) ? 1 : 0;
    return n;
  }
};

TEST_F(InstantiationTest, EdithGroundsTheExampleConstraints) {
  const Specification se = EdithSpec();
  auto inst = Instantiation::Build(se);
  ASSERT_TRUE(inst.ok());
  // Example 7: ϕ1 on (r1, r2) yields (true -> working ≺ retired): an
  // unconditional currency-constraint instance.
  const VarMap& vm = inst->varmap;
  const int status = PaperSchema().IndexOf("status");
  const int working = vm.ValueIndex(status, Value::Str("working"));
  const int retired = vm.ValueIndex(status, Value::Str("retired"));
  bool found_unconditional = false;
  for (const auto& gc : inst->constraints) {
    if (gc.source == GroundSource::kCurrencyConstraint && gc.body.empty() &&
        gc.head_kind == GroundHead::kAtom && gc.head.attr == status &&
        gc.head.less == working && gc.head.more == retired) {
      found_unconditional = true;
    }
  }
  EXPECT_TRUE(found_unconditional);
}

TEST_F(InstantiationTest, Example8CfdEncoding) {
  // ψ1 for Edith: two instance constraints
  //   212 ≺ 213 & 415 ≺ 213 -> NY ≺ LA  and  ... -> SFC ≺ LA.
  const Specification se = EdithSpec();
  auto inst = Instantiation::Build(se);
  ASSERT_TRUE(inst.ok());
  const VarMap& vm = inst->varmap;
  const int city = PaperSchema().IndexOf("city");
  const int ac = PaperSchema().IndexOf("AC");
  const int la = vm.ValueIndex(city, Value::Str("LA"));
  int cfd_heads_to_la = 0;
  for (const auto& gc : inst->constraints) {
    if (gc.source != GroundSource::kCfd) continue;
    if (gc.head.attr == city && gc.head.more == la) {
      ++cfd_heads_to_la;
      // Body: both other AC values dominated by 213.
      EXPECT_EQ(gc.body.size(), 2u);
      for (const auto& atom : gc.body) {
        EXPECT_EQ(atom.attr, ac);
        EXPECT_EQ(vm.domain(ac)[atom.more], Value::Int(213));
      }
    }
  }
  EXPECT_EQ(cfd_heads_to_la, 2);  // NY ≺ LA and SFC ≺ LA variants
}

TEST_F(InstantiationTest, OrderPredicateGrounding) {
  // ϕ6 on (r1, r2): working ≺ retired -> 212 ≺ 415 (Example 7).
  const Specification se = EdithSpec();
  auto inst = Instantiation::Build(se);
  ASSERT_TRUE(inst.ok());
  const VarMap& vm = inst->varmap;
  const int status = PaperSchema().IndexOf("status");
  const int ac = PaperSchema().IndexOf("AC");
  const int working = vm.ValueIndex(status, Value::Str("working"));
  const int retired = vm.ValueIndex(status, Value::Str("retired"));
  const int ac212 = vm.ValueIndex(ac, Value::Int(212));
  const int ac415 = vm.ValueIndex(ac, Value::Int(415));
  bool found = false;
  for (const auto& gc : inst->constraints) {
    if (gc.source != GroundSource::kCurrencyConstraint) continue;
    if (gc.body.size() == 1 && gc.body[0].attr == status &&
        gc.body[0].less == working && gc.body[0].more == retired &&
        gc.head_kind == GroundHead::kAtom && gc.head.attr == ac &&
        gc.head.less == ac212 && gc.head.more == ac415) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(InstantiationTest, NullHeadsAreVacuous) {
  // ϕ4 with t1 = r3 (kids null): null < 0 and null < 3 hold, but the head
  // r3 ≺kids rX carries no value-level content (null is not in the
  // domain). No ground constraint may mention a null.
  const Specification se = EdithSpec();
  auto inst = Instantiation::Build(se);
  ASSERT_TRUE(inst.ok());
  const VarMap& vm = inst->varmap;
  for (const auto& gc : inst->constraints) {
    for (const auto& atom : gc.body) {
      EXPECT_GE(atom.less, 0);
      EXPECT_LT(atom.less, static_cast<int>(vm.domain(atom.attr).size()));
    }
    if (gc.head_kind == GroundHead::kAtom) {
      EXPECT_GE(gc.head.less, 0);
      EXPECT_NE(gc.head.less, gc.head.more);
    }
  }
}

TEST_F(InstantiationTest, TupleProjectionDeduplication) {
  // Duplicating tuples must not change the number of currency-constraint
  // instances (grounding is over distinct projections).
  Specification se = EdithSpec();
  auto base = Instantiation::Build(se);
  ASSERT_TRUE(base.ok());
  const int base_count =
      CountBySource(*base, GroundSource::kCurrencyConstraint);

  Specification dup = EdithSpec();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        dup.temporal.AddTuple(dup.instance().tuple(i)).ok());
  }
  auto dupped = Instantiation::Build(dup);
  ASSERT_TRUE(dupped.ok());
  EXPECT_EQ(CountBySource(*dupped, GroundSource::kCurrencyConstraint),
            base_count);
}

TEST_F(InstantiationTest, CurrencyOrdersBecomeUnitConstraints) {
  Specification se = EdithSpec();
  // Explicit temporal information: r1 ≺city r2.
  ASSERT_TRUE(se.temporal.AddOrder(PaperSchema().IndexOf("city"), 0, 1).ok());
  auto inst = Instantiation::Build(se);
  ASSERT_TRUE(inst.ok());
  int order_units = 0;
  for (const auto& gc : inst->constraints) {
    if (gc.source == GroundSource::kCurrencyOrder) {
      EXPECT_TRUE(gc.body.empty());
      ++order_units;
    }
  }
  EXPECT_EQ(order_units, 1);
}

TEST(CnfBuilderTest, StructuralAxiomCounts) {
  const Specification se = EdithSpec();
  auto inst = Instantiation::Build(se);
  ASSERT_TRUE(inst.ok());
  const VarMap& vm = inst->varmap;

  const sat::Cnf with_axioms = BuildCnf(*inst);
  CnfBuildOptions no_axioms;
  no_axioms.transitivity = false;
  no_axioms.asymmetry = false;
  const sat::Cnf bare = BuildCnf(*inst, no_axioms);

  int64_t expected_extra = 0;
  for (int a = 0; a < vm.num_attrs(); ++a) {
    const int64_t d = static_cast<int64_t>(vm.domain(a).size());
    expected_extra += d * (d - 1) / 2;            // asymmetry
    expected_extra += d * (d - 1) * (d - 2);      // transitivity
  }
  EXPECT_EQ(with_axioms.num_clauses() - bare.num_clauses(), expected_extra);
  EXPECT_EQ(bare.num_clauses(),
            static_cast<int>(inst->constraints.size()));
  EXPECT_EQ(with_axioms.num_vars(), vm.num_vars());
}

TEST(CnfBuilderTest, NullHeadSemantics) {
  // A rule whose head orders a value before a null (the more-current
  // tuple's email is missing): vacuous by default, a contradiction under
  // strict null semantics (see InstantiationOptions::strict_null_order).
  Schema schema = Schema::Make({"status", "email"}).value();
  EntityInstance inst(schema, "e");
  ASSERT_TRUE(inst.Add(Tuple({Value::Str("working"), Value::Str("a@x")})).ok());
  ASSERT_TRUE(inst.Add(Tuple({Value::Str("retired"), Value::Null()})).ok());
  Specification se;
  se.temporal = TemporalInstance(std::move(inst));
  auto phi = ParseCurrencyConstraint(
      schema, "t1[status] = 'working' & t2[status] = 'retired' -> email");
  ASSERT_TRUE(phi.ok());
  se.sigma.push_back(std::move(phi).value());

  // Default (operational) semantics: the rule is dropped, Se stays valid.
  auto ground = Instantiation::Build(se);
  ASSERT_TRUE(ground.ok());
  for (const auto& gc : ground->constraints) {
    EXPECT_NE(gc.head_kind, GroundHead::kFalse);
  }
  {
    sat::Solver solver;
    solver.AddCnf(BuildCnf(*ground));
    EXPECT_EQ(solver.Solve(), sat::SolveResult::kSat);
  }

  // Strict semantics: (body -> false); here the body is empty after the
  // comparisons evaluate, so Φ(Se) contains the empty clause.
  InstantiationOptions strict;
  strict.strict_null_order = true;
  auto strict_ground = Instantiation::Build(se, strict);
  ASSERT_TRUE(strict_ground.ok());
  bool found_false_head = false;
  for (const auto& gc : strict_ground->constraints) {
    if (gc.head_kind == GroundHead::kFalse) found_false_head = true;
  }
  EXPECT_TRUE(found_false_head);
  sat::Solver solver;
  solver.AddCnf(BuildCnf(*strict_ground));
  EXPECT_EQ(solver.Solve(), sat::SolveResult::kUnsat);
}

// --- guarded CFD grounding ----------------------------------------------

// Two-attribute spec with CFD A=a1 -> B=b1 over two tuples.
Specification GuardSpec() {
  Schema schema = Schema::Make({"A", "B"}).value();
  EntityInstance e(schema, "guard-entity");
  EXPECT_TRUE(e.Add(Tuple({Value::Str("a1"), Value::Str("b1")})).ok());
  EXPECT_TRUE(e.Add(Tuple({Value::Str("a2"), Value::Str("b2")})).ok());
  Specification se;
  se.temporal = TemporalInstance(std::move(e));
  se.gamma.emplace_back(
      std::vector<std::pair<int, Value>>{{0, Value::Str("a1")}}, 1,
      Value::Str("b1"));
  return se;
}

TEST(GuardedGroundingTest, CfdClausesCarryGuardLiterals) {
  InstantiationOptions guarded;
  guarded.guard_cfds = true;
  auto inst = Instantiation::Build(GuardSpec(), guarded);
  ASSERT_TRUE(inst.ok());
  ASSERT_EQ(inst->guard_assumptions().size(), 1u);
  const sat::Lit guard = inst->guard_assumptions()[0];
  EXPECT_FALSE(inst->varmap.IsOrderVar(guard.var()));

  int guarded_cfd_rules = 0;
  for (const GroundConstraint& gc : inst->constraints) {
    if (gc.source == GroundSource::kCfd) {
      EXPECT_EQ(gc.guard, guard.var());
      ++guarded_cfd_rules;
    } else {
      EXPECT_EQ(gc.guard, sat::kVarUndef);
    }
  }
  EXPECT_GT(guarded_cfd_rules, 0);

  // The guarded CNF widens exactly the CFD clauses by one literal.
  const sat::Cnf guarded_cnf = BuildCnf(*inst);
  auto plain_inst = Instantiation::Build(GuardSpec());
  ASSERT_TRUE(plain_inst.ok());
  const sat::Cnf plain_cnf = BuildCnf(*plain_inst);
  EXPECT_EQ(guarded_cnf.num_clauses(), plain_cnf.num_clauses());
  EXPECT_EQ(guarded_cnf.num_literals(),
            plain_cnf.num_literals() + guarded_cfd_rules);
}

TEST(GuardedGroundingTest, LhsGrowthRetiresAndRegrounds) {
  InstantiationOptions guarded;
  guarded.guard_cfds = true;
  auto inst = Instantiation::Build(GuardSpec(), guarded);
  ASSERT_TRUE(inst.ok());
  const sat::Lit old_guard = inst->guard_assumptions()[0];
  sat::Cnf cnf = BuildCnf(*inst);

  // New value in A — the CFD's LHS attribute.
  PartialTemporalOrder ot;
  ot.new_tuples.push_back(Tuple({Value::Str("a3"), Value::Null()}));
  ot.orders.emplace_back(0, 0, 2);
  ot.orders.emplace_back(0, 1, 2);
  auto next = Extend(GuardSpec(), ot);
  ASSERT_TRUE(next.ok());
  auto delta = inst->ExtendWith(*next, ot, guarded);
  ASSERT_TRUE(delta.ok());
  EXPECT_FALSE(delta->needs_rebuild);
  ASSERT_EQ(delta->retired_guards.size(), 1u);
  EXPECT_EQ(delta->retired_guards[0], old_guard.var());

  // A fresh guard replaced the retired one.
  ASSERT_EQ(inst->guard_assumptions().size(), 1u);
  const sat::Lit new_guard = inst->guard_assumptions()[0];
  EXPECT_NE(new_guard.var(), old_guard.var());

  // The re-grounded rules dominate the grown domain (one more body atom)
  // and carry the fresh guard; the stale rules keep the old one.
  int stale = 0, fresh_rules = 0;
  for (const GroundConstraint& gc : inst->constraints) {
    if (gc.source != GroundSource::kCfd) continue;
    if (gc.guard == old_guard.var()) {
      ++stale;
      EXPECT_EQ(gc.body.size(), 1u);  // dominated {a2} only
    } else {
      EXPECT_EQ(gc.guard, new_guard.var());
      ++fresh_rules;
      EXPECT_EQ(gc.body.size(), 2u);  // dominates {a2, a3}
    }
  }
  EXPECT_GT(stale, 0);
  EXPECT_GE(fresh_rules, stale);

  // Extending the CNF and seeding the active guard reproduces, literally,
  // what a from-scratch unguarded grounding of the extended spec deduces.
  ExtendCnf(*inst, *delta, &cnf);
  const DeducedOrders od_guarded =
      DeduceOrder(*inst, cnf, {}, inst->guard_assumptions());
  auto fresh = Instantiation::Build(*next);
  ASSERT_TRUE(fresh.ok());
  const sat::Cnf fresh_cnf = BuildCnf(*fresh);
  const DeducedOrders od_fresh = DeduceOrder(*fresh, fresh_cnf);
  EXPECT_EQ(od_guarded.CountPairs(), od_fresh.CountPairs());

  // And satisfiability under the active guard matches the rebuilt truth.
  sat::Solver guarded_solver;
  guarded_solver.AddCnf(cnf);
  const std::vector<sat::Lit>& assume = inst->guard_assumptions();
  EXPECT_EQ(guarded_solver.SolveWithAssumptions(
                std::span<const sat::Lit>(assume.data(), assume.size())),
            sat::SolveResult::kSat);
  sat::Solver fresh_solver;
  fresh_solver.AddCnf(fresh_cnf);
  EXPECT_EQ(fresh_solver.Solve(), sat::SolveResult::kSat);
}

TEST(GuardedGroundingTest, BuildIntoRecyclesArena) {
  // BuildInto on a warm Instantiation must be observably identical to a
  // fresh Build — same constraints, same domains, same var counts.
  Instantiation arena;
  for (int round = 0; round < 3; ++round) {
    const Specification se = round % 2 == 0 ? GuardSpec() : GeorgeSpec();
    ASSERT_TRUE(Instantiation::BuildInto(se, &arena).ok());
    auto fresh = Instantiation::Build(se);
    ASSERT_TRUE(fresh.ok());
    ASSERT_EQ(arena.constraints.size(), fresh->constraints.size());
    for (size_t i = 0; i < arena.constraints.size(); ++i) {
      EXPECT_EQ(arena.constraints[i].source, fresh->constraints[i].source);
      EXPECT_EQ(arena.constraints[i].body.size(),
                fresh->constraints[i].body.size());
      EXPECT_EQ(arena.constraints[i].seq, fresh->constraints[i].seq);
    }
    EXPECT_EQ(arena.varmap.num_vars(), fresh->varmap.num_vars());
    for (int a = 0; a < arena.varmap.num_attrs(); ++a) {
      EXPECT_EQ(arena.varmap.domain(a), fresh->varmap.domain(a));
    }
    EXPECT_EQ(BuildCnf(arena).num_clauses(), BuildCnf(*fresh).num_clauses());
    EXPECT_EQ(BuildCnf(arena).num_literals(),
              BuildCnf(*fresh).num_literals());
  }
}

}  // namespace
}  // namespace ccr
