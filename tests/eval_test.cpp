// Tests for src/eval: metrics, the Pick baseline and the experiment
// harness, including the paper's headline accuracy ordering
// (Σ+Γ > Σ-only > Γ-only > Pick).

#include <gtest/gtest.h>

#include "src/data/nba_generator.h"
#include "src/data/person_generator.h"
#include "src/eval/experiment.h"
#include "src/eval/pick.h"

namespace ccr {
namespace {

TEST(MetricsTest, PerfectScores) {
  AccuracyCounts c;
  c.deduced = 10;
  c.correct = 10;
  c.conflicts = 10;
  EXPECT_DOUBLE_EQ(c.Precision(), 1.0);
  EXPECT_DOUBLE_EQ(c.Recall(), 1.0);
  EXPECT_DOUBLE_EQ(c.F1(), 1.0);
}

TEST(MetricsTest, ZeroDenominators) {
  AccuracyCounts c;
  EXPECT_DOUBLE_EQ(c.Precision(), 0.0);
  EXPECT_DOUBLE_EQ(c.Recall(), 0.0);
  EXPECT_DOUBLE_EQ(c.F1(), 0.0);
}

TEST(MetricsTest, HarmonicMean) {
  AccuracyCounts c;
  c.deduced = 10;
  c.correct = 5;   // precision 0.5
  c.conflicts = 5; // recall 1.0
  EXPECT_NEAR(c.F1(), 2 * 0.5 * 1.0 / 1.5, 1e-12);
}

TEST(MetricsTest, AddPools) {
  AccuracyCounts a, b;
  a.deduced = 1;
  a.correct = 1;
  a.conflicts = 2;
  b.deduced = 3;
  b.correct = 2;
  b.conflicts = 4;
  a.Add(b);
  EXPECT_EQ(a.deduced, 4);
  EXPECT_EQ(a.correct, 3);
  EXPECT_EQ(a.conflicts, 6);
}

TEST(ScoreAssignmentTest, CountsOnlyConflictedAttrs) {
  Schema schema = Schema::Make({"const", "conflict"}).value();
  EntityInstance inst(schema, "e");
  ASSERT_TRUE(inst.Add(Tuple({Value::Int(1), Value::Str("a")})).ok());
  ASSERT_TRUE(inst.Add(Tuple({Value::Int(1), Value::Str("b")})).ok());
  const std::vector<Value> truth{Value::Int(1), Value::Str("b")};
  const std::vector<Value> guess{Value::Int(1), Value::Str("a")};
  const AccuracyCounts c =
      ScoreAssignment(inst, truth, guess, {true, true});
  EXPECT_EQ(c.conflicts, 1);
  EXPECT_EQ(c.deduced, 1);
  EXPECT_EQ(c.correct, 0);
}

TEST(ScoreAssignmentTest, UnresolvedHurtsRecallNotPrecision) {
  Schema schema = Schema::Make({"x"}).value();
  EntityInstance inst(schema, "e");
  ASSERT_TRUE(inst.Add(Tuple({Value::Str("a")})).ok());
  ASSERT_TRUE(inst.Add(Tuple({Value::Str("b")})).ok());
  const AccuracyCounts c = ScoreAssignment(
      inst, {Value::Str("b")}, {Value::Null()}, {false});
  EXPECT_EQ(c.conflicts, 1);
  EXPECT_EQ(c.deduced, 0);
  EXPECT_DOUBLE_EQ(c.Recall(), 0.0);
}

TEST(PickTest, UsesComparisonOnlyConstraints) {
  // kids is ordered by the comparison-only ϕ4, so favored Pick always
  // chooses the max; status has no comparison-only constraint, so Pick
  // guesses among all three values.
  PersonOptions opts;
  opts.num_entities = 20;
  const Dataset ds = GeneratePerson(opts);
  Rng rng(5);
  int kids_correct = 0, kids_total = 0;
  for (size_t i = 0; i < ds.entities.size(); ++i) {
    const Specification se = ds.MakeSpec(static_cast<int>(i));
    const PickResult pr = PickBaseline(se, &rng);
    const int kids = ds.schema.IndexOf("kids");
    if (ds.entities[i].instance.HasConflict(kids)) {
      ++kids_total;
      kids_correct +=
          (pr.values[kids] == ds.entities[i].truth[kids]) ? 1 : 0;
    }
  }
  ASSERT_GT(kids_total, 0);
  EXPECT_EQ(kids_correct, kids_total);  // favored Pick nails monotone kids
}

TEST(PickTest, ResolvesEveryNonNullAttr) {
  PersonOptions opts;
  opts.num_entities = 3;
  const Dataset ds = GeneratePerson(opts);
  Rng rng(6);
  const PickResult pr = PickBaseline(ds.MakeSpec(0), &rng);
  for (int a = 0; a < ds.schema.size(); ++a) {
    EXPECT_TRUE(pr.resolved[a]) << ds.schema.name(a);
  }
}

class ExperimentTest : public ::testing::Test {
 protected:
  static Dataset SmallPerson() {
    PersonOptions opts;
    opts.num_entities = 12;
    opts.min_tuples = 6;
    opts.max_tuples = 20;
    return GeneratePerson(opts);
  }
};

TEST_F(ExperimentTest, AccuracyImprovesWithRounds) {
  const Dataset ds = SmallPerson();
  ExperimentOptions opts;
  opts.max_rounds = 3;
  const ExperimentResult r = RunExperiment(ds, opts);
  ASSERT_EQ(r.accuracy_by_round.size(), 4u);
  for (size_t k = 1; k < r.accuracy_by_round.size(); ++k) {
    EXPECT_GE(r.accuracy_by_round[k].F1(),
              r.accuracy_by_round[k - 1].F1());
  }
  EXPECT_EQ(r.entities, 12);
  EXPECT_EQ(r.invalid_entities, 0);
}

TEST_F(ExperimentTest, FullConstraintsBeatHalf) {
  const Dataset ds = SmallPerson();
  ExperimentOptions full;
  full.max_rounds = 0;
  ExperimentOptions half = full;
  half.sigma_fraction = 0.4;
  half.gamma_fraction = 0.4;
  const double f_full = RunExperiment(ds, full).accuracy_by_round[0].F1();
  const double f_half = RunExperiment(ds, half).accuracy_by_round[0].F1();
  EXPECT_GE(f_full, f_half);
}

TEST_F(ExperimentTest, UnifiedBeatsPickHeadline) {
  // The paper's headline: unified currency+consistency resolution beats
  // Pick substantially (201% F-measure on average across datasets).
  const Dataset ds = SmallPerson();
  ExperimentOptions opts;
  opts.max_rounds = 2;
  const double f_ours =
      RunExperiment(ds, opts).accuracy_by_round.back().F1();
  const double f_pick = RunPick(ds).F1();
  EXPECT_GT(f_ours, f_pick);
}

TEST_F(ExperimentTest, SigmaOnlyBeatsGammaOnly) {
  // Fig. 8(g) vs 8(h): currency constraints alone are much stronger than
  // CFDs alone (CFDs need currency inferences to fire).
  const Dataset ds = SmallPerson();
  ExperimentOptions sigma_only;
  sigma_only.max_rounds = 0;
  sigma_only.gamma_fraction = 0.0;
  ExperimentOptions gamma_only;
  gamma_only.max_rounds = 0;
  gamma_only.sigma_fraction = 0.0;
  const double f_sigma =
      RunExperiment(ds, sigma_only).accuracy_by_round[0].F1();
  const double f_gamma =
      RunExperiment(ds, gamma_only).accuracy_by_round[0].F1();
  EXPECT_GT(f_sigma, f_gamma);
}

TEST_F(ExperimentTest, TimingsAreRecorded) {
  const Dataset ds = SmallPerson();
  ExperimentOptions opts;
  opts.max_rounds = 1;
  const ExperimentResult r = RunExperiment(ds, opts);
  EXPECT_GE(r.validity_ms, 0.0);
  EXPECT_GE(r.deduce_ms, 0.0);
}

TEST_F(ExperimentTest, EntitySubsetSelection) {
  const Dataset ds = SmallPerson();
  ExperimentOptions opts;
  opts.max_rounds = 0;
  const ExperimentResult r = RunExperiment(ds, opts, {0, 1, 2});
  EXPECT_EQ(r.entities, 3);
}

TEST(ExperimentNbaTest, InteractionCurveShape) {
  // Fig. 8(e) shape: a sizable share of values resolves automatically and
  // everything resolves within 2 rounds.
  NbaOptions nopts;
  nopts.num_entities = 15;
  const Dataset ds = GenerateNba(nopts);
  ExperimentOptions opts;
  opts.max_rounds = 2;
  const ExperimentResult r = RunExperiment(ds, opts);
  ASSERT_EQ(r.pct_true_by_round.size(), 3u);
  EXPECT_GT(r.pct_true_by_round[0], 0.15);
  EXPECT_LT(r.pct_true_by_round[0], 0.9);
  EXPECT_GT(r.pct_true_by_round[2], 0.95);
}

}  // namespace
}  // namespace ccr
