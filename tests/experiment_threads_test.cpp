// Thread-count determinism of the parallel experiment driver
// (src/eval/experiment.h): RunExperiment pools per-entity results in
// entity-index order after the workers join, so any thread count must
// yield bit-identical accuracy and pct-true vectors (timings excluded).

#include <gtest/gtest.h>

#include <vector>

#include "src/data/nba_generator.h"
#include "src/data/person_generator.h"
#include "src/eval/experiment.h"

namespace ccr {
namespace {

void ExpectSameExperiment(const ExperimentResult& a,
                          const ExperimentResult& b, int threads) {
  SCOPED_TRACE("num_threads=" + std::to_string(threads));
  EXPECT_EQ(a.entities, b.entities);
  EXPECT_EQ(a.invalid_entities, b.invalid_entities);
  EXPECT_EQ(a.max_rounds_used, b.max_rounds_used);
  ASSERT_EQ(a.accuracy_by_round.size(), b.accuracy_by_round.size());
  for (size_t k = 0; k < a.accuracy_by_round.size(); ++k) {
    EXPECT_EQ(a.accuracy_by_round[k].deduced, b.accuracy_by_round[k].deduced)
        << "round " << k;
    EXPECT_EQ(a.accuracy_by_round[k].correct, b.accuracy_by_round[k].correct)
        << "round " << k;
    EXPECT_EQ(a.accuracy_by_round[k].conflicts,
              b.accuracy_by_round[k].conflicts)
        << "round " << k;
  }
  ASSERT_EQ(a.pct_true_by_round.size(), b.pct_true_by_round.size());
  for (size_t k = 0; k < a.pct_true_by_round.size(); ++k) {
    EXPECT_EQ(a.pct_true_by_round[k], b.pct_true_by_round[k])
        << "round " << k;
  }
}

void ExpectThreadCountInvariance(const Dataset& ds) {
  ExperimentOptions opts;
  opts.max_rounds = 2;
  opts.num_threads = 1;
  const ExperimentResult baseline = RunExperiment(ds, opts);
  EXPECT_EQ(baseline.entities, static_cast<int>(ds.entities.size()));
  for (int threads : {2, 8}) {
    opts.num_threads = threads;
    ExpectSameExperiment(baseline, RunExperiment(ds, opts), threads);
  }
}

TEST(ExperimentThreadsTest, AllocationPoolingDoesNotChangeResults) {
  // Cross-entity solver pooling (per-worker SessionScratch) must be
  // invisible in the results at any thread count.
  PersonOptions popts;
  popts.num_entities = 12;
  popts.max_tuples = 32;
  const Dataset ds = GeneratePerson(popts);

  ExperimentOptions opts;
  opts.max_rounds = 2;
  opts.reuse_allocations = false;
  const ExperimentResult cold = RunExperiment(ds, opts);
  for (int threads : {1, 4}) {
    opts.num_threads = threads;
    opts.reuse_allocations = true;
    ExpectSameExperiment(cold, RunExperiment(ds, opts), threads);
  }
}

TEST(ExperimentThreadsTest, NbaDeterministicAcrossThreadCounts) {
  NbaOptions opts;
  opts.num_entities = 24;
  opts.max_tuples = 40;
  ExpectThreadCountInvariance(GenerateNba(opts));
}

TEST(ExperimentThreadsTest, PersonDeterministicAcrossThreadCounts) {
  PersonOptions opts;
  opts.num_entities = 12;
  opts.max_tuples = 32;
  ExpectThreadCountInvariance(GeneratePerson(opts));
}

TEST(ExperimentThreadsTest, MoreThreadsThanEntities) {
  NbaOptions opts;
  opts.num_entities = 3;
  opts.max_tuples = 20;
  const Dataset ds = GenerateNba(opts);
  ExperimentOptions eopts;
  eopts.max_rounds = 1;
  eopts.num_threads = 1;
  const ExperimentResult baseline = RunExperiment(ds, eopts);
  eopts.num_threads = 16;  // clamped to the entity count internally
  ExpectSameExperiment(baseline, RunExperiment(ds, eopts), 16);
}

TEST(ExperimentThreadsTest, EntitySubsetRespectedInParallel) {
  NbaOptions opts;
  opts.num_entities = 10;
  opts.max_tuples = 20;
  const Dataset ds = GenerateNba(opts);
  const std::vector<int> subset = {1, 4, 7};
  ExperimentOptions eopts;
  eopts.max_rounds = 1;
  eopts.num_threads = 4;
  const ExperimentResult r = RunExperiment(ds, eopts, subset);
  EXPECT_EQ(r.entities, 3);
}

}  // namespace
}  // namespace ccr
