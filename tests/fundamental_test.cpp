// Cross-checks between the fundamental problems of §IV on generated
// corpora: satisfiability (IsValid), implication (Implies), true-value
// existence (AnalyzeTrueValue) and the resolver must tell one consistent
// story on every entity.

#include <gtest/gtest.h>

#include "src/ccr.h"

namespace ccr {
namespace {

class FundamentalSweep : public ::testing::TestWithParam<int> {
 protected:
  // A small Person corpus; the parameter seeds the generator so every
  // sweep instance sees different histories.
  Dataset MakeCorpus() const {
    PersonOptions opts;
    opts.num_entities = 4;
    opts.min_tuples = 6;
    opts.max_tuples = 24;
    opts.seed = 1000 + GetParam();
    return GeneratePerson(opts);
  }
};

TEST_P(FundamentalSweep, StrictResolverNeverExceedsExactAnalysis) {
  // AnalyzeTrueValue decides the Φ-level (Lemma 6) notion of implication,
  // which does not assume value-level totality; compare it against the
  // resolver in strict deduction mode, which deduces under the same
  // semantics. (Paper-mode deduction adds the Fig. 5 reversed-order rule,
  // sound under completion totality, and may therefore determine *more*
  // values than the Φ-level analysis — see DESIGN.md.)
  const Dataset ds = MakeCorpus();
  ResolveOptions strict;
  strict.deduce.paper_negative_units = false;
  strict.deduce.totality_propagation = false;
  for (size_t i = 0; i < ds.entities.size(); ++i) {
    const Specification se = ds.MakeSpec(static_cast<int>(i));
    auto exact = AnalyzeTrueValue(se);
    ASSERT_TRUE(exact.ok());
    auto fast = Resolve(se, nullptr, strict);
    ASSERT_TRUE(fast.ok());
    if (fast->complete) {
      EXPECT_TRUE(exact->exists) << "entity " << i;
    }
    // Every value the strict resolver finds must agree with the exact
    // analysis.
    const VarMap vm = VarMap::Build(se);
    for (int a = 0; a < ds.schema.size(); ++a) {
      if (!fast->resolved[a]) continue;
      ASSERT_GE(exact->true_value_index[a], 0)
          << "entity " << i << " attr " << ds.schema.name(a);
      EXPECT_EQ(vm.domain(a)[exact->true_value_index[a]],
                fast->true_values[a])
          << "entity " << i << " attr " << ds.schema.name(a);
    }
  }
}

TEST_P(FundamentalSweep, DeducedOrdersAreImplied) {
  // Sample pairs from Od (strict mode) and confirm each passes the exact
  // implication test at the tuple level.
  const Dataset ds = MakeCorpus();
  const Specification se = ds.MakeSpec(0);
  auto inst = Instantiation::Build(se);
  ASSERT_TRUE(inst.ok());
  const sat::Cnf phi = BuildCnf(*inst);
  DeduceOptions strict;
  strict.paper_negative_units = false;
  const DeducedOrders od = DeduceOrder(*inst, phi, strict);
  const VarMap& vm = inst->varmap;
  const EntityInstance& ie = se.instance();

  int checked = 0;
  for (int a = 0; a < vm.num_attrs() && checked < 6; ++a) {
    for (const auto& [u, v] : od.per_attr[a].Pairs()) {
      // Find tuples carrying the two values.
      int tu = -1, tv = -1;
      for (int t = 0; t < ie.size(); ++t) {
        if (ie.tuple(t).at(a) == vm.domain(a)[u]) tu = t;
        if (ie.tuple(t).at(a) == vm.domain(a)[v]) tv = t;
      }
      if (tu < 0 || tv < 0) continue;
      PartialTemporalOrder ot;
      ot.orders.emplace_back(a, tu, tv);
      auto r = Implies(se, ot);
      ASSERT_TRUE(r.ok());
      EXPECT_TRUE(r->implied)
          << "attr " << ds.schema.name(a) << " pair " << u << "<" << v;
      if (++checked >= 6) break;
    }
  }
}

TEST_P(FundamentalSweep, OracleAnswersAreConsistentExtensions) {
  // Every extension the resolver applies keeps Se valid, and the final
  // values match the corpus ground truth.
  const Dataset ds = MakeCorpus();
  for (size_t i = 0; i < ds.entities.size(); ++i) {
    TruthOracle oracle(ds.entities[i].truth);
    auto r = Resolve(ds.MakeSpec(static_cast<int>(i)), &oracle);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->valid);
    EXPECT_TRUE(r->complete) << "entity " << i;
    for (int a = 0; a < ds.schema.size(); ++a) {
      if (!r->resolved[a] || ds.entities[i].truth[a].is_null()) continue;
      EXPECT_EQ(r->true_values[a], ds.entities[i].truth[a])
          << "entity " << i << " attr " << ds.schema.name(a);
    }
  }
}

TEST_P(FundamentalSweep, SubsettingConstraintsNeverInvalidates) {
  const Dataset ds = MakeCorpus();
  for (double f : {0.0, 0.3, 0.7}) {
    const Specification se = ds.MakeSpec(0, f, f, GetParam() + 1);
    auto r = IsValid(se);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->valid) << "fraction " << f;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FundamentalSweep, ::testing::Range(0, 8));

}  // namespace
}  // namespace ccr
