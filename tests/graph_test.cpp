// Tests for src/graph: Graph, GreedyClique, exact MaxClique.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/rng.h"
#include "src/graph/clique.h"

namespace ccr::graph {
namespace {

// Brute-force maximum clique size for small graphs.
int BruteForceMaxClique(const Graph& g) {
  const int n = g.num_vertices();
  int best = 0;
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    std::vector<int> vs;
    for (int v = 0; v < n; ++v) {
      if (mask & (1u << v)) vs.push_back(v);
    }
    if (static_cast<int>(vs.size()) <= best) continue;
    if (g.IsClique(vs)) best = static_cast<int>(vs.size());
  }
  return best;
}

TEST(GraphTest, AddAndQueryEdges) {
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.Degree(1), 2);
  EXPECT_EQ(g.Neighbors(1), (std::vector<int>{0, 2}));
}

TEST(GraphTest, SelfLoopsAndDuplicatesIgnored) {
  Graph g(3);
  g.AddEdge(1, 1);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_FALSE(g.HasEdge(1, 1));
}

TEST(GraphTest, IsClique) {
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(1, 2);
  EXPECT_TRUE(g.IsClique({0, 1, 2}));
  EXPECT_FALSE(g.IsClique({0, 1, 3}));
  EXPECT_TRUE(g.IsClique({2}));
  EXPECT_TRUE(g.IsClique({}));
}

TEST(CliqueTest, EmptyGraph) {
  Graph g(0);
  EXPECT_TRUE(MaxClique(g).empty());
  EXPECT_TRUE(GreedyClique(g).empty());
}

TEST(CliqueTest, NoEdgesGivesSingleton) {
  Graph g(5);
  EXPECT_EQ(MaxClique(g).size(), 1u);
}

TEST(CliqueTest, TriangleInPath) {
  Graph g(5);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 0);
  g.AddEdge(2, 3);
  g.AddEdge(3, 4);
  const auto c = MaxClique(g);
  EXPECT_EQ(c, (std::vector<int>{0, 1, 2}));
}

TEST(CliqueTest, CompleteGraph) {
  Graph g(6);
  for (int u = 0; u < 6; ++u) {
    for (int v = u + 1; v < 6; ++v) g.AddEdge(u, v);
  }
  EXPECT_EQ(MaxClique(g).size(), 6u);
  EXPECT_EQ(GreedyClique(g).size(), 6u);
}

TEST(CliqueTest, PaperFig6Structure) {
  // The compatibility graph of Fig. 6: nodes n1..n9 (0-indexed 0..8);
  // clique {n1..n5} and clique {n6, n7, n8, n9} linked as in Example 11/12.
  Graph g(9);
  // n1-n5 pairwise compatible (all premised on status=retired).
  for (int u = 0; u < 5; ++u) {
    for (int v = u + 1; v < 5; ++v) g.AddEdge(u, v);
  }
  // n6-n9 pairwise compatible (premised on status=unemployed).
  for (int u = 5; u < 9; ++u) {
    for (int v = u + 1; v < 9; ++v) g.AddEdge(u, v);
  }
  const auto c = MaxClique(g);
  EXPECT_EQ(c, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(CliqueTest, GreedyIsAValidClique) {
  Rng rng(3);
  for (int round = 0; round < 30; ++round) {
    const int n = 4 + static_cast<int>(rng.Below(12));
    Graph g(n);
    for (int u = 0; u < n; ++u) {
      for (int v = u + 1; v < n; ++v) {
        if (rng.Chance(0.45)) g.AddEdge(u, v);
      }
    }
    EXPECT_TRUE(g.IsClique(GreedyClique(g)));
  }
}

TEST(CliqueTest, ExactMatchesBruteForceOnRandomGraphs) {
  Rng rng(1234);
  for (int round = 0; round < 60; ++round) {
    const int n = 3 + static_cast<int>(rng.Below(10));
    Graph g(n);
    const double density = 0.2 + 0.6 * rng.NextDouble();
    for (int u = 0; u < n; ++u) {
      for (int v = u + 1; v < n; ++v) {
        if (rng.Chance(density)) g.AddEdge(u, v);
      }
    }
    const auto c = MaxClique(g);
    EXPECT_TRUE(g.IsClique(c)) << "round " << round;
    EXPECT_EQ(static_cast<int>(c.size()), BruteForceMaxClique(g))
        << "round " << round;
  }
}

TEST(CliqueTest, GreedyLowerBoundsExact) {
  Rng rng(99);
  for (int round = 0; round < 20; ++round) {
    const int n = 8 + static_cast<int>(rng.Below(10));
    Graph g(n);
    for (int u = 0; u < n; ++u) {
      for (int v = u + 1; v < n; ++v) {
        if (rng.Chance(0.5)) g.AddEdge(u, v);
      }
    }
    EXPECT_LE(GreedyClique(g).size(), MaxClique(g).size());
  }
}

}  // namespace
}  // namespace ccr::graph
