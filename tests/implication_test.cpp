// Tests for the implication and true-value problems of §IV
// (src/core/implication.h).

#include <gtest/gtest.h>

#include "paper_fixture.h"
#include "src/core/implication.h"
#include "src/core/resolver.h"

namespace ccr {
namespace {

using testing::EdithSpec;
using testing::GeorgeSpec;
using testing::PaperSchema;

// Ot with one order pair over Se's existing tuples.
PartialTemporalOrder OnePair(const char* attr_name, int less, int more) {
  PartialTemporalOrder ot;
  ot.orders.emplace_back(PaperSchema().IndexOf(attr_name), less, more);
  return ot;
}

TEST(ImpliesTest, EmptyOtIsAlwaysImplied) {
  auto r = Implies(EdithSpec(), PartialTemporalOrder{});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->implied);
  EXPECT_EQ(r->sat_calls, 0);
}

TEST(ImpliesTest, ConstraintForcedOrderIsImplied) {
  // ϕ1 forces r1 ≺status r2 (working before retired) in every completion.
  auto r = Implies(EdithSpec(), OnePair("status", 0, 1));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->implied);
  EXPECT_EQ(r->sat_calls, 1);
}

TEST(ImpliesTest, TransitivelyForcedOrderIsImplied) {
  // working ≺ deceased only follows through transitivity of ϕ1 and ϕ2.
  auto r = Implies(EdithSpec(), OnePair("status", 0, 2));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->implied);
}

TEST(ImpliesTest, ReversedOrderIsNotImplied) {
  auto r = Implies(EdithSpec(), OnePair("status", 1, 0));
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->implied);
  EXPECT_EQ(r->witness_attr, PaperSchema().IndexOf("status"));
  EXPECT_EQ(r->witness_less, 1);
  EXPECT_EQ(r->witness_more, 0);
}

TEST(ImpliesTest, OpenOrderIsNotImplied) {
  // George's city order is undetermined (Example 3/4).
  auto r = Implies(GeorgeSpec(), OnePair("city", 0, 1));
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->implied);
}

TEST(ImpliesTest, CfdDerivedOrderIsImplied) {
  // LA becomes Edith's top city only through ψ1 after the AC currency
  // inference: NY ≺city LA is implied (tuples r1 → r3).
  auto r = Implies(EdithSpec(), OnePair("city", 0, 2));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->implied);
}

TEST(ImpliesTest, EqualValuesTriviallyIncluded) {
  // r2 and r3 share job "n/a": the ⪯ pair holds without a SAT call.
  auto r = Implies(EdithSpec(), OnePair("job", 1, 2));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->implied);
  EXPECT_EQ(r->sat_calls, 0);
}

TEST(ImpliesTest, NullLessSideTriviallyIncluded) {
  // r3[kids] is null, ranked lowest: r3 ⪯kids r1 holds trivially.
  auto r = Implies(EdithSpec(), OnePair("kids", 2, 0));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->implied);
  EXPECT_EQ(r->sat_calls, 0);
}

TEST(ImpliesTest, NullMoreSideNeverImplied) {
  // A null can never be strictly more current than a value.
  auto r = Implies(EdithSpec(), OnePair("kids", 0, 2));
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->implied);
}

TEST(ImpliesTest, MixedPairsShortCircuitOnWitness) {
  PartialTemporalOrder ot;
  ot.orders.emplace_back(PaperSchema().IndexOf("status"), 0, 1);  // implied
  ot.orders.emplace_back(PaperSchema().IndexOf("status"), 1, 0);  // not
  ot.orders.emplace_back(PaperSchema().IndexOf("kids"), 0, 1);    // implied
  auto r = Implies(EdithSpec(), ot);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->implied);
  EXPECT_EQ(r->witness_less, 1);
}

TEST(ImpliesTest, RejectsNewTuples) {
  PartialTemporalOrder ot;
  ot.new_tuples.push_back(
      Tuple(std::vector<Value>(PaperSchema().size(), Value::Null())));
  auto r = Implies(EdithSpec(), ot);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ImpliesTest, RejectsOutOfRangePairs) {
  auto r = Implies(EdithSpec(), OnePair("status", 0, 9));
  EXPECT_FALSE(r.ok());
}

TEST(ImpliesTest, InvalidSpecificationRejected) {
  Specification se = EdithSpec();
  const int status = PaperSchema().IndexOf("status");
  ASSERT_TRUE(se.temporal.AddOrder(status, 1, 0).ok());  // contradicts ϕ1
  auto r = Implies(se, OnePair("kids", 0, 1));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidSpec);
}

TEST(AnalyzeTrueValueTest, EdithHasTrueValue) {
  auto r = AnalyzeTrueValue(EdithSpec());
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->exists);
  // Spot-check: the status true value is "deceased".
  const Specification se = EdithSpec();
  const VarMap vm = VarMap::Build(se);
  const int status = PaperSchema().IndexOf("status");
  ASSERT_GE(r->true_value_index[status], 0);
  EXPECT_EQ(vm.domain(status)[r->true_value_index[status]],
            Value::Str("deceased"));
}

TEST(AnalyzeTrueValueTest, GeorgeHasNoTrueValue) {
  auto r = AnalyzeTrueValue(GeorgeSpec());
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->exists);
  // name and kids are still individually determined.
  EXPECT_GE(r->true_value_index[PaperSchema().IndexOf("name")], 0);
  EXPECT_GE(r->true_value_index[PaperSchema().IndexOf("kids")], 0);
  EXPECT_LT(r->true_value_index[PaperSchema().IndexOf("status")], 0);
}

TEST(AnalyzeTrueValueTest, GeorgeAfterUserOrderHasTrueValue) {
  // Example 6: with r6 ≺status r5 provided, T(Se ⊕ Ot) exists.
  Specification se = GeorgeSpec();
  ASSERT_TRUE(
      se.temporal.AddOrder(PaperSchema().IndexOf("status"), 2, 1).ok());
  auto r = AnalyzeTrueValue(se);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->exists);
}

TEST(AnalyzeTrueValueTest, InvalidSpecificationRejected) {
  Specification se = EdithSpec();
  const int status = PaperSchema().IndexOf("status");
  ASSERT_TRUE(se.temporal.AddOrder(status, 1, 0).ok());
  auto r = AnalyzeTrueValue(se);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidSpec);
}

TEST(AnalyzeTrueValueTest, AgreesWithResolverOnEdith) {
  auto exact = AnalyzeTrueValue(EdithSpec());
  ASSERT_TRUE(exact.ok());
  auto fast = Resolve(EdithSpec(), nullptr);
  ASSERT_TRUE(fast.ok());
  EXPECT_EQ(exact->exists, fast->complete);
}

}  // namespace
}  // namespace ccr
