// Cross-module integration tests: full pipelines over generated datasets,
// exercising encode → SAT → deduce → suggest → resolve → evaluate.

#include <gtest/gtest.h>

#include "src/ccr.h"

namespace ccr {
namespace {

TEST(IntegrationTest, PersonEndToEndWithInteraction) {
  PersonOptions popts;
  popts.num_entities = 10;
  popts.min_tuples = 8;
  popts.max_tuples = 30;
  const Dataset ds = GeneratePerson(popts);
  ExperimentOptions opts;
  opts.max_rounds = 3;
  const ExperimentResult r = RunExperiment(ds, opts);
  EXPECT_EQ(r.entities, 10);
  EXPECT_EQ(r.invalid_entities, 0);
  // All entities finish within the paper's 3 rounds when the oracle
  // answers every suggestion.
  EXPECT_GE(r.pct_true_by_round.back(), 0.99);
  // Monotone progress.
  for (size_t k = 1; k < r.pct_true_by_round.size(); ++k) {
    EXPECT_GE(r.pct_true_by_round[k], r.pct_true_by_round[k - 1]);
  }
}

TEST(IntegrationTest, LimitedOracleNeedsMoreRounds) {
  // With one answer per round, entities with several unordered attributes
  // need multiple rounds — progress is still monotone.
  PersonOptions popts;
  popts.num_entities = 8;
  popts.p_status_gap = 0.5;  // many breaks
  popts.p_ghost = 0.3;
  const Dataset ds = GeneratePerson(popts);
  ExperimentOptions one;
  one.max_rounds = 3;
  one.answers_per_round = 1;
  ExperimentOptions all = one;
  all.answers_per_round = 100;
  const ExperimentResult r_one = RunExperiment(ds, one);
  const ExperimentResult r_all = RunExperiment(ds, all);
  EXPECT_LE(r_one.pct_true_by_round[1], r_all.pct_true_by_round[1] + 1e-9);
}

TEST(IntegrationTest, NbaAccuracyOrdering) {
  // Fig. 8(f)-(h) ordering at the full-constraint point:
  // F(Σ+Γ) >= F(Σ) >= F(Γ).
  NbaOptions nopts;
  nopts.num_entities = 25;
  const Dataset ds = GenerateNba(nopts);
  auto run = [&](double sf, double gf) {
    ExperimentOptions opts;
    opts.max_rounds = 0;
    opts.sigma_fraction = sf;
    opts.gamma_fraction = gf;
    return RunExperiment(ds, opts).accuracy_by_round[0].F1();
  };
  const double both = run(1.0, 1.0);
  const double sigma_only = run(1.0, 0.0);
  const double gamma_only = run(0.0, 1.0);
  EXPECT_GE(both, sigma_only - 1e-9);
  EXPECT_GT(sigma_only, gamma_only);
}

TEST(IntegrationTest, CareerPipelines) {
  CareerOptions copts;
  copts.num_entities = 15;
  const Dataset ds = GenerateCareer(copts);
  ExperimentOptions opts;
  opts.max_rounds = 2;
  const ExperimentResult r = RunExperiment(ds, opts);
  EXPECT_EQ(r.invalid_entities, 0);
  EXPECT_GE(r.accuracy_by_round.back().F1(),
            r.accuracy_by_round[0].F1());
  const AccuracyCounts pick = RunPick(ds);
  EXPECT_GT(r.accuracy_by_round.back().F1(), pick.F1());
}

TEST(IntegrationTest, WalkSatSolvesGeneratedPhi) {
  // The stochastic solver handles real Φ(Se) instances from the Person
  // generator (they are satisfiable: the specs are valid).
  PersonOptions popts;
  popts.num_entities = 3;
  popts.min_tuples = 5;
  popts.max_tuples = 12;
  const Dataset ds = GeneratePerson(popts);
  for (int i = 0; i < 3; ++i) {
    const Specification se = ds.MakeSpec(i);
    auto inst = Instantiation::Build(se);
    ASSERT_TRUE(inst.ok());
    const sat::Cnf phi = BuildCnf(*inst);
    maxsat::WalkSatOptions wopts;
    wopts.max_flips = 400000;
    wopts.tries = 5;
    const auto r = maxsat::RunWalkSat(phi, wopts);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->satisfied) << "entity " << i;
  }
}

TEST(IntegrationTest, SuggestionsAreActionableOnGeneratedData) {
  // For every incomplete entity, the suggestion must name at least one
  // unresolved attribute whose answer strictly increases resolution.
  PersonOptions popts;
  popts.num_entities = 6;
  popts.p_status_gap = 0.6;
  const Dataset ds = GeneratePerson(popts);
  for (size_t i = 0; i < ds.entities.size(); ++i) {
    const Specification se = ds.MakeSpec(static_cast<int>(i));
    auto inst = Instantiation::Build(se);
    ASSERT_TRUE(inst.ok());
    const sat::Cnf phi = BuildCnf(*inst);
    const DeducedOrders od = DeduceOrder(*inst, phi);
    const auto known = ExtractTrueValueIndices(inst->varmap, od);
    bool complete = true;
    for (int a = 0; a < ds.schema.size(); ++a) {
      if (!inst->varmap.domain(a).empty() && known[a] < 0) complete = false;
    }
    if (complete) continue;
    const auto candidates = CandidateValues(inst->varmap, od);
    const Suggestion sug = Suggest(*inst, phi, candidates, known);
    EXPECT_FALSE(sug.attrs.empty()) << "entity " << i;
    for (int a : sug.attrs) EXPECT_LT(known[a], 0);
  }
}

TEST(IntegrationTest, ExtendWithOracleAnswerKeepsValidity) {
  // Round-trip: every oracle answer produces Se ⊕ Ot that passes IsValid.
  NbaOptions nopts;
  nopts.num_entities = 6;
  const Dataset ds = GenerateNba(nopts);
  for (size_t i = 0; i < ds.entities.size(); ++i) {
    Specification se = ds.MakeSpec(static_cast<int>(i));
    const std::vector<Value>& truth = ds.entities[i].truth;
    // Simulate one user round by hand: answer "team".
    const int team = ds.schema.IndexOf("team");
    PartialTemporalOrder ot;
    Tuple to(std::vector<Value>(ds.schema.size(), Value::Null()));
    to[team] = truth[team];
    const int to_idx = se.instance().size();
    ot.new_tuples.push_back(to);
    for (int t = 0; t < to_idx; ++t) ot.orders.emplace_back(team, t, to_idx);
    auto extended = Extend(se, ot);
    ASSERT_TRUE(extended.ok());
    auto valid = IsValid(*extended);
    ASSERT_TRUE(valid.ok());
    EXPECT_TRUE(valid->valid) << "entity " << i;
  }
}

TEST(IntegrationTest, BucketedEntitySizesForBenches) {
  // The bench harness buckets entities by instance size; make sure the
  // generator produces a usable spread for the Fig. 8(a)-(d) buckets.
  NbaOptions nopts;
  nopts.num_entities = 80;
  const Dataset ds = GenerateNba(nopts);
  int small = 0, large = 0;
  for (const EntityCase& ec : ds.entities) {
    if (ec.instance.size() <= 27) ++small;
    if (ec.instance.size() >= 28) ++large;
  }
  EXPECT_GT(small, 0);
  EXPECT_GT(large, 0);
}

}  // namespace
}  // namespace ccr
