// Tests for IsValid (§V-A): satisfiability of entity specifications.

#include <gtest/gtest.h>

#include "paper_fixture.h"
#include "src/core/isvalid.h"

namespace ccr {
namespace {

using testing::EdithSpec;
using testing::GeorgeSpec;
using testing::PaperSchema;

TEST(IsValidTest, PaperSpecificationsAreValid) {
  // §II-C: "the specification of E1 (or E2) and the constraints in Fig. 3
  // is valid."
  auto edith = IsValid(EdithSpec());
  ASSERT_TRUE(edith.ok());
  EXPECT_TRUE(edith->valid);
  auto george = IsValid(GeorgeSpec());
  ASSERT_TRUE(george.ok());
  EXPECT_TRUE(george->valid);
}

TEST(IsValidTest, EmptySpecificationIsValid) {
  Specification se;
  se.temporal = TemporalInstance(EntityInstance(PaperSchema(), "none"));
  auto r = IsValid(se);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->valid);
}

TEST(IsValidTest, CyclicCurrencyConstraintsInvalid) {
  // Two constraints ordering the same pair both ways conflict.
  Specification se;
  Schema schema = Schema::Make({"status"}).value();
  EntityInstance inst(schema, "e");
  ASSERT_TRUE(inst.Add(Tuple({Value::Str("a")})).ok());
  ASSERT_TRUE(inst.Add(Tuple({Value::Str("b")})).ok());
  se.temporal = TemporalInstance(std::move(inst));
  for (const char* t :
       {"t1[status] = 'a' & t2[status] = 'b' -> status",
        "t1[status] = 'b' & t2[status] = 'a' -> status"}) {
    auto phi = ParseCurrencyConstraint(schema, t);
    ASSERT_TRUE(phi.ok());
    se.sigma.push_back(std::move(phi).value());
  }
  auto r = IsValid(se);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->valid);
}

TEST(IsValidTest, TransitivityCycleDetected) {
  // a < b, b < c, c < a through three constraints: invalid only through
  // the transitivity axioms.
  Specification se;
  Schema schema = Schema::Make({"x"}).value();
  EntityInstance inst(schema, "e");
  for (const char* v : {"a", "b", "c"}) {
    ASSERT_TRUE(inst.Add(Tuple({Value::Str(v)})).ok());
  }
  se.temporal = TemporalInstance(std::move(inst));
  for (auto [from, to] : {std::pair{"a", "b"}, {"b", "c"}, {"c", "a"}}) {
    auto phi = ParseCurrencyConstraint(
        schema, std::string("t1[x] = '") + from + "' & t2[x] = '" + to +
                    "' -> x");
    ASSERT_TRUE(phi.ok());
    se.sigma.push_back(std::move(phi).value());
  }
  auto r = IsValid(se);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->valid);
}

TEST(IsValidTest, ConflictingUserOrderInvalidates) {
  // Explicit currency order r2 ≺status r1 contradicts ϕ1 (working before
  // retired).
  Specification se = EdithSpec();
  ASSERT_TRUE(
      se.temporal.AddOrder(PaperSchema().IndexOf("status"), 1, 0).ok());
  auto r = IsValid(se);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->valid);
}

TEST(IsValidTest, ConsistentUserOrderStaysValid) {
  Specification se = EdithSpec();
  ASSERT_TRUE(
      se.temporal.AddOrder(PaperSchema().IndexOf("status"), 0, 1).ok());
  auto r = IsValid(se);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->valid);
}

TEST(IsValidTest, CfdConflictingWithConstraintsInvalid) {
  // Force city=LA (via CFD on dominating AC) while a currency constraint
  // makes a *different* city the most current one — unsatisfiable
  // combination detected through the interaction of Σ and Γ.
  Schema schema = Schema::Make({"status", "AC", "city"}).value();
  EntityInstance inst(schema, "e");
  ASSERT_TRUE(inst.Add(Tuple({Value::Str("working"), Value::Int(213),
                              Value::Str("LA")}))
                  .ok());
  ASSERT_TRUE(inst.Add(Tuple({Value::Str("retired"), Value::Int(213),
                              Value::Str("NY")}))
                  .ok());
  Specification se;
  se.temporal = TemporalInstance(std::move(inst));
  for (const char* t :
       {"t1[status] = 'working' & t2[status] = 'retired' -> status",
        // city follows status: NY (retired tuple) would be most current
        "prec(status) -> city"}) {
    auto phi = ParseCurrencyConstraint(schema, t);
    ASSERT_TRUE(phi.ok());
    se.sigma.push_back(std::move(phi).value());
  }
  // But AC 213 is the only AC value, so the CFD forces city=LA.
  auto psi = ParseCfd(schema, "AC = 213 -> city = 'LA'");
  ASSERT_TRUE(psi.ok());
  se.gamma.push_back(std::move(psi).value());
  auto r = IsValid(se);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->valid);
}

TEST(IsValidTest, ReportsEncodingSizes) {
  auto r = IsValid(EdithSpec());
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->num_vars, 0);
  EXPECT_GT(r->num_clauses, 0);
}

TEST(IsValidTest, SingleTupleAlwaysValid) {
  Specification se = EdithSpec();
  EntityInstance single(PaperSchema(), "single");
  ASSERT_TRUE(single.Add(se.instance().tuple(0)).ok());
  se.temporal = TemporalInstance(std::move(single));
  auto r = IsValid(se);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->valid);
}

}  // namespace
}  // namespace ccr
