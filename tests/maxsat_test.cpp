// Tests for the MaxSAT layer: Sinz cardinality encoding, exact partial
// MaxSAT, and WalkSAT local search.

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/maxsat/maxsat.h"
#include "src/maxsat/walksat.h"

namespace ccr::maxsat {
namespace {

using sat::Cnf;
using sat::Lit;
using sat::SolveResult;
using sat::Solver;
using sat::Var;

int CountTrue(const Solver& s, const std::vector<Var>& vars) {
  int n = 0;
  for (Var v : vars) n += s.ModelValue(v) ? 1 : 0;
  return n;
}

class AtMostKTest : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(AtMostKTest, BoundsHold) {
  const auto [n, k] = GetParam();
  Cnf cnf;
  std::vector<Var> vars;
  std::vector<Lit> lits;
  for (int i = 0; i < n; ++i) {
    vars.push_back(cnf.NewVar());
    lits.push_back(Lit::Pos(vars.back()));
  }
  AddAtMostK(&cnf, lits, k);
  // Satisfiable, and every model has at most k true.
  Solver s;
  s.AddCnf(cnf);
  ASSERT_EQ(s.Solve(), SolveResult::kSat);
  EXPECT_LE(CountTrue(s, vars), k);
  // Forcing k of them true is satisfiable; forcing k+1 is not.
  {
    Solver s2;
    s2.AddCnf(cnf);
    std::vector<Lit> assume;
    for (int i = 0; i < k && i < n; ++i) assume.push_back(lits[i]);
    EXPECT_EQ(s2.SolveWithAssumptions(assume), SolveResult::kSat);
    if (k < n) {
      assume.push_back(lits[k]);
      EXPECT_EQ(s2.SolveWithAssumptions(assume), SolveResult::kUnsat);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, AtMostKTest,
                         ::testing::Values(std::pair<int, int>{4, 0},
                                           std::pair<int, int>{4, 1},
                                           std::pair<int, int>{4, 2},
                                           std::pair<int, int>{4, 3},
                                           std::pair<int, int>{7, 3},
                                           std::pair<int, int>{10, 5},
                                           std::pair<int, int>{6, 6}));

TEST(MaxSatTest, UnsatisfiableHardDetected) {
  Cnf hard;
  const Var a = hard.NewVar();
  hard.AddUnit(Lit::Pos(a));
  hard.AddUnit(Lit::Neg(a));
  const auto r = SolveMaxSat(hard, {{Lit::Pos(a)}});
  EXPECT_FALSE(r.hard_satisfiable);
}

TEST(MaxSatTest, NoSoftsReturnsModel) {
  Cnf hard;
  const Var a = hard.NewVar();
  hard.AddUnit(Lit::Pos(a));
  const auto r = SolveMaxSat(hard, {});
  ASSERT_TRUE(r.hard_satisfiable);
  EXPECT_EQ(r.num_satisfied, 0);
  ASSERT_EQ(r.model.size(), 1u);
  EXPECT_TRUE(r.model[0]);
}

TEST(MaxSatTest, AllSoftsSatisfiableKeepsAll) {
  Cnf hard;
  const Var a = hard.NewVar(), b = hard.NewVar();
  (void)a;
  (void)b;
  const auto r = SolveMaxSat(hard, {{Lit::Pos(a)}, {Lit::Pos(b)}});
  ASSERT_TRUE(r.hard_satisfiable);
  EXPECT_EQ(r.num_satisfied, 2);
}

TEST(MaxSatTest, DropsMinimumNumberOfSofts) {
  // Hard: exactly one of a, b, c (pairwise exclusion + at least one).
  Cnf hard;
  const Var a = hard.NewVar(), b = hard.NewVar(), c = hard.NewVar();
  hard.AddTernary(Lit::Pos(a), Lit::Pos(b), Lit::Pos(c));
  hard.AddBinary(Lit::Neg(a), Lit::Neg(b));
  hard.AddBinary(Lit::Neg(a), Lit::Neg(c));
  hard.AddBinary(Lit::Neg(b), Lit::Neg(c));
  // Softs want all three: optimum keeps exactly one.
  const auto r =
      SolveMaxSat(hard, {{Lit::Pos(a)}, {Lit::Pos(b)}, {Lit::Pos(c)}});
  ASSERT_TRUE(r.hard_satisfiable);
  EXPECT_EQ(r.num_satisfied, 1);
}

TEST(MaxSatTest, ConflictingPairKeepsLargerSide) {
  // Hard: ¬(a ∧ b). Softs: a, a', b  where a and a' are the same literal —
  // the optimum keeps {a, a'} (2 softs) over {b} (1 soft).
  Cnf hard;
  const Var a = hard.NewVar(), b = hard.NewVar();
  hard.AddBinary(Lit::Neg(a), Lit::Neg(b));
  const auto r =
      SolveMaxSat(hard, {{Lit::Pos(a)}, {Lit::Pos(a)}, {Lit::Pos(b)}});
  ASSERT_TRUE(r.hard_satisfiable);
  EXPECT_EQ(r.num_satisfied, 2);
  EXPECT_TRUE(r.soft_satisfied[0]);
  EXPECT_TRUE(r.soft_satisfied[1]);
  EXPECT_FALSE(r.soft_satisfied[2]);
}

TEST(MaxSatTest, MultiLiteralSoftClauses) {
  Cnf hard;
  const Var a = hard.NewVar(), b = hard.NewVar();
  hard.AddUnit(Lit::Neg(a));
  const auto r = SolveMaxSat(hard, {{Lit::Pos(a), Lit::Pos(b)}});
  ASSERT_TRUE(r.hard_satisfiable);
  EXPECT_EQ(r.num_satisfied, 1);  // satisfied via b
}

// --- incremental MaxSAT on a persistent solver --------------------------

// Random hard CNF + soft clause sets for the equivalence regression.
Cnf RandomCnf(Rng* rng, int n_vars, int n_clauses) {
  Cnf cnf;
  cnf.EnsureVars(n_vars);
  for (int c = 0; c < n_clauses; ++c) {
    std::vector<Lit> clause;
    const int len = 2 + static_cast<int>(rng->Below(2));
    for (int k = 0; k < len; ++k) {
      clause.push_back(
          Lit(static_cast<Var>(rng->Below(n_vars)), rng->Chance(0.5)));
    }
    cnf.AddClause(std::span<const Lit>(clause.data(), clause.size()));
  }
  return cnf;
}

std::vector<std::vector<Lit>> RandomSofts(Rng* rng, int n_vars) {
  std::vector<std::vector<Lit>> softs(1 + rng->Below(6));
  for (auto& soft : softs) {
    const int len = 1 + static_cast<int>(rng->Below(3));
    for (int k = 0; k < len; ++k) {
      soft.push_back(
          Lit(static_cast<Var>(rng->Below(n_vars)), rng->Chance(0.5)));
    }
  }
  return softs;
}

TEST(IncrementalMaxSatTest, MatchesOneShotOnRandomInstances) {
  // À la SolverTest.ResetIsObservablyAFreshSolver: 60 random instances,
  // each solved (a) one-shot on a fresh solver and (b) incrementally on a
  // persistent solver that answers several MaxSAT calls back to back.
  // Released activation literals must make (b) indistinguishable from (a):
  // same optimum, same canonical soft_satisfied set — including when the
  // same softs are re-asked after an unrelated call touched the solver.
  Rng rng(0xD1CE);
  int sat_instances = 0;
  for (int round = 0; round < 60; ++round) {
    const int n_vars = 4 + static_cast<int>(rng.Below(8));
    const Cnf hard = RandomCnf(&rng, n_vars, 3 + rng.Below(24));
    const auto softs_a = RandomSofts(&rng, n_vars);
    const auto softs_b = RandomSofts(&rng, n_vars);

    const MaxSatResult one_shot_a = SolveMaxSat(hard, softs_a);
    const MaxSatResult one_shot_b = SolveMaxSat(hard, softs_b);

    Solver persistent;
    persistent.AddCnf(hard);
    IncrementalMaxSat inc(&persistent);
    const MaxSatResult inc_a = inc.Solve(softs_a);
    const MaxSatResult inc_b = inc.Solve(softs_b);   // after a's scope died
    const MaxSatResult inc_a2 = inc.Solve(softs_a);  // re-ask: must agree

    EXPECT_EQ(one_shot_a.hard_satisfiable, inc_a.hard_satisfiable)
        << "round " << round;
    EXPECT_EQ(one_shot_b.hard_satisfiable, inc_b.hard_satisfiable)
        << "round " << round;
    if (!one_shot_a.hard_satisfiable) continue;
    ++sat_instances;
    EXPECT_EQ(one_shot_a.num_satisfied, inc_a.num_satisfied)
        << "round " << round;
    EXPECT_EQ(one_shot_a.soft_satisfied, inc_a.soft_satisfied)
        << "round " << round;
    EXPECT_EQ(one_shot_b.num_satisfied, inc_b.num_satisfied)
        << "round " << round;
    EXPECT_EQ(one_shot_b.soft_satisfied, inc_b.soft_satisfied)
        << "round " << round;
    EXPECT_EQ(inc_a.num_satisfied, inc_a2.num_satisfied) << "round " << round;
    EXPECT_EQ(inc_a.soft_satisfied, inc_a2.soft_satisfied)
        << "round " << round;
    // The persistent solver itself is unharmed: the hard formula is still
    // satisfiable with no assumptions at all.
    EXPECT_EQ(persistent.Solve(), SolveResult::kSat) << "round " << round;
  }
  EXPECT_GT(sat_instances, 20);
}

TEST(IncrementalMaxSatTest, SoftSatisfiedSizeInvariant) {
  // API invariant: when the hard formula is satisfiable, soft_satisfied
  // covers every soft positionally (Suggest indexes it without guards).
  Cnf hard;
  const Var a = hard.NewVar(), b = hard.NewVar();
  hard.AddBinary(Lit::Neg(a), Lit::Neg(b));
  const auto r =
      SolveMaxSat(hard, {{Lit::Pos(a)}, {Lit::Pos(b)}, {Lit::Pos(a)}});
  ASSERT_TRUE(r.hard_satisfiable);
  EXPECT_EQ(r.soft_satisfied.size(), 3u);
}

TEST(IncrementalMaxSatTest, RespectsExtraAssumptions) {
  // The same formula under different conditioning assumptions: GetSug
  // conditions its MaxSAT calls on session guards this way.
  Cnf hard;
  const Var a = hard.NewVar(), g = hard.NewVar();
  hard.AddBinary(Lit::Neg(g), Lit::Neg(a));  // guard on => ¬a
  Solver solver;
  solver.AddCnf(hard);
  IncrementalMaxSat inc(&solver);

  const std::vector<std::vector<Lit>> softs = {{Lit::Pos(a)}};
  const std::vector<Lit> guard_on = {Lit::Pos(g)};
  const MaxSatResult with_guard =
      inc.Solve(softs, std::span<const Lit>(guard_on.data(), guard_on.size()));
  ASSERT_TRUE(with_guard.hard_satisfiable);
  EXPECT_EQ(with_guard.num_satisfied, 0);  // a forced false under guard

  const MaxSatResult without_guard = inc.Solve(softs);
  ASSERT_TRUE(without_guard.hard_satisfiable);
  EXPECT_EQ(without_guard.num_satisfied, 1);  // a free again
}

TEST(WalkSatTest, SolvesEasySatFormula) {
  Cnf cnf;
  const Var a = cnf.NewVar(), b = cnf.NewVar(), c = cnf.NewVar();
  cnf.AddTernary(Lit::Pos(a), Lit::Pos(b), Lit::Pos(c));
  cnf.AddBinary(Lit::Neg(a), Lit::Pos(b));
  cnf.AddUnit(Lit::Neg(c));
  WalkSatOptions opts;
  const auto r = RunWalkSat(cnf, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->satisfied);
  EXPECT_EQ(r->best_unsat, 0);
}

TEST(WalkSatTest, RejectsInvalidOptions) {
  Cnf cnf;
  cnf.AddUnit(Lit::Pos(cnf.NewVar()));
  WalkSatOptions opts;
  opts.max_flips = 0;
  EXPECT_EQ(RunWalkSat(cnf, opts).status().code(),
            StatusCode::kInvalidArgument);
  opts = {};
  opts.tries = -1;
  EXPECT_EQ(RunWalkSat(cnf, opts).status().code(),
            StatusCode::kInvalidArgument);
  opts = {};
  opts.noise = 1.5;
  EXPECT_EQ(RunWalkSat(cnf, opts).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(WalkSatTest, ApproximatesMaxSatOnUnsatFormula) {
  // a and ¬a: exactly one clause must stay unsatisfied.
  Cnf cnf;
  const Var a = cnf.NewVar();
  cnf.AddUnit(Lit::Pos(a));
  cnf.AddUnit(Lit::Neg(a));
  const auto r = RunWalkSat(cnf, {});
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->satisfied);
  EXPECT_EQ(r->best_unsat, 1);
}

TEST(WalkSatTest, DeterministicUnderSeed) {
  Cnf cnf;
  Rng rng(5);
  for (int c = 0; c < 40; ++c) {
    std::vector<Lit> clause;
    for (int k = 0; k < 3; ++k) {
      clause.push_back(
          Lit(static_cast<Var>(rng.Below(12)), rng.Chance(0.5)));
    }
    cnf.AddClause(std::span<const Lit>(clause.data(), clause.size()));
  }
  WalkSatOptions opts;
  opts.seed = 77;
  const auto r1 = RunWalkSat(cnf, opts);
  const auto r2 = RunWalkSat(cnf, opts);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->best_unsat, r2->best_unsat);
  EXPECT_EQ(r1->model, r2->model);
}

TEST(WalkSatTest, AgreesWithCdclOnRandomFormulas) {
  Rng rng(0xBEEF);
  int checked = 0;
  for (int round = 0; round < 60; ++round) {
    const int n_vars = 4 + static_cast<int>(rng.Below(8));
    const int n_clauses = 4 + static_cast<int>(rng.Below(30));
    Cnf cnf;
    cnf.EnsureVars(n_vars);
    for (int c = 0; c < n_clauses; ++c) {
      std::vector<Lit> clause;
      const int len = 2 + static_cast<int>(rng.Below(2));
      for (int k = 0; k < len; ++k) {
        clause.push_back(
            Lit(static_cast<Var>(rng.Below(n_vars)), rng.Chance(0.5)));
      }
      cnf.AddClause(std::span<const Lit>(clause.data(), clause.size()));
    }
    sat::Solver solver;
    solver.AddCnf(cnf);
    const bool sat = solver.Solve() == SolveResult::kSat;
    WalkSatOptions opts;
    opts.seed = round;
    const auto r = RunWalkSat(cnf, opts);
    ASSERT_TRUE(r.ok());
    // WalkSAT is incomplete: it may miss a satisfying assignment but must
    // never claim satisfied on an UNSAT formula.
    if (!sat) {
      EXPECT_FALSE(r->satisfied) << "round " << round;
      ++checked;
    } else if (r->satisfied) {
      EXPECT_EQ(r->best_unsat, 0);
      ++checked;
    }
  }
  EXPECT_GT(checked, 20);
}

}  // namespace
}  // namespace ccr::maxsat
