// Tests for the MaxSAT layer: Sinz cardinality encoding, exact partial
// MaxSAT, and WalkSAT local search.

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/maxsat/maxsat.h"
#include "src/maxsat/walksat.h"

namespace ccr::maxsat {
namespace {

using sat::Cnf;
using sat::Lit;
using sat::SolveResult;
using sat::Solver;
using sat::Var;

int CountTrue(const Solver& s, const std::vector<Var>& vars) {
  int n = 0;
  for (Var v : vars) n += s.ModelValue(v) ? 1 : 0;
  return n;
}

class AtMostKTest : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(AtMostKTest, BoundsHold) {
  const auto [n, k] = GetParam();
  Cnf cnf;
  std::vector<Var> vars;
  std::vector<Lit> lits;
  for (int i = 0; i < n; ++i) {
    vars.push_back(cnf.NewVar());
    lits.push_back(Lit::Pos(vars.back()));
  }
  AddAtMostK(&cnf, lits, k);
  // Satisfiable, and every model has at most k true.
  Solver s;
  s.AddCnf(cnf);
  ASSERT_EQ(s.Solve(), SolveResult::kSat);
  EXPECT_LE(CountTrue(s, vars), k);
  // Forcing k of them true is satisfiable; forcing k+1 is not.
  {
    Solver s2;
    s2.AddCnf(cnf);
    std::vector<Lit> assume;
    for (int i = 0; i < k && i < n; ++i) assume.push_back(lits[i]);
    EXPECT_EQ(s2.SolveWithAssumptions(assume), SolveResult::kSat);
    if (k < n) {
      assume.push_back(lits[k]);
      EXPECT_EQ(s2.SolveWithAssumptions(assume), SolveResult::kUnsat);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, AtMostKTest,
                         ::testing::Values(std::pair<int, int>{4, 0},
                                           std::pair<int, int>{4, 1},
                                           std::pair<int, int>{4, 2},
                                           std::pair<int, int>{4, 3},
                                           std::pair<int, int>{7, 3},
                                           std::pair<int, int>{10, 5},
                                           std::pair<int, int>{6, 6}));

TEST(MaxSatTest, UnsatisfiableHardDetected) {
  Cnf hard;
  const Var a = hard.NewVar();
  hard.AddUnit(Lit::Pos(a));
  hard.AddUnit(Lit::Neg(a));
  const auto r = SolveMaxSat(hard, {{Lit::Pos(a)}});
  EXPECT_FALSE(r.hard_satisfiable);
}

TEST(MaxSatTest, NoSoftsReturnsModel) {
  Cnf hard;
  const Var a = hard.NewVar();
  hard.AddUnit(Lit::Pos(a));
  const auto r = SolveMaxSat(hard, {});
  ASSERT_TRUE(r.hard_satisfiable);
  EXPECT_EQ(r.num_satisfied, 0);
  ASSERT_EQ(r.model.size(), 1u);
  EXPECT_TRUE(r.model[0]);
}

TEST(MaxSatTest, AllSoftsSatisfiableKeepsAll) {
  Cnf hard;
  const Var a = hard.NewVar(), b = hard.NewVar();
  (void)a;
  (void)b;
  const auto r = SolveMaxSat(hard, {{Lit::Pos(a)}, {Lit::Pos(b)}});
  ASSERT_TRUE(r.hard_satisfiable);
  EXPECT_EQ(r.num_satisfied, 2);
}

TEST(MaxSatTest, DropsMinimumNumberOfSofts) {
  // Hard: exactly one of a, b, c (pairwise exclusion + at least one).
  Cnf hard;
  const Var a = hard.NewVar(), b = hard.NewVar(), c = hard.NewVar();
  hard.AddTernary(Lit::Pos(a), Lit::Pos(b), Lit::Pos(c));
  hard.AddBinary(Lit::Neg(a), Lit::Neg(b));
  hard.AddBinary(Lit::Neg(a), Lit::Neg(c));
  hard.AddBinary(Lit::Neg(b), Lit::Neg(c));
  // Softs want all three: optimum keeps exactly one.
  const auto r =
      SolveMaxSat(hard, {{Lit::Pos(a)}, {Lit::Pos(b)}, {Lit::Pos(c)}});
  ASSERT_TRUE(r.hard_satisfiable);
  EXPECT_EQ(r.num_satisfied, 1);
}

TEST(MaxSatTest, ConflictingPairKeepsLargerSide) {
  // Hard: ¬(a ∧ b). Softs: a, a', b  where a and a' are the same literal —
  // the optimum keeps {a, a'} (2 softs) over {b} (1 soft).
  Cnf hard;
  const Var a = hard.NewVar(), b = hard.NewVar();
  hard.AddBinary(Lit::Neg(a), Lit::Neg(b));
  const auto r =
      SolveMaxSat(hard, {{Lit::Pos(a)}, {Lit::Pos(a)}, {Lit::Pos(b)}});
  ASSERT_TRUE(r.hard_satisfiable);
  EXPECT_EQ(r.num_satisfied, 2);
  EXPECT_TRUE(r.soft_satisfied[0]);
  EXPECT_TRUE(r.soft_satisfied[1]);
  EXPECT_FALSE(r.soft_satisfied[2]);
}

TEST(MaxSatTest, MultiLiteralSoftClauses) {
  Cnf hard;
  const Var a = hard.NewVar(), b = hard.NewVar();
  hard.AddUnit(Lit::Neg(a));
  const auto r = SolveMaxSat(hard, {{Lit::Pos(a), Lit::Pos(b)}});
  ASSERT_TRUE(r.hard_satisfiable);
  EXPECT_EQ(r.num_satisfied, 1);  // satisfied via b
}

TEST(WalkSatTest, SolvesEasySatFormula) {
  Cnf cnf;
  const Var a = cnf.NewVar(), b = cnf.NewVar(), c = cnf.NewVar();
  cnf.AddTernary(Lit::Pos(a), Lit::Pos(b), Lit::Pos(c));
  cnf.AddBinary(Lit::Neg(a), Lit::Pos(b));
  cnf.AddUnit(Lit::Neg(c));
  WalkSatOptions opts;
  const auto r = RunWalkSat(cnf, opts);
  EXPECT_TRUE(r.satisfied);
  EXPECT_EQ(r.best_unsat, 0);
}

TEST(WalkSatTest, ApproximatesMaxSatOnUnsatFormula) {
  // a and ¬a: exactly one clause must stay unsatisfied.
  Cnf cnf;
  const Var a = cnf.NewVar();
  cnf.AddUnit(Lit::Pos(a));
  cnf.AddUnit(Lit::Neg(a));
  const auto r = RunWalkSat(cnf, {});
  EXPECT_FALSE(r.satisfied);
  EXPECT_EQ(r.best_unsat, 1);
}

TEST(WalkSatTest, DeterministicUnderSeed) {
  Cnf cnf;
  Rng rng(5);
  for (int c = 0; c < 40; ++c) {
    std::vector<Lit> clause;
    for (int k = 0; k < 3; ++k) {
      clause.push_back(
          Lit(static_cast<Var>(rng.Below(12)), rng.Chance(0.5)));
    }
    cnf.AddClause(std::span<const Lit>(clause.data(), clause.size()));
  }
  WalkSatOptions opts;
  opts.seed = 77;
  const auto r1 = RunWalkSat(cnf, opts);
  const auto r2 = RunWalkSat(cnf, opts);
  EXPECT_EQ(r1.best_unsat, r2.best_unsat);
  EXPECT_EQ(r1.model, r2.model);
}

TEST(WalkSatTest, AgreesWithCdclOnRandomFormulas) {
  Rng rng(0xBEEF);
  int checked = 0;
  for (int round = 0; round < 60; ++round) {
    const int n_vars = 4 + static_cast<int>(rng.Below(8));
    const int n_clauses = 4 + static_cast<int>(rng.Below(30));
    Cnf cnf;
    cnf.EnsureVars(n_vars);
    for (int c = 0; c < n_clauses; ++c) {
      std::vector<Lit> clause;
      const int len = 2 + static_cast<int>(rng.Below(2));
      for (int k = 0; k < len; ++k) {
        clause.push_back(
            Lit(static_cast<Var>(rng.Below(n_vars)), rng.Chance(0.5)));
      }
      cnf.AddClause(std::span<const Lit>(clause.data(), clause.size()));
    }
    sat::Solver solver;
    solver.AddCnf(cnf);
    const bool sat = solver.Solve() == SolveResult::kSat;
    WalkSatOptions opts;
    opts.seed = round;
    const auto r = RunWalkSat(cnf, opts);
    // WalkSAT is incomplete: it may miss a satisfying assignment but must
    // never claim satisfied on an UNSAT formula.
    if (!sat) {
      EXPECT_FALSE(r.satisfied) << "round " << round;
      ++checked;
    } else if (r.satisfied) {
      EXPECT_EQ(r.best_unsat, 0);
      ++checked;
    }
  }
  EXPECT_GT(checked, 20);
}

}  // namespace
}  // namespace ccr::maxsat
