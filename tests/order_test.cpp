// Unit tests for src/order: DenseBitset, PartialOrder, TemporalInstance.

#include <gtest/gtest.h>

#include "src/order/partial_order.h"
#include "src/order/temporal_instance.h"

namespace ccr {
namespace {

TEST(DenseBitsetTest, SetAndTest) {
  DenseBitset b(130);
  EXPECT_FALSE(b.Test(0));
  b.Set(0);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(129));
  EXPECT_FALSE(b.Test(1));
  EXPECT_EQ(b.Count(), 3);
}

TEST(DenseBitsetTest, UnionWith) {
  DenseBitset a(70), b(70);
  a.Set(3);
  b.Set(65);
  a.UnionWith(b);
  EXPECT_TRUE(a.Test(3));
  EXPECT_TRUE(a.Test(65));
  EXPECT_EQ(a.Count(), 2);
}

TEST(PartialOrderTest, BasicAdd) {
  PartialOrder po(3);
  ASSERT_TRUE(po.Add(0, 1).ok());
  EXPECT_TRUE(po.Less(0, 1));
  EXPECT_FALSE(po.Less(1, 0));
  EXPECT_TRUE(po.Incomparable(0, 2));
}

TEST(PartialOrderTest, TransitiveClosureMaintained) {
  PartialOrder po(4);
  ASSERT_TRUE(po.Add(0, 1).ok());
  ASSERT_TRUE(po.Add(1, 2).ok());
  EXPECT_TRUE(po.Less(0, 2));
  ASSERT_TRUE(po.Add(2, 3).ok());
  EXPECT_TRUE(po.Less(0, 3));
  EXPECT_TRUE(po.Less(1, 3));
}

TEST(PartialOrderTest, ClosurePropagatesToPredecessors) {
  PartialOrder po(4);
  ASSERT_TRUE(po.Add(0, 1).ok());
  ASSERT_TRUE(po.Add(2, 3).ok());
  // Linking 1 -> 2 must make 0 < 3 via both closures.
  ASSERT_TRUE(po.Add(1, 2).ok());
  EXPECT_TRUE(po.Less(0, 3));
}

TEST(PartialOrderTest, RejectsCycles) {
  PartialOrder po(3);
  ASSERT_TRUE(po.Add(0, 1).ok());
  ASSERT_TRUE(po.Add(1, 2).ok());
  EXPECT_FALSE(po.Add(2, 0).ok());
  EXPECT_FALSE(po.Add(1, 0).ok());
}

TEST(PartialOrderTest, RejectsSelfLoopsAndOutOfRange) {
  PartialOrder po(2);
  EXPECT_FALSE(po.Add(0, 0).ok());
  EXPECT_FALSE(po.Add(0, 5).ok());
  EXPECT_FALSE(po.Add(-1, 0).ok());
}

TEST(PartialOrderTest, DuplicateAddIsIdempotent) {
  PartialOrder po(2);
  ASSERT_TRUE(po.Add(0, 1).ok());
  ASSERT_TRUE(po.Add(0, 1).ok());
  EXPECT_EQ(po.CountPairs(), 1);
}

TEST(PartialOrderTest, MaximalElements) {
  PartialOrder po(4);
  ASSERT_TRUE(po.Add(0, 1).ok());
  ASSERT_TRUE(po.Add(2, 1).ok());
  const auto maximal = po.Maximal();
  // 1 and 3 have nothing above them.
  ASSERT_EQ(maximal.size(), 2u);
  EXPECT_EQ(maximal[0], 1);
  EXPECT_EQ(maximal[1], 3);
}

TEST(PartialOrderTest, DominatesAll) {
  PartialOrder po(3);
  ASSERT_TRUE(po.Add(0, 2).ok());
  EXPECT_FALSE(po.DominatesAll(2));  // 1 is incomparable
  ASSERT_TRUE(po.Add(1, 2).ok());
  EXPECT_TRUE(po.DominatesAll(2));
  EXPECT_FALSE(po.DominatesAll(0));
}

TEST(PartialOrderTest, PairsAndCount) {
  PartialOrder po(3);
  ASSERT_TRUE(po.Add(0, 1).ok());
  ASSERT_TRUE(po.Add(1, 2).ok());
  EXPECT_EQ(po.CountPairs(), 3);  // (0,1), (1,2), (0,2)
  EXPECT_EQ(po.Pairs().size(), 3u);
}

TEST(PartialOrderTest, SingleElementDominatesVacuously) {
  PartialOrder po(1);
  EXPECT_TRUE(po.DominatesAll(0));
}

class TemporalInstanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema schema = Schema::Make({"status", "kids"}).value();
    EntityInstance inst(schema, "e");
    ASSERT_TRUE(
        inst.Add(Tuple({Value::Str("working"), Value::Int(0)})).ok());
    ASSERT_TRUE(
        inst.Add(Tuple({Value::Str("retired"), Value::Int(3)})).ok());
    ASSERT_TRUE(inst.Add(Tuple({Value::Str("retired"), Value::Null()})).ok());
    ti_ = TemporalInstance(std::move(inst));
  }

  TemporalInstance ti_;
};

TEST_F(TemporalInstanceTest, AddOrderRecordsStrictPairs) {
  ASSERT_TRUE(ti_.AddOrder(0, 0, 1).ok());
  ASSERT_EQ(ti_.orders(0).size(), 1u);
  EXPECT_EQ(ti_.orders(0)[0], (std::pair<int, int>{0, 1}));
  EXPECT_EQ(ti_.TotalOrderPairs(), 1);
}

TEST_F(TemporalInstanceTest, EqualValuePairsAreDropped) {
  ASSERT_TRUE(ti_.AddOrder(0, 1, 2).ok());  // both "retired"
  EXPECT_TRUE(ti_.orders(0).empty());
}

TEST_F(TemporalInstanceTest, SelfPairsAreDropped) {
  ASSERT_TRUE(ti_.AddOrder(0, 1, 1).ok());
  EXPECT_TRUE(ti_.orders(0).empty());
}

TEST_F(TemporalInstanceTest, RejectsOutOfRange) {
  EXPECT_FALSE(ti_.AddOrder(5, 0, 1).ok());
  EXPECT_FALSE(ti_.AddOrder(0, 0, 9).ok());
}

TEST_F(TemporalInstanceTest, ExtendAppendsTuplesAndOrders) {
  PartialTemporalOrder ot;
  ot.new_tuples.push_back(Tuple({Value::Str("deceased"), Value::Null()}));
  ot.orders.emplace_back(0, 0, 3);  // old tuple 0 < new tuple 3 on status
  ot.orders.emplace_back(0, 1, 3);
  auto extended = Extend(ti_, ot);
  ASSERT_TRUE(extended.ok());
  EXPECT_EQ(extended->instance().size(), 4);
  EXPECT_EQ(extended->orders(0).size(), 2u);
  EXPECT_EQ(ot.size(), 2);
}

TEST_F(TemporalInstanceTest, ExtendRejectsBadIndices) {
  PartialTemporalOrder ot;
  ot.orders.emplace_back(0, 0, 7);
  EXPECT_FALSE(Extend(ti_, ot).ok());
}

}  // namespace
}  // namespace ccr
