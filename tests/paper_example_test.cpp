// End-to-end walkthrough of the paper's running example (Examples 1-13),
// exercising the full public API the way examples/quickstart.cpp does.

#include <gtest/gtest.h>

#include "paper_fixture.h"
#include "src/ccr.h"

namespace ccr {
namespace {

using testing::EdithSpec;
using testing::GeorgeSpec;
using testing::PaperSchema;

TEST(PaperExampleTest, Example2InferenceChainForEdith) {
  // The five inference steps (a)-(e) of Example 2, reproduced through the
  // deduced order Od.
  const Specification se = EdithSpec();
  auto inst = Instantiation::Build(se);
  ASSERT_TRUE(inst.ok());
  const sat::Cnf phi = BuildCnf(*inst);
  const DeducedOrders od = DeduceOrder(*inst, phi);
  const VarMap& vm = inst->varmap;
  const Schema s = PaperSchema();

  auto dominated_by = [&](const char* attr_name, const Value& top) {
    const int attr = s.IndexOf(attr_name);
    const int idx = vm.ValueIndex(attr, top);
    EXPECT_GE(idx, 0) << attr_name;
    EXPECT_TRUE(od.per_attr[attr].DominatesAll(idx))
        << attr_name << " -> " << top.ToString();
  };
  dominated_by("status", Value::Str("deceased"));  // (a)
  dominated_by("kids", Value::Int(3));             // (b)
  dominated_by("job", Value::Str("n/a"));          // (c)
  dominated_by("AC", Value::Int(213));             // (c)
  dominated_by("zip", Value::Str("90058"));        // (c)
  dominated_by("city", Value::Str("LA"));          // (d) via ψ1
  dominated_by("county", Value::Str("Vermont"));   // (e) via ϕ8
}

TEST(PaperExampleTest, Example4CurrentTupleShape) {
  // For any valid completion of E2, the current tuple has fixed name and
  // kids but open status/job/city/AC/zip/county.
  auto r = Resolve(GeorgeSpec(), nullptr);
  ASSERT_TRUE(r.ok());
  const Schema s = PaperSchema();
  EXPECT_TRUE(r->resolved[s.IndexOf("name")]);
  EXPECT_TRUE(r->resolved[s.IndexOf("kids")]);
  EXPECT_EQ(r->true_values[s.IndexOf("kids")], Value::Int(2));
  int unresolved = 0;
  for (bool res : r->resolved) unresolved += res ? 0 : 1;
  EXPECT_EQ(unresolved, 6);
}

TEST(PaperExampleTest, Example6UserOrderCompletesGeorge) {
  // Providing r6 ≺status r5 ("status changed from unemployed to retired")
  // makes T(Se ⊕ Ot) = (George, retired, veteran, 2, NY, 212, 12404,
  // Accord).
  Specification se = GeorgeSpec();
  const Schema s = PaperSchema();
  PartialTemporalOrder ot;
  ot.orders.emplace_back(s.IndexOf("status"), 2, 1);  // r6 ≺ r5
  auto extended = Extend(se, ot);
  ASSERT_TRUE(extended.ok());
  auto r = Resolve(*extended, nullptr);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->complete);
  EXPECT_EQ(r->true_values[s.IndexOf("status")], Value::Str("retired"));
  EXPECT_EQ(r->true_values[s.IndexOf("job")], Value::Str("veteran"));
  EXPECT_EQ(r->true_values[s.IndexOf("city")], Value::Str("NY"));
  EXPECT_EQ(r->true_values[s.IndexOf("AC")], Value::Int(212));
  EXPECT_EQ(r->true_values[s.IndexOf("zip")], Value::Str("12404"));
  EXPECT_EQ(r->true_values[s.IndexOf("county")], Value::Str("Accord"));
}

TEST(PaperExampleTest, Example13ConflictingCliqueIsRepairedByMaxSat) {
  // Clique C2 = {n5, n6, n8} of Fig. 6 embeds conflicting values (212 vs
  // 312 as latest AC). GetSug must never emit a rule set that conflicts
  // with Se — verified by asserting all kept rules simultaneously.
  const Specification se = GeorgeSpec();
  auto inst = Instantiation::Build(se);
  ASSERT_TRUE(inst.ok());
  const sat::Cnf phi = BuildCnf(*inst);
  const DeducedOrders od = DeduceOrder(*inst, phi);
  const auto known = ExtractTrueValueIndices(inst->varmap, od);
  const auto candidates = CandidateValues(inst->varmap, od);
  const Suggestion sug = Suggest(*inst, phi, candidates, known);

  // All kept rules must agree on shared attributes (pairwise compatible)
  // *and* be jointly realizable.
  const VarMap& vm = inst->varmap;
  sat::Cnf check = phi;
  for (const DerivationRule& r : sug.clique_rules) {
    auto dominate = [&](int attr, int idx) {
      const int d = static_cast<int>(vm.domain(attr).size());
      for (int other = 0; other < d; ++other) {
        if (other != idx) {
          check.AddUnit(sat::Lit::Pos(vm.VarOf(attr, other, idx)));
        }
      }
    };
    for (const auto& [attr, v] : r.lhs) dominate(attr, v);
    dominate(r.rhs_attr, r.rhs_value);
  }
  sat::Solver solver;
  solver.AddCnf(check);
  EXPECT_EQ(solver.Solve(), sat::SolveResult::kSat);
}

TEST(PaperExampleTest, FullInteractiveSessionForGeorge) {
  // The complete Fig. 4 loop with a ground-truth oracle, as in §VI.
  const Schema s = PaperSchema();
  std::vector<Value> truth(s.size(), Value::Null());
  truth[s.IndexOf("name")] = Value::Str("George Mendonca");
  truth[s.IndexOf("status")] = Value::Str("retired");
  truth[s.IndexOf("job")] = Value::Str("veteran");
  truth[s.IndexOf("kids")] = Value::Int(2);
  truth[s.IndexOf("city")] = Value::Str("NY");
  truth[s.IndexOf("AC")] = Value::Int(212);
  truth[s.IndexOf("zip")] = Value::Str("12404");
  truth[s.IndexOf("county")] = Value::Str("Accord");
  TruthOracle oracle(truth);
  auto r = Resolve(GeorgeSpec(), &oracle);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->complete);
  for (int a = 0; a < s.size(); ++a) {
    EXPECT_EQ(r->true_values[a], truth[a]) << s.name(a);
  }
  // At most 2 interaction rounds, as reported for real data in §VI.
  EXPECT_LE(r->rounds_used, 2);
}

TEST(PaperExampleTest, AccuracyMetricsOnTheExample) {
  // Score the automatic resolution of Edith against her true values.
  const Schema s = PaperSchema();
  auto r = Resolve(EdithSpec(), nullptr);
  ASSERT_TRUE(r.ok());
  std::vector<Value> truth = r->true_values;  // all correct by Example 2
  const AccuracyCounts counts = ScoreAssignment(
      EdithSpec().instance(), truth, r->true_values, r->resolved);
  EXPECT_DOUBLE_EQ(counts.Precision(), 1.0);
  EXPECT_DOUBLE_EQ(counts.Recall(), 1.0);
  EXPECT_DOUBLE_EQ(counts.F1(), 1.0);
  // All 7 non-name attributes conflict in E1.
  EXPECT_EQ(counts.conflicts, 7);
}

}  // namespace
}  // namespace ccr
