// Shared test fixture: the paper's running example (Figs. 1-3).
//
// Entity instances E1 (Edith Shain) and E2 (George Mendonça), the currency
// constraints ϕ1–ϕ8 and the constant CFDs ψ1/ψ2 of Fig. 3.

#ifndef CCR_TESTS_PAPER_FIXTURE_H_
#define CCR_TESTS_PAPER_FIXTURE_H_

#include <gtest/gtest.h>

#include "src/constraints/parser.h"
#include "src/constraints/specification.h"

namespace ccr::testing {

inline Schema PaperSchema() {
  return Schema::Make({"name", "status", "job", "kids", "city", "AC", "zip",
                       "county"})
      .value();
}

// E1: Edith Shain (r1, r2, r3 of Fig. 2).
inline EntityInstance MakeEdith() {
  EntityInstance e(PaperSchema(), "Edith Shain");
  EXPECT_TRUE(e.Add(Tuple({Value::Str("Edith Shain"), Value::Str("working"),
                           Value::Str("nurse"), Value::Int(0),
                           Value::Str("NY"), Value::Int(212),
                           Value::Str("10036"), Value::Str("Manhattan")}))
                  .ok());
  EXPECT_TRUE(e.Add(Tuple({Value::Str("Edith Shain"), Value::Str("retired"),
                           Value::Str("n/a"), Value::Int(3),
                           Value::Str("SFC"), Value::Int(415),
                           Value::Str("94924"), Value::Str("Dogtown")}))
                  .ok());
  EXPECT_TRUE(e.Add(Tuple({Value::Str("Edith Shain"),
                           Value::Str("deceased"), Value::Str("n/a"),
                           Value::Null(), Value::Str("LA"), Value::Int(213),
                           Value::Str("90058"), Value::Str("Vermont")}))
                  .ok());
  return e;
}

// E2: George Mendonça (r4, r5, r6 of Fig. 2).
inline EntityInstance MakeGeorge() {
  EntityInstance e(PaperSchema(), "George Mendonca");
  EXPECT_TRUE(e.Add(Tuple({Value::Str("George Mendonca"),
                           Value::Str("working"), Value::Str("sailor"),
                           Value::Int(0), Value::Str("Newport"),
                           Value::Int(401), Value::Str("02840"),
                           Value::Str("Rhode Island")}))
                  .ok());
  EXPECT_TRUE(e.Add(Tuple({Value::Str("George Mendonca"),
                           Value::Str("retired"), Value::Str("veteran"),
                           Value::Int(2), Value::Str("NY"), Value::Int(212),
                           Value::Str("12404"), Value::Str("Accord")}))
                  .ok());
  EXPECT_TRUE(e.Add(Tuple({Value::Str("George Mendonca"),
                           Value::Str("unemployed"), Value::Str("n/a"),
                           Value::Int(2), Value::Str("Chicago"),
                           Value::Int(312), Value::Str("60653"),
                           Value::Str("Bronzeville")}))
                  .ok());
  return e;
}

// ϕ1–ϕ8 of Fig. 3. ϕ5 in the paper maps status to job; jobs in E1/E2 also
// change from sailor to veteran (ϕ3), which we include verbatim.
inline std::vector<CurrencyConstraint> PaperSigma() {
  const Schema schema = PaperSchema();
  const char* texts[] = {
      // ϕ1, ϕ2: status transitions
      "t1[status] = 'working' & t2[status] = 'retired' -> status",
      "t1[status] = 'retired' & t2[status] = 'deceased' -> status",
      // ϕ3: job transition
      "t1[job] = 'sailor' & t2[job] = 'veteran' -> job",
      // ϕ4: monotone kids
      "t1[kids] < t2[kids] -> kids",
      // ϕ5–ϕ7: propagation from status
      "prec(status) -> job",
      "prec(status) -> AC",
      "prec(status) -> zip",
      // ϕ8: city & zip determine county currency
      "prec(city) & prec(zip) -> county",
  };
  std::vector<CurrencyConstraint> sigma;
  for (const char* t : texts) {
    auto phi = ParseCurrencyConstraint(schema, t);
    EXPECT_TRUE(phi.ok()) << t;
    sigma.push_back(std::move(phi).value());
  }
  return sigma;
}

// ψ1, ψ2 of Fig. 3.
inline std::vector<ConstantCfd> PaperGamma() {
  const Schema schema = PaperSchema();
  std::vector<ConstantCfd> gamma;
  for (const char* t :
       {"AC = 213 -> city = 'LA'", "AC = 212 -> city = 'NY'"}) {
    auto psi = ParseCfd(schema, t);
    EXPECT_TRUE(psi.ok()) << t;
    gamma.push_back(std::move(psi).value());
  }
  return gamma;
}

inline Specification EdithSpec() {
  Specification se;
  se.temporal = TemporalInstance(MakeEdith());
  se.sigma = PaperSigma();
  se.gamma = PaperGamma();
  return se;
}

inline Specification GeorgeSpec() {
  Specification se;
  se.temporal = TemporalInstance(MakeGeorge());
  se.sigma = PaperSigma();
  se.gamma = PaperGamma();
  return se;
}

}  // namespace ccr::testing

#endif  // CCR_TESTS_PAPER_FIXTURE_H_
