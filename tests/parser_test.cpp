// Unit tests for the constraint DSL parser (src/constraints/parser.h).

#include <gtest/gtest.h>

#include "src/constraints/parser.h"

namespace ccr {
namespace {

class ParserTest : public ::testing::Test {
 protected:
  Schema schema_ = Schema::Make({"name", "status", "job", "kids", "city",
                                 "AC", "zip", "county"})
                       .value();
};

TEST_F(ParserTest, LiteralString) {
  auto v = ParseValueLiteral("'working'");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, Value::Str("working"));
}

TEST_F(ParserTest, LiteralInt) {
  auto v = ParseValueLiteral("213");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, Value::Int(213));
}

TEST_F(ParserTest, LiteralDouble) {
  auto v = ParseValueLiteral("2.5");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, Value::Real(2.5));
}

TEST_F(ParserTest, LiteralNull) {
  auto v = ParseValueLiteral(" null ");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_null());
}

TEST_F(ParserTest, LiteralGarbageFails) {
  EXPECT_FALSE(ParseValueLiteral("un'quoted").ok());
}

TEST_F(ParserTest, Phi1OfFig3) {
  auto phi = ParseCurrencyConstraint(
      schema_, "t1[status] = 'working' & t2[status] = 'retired' -> status");
  ASSERT_TRUE(phi.ok());
  EXPECT_EQ(phi->head_attr(), 1);
  ASSERT_EQ(phi->constant_predicates().size(), 2u);
  EXPECT_EQ(phi->constant_predicates()[0].tuple_ref, 1);
  EXPECT_EQ(phi->constant_predicates()[0].constant, Value::Str("working"));
  EXPECT_EQ(phi->constant_predicates()[1].tuple_ref, 2);
  EXPECT_TRUE(phi->order_predicates().empty());
  EXPECT_TRUE(phi->IsComparisonOnly());
}

TEST_F(ParserTest, Phi4OfFig3) {
  auto phi = ParseCurrencyConstraint(schema_, "t1[kids] < t2[kids] -> kids");
  ASSERT_TRUE(phi.ok());
  EXPECT_EQ(phi->head_attr(), 3);
  ASSERT_EQ(phi->compare_predicates().size(), 1u);
  EXPECT_EQ(phi->compare_predicates()[0].op, CmpOp::kLt);
  EXPECT_EQ(phi->compare_predicates()[0].attr, 3);
}

TEST_F(ParserTest, Phi5OfFig3) {
  auto phi = ParseCurrencyConstraint(schema_, "prec(status) -> job");
  ASSERT_TRUE(phi.ok());
  EXPECT_EQ(phi->head_attr(), 2);
  ASSERT_EQ(phi->order_predicates().size(), 1u);
  EXPECT_EQ(phi->order_predicates()[0].attr, 1);
  EXPECT_FALSE(phi->IsComparisonOnly());
}

TEST_F(ParserTest, Phi8OfFig3) {
  auto phi =
      ParseCurrencyConstraint(schema_, "prec(city) & prec(zip) -> county");
  ASSERT_TRUE(phi.ok());
  EXPECT_EQ(phi->head_attr(), 7);
  EXPECT_EQ(phi->order_predicates().size(), 2u);
}

TEST_F(ParserTest, UnconditionalConstraint) {
  auto phi = ParseCurrencyConstraint(schema_, "true -> kids");
  ASSERT_TRUE(phi.ok());
  EXPECT_TRUE(phi->order_predicates().empty());
  EXPECT_TRUE(phi->compare_predicates().empty());
  EXPECT_TRUE(phi->constant_predicates().empty());
}

TEST_F(ParserTest, OperatorVariants) {
  for (const char* op : {"=", "!=", "<", "<=", ">", ">="}) {
    auto phi = ParseCurrencyConstraint(
        schema_, std::string("t1[kids] ") + op + " t2[kids] -> kids");
    ASSERT_TRUE(phi.ok()) << op;
  }
}

TEST_F(ParserTest, NumericConstantComparison) {
  auto phi = ParseCurrencyConstraint(schema_, "t2[kids] >= 3 -> kids");
  ASSERT_TRUE(phi.ok());
  ASSERT_EQ(phi->constant_predicates().size(), 1u);
  EXPECT_EQ(phi->constant_predicates()[0].op, CmpOp::kGe);
  EXPECT_EQ(phi->constant_predicates()[0].constant, Value::Int(3));
}

TEST_F(ParserTest, RejectsMissingArrow) {
  EXPECT_FALSE(ParseCurrencyConstraint(schema_, "t1[kids] < t2[kids]").ok());
}

TEST_F(ParserTest, RejectsUnknownAttribute) {
  EXPECT_FALSE(
      ParseCurrencyConstraint(schema_, "t1[wat] = 'x' -> status").ok());
  EXPECT_FALSE(
      ParseCurrencyConstraint(schema_, "t1[kids] < t2[kids] -> wat").ok());
}

TEST_F(ParserTest, RejectsMixedAttrComparison) {
  EXPECT_FALSE(
      ParseCurrencyConstraint(schema_, "t1[kids] < t2[zip] -> kids").ok());
}

TEST_F(ParserTest, RejectsBareLhs) {
  EXPECT_FALSE(
      ParseCurrencyConstraint(schema_, "kids < t2[kids] -> kids").ok());
}

TEST_F(ParserTest, Psi1OfFig3) {
  auto psi = ParseCfd(schema_, "AC = 213 -> city = 'LA'");
  ASSERT_TRUE(psi.ok());
  ASSERT_EQ(psi->lhs().size(), 1u);
  EXPECT_EQ(psi->lhs()[0].first, 5);
  EXPECT_EQ(psi->lhs()[0].second, Value::Int(213));
  EXPECT_EQ(psi->rhs_attr(), 4);
  EXPECT_EQ(psi->rhs_value(), Value::Str("LA"));
}

TEST_F(ParserTest, MultiAttributeCfd) {
  auto psi =
      ParseCfd(schema_, "city = 'NY' & zip = '10036' -> county = 'Manhattan'");
  ASSERT_TRUE(psi.ok());
  EXPECT_EQ(psi->lhs().size(), 2u);
}

TEST_F(ParserTest, CfdRejectsNonEquality) {
  EXPECT_FALSE(ParseCfd(schema_, "AC < 213 -> city = 'LA'").ok());
  EXPECT_FALSE(ParseCfd(schema_, "AC = 213 -> city < 'LA'").ok());
}

TEST_F(ParserTest, RoundTripThroughToString) {
  auto phi = ParseCurrencyConstraint(
      schema_, "t1[status] = 'working' & t2[status] = 'retired' -> status");
  ASSERT_TRUE(phi.ok());
  // ToString renders something parseable in spirit; check key parts.
  const std::string s = phi->ToString(schema_);
  EXPECT_NE(s.find("status"), std::string::npos);
  EXPECT_NE(s.find("working"), std::string::npos);
}

}  // namespace
}  // namespace ccr
