// Tests for the portfolio race (src/sat/portfolio.{h,cc}).
//
// The determinism contract is the headline guarantee: a portfolio solve
// may differ from a single-threaded solve in time and in which model it
// returns, but never in a verdict, a failed-assumption core's validity,
// or a MaxSAT optimum. The suite races with portfolio_defer_conflicts = 0
// so every solve (cache hits aside) actually spawns worker threads, and
// cross-checks against brute force and a single-threaded reference over
// the same randomized corpus the main solver suite uses.

#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.h"
#include "src/maxsat/maxsat.h"
#include "src/sat/portfolio.h"
#include "src/sat/solver.h"

namespace ccr::sat {
namespace {

// Brute-force satisfiability for <= 20 variables, under optional fixed
// assumption literals.
bool BruteForceSat(const Cnf& cnf, std::span<const Lit> assumptions = {}) {
  const int n = cnf.num_vars();
  for (uint64_t mask = 0; mask < (1ULL << n); ++mask) {
    bool all = true;
    for (Lit a : assumptions) {
      const bool val = (mask >> a.var()) & 1;
      if (val == a.negated()) {
        all = false;
        break;
      }
    }
    for (int c = 0; c < cnf.num_clauses() && all; ++c) {
      bool clause_sat = false;
      for (Lit l : cnf.clause(c)) {
        const bool val = (mask >> l.var()) & 1;
        if (val != l.negated()) {
          clause_sat = true;
          break;
        }
      }
      all = clause_sat;
    }
    if (all) return true;
  }
  return false;
}

bool ModelSatisfies(const Cnf& cnf, const Solver& solver) {
  for (int c = 0; c < cnf.num_clauses(); ++c) {
    bool clause_sat = false;
    for (Lit l : cnf.clause(c)) {
      if (solver.ModelValue(l.var()) != l.negated()) {
        clause_sat = true;
        break;
      }
    }
    if (!clause_sat) return false;
  }
  return true;
}

Cnf RandomCnf(Rng& rng, int max_vars = 10, int max_clauses = 50) {
  const int n_vars = 3 + static_cast<int>(rng.Below(max_vars));
  const int n_clauses = 2 + static_cast<int>(rng.Below(max_clauses));
  Cnf cnf;
  cnf.EnsureVars(n_vars);
  std::vector<Lit> clause;
  for (int c = 0; c < n_clauses; ++c) {
    const int len = 1 + static_cast<int>(rng.Below(3));
    clause.clear();
    for (int k = 0; k < len; ++k) {
      clause.push_back(
          Lit(static_cast<Var>(rng.Below(n_vars)), rng.Chance(0.5)));
    }
    cnf.AddClause(std::span<const Lit>(clause.data(), clause.size()));
  }
  return cnf;
}

SolverOptions PortfolioOptions(int threads, int64_t defer = 0) {
  SolverOptions o;
  o.portfolio_threads = threads;
  o.portfolio_defer_conflicts = defer;
  return o;
}

// Pigeonhole principle PHP(n+1, n): hard UNSAT, enough conflicts that a
// race genuinely runs and shares clauses.
Cnf Pigeonhole(int holes) {
  Cnf cnf;
  const int pigeons = holes + 1;
  auto var = [&](int p, int h) { return static_cast<Var>(p * holes + h); };
  cnf.EnsureVars(pigeons * holes);
  std::vector<Lit> clause;
  for (int p = 0; p < pigeons; ++p) {
    clause.clear();
    for (int h = 0; h < holes; ++h) clause.push_back(Lit::Pos(var(p, h)));
    cnf.AddClause(std::span<const Lit>(clause.data(), clause.size()));
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        cnf.AddBinary(Lit::Neg(var(p1, h)), Lit::Neg(var(p2, h)));
      }
    }
  }
  return cnf;
}

TEST(PortfolioTest, VerdictsMatchBruteForceOnRandomCorpus) {
  Rng rng(0xF01D);
  int sat_count = 0, unsat_count = 0;
  for (int round = 0; round < 80; ++round) {
    const Cnf cnf = RandomCnf(rng);
    Solver portfolio(PortfolioOptions(3));
    portfolio.AddCnf(cnf);
    const bool expected = BruteForceSat(cnf);
    const SolveResult got = portfolio.Solve();
    ASSERT_EQ(got == SolveResult::kSat, expected) << "round " << round;
    if (expected) {
      ++sat_count;
      EXPECT_TRUE(ModelSatisfies(cnf, portfolio)) << "round " << round;
    } else {
      ++unsat_count;
      EXPECT_TRUE(portfolio.IsUnsatForever());
    }
  }
  EXPECT_GT(sat_count, 5);
  EXPECT_GT(unsat_count, 5);
}

TEST(PortfolioTest, VerdictsMatchUnderAssumptions) {
  Rng rng(0xBEEF);
  for (int round = 0; round < 60; ++round) {
    const Cnf cnf = RandomCnf(rng);
    Solver single;
    single.AddCnf(cnf);
    Solver portfolio(PortfolioOptions(2));
    portfolio.AddCnf(cnf);
    // Several assumption solves per formula: the incremental reuse path.
    for (int q = 0; q < 4; ++q) {
      std::vector<Lit> assumptions;
      const int n_assume = static_cast<int>(rng.Below(3));
      for (int k = 0; k < n_assume; ++k) {
        assumptions.push_back(Lit(static_cast<Var>(rng.Below(cnf.num_vars())),
                                  rng.Chance(0.5)));
      }
      const SolveResult want = single.SolveWithAssumptions(assumptions);
      const SolveResult got = portfolio.SolveWithAssumptions(assumptions);
      ASSERT_EQ(got, want) << "round " << round << " query " << q;
      if (got == SolveResult::kUnsat && !portfolio.IsUnsatForever()) {
        // The failed-assumption core holds the NEGATIONS of a conflicting
        // assumption subset (AnalyzeFinal's learnt-clause convention);
        // asserting that subset must be inconsistent with the formula.
        std::vector<Lit> failed;
        for (Lit l : portfolio.FailedAssumptions()) failed.push_back(~l);
        EXPECT_FALSE(BruteForceSat(cnf, failed)) << "round " << round;
      }
    }
  }
}

TEST(PortfolioTest, MaxSatBoundSearchMatchesSingleThreaded) {
  Rng rng(0xCAFE);
  for (int round = 0; round < 25; ++round) {
    const Cnf hard = RandomCnf(rng, /*max_vars=*/8, /*max_clauses=*/20);
    std::vector<std::vector<Lit>> soft;
    const int n_soft = 1 + static_cast<int>(rng.Below(6));
    for (int i = 0; i < n_soft; ++i) {
      std::vector<Lit> s;
      const int len = 1 + static_cast<int>(rng.Below(2));
      for (int k = 0; k < len; ++k) {
        s.push_back(Lit(static_cast<Var>(rng.Below(hard.num_vars())),
                        rng.Chance(0.5)));
      }
      soft.push_back(std::move(s));
    }
    Solver single;
    single.AddCnf(hard);
    maxsat::IncrementalMaxSat ref(&single);
    const maxsat::MaxSatResult want = ref.Solve(soft);

    Solver portfolio(PortfolioOptions(2));
    portfolio.AddCnf(hard);
    maxsat::IncrementalMaxSat par(&portfolio);
    const maxsat::MaxSatResult got = par.Solve(soft);

    ASSERT_EQ(got.hard_satisfiable, want.hard_satisfiable)
        << "round " << round;
    if (want.hard_satisfiable) {
      // The optimum is unique; the canonical kept set is too (decided by
      // SAT verdicts alone — the determinism contract).
      EXPECT_EQ(got.num_satisfied, want.num_satisfied) << "round " << round;
      EXPECT_EQ(got.soft_satisfied, want.soft_satisfied) << "round " << round;
    }
  }
}

TEST(PortfolioTest, ImportRejectsUnknownVariable) {
  Solver s;
  const Var a = s.NewVar();
  ASSERT_TRUE(s.AddClause({Lit::Pos(a), Lit::Neg(a)}));
  // Var 7 does not exist in this solver.
  EXPECT_FALSE(s.ImportSharedClause(
      std::vector<Lit>{Lit::Pos(a), Lit::Pos(7)}, /*glue=*/1));
  EXPECT_EQ(s.Solve(), SolveResult::kSat);
}

TEST(PortfolioTest, ImportRejectsEliminatedVariable) {
  // Eliminate b by BVE, then try to import a clause mentioning it: the
  // variable no longer exists in this solver's formula, so the import
  // must be rejected outright (its values only exist through model
  // reconstruction).
  Solver s;
  const Var a = s.NewVar(), b = s.NewVar(), c = s.NewVar();
  ASSERT_TRUE(s.AddClause({Lit::Pos(a), Lit::Pos(b)}));
  ASSERT_TRUE(s.AddClause({Lit::Neg(b), Lit::Pos(c)}));
  s.MarkEliminable(b);
  ASSERT_TRUE(s.Simplify());
  ASSERT_TRUE(s.VarEliminated(b));
  EXPECT_FALSE(s.ImportSharedClause(
      std::vector<Lit>{Lit::Pos(b), Lit::Pos(c)}, /*glue=*/1));
  EXPECT_EQ(s.Solve(), SolveResult::kSat);
}

TEST(PortfolioTest, ImportRejectsScopeFrozenVariable) {
  Solver s;
  const Var a = s.NewVar();
  ASSERT_TRUE(s.AddClause({Lit::Pos(a)}));
  ScopedVars scope(&s);
  const Var t = scope.NewVar();
  ASSERT_TRUE(scope.AddClause({Lit::Pos(t)}));
  scope.Release();
  // t is frozen false; an imported unit (t) would be an empty clause and
  // a spurious UNSAT — the frozen check rejects it before evaluation.
  EXPECT_FALSE(s.ImportSharedClause(std::vector<Lit>{Lit::Pos(t)},
                                    /*glue=*/1));
  EXPECT_FALSE(s.IsUnsatForever());
  EXPECT_EQ(s.Solve(), SolveResult::kSat);
}

TEST(PortfolioTest, ImportIntegratesAndPropagates) {
  Solver s;
  const Var a = s.NewVar(), b = s.NewVar(), c = s.NewVar();
  ASSERT_TRUE(s.AddClause({Lit::Pos(a)}));  // a fixed true at level 0
  // (¬a ∨ b): the false literal ¬a is dropped, leaving the unit (b).
  EXPECT_TRUE(s.ImportSharedClause(
      std::vector<Lit>{Lit::Neg(a), Lit::Pos(b)}, /*glue=*/1));
  EXPECT_EQ(s.stats().imported_units, 1);
  // (a ∨ c) is satisfied at level 0: skipped, not integrated.
  EXPECT_FALSE(s.ImportSharedClause(
      std::vector<Lit>{Lit::Pos(a), Lit::Pos(c)}, /*glue=*/1));
  ASSERT_EQ(s.Solve(), SolveResult::kSat);
  EXPECT_TRUE(s.ModelValue(b));  // the imported unit is in force
}

TEST(PortfolioTest, ImportedEmptyClauseIsUnsatForever) {
  Solver s;
  const Var a = s.NewVar();
  ASSERT_TRUE(s.AddClause({Lit::Pos(a)}));
  // (¬a) contradicts the level-0 trail: the implied clause is empty.
  // Only sound if the exporter's formula implied it — the test simulates
  // a worker that proved UNSAT.
  EXPECT_FALSE(s.ImportSharedClause(std::vector<Lit>{Lit::Neg(a)},
                                    /*glue=*/1));
  EXPECT_TRUE(s.IsUnsatForever());
  EXPECT_EQ(s.Solve(), SolveResult::kUnsat);
}

TEST(PortfolioTest, RaceActuallyRunsAndAttributesStats) {
  Solver s(PortfolioOptions(3));
  s.AddCnf(Pigeonhole(6));
  ASSERT_EQ(s.Solve(), SolveResult::kUnsat);
  EXPECT_GE(s.stats().portfolio_races, 1);
  // Sharing traffic and cancellations depend on thread timing; the
  // counters must at least be consistent (non-negative, and cancelled
  // workers bounded by the team size per race).
  EXPECT_GE(s.stats().imported_units, 0);
  EXPECT_LE(s.stats().cancelled_workers, 2 * s.stats().portfolio_races);
}

TEST(PortfolioTest, WinnerStateStaysReusableIncrementally) {
  // After a race (whoever wins), the master must keep functioning as the
  // session's incremental solver: more clauses, more solves, assumption
  // queries — all still exact against a single-threaded reference built
  // from the same final formula.
  Rng rng(0xD00D);
  for (int round = 0; round < 20; ++round) {
    Solver portfolio(PortfolioOptions(3));
    Cnf so_far;
    const int n_vars = 6 + static_cast<int>(rng.Below(6));
    so_far.EnsureVars(n_vars);
    std::vector<Lit> clause;
    bool gone_unsat = false;
    for (int batch = 0; batch < 4 && !gone_unsat; ++batch) {
      const int n_clauses = 2 + static_cast<int>(rng.Below(10));
      for (int c = 0; c < n_clauses; ++c) {
        const int len = 1 + static_cast<int>(rng.Below(3));
        clause.clear();
        for (int k = 0; k < len; ++k) {
          clause.push_back(
              Lit(static_cast<Var>(rng.Below(n_vars)), rng.Chance(0.5)));
        }
        so_far.AddClause(std::span<const Lit>(clause.data(), clause.size()));
        while (portfolio.num_vars() < so_far.num_vars()) portfolio.NewVar();
        portfolio.AddClause(
            std::vector<Lit>(clause.begin(), clause.end()));
      }
      const bool expected = BruteForceSat(so_far);
      ASSERT_EQ(portfolio.Solve() == SolveResult::kSat, expected)
          << "round " << round << " batch " << batch;
      if (expected) {
        EXPECT_TRUE(ModelSatisfies(so_far, portfolio))
            << "round " << round << " batch " << batch;
      } else {
        gone_unsat = true;
      }
    }
  }
}

TEST(PortfolioTest, ResetTearsDownTheTeam) {
  Solver s(PortfolioOptions(2));
  s.AddCnf(Pigeonhole(5));
  ASSERT_EQ(s.Solve(), SolveResult::kUnsat);
  ASSERT_GE(s.stats().portfolio_races, 1);
  // A Reset solver is observably a fresh solver: same verdicts, zeroed
  // stats, and a fresh helper team mirroring only post-Reset clauses.
  s.Reset(PortfolioOptions(2));
  EXPECT_EQ(s.stats().portfolio_races, 0);
  const Var a = s.NewVar();
  ASSERT_TRUE(s.AddClause({Lit::Pos(a)}));
  EXPECT_EQ(s.Solve(), SolveResult::kSat);
  EXPECT_TRUE(s.ModelValue(a));
}

TEST(PortfolioTest, DeferGateSkipsRacesOnEasySolves) {
  // With the default defer gate, a trivial solve must never spawn
  // threads.
  Solver s(PortfolioOptions(4, /*defer=*/512));
  const Var a = s.NewVar(), b = s.NewVar();
  ASSERT_TRUE(s.AddClause({Lit::Pos(a), Lit::Pos(b)}));
  ASSERT_EQ(s.Solve(), SolveResult::kSat);
  EXPECT_EQ(s.stats().portfolio_races, 0);
}

TEST(PortfolioTest, ExportBufPublishProtocol) {
  ClauseExportBuf buf;
  buf.Reset();
  EXPECT_EQ(buf.Published(), 0u);
  std::vector<Lit> bin{Lit::Pos(0), Lit::Neg(1)};
  EXPECT_TRUE(buf.TryPush(bin, /*glue=*/1));
  ASSERT_EQ(buf.Published(), 1u);
  const SharedClause& sc = buf.At(0);
  EXPECT_EQ(sc.size, 2);
  EXPECT_EQ(Lit::FromIndex(sc.lits[0]), Lit::Pos(0));
  EXPECT_EQ(Lit::FromIndex(sc.lits[1]), Lit::Neg(1));
  // Over-long clauses never enter the ring.
  std::vector<Lit> lits_long;
  for (Var v = 0; v < kShareMaxLits + 1; ++v) lits_long.push_back(Lit::Pos(v));
  EXPECT_FALSE(buf.TryPush(lits_long, /*glue=*/2));
  EXPECT_EQ(buf.Published(), 1u);
}

}  // namespace
}  // namespace ccr::sat
