// Property-based tests: invariants of the encoding and the deduction
// pipeline over randomly generated specifications (parameterized sweeps).

#include <gtest/gtest.h>

#include <string>

#include "src/common/rng.h"
#include "src/core/deduce.h"
#include "src/core/isvalid.h"
#include "src/core/resolver.h"
#include "src/encode/cnf_builder.h"
#include "src/sat/dimacs.h"

namespace ccr {
namespace {

// Random specification: a chain-structured vocabulary like the Person
// generator but tiny and noisy; may be valid or invalid.
Specification RandomSpec(uint64_t seed, bool allow_conflicts) {
  Rng rng(seed);
  Schema schema = Schema::Make({"s", "j", "k", "c"}).value();
  EntityInstance inst(schema, "rand");
  const int n_tuples = 2 + static_cast<int>(rng.Below(5));
  for (int t = 0; t < n_tuples; ++t) {
    inst.Add(Tuple({Value::Str("s" + std::to_string(rng.Below(4))),
                    Value::Str("j" + std::to_string(rng.Below(3))),
                    Value::Int(static_cast<int64_t>(rng.Below(4))),
                    Value::Str("c" + std::to_string(rng.Below(3)))}))
        .ok();
  }
  Specification se;
  se.temporal = TemporalInstance(std::move(inst));
  // Random chain constraints on s.
  const int n_chain = 1 + static_cast<int>(rng.Below(4));
  for (int i = 0; i < n_chain; ++i) {
    const int from = static_cast<int>(rng.Below(4));
    int to = static_cast<int>(rng.Below(4));
    if (!allow_conflicts) to = (from + 1) % 4;  // acyclic-ish
    if (from == to) continue;
    CurrencyConstraint phi(0);
    phi.AddConstCompare(1, 0, CmpOp::kEq,
                        Value::Str("s" + std::to_string(from)));
    phi.AddConstCompare(2, 0, CmpOp::kEq,
                        Value::Str("s" + std::to_string(to)));
    se.sigma.push_back(std::move(phi));
  }
  // Monotone k; propagation s -> j.
  {
    CurrencyConstraint phi(2);
    phi.AddAttrCompare(2, CmpOp::kLt);
    se.sigma.push_back(std::move(phi));
  }
  {
    CurrencyConstraint phi(1);
    phi.AddOrder(0);
    se.sigma.push_back(std::move(phi));
  }
  // A CFD j -> c.
  if (rng.Chance(0.7)) {
    se.gamma.emplace_back(
        std::vector<std::pair<int, Value>>{{1, Value::Str("j1")}}, 3,
        Value::Str("c0"));
  }
  return se;
}

class PropertySweep : public ::testing::TestWithParam<int> {};

TEST_P(PropertySweep, DeduceOrderIsSoundWrtNaive) {
  // Every strictly proven order (positive units) must be implied per
  // Lemma 6. Run on valid specifications only.
  const Specification se = RandomSpec(GetParam() * 7919 + 13, false);
  auto inst = Instantiation::Build(se);
  ASSERT_TRUE(inst.ok());
  const sat::Cnf phi = BuildCnf(*inst);
  if (!IsValidCnf(phi).valid) return;  // vacuous for invalid specs
  DeduceOptions strict;
  strict.paper_negative_units = false;
  const DeducedOrders fast = DeduceOrder(*inst, phi, strict);
  const DeducedOrders naive = NaiveDeduce(*inst, phi);
  for (int a = 0; a < inst->varmap.num_attrs(); ++a) {
    for (const auto& [u, v] : fast.per_attr[a].Pairs()) {
      EXPECT_TRUE(naive.per_attr[a].Less(u, v))
          << "seed " << GetParam() << " attr " << a;
    }
  }
}

TEST_P(PropertySweep, DeducedOrdersAreConsistentWithSe) {
  // Adding Od back into Se as explicit value orders must keep it valid:
  // deduction may never contradict the specification.
  const Specification se = RandomSpec(GetParam() * 104729 + 7, false);
  auto inst = Instantiation::Build(se);
  ASSERT_TRUE(inst.ok());
  sat::Cnf phi = BuildCnf(*inst);
  if (!IsValidCnf(phi).valid) return;
  DeduceOptions strict;
  strict.paper_negative_units = false;
  const DeducedOrders od = DeduceOrder(*inst, phi, strict);
  for (int a = 0; a < inst->varmap.num_attrs(); ++a) {
    for (const auto& [u, v] : od.per_attr[a].Pairs()) {
      phi.AddUnit(sat::Lit::Pos(inst->varmap.VarOf(a, u, v)));
    }
  }
  EXPECT_TRUE(IsValidCnf(phi).valid) << "seed " << GetParam();
}

TEST_P(PropertySweep, DroppingConstraintsPreservesValidity) {
  // Validity is anti-monotone in the constraint sets: a valid Se stays
  // valid when Σ or Γ shrink.
  const Specification se = RandomSpec(GetParam() * 31 + 3, true);
  auto full = IsValid(se);
  ASSERT_TRUE(full.ok());
  if (!full->valid) return;
  Specification fewer = se;
  if (!fewer.sigma.empty()) fewer.sigma.pop_back();
  fewer.gamma.clear();
  auto r = IsValid(fewer);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->valid) << "seed " << GetParam();
}

TEST_P(PropertySweep, TrueValuesAreCandidates) {
  // An extracted true value must always be maximal (a candidate).
  const Specification se = RandomSpec(GetParam() * 193 + 11, false);
  auto inst = Instantiation::Build(se);
  ASSERT_TRUE(inst.ok());
  const sat::Cnf phi = BuildCnf(*inst);
  if (!IsValidCnf(phi).valid) return;
  const DeducedOrders od = DeduceOrder(*inst, phi);
  const auto truth = ExtractTrueValueIndices(inst->varmap, od);
  const auto candidates = CandidateValues(inst->varmap, od);
  for (int a = 0; a < inst->varmap.num_attrs(); ++a) {
    if (truth[a] < 0) continue;
    const auto& cands = candidates[a];
    EXPECT_NE(std::find(cands.begin(), cands.end(), truth[a]), cands.end())
        << "seed " << GetParam() << " attr " << a;
  }
}

TEST_P(PropertySweep, PhiRoundTripsThroughDimacs) {
  const Specification se = RandomSpec(GetParam() * 631 + 17, true);
  auto inst = Instantiation::Build(se);
  ASSERT_TRUE(inst.ok());
  const sat::Cnf phi = BuildCnf(*inst);
  auto parsed = sat::FromDimacs(sat::ToDimacs(phi));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_clauses(), phi.num_clauses());
  // Satisfiability is preserved.
  EXPECT_EQ(IsValidCnf(phi).valid, IsValidCnf(*parsed).valid);
}

TEST_P(PropertySweep, ResolverNeverInventsValues) {
  // Every resolved value must come from the instance or a CFD pattern.
  const Specification se = RandomSpec(GetParam() * 271 + 23, false);
  auto r = Resolve(se, nullptr);
  ASSERT_TRUE(r.ok());
  if (!r->valid) return;
  for (int a = 0; a < se.schema().size(); ++a) {
    if (!r->resolved[a]) continue;
    bool in_instance = false;
    for (const Tuple& t : se.instance().tuples()) {
      if (t.at(a) == r->true_values[a]) in_instance = true;
    }
    bool in_cfd = false;
    for (const auto& cfd : se.gamma) {
      if (cfd.rhs_attr() == a && cfd.rhs_value() == r->true_values[a]) {
        in_cfd = true;
      }
    }
    EXPECT_TRUE(in_instance || in_cfd)
        << "seed " << GetParam() << " attr " << a;
  }
}

TEST_P(PropertySweep, RepeatedResolutionIsDeterministic) {
  const Specification se = RandomSpec(GetParam() * 13 + 1, false);
  auto r1 = Resolve(se, nullptr);
  auto r2 = Resolve(se, nullptr);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->complete, r2->complete);
  for (size_t a = 0; a < r1->true_values.size(); ++a) {
    EXPECT_EQ(r1->true_values[a], r2->true_values[a]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySweep, ::testing::Range(0, 40));

}  // namespace
}  // namespace ccr
