// Unit tests for src/relational: Value, Schema, Tuple, EntityInstance.

#include <gtest/gtest.h>

#include "src/relational/entity_instance.h"

namespace ccr {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
  EXPECT_EQ(v.ToString(), "null");
}

TEST(ValueTest, FactoryTypes) {
  EXPECT_EQ(Value::Int(3).type(), ValueType::kInt);
  EXPECT_EQ(Value::Real(3.5).type(), ValueType::kDouble);
  EXPECT_EQ(Value::Str("x").type(), ValueType::kString);
  EXPECT_EQ(Value::Null().type(), ValueType::kNull);
}

TEST(ValueTest, EqualitySameType) {
  EXPECT_EQ(Value::Int(3), Value::Int(3));
  EXPECT_NE(Value::Int(3), Value::Int(4));
  EXPECT_EQ(Value::Str("a"), Value::Str("a"));
  EXPECT_NE(Value::Str("a"), Value::Str("b"));
  EXPECT_EQ(Value::Null(), Value::Null());
}

TEST(ValueTest, IntAndDoubleCompareNumerically) {
  EXPECT_EQ(Value::Int(3), Value::Real(3.0));
  EXPECT_NE(Value::Int(3), Value::Real(3.5));
  EXPECT_LT(Value::Int(3), Value::Real(3.5));
}

TEST(ValueTest, NullRanksLowest) {
  // Example 2(b): null < k for any value k.
  EXPECT_LT(Value::Null(), Value::Int(-100));
  EXPECT_LT(Value::Null(), Value::Str(""));
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
}

TEST(ValueTest, NumbersBeforeStrings) {
  EXPECT_LT(Value::Int(999), Value::Str("0"));
}

TEST(ValueTest, StringOrderIsLexicographic) {
  EXPECT_LT(Value::Str("NY"), Value::Str("SFC"));
  EXPECT_GT(Value::Str("b"), Value::Str("a"));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(3).Hash(), Value::Real(3.0).Hash());
  EXPECT_EQ(Value::Str("abc").Hash(), Value::Str("abc").Hash());
  EXPECT_EQ(Value::Null().Hash(), Value::Null().Hash());
}

TEST(SchemaTest, MakeAndLookup) {
  auto s = Schema::Make({"name", "status", "job"});
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->size(), 3);
  EXPECT_EQ(s->IndexOf("status"), 1);
  EXPECT_EQ(s->IndexOf("missing"), -1);
  EXPECT_EQ(s->name(2), "job");
}

TEST(SchemaTest, RejectsDuplicates) {
  auto s = Schema::Make({"a", "b", "a"});
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.status().code(), StatusCode::kInvalidArgument);
}

TEST(SchemaTest, RequireReturnsNotFound) {
  auto s = Schema::Make({"a"}).value();
  EXPECT_TRUE(s.Require("a").ok());
  EXPECT_EQ(s.Require("zz").status().code(), StatusCode::kNotFound);
}

TEST(TupleTest, AccessAndEquality) {
  Tuple t({Value::Str("x"), Value::Int(1)});
  EXPECT_EQ(t.size(), 2);
  EXPECT_EQ(t.at(0), Value::Str("x"));
  EXPECT_EQ(t[1], Value::Int(1));
  EXPECT_EQ(t, Tuple({Value::Str("x"), Value::Int(1)}));
  EXPECT_NE(t, Tuple({Value::Str("x"), Value::Int(2)}));
}

TEST(TupleTest, ToStringFormats) {
  Tuple t({Value::Str("a"), Value::Null()});
  EXPECT_EQ(t.ToString(), "(a, null)");
  Schema s = Schema::Make({"n", "k"}).value();
  EXPECT_EQ(t.ToString(s), "n=a, k=null");
}

class EntityInstanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = Schema::Make({"name", "city", "kids"}).value();
    instance_ = EntityInstance(schema_, "edith");
    ASSERT_TRUE(instance_
                    .Add(Tuple({Value::Str("Edith"), Value::Str("NY"),
                                Value::Int(0)}))
                    .ok());
    ASSERT_TRUE(instance_
                    .Add(Tuple({Value::Str("Edith"), Value::Str("SFC"),
                                Value::Int(3)}))
                    .ok());
    ASSERT_TRUE(instance_
                    .Add(Tuple({Value::Str("Edith"), Value::Str("NY"),
                                Value::Null()}))
                    .ok());
  }

  Schema schema_;
  EntityInstance instance_;
};

TEST_F(EntityInstanceTest, SizeAndAccess) {
  EXPECT_EQ(instance_.size(), 3);
  EXPECT_EQ(instance_.entity_id(), "edith");
  EXPECT_EQ(instance_.tuple(1).at(1), Value::Str("SFC"));
}

TEST_F(EntityInstanceTest, RejectsWrongArity) {
  EXPECT_FALSE(instance_.Add(Tuple({Value::Str("x")})).ok());
}

TEST_F(EntityInstanceTest, ActiveDomainDedupesAndSkipsNulls) {
  const auto cities = instance_.ActiveDomain(1);
  ASSERT_EQ(cities.size(), 2u);
  EXPECT_EQ(cities[0], Value::Str("NY"));  // first-occurrence order
  EXPECT_EQ(cities[1], Value::Str("SFC"));
  const auto kids = instance_.ActiveDomain(2);
  EXPECT_EQ(kids.size(), 2u);  // null excluded
}

TEST_F(EntityInstanceTest, ConflictDetection) {
  EXPECT_FALSE(instance_.HasConflict(0));  // name is constant
  EXPECT_TRUE(instance_.HasConflict(1));
  EXPECT_TRUE(instance_.HasConflict(2));
  EXPECT_EQ(instance_.CountConflictAttributes(), 2);
}

TEST(EntityInstanceEmptyTest, EmptyInstance) {
  EntityInstance e(Schema::Make({"a"}).value(), "none");
  EXPECT_TRUE(e.empty());
  EXPECT_TRUE(e.ActiveDomain(0).empty());
  EXPECT_EQ(e.CountConflictAttributes(), 0);
}

}  // namespace
}  // namespace ccr
