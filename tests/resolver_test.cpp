// Tests for the Fig. 4 framework loop (src/core/resolver.h).

#include <gtest/gtest.h>

#include "paper_fixture.h"
#include "src/core/resolver.h"

namespace ccr {
namespace {

using testing::EdithSpec;
using testing::GeorgeSpec;
using testing::PaperSchema;

// Oracle that answers suggestions from a fixed truth vector.
class FixedOracle : public UserOracle {
 public:
  explicit FixedOracle(std::vector<Value> truth, int per_round = 100)
      : truth_(std::move(truth)), per_round_(per_round) {}

  std::vector<Answer> Provide(const Specification&, const Suggestion& sug,
                              const VarMap&) override {
    ++calls_;
    std::vector<Answer> out;
    for (int attr : sug.attrs) {
      if (static_cast<int>(out.size()) >= per_round_) break;
      if (!truth_[attr].is_null()) out.push_back({attr, truth_[attr]});
    }
    return out;
  }

  int calls() const { return calls_; }

 private:
  std::vector<Value> truth_;
  int per_round_;
  int calls_ = 0;
};

std::vector<Value> GeorgeTruth() {
  const Schema s = PaperSchema();
  std::vector<Value> t(s.size(), Value::Null());
  t[s.IndexOf("status")] = Value::Str("retired");
  return t;
}

TEST(ResolverTest, EdithResolvesWithoutInteraction) {
  auto r = Resolve(EdithSpec(), nullptr);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->valid);
  EXPECT_TRUE(r->complete);
  EXPECT_EQ(r->rounds_used, 0);
  const Schema s = PaperSchema();
  EXPECT_EQ(r->true_values[s.IndexOf("status")], Value::Str("deceased"));
  EXPECT_EQ(r->true_values[s.IndexOf("county")], Value::Str("Vermont"));
  // Nothing was user-provided.
  for (bool up : r->user_provided) EXPECT_FALSE(up);
}

TEST(ResolverTest, GeorgeWithoutOracleStaysIncomplete) {
  auto r = Resolve(GeorgeSpec(), nullptr);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->valid);
  EXPECT_FALSE(r->complete);
  const Schema s = PaperSchema();
  EXPECT_TRUE(r->resolved[s.IndexOf("name")]);
  EXPECT_TRUE(r->resolved[s.IndexOf("kids")]);
  EXPECT_FALSE(r->resolved[s.IndexOf("status")]);
}

TEST(ResolverTest, GeorgeResolvesWithOneInteraction) {
  // Example 6/9: once the user validates status = retired, the full tuple
  // (George, retired, veteran, 2, NY, 212, 12404, Accord) is derived.
  FixedOracle oracle(GeorgeTruth());
  auto r = Resolve(GeorgeSpec(), &oracle);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->complete);
  EXPECT_EQ(oracle.calls(), 1);
  EXPECT_EQ(r->rounds_used, 1);
  const Schema s = PaperSchema();
  EXPECT_EQ(r->true_values[s.IndexOf("status")], Value::Str("retired"));
  EXPECT_EQ(r->true_values[s.IndexOf("job")], Value::Str("veteran"));
  EXPECT_EQ(r->true_values[s.IndexOf("kids")], Value::Int(2));
  EXPECT_EQ(r->true_values[s.IndexOf("city")], Value::Str("NY"));
  EXPECT_EQ(r->true_values[s.IndexOf("AC")], Value::Int(212));
  EXPECT_EQ(r->true_values[s.IndexOf("zip")], Value::Str("12404"));
  EXPECT_EQ(r->true_values[s.IndexOf("county")], Value::Str("Accord"));
  EXPECT_TRUE(r->user_provided[s.IndexOf("status")]);
  EXPECT_FALSE(r->user_provided[s.IndexOf("job")]);
}

TEST(ResolverTest, RoundSnapshotsTrackProgress) {
  FixedOracle oracle(GeorgeTruth());
  auto r = Resolve(GeorgeSpec(), &oracle);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->round_values.size(), 2u);
  const Schema s = PaperSchema();
  // Round 0: status unresolved; round 1: resolved.
  EXPECT_FALSE(r->round_resolved[0][s.IndexOf("status")]);
  EXPECT_TRUE(r->round_resolved[1][s.IndexOf("status")]);
  // Trace has per-phase timings.
  ASSERT_EQ(r->trace.size(), 2u);
  EXPECT_GE(r->trace[0].validity_ms, 0.0);
  EXPECT_GT(r->trace[1].resolved_attrs, r->trace[0].resolved_attrs);
}

TEST(ResolverTest, SilentOracleSettles) {
  FixedOracle oracle(std::vector<Value>(PaperSchema().size(), Value::Null()));
  auto r = Resolve(GeorgeSpec(), &oracle);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->complete);
  EXPECT_EQ(oracle.calls(), 1);  // asked once, got nothing, settled
}

TEST(ResolverTest, MaxRoundsRespected) {
  FixedOracle oracle(GeorgeTruth());
  ResolveOptions opts;
  opts.max_rounds = 0;
  auto r = Resolve(GeorgeSpec(), &oracle, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->complete);
  EXPECT_EQ(oracle.calls(), 0);
}

TEST(ResolverTest, InvalidSpecificationReported) {
  Specification se = GeorgeSpec();
  // Contradictory explicit orders: r4 < r5 and r5 < r4 on status.
  const int status = PaperSchema().IndexOf("status");
  ASSERT_TRUE(se.temporal.AddOrder(status, 0, 1).ok());
  ASSERT_TRUE(se.temporal.AddOrder(status, 1, 0).ok());
  auto r = Resolve(se, nullptr);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->valid);
  EXPECT_FALSE(r->complete);
}

TEST(ResolverTest, NaiveDeduceModeProducesSameTruth) {
  ResolveOptions naive;
  naive.naive_deduce = true;
  auto fast = Resolve(EdithSpec(), nullptr);
  auto slow = Resolve(EdithSpec(), nullptr, naive);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  EXPECT_EQ(fast->true_values.size(), slow->true_values.size());
  for (size_t i = 0; i < fast->true_values.size(); ++i) {
    EXPECT_EQ(fast->true_values[i], slow->true_values[i]) << i;
  }
}

TEST(ResolverTest, UserValueOutsideActiveDomain) {
  // The user may supply a *new* value (§III: "some new values not in the
  // active domains"). George's status as 'deceased' (not in E2) must be
  // accepted and dominate.
  const Schema s = PaperSchema();
  std::vector<Value> truth(s.size(), Value::Null());
  truth[s.IndexOf("status")] = Value::Str("deceased");
  FixedOracle oracle(truth);
  auto r = Resolve(GeorgeSpec(), &oracle);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->true_values[s.IndexOf("status")], Value::Str("deceased"));
  // With status = deceased, no tuple's job/AC/zip is distinguished: the
  // propagation rules ϕ5–ϕ7 only fire between instance tuples, so the
  // entity cannot complete — but it must not crash or regress.
  EXPECT_TRUE(r->resolved[s.IndexOf("status")]);
}

}  // namespace
}  // namespace ccr
