// Tests for the scale-out result layer (src/eval/result_io.h): JSON
// round-trips are lossless, the shard merge is associative and
// order-independent, and pooling per-shard results reproduces the
// unsharded ExperimentResult field-for-field (byte-for-byte with timings
// excluded) — the contract scripts/shard.sh relies on across processes.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/data/nba_generator.h"
#include "src/data/person_generator.h"
#include "src/eval/experiment.h"
#include "src/eval/result_io.h"

namespace ccr {
namespace {

Dataset SmallPersonCorpus(int entities = 12) {
  PersonOptions opts;
  opts.num_entities = entities;
  opts.min_tuples = 4;
  opts.max_tuples = 24;
  opts.seed = 2024;
  return GeneratePerson(opts);
}

ExperimentOptions SmallRunOptions() {
  ExperimentOptions opts;
  opts.max_rounds = 2;
  opts.answers_per_round = 1;
  return opts;
}

void ExpectSameResult(const ExperimentResult& a, const ExperimentResult& b,
                      bool compare_timings) {
  EXPECT_EQ(a.entities, b.entities);
  EXPECT_EQ(a.invalid_entities, b.invalid_entities);
  EXPECT_EQ(a.max_rounds_used, b.max_rounds_used);
  ASSERT_EQ(a.accuracy_by_round.size(), b.accuracy_by_round.size());
  for (size_t k = 0; k < a.accuracy_by_round.size(); ++k) {
    EXPECT_EQ(a.accuracy_by_round[k].deduced, b.accuracy_by_round[k].deduced)
        << "round " << k;
    EXPECT_EQ(a.accuracy_by_round[k].correct, b.accuracy_by_round[k].correct)
        << "round " << k;
    EXPECT_EQ(a.accuracy_by_round[k].conflicts,
              b.accuracy_by_round[k].conflicts)
        << "round " << k;
  }
  ASSERT_EQ(a.pct_true_by_round.size(), b.pct_true_by_round.size());
  for (size_t k = 0; k < a.pct_true_by_round.size(); ++k) {
    // Exact double equality: merged ratios are recomputed from pooled
    // integer counts with the same expression RunExperiment uses.
    EXPECT_EQ(a.pct_true_by_round[k], b.pct_true_by_round[k])
        << "round " << k;
  }
  if (compare_timings) {
    EXPECT_EQ(a.encode_ms, b.encode_ms);
    EXPECT_EQ(a.validity_ms, b.validity_ms);
    EXPECT_EQ(a.deduce_ms, b.deduce_ms);
    EXPECT_EQ(a.suggest_ms, b.suggest_ms);
  }
}

TEST(ResultIoTest, JsonRoundTripIsLossless) {
  const Dataset ds = SmallPersonCorpus();
  const ExperimentResult r = RunExperiment(ds, SmallRunOptions());
  ASSERT_GT(r.entities, 0);
  ASSERT_FALSE(r.accuracy_by_round.empty());

  const std::string json = ExperimentResultToJson(r);
  auto back = ExperimentResultFromJson(json);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectSameResult(r, *back, /*compare_timings=*/true);

  // Serialization is a pure function of the result: re-serializing the
  // parsed copy reproduces the bytes.
  EXPECT_EQ(json, ExperimentResultToJson(*back));
}

TEST(ResultIoTest, CompactFormRoundTrips) {
  const Dataset ds = SmallPersonCorpus(4);
  const ExperimentResult r = RunExperiment(ds, SmallRunOptions());
  ResultJsonOptions jopts;
  jopts.indent = 0;
  const std::string json = ExperimentResultToJson(r, jopts);
  EXPECT_EQ(json.find('\n'), json.size() - 1);  // single line + newline
  auto back = ExperimentResultFromJson(json);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectSameResult(r, *back, /*compare_timings=*/true);
}

TEST(ResultIoTest, NoTimingsSerializesZeros) {
  const Dataset ds = SmallPersonCorpus(4);
  const ExperimentResult r = RunExperiment(ds, SmallRunOptions());
  ASSERT_GT(r.encode_ms + r.validity_ms + r.deduce_ms + r.suggest_ms, 0.0);
  ResultJsonOptions jopts;
  jopts.include_timings = false;
  auto back = ExperimentResultFromJson(ExperimentResultToJson(r, jopts));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->encode_ms, 0.0);
  EXPECT_EQ(back->validity_ms, 0.0);
  EXPECT_EQ(back->deduce_ms, 0.0);
  EXPECT_EQ(back->suggest_ms, 0.0);
  ExpectSameResult(r, *back, /*compare_timings=*/false);
}

TEST(ResultIoTest, FourShardMergeEqualsUnshardedRun) {
  const Dataset ds = SmallPersonCorpus(13);  // not divisible by 4
  const ExperimentOptions opts = SmallRunOptions();
  const ExperimentResult whole = RunExperiment(ds, opts);

  const int n = static_cast<int>(ds.entities.size());
  std::vector<ExperimentResult> shards;
  int pooled_entities = 0;
  for (int k = 0; k < 4; ++k) {
    const std::vector<int> indices = ShardIndices(n, k, 4);
    EXPECT_FALSE(indices.empty());
    shards.push_back(RunExperiment(ds, opts, indices));
    pooled_entities += shards.back().entities;
  }
  EXPECT_EQ(pooled_entities, whole.entities);

  auto merged = MergeExperimentResults(shards);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  ExpectSameResult(whole, *merged, /*compare_timings=*/false);

  // The cross-process contract: identical bytes once timings are excluded,
  // even after each shard result takes a JSON round trip (as it does when
  // shards run in separate processes and ship files).
  std::vector<ExperimentResult> reloaded;
  for (const ExperimentResult& s : shards) {
    auto back = ExperimentResultFromJson(ExperimentResultToJson(s));
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    reloaded.push_back(std::move(back).value());
  }
  auto remerged = MergeExperimentResults(reloaded);
  ASSERT_TRUE(remerged.ok()) << remerged.status().ToString();
  ResultJsonOptions jopts;
  jopts.include_timings = false;
  EXPECT_EQ(ExperimentResultToJson(*remerged, jopts),
            ExperimentResultToJson(whole, jopts));
}

TEST(ResultIoTest, MergeIsAssociativeAndOrderIndependent) {
  const Dataset ds = SmallPersonCorpus(9);
  const ExperimentOptions opts = SmallRunOptions();
  const int n = static_cast<int>(ds.entities.size());
  std::vector<ExperimentResult> parts;
  for (int k = 0; k < 3; ++k) {
    parts.push_back(RunExperiment(ds, opts, ShardIndices(n, k, 3)));
  }

  auto flat = MergeExperimentResults({parts[0], parts[1], parts[2]});
  ASSERT_TRUE(flat.ok());

  // ((0 + 1) + 2) — merge of a merge.
  auto left = MergeExperimentResults({parts[0], parts[1]});
  ASSERT_TRUE(left.ok());
  auto nested = MergeExperimentResults({*left, parts[2]});
  ASSERT_TRUE(nested.ok());
  ExpectSameResult(*flat, *nested, /*compare_timings=*/true);

  // Reversed input order.
  auto reversed = MergeExperimentResults({parts[2], parts[1], parts[0]});
  ASSERT_TRUE(reversed.ok());
  ExpectSameResult(*flat, *reversed, /*compare_timings=*/false);
}

TEST(ResultIoTest, MergeAlignsDifferingRoundCounts) {
  ExperimentResult one_round;
  one_round.entities = 1;
  one_round.accuracy_by_round = {{4, 3, 10}};  // deduced, correct, conflicts
  one_round.pct_true_by_round = {0.4};

  ExperimentResult three_rounds;
  three_rounds.entities = 2;
  three_rounds.max_rounds_used = 2;
  three_rounds.accuracy_by_round = {{2, 2, 6}, {4, 4, 6}, {6, 6, 6}};
  three_rounds.pct_true_by_round = {2.0 / 6, 4.0 / 6, 1.0};

  auto merged = MergeExperimentResults({one_round, three_rounds});
  ASSERT_TRUE(merged.ok());
  ASSERT_EQ(merged->accuracy_by_round.size(), 3u);
  // The short part's final state carries forward into rounds it never ran,
  // mirroring RunExperiment's per-entity carry-forward.
  EXPECT_EQ(merged->accuracy_by_round[0].deduced, 6);
  EXPECT_EQ(merged->accuracy_by_round[1].deduced, 8);
  EXPECT_EQ(merged->accuracy_by_round[2].deduced, 10);
  EXPECT_EQ(merged->accuracy_by_round[2].conflicts, 16);
  EXPECT_EQ(merged->entities, 3);
  EXPECT_EQ(merged->max_rounds_used, 2);
  EXPECT_EQ(merged->pct_true_by_round[2], 10.0 / 16.0);
}

TEST(ResultIoTest, ParserRejectsMalformedInput) {
  EXPECT_FALSE(ExperimentResultFromJson("").ok());
  EXPECT_FALSE(ExperimentResultFromJson("{").ok());
  EXPECT_FALSE(ExperimentResultFromJson("[]").ok());
  EXPECT_FALSE(ExperimentResultFromJson("{\"schema\": 3}").ok());

  // Unknown fields are schema drift, not noise.
  EXPECT_FALSE(ExperimentResultFromJson(
                   "{\"schema\": \"ccr.experiment_result\", "
                   "\"schema_version\": 1, \"surprise\": 1}")
                   .ok());

  // Wrong schema name / unsupported version.
  EXPECT_FALSE(ExperimentResultFromJson(
                   "{\"schema\": \"other\", \"schema_version\": 1}")
                   .ok());
  EXPECT_FALSE(ExperimentResultFromJson(
                   "{\"schema\": \"ccr.experiment_result\", "
                   "\"schema_version\": 999}")
                   .ok());

  // Trailing garbage after a valid document.
  const ExperimentResult empty;
  std::string json = ExperimentResultToJson(empty);
  json += "{}";
  EXPECT_FALSE(ExperimentResultFromJson(json).ok());

  // Out-of-int-range and fractional counts.
  EXPECT_FALSE(ExperimentResultFromJson(
                   "{\"schema\": \"ccr.experiment_result\", "
                   "\"schema_version\": 1, \"entities\": 1e20}")
                   .ok());
  EXPECT_FALSE(ExperimentResultFromJson(
                   "{\"schema\": \"ccr.experiment_result\", "
                   "\"schema_version\": 1, \"entities\": 1.5}")
                   .ok());

  // Duplicate keys: a doubled round array would append, a repeated scalar
  // would silently last-one-win — both are rejected.
  EXPECT_FALSE(ExperimentResultFromJson(
                   "{\"schema\": \"ccr.experiment_result\", "
                   "\"schema_version\": 1, "
                   "\"pct_true_by_round\": [0.5], "
                   "\"pct_true_by_round\": [0.5]}")
                   .ok());
  EXPECT_FALSE(ExperimentResultFromJson(
                   "{\"schema\": \"ccr.experiment_result\", "
                   "\"schema_version\": 1, "
                   "\"entities\": 24, \"entities\": 0}")
                   .ok());
}

TEST(ResultIoTest, MergeOfNothingFails) {
  EXPECT_FALSE(MergeExperimentResults({}).ok());
}

TEST(ResultIoTest, ShardIndicesPartitionTheCorpus) {
  std::vector<bool> seen(13, false);
  for (int k = 0; k < 4; ++k) {
    for (int i : ShardIndices(13, k, 4)) {
      EXPECT_FALSE(seen[i]) << "index " << i << " in two shards";
      seen[i] = true;
      EXPECT_EQ(i % 4, k);
    }
  }
  for (int i = 0; i < 13; ++i) EXPECT_TRUE(seen[i]) << "index " << i;
  EXPECT_TRUE(ShardIndices(10, 5, 4).empty());   // shard out of range
  EXPECT_TRUE(ShardIndices(10, 0, 0).empty());   // no shards
  EXPECT_TRUE(ShardIndices(10, -1, 4).empty());  // negative shard
}

}  // namespace
}  // namespace ccr
